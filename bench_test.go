package nextdvfs

// One benchmark per figure of the paper's evaluation, plus the overhead
// measurement and the ablations DESIGN.md calls out. Each bench reports
// the figure's headline quantity via b.ReportMetric so
// `go test -bench=. -benchmem` regenerates the paper's numbers:
//
//	BenchmarkFig1SchedutilTrace   — motivation trace (Fig. 1)
//	BenchmarkFig3NextVsSchedutil  — session power/thermal savings (Fig. 3)
//	BenchmarkFig4PPDWTrend        — PPDW vs FPS on Lineage (Fig. 4)
//	BenchmarkFig6TrainingTime     — online vs cloud training (Fig. 6)
//	BenchmarkFig7PowerByApp       — per-app power matrix (Fig. 7)
//	BenchmarkFig8TempByApp        — per-app peak temperatures (Fig. 8)
//	BenchmarkOverheadAgentStep    — agent decision latency (≈227 ns in the paper)
//	BenchmarkAblation*            — design-choice ablations

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"nextdvfs/internal/aggregator"
	"nextdvfs/internal/cloud"
	"nextdvfs/internal/core"
	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/exp"
	"nextdvfs/internal/fleetd"
	"nextdvfs/internal/learner"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/power"
	"nextdvfs/internal/rollout"
	"nextdvfs/internal/scenario"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/soc"
	"nextdvfs/internal/stats"
	"nextdvfs/internal/thermal"
)

func BenchmarkFig1SchedutilTrace(b *testing.B) {
	var fps float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig1(42)
		fps = r.Result.AvgFPS
	}
	b.ReportMetric(fps, "avg_fps")
}

func BenchmarkFig3NextVsSchedutil(b *testing.B) {
	var saving, tempRed float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig3(42)
		saving = r.PowerSavingPct
		tempRed = r.AvgTempRedPct
	}
	b.ReportMetric(saving, "%power_saved")
	b.ReportMetric(tempRed, "%temp_rise_reduced")
}

func BenchmarkFig4PPDWTrend(b *testing.B) {
	var topPPDW float64
	for i := 0; i < b.N; i++ {
		r := exp.Fig4(42)
		for _, p := range r.Points {
			if !p.Worst && p.PPDW > topPPDW {
				topPPDW = p.PPDW
			}
		}
	}
	b.ReportMetric(topPPDW, "best_ppdw")
}

func BenchmarkFig6TrainingTime(b *testing.B) {
	var onlineMax, cloudMax float64
	for i := 0; i < b.N; i++ {
		pts := exp.Fig6(exp.Fig6Options{Seed: 42, MaxSessions: 12, SessionSecs: 100})
		for _, p := range pts {
			if p.OnlineS > onlineMax {
				onlineMax = p.OnlineS
			}
			if p.CloudS > cloudMax {
				cloudMax = p.CloudS
			}
		}
	}
	b.ReportMetric(onlineMax, "max_online_s")
	b.ReportMetric(cloudMax, "max_cloud_s")
}

// benchEvalRows caches the expensive Fig. 7/8 matrix across the two
// benches so -bench=. does not run it twice.
var benchEvalRows []exp.AppRow

func evalRows() []exp.AppRow {
	if benchEvalRows == nil {
		benchEvalRows = exp.Evaluate(exp.EvalOptions{Seed: 42, MaxSessions: 10, SessionSecs: 120})
	}
	return benchEvalRows
}

func BenchmarkFig7PowerByApp(b *testing.B) {
	var bestSaving float64
	for i := 0; i < b.N; i++ {
		benchEvalRows = nil
		rows := evalRows()
		for _, r := range rows {
			if r.NextPowerSavingPct > bestSaving {
				bestSaving = r.NextPowerSavingPct
			}
		}
	}
	b.ReportMetric(bestSaving, "max_%power_saved")
}

func BenchmarkFig8TempByApp(b *testing.B) {
	var bestBig, bestDev float64
	for i := 0; i < b.N; i++ {
		rows := evalRows() // reuses the Fig. 7 matrix when cached
		for _, r := range rows {
			if r.NextBigTempRedPct > bestBig {
				bestBig = r.NextBigTempRedPct
			}
			if r.NextDevTempRedPct > bestDev {
				bestDev = r.NextDevTempRedPct
			}
		}
	}
	b.ReportMetric(bestBig, "max_%big_temp_red")
	b.ReportMetric(bestDev, "max_%dev_temp_red")
}

// nullActuator discards actuations: the overhead bench measures the
// agent's decision path, not the platform's.
type nullActuator struct{}

func (nullActuator) SetCap(string, int)   {}
func (nullActuator) SetFloor(string, int) {}
func (nullActuator) Pin(string, int)      {}

func BenchmarkOverheadAgentStep(b *testing.B) {
	// The paper reports ≈227 ns average computation per Next invocation.
	cfg := core.DefaultAgentConfig()
	cfg.Seed = 7
	agent := core.NewAgent(cfg)
	agent.AppChanged("bench", true)
	snap := ctrl.Snapshot{
		NowUS: 0, FPS: 60, PowerW: 5, TempBigC: 55, TempDeviceC: 40, AmbientC: 21,
		AppName: "bench", AppClassGame: true,
		Clusters: []ctrl.ClusterView{
			{Name: "big", NumOPPs: 18, CurIdx: 9, CapIdx: 9, OPPKHz: make([]int, 18)},
			{Name: "LITTLE", NumOPPs: 10, CurIdx: 5, CapIdx: 5, OPPKHz: make([]int, 10)},
			{Name: "GPU", IsGPU: true, NumOPPs: 6, CurIdx: 3, CapIdx: 3, OPPKHz: make([]int, 6)},
		},
	}
	var act nullActuator
	// Warm up the table so the bench measures steady-state decisions.
	for i := 0; i < 1000; i++ {
		snap.NowUS += 100_000
		agent.Control(snap, act)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.NowUS += 100_000
		agent.Control(snap, act)
	}
}

func BenchmarkOverheadObserve(b *testing.B) {
	cfg := core.DefaultAgentConfig()
	agent := core.NewAgent(cfg)
	snap := ctrl.Snapshot{FPS: 60}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Observe(snap)
	}
}

// --- Ablations -----------------------------------------------------------

// ablationEval trains and evaluates Spotify (the paper's headline waste
// case) under a modified agent configuration and reports the saving.
func ablationEval(b *testing.B, mutate func(*core.AgentConfig)) {
	var saving float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultAgentConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		rows := exp.EvaluateApp("spotify", exp.EvalOptions{Seed: 42, MaxSessions: 8, SessionSecs: 120}, &cfg)
		saving = rows.NextPowerSavingPct
	}
	b.ReportMetric(saving, "%power_saved")
}

func BenchmarkAblationBaselinePPDW(b *testing.B) {
	ablationEval(b, nil)
}

func BenchmarkAblationRewardPPW(b *testing.B) {
	// Thermally-blind performance-per-watt reward: the paper's argument
	// for PPDW is that PPW "is not enough" on mobile.
	ablationEval(b, func(c *core.AgentConfig) { c.Reward.PPW = true })
}

func BenchmarkAblationMeanTarget(b *testing.B) {
	// Mean-of-window target instead of the paper's mode.
	ablationEval(b, func(c *core.AgentConfig) { c.UseMeanTarget = true })
}

func BenchmarkAblationWindow1s(b *testing.B) {
	// 1 s frame window (40 samples) vs the paper's empirically best 4 s.
	ablationEval(b, func(c *core.AgentConfig) { c.WindowSamples = 40; c.WarmupSamples = 10 })
}

func BenchmarkAblationWindow8s(b *testing.B) {
	ablationEval(b, func(c *core.AgentConfig) { c.WindowSamples = 320; c.WarmupSamples = 80 })
}

func BenchmarkAblationCoarseFPSState(b *testing.B) {
	// The paper's coarsest granularity (3 levels ↔ quantization 30):
	// trains fastest but cannot see moderate QoS shortfalls.
	ablationEval(b, func(c *core.AgentConfig) {
		c.State.FPSLevels = 3
		c.State.TargetLevels = 3
	})
}

func BenchmarkAblationDoubleQ(b *testing.B) {
	// Double Q-learning: removes max-operator overestimation under the
	// noisy PPDW reward (extension beyond the paper).
	ablationEval(b, func(c *core.AgentConfig) { c.Learner = "doubleq" })
}

func BenchmarkAblationSARSA(b *testing.B) {
	// On-policy SARSA: conservative around exploratory dips.
	ablationEval(b, func(c *core.AgentConfig) { c.Learner = "sarsa" })
}

// BenchmarkFleetCheckin measures the fleet policy server's hot path —
// one device check-in cycle: a Q-table upload (HTTP PUT, binary NXTB
// wire) followed by a federated merge round over the 64-device fleet
// the table joins. Alongside throughput it reports wire_B/checkin, the
// upload body size the negotiated codec puts on the wire (gated by a
// ceiling in BENCH_fleet.json so the binary format cannot quietly
// bloat). The baseline is recorded there too; the server must sustain
// ≥1000 check-ins/sec.
func BenchmarkFleetCheckin(b *testing.B) {
	srv, err := fleetd.NewServer(fleetd.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := fleetd.NewClient(ts.URL)
	client.UseBinary = true

	// A realistic device table: 64 visited states over the Note 9's
	// 9-action space, plus 63 pre-seeded peers so every merge round
	// federates a full fleet.
	const fleetDevices = 64
	rng := rand.New(rand.NewSource(42))
	for d := 0; d < fleetDevices; d++ {
		if _, err := client.UploadTable(fmt.Sprintf("dev-%03d", d), "note9", "spotify", benchFleetTable(rng)); err != nil {
			b.Fatal(err)
		}
	}
	table := benchFleetTable(rng)
	wire, err := core.MarshalTableBinary("spotify", table, false)
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		device := fmt.Sprintf("dev-%03d", i%fleetDevices)
		if _, err := client.UploadTable(device, "note9", "spotify", table); err != nil {
			b.Fatal(err)
		}
		if _, err := client.Merge("spotify", "note9"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "checkins/s")
	b.ReportMetric(float64(len(wire)), "wire_B/checkin")
}

// benchFleetTable builds the realistic device table the fleet benches
// upload: 64 visited states over the Note 9's 9-action space.
func benchFleetTable(rng *rand.Rand) *core.QTable {
	t := core.NewQTable(9)
	for s := 0; s < 64; s++ {
		row := make([]float64, 9)
		for a := range row {
			row[a] = rng.NormFloat64()
		}
		t.Q[core.StateKey(s)] = row
		t.Visits[core.StateKey(s)] = rng.Intn(200) + 1
	}
	return t
}

// BenchmarkFleetCheckinScale charts the serving tier's scaling curve:
// one op is the device-facing check-in cycle (table upload over the
// binary wire + merge round) at fleet sizes from 64 to 10 000 devices,
// flat against the root and through a 4-aggregator edge tier. In the two-tier topology
// the cycle's merge is regional — O(fleet/aggregators) instead of
// O(fleet) — which is where the ≥2× throughput at 10 000 devices comes
// from; federation to the root is batched off the device-facing path
// and verified (untimed) after each run by flushing every aggregator
// and confirming the root's join covers the whole fleet. The
// 10 000-device floors are gated in BENCH_fleet.json; the smaller
// points document the curve.
func BenchmarkFleetCheckinScale(b *testing.B) {
	for _, bc := range []struct {
		name    string
		devices int
		aggs    int
	}{
		{"flat/devices=64", 64, 0},
		{"flat/devices=1000", 1000, 0},
		{"flat/devices=10000", 10000, 0},
		{"aggs=4/devices=10000", 10000, 4},
	} {
		b.Run(bc.name, func(b *testing.B) { benchCheckinScale(b, bc.devices, bc.aggs) })
	}
}

func benchCheckinScale(b *testing.B, devices, aggs int) {
	root, err := fleetd.NewServer(fleetd.Config{MaxDevicesPerKey: devices + 1})
	if err != nil {
		b.Fatal(err)
	}
	rootTS := httptest.NewServer(root.Handler())
	defer rootTS.Close()
	rootClient := fleetd.NewClient(rootTS.URL)
	rootClient.UseBinary = true

	// Devices talk to the root directly (flat) or to their regional
	// aggregator (device d → aggregator d mod aggs).
	clients := []*fleetd.Client{rootClient}
	var edges []*aggregator.Server
	if aggs > 0 {
		if devices%aggs != 0 {
			b.Fatalf("devices=%d not divisible by aggs=%d; device routing would drift", devices, aggs)
		}
		clients = nil
		for a := 0; a < aggs; a++ {
			edge, err := aggregator.New(aggregator.Config{
				ID:   fmt.Sprintf("agg-%d", a),
				Root: rootTS.URL,
				// No background flusher and a queue sized for the whole
				// region: the timed loop measures the device-facing cycle,
				// and upward federation happens in the untimed checkpoint.
				FlushEvery:       -1,
				QueueLimit:       devices,
				MaxDevicesPerKey: devices,
			})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(edge.Handler())
			defer ts.Close()
			edges = append(edges, edge)
			c := fleetd.NewClient(ts.URL)
			c.UseBinary = true
			clients = append(clients, c)
		}
	}

	rng := rand.New(rand.NewSource(42))
	for d := 0; d < devices; d++ {
		device := fmt.Sprintf("dev-%05d", d)
		if _, err := clients[d%len(clients)].UploadTable(device, "note9", "spotify", benchFleetTable(rng)); err != nil {
			b.Fatal(err)
		}
	}
	table := benchFleetTable(rng)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		device := fmt.Sprintf("dev-%05d", i%devices)
		c := clients[i%len(clients)]
		if _, err := c.UploadTable(device, "note9", "spotify", table); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Merge("spotify", "note9"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "checkins/s")

	// Untimed topology checkpoint: drain every aggregator and confirm
	// the root's federated join sees the full fleet.
	if aggs > 0 {
		for _, edge := range edges {
			if _, err := edge.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		info, err := rootClient.Merge("spotify", "note9")
		if err != nil {
			b.Fatal(err)
		}
		if info.Devices != devices {
			b.Fatalf("root joined %d devices, want %d", info.Devices, devices)
		}
	}
}

// BenchmarkPolicyResolve measures the rollout manager's device-facing
// hot path — cohort bucketing plus stable/candidate artifact selection
// while a staged rollout is live — against 4096 registered devices.
// Every policy download goes through Resolve, so it must stay far
// cheaper than the HTTP serving around it; the floor is recorded in
// BENCH_fleet.json.
func BenchmarkPolicyResolve(b *testing.B) {
	var now int64
	m := rollout.New(rollout.Config{NowUS: func() int64 { now++; return now }})
	names := make([]string, 4096)
	for i := range names {
		names[i] = fmt.Sprintf("dev-%08d", i)
		m.RegisterDevice(names[i])
	}
	rng := rand.New(rand.NewSource(42))
	mkSet := func() *learner.TableSet {
		t := core.NewQTable(9)
		for s := 0; s < 64; s++ {
			row := make([]float64, 9)
			for a := range row {
				row[a] = rng.NormFloat64()
			}
			t.Q[core.StateKey(s)] = row
			t.Visits[core.StateKey(s)] = rng.Intn(200) + 1
		}
		return learner.SingleTableSet(t)
	}
	// A stable and a distinct candidate, so Resolve walks the full
	// staged-cohort split instead of the stable-only fast path.
	for round := int64(1); round <= 2; round++ {
		art, err := cloud.NewArtifact(mkSet(), round, len(names))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Submit("spotify@note9", art); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		art, _, ok := m.Resolve("spotify@note9", names[i%len(names)])
		if !ok || art == nil {
			b.Fatal("resolve returned no artifact")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "resolves/s")
}

// BenchmarkScenarioStep measures the scenario engine's hot path: one op
// compiles the broadest preset (mixed-day, scaled to ~21 simulated
// seconds so an op stays ~ms-sized) and integrates it through the sim
// engine — timeline cursor, ambient/refresh schedules, screen-off
// power path and all. The headline metric is simulated ticks per
// wall-clock second; the floor is recorded in BENCH_scenario.json and
// enforced by the CI bench gate.
func BenchmarkScenarioStep(b *testing.B) {
	plat := platform.MustGet(platform.DefaultName)
	scn := scenario.Scaled(scenario.MustGet("mixed-day"), 0.01)
	var ticks int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compiled, err := scenario.Compile(scn, 42, plat.AmbientC)
		if err != nil {
			b.Fatal(err)
		}
		cfg := plat.Config(compiled.Timeline, 42)
		cfg.Ambient = compiled.Ambient
		cfg.Refresh = compiled.Refresh
		eng, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng.Run()
		ticks += compiled.Timeline.DurUS() / 1000 // default 1 ms tick
	}
	b.StopTimer()
	b.ReportMetric(float64(ticks)/b.Elapsed().Seconds(), "simticks/s")
}

// sweepBenchConfigs assembles the canonical k-lane lockstep sweep the
// two benches below share: mixed-day at 1% scale, one structural seed,
// k consecutive engine seeds.
func sweepBenchConfigs(b *testing.B, k int) ([]sim.Config, int64) {
	b.Helper()
	plat := platform.MustGet(platform.DefaultName)
	scn := scenario.Scaled(scenario.MustGet("mixed-day"), 0.01)
	cfgs := make([]sim.Config, k)
	var durUS int64
	for r := 0; r < k; r++ {
		compiled, err := scenario.Compile(scn, 42, plat.AmbientC)
		if err != nil {
			b.Fatal(err)
		}
		cfg := plat.Config(compiled.Timeline, int64(100+r))
		cfg.Ambient = compiled.Ambient
		cfg.Refresh = compiled.Refresh
		cfgs[r] = cfg
		durUS = compiled.Timeline.DurUS()
	}
	return cfgs, durUS
}

// BenchmarkScenarioSweepBatched measures the lockstep batched engine:
// one op compiles an 8-lane mixed-day seed sweep and steps all lanes
// through one sim.BatchEngine — shared timeline cursor, schedule
// lookups and power/thermal constants, struct-of-arrays state. The
// metric is AGGREGATE simulated ticks per wall-clock second (k × the
// per-lane tick count); BENCH_scenario.json records the floor and the
// measured multiple over BenchmarkScenarioSweepScalar, the k-scalar
// reference below.
func BenchmarkScenarioSweepBatched(b *testing.B) {
	const k = 8
	var ticks int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfgs, durUS := sweepBenchConfigs(b, k)
		be, err := sim.NewBatch(cfgs)
		if err != nil {
			b.Fatal(err)
		}
		be.Run()
		ticks += int64(k) * durUS / 1000 // default 1 ms tick
	}
	b.StopTimer()
	b.ReportMetric(float64(ticks)/b.Elapsed().Seconds(), "simticks/s")
}

// BenchmarkScenarioSweepScalar runs the identical 8-lane sweep on one
// scalar engine per lane — the reference the batched gate's multiple is
// measured against. Same aggregate-ticks metric.
func BenchmarkScenarioSweepScalar(b *testing.B) {
	const k = 8
	var ticks int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfgs, durUS := sweepBenchConfigs(b, k)
		for r := 0; r < k; r++ {
			eng, err := sim.New(cfgs[r])
			if err != nil {
				b.Fatal(err)
			}
			eng.Run()
		}
		ticks += int64(k) * durUS / 1000
	}
	b.StopTimer()
	b.ReportMetric(float64(ticks)/b.Elapsed().Seconds(), "simticks/s")
}

// benchSink defeats dead-code elimination in the micro benches below.
var benchSink float64

// --- Per-subsystem micro gates (floors in BENCH_sim.json) ----------------
//
// The scenario bench above covers the integrated hot path; these three
// isolate the per-tick kernels the tentpole optimized, so a regression
// in one subsystem is caught at its own gate instead of hiding inside
// end-to-end noise.

// BenchmarkPowerStep measures the table-driven cluster power lookup —
// the engine evaluates it once per cluster per simulated millisecond.
func BenchmarkPowerStep(b *testing.B) {
	chip := soc.Exynos9810()
	model := power.Exynos9810Model()
	tables := make([]*power.Table, len(chip.Clusters))
	for i, c := range chip.Clusters {
		tables[i] = model.Table(c)
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k, c := range chip.Clusters {
			sink += tables[k].Power(i%c.NumOPPs(), 0.6, 55)
		}
	}
	b.StopTimer()
	benchSink = sink
	b.ReportMetric(float64(b.N)*float64(len(chip.Clusters))/b.Elapsed().Seconds(), "evals/s")
}

// BenchmarkThermalStep measures one RC-network integration step of the
// Note 9 thermal model — once per simulated millisecond in the engine.
func BenchmarkThermalStep(b *testing.B) {
	m := thermal.Note9(21)
	powerW := make([]float64, m.NumNodes())
	for i := range powerW {
		powerW[i] = 1.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(0.001, powerW)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkQuantize measures the agent's state-space quantizer round
// trip (Index + Value), the inner kernel of every Observe/Control.
func BenchmarkQuantize(b *testing.B) {
	q := stats.NewQuantizer(0, 120, 12)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += q.Value(q.Index(float64(i%1201) * 0.1))
	}
	b.StopTimer()
	benchSink = sink
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkAgentSelect measures one action selection through the
// Learner/Explorer interface pair (watkins + ε-greedy over a warmed
// 64-state table) — the decision half of every 100 ms control step.
// The floor in BENCH_sim.json pins the interface dispatch cost: the
// registry refactor must not make the paper's 227 ns step regress.
func BenchmarkAgentSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	l := learner.Must("watkins", 9)
	for i := 0; i < 2000; i++ {
		l.Update(core.StateKey(i%64), i%9, rng.Float64()-0.5, core.StateKey((i+1)%64), i%9, 0.3, 0.9, rng)
	}
	ex := learner.MustExplorer("egreedy", learner.ExplorerConfig{EpsilonStart: 0.08, EpsilonMin: 0.08})
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += l.SelectAction(ex, core.StateKey(i%64), rng)
	}
	b.StopTimer()
	benchSink = float64(sink)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "selects/s")
}

// BenchmarkAgentUpdate measures one TD update through the Learner
// interface (watkins over a warmed table) — the learning half of every
// control step. Gated like BenchmarkAgentSelect.
func BenchmarkAgentUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	l := learner.Must("watkins", 9)
	for i := 0; i < 2000; i++ {
		l.Update(core.StateKey(i%64), i%9, rng.Float64()-0.5, core.StateKey((i+1)%64), i%9, 0.3, 0.9, rng)
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += l.Update(core.StateKey(i%64), i%9, 0.25, core.StateKey((i+1)%64), i%9, 0.3, 0.9, rng)
	}
	b.StopTimer()
	benchSink = sink
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}

func BenchmarkExtensionHighRefresh(b *testing.B) {
	// 60/90/120 Hz panels (the paper evaluates only 60 Hz).
	var saving120 float64
	for i := 0; i < b.N; i++ {
		rows := exp.HighRefresh(42)
		saving120 = rows[len(rows)-1].SavingPct
	}
	b.ReportMetric(saving120, "%power_saved_120hz")
}
