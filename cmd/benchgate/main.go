// Command benchgate is the CI bench-regression gate: it reads
// `go test -bench` output on stdin, compares every baseline named in
// -baselines against the recorded floors/ceilings, and exits non-zero
// when a benchmark regressed below its floor (or a baseline's
// benchmark never ran — a renamed bench must fail the gate, not skip
// it).
//
// Usage:
//
//	go test -run NONE -bench 'FleetCheckin|ScenarioStep' -benchtime 1s . |
//	    go run ./cmd/benchgate -baselines BENCH_fleet.json,BENCH_scenario.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nextdvfs/internal/benchgate"
)

func main() {
	paths := flag.String("baselines", "", "comma-separated BENCH_*.json baseline files (required)")
	flag.Parse()
	if *paths == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baselines is required")
		os.Exit(2)
	}

	var baselines []benchgate.Baseline
	for _, p := range strings.Split(*paths, ",") {
		bs, err := benchgate.LoadBaselineFile(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		baselines = append(baselines, bs...)
	}

	results, err := benchgate.ParseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	violations, err := benchgate.Check(baselines, results)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(benchgate.FormatMargins(benchgate.Margins(baselines, results)))
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "FAIL", v)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: all floors held")
}
