// Command benchgate is the CI bench-regression gate: it reads
// `go test -bench` output on stdin, compares every baseline named in
// -baselines against the recorded floors/ceilings, and exits non-zero
// when a benchmark regressed below its floor (or a baseline's
// benchmark never ran — a renamed bench must fail the gate, not skip
// it).
//
// Usage:
//
//	go test -run NONE -bench 'FleetCheckin|ScenarioStep' -benchtime 1s . |
//	    go run ./cmd/benchgate -baselines BENCH_fleet.json,BENCH_scenario.json
//
// With -summary FILE the measured-vs-floor margin table is also
// appended to FILE as a markdown table — CI points it at
// $GITHUB_STEP_SUMMARY so every run's headroom lands on the workflow
// summary page.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nextdvfs/internal/benchgate"
)

func main() {
	paths := flag.String("baselines", "", "comma-separated BENCH_*.json baseline files (required)")
	summary := flag.String("summary", "", "append the margin table as markdown to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()
	if *paths == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baselines is required")
		os.Exit(2)
	}

	baselines, err := benchgate.LoadBaselineFiles(strings.Split(*paths, ","))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	results, err := benchgate.ParseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	violations, err := benchgate.Check(baselines, results)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	margins := benchgate.Margins(baselines, results)
	fmt.Print(benchgate.FormatMargins(margins))
	if *summary != "" {
		md := "### Benchmark margins\n\n" + benchgate.FormatMarginsMarkdown(margins) + "\n"
		f, err := os.OpenFile(*summary, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: -summary:", err)
			os.Exit(2)
		}
		if _, err := f.WriteString(md); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: -summary:", err)
			os.Exit(2)
		}
		f.Close()
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "FAIL", v)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: all floors held")
}
