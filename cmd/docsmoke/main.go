// Command docsmoke is the CI documentation gate: it extracts every
// shell command shown in the repo's markdown files, validates the
// flags those examples pass against the real CLIs (by parsing each
// tool's -h output), and checks that every internal and cmd package
// carries a doc comment. A README example that references a renamed
// flag — or a new package without documentation — fails the build.
//
//	go run ./cmd/docsmoke                      # README.md + docs/*.md + package docs
//	go run ./cmd/docsmoke -pkgdoc=false FILE…  # just the named markdown files
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"nextdvfs/internal/docsmoke"
)

func main() {
	root := flag.String("root", ".", "repository root (module directory holding cmd/ and internal/)")
	pkgdoc := flag.Bool("pkgdoc", true, "also require a package doc comment on every internal/* and cmd/* package")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		files = defaultFiles(*root)
	}

	tools, err := cmdTools(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docsmoke:", err)
		os.Exit(2)
	}

	var cmds []docsmoke.Command
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docsmoke:", err)
			os.Exit(2)
		}
		cmds = append(cmds, docsmoke.ExtractCommands(f, data, tools)...)
	}

	problems := docsmoke.Check(cmds, func(tool, sub string) (map[string]bool, error) {
		// The flag package prints usage to stderr and -h exits 2; both
		// are expected, so only an empty usage dump is an error.
		usage := func(args ...string) map[string]bool {
			out, _ := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...).CombinedOutput()
			return docsmoke.ParseHelpFlags(string(out))
		}
		var flags map[string]bool
		if sub != "" {
			// Multi-command tools (nextplan run/analyze) define per-sub
			// flag sets; a "sub" that was really a positional argument
			// yields no usage and falls through to the root flag set.
			flags = usage(sub, "-h")
		}
		if len(flags) <= 2 { // only the implicit h/help: no usage output
			flags = usage("-h")
		}
		if len(flags) <= 2 {
			return nil, fmt.Errorf("could not read -h usage")
		}
		return flags, nil
	})

	failed := false
	for _, p := range problems {
		failed = true
		fmt.Fprintln(os.Stderr, "docsmoke:", p)
	}

	if *pkgdoc {
		missing, err := docsmoke.MissingPackageDocs(filepath.Join(*root, "internal"), filepath.Join(*root, "cmd"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "docsmoke:", err)
			os.Exit(2)
		}
		for _, dir := range missing {
			failed = true
			fmt.Fprintf(os.Stderr, "docsmoke: %s: package has no doc comment\n", dir)
		}
	}

	if failed {
		os.Exit(1)
	}
	fmt.Printf("docsmoke: %d documented command(s) across %d file(s) match the CLIs\n", len(cmds), len(files))
}

// defaultFiles is README.md plus every markdown file under docs/.
func defaultFiles(root string) []string {
	files := []string{filepath.Join(root, "README.md")}
	docs, _ := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	sort.Strings(docs)
	return append(files, docs...)
}

// cmdTools lists the repo's CLI names: the subdirectories of cmd/.
func cmdTools(root string) (map[string]bool, error) {
	entries, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		return nil, err
	}
	tools := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() {
			tools[e.Name()] = true
		}
	}
	return tools, nil
}
