// Command nextbench regenerates every figure of the paper's evaluation
// on a simulated handset from the platform registry (the paper's Galaxy
// Note 9 by default) and prints the rows/series the paper reports.
// Optionally writes the underlying traces as CSV. The experiment grids
// fan out across a worker pool; -parallel 1 and -parallel 8 print
// identical numbers.
//
// Usage:
//
//	nextbench -fig all -seed 42 -out results/
//	nextbench -fig 7                       # just the Fig. 7 power matrix
//	nextbench -fig 7 -platform sd855       # same matrix on another SoC
//	nextbench -fig 78 -parallel 8          # fan the grid across 8 workers
//	nextbench -fleet 64                    # serving benchmark: 64-device fleet vs fleetd
//	nextbench -fleet 16 -rollout           # staged-rollout A/B lifecycle on the fleet
//	nextbench -platforms                   # list the registry
//	nextbench -scenarios                   # scenario × platform × scheme grid
//	nextbench -scenarios -schemes schedutil,powersave,next -scale 0.1
//	nextbench -learners all                # convergence + energy/QoS by update rule
//	nextbench -learners watkins,doubleq -explorer softmax
//	nextbench -sweep 8                     # 8-seed lockstep sweep of mixed-day
//	nextbench -sweep 16 -scenario doomscroll -scale 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nextdvfs"
	"nextdvfs/internal/exp"
	"nextdvfs/internal/fleetsim"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 1, 3, 4, 6, 7, 8, 78 (7+8 in one pass), refresh or all")
	seed := flag.Int64("seed", 42, "experiment seed")
	out := flag.String("out", "", "directory for CSV traces (optional)")
	plat := flag.String("platform", platform.DefaultName, "simulated device: "+strings.Join(platform.Names(), ", "))
	parallel := flag.Int("parallel", 0, "worker-pool size for experiment grids (0 = GOMAXPROCS, 1 = sequential)")
	fleet := flag.Int("fleet", 0, "serving benchmark: drive an in-process fleetd with N simulated devices and report throughput")
	fleetRollout := flag.Bool("rollout", false, "for -fleet: run a staged-rollout A/B lifecycle (canary → promote/rollback) instead of plain training rounds")
	fleetAggs := flag.Int("aggregators", 0, "for -fleet: route devices through this many in-process edge aggregators (two-tier topology)")
	fleetBinary := flag.Bool("binary", false, "for -fleet: devices speak the binary table wire codec")
	fleetDelta := flag.Bool("delta", false, "for -fleet: re-uploads send X-Fleet-Base-Gen deltas (pair with -epochs)")
	fleetEpochs := flag.Int("epochs", 0, "for -fleet: repeat the check-in cycle this many times, one extra training session per device between epochs")
	listPlats := flag.Bool("platforms", false, "list registered platforms and exit")
	scenarios := flag.Bool("scenarios", false, "run the scenario × platform × scheme grid instead of a figure")
	schemes := flag.String("schemes", "schedutil,next", "for -scenarios: comma-separated schemes ("+strings.Join(nextdvfs.Schemes(), ", ")+")")
	scale := flag.Float64("scale", 0, "for -scenarios: shrink every scenario's duration by this factor (0 = full length)")
	learners := flag.String("learners", "", "learner comparison grid: comma-separated learners or \"all\" ("+strings.Join(nextdvfs.Learners(), ", ")+")")
	explorer := flag.String("explorer", "", "for -learners/-scenarios: exploration strategy agent cells train with ("+strings.Join(nextdvfs.Explorers(), ", ")+"; default egreedy)")
	sweep := flag.Int("sweep", 0, "run a lockstep seed sweep: N engine seeds of one scenario batched through one engine (uses -scenario, -scale, the first -schemes entry)")
	sweepScenario := flag.String("scenario", "mixed-day", "for -sweep: scenario preset to sweep")
	flag.Parse()

	if *listPlats {
		for _, p := range nextdvfs.PlatformInfos() {
			fmt.Printf("%-14s %3d Hz  %s\n", p.Name, p.RefreshHz, p.Description)
		}
		return
	}
	if _, err := platform.Get(*plat); err != nil {
		fmt.Fprintln(os.Stderr, "nextbench:", err)
		os.Exit(2)
	}

	if *fleet > 0 {
		runFleet(*fleet, *plat, *seed, *parallel, *fleetRollout, *fleetAggs, *fleetBinary, *fleetDelta, *fleetEpochs)
		return
	}

	if *sweep > 0 {
		runSweep(*sweepScenario, *plat, *seed, *sweep, *schemes, *scale, *parallel, learnerList(*learners), *explorer)
		return
	}

	if *scenarios {
		// -scenarios -learners X,Y sweeps the grid's learner dimension;
		// without -scenarios, -learners runs the learner comparison grid.
		runScenarios(*plat, *seed, *schemes, *scale, *parallel, learnerList(*learners), *explorer)
		return
	}

	if *learners != "" {
		runLearners(*plat, *seed, *learners, *explorer, *parallel)
		return
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "nextbench:", err)
			os.Exit(1)
		}
	}

	if want("1") {
		runFig1(*plat, *seed, *out)
	}
	if want("3") {
		runFig3(*plat, *seed, *out)
	}
	if want("4") {
		runFig4(*plat, *seed)
	}
	if want("6") {
		runFig6(*plat, *seed, *parallel)
	}
	if want("7") || want("8") || *fig == "78" {
		runFig78(*plat, *seed, *fig, *parallel)
	}
	if *fig == "refresh" || *fig == "all" {
		runHighRefresh(*plat, *seed, *parallel)
	}
}

func runFleet(devices int, plat string, seed int64, parallel int, withRollout bool, aggregators int, binary, delta bool, epochs int) {
	opts := fleetsim.Options{
		Devices: devices, Platform: plat, Seed: seed, Parallel: parallel,
		Aggregators: aggregators,
		Binary:      binary, DeltaUploads: delta, Epochs: epochs,
	}
	switch {
	case withRollout:
		opts.Rollout = &fleetsim.RolloutOptions{}
		fmt.Printf("== Staged-rollout A/B: %d-device fleet against an in-process fleetd ==\n", devices)
	case aggregators > 0:
		fmt.Printf("== Serving benchmark: %d-device fleet through %d aggregators against an in-process fleetd ==\n", devices, aggregators)
	default:
		fmt.Printf("== Serving benchmark: %d-device fleet against an in-process fleetd ==\n", devices)
	}
	report, err := nextdvfs.BenchFleet(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextbench:", err)
		os.Exit(1)
	}
	report.WriteSummary(os.Stdout)
	fmt.Println()
}

// learnerList expands the -learners flag: "" → nil (each grid's
// default), "all" → the whole registry, else the comma list.
func learnerList(flag string) []string {
	if flag == "" {
		return nil
	}
	if flag == "all" {
		return nextdvfs.Learners()
	}
	return strings.Split(flag, ",")
}

func runLearners(plat string, seed int64, learners, explorer string, parallel int) {
	opts := exp.LearnerGridOptions{
		Seed:     seed,
		Platform: plat,
		Explorer: explorer,
		Parallel: parallel,
		Learners: learnerList(learners),
	}
	fmt.Printf("== Learner grid: convergence and energy/QoS by update rule on %s ==\n", plat)
	rows, err := exp.LearnerGrid(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextbench:", err)
		os.Exit(1)
	}
	exp.WriteLearnerGrid(os.Stdout, rows)
	fmt.Println()
}

func runScenarios(plat string, seed int64, schemes string, scale float64, parallel int, learners []string, explorer string) {
	fmt.Printf("== Scenario grid: %d usage scenarios on %s ==\n", len(nextdvfs.Scenarios()), plat)
	rows, err := exp.ScenarioGrid(exp.ScenarioOptions{
		Seed:          seed,
		Platforms:     []string{plat},
		Schemes:       strings.Split(schemes, ","),
		Learners:      learners,
		Explorer:      explorer,
		Parallel:      parallel,
		DurationScale: scale,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextbench:", err)
		os.Exit(1)
	}
	exp.WriteScenarioGrid(os.Stdout, rows)
	fmt.Println()
}

func runSweep(scen, plat string, seed int64, runs int, schemes string, scale float64, parallel int, learners []string, explorer string) {
	scheme := strings.Split(schemes, ",")[0]
	lrn := ""
	if len(learners) > 0 {
		lrn = learners[0]
	}
	fmt.Printf("== Seed sweep: %d lockstep runs of %s (%s) on %s ==\n", runs, scen, scheme, plat)
	rows, err := exp.SeedSweep(exp.SeedSweepOptions{
		Scenario:      scen,
		Platform:      plat,
		Scheme:        scheme,
		Learner:       lrn,
		Explorer:      explorer,
		Seed:          seed,
		Runs:          runs,
		Parallel:      parallel,
		DurationScale: scale,
		Lockstep:      true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextbench:", err)
		os.Exit(1)
	}
	exp.WriteSeedSweep(os.Stdout, rows)
	fmt.Println()
}

func runHighRefresh(plat string, seed int64, parallel int) {
	fmt.Println("== Extension: high-refresh panels (paper §I mentions 90/120 Hz) ==")
	rows := exp.HighRefreshOn(exp.HighRefreshOptions{Seed: seed, Platform: plat, Parallel: parallel})
	fmt.Printf("%8s %12s %10s %10s %10s %10s\n", "panel", "sched P(W)", "next P(W)", "saving%", "schedFPS", "nextFPS")
	for _, r := range rows {
		fmt.Printf("%7dHz %12.2f %10.2f %10.1f %10.1f %10.1f\n",
			r.RefreshHz, r.Sched.AvgPowerW, r.Next.AvgPowerW, r.SavingPct,
			r.Sched.ActiveAvgFPS, r.Next.ActiveAvgFPS)
	}
	fmt.Println()
}

var clusterNames = []string{"big", "LITTLE", "GPU"}

func runFig1(plat string, seed int64, out string) {
	fmt.Println("== Fig. 1: FPS and CPU frequencies, home→Facebook→Spotify on schedutil ==")
	r := exp.Fig1On(plat, seed)
	fmt.Printf("%8s %-10s %-8s %6s %10s %10s\n", "t(s)", "app", "inter", "FPS", "f_big(MHz)", "f_LIT(MHz)")
	for _, s := range r.Samples {
		fmt.Printf("%8.0f %-10s %-8s %6.0f %10.0f %10.0f\n",
			float64(s.TimeUS)/1e6, s.App, s.Interaction, s.FPS,
			float64(s.FreqKHz[0])/1000, float64(s.FreqKHz[1])/1000)
	}
	fmt.Printf("session: avg FPS %.1f, avg power %.2f W, displayed %d, dropped %d\n\n",
		r.Result.AvgFPS, r.Result.AvgPowerW, r.Result.FramesDisplayed, r.Result.FramesDropped)
	saveCSV(out, "fig1_schedutil_trace.csv", r.Samples)
}

func runFig3(plat string, seed int64, out string) {
	fmt.Println("== Fig. 3: power & big-CPU temperature, schedutil vs Next (same session) ==")
	r := exp.Fig3On(plat, seed)
	fmt.Printf("  avg power:  schedutil %.4f W | Next %.4f W  → saving %.2f%% (paper: 3.5154 → 2.0433 W, 41.88%%)\n",
		r.Sched.AvgPowerW, r.Next.AvgPowerW, r.PowerSavingPct)
	fmt.Printf("  avg T_big:  schedutil %.2f °C | Next %.2f °C → rise reduction %.2f%% (paper: 52.33 → 41.33 °C, 21.02%%)\n",
		r.Sched.AvgTempBigC, r.Next.AvgTempBigC, r.AvgTempRedPct)
	fmt.Printf("  peak T_big: schedutil %.2f °C | Next %.2f °C → rise reduction %.2f%%\n",
		r.Sched.PeakTempBigC, r.Next.PeakTempBigC, r.PeakTempRedPct)
	fmt.Printf("  QoS: active FPS schedutil %.1f | Next %.1f\n", r.Sched.ActiveAvgFPS, r.Next.ActiveAvgFPS)
	for _, t := range r.Train {
		fmt.Printf("  training %-10s sessions-converged=%v states=%d steps=%d (%.0f s on-device)\n",
			t.App, t.Converged, t.States, t.Steps, float64(t.TrainedUS)/1e6)
	}
	fmt.Println()
	saveCSV(out, "fig3_schedutil_trace.csv", r.Sched.Samples)
	saveCSV(out, "fig3_next_trace.csv", r.Next.Samples)
}

func runFig4(plat string, seed int64) {
	fmt.Println("== Fig. 4: PPDW vs FPS on Lineage 2 Revolution ==")
	r := exp.Fig4On(plat, seed)
	fmt.Printf("%8s %10s %10s %10s %s\n", "FPS", "PPDW", "P(W)", "T_big(°C)", "kind")
	for _, p := range r.Points {
		kind := "frontier"
		if p.Worst {
			kind = "worst (red in paper)"
		}
		fmt.Printf("%8.1f %10.4f %10.2f %10.1f %s\n", p.FPS, p.PPDW, p.PowerW, p.TempBigC, kind)
	}
	fmt.Printf("bounds: PPDW_worst %.4f < PPDW ≤ PPDW_best %.4f (Eq. 2)\n\n", r.Bounds.Worst, r.Bounds.Best)
}

func runFig6(plat string, seed int64, parallel int) {
	fmt.Println("== Fig. 6: training time vs FPS state granularity, online vs cloud ==")
	points := exp.Fig6(exp.Fig6Options{Seed: seed, Platform: plat, Parallel: parallel})
	fmt.Printf("%10s %12s %12s %10s\n", "FPS levels", "online (s)", "cloud (s)", "converged")
	for _, p := range points {
		fmt.Printf("%10d %12.0f %12.0f %10v\n", p.FPSLevels, p.OnlineS, p.CloudS, p.Converged)
	}
	fmt.Println("(paper: online 67→312 s, cloud 7→73 s as granularity grows)")
	fmt.Println()
}

func runFig78(plat string, seed int64, which string, parallel int) {
	fmt.Println("== Fig. 7 / Fig. 8: per-app power and peak temperatures by scheme ==")
	rows := exp.Evaluate(exp.EvalOptions{Seed: seed, Platform: plat, Parallel: parallel})
	if which == "all" || which == "7" || which == "78" {
		fmt.Println("-- Fig. 7: average power (W) --")
		fmt.Printf("%-20s %10s %10s %10s %12s %12s\n", "app", "schedutil", "Next", "IntQoS", "Next sav%", "IntQoS sav%")
		for _, r := range rows {
			iq, iqs := "-", "-"
			if r.IntQoS != nil {
				iq = fmt.Sprintf("%.2f", r.IntQoS.AvgPowerW)
				iqs = fmt.Sprintf("%.1f", r.IntQoSPowerSavingPct)
			}
			fmt.Printf("%-20s %10.2f %10.2f %10s %12.1f %12s\n",
				r.App, r.Sched.AvgPowerW, r.Next.AvgPowerW, iq, r.NextPowerSavingPct, iqs)
		}
		fmt.Println("(paper Next savings: facebook 37.05, lineage 50.68, pubg 40.95, spotify 32.98, chrome 32.11, youtube 40.6;")
		fmt.Println(" paper IntQoS savings: lineage 16.31, pubg 23.84)")
		fmt.Println()
	}
	if which == "all" || which == "8" || which == "78" {
		fmt.Println("-- Fig. 8: average peak temperature (°C) --")
		fmt.Printf("%-20s %9s %9s %9s %9s %9s %9s %11s %11s\n",
			"app", "schedB", "nextB", "iqB", "schedD", "nextD", "iqD", "nextB red%", "nextD red%")
		for _, r := range rows {
			iqB, iqD := "-", "-"
			if r.IntQoS != nil {
				iqB = fmt.Sprintf("%.1f", r.IntQoS.PeakTempBigC)
				iqD = fmt.Sprintf("%.1f", r.IntQoS.PeakTempDevC)
			}
			fmt.Printf("%-20s %9.1f %9.1f %9s %9.1f %9.1f %9s %11.1f %11.1f\n",
				r.App, r.Sched.PeakTempBigC, r.Next.PeakTempBigC, iqB,
				r.Sched.PeakTempDevC, r.Next.PeakTempDevC, iqD,
				r.NextBigTempRedPct, r.NextDevTempRedPct)
		}
		fmt.Println("(paper: Next up to 29.16% big / 21.21% device; IntQoS up to 22.80% big / 3.51% device)")
		fmt.Println()
	}
	// QoS transparency: the paper does not report post-Next FPS; we do.
	fmt.Println("-- QoS (active-phase average FPS) --")
	fmt.Printf("%-20s %10s %10s %10s\n", "app", "schedutil", "Next", "IntQoS")
	for _, r := range rows {
		iq := "-"
		if r.IntQoS != nil {
			iq = fmt.Sprintf("%.1f", r.IntQoS.ActiveAvgFPS)
		}
		fmt.Printf("%-20s %10.1f %10.1f %10s\n", r.App, r.Sched.ActiveAvgFPS, r.Next.ActiveAvgFPS, iq)
	}
	fmt.Println()
}

func saveCSV(dir, name string, samples []sim.Sample) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name)
	if err := trace.SaveSamples(path, clusterNames, samples); err != nil {
		fmt.Fprintln(os.Stderr, "nextbench: saving", name+":", err)
		return
	}
	fmt.Println("   wrote", path)
}
