// Command nextfleetd runs the fleet policy server — the paper's
// Section IV-C cloud trainer as a network service — or benchmarks it
// against a simulated device fleet.
//
// Serve mode (default): listen for device check-ins, Q-table uploads,
// federated merge rounds and policy downloads, optionally persisting
// every merged policy to a snapshot directory that the next launch
// warm-starts from:
//
//	nextfleetd -addr 127.0.0.1:8077 -snapshot /var/lib/nextfleetd
//
// Bench mode: spin an in-process server, drive it with N simulated
// devices (each trains on the sim engine, then checks in, uploads,
// merges and pulls), and print throughput:
//
//	nextfleetd -bench 64 -app spotify -platform note9 -seed 42
//
// Rollout mode: pass -rollout to enable the policy lifecycle in serve
// mode (versioned artifacts, staged canary rollout, automatic
// QoS/energy rollback), or combine -bench with -rollout to run a full
// A/B lifecycle against the simulated fleet:
//
//	nextfleetd -addr 127.0.0.1:8077 -rollout
//	nextfleetd -bench 16 -rollout -app chrome -seconds 6 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"nextdvfs"
	"nextdvfs/internal/fleetsim"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address (serve mode)")
	snapshot := flag.String("snapshot", "", "snapshot directory: merged policies persist here and warm-start the next launch")
	bench := flag.Int("bench", 0, "bench mode: drive an in-process server with N simulated devices and exit")
	app := flag.String("app", workload.NameSpotify, "app the simulated fleet trains (bench mode)")
	plat := flag.String("platform", platform.DefaultName, "simulated device: "+strings.Join(platform.Names(), ", "))
	sessions := flag.Int("sessions", 1, "training sessions per device (bench mode)")
	seconds := flag.Float64("seconds", 8, "simulated seconds per training session (bench mode)")
	seed := flag.Int64("seed", 42, "base seed; device i trains from seed+(i+1)*7919")
	parallel := flag.Int("parallel", 0, "device worker-pool size (0 = GOMAXPROCS)")
	learnerName := flag.String("learner", "", "TD update rule every device trains with (bench mode; \"\" = watkins)")
	rollout := flag.Bool("rollout", false, "enable the policy lifecycle: versioned artifacts, staged canary rollout, automatic rollback (serve mode), or run an A/B lifecycle (bench mode)")
	sabotage := flag.Bool("sabotage", false, "rollout bench: corrupt the candidate generation's uploads so the canary regresses and the server rolls back")
	flag.Parse()

	if *bench > 0 {
		runBench(*bench, *app, *plat, *sessions, *seconds, *seed, *parallel, *learnerName, *rollout, *sabotage)
		return
	}
	serve(*addr, *snapshot, *rollout)
}

func serve(addr, snapshot string, enableRollout bool) {
	opts := nextdvfs.FleetServeOptions{Addr: addr, SnapshotDir: snapshot}
	if enableRollout {
		opts.Rollout = &nextdvfs.RolloutConfig{}
	}
	srv, err := nextdvfs.ServeFleet(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextfleetd:", err)
		os.Exit(1)
	}
	fmt.Println("nextfleetd serving on", srv.URL())
	if snapshot != "" {
		fmt.Println("  snapshots:", snapshot)
	}
	fmt.Println("  POST /v1/checkin   device check-in")
	fmt.Println("  PUT  /v1/table     upload a device-trained Q-table")
	fmt.Println("  POST /v1/merge     run a federated merge round")
	fmt.Println("  GET  /v1/policy    download the merged policy")
	fmt.Println("  GET  /v1/apps      list known policies")
	if enableRollout {
		fmt.Println("  GET  /v1/rollout   staged-rollout status (versions, stage, cohort reports)")
		fmt.Println("  POST /v1/report    device QoS/energy report for the active candidate")
	}
	fmt.Println("  GET  /healthz      liveness")
	fmt.Println("  GET  /metrics      request counts and merge latencies")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("\nnextfleetd: shutting down")
	srv.Close()
}

func runBench(devices int, app, plat string, sessions int, seconds float64, seed int64, parallel int, learnerName string, withRollout, sabotage bool) {
	opts := fleetsim.Options{
		Devices: devices, App: app, Platform: plat,
		Sessions: sessions, SessionSecs: seconds,
		Seed: seed, Parallel: parallel, Learner: learnerName,
	}
	if withRollout {
		opts.Rollout = &fleetsim.RolloutOptions{Sabotage: sabotage}
		fmt.Printf("== fleet rollout A/B: %d devices × %d session(s) of %s on %s ==\n", devices, sessions, app, plat)
	} else {
		fmt.Printf("== fleet bench: %d devices × %d session(s) of %s on %s ==\n", devices, sessions, app, plat)
	}
	report, err := nextdvfs.BenchFleet(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextfleetd:", err)
		os.Exit(1)
	}
	report.WriteSummary(os.Stdout)
	if report.Errors > 0 {
		os.Exit(1)
	}
}
