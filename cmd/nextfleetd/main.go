// Command nextfleetd runs the fleet policy server — the paper's
// Section IV-C cloud trainer as a network service — or benchmarks it
// against a simulated device fleet.
//
// Serve mode (default): listen for device check-ins, Q-table uploads,
// federated merge rounds and policy downloads, optionally persisting
// every merged policy to a snapshot directory that the next launch
// warm-starts from:
//
//	nextfleetd -addr 127.0.0.1:8077 -snapshot /var/lib/nextfleetd
//
// Bench mode: spin an in-process server, drive it with N simulated
// devices (each trains on the sim engine, then checks in, uploads,
// merges and pulls), and print throughput:
//
//	nextfleetd -bench 64 -app spotify -platform note9 -seed 42
//
// Rollout mode: pass -rollout to enable the policy lifecycle in serve
// mode (versioned artifacts, staged canary rollout, automatic
// QoS/energy rollback), or combine -bench with -rollout to run a full
// A/B lifecycle against the simulated fleet:
//
//	nextfleetd -addr 127.0.0.1:8077 -rollout
//	nextfleetd -bench 16 -rollout -app chrome -seconds 6 -seed 1
//
// Aggregator mode: run an edge aggregator of the two-tier topology in
// front of a root server. Devices talk to the aggregator; it merges
// locally, queues the raw device tables, and federates them upward in
// batches (answering 429 + Retry-After when the queue fills). Combine
// -bench with -aggregators to benchmark the two-tier path in-process:
//
//	nextfleetd -aggregator -root http://127.0.0.1:8077 -agg-id edge-west
//	nextfleetd -bench 64 -aggregators 4
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"nextdvfs"
	"nextdvfs/internal/fleetsim"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address (serve mode)")
	snapshot := flag.String("snapshot", "", "snapshot directory: merged policies persist here and warm-start the next launch")
	bench := flag.Int("bench", 0, "bench mode: drive an in-process server with N simulated devices and exit")
	app := flag.String("app", workload.NameSpotify, "app the simulated fleet trains (bench mode)")
	plat := flag.String("platform", platform.DefaultName, "simulated device: "+strings.Join(platform.Names(), ", "))
	sessions := flag.Int("sessions", 1, "training sessions per device (bench mode)")
	seconds := flag.Float64("seconds", 8, "simulated seconds per training session (bench mode)")
	seed := flag.Int64("seed", 42, "base seed; device i trains from seed+(i+1)*7919")
	parallel := flag.Int("parallel", 0, "device worker-pool size (0 = GOMAXPROCS)")
	learnerName := flag.String("learner", "", "TD update rule every device trains with (bench mode; \"\" = watkins)")
	rollout := flag.Bool("rollout", false, "enable the policy lifecycle: versioned artifacts, staged canary rollout, automatic rollback (serve mode), or run an A/B lifecycle (bench mode)")
	sabotage := flag.Bool("sabotage", false, "rollout bench: corrupt the candidate generation's uploads so the canary regresses and the server rolls back")
	aggMode := flag.Bool("aggregator", false, "serve an edge aggregator instead of the root fleet server")
	root := flag.String("root", "", "aggregator mode: root fleet server base URL (empty = standalone edge)")
	aggID := flag.String("agg-id", "edge", "aggregator mode: this edge's name in federation pushes")
	queue := flag.Int("queue", 0, "aggregator mode: upward queue capacity in (policy, device) pairs (0 = 4096)")
	flushEvery := flag.Duration("flush-every", 0, "aggregator mode: background federation cadence (0 = 500ms, negative disables)")
	aggregators := flag.Int("aggregators", 0, "bench mode: route devices through this many in-process edge aggregators (two-tier topology)")
	binary := flag.Bool("binary", false, "bench mode: devices speak the binary table wire codec (Content-Type/Accept negotiation; merges stay byte-identical)")
	delta := flag.Bool("delta", false, "bench mode: re-uploads send X-Fleet-Base-Gen deltas instead of full tables (requires -epochs > 1 to matter)")
	epochs := flag.Int("epochs", 0, "bench mode: repeat the check-in cycle (upload, merge, policy pull) this many times, one extra training session per device between epochs (0/1 = single cycle)")
	flag.Parse()

	if *bench > 0 {
		runBench(benchConfig{
			devices: *bench, app: *app, plat: *plat, sessions: *sessions,
			seconds: *seconds, seed: *seed, parallel: *parallel,
			learner: *learnerName, rollout: *rollout, sabotage: *sabotage,
			aggregators: *aggregators, binary: *binary, delta: *delta, epochs: *epochs,
		})
		return
	}
	if *aggMode {
		// The root owns the default port; an aggregator that wasn't given
		// an explicit -addr binds one above so the two can share a host.
		aggAddr := "127.0.0.1:8078"
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "addr" {
				aggAddr = *addr
			}
		})
		serveAggregator(aggAddr, *aggID, *root, *queue, *flushEvery)
		return
	}
	serve(*addr, *snapshot, *rollout)
}

func serve(addr, snapshot string, enableRollout bool) {
	opts := nextdvfs.FleetServeOptions{Addr: addr, SnapshotDir: snapshot}
	if enableRollout {
		opts.Rollout = &nextdvfs.RolloutConfig{}
	}
	srv, err := nextdvfs.ServeFleet(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextfleetd:", err)
		os.Exit(1)
	}
	fmt.Println("nextfleetd serving on", srv.URL())
	if snapshot != "" {
		fmt.Println("  snapshots:", snapshot)
	}
	fmt.Println("  POST /v1/checkin   device check-in")
	fmt.Println("  PUT  /v1/table     upload a device-trained Q-table")
	fmt.Println("  POST /v1/merge     run a federated merge round")
	fmt.Println("  GET  /v1/policy    download the merged policy")
	fmt.Println("  GET  /v1/apps      list known policies")
	if enableRollout {
		fmt.Println("  GET  /v1/rollout   staged-rollout status (versions, stage, cohort reports)")
		fmt.Println("  POST /v1/report    device QoS/energy report for the active candidate")
	}
	fmt.Println("  GET  /healthz      liveness")
	fmt.Println("  GET  /metrics      request counts and merge latencies")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("\nnextfleetd: shutting down")
	srv.Close()
}

func serveAggregator(addr, id, root string, queue int, flushEvery time.Duration) {
	srv, err := nextdvfs.ServeAggregator(nextdvfs.AggregatorOptions{
		Addr: addr, ID: id, Root: root, QueueLimit: queue, FlushEvery: flushEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextfleetd:", err)
		os.Exit(1)
	}
	fmt.Println("nextfleetd aggregator", id, "serving on", srv.URL())
	if root != "" {
		fmt.Println("  federating to root:", root)
	} else {
		fmt.Println("  standalone edge: local merges only, no upward federation")
	}
	fmt.Println("  POST /v1/checkin   device check-in")
	fmt.Println("  PUT  /v1/table     upload a device-trained Q-table (429 + Retry-After when the queue is full)")
	fmt.Println("  POST /v1/merge     run a local merge round")
	fmt.Println("  GET  /v1/policy    download a policy (proxied to the root, local fallback)")
	fmt.Println("  GET  /v1/apps      list local policies")
	fmt.Println("  POST /v1/flush     federate queued tables to the root now")
	fmt.Println("  GET  /healthz      liveness and queue depth")
	fmt.Println("  GET  /metrics      pipeline counters (pending, forwarded, rejected, fallbacks)")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("\nnextfleetd: aggregator shutting down")
	if n, err := srv.Flush(); err == nil && n > 0 {
		fmt.Printf("  drained %d queued tables to the root\n", n)
	}
	srv.Close()
}

// benchConfig keeps bench mode's flag plumbing in one place.
type benchConfig struct {
	devices, sessions, parallel, aggregators, epochs int
	app, plat, learner                               string
	seconds                                          float64
	seed                                             int64
	rollout, sabotage, binary, delta                 bool
}

func runBench(c benchConfig) {
	opts := fleetsim.Options{
		Devices: c.devices, App: c.app, Platform: c.plat,
		Sessions: c.sessions, SessionSecs: c.seconds,
		Seed: c.seed, Parallel: c.parallel, Learner: c.learner,
		Aggregators: c.aggregators,
		Binary:      c.binary, DeltaUploads: c.delta, Epochs: c.epochs,
	}
	wire := ""
	if c.binary {
		wire = ", binary wire"
	}
	if c.delta {
		wire += ", delta uploads"
	}
	switch {
	case c.rollout:
		opts.Rollout = &fleetsim.RolloutOptions{Sabotage: c.sabotage}
		fmt.Printf("== fleet rollout A/B: %d devices × %d session(s) of %s on %s%s ==\n", c.devices, c.sessions, c.app, c.plat, wire)
	case c.aggregators > 0:
		fmt.Printf("== fleet bench: %d devices → %d aggregators × %d session(s) of %s on %s%s ==\n", c.devices, c.aggregators, c.sessions, c.app, c.plat, wire)
	case c.epochs > 1:
		fmt.Printf("== fleet bench: %d devices × %d session(s) of %s on %s, %d check-in epochs%s ==\n", c.devices, c.sessions, c.app, c.plat, c.epochs, wire)
	default:
		fmt.Printf("== fleet bench: %d devices × %d session(s) of %s on %s%s ==\n", c.devices, c.sessions, c.app, c.plat, wire)
	}
	report, err := nextdvfs.BenchFleet(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextfleetd:", err)
		os.Exit(1)
	}
	report.WriteSummary(os.Stdout)
	if report.Errors > 0 {
		os.Exit(1)
	}
}
