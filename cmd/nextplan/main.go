// Command nextplan is the SLO-driven capacity-planning workbench: it
// sweeps a declarative plan file (an SLO plus a configuration grid)
// through the deterministic simulator and judges every cell against
// the SLO.
//
//	nextplan run -plan examples/plan/smoke.json -out results.jsonl
//	nextplan analyze -plan examples/plan/smoke.json -results results.jsonl
//
// The run stage appends one JSONL row per grid cell, with provenance
// (seed, config hash, git describe, host). Rows already on disk are
// skipped by config hash, so an interrupted sweep resumes where it
// stopped — and because the simulator is seed-deterministic, the same
// plan produces byte-identical result files on every run (CI cmp's
// two consecutive sweeps to prove it). The analyze stage reports
// pass/fail per cell, the cheapest SLO-passing configuration
// (energy-first, QoS tiebreak) and per-axis sensitivity, as a text
// table or machine-readable JSON (-json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nextdvfs/internal/plan"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runCmd(os.Args[2:])
	case "analyze":
		err = analyzeCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "nextplan: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextplan:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  nextplan run     -plan FILE -out FILE [-parallel N] [-lockstep] [-fresh]
  nextplan analyze -plan FILE -results FILE [-json]

Subcommands:
  run      sweep the plan's grid, appending one JSONL result row per
           cell; completed cells (matched by config hash) are skipped,
           so re-running resumes an interrupted sweep
  analyze  evaluate every cell's row against the plan's SLO and report
           pass/fail, the cheapest passing config and axis sensitivity

Run 'nextplan run -h' or 'nextplan analyze -h' for flag details.
`)
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("nextplan run", flag.ExitOnError)
	planPath := fs.String("plan", "", "plan file (required)")
	out := fs.String("out", "", "JSONL result file to append to (required)")
	parallel := fs.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	lockstep := fs.Bool("lockstep", false, "batch each (scenario, platform) pair through one lockstep engine")
	fresh := fs.Bool("fresh", false, "discard an existing result file instead of resuming into it")
	fs.Parse(args)
	if *planPath == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("-plan and -out are required")
	}
	p, err := plan.Load(*planPath)
	if err != nil {
		return err
	}
	rep, err := plan.Run(p, *out, plan.RunOptions{
		Parallel: *parallel,
		Lockstep: *lockstep,
		Fresh:    *fresh,
	})
	if err != nil {
		return err
	}
	fmt.Printf("plan %s: %d cells — ran %d, skipped %d (already done)", p.Name, rep.Cells, rep.Ran, rep.Skipped)
	if rep.Stale > 0 {
		fmt.Printf(", %d stale row(s) ignored", rep.Stale)
	}
	fmt.Println()
	return nil
}

func analyzeCmd(args []string) error {
	fs := flag.NewFlagSet("nextplan analyze", flag.ExitOnError)
	planPath := fs.String("plan", "", "plan file (required)")
	results := fs.String("results", "", "JSONL result file a run produced (required)")
	asJSON := fs.Bool("json", false, "emit the analysis as JSON instead of text")
	fs.Parse(args)
	if *planPath == "" || *results == "" {
		fs.Usage()
		return fmt.Errorf("-plan and -results are required")
	}
	p, err := plan.Load(*planPath)
	if err != nil {
		return err
	}
	rows, err := plan.ReadRows(*results)
	if err != nil {
		return err
	}
	a := plan.Analyze(p, rows)
	if *asJSON {
		data, err := json.MarshalIndent(a, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		a.WriteText(os.Stdout)
	}
	if a.Fail > 0 && a.Cheapest == nil {
		return fmt.Errorf("no configuration meets the SLO")
	}
	return nil
}
