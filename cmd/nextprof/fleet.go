package main

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"

	"nextdvfs/internal/core"
	"nextdvfs/internal/fleetd"
	"nextdvfs/internal/learner"
)

func fatalFleet(err error) {
	fmt.Fprintln(os.Stderr, "nextprof:", err)
	os.Exit(1)
}

// buildFleetWorkload wires the fleet check-in cycle under the
// profiler: an in-process fleetd with N registered devices, and per
// iteration every device perturbs one state of its table, re-uploads
// it (as an X-Fleet-Base-Gen delta or a full table, over the binary or
// JSON wire), one federated merge round runs, and one merged policy is
// pulled. With deltas on, that is exactly the O(changed state) cycle
// the incremental merge path serves; -fleet-delta=false -fleet-wire
// json reproduces the legacy O(fleet) cycle for comparison.
func buildFleetWorkload(devices int, wire string, delta bool, seed int64) (func(), string, error) {
	var binary bool
	switch wire {
	case "binary":
		binary = true
	case "json":
	default:
		return nil, "", fmt.Errorf("unknown -fleet-wire %q (want binary or json)", wire)
	}

	srv, err := fleetd.NewServer(fleetd.Config{MaxDevicesPerKey: devices + 1})
	if err != nil {
		return nil, "", err
	}
	ts := httptest.NewServer(srv.Handler())
	client := fleetd.NewClient(ts.URL)
	client.UseBinary = binary

	const app, plat = "spotify", "note9"
	rng := rand.New(rand.NewSource(seed))
	sets := make([]*core.TableSet, devices)
	uploaders := make([]*fleetd.DeltaUploader, devices)
	for d := 0; d < devices; d++ {
		device := fmt.Sprintf("dev-%05d", d)
		t := core.NewQTable(9)
		for s := 0; s < 64; s++ {
			row := make([]float64, 9)
			for a := range row {
				row[a] = rng.NormFloat64()
			}
			t.Q[core.StateKey(s)] = row
			t.Visits[core.StateKey(s)] = rng.Intn(200) + 1
		}
		sets[d] = learner.SingleTableSet(t)
		if delta {
			uploaders[d] = client.NewDeltaUploader(device, plat, app)
			if _, err := uploaders[d].Upload(sets[d]); err != nil {
				return nil, "", err
			}
		} else if _, err := client.UploadTableSet(device, plat, app, sets[d]); err != nil {
			return nil, "", err
		}
	}
	if _, err := client.Merge(app, plat); err != nil {
		return nil, "", err
	}

	mode := "full"
	if delta {
		mode = "delta"
	}
	desc := fmt.Sprintf("fleet check-in cycle: %d devices, %s wire, %s uploads (seed %d)",
		devices, wire, mode, seed)
	iter := 0
	return func() {
		iter++
		for d := 0; d < devices; d++ {
			t := sets[d].Primary()
			k := core.StateKey((iter + d) % 64)
			t.Q[k][iter%9] += 0.001
			t.Visits[k]++
			t.Steps++
			var err error
			if delta {
				_, err = uploaders[d].Upload(sets[d])
			} else {
				_, err = client.UploadTableSet(fmt.Sprintf("dev-%05d", d), plat, app, sets[d])
			}
			if err != nil {
				fatalFleet(err)
			}
		}
		if _, err := client.Merge(app, plat); err != nil {
			fatalFleet(err)
		}
		if _, _, err := client.PolicySet(app, plat); err != nil {
			fatalFleet(err)
		}
	}, desc, nil
}
