// Command nextprof is the performance-work harness: it runs a scenario
// or figure workload under CPU and heap profiling and prints the top-N
// hotspot tables straight away (via the dependency-free pprof parser in
// internal/prof), so "what do we optimize next?" is one command:
//
//	nextprof                              # mixed-day scenario, top 15
//	nextprof -scenario gaming-marathon -top 20
//	nextprof -fig 7 -platform sd855       # profile the Fig. 7 matrix
//	nextprof -sweep 8                     # profile the lockstep batched engine, k=8
//	nextprof -fleet 256                   # profile the fleet check-in cycle, 256 devices
//	nextprof -fleet 256 -fleet-wire json -fleet-delta=false
//	nextprof -benchtime 10s -cpuprofile cpu.prof -memprofile mem.prof
//
// The raw profiles are kept on disk (paths printed at the end) so a
// deeper dive with `go tool pprof` can pick up where the table stops.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"nextdvfs/internal/exp"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/prof"
	"nextdvfs/internal/scenario"
	"nextdvfs/internal/sim"
)

func main() {
	scen := flag.String("scenario", "mixed-day", "scenario preset to profile (see nextsim -scenarios for the list)")
	fig := flag.String("fig", "", "profile a figure workload instead: 1, 3, 4, 6, 7 or 8")
	plat := flag.String("platform", platform.DefaultName, "platform registry name")
	seed := flag.Int64("seed", 42, "simulation seed")
	scale := flag.Float64("scale", 0.01, "scenario duration scale factor (1.0 = full-length preset)")
	sweep := flag.Int("sweep", 0, "profile the batched lockstep path: step N lanes of the scenario through one sim.BatchEngine per iteration (0 = scalar engine)")
	fleet := flag.Int("fleet", 0, "profile the fleet check-in cycle instead: N devices re-upload a perturbed table, one merge round runs, one policy is pulled, per iteration")
	fleetWire := flag.String("fleet-wire", "binary", "fleet wire codec: binary or json")
	fleetDelta := flag.Bool("fleet-delta", true, "fleet uploads send X-Fleet-Base-Gen deltas (false = full tables)")
	benchtime := flag.Duration("benchtime", 2*time.Second, "minimum wall-clock time to keep the workload running")
	topN := flag.Int("top", 15, "table rows per profile")
	cpuOut := flag.String("cpuprofile", "", "CPU profile path (default: nextprof.cpu.pb.gz in the temp dir)")
	memOut := flag.String("memprofile", "", "heap profile path (default: nextprof.mem.pb.gz in the temp dir)")
	flag.Parse()

	if *cpuOut == "" {
		*cpuOut = filepath.Join(os.TempDir(), "nextprof.cpu.pb.gz")
	}
	if *memOut == "" {
		*memOut = filepath.Join(os.TempDir(), "nextprof.mem.pb.gz")
	}

	var run func()
	var desc string
	var err error
	if *fleet > 0 {
		run, desc, err = buildFleetWorkload(*fleet, *fleetWire, *fleetDelta, *seed)
	} else {
		run, desc, err = buildWorkload(*fig, *scen, *plat, *seed, *scale, *sweep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextprof:", err)
		os.Exit(2)
	}

	cpuF, err := os.Create(*cpuOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextprof:", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		fmt.Fprintln(os.Stderr, "nextprof:", err)
		os.Exit(1)
	}
	fmt.Printf("profiling %s for at least %s ...\n", desc, *benchtime)
	// Always at least one iteration, so -benchtime 0 still profiles a
	// full workload pass instead of handing an empty profile to the
	// parser.
	iters := 0
	start := time.Now()
	for {
		run()
		iters++
		if time.Since(start) >= *benchtime {
			break
		}
	}
	elapsed := time.Since(start)
	pprof.StopCPUProfile()
	if err := cpuF.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "nextprof:", err)
		os.Exit(1)
	}

	memF, err := os.Create(*memOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nextprof:", err)
		os.Exit(1)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(memF); err != nil {
		fmt.Fprintln(os.Stderr, "nextprof:", err)
		os.Exit(1)
	}
	if err := memF.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "nextprof:", err)
		os.Exit(1)
	}

	fmt.Printf("%d iterations in %s (%.1f ms/iteration)\n\n",
		iters, elapsed.Round(time.Millisecond), float64(elapsed.Milliseconds())/float64(iters))

	if err := printProfile("CPU", *cpuOut, "cpu", *topN); err != nil {
		fmt.Fprintln(os.Stderr, "nextprof:", err)
		os.Exit(1)
	}
	fmt.Println()
	if err := printProfile("heap (alloc_space over the whole run)", *memOut, "alloc_space", *topN); err != nil {
		fmt.Fprintln(os.Stderr, "nextprof:", err)
		os.Exit(1)
	}
	fmt.Printf("\nraw profiles: %s %s\n", *cpuOut, *memOut)
	fmt.Println("deeper dive: go tool pprof <binary|-> <profile>")
}

// buildWorkload resolves the profiled workload: one closure per
// iteration, plus a human description.
func buildWorkload(fig, scen, plat string, seed int64, scale float64, sweep int) (func(), string, error) {
	if fig != "" {
		desc := fmt.Sprintf("fig %s on %s (seed %d)", fig, plat, seed)
		switch fig {
		case "1":
			return func() { exp.Fig1On(plat, seed) }, desc, nil
		case "3":
			return func() { exp.Fig3On(plat, seed) }, desc, nil
		case "4":
			return func() { exp.Fig4On(plat, seed) }, desc, nil
		case "6":
			return func() {
				exp.Fig6(exp.Fig6Options{Seed: seed, Platform: plat, MaxSessions: 4, SessionSecs: 60})
			}, desc, nil
		case "7", "8":
			return func() {
				exp.Evaluate(exp.EvalOptions{Seed: seed, Platform: plat, MaxSessions: 2, SessionSecs: 60})
			}, desc, nil
		default:
			return nil, "", fmt.Errorf("unknown figure %q (want 1, 3, 4, 6, 7 or 8)", fig)
		}
	}

	s, err := scenario.Get(scen)
	if err != nil {
		return nil, "", err
	}
	if scale != 1 {
		s = scenario.Scaled(s, scale)
	}
	p, err := platform.Get(plat)
	if err != nil {
		return nil, "", err
	}
	laneConfig := func(engineSeed int64) sim.Config {
		compiled, err := scenario.Compile(s, seed, p.AmbientC)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nextprof:", err)
			os.Exit(1)
		}
		cfg := p.Config(compiled.Timeline, engineSeed)
		cfg.Ambient = compiled.Ambient
		cfg.Refresh = compiled.Refresh
		return cfg
	}
	if sweep > 0 {
		desc := fmt.Sprintf("scenario %s (scale %g) on %s, lockstep k=%d (struct seed %d)", scen, scale, plat, sweep, seed)
		return func() {
			cfgs := make([]sim.Config, sweep)
			for r := range cfgs {
				cfgs[r] = laneConfig(seed + int64(r))
			}
			be, err := sim.NewBatch(cfgs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nextprof:", err)
				os.Exit(1)
			}
			be.Run()
		}, desc, nil
	}
	desc := fmt.Sprintf("scenario %s (scale %g) on %s (seed %d)", scen, scale, plat, seed)
	return func() {
		eng, err := sim.New(laneConfig(seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, "nextprof:", err)
			os.Exit(1)
		}
		eng.Run()
	}, desc, nil
}

func printProfile(title, path, sampleType string, topN int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	p, err := prof.Parse(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	si := p.SampleIndex(sampleType)
	if si < 0 {
		// Fall back to the last sample type (cpu profiles put the
		// meaningful dimension last).
		si = len(p.SampleTypes) - 1
	}
	fmt.Printf("== %s ==\n", title)
	return prof.WriteTop(os.Stdout, p, si, topN)
}
