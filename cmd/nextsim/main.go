// Command nextsim runs a single simulated session on a registry
// platform (the Note 9 by default) and prints (or saves) its trace —
// the quick way to eyeball a governor's behaviour on one workload.
//
// Usage:
//
//	nextsim -app spotify -scheme schedutil -seconds 120 -csv out.csv
//	nextsim -app lineage2revolution -scheme next -train 8
//	nextsim -app lineage2revolution -scheme next -train 8 -learner sarsa
//	nextsim -app pubgmobile -platform sd855-120hz
//	nextsim -scenario commute                 # a composed usage scenario
//	nextsim -scenario thermal-soak -seconds 120
//	nextsim -scenarios                        # list the scenario library
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"nextdvfs"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/trace"
)

func main() {
	app := flag.String("app", "spotify", "application preset: "+strings.Join(nextdvfs.Apps(), ", "))
	scen := flag.String("scenario", "", "usage scenario preset (overrides -app): "+strings.Join(nextdvfs.Scenarios(), ", "))
	listScens := flag.Bool("scenarios", false, "list the scenario library and exit")
	plat := flag.String("platform", platform.DefaultName, "simulated device: "+strings.Join(nextdvfs.Platforms(), ", "))
	scheme := flag.String("scheme", "schedutil", "management scheme: "+strings.Join(nextdvfs.Schemes(), ", "))
	learnerName := flag.String("learner", "", "for -scheme next: TD update rule ("+strings.Join(nextdvfs.Learners(), ", ")+"; default watkins)")
	explorer := flag.String("explorer", "", "for -scheme next: exploration strategy ("+strings.Join(nextdvfs.Explorers(), ", ")+"; default egreedy)")
	seconds := flag.Float64("seconds", 0, "session length (0 = paper default; with -scenario: rescale to this total)")
	seed := flag.Int64("seed", 1, "session seed")
	train := flag.Int("train", 0, "for -scheme next: training sessions to run first")
	csv := flag.String("csv", "", "write the trace to this CSV file")
	every := flag.Float64("record", 1, "trace sample period in seconds")
	flag.Parse()

	if *listScens {
		for _, s := range nextdvfs.ScenarioInfos() {
			fmt.Printf("%-18s %6.0f s  %s\n%18s          apps: %s\n",
				s.Name, s.Seconds, s.Description, "", strings.Join(s.Apps, ", "))
		}
		return
	}

	if *learnerName != "" && !slices.Contains(nextdvfs.Learners(), *learnerName) {
		fatal(fmt.Errorf("unknown learner %q (have: %s)", *learnerName, strings.Join(nextdvfs.Learners(), ", ")))
	}
	if *explorer != "" && !slices.Contains(nextdvfs.Explorers(), *explorer) {
		fatal(fmt.Errorf("unknown explorer %q (have: %s)", *explorer, strings.Join(nextdvfs.Explorers(), ", ")))
	}

	opts := nextdvfs.RunOptions{
		App:            *app,
		Platform:       *plat,
		Seconds:        *seconds,
		Scheme:         nextdvfs.Scheme(*scheme),
		Learner:        *learnerName,
		Explorer:       *explorer,
		Seed:           *seed,
		RecordEverySec: *every,
	}
	label := *app
	if *scen != "" {
		opts.Scenario = *scen
		opts.App = ""
		label = "scenario " + *scen
	}
	if opts.Scheme == nextdvfs.SchemeNext && *train > 0 {
		if opts.Scenario != "" {
			// Train on the scenario itself: repeated differently-seeded
			// sessions of the same usage shape, one shared agent.
			cfg, err := nextdvfs.AgentConfigFor(*plat)
			if err != nil {
				fatal(err)
			}
			cfg.Seed = *seed
			cfg.Learner = *learnerName
			cfg.Explorer = *explorer
			agent := nextdvfs.NewAgent(cfg)
			for i := 1; i <= *train; i++ {
				trainOpts := opts
				trainOpts.Agent = agent
				trainOpts.Seed = *seed + int64(i)
				trainOpts.RecordEverySec = 0
				if _, err := nextdvfs.Run(trainOpts); err != nil {
					fatal(err)
				}
			}
			fmt.Printf("trained on scenario %s: %d sessions\n", *scen, *train)
			opts.Agent = agent
		} else {
			agent, stats, err := nextdvfs.TrainAgent(*app, nextdvfs.TrainOptions{
				Sessions: *train, Seed: *seed, Platform: *plat,
				Learner: *learnerName, Explorer: *explorer,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("trained %s: sessions=%d converged=%v on-device time=%.0f s, %d states\n",
				*app, stats.Sessions, stats.Converged, float64(stats.TrainedUS)/1e6, stats.States)
			opts.Agent = agent
		}
	}

	res, err := nextdvfs.Run(opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("session: %s on %s (%s), %.0f s\n", label, res.Scheme, *plat, res.DurationS)
	fmt.Printf("  power:   avg %.3f W, peak %.2f W, energy %.1f J\n", res.AvgPowerW, res.PeakPowerW, res.EnergyJ)
	fmt.Printf("  thermal: big avg %.1f °C peak %.1f °C | device avg %.1f °C peak %.1f °C\n",
		res.AvgTempBigC, res.PeakTempBigC, res.AvgTempDevC, res.PeakTempDevC)
	fmt.Printf("  QoS:     avg FPS %.1f (active %.1f), displayed %d, dropped %d (%.2f%%)\n",
		res.AvgFPS, res.ActiveAvgFPS, res.FramesDisplayed, res.FramesDropped, 100*res.DropRate())
	if len(res.Samples) > 1 {
		const w = 60
		fmt.Printf("  fps      %s\n", trace.Sparkline(trace.SampleSeries(res.Samples, "fps"), w))
		fmt.Printf("  power    %s\n", trace.Sparkline(trace.SampleSeries(res.Samples, "power"), w))
		fmt.Printf("  temp_big %s\n", trace.Sparkline(trace.SampleSeries(res.Samples, "tempbig"), w))
	}

	if *csv != "" {
		if err := trace.SaveSamples(*csv, []string{"big", "LITTLE", "GPU"}, res.Samples); err != nil {
			fatal(err)
		}
		fmt.Println("trace written to", *csv)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nextsim:", err)
	os.Exit(1)
}
