// Command nexttrain trains Next agents and manages their persisted
// Q-tables — the workflow of Section IV-B/IV-C: on-device training per
// app, optional federated merging across simulated devices, and a
// store directory the agent can be reloaded from.
//
// Usage:
//
//	nexttrain -app spotify -store qtables/
//	nexttrain -app spotify -learner doubleq -store qtables/
//	nexttrain -app pubgmobile -federated 4 -store qtables/
//	nexttrain -list -store qtables/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"nextdvfs"
)

func main() {
	app := flag.String("app", "", "application preset to train on: "+strings.Join(nextdvfs.Apps(), ", "))
	store := flag.String("store", "qtables", "Q-table store directory")
	sessions := flag.Int("sessions", 0, "training sessions (0 = default 16)")
	seed := flag.Int64("seed", 1, "training seed")
	federated := flag.Int("federated", 0, "train on N devices and merge (Section IV-C)")
	learnerName := flag.String("learner", "", "TD update rule ("+strings.Join(nextdvfs.Learners(), ", ")+"; default watkins)")
	explorer := flag.String("explorer", "", "exploration strategy ("+strings.Join(nextdvfs.Explorers(), ", ")+"; default egreedy)")
	list := flag.Bool("list", false, "list stored Q-tables and exit")
	flag.Parse()

	if *list {
		listStore(*store)
		return
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "nexttrain: -app is required (or -list)")
		os.Exit(2)
	}

	if *federated > 1 {
		trainFederated(*app, *store, *federated, *sessions, *seed, *learnerName, *explorer)
		return
	}

	agent, stats, err := nextdvfs.TrainAgent(*app, nextdvfs.TrainOptions{
		Sessions: *sessions, Seed: *seed, Learner: *learnerName, Explorer: *explorer,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trained %s on-device: sessions=%d converged=%v training time=%.0f s states=%d steps=%d\n",
		stats.App, stats.Sessions, stats.Converged, float64(stats.TrainedUS)/1e6, stats.States, stats.Steps)
	saveAgent(agent, *store)
}

func trainFederated(app, store string, n, sessions int, seed int64, learnerName, explorer string) {
	cfg := nextdvfs.DefaultAgentConfig()
	cfg.Seed = seed
	if !slices.Contains(append(nextdvfs.Learners(), ""), learnerName) {
		fatal(fmt.Errorf("unknown learner %q (have: %s)", learnerName, strings.Join(nextdvfs.Learners(), ", ")))
	}
	if !slices.Contains(append(nextdvfs.Explorers(), ""), explorer) {
		fatal(fmt.Errorf("unknown explorer %q (have: %s)", explorer, strings.Join(nextdvfs.Explorers(), ", ")))
	}
	cfg.Learner = learnerName
	cfg.Explorer = explorer
	fleet := nextdvfs.NewFleet(n, cfg)
	// Each device trains locally on its own stochastic sessions.
	for i, dev := range fleet.Devices {
		stats, err := nextdvfs.TrainAgentOn(dev, app, nextdvfs.TrainOptions{
			Sessions: sessions, Seed: seed + int64(i)*1000,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("device %d: trained %s for %.0f s (%d states)\n",
			i+1, app, float64(stats.TrainedUS)/1e6, stats.States)
	}
	merged, wallUS, err := fleet.MergeApp(app)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("federated merge: %d states, cloud round wall time %.1f s (incl. ≤4 s comms)\n",
		merged.States(), float64(wallUS)/1e6)
	saveAgent(fleet.Devices[0], store)
}

func saveAgent(agent *nextdvfs.Agent, dir string) {
	st := nextdvfs.Store{Dir: dir}
	if err := st.SaveAgent(agent); err != nil {
		fatal(err)
	}
	fmt.Println("Q-tables saved under", dir)
}

func listStore(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".json" {
			info, _ := e.Info()
			fmt.Printf("%-40s %8d bytes\n", e.Name(), info.Size())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nexttrain:", err)
	os.Exit(1)
}
