// Dailyuse: a day of stochastic phone pickups following the usage
// statistics the paper cites (70 % of sessions under 2 minutes, 25 %
// between 2–10 minutes, 5 % longer), with one on-device agent learning
// every app it encounters. Prints the cumulative energy the agent saves
// across the day versus stock schedutil.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"nextdvfs"
)

func main() {
	pickups := flag.Int("pickups", 12, "phone pickups to simulate")
	sessions := flag.Int("sessions", 10, "training sessions per app")
	trainSec := flag.Float64("trainsec", 0, "seconds per training session (0 = paper default)")
	maxSec := flag.Float64("maxsec", 0, "cap each pickup's duration (0 = the paper's 70/25/5 mix)")
	flag.Parse()
	apps := []string{"facebook", "spotify", "chrome", "youtube"}

	// One shared agent accumulates Q-tables across apps, as on a real
	// handset. Pre-train it on each app (the paper's one-time training).
	cfg := nextdvfs.DefaultAgentConfig()
	cfg.Seed = 3
	agent := nextdvfs.NewAgent(cfg)
	for _, app := range apps {
		stats, err := nextdvfs.TrainAgentOn(agent, app, nextdvfs.TrainOptions{
			Seed: 3, Sessions: *sessions, SessionSeconds: *trainSec,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained %-10s %.0f s on-device, %4d states\n",
			app, float64(stats.TrainedUS)/1e6, stats.States)
	}

	rng := rand.New(rand.NewSource(77))
	var schedJ, nextJ, secs float64
	for i := 0; i < *pickups; i++ {
		app := apps[rng.Intn(len(apps))]
		// 70/25/5 session-length mix from the paper's market research.
		var dur float64
		switch r := rng.Float64(); {
		case r < 0.70:
			dur = 20 + 100*rng.Float64()
		case r < 0.95:
			dur = 120 + 480*rng.Float64()
		default:
			dur = 600 + 300*rng.Float64()
		}
		if *maxSec > 0 && dur > *maxSec {
			dur = *maxSec
		}
		seed := int64(1000 + i)
		sched, err := nextdvfs.Run(nextdvfs.RunOptions{App: app, Seconds: dur, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		next, err := nextdvfs.Run(nextdvfs.RunOptions{
			App: app, Seconds: dur, Seed: seed,
			Scheme: nextdvfs.SchemeNext, Agent: agent,
		})
		if err != nil {
			log.Fatal(err)
		}
		schedJ += sched.EnergyJ
		nextJ += next.EnergyJ
		secs += dur
		fmt.Printf("pickup %2d: %-10s %5.0f s | schedutil %6.0f J | next %6.0f J (fps %.1f vs %.1f)\n",
			i+1, app, dur, sched.EnergyJ, next.EnergyJ, sched.ActiveAvgFPS, next.ActiveAvgFPS)
	}
	fmt.Printf("\nday total (%.0f min of usage): schedutil %.1f kJ, next %.1f kJ → %.1f%% energy saved\n",
		secs/60, schedJ/1000, nextJ/1000, 100*(1-nextJ/schedJ))
}
