// Federated: Section IV-C of the paper — several devices train on the
// same app locally, a cloud round merges their Q-tables (visit-weighted
// federated averaging), and a device that never trained receives the
// merged table and immediately performs like a trained one.
package main

import (
	"flag"
	"fmt"
	"log"

	"nextdvfs"
)

func main() {
	sessions := flag.Int("sessions", 8, "training sessions per device")
	trainSec := flag.Float64("trainsec", 0, "seconds per training session (0 = paper default)")
	seconds := flag.Float64("seconds", 0, "evaluation session length (0 = paper default)")
	flag.Parse()
	const app = "facebook"
	const devices = 3

	cfg := nextdvfs.DefaultAgentConfig()
	cfg.Seed = 5
	fleet := nextdvfs.NewFleet(devices+1, cfg) // last device stays untrained

	fmt.Printf("local training on %d devices...\n", devices)
	for i := 0; i < devices; i++ {
		stats, err := nextdvfs.TrainAgentOn(fleet.Devices[i], app, nextdvfs.TrainOptions{
			Seed: int64(100 * (i + 1)), Sessions: *sessions, SessionSeconds: *trainSec,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  device %d: %.0f s on-device, %d states\n",
			i+1, float64(stats.TrainedUS)/1e6, stats.States)
	}

	merged, wallUS, err := fleet.MergeApp(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloud merge: %d states; user-visible round time %.1f s (paper: cloud training is ~10× faster, ≤4 s comms)\n\n",
		merged.States(), float64(wallUS)/1e6)

	// The fresh device (index devices) now runs with the merged table.
	freshDevice := fleet.Devices[devices]
	sched, err := nextdvfs.Run(nextdvfs.RunOptions{App: app, Seed: 900, Seconds: *seconds})
	if err != nil {
		log.Fatal(err)
	}
	next, err := nextdvfs.Run(nextdvfs.RunOptions{
		App: app, Seed: 900, Seconds: *seconds, Scheme: nextdvfs.SchemeNext, Agent: freshDevice,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("untrained device with merged table: schedutil %.2f W → next %.2f W (%.1f%% saved) at FPS %.1f vs %.1f\n",
		sched.AvgPowerW, next.AvgPowerW, 100*(1-next.AvgPowerW/sched.AvgPowerW),
		sched.ActiveAvgFPS, next.ActiveAvgFPS)
}
