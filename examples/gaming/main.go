// Gaming: the paper's hardest workloads — Lineage 2 Revolution and PubG
// Mobile at sustained 60 FPS demand — across all three management
// schemes (schedutil, Int. QoS PM, Next). Reproduces the Fig. 7/8
// game columns and makes the QoS trade-off explicit.
package main

import (
	"flag"
	"fmt"
	"log"

	"nextdvfs"
)

var (
	sessions = flag.Int("sessions", 0, "training sessions per candidate (0 = paper default)")
	trainSec = flag.Float64("trainsec", 0, "seconds per training session (0 = paper default)")
	seconds  = flag.Float64("seconds", 0, "evaluation session length (0 = paper default: 5 min for games)")
	qosFloor = flag.Float64("qosfloor", 40, "minimum validation FPS a candidate agent must hold")
)

func main() {
	flag.Parse()
	for _, app := range []string{"lineage2revolution", "pubgmobile"} {
		fmt.Println("===", app, "===")

		// Tabular RL training paths vary with their seed, so do what a
		// shipping governor would: train candidate agents and keep the
		// one that wins on a validation session (lowest energy whose
		// FPS stays within 25 % of demand).
		agent := pickBestAgent(app)

		type row struct {
			name string
			opts nextdvfs.RunOptions
		}
		rows := []row{
			{"schedutil", nextdvfs.RunOptions{App: app, Scheme: nextdvfs.SchemeSchedutil}},
			{"intqospm", nextdvfs.RunOptions{App: app, Scheme: nextdvfs.SchemeIntQoS}},
			{"next", nextdvfs.RunOptions{App: app, Scheme: nextdvfs.SchemeNext, Agent: agent}},
		}
		var schedP float64
		fmt.Printf("%-10s %9s %9s %9s %7s %8s\n", "scheme", "power(W)", "bigPk°C", "devPk°C", "FPS", "drops")
		for _, r := range rows {
			r.opts.Seed = 500 // identical session for all three schemes
			r.opts.Seconds = *seconds
			res, err := nextdvfs.Run(r.opts)
			if err != nil {
				log.Fatal(err)
			}
			if r.name == "schedutil" {
				schedP = res.AvgPowerW
			}
			fmt.Printf("%-10s %9.2f %9.1f %9.1f %7.1f %8d", r.name,
				res.AvgPowerW, res.PeakTempBigC, res.PeakTempDevC, res.ActiveAvgFPS, res.FramesDropped)
			if r.name != "schedutil" {
				fmt.Printf("   (saves %.1f%%)", 100*(1-res.AvgPowerW/schedP))
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

// pickBestAgent trains candidates on distinct seeds and validates them
// on a held-out session.
func pickBestAgent(app string) *nextdvfs.Agent {
	var best *nextdvfs.Agent
	bestEnergy := 0.0
	for _, seed := range []int64{7, 42, 1234} {
		agent, stats, err := nextdvfs.TrainAgent(app, nextdvfs.TrainOptions{
			Seed: seed, Sessions: *sessions, SessionSeconds: *trainSec,
		})
		if err != nil {
			log.Fatal(err)
		}
		valSec := 120.0
		if *seconds > 0 {
			valSec = *seconds
		}
		val, err := nextdvfs.Run(nextdvfs.RunOptions{
			App: app, Seconds: valSec, Seed: 31_000 + seed,
			Scheme: nextdvfs.SchemeNext, Agent: agent,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("candidate seed %4d: trained %.0f s, validation %.2f W at %.1f FPS\n",
			seed, float64(stats.TrainedUS)/1e6, val.AvgPowerW, val.ActiveAvgFPS)
		if val.ActiveAvgFPS < *qosFloor { // QoS floor for a 60 Hz game
			continue
		}
		if best == nil || val.AvgPowerW < bestEnergy {
			best, bestEnergy = agent, val.AvgPowerW
		}
	}
	if best == nil {
		log.Fatal("no candidate met the QoS floor")
	}
	return best
}
