// Learners: train two (or more) TD update rules on the same app and
// compare their convergence and the energy/QoS of the policies they
// learn — the one-screen version of `nextbench -learners`. The default
// pair is the paper's Watkins Q-learning against van Hasselt Double
// Q-learning, whose two estimators cancel the max-operator's
// overestimation of the noisy PPDW reward.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"nextdvfs"
)

func main() {
	learners := flag.String("learners", "watkins,doubleq", "comma-separated learners to compare ("+strings.Join(nextdvfs.Learners(), ", ")+")")
	app := flag.String("app", "spotify", "application preset")
	sessions := flag.Int("sessions", 0, "training sessions per learner (0 = paper default)")
	trainSec := flag.Float64("trainsec", 0, "seconds per training session (0 = paper default)")
	seconds := flag.Float64("seconds", 0, "evaluation session length (0 = paper default)")
	flag.Parse()

	names := strings.Split(*learners, ",")
	fmt.Printf("comparing %d learners on %s (same sessions, same evaluation):\n\n", len(names), *app)

	sched, err := nextdvfs.Run(nextdvfs.RunOptions{App: *app, Seed: 99, Seconds: *seconds})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-15s %9s %7s %10s %10s %8s\n", "learner", "conv", "states", "power(W)", "energy(J)", "FPS")
	fmt.Printf("%-15s %9s %7s %10.2f %10.0f %8.1f\n", "(schedutil)", "-", "-", sched.AvgPowerW, sched.EnergyJ, sched.ActiveAvgFPS)
	for _, name := range names {
		agent, stats, err := nextdvfs.TrainAgent(*app, nextdvfs.TrainOptions{
			Seed: 11, Sessions: *sessions, SessionSeconds: *trainSec, Learner: name,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := nextdvfs.Run(nextdvfs.RunOptions{
			App: *app, Scheme: nextdvfs.SchemeNext, Agent: agent, Seed: 99, Seconds: *seconds,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %9v %7d %10.2f %10.0f %8.1f\n",
			name, stats.Converged, stats.States, res.AvgPowerW, res.EnergyJ, res.ActiveAvgFPS)
	}
	fmt.Println("\nlearner comparison complete — same state, same reward, different update rule")
}
