// Plan: the capacity-planning workbench in one screen — declare an
// SLO and a configuration grid, sweep the grid through the simulator,
// and let the analysis name the cheapest configuration that meets the
// SLO. The same workflow runs from the command line via cmd/nextplan
// with the plan declared in a JSON file (see smoke.json next to this
// example).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nextdvfs"
)

func main() {
	scale := flag.Float64("scale", 0.02, "scenario duration scale (1 = full length)")
	fleet := flag.Int("bigfleet", 2048, "the larger fleet size the SLO stresses")
	flag.Parse()

	p := &nextdvfs.Plan{
		Name: "example",
		Seed: 42,
		SLO: nextdvfs.PlanSLO{
			MinActiveFPS:      30,  // users must actually see their frames
			MaxDropRatePct:    5,   // ... and not as a stutter
			MaxEnergyJ:        180, // battery budget per (scaled) session
			MinCheckinsPerSec: 500, // fleetd must keep up with the fleet
		},
		Grid: nextdvfs.PlanGrid{
			Scenarios: []string{"doomscroll"},
			Platforms: []string{"note9"},
			Schemes:   []string{"schedutil", "performance", "powersave"},
			Fleets:    []int{64, *fleet},
		},
		DurationScale: *scale,
	}

	dir, err := os.MkdirTemp("", "nextplan-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	results := filepath.Join(dir, "results.jsonl")

	rep, err := nextdvfs.RunPlan(p, results, nextdvfs.PlanRunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swept %d grid cells (cells differing only in fleet share one sim)\n\n", rep.Cells)

	a, err := nextdvfs.AnalyzePlan(p, results)
	if err != nil {
		log.Fatal(err)
	}
	a.WriteText(os.Stdout)

	fmt.Println("\ncapacity plan complete")
}
