// Quickstart: train the Next agent on Spotify — the paper's headline
// waste case (music playing, screen static, frequencies pinned high) —
// then compare a session under stock schedutil against the trained
// agent.
package main

import (
	"flag"
	"fmt"
	"log"

	"nextdvfs"
)

func main() {
	sessions := flag.Int("sessions", 0, "training sessions (0 = paper default)")
	trainSec := flag.Float64("trainsec", 0, "seconds per training session (0 = paper default)")
	seconds := flag.Float64("seconds", 0, "evaluation session length (0 = paper default)")
	flag.Parse()
	const app = "spotify"

	fmt.Println("training Next on", app, "(the paper trains each new app once)...")
	agent, stats, err := nextdvfs.TrainAgent(app, nextdvfs.TrainOptions{
		Seed: 11, Sessions: *sessions, SessionSeconds: *trainSec,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  converged=%v after %.0f s of simulated usage (%d Q-states)\n\n",
		stats.Converged, float64(stats.TrainedUS)/1e6, stats.States)

	sched, err := nextdvfs.Run(nextdvfs.RunOptions{App: app, Scheme: nextdvfs.SchemeSchedutil, Seed: 99, Seconds: *seconds})
	if err != nil {
		log.Fatal(err)
	}
	next, err := nextdvfs.Run(nextdvfs.RunOptions{App: app, Scheme: nextdvfs.SchemeNext, Agent: agent, Seed: 99, Seconds: *seconds})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %10s %10s %12s %10s\n", "scheme", "power(W)", "peak°C", "energy(J)", "FPS")
	fmt.Printf("%-12s %10.2f %10.1f %12.0f %10.1f\n", "schedutil", sched.AvgPowerW, sched.PeakTempBigC, sched.EnergyJ, sched.ActiveAvgFPS)
	fmt.Printf("%-12s %10.2f %10.1f %12.0f %10.1f\n", "next", next.AvgPowerW, next.PeakTempBigC, next.EnergyJ, next.ActiveAvgFPS)
	fmt.Printf("\nNext saved %.1f%% power and cut the peak big-CPU temperature rise by %.1f%%\n",
		100*(1-next.AvgPowerW/sched.AvgPowerW),
		100*(1-(next.PeakTempBigC-21)/(sched.PeakTempBigC-21)))
}
