// Rollout: the policy lifecycle on top of federated training — every
// cloud merge round becomes a versioned immutable artifact, a new
// candidate ships to a staged canary cohort (1% → 10% → 100% of
// devices, widened to a minimum cohort on small fleets), and the server
// promotes or rolls it back automatically on the cohorts' measured
// energy and QoS.
//
// The demo runs the lifecycle twice against an in-process fleet server:
// first a healthy candidate (one more training generation) that the
// evaluator promotes to stable, then a sabotaged candidate (its GPU
// clock preference floored) whose canary cohort burns measurably more
// energy — the energy guard rolls the fleet back to the last-good
// version without any operator action.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nextdvfs"
)

func main() {
	devices := flag.Int("devices", 16, "simulated fleet size")
	sessions := flag.Int("sessions", 1, "training sessions per device per generation")
	seconds := flag.Float64("seconds", 6, "simulated seconds per session")
	seed := flag.Int64("seed", 1, "base seed (device i trains from seed+(i+1)*7919)")
	flag.Parse()

	for _, sabotage := range []bool{false, true} {
		if sabotage {
			fmt.Println("--- degraded candidate: uploads corrupted to floor the GPU clock ---")
		} else {
			fmt.Println("--- healthy candidate: one more training generation ---")
		}
		report, err := nextdvfs.BenchFleet(nextdvfs.FleetSimOptions{
			Devices: *devices, App: "chrome",
			Sessions: *sessions, SessionSecs: *seconds, Seed: *seed,
			Rollout: &nextdvfs.FleetRolloutOptions{Sabotage: sabotage},
		})
		if err != nil {
			log.Fatal(err)
		}
		report.WriteSummary(os.Stdout)
		ro := report.Rollout
		fmt.Printf("=> stable v%d, candidate v%d: %s (fleet now on v%d)\n\n",
			ro.StableVersion, ro.CandidateVersion, ro.Outcome, ro.FinalVersion)
	}
	fmt.Println("policy lifecycle complete: healthy candidates promote, regressions roll back on their own")
}
