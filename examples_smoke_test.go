package nextdvfs

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// The examples were built in CI but never executed; this smoke test
// runs each one with a tiny step budget so a facade change that breaks
// an example fails tier-1, not a user. Budgets are seconds of simulated
// time — each example finishes in a few wall-clock seconds.
func TestExamplesSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cases := []struct {
		dir  string
		args []string
		want string // a fragment the healthy output must contain
	}{
		{"./examples/quickstart", []string{"-sessions", "1", "-trainsec", "5", "-seconds", "5"}, "Next saved"},
		{"./examples/dailyuse", []string{"-pickups", "1", "-sessions", "1", "-trainsec", "5", "-maxsec", "5"}, "day total"},
		{"./examples/gaming", []string{"-sessions", "1", "-trainsec", "5", "-seconds", "5", "-qosfloor", "0"}, "saves"},
		{"./examples/federated", []string{"-sessions", "1", "-trainsec", "5", "-seconds", "5"}, "merged table"},
		{"./examples/learners", []string{"-sessions", "1", "-trainsec", "5", "-seconds", "5"}, "learner comparison complete"},
		{"./examples/rollout", []string{"-devices", "16", "-sessions", "1", "-seconds", "6"}, "policy lifecycle complete"},
		{"./examples/plan", []string{"-scale", "0.005"}, "capacity plan complete"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			args := append([]string{"run", c.dir}, c.args...)
			cmd := exec.CommandContext(ctx, "go", args...)
			cmd.Dir = "."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("go run %s output missing %q:\n%s", c.dir, c.want, out)
			}
		})
	}
}
