module nextdvfs

go 1.24
