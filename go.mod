module nextdvfs

go 1.23
