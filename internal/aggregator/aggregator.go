// Package aggregator implements the edge tier of the hierarchical
// fleet: an aggregator sits between devices and the root fleetd,
// absorbing check-ins and table uploads into a per-aggregator local
// store, serving regional policies, and federating the raw per-device
// tables upward to the root in batched, bounded, async pushes.
//
// The tier is a doppel-style coordinator/worker decomposition:
// aggregators are the workers (writes land in per-worker local
// stores), the root is the coordinator, and a federation epoch runs
// split → local-merge → federated-join phases so no lock — and no
// single process — spans a whole round. Aggregators forward raw
// device tables, never regional pre-averages: pre-averaging would
// reassociate the merge's floating-point sums, and the repo pins the
// root merge byte-identical to a flat single-tier merge of the same
// uploads (see cloud.JoinDevices).
//
// Backpressure is explicit: the upward queue is hard-bounded, a full
// queue answers 429 with Retry-After (surfaced to clients as
// fleetd.RetryAfterError), and replies start carrying an advisory
// backoff once the queue passes a soft watermark.
package aggregator

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"nextdvfs/internal/fleetd"
	"nextdvfs/internal/learner"
)

// maxTrackedDevices bounds the distinct-device set (same rationale as
// fleetd's: check-ins are unauthenticated).
const maxTrackedDevices = 1 << 16

// Config tunes an edge aggregator.
type Config struct {
	// ID names this aggregator in federation pushes and metrics (a
	// single [a-zA-Z0-9._-] segment; "" → "edge").
	ID string
	// Root is the root fleetd base URL. Empty runs the aggregator
	// standalone: devices get local merges and no upward federation.
	Root string
	// QueueLimit bounds distinct (policy, device) pairs awaiting upward
	// federation (0 → 4096). Past it, uploads are rejected with 429 +
	// Retry-After until a flush drains the queue.
	QueueLimit int
	// SoftLimitPct is the queue fill percentage past which upload
	// replies carry an advisory backoff hint (0 → 75).
	SoftLimitPct int
	// RetryAfterS is the delay advertised on queue-overflow rejections
	// (0 → 1 second).
	RetryAfterS int
	// FlushBatch caps device tables per federation push (0 → 256).
	FlushBatch int
	// FlushEvery is the background flush cadence (0 → 500ms; < 0
	// disables the background flusher — flushes then run only via
	// Flush, POST /v1/flush, or an epoch coordinator).
	FlushEvery time.Duration
	// MaxBodyBytes bounds device upload bodies (0 → 16 MiB).
	MaxBodyBytes int64
	// MaxDevicesPerKey bounds distinct devices per policy in the local
	// store (0 → the fleetd store default of 4096).
	MaxDevicesPerKey int
}

// Server is one edge aggregator: an http.Handler speaking the same
// device-facing API subset as fleetd, over a local store and a bounded
// upward federation queue.
type Server struct {
	cfg     Config
	store   *fleetd.Store
	root    *fleetd.Client // nil when standalone
	proxy   *http.Client
	rootURL string
	queue   *queue
	metrics *Metrics
	mux     *http.ServeMux

	devMu          sync.Mutex
	devices        map[string]struct{}
	pendingDevices map[string]struct{} // checked in since the last successful flush

	flushMu sync.Mutex // serializes Flush (handlers never hold it)

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds an aggregator. Call Start to run the background flusher
// (when enabled), and Close to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.ID == "" {
		cfg.ID = "edge"
	}
	if !fleetd.SafeName(cfg.ID) {
		return nil, fmt.Errorf("aggregator: bad ID %q (want a single [a-zA-Z0-9._-] segment)", cfg.ID)
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 4096
	}
	if cfg.SoftLimitPct <= 0 {
		cfg.SoftLimitPct = 75
	}
	if cfg.RetryAfterS <= 0 {
		cfg.RetryAfterS = 1
	}
	if cfg.FlushBatch <= 0 {
		cfg.FlushBatch = 256
	}
	if cfg.FlushEvery == 0 {
		cfg.FlushEvery = 500 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	s := &Server{
		cfg:            cfg,
		store:          fleetd.NewStoreMaxDevices(cfg.MaxDevicesPerKey),
		queue:          newQueue(cfg.QueueLimit),
		metrics:        NewMetrics(),
		devices:        make(map[string]struct{}),
		pendingDevices: make(map[string]struct{}),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
	}
	if cfg.Root != "" {
		s.rootURL = cfg.Root
		s.root = fleetd.NewClient(cfg.Root)
		s.proxy = &http.Client{Timeout: 10 * time.Second}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/checkin", s.instrument("checkin", s.handleCheckin))
	mux.HandleFunc("PUT /v1/table", s.instrument("upload", s.handleUpload))
	mux.HandleFunc("POST /v1/merge", s.instrument("merge", s.handleMerge))
	mux.HandleFunc("GET /v1/policy", s.instrument("policy", s.handlePolicy))
	mux.HandleFunc("GET /v1/apps", s.instrument("apps", s.handleApps))
	mux.HandleFunc("POST /v1/flush", s.instrument("flush", s.handleFlush))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux = mux
	return s, nil
}

// ID returns the aggregator's name.
func (s *Server) ID() string { return s.cfg.ID }

// Handler returns the device-facing http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the local table store (in-process callers, tests).
func (s *Server) Store() *fleetd.Store { return s.store }

// Metrics exposes the aggregator's instrumentation.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Pending reports how many device tables await upward federation.
func (s *Server) Pending() int { return s.queue.depth() }

// Start launches the background flusher (a no-op when federation or
// the cadence is disabled).
func (s *Server) Start() {
	if s.root == nil || s.cfg.FlushEvery < 0 {
		close(s.done)
		return
	}
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.FlushEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Flush() // next tick retries; the queue kept the batch
			case <-s.stop:
				return
			}
		}
	}()
}

// Close stops the background flusher. It does not flush: a shutdown
// with a dead root would otherwise hang, and the queue's contents are
// re-uploadable by design (devices re-send tables every session).
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Flush drains pending device registrations and queued uploads to the
// root in FlushBatch-sized federation pushes until the queue is empty,
// returning how many tables the root accepted. On a push failure the
// batch returns to the queue and Flush stops — the next flush (or
// epoch) retries from where it left off.
func (s *Server) Flush() (forwarded int, err error) {
	if s.root == nil {
		return 0, nil
	}
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	for {
		devices := s.takePendingDevices()
		batch := s.queue.take(s.cfg.FlushBatch)
		if len(devices) == 0 && len(batch) == 0 {
			return forwarded, nil
		}
		req := fleetd.FederateRequest{Agg: s.cfg.ID, Devices: devices}
		for _, p := range batch {
			req.Uploads = append(req.Uploads, fleetd.FederatedUpload{
				Device: p.pk.device, Platform: p.pk.key.Platform, Body: p.body,
			})
		}
		reply, ferr := s.root.Federate(req)
		if ferr != nil {
			s.queue.putBack(batch)
			s.restorePendingDevices(devices)
			s.metrics.flushFailures.Add(1)
			return forwarded, fmt.Errorf("aggregator %s: federation push: %w", s.cfg.ID, ferr)
		}
		s.metrics.flushes.Add(1)
		s.metrics.forwarded.Add(int64(reply.Accepted))
		s.metrics.dropped.Add(int64(reply.Rejected)) // root refused: poisoned, not retried
		forwarded += reply.Accepted
	}
}

func (s *Server) takePendingDevices() []string {
	s.devMu.Lock()
	defer s.devMu.Unlock()
	if len(s.pendingDevices) == 0 {
		return nil
	}
	out := make([]string, 0, len(s.pendingDevices))
	for d := range s.pendingDevices {
		out = append(out, d)
	}
	s.pendingDevices = make(map[string]struct{})
	return out
}

func (s *Server) restorePendingDevices(devices []string) {
	s.devMu.Lock()
	defer s.devMu.Unlock()
	for _, d := range devices {
		s.pendingDevices[d] = struct{}{}
	}
}

// MergeLocal runs one local merge round for the key — the local-merge
// phase of a federation epoch, and what regional policy fallbacks
// serve from.
func (s *Server) MergeLocal(k fleetd.Key) (fleetd.MergeInfo, error) {
	start := time.Now()
	info, _, err := s.store.MergeSet(k)
	if err != nil {
		return fleetd.MergeInfo{}, err
	}
	info.LatencyUS = time.Since(start).Microseconds()
	return info, nil
}

type handlerFunc func(w http.ResponseWriter, r *http.Request) int

func (s *Server) instrument(label string, h handlerFunc) http.HandlerFunc {
	idx := labelIndex(label)
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.request(idx)
		if status := h(w, r); status >= 400 {
			s.metrics.errored(idx)
		}
	}
}

// apiError mirrors fleetd's JSON error envelope so fleetd.Client works
// unchanged against an aggregator.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
	return status
}

func writeErr(w http.ResponseWriter, status int, err error) int {
	return writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Server) handleCheckin(w http.ResponseWriter, r *http.Request) int {
	var req fleetd.CheckinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("aggregator: bad check-in body: %w", err))
	}
	if !fleetd.SafeName(req.Device) || !fleetd.SafeName(req.Platform) {
		return writeErr(w, http.StatusBadRequest,
			fmt.Errorf("aggregator: check-in needs device and platform as single [a-zA-Z0-9._-] segments"))
	}
	s.devMu.Lock()
	if _, seen := s.devices[req.Device]; !seen && len(s.devices) < maxTrackedDevices {
		s.devices[req.Device] = struct{}{}
	}
	if s.root != nil && len(s.pendingDevices) < maxTrackedDevices {
		// Registration rides the next flush so the root's device set and
		// rollout cohorts cover the whole fleet, not the aggregators.
		s.pendingDevices[req.Device] = struct{}{}
	}
	s.devMu.Unlock()
	reply := fleetd.CheckinReply{Device: req.Device, Platform: req.Platform, Policies: []fleetd.KeyInfo{}}
	for _, info := range s.store.Infos(req.Platform) {
		if info.Round > 0 {
			reply.Policies = append(reply.Policies, info)
		}
	}
	return writeJSON(w, http.StatusOK, reply)
}

// UploadReply is fleetd's upload acknowledgment plus the edge tier's
// backpressure signal: the upward-queue depth after the upload and,
// once the queue passes the soft watermark, an advisory delay the
// device should insert before its next upload. The hard signal — queue
// full — is a 429 with Retry-After, not a reply.
type UploadReply struct {
	fleetd.UploadReply
	Pending  int     `json:"pending"`
	BackoffS float64 `json:"backoff_s,omitempty"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) int {
	device := r.URL.Query().Get("device")
	platform := r.URL.Query().Get("platform")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("aggregator: upload exceeds %d bytes", tooBig.Limit))
		}
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("aggregator: reading upload: %w", err))
	}
	if r.Header.Get("X-Fleet-Base-Gen") != "" {
		// Edges don't track per-device upload generations (the queue
		// forwards raw bodies; the root's generations are not ours to
		// echo), so a delta upload can't be based here. 409 tells the
		// device to fall back to a full upload, same as a stale base.
		return writeErr(w, http.StatusConflict,
			fmt.Errorf("aggregator %s: delta uploads are not supported at the edge tier; send the full table", s.cfg.ID))
	}
	app, set, _, err := fleetd.DecodeTableSet(r.Header.Get("Content-Type"), data)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("aggregator: bad table upload: %w", err))
	}
	if err := learner.ValidateSet(set); err != nil {
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("aggregator: upload from %q: %w", device, err))
	}
	k := fleetd.Key{App: app, Platform: platform}
	pk := pendKey{key: k, device: device}
	reply := UploadReply{UploadReply: fleetd.UploadReply{App: app, Platform: platform, Device: device}}
	if s.root != nil {
		// Queue before store: a rejected upload must be rejected whole —
		// accepting it locally while refusing to forward it would
		// silently fork the edge from the root.
		depth, ok := s.queue.put(pk, data)
		if !ok {
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterS))
			return writeErr(w, http.StatusTooManyRequests,
				fmt.Errorf("aggregator %s: upload queue full (%d pending); retry after %ds",
					s.cfg.ID, depth, s.cfg.RetryAfterS))
		}
		reply.Pending = depth
		if depth*100 >= s.cfg.QueueLimit*s.cfg.SoftLimitPct {
			reply.BackoffS = float64(s.cfg.RetryAfterS)
		}
	}
	n, err := s.store.UploadSetOwned(k, device, set)
	if err != nil {
		s.queue.remove(pk) // nothing the local tier refused reaches the root
		return writeErr(w, http.StatusBadRequest, err)
	}
	reply.Devices = n
	return writeJSON(w, http.StatusOK, reply)
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) int {
	k := fleetd.Key{App: r.URL.Query().Get("app"), Platform: r.URL.Query().Get("platform")}
	info, err := s.MergeLocal(k)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, err)
	}
	return writeJSON(w, http.StatusOK, info)
}

// handlePolicy proxies policy downloads to the root — preserving the
// device parameter, If-None-Match, and the rollout negotiation headers
// so staged-canary semantics survive the tier — and falls back to the
// local merged table when the root is unreachable or has no policy yet
// (stale-if-error regional serving). The X-Fleet-Source header names
// which tier answered.
func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) int {
	k := fleetd.Key{App: r.URL.Query().Get("app"), Platform: r.URL.Query().Get("platform")}
	if !fleetd.SafeName(k.App) || !fleetd.SafeName(k.Platform) {
		return writeErr(w, http.StatusBadRequest,
			fmt.Errorf("aggregator: policy needs app and platform as single [a-zA-Z0-9._-] segments"))
	}
	if s.root != nil {
		if status, ok := s.proxyPolicy(w, r); ok {
			return status
		}
	}
	set, round, ok := s.store.PolicySetRef(k)
	if !ok {
		return writeErr(w, http.StatusNotFound, fmt.Errorf("aggregator %s: no policy for %s at root or edge", s.cfg.ID, k))
	}
	// The edge fallback honors the same Accept negotiation as the root,
	// so a binary-mode device keeps its encoding when the root is down.
	data, ct, err := fleetd.EncodePolicy(k.App, set, fleetd.AcceptsBinary(r))
	if err != nil {
		return writeErr(w, http.StatusInternalServerError, err)
	}
	s.metrics.proxyFallbacks.Add(1)
	w.Header().Set("Content-Type", ct)
	w.Header().Set("X-Fleet-Round", strconv.FormatInt(round, 10))
	w.Header().Set("X-Fleet-Source", "edge")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	return http.StatusOK
}

// proxiedPolicyHeaders are copied verbatim from the root's policy
// response so version negotiation (ETag/304, cohort, round) behaves as
// if the device had asked the root directly.
var proxiedPolicyHeaders = []string{"Content-Type", "ETag", "X-Fleet-Version", "X-Fleet-Cohort", "X-Fleet-Round"}

// proxyPolicy relays one policy download to the root. ok=false means
// the caller should fall back to the local store (transport failure or
// root 404); any other root answer is relayed as-is.
func (s *Server) proxyPolicy(w http.ResponseWriter, r *http.Request) (status int, ok bool) {
	u, err := url.Parse(s.rootURL + "/v1/policy")
	if err != nil {
		return 0, false
	}
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequest(http.MethodGet, u.String(), nil)
	if err != nil {
		return 0, false
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	// Accept travels too, so the root answers in the device's
	// negotiated encoding and the relay stays a verbatim byte copy.
	if acc := r.Header.Get("Accept"); acc != "" {
		req.Header.Set("Accept", acc)
	}
	resp, err := s.proxy.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return 0, false
	}
	s.metrics.proxied.Add(1)
	for _, h := range proxiedPolicyHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Fleet-Source", "root")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return resp.StatusCode, true
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) int {
	infos := s.store.Infos(r.URL.Query().Get("platform"))
	if infos == nil {
		infos = []fleetd.KeyInfo{}
	}
	return writeJSON(w, http.StatusOK, infos)
}

// FlushReply is the POST /v1/flush body: how many tables the root
// accepted in this drain and how many remain queued.
type FlushReply struct {
	Agg       string `json:"agg"`
	Forwarded int    `json:"forwarded"`
	Pending   int    `json:"pending"`
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) int {
	forwarded, err := s.Flush()
	if err != nil {
		return writeErr(w, http.StatusBadGateway, err)
	}
	return writeJSON(w, http.StatusOK, FlushReply{Agg: s.cfg.ID, Forwarded: forwarded, Pending: s.queue.depth()})
}

// HealthReply is the aggregator's /healthz body.
type HealthReply struct {
	Status    string  `json:"status"`
	Agg       string  `json:"agg"`
	Root      string  `json:"root,omitempty"`
	UptimeS   float64 `json:"uptime_s"`
	Policies  int     `json:"policies"`
	Merged    int     `json:"merged"`
	Tables    int     `json:"device_tables"`
	Devices   int     `json:"devices"`
	Pending   int     `json:"pending"`
	QueueCap  int     `json:"queue_cap"`
	Forwarded int64   `json:"forwarded"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) int {
	keys, merged, uploads := s.store.Stats()
	s.devMu.Lock()
	devices := len(s.devices)
	s.devMu.Unlock()
	return writeJSON(w, http.StatusOK, HealthReply{
		Status: "ok", Agg: s.cfg.ID, Root: s.rootURL,
		UptimeS:  time.Since(s.metrics.start).Seconds(),
		Policies: keys, Merged: merged, Tables: uploads, Devices: devices,
		Pending: s.queue.depth(), QueueCap: s.cfg.QueueLimit, Forwarded: s.metrics.forwarded.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) int {
	keys, merged, uploads := s.store.Stats()
	s.devMu.Lock()
	devices := len(s.devices)
	s.devMu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, s.queue.depth(), s.cfg.QueueLimit, keys, merged, uploads, devices)
	return http.StatusOK
}
