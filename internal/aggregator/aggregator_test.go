package aggregator

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nextdvfs/internal/core"
	"nextdvfs/internal/fleetd"
	"nextdvfs/internal/learner"
	"nextdvfs/internal/rollout"
)

// devTable builds a distinct, merge-compatible device table.
func devTable(seed int) *core.QTable {
	t := core.NewQTable(9)
	for i := 0; i < 6; i++ {
		row := make([]float64, 9)
		for a := range row {
			row[a] = float64(seed) + float64(i*9+a)*0.25
		}
		t.Q[core.StateKey(seed*10+i)] = row
		t.Visits[core.StateKey(seed*10+i)] = seed + i + 1
	}
	t.Steps = int64(seed * 100)
	return t
}

func newRoot(t *testing.T, cfg fleetd.Config) (*fleetd.Server, *httptest.Server) {
	t.Helper()
	srv, err := fleetd.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func newEdge(t *testing.T, cfg Config) (*Server, *fleetd.Client) {
	t.Helper()
	if cfg.FlushEvery == 0 {
		cfg.FlushEvery = -1 // tests flush explicitly unless they opt in
	}
	agg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(agg.Handler())
	t.Cleanup(ts.Close)
	return agg, fleetd.NewClient(ts.URL)
}

// flakyRoot fronts a root handler with an availability switch, so
// tests can take the root down and bring it back.
type flakyRoot struct {
	up atomic.Bool
	h  http.Handler
}

func (f *flakyRoot) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !f.up.Load() {
		http.Error(w, `{"error":"root down"}`, http.StatusServiceUnavailable)
		return
	}
	f.h.ServeHTTP(w, r)
}

// marshalPolicy renders a merged policy set for byte comparison.
func marshalPolicy(t *testing.T, store *fleetd.Store, k fleetd.Key) []byte {
	t.Helper()
	set, _, ok := store.PolicySetRef(k)
	if !ok {
		t.Fatalf("no merged policy for %s", k)
	}
	data, err := core.MarshalTableSet(k.App, set, true)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestAggregatorEndToEnd(t *testing.T) {
	rootSrv, rootTS := newRoot(t, fleetd.Config{})
	agg, client := newEdge(t, Config{ID: "agg-a", Root: rootTS.URL})

	if _, err := client.Checkin("dev-000", "note9"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.UploadTable("dev-000", "note9", "spotify", devTable(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.UploadTable("dev-001", "note9", "spotify", devTable(2)); err != nil {
		t.Fatal(err)
	}
	if got := agg.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}

	// Local merge serves a regional policy before anything reaches the
	// root (the root has no policy yet → edge fallback).
	if _, err := client.Merge("spotify", "note9"); err != nil {
		t.Fatal(err)
	}
	if _, round, err := client.Policy("spotify", "note9"); err != nil || round != 1 {
		t.Fatalf("edge fallback policy: round=%d err=%v", round, err)
	}
	if agg.Metrics().proxyFallbacks.Load() != 1 {
		t.Fatalf("fallbacks = %d, want 1", agg.Metrics().proxyFallbacks.Load())
	}

	// Flush federates the raw device tables; the root merge then sees
	// both devices.
	n, err := agg.Flush()
	if err != nil || n != 2 {
		t.Fatalf("flush = %d, %v; want 2 tables", n, err)
	}
	if agg.Pending() != 0 {
		t.Fatalf("pending after flush = %d", agg.Pending())
	}
	rootClient := fleetd.NewClient(rootTS.URL)
	info, err := rootClient.Merge("spotify", "note9")
	if err != nil || info.Devices != 2 {
		t.Fatalf("root merge = %+v, %v", info, err)
	}

	// The device's policy pull now proxies to the root.
	if _, round, err := client.Policy("spotify", "note9"); err != nil || round != 1 {
		t.Fatalf("proxied policy: round=%d err=%v", round, err)
	}
	if agg.Metrics().proxied.Load() == 0 {
		t.Fatal("policy pull did not proxy to the root")
	}

	// Check-in registration rode the flush: the root's device set
	// includes the edge device.
	h, err := rootClient.Healthz()
	if err != nil || h.Devices != 1 {
		t.Fatalf("root health = %+v, %v (want 1 registered device)", h, err)
	}

	// Two-tier result == flat merge of the same uploads.
	flat := fleetd.NewStore()
	k := fleetd.Key{App: "spotify", Platform: "note9"}
	for i, seed := range []int{1, 2} {
		if _, err := flat.UploadSet(k, fmt.Sprintf("dev-%03d", i), learner.SingleTableSet(devTable(seed))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := flat.MergeSet(k); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalPolicy(t, rootSrv.Store(), k), marshalPolicy(t, flat, k)) {
		t.Fatal("two-tier root merge is not byte-identical to the flat merge")
	}
}

// TestTwoTierByteIdenticalToFlat is the tentpole pin at width: 4
// aggregators × 16 devices each, federated to one root, must merge to
// the byte-identical table a flat single-tier fleet of the same 64
// devices produces.
func TestTwoTierByteIdenticalToFlat(t *testing.T) {
	rootSrv, rootTS := newRoot(t, fleetd.Config{})
	k := fleetd.Key{App: "game", Platform: "sd855"}
	flat := fleetd.NewStore()

	var aggs []*Server
	for a := 0; a < 4; a++ {
		agg, client := newEdge(t, Config{ID: fmt.Sprintf("agg-%d", a), Root: rootTS.URL})
		aggs = append(aggs, agg)
		for d := 0; d < 16; d++ {
			// Device numbering interleaves across aggregators so sorted
			// device order differs from upload order — the identity must
			// come from the canonical join, not delivery order.
			dev := fmt.Sprintf("dev-%08d", d*4+a)
			seed := d*4 + a + 1
			if _, err := client.UploadTable(dev, "sd855", "game", devTable(seed)); err != nil {
				t.Fatal(err)
			}
			if _, err := flat.UploadSet(k, dev, learner.SingleTableSet(devTable(seed))); err != nil {
				t.Fatal(err)
			}
		}
	}
	coord := &Coordinator{Root: fleetd.NewClient(rootTS.URL), Aggs: aggs}
	rep, err := coord.RunEpoch([]fleetd.Key{k})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Late) != 0 || rep.Flushed != 64 {
		t.Fatalf("epoch report = %+v", rep)
	}
	if len(rep.Merges) != 1 || rep.Merges[0].Devices != 64 {
		t.Fatalf("root merges = %+v", rep.Merges)
	}
	if _, _, err := flat.MergeSet(k); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalPolicy(t, rootSrv.Store(), k), marshalPolicy(t, flat, k)) {
		t.Fatal("4-aggregator federated merge is not byte-identical to the flat merge")
	}
}

func TestQueueOverflowRetryAfterAndDedup(t *testing.T) {
	// Root exists but is down, so the queue only drains on overflow
	// tests' terms.
	down := &flakyRoot{h: http.NotFoundHandler()}
	rootTS := httptest.NewServer(down)
	defer rootTS.Close()

	agg, client := newEdge(t, Config{ID: "agg-x", Root: rootTS.URL, QueueLimit: 2, RetryAfterS: 3})

	if _, err := client.UploadTable("dev-000", "note9", "spotify", devTable(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.UploadTable("dev-001", "note9", "spotify", devTable(2)); err != nil {
		t.Fatal(err)
	}
	// Third distinct device overflows: 429, typed retry-after error.
	_, err := client.UploadTable("dev-002", "note9", "spotify", devTable(3))
	var ra *fleetd.RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("overflow error = %v, want RetryAfterError", err)
	}
	if ra.Seconds != 3 {
		t.Fatalf("retry-after = %v, want 3", ra.Seconds)
	}
	if agg.Metrics().Rejected() != 1 {
		t.Fatalf("rejected = %d", agg.Metrics().Rejected())
	}
	// The rejected upload reached neither the queue nor the local store.
	if _, _, uploads := agg.Store().Stats(); uploads != 2 {
		t.Fatalf("local tables = %d, want 2", uploads)
	}

	// Re-upload from a queued device replaces its pending entry — a
	// full queue never locks out the devices already in it.
	if _, err := client.UploadTable("dev-001", "note9", "spotify", devTable(9)); err != nil {
		t.Fatalf("dedup re-upload rejected: %v", err)
	}
	if got := agg.Pending(); got != 2 {
		t.Fatalf("pending after dedup = %d, want 2", got)
	}

	// Drain order is oldest-device-first, and the deduped body is the
	// newer one.
	batch := agg.queue.take(10)
	if len(batch) != 2 || batch[0].pk.device != "dev-000" || batch[1].pk.device != "dev-001" {
		t.Fatalf("drain order = %+v", batch)
	}
	app, set, _, err := core.UnmarshalTableSet(batch[1].body)
	if err != nil || app != "spotify" {
		t.Fatalf("queued body: app=%q err=%v", app, err)
	}
	if set.Primary().Steps != devTable(9).Steps {
		t.Fatalf("queued body Steps = %d, want the re-uploaded table's %d", set.Primary().Steps, devTable(9).Steps)
	}
}

func TestRootUnreachableQueuedUploadsDrainOnReconnect(t *testing.T) {
	rootSrv, err := fleetd.NewServer(fleetd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyRoot{h: rootSrv.Handler()}
	rootTS := httptest.NewServer(flaky)
	defer rootTS.Close()

	agg, client := newEdge(t, Config{ID: "agg-y", Root: rootTS.URL})
	for i := 1; i <= 3; i++ {
		if _, err := client.UploadTable(fmt.Sprintf("dev-%03d", i), "note9", "maps", devTable(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Root down: the flush fails, the queue keeps everything.
	if _, err := agg.Flush(); err == nil {
		t.Fatal("flush against a dead root should fail")
	}
	if agg.Pending() != 3 {
		t.Fatalf("pending after failed flush = %d, want 3", agg.Pending())
	}
	if agg.Metrics().flushFailures.Load() != 1 {
		t.Fatalf("flush failures = %d", agg.Metrics().flushFailures.Load())
	}

	// Reconnect: the same queued tables drain and the root can merge.
	flaky.up.Store(true)
	n, err := agg.Flush()
	if err != nil || n != 3 {
		t.Fatalf("drain on reconnect = %d, %v; want 3", n, err)
	}
	info, _, err := rootSrv.Store().MergeSet(fleetd.Key{App: "maps", Platform: "note9"})
	if err != nil || info.Devices != 3 {
		t.Fatalf("root merge after drain = %+v, %v", info, err)
	}
}

func TestEpochPartialRoundAndCatchUp(t *testing.T) {
	rootSrv, rootTS := newRoot(t, fleetd.Config{})
	rootClient := fleetd.NewClient(rootTS.URL)
	k := fleetd.Key{App: "video", Platform: "note9"}

	aggA, clientA := newEdge(t, Config{ID: "agg-a", Root: rootTS.URL})
	// agg-b reaches the root through its own flaky path, initially down.
	flaky := &flakyRoot{h: rootSrv.Handler()}
	flakyTS := httptest.NewServer(flaky)
	defer flakyTS.Close()
	aggB, clientB := newEdge(t, Config{ID: "agg-b", Root: flakyTS.URL})

	if _, err := clientA.UploadTable("dev-00000001", "note9", "video", devTable(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := clientB.UploadTable("dev-00000002", "note9", "video", devTable(2)); err != nil {
		t.Fatal(err)
	}

	coord := &Coordinator{Root: rootClient, Aggs: []*Server{aggA, aggB}}

	// Epoch 1: agg-b is late; the epoch completes on agg-a's region.
	rep, err := coord.RunEpoch([]fleetd.Key{k})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Late) != 1 || rep.Late[0] != "agg-b" {
		t.Fatalf("late = %v, want [agg-b]", rep.Late)
	}
	if rep.Flushed != 1 || len(rep.Merges) != 1 || rep.Merges[0].Devices != 1 {
		t.Fatalf("partial epoch = %+v", rep)
	}

	// Epoch 2: agg-b recovered; its queued table catches up and the
	// root join covers both regions — byte-identical to a flat merge.
	flaky.up.Store(true)
	rep, err = coord.RunEpoch([]fleetd.Key{k})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Late) != 0 || rep.Flushed != 1 || rep.Merges[0].Devices != 2 {
		t.Fatalf("catch-up epoch = %+v", rep)
	}
	flat := fleetd.NewStore()
	for i, seed := range []int{1, 2} {
		if _, err := flat.UploadSet(k, fmt.Sprintf("dev-%08d", i+1), learner.SingleTableSet(devTable(seed))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := flat.MergeSet(k); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalPolicy(t, rootSrv.Store(), k), marshalPolicy(t, flat, k)) {
		t.Fatal("catch-up merge is not byte-identical to the flat merge")
	}
}

// TestPolicyProxyPreservesRolloutNegotiation pins that the rollout
// lifecycle survives the aggregator tier: version headers, cohorts and
// ETag/304 negotiation pass through the proxy unchanged.
func TestPolicyProxyPreservesRolloutNegotiation(t *testing.T) {
	_, rootTS := newRoot(t, fleetd.Config{Rollout: &rollout.Config{NowUS: func() int64 { return 1 }}})
	rootClient := fleetd.NewClient(rootTS.URL)
	agg, client := newEdge(t, Config{ID: "agg-r", Root: rootTS.URL})

	if _, err := client.Checkin("dev-000", "note9"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.UploadTable("dev-000", "note9", "spotify", devTable(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := rootClient.Merge("spotify", "note9"); err != nil {
		t.Fatal(err)
	}

	// Version-aware pull through the edge: lifecycle metadata intact.
	set, meta, fetched, err := client.PolicyForDevice("dev-000", "spotify", "note9", "")
	if err != nil || !fetched || set == nil {
		t.Fatalf("pull through edge: fetched=%v err=%v", fetched, err)
	}
	if meta.Version != 1 || meta.ETag == "" || meta.Cohort == "" {
		t.Fatalf("lifecycle meta through proxy = %+v", meta)
	}
	// Echoing the ETag yields a proxied 304 — no redundant download.
	set2, meta2, fetched2, err := client.PolicyForDevice("dev-000", "spotify", "note9", meta.ETag)
	if err != nil || fetched2 || set2 != nil {
		t.Fatalf("304 through edge: fetched=%v set=%v err=%v", fetched2, set2, err)
	}
	if meta2.ETag != meta.ETag {
		t.Fatalf("etag drifted through proxy: %q vs %q", meta2.ETag, meta.ETag)
	}
}

func TestBackgroundFlusherDrains(t *testing.T) {
	rootSrv, rootTS := newRoot(t, fleetd.Config{})
	agg, client := newEdge(t, Config{ID: "agg-bg", Root: rootTS.URL, FlushEvery: 5 * time.Millisecond})
	agg.Start()
	defer agg.Close()

	if _, err := client.UploadTable("dev-000", "note9", "spotify", devTable(1)); err != nil {
		t.Fatal(err)
	}
	// Wait for the table to land at the root, not for Pending() to hit
	// zero: Flush takes the batch off the queue before the federation
	// push completes, so the queue reads empty while the push is still
	// in flight and the root hasn't absorbed the upload yet.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, uploads := rootSrv.Store().Stats(); uploads == 1 {
			break
		}
		if time.Now().After(deadline) {
			_, _, uploads := rootSrv.Store().Stats()
			t.Fatalf("background flusher never delivered (root tables=%d, pending=%d)", uploads, agg.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	if agg.Pending() != 0 {
		t.Fatalf("queue not empty after delivery (pending=%d)", agg.Pending())
	}
}

func TestAggregatorRejectsHostileInput(t *testing.T) {
	_, client := newEdge(t, Config{ID: "agg-h"})
	if _, err := client.UploadTable("../../pwn", "note9", "spotify", devTable(1)); err == nil {
		t.Fatal("path-traversal device ID accepted")
	}
	if _, err := client.UploadTable("dev-0", "note9", "../pwn", devTable(1)); err == nil {
		t.Fatal("path-traversal app accepted")
	}
	if _, err := New(Config{ID: "no/slash"}); err == nil {
		t.Fatal("bad aggregator ID accepted")
	}
}

func TestUploadReplyCarriesBackpressureHint(t *testing.T) {
	down := &flakyRoot{h: http.NotFoundHandler()}
	rootTS := httptest.NewServer(down)
	defer rootTS.Close()
	agg, _ := newEdge(t, Config{ID: "agg-soft", Root: rootTS.URL, QueueLimit: 4, SoftLimitPct: 50, RetryAfterS: 2})

	put := func(dev string) UploadReply {
		t.Helper()
		data, err := core.MarshalTableCompact("spotify", devTable(1), false)
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPut, "/v1/table?device="+dev+"&platform=note9", bytes.NewReader(data))
		rec := httptest.NewRecorder()
		agg.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("upload %s: %d %s", dev, rec.Code, rec.Body)
		}
		var reply UploadReply
		if err := jsonDecode(rec.Body.Bytes(), &reply); err != nil {
			t.Fatal(err)
		}
		return reply
	}
	if r := put("dev-000"); r.BackoffS != 0 || r.Pending != 1 {
		t.Fatalf("below watermark reply = %+v", r)
	}
	if r := put("dev-001"); r.BackoffS != 2 || r.Pending != 2 {
		t.Fatalf("at watermark reply = %+v (want backoff_s=2)", r)
	}
}

func jsonDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	return dec.Decode(v)
}

// TestFederateRejectsPoisonedItemsIndividually pins the root's
// partial-success contract: one bad item in a batch is rejected and
// sampled, the rest land.
func TestFederateRejectsPoisonedItemsIndividually(t *testing.T) {
	rootSrv, rootTS := newRoot(t, fleetd.Config{})
	rootClient := fleetd.NewClient(rootTS.URL)

	good, err := core.MarshalTableCompact("spotify", devTable(1), false)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := rootClient.Federate(fleetd.FederateRequest{
		Agg:     "agg-p",
		Devices: []string{"dev-000", "../../etc"},
		Uploads: []fleetd.FederatedUpload{
			{Device: "dev-000", Platform: "note9", Body: good},
			{Device: "dev-001", Platform: "note9", Body: []byte(`{"garbage":true}`)},
			{Device: "../pwn", Platform: "note9", Body: good},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Registered != 1 || reply.Accepted != 1 || reply.Rejected != 2 || len(reply.Errors) != 2 {
		t.Fatalf("federate reply = %+v", reply)
	}
	if _, _, uploads := rootSrv.Store().Stats(); uploads != 1 {
		t.Fatalf("root tables = %d, want 1", uploads)
	}
	if _, err := rootClient.Federate(fleetd.FederateRequest{Agg: "bad/agg"}); err == nil ||
		!strings.Contains(err.Error(), "aggregator ID") {
		t.Fatalf("bad agg ID error = %v", err)
	}
}
