package aggregator

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nextdvfs/internal/fleetd"
)

// Coordinator drives phased federation epochs over a set of edge
// aggregators and the root — the coordinator half of the
// coordinator/worker decomposition. One epoch runs three phases:
//
//	split:          each aggregator runs a local merge round per key,
//	                refreshing the regional policy it serves as the
//	                root-unreachable fallback (aggregators work in
//	                parallel; failures here are non-fatal).
//	local-merge →   each aggregator flushes its queued raw device
//	federated-join: tables to the root; a late or unreachable
//	                aggregator is recorded in Late and the epoch
//	                continues without it — its queue keeps the tables
//	                and the next epoch catches up.
//	root join:      the root merges every key over all device tables
//	                it now holds (cloud.JoinDevices order), minting
//	                rollout artifacts when the lifecycle is enabled.
//
// The production deployment runs the same phases over the wire: POST
// /v1/merge and POST /v1/flush on each aggregator, then POST /v1/merge
// on the root (see docs/operations.md).
type Coordinator struct {
	Root  *fleetd.Client
	Aggs  []*Server
	epoch int64
}

// EpochReport summarizes one federation epoch.
type EpochReport struct {
	Epoch       int64
	LocalMerges int                // aggregator-local rounds that ran
	Flushed     int                // device tables the root accepted this epoch
	Late        []string           // aggregators that failed to flush (sorted)
	Merges      []fleetd.MergeInfo // root rounds, one per key
}

// RunEpoch runs one federation epoch over the given policy keys. The
// returned error is nil as long as the root completed its joins; late
// aggregators are reported, not fatal.
func (c *Coordinator) RunEpoch(keys []fleetd.Key) (EpochReport, error) {
	c.epoch++
	rep := EpochReport{Epoch: c.epoch}

	// Phase 1 — split: local merge rounds, in parallel across
	// aggregators. An aggregator with nothing to merge for a key (no
	// regional uploads) is normal, not an error.
	var wg sync.WaitGroup
	localMerges := make([]int, len(c.Aggs))
	for i, a := range c.Aggs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, k := range keys {
				if _, err := a.MergeLocal(k); err == nil {
					localMerges[i]++
				}
			}
		}()
	}
	wg.Wait()
	for _, n := range localMerges {
		rep.LocalMerges += n
	}

	// Phase 2 — drain the workers upward. Late aggregators keep their
	// queues; the epoch completes without them.
	flushed := make([]int, len(c.Aggs))
	late := make([]bool, len(c.Aggs))
	for i, a := range c.Aggs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := a.Flush()
			flushed[i] = n
			late[i] = err != nil
		}()
	}
	wg.Wait()
	for i, a := range c.Aggs {
		rep.Flushed += flushed[i]
		if late[i] {
			rep.Late = append(rep.Late, a.ID())
		}
	}
	sort.Strings(rep.Late)

	// Phase 3 — federated join at the root, one round per key. A key
	// with no tables at the root yet (every regional device sits behind
	// a late aggregator) is skipped; any other failure is the epoch's.
	for _, k := range keys {
		info, err := c.Root.Merge(k.App, k.Platform)
		if err != nil {
			if strings.Contains(err.Error(), "no device tables") {
				continue
			}
			return rep, fmt.Errorf("aggregator: epoch %d: root join for %s: %w", c.epoch, k, err)
		}
		rep.Merges = append(rep.Merges, info)
	}
	return rep, nil
}
