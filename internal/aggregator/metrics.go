package aggregator

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// numLabels counts the instrumented edge endpoints.
const numLabels = 8

// Request labels, one per device-facing endpoint (flush is the admin
// drain trigger). The metrics page iterates this list so every counter
// appears even at zero.
var requestLabels = [numLabels]string{"checkin", "upload", "merge", "policy", "apps", "flush", "healthz", "metrics"}

// Metrics is the edge aggregator's instrumentation: per-endpoint
// request/error counters plus the federation-pipeline counters every
// backpressure question starts from (see docs/operations.md for the
// reference table).
type Metrics struct {
	start    time.Time
	requests [numLabels]atomic.Int64
	errors   [numLabels]atomic.Int64

	// rejected counts uploads answered 429 because the upward queue was
	// full — the hard backpressure signal.
	rejected atomic.Int64
	// forwarded counts device tables the root accepted; dropped counts
	// tables the root rejected (and the aggregator discarded).
	forwarded atomic.Int64
	dropped   atomic.Int64
	// flushes / flushFailures count federation pushes by outcome; a
	// failed push requeues its batch.
	flushes       atomic.Int64
	flushFailures atomic.Int64
	// proxied / proxyFallbacks count policy downloads answered by the
	// root versus served from the local merged table because the root
	// was unreachable or had no policy yet.
	proxied        atomic.Int64
	proxyFallbacks atomic.Int64
}

// NewMetrics starts the uptime clock.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

func labelIndex(label string) int {
	for i, l := range requestLabels {
		if l == label {
			return i
		}
	}
	panic("aggregator: unknown metrics label " + label)
}

func (m *Metrics) request(idx int) { m.requests[idx].Add(1) }
func (m *Metrics) errored(idx int) { m.errors[idx].Add(1) }

// Requests returns the total request count across endpoints.
func (m *Metrics) Requests() int64 {
	var n int64
	for i := range m.requests {
		n += m.requests[i].Load()
	}
	return n
}

// Forwarded returns how many device tables the root has accepted.
func (m *Metrics) Forwarded() int64 { return m.forwarded.Load() }

// Rejected returns how many uploads were answered 429 (queue full).
func (m *Metrics) Rejected() int64 { return m.rejected.Load() }

// write renders the Prometheus text exposition. Queue and store gauges
// are passed in so the page reflects live state.
func (m *Metrics) write(w io.Writer, pending, queueLimit, keys, merged, uploads, devices int) {
	fmt.Fprintf(w, "# HELP agg_uptime_seconds Seconds since the aggregator started.\n")
	fmt.Fprintf(w, "# TYPE agg_uptime_seconds gauge\n")
	fmt.Fprintf(w, "agg_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# HELP agg_requests_total Requests served, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE agg_requests_total counter\n")
	for i, l := range requestLabels {
		fmt.Fprintf(w, "agg_requests_total{endpoint=%q} %d\n", l, m.requests[i].Load())
	}
	fmt.Fprintf(w, "# HELP agg_request_errors_total Requests answered with an error status, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE agg_request_errors_total counter\n")
	for i, l := range requestLabels {
		fmt.Fprintf(w, "agg_request_errors_total{endpoint=%q} %d\n", l, m.errors[i].Load())
	}

	fmt.Fprintf(w, "# HELP agg_pending_uploads Device tables queued for upward federation.\n")
	fmt.Fprintf(w, "# TYPE agg_pending_uploads gauge\n")
	fmt.Fprintf(w, "agg_pending_uploads %d\n", pending)
	fmt.Fprintf(w, "# HELP agg_queue_limit Upward queue capacity (distinct policy-device pairs).\n")
	fmt.Fprintf(w, "# TYPE agg_queue_limit gauge\n")
	fmt.Fprintf(w, "agg_queue_limit %d\n", queueLimit)
	fmt.Fprintf(w, "# HELP agg_rejected_uploads_total Uploads answered 429 because the upward queue was full.\n")
	fmt.Fprintf(w, "# TYPE agg_rejected_uploads_total counter\n")
	fmt.Fprintf(w, "agg_rejected_uploads_total %d\n", m.rejected.Load())
	fmt.Fprintf(w, "# HELP agg_forwarded_tables_total Device tables the root accepted via federation pushes.\n")
	fmt.Fprintf(w, "# TYPE agg_forwarded_tables_total counter\n")
	fmt.Fprintf(w, "agg_forwarded_tables_total %d\n", m.forwarded.Load())
	fmt.Fprintf(w, "# HELP agg_dropped_tables_total Device tables the root rejected and the aggregator discarded.\n")
	fmt.Fprintf(w, "# TYPE agg_dropped_tables_total counter\n")
	fmt.Fprintf(w, "agg_dropped_tables_total %d\n", m.dropped.Load())
	fmt.Fprintf(w, "# HELP agg_flush_total Federation pushes to the root, by outcome.\n")
	fmt.Fprintf(w, "# TYPE agg_flush_total counter\n")
	fmt.Fprintf(w, "agg_flush_total{result=\"ok\"} %d\n", m.flushes.Load())
	fmt.Fprintf(w, "agg_flush_total{result=\"error\"} %d\n", m.flushFailures.Load())
	fmt.Fprintf(w, "# HELP agg_policy_proxied_total Policy downloads answered by the root through the proxy.\n")
	fmt.Fprintf(w, "# TYPE agg_policy_proxied_total counter\n")
	fmt.Fprintf(w, "agg_policy_proxied_total %d\n", m.proxied.Load())
	fmt.Fprintf(w, "# HELP agg_policy_local_fallback_total Policy downloads served from the local merged table (root unreachable or without a policy).\n")
	fmt.Fprintf(w, "# TYPE agg_policy_local_fallback_total counter\n")
	fmt.Fprintf(w, "agg_policy_local_fallback_total %d\n", m.proxyFallbacks.Load())

	fmt.Fprintf(w, "# HELP agg_policies Known app-platform policies in the local store (merged = with a local table).\n")
	fmt.Fprintf(w, "# TYPE agg_policies gauge\n")
	fmt.Fprintf(w, "agg_policies{state=\"known\"} %d\n", keys)
	fmt.Fprintf(w, "agg_policies{state=\"merged\"} %d\n", merged)
	fmt.Fprintf(w, "# HELP agg_device_tables Device tables held in the local store.\n")
	fmt.Fprintf(w, "# TYPE agg_device_tables gauge\n")
	fmt.Fprintf(w, "agg_device_tables %d\n", uploads)
	fmt.Fprintf(w, "# HELP agg_devices_seen Distinct devices that have checked in at this edge.\n")
	fmt.Fprintf(w, "# TYPE agg_devices_seen gauge\n")
	fmt.Fprintf(w, "agg_devices_seen %d\n", devices)
}
