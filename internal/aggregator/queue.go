package aggregator

import (
	"sync"

	"nextdvfs/internal/fleetd"
)

// pendKey identifies one pending upward upload: the policy key plus
// the device that produced it. A device re-uploading the same policy
// replaces its pending body instead of consuming another slot, so the
// queue's capacity bounds distinct (policy, device) pairs — the only
// thing the root ultimately keeps — not raw request volume.
type pendKey struct {
	key    fleetd.Key
	device string
}

// pendingUpload pairs a queued key with the device's original compact
// wire body, forwarded to the root unmodified.
type pendingUpload struct {
	pk   pendKey
	body []byte
}

// queue is the bounded buffer between the device-facing handlers and
// the upward federation pipeline. FIFO across distinct keys (oldest
// device first), replace-in-place per key, hard-bounded: when full,
// new keys are rejected and the handler answers 429 + Retry-After.
type queue struct {
	mu      sync.Mutex
	limit   int
	entries map[pendKey][]byte
	order   []pendKey // arrival order of the keys in entries
}

func newQueue(limit int) *queue {
	return &queue{limit: limit, entries: make(map[pendKey][]byte)}
}

// put enqueues (or replaces) a pending upload. It reports the depth
// after the operation and ok=false when a new key would exceed the
// bound — replacements always succeed, so a device that honors
// Retry-After never loses its slot to its own retries.
func (q *queue) put(pk pendKey, body []byte) (depth int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, exists := q.entries[pk]; !exists {
		if len(q.order) >= q.limit {
			return len(q.order), false
		}
		q.order = append(q.order, pk)
	}
	q.entries[pk] = body
	return len(q.order), true
}

// remove drops a pending upload (used to unwind an enqueue when the
// local store rejects the same body — nothing the local tier refused
// should reach the root).
func (q *queue) remove(pk pendKey) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, exists := q.entries[pk]; !exists {
		return
	}
	delete(q.entries, pk)
	for i, k := range q.order {
		if k == pk {
			q.order = append(q.order[:i], q.order[i+1:]...)
			break
		}
	}
}

// take pops up to n oldest pending uploads for a flush batch.
func (q *queue) take(n int) []pendingUpload {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n > len(q.order) {
		n = len(q.order)
	}
	if n == 0 {
		return nil
	}
	batch := make([]pendingUpload, n)
	for i, pk := range q.order[:n] {
		batch[i] = pendingUpload{pk: pk, body: q.entries[pk]}
		delete(q.entries, pk)
	}
	q.order = append(q.order[:0], q.order[n:]...)
	return batch
}

// putBack returns a failed flush batch to the front of the queue so
// the next flush retries oldest-first. A key re-uploaded while the
// flush was in flight keeps its newer body; the stale batch copy is
// dropped. putBack ignores the bound — the entries held slots when
// taken, and refusing them here would silently lose device tables.
func (q *queue) putBack(batch []pendingUpload) {
	q.mu.Lock()
	defer q.mu.Unlock()
	restored := make([]pendKey, 0, len(batch))
	for _, p := range batch {
		if _, exists := q.entries[p.pk]; exists {
			continue
		}
		q.entries[p.pk] = p.body
		restored = append(restored, p.pk)
	}
	q.order = append(restored, q.order...)
}

// depth reports how many uploads are pending.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.order)
}
