package aggregator

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"nextdvfs/internal/core"
	"nextdvfs/internal/fleetd"
	"nextdvfs/internal/learner"
)

func newEdgeWire(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.FlushEvery == 0 {
		cfg.FlushEvery = -1
	}
	agg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(agg.Handler())
	t.Cleanup(ts.Close)
	return agg, ts
}

func hashSet(t *testing.T, set *core.TableSet) string {
	t.Helper()
	h, err := core.HashTableSet(set)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestEdgeBinaryUploadFederatesToRoot: a binary-mode device uploads
// through the edge; the queued raw binary body rides the NXTF envelope
// upward and the root's merged policy matches a JSON-wire reference
// fleet exactly.
func TestEdgeBinaryUploadFederatesToRoot(t *testing.T) {
	root, rootTS := newRoot(t, fleetd.Config{})
	agg, aggTS := newEdgeWire(t, Config{ID: "agg-bin", Root: rootTS.URL})

	dev := fleetd.NewClient(aggTS.URL)
	dev.UseBinary = true
	if _, err := dev.UploadTableSet("dev-a", "note9", "game", learner.SingleTableSet(devTable(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.UploadTable("dev-b", "note9", "game", devTable(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Flush(); err != nil {
		t.Fatal(err)
	}
	rc := fleetd.NewClient(rootTS.URL)
	if _, err := rc.Merge("game", "note9"); err != nil {
		t.Fatal(err)
	}
	got, _, ok := root.Store().PolicySetRef(fleetd.Key{App: "game", Platform: "note9"})
	if !ok {
		t.Fatal("no root policy after binary federation")
	}

	refRoot, refTS := newRoot(t, fleetd.Config{})
	refC := fleetd.NewClient(refTS.URL)
	if _, err := refC.UploadTableSet("dev-a", "note9", "game", learner.SingleTableSet(devTable(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := refC.UploadTable("dev-b", "note9", "game", devTable(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := refC.Merge("game", "note9"); err != nil {
		t.Fatal(err)
	}
	want, _, ok := refRoot.Store().PolicySetRef(fleetd.Key{App: "game", Platform: "note9"})
	if !ok || hashSet(t, got) != hashSet(t, want) {
		t.Fatal("binary-wire two-tier policy diverges from JSON-wire flat fleet")
	}
}

// TestEdgeRejectsDeltaUploads: the edge tier answers X-Fleet-Base-Gen
// with 409 (it has no generations to echo), and a DeltaUploader
// pointed at an edge silently stays in full-upload mode because edge
// replies carry no gen.
func TestEdgeRejectsDeltaUploads(t *testing.T) {
	agg, ts := newEdgeWire(t, Config{ID: "agg-d"})
	body, err := core.MarshalTableSetCompact("game", learner.SingleTableSet(devTable(1)), false)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut,
		ts.URL+"/v1/table?device=dev-a&platform=note9", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Fleet-Base-Gen", "3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delta upload at edge: %d, want 409", resp.StatusCode)
	}

	c := fleetd.NewClient(ts.URL)
	up := c.NewDeltaUploader("dev-a", "note9", "game")
	s1 := learner.SingleTableSet(devTable(1))
	if _, err := up.Upload(s1); err != nil {
		t.Fatal(err)
	}
	s2 := s1.Clone()
	s2.Primary().Q[core.StateKey(10)][0]++
	if _, err := up.Upload(s2); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.MergeLocal(fleetd.Key{App: "game", Platform: "note9"}); err != nil {
		t.Fatal(err)
	}
	got, _, ok := agg.Store().PolicySetRef(fleetd.Key{App: "game", Platform: "note9"})
	if !ok || hashSet(t, got) != hashSet(t, s2) {
		t.Fatal("full-upload mode against the edge lost the latest table")
	}
}

// TestEdgePolicyAcceptNegotiation covers both serving paths: the proxy
// forwards Accept so the root answers binary, and the edge fallback
// (root down / standalone) honors Accept itself.
func TestEdgePolicyAcceptNegotiation(t *testing.T) {
	getPolicy := func(ts *httptest.Server) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet,
			ts.URL+"/v1/policy?app=game&platform=note9", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Accept", core.TableSetMediaType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// Proxied: policy lives at the root.
	_, rootTS := newRoot(t, fleetd.Config{})
	rc := fleetd.NewClient(rootTS.URL)
	if _, err := rc.UploadTableSet("dev-a", "note9", "game", learner.SingleTableSet(devTable(3))); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Merge("game", "note9"); err != nil {
		t.Fatal(err)
	}
	_, aggTS := newEdgeWire(t, Config{ID: "agg-p", Root: rootTS.URL})
	resp, body := getPolicy(aggTS)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Fleet-Source") != "root" {
		t.Fatalf("proxied policy: %d source=%q", resp.StatusCode, resp.Header.Get("X-Fleet-Source"))
	}
	if resp.Header.Get("Content-Type") != core.TableSetMediaType || !core.IsBinaryTableSet(body) {
		t.Fatalf("proxied policy not binary (ct=%q)", resp.Header.Get("Content-Type"))
	}

	// Fallback: standalone edge with only a local merge.
	agg, soloTS := newEdgeWire(t, Config{ID: "agg-s"})
	sc := fleetd.NewClient(soloTS.URL)
	if _, err := sc.UploadTableSet("dev-a", "note9", "game", learner.SingleTableSet(devTable(3))); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.MergeLocal(fleetd.Key{App: "game", Platform: "note9"}); err != nil {
		t.Fatal(err)
	}
	resp, body = getPolicy(soloTS)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Fleet-Source") != "edge" {
		t.Fatalf("fallback policy: %d source=%q", resp.StatusCode, resp.Header.Get("X-Fleet-Source"))
	}
	if resp.Header.Get("Content-Type") != core.TableSetMediaType || !core.IsBinaryTableSet(body) {
		t.Fatalf("fallback policy not binary (ct=%q)", resp.Header.Get("Content-Type"))
	}
}
