// Package batch is the parallel run orchestrator: it fans a grid of
// simulation jobs (app × scheme × seed × platform) out across a worker
// pool, one private sim.Engine per job, and returns results in
// deterministic job order regardless of worker count. Determinism is
// structural, not accidental: a Job owns everything mutable (its Build
// factory constructs a fresh config, chip, models and timeline), so the
// schedule cannot leak between runs — same-grid outputs are
// byte-identical at -parallel 1 and -parallel 8, the invariant
// deterministic-simulator practice demands and the batch tests pin.
package batch

import (
	"runtime"
	"sync"

	"nextdvfs/internal/sim"
)

// Job is one simulation in a grid. App/Scheme/Platform/Seed are labels
// carried through to the result for reporting and grouping; Build does
// the work: it must return a fresh, fully independent sim.Config every
// call (no shared chips, models, timelines or controllers with any
// other concurrently runnable job).
type Job struct {
	App      string
	Scheme   string
	Platform string
	Seed     int64
	Build    func() (sim.Config, error)
}

// RunResult pairs a job's labels with its simulation outcome. Err is a
// string (empty = success) so result slices marshal and compare
// byte-for-byte in determinism checks.
type RunResult struct {
	Index    int
	App      string
	Scheme   string
	Platform string
	Seed     int64
	Result   sim.Result
	Err      string
}

// Options sizes the worker pool.
type Options struct {
	// Parallel is the worker count; 0 or negative means GOMAXPROCS.
	Parallel int
}

func (o Options) workers(n int) int {
	w := o.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every job on the pool and returns one RunResult per job,
// in job order. A job that fails to build or validate reports its error
// in the result instead of aborting the grid.
func Run(jobs []Job, opts Options) []RunResult {
	results := make([]RunResult, len(jobs))
	Map(len(jobs), opts.Parallel, func(i int) {
		results[i] = runJob(i, jobs[i])
	})
	return results
}

func runJob(i int, j Job) RunResult {
	rr := RunResult{Index: i, App: j.App, Scheme: j.Scheme, Platform: j.Platform, Seed: j.Seed}
	cfg, err := j.Build()
	if err != nil {
		rr.Err = err.Error()
		return rr
	}
	eng, err := sim.New(cfg)
	if err != nil {
		rr.Err = err.Error()
		return rr
	}
	rr.Result = eng.Run()
	return rr
}

// Map runs fn(0..n-1) across min(parallel, n) workers (parallel ≤ 0 →
// GOMAXPROCS) and returns when all calls finish. It is the generic
// fan-out under Run, and what experiment drivers use when one grid cell
// is more than a single simulation (e.g. train-then-evaluate per app).
// fn must confine its writes to cell i of the caller's result slice.
func Map(n, parallel int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Options{Parallel: parallel}.workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Aggregate summarizes a grid: unweighted per-job means and grid-wide
// peaks of the headline quantities (each job counts once regardless of
// its session length).
type Aggregate struct {
	Jobs   int
	Errors int
	// MeanAvgPowerW / MeanAvgFPS / MeanActiveFPS average the per-session
	// averages over the successful jobs.
	MeanAvgPowerW float64
	MeanAvgFPS    float64
	MeanActiveFPS float64
	// PeakPowerW / PeakTempBigC / PeakTempDevC are grid-wide maxima.
	PeakPowerW   float64
	PeakTempBigC float64
	PeakTempDevC float64
	// TotalEnergyJ and TotalSimS integrate across the grid.
	TotalEnergyJ float64
	TotalSimS    float64
}

// Aggregated folds a result slice into an Aggregate.
func Aggregated(results []RunResult) Aggregate {
	var a Aggregate
	a.Jobs = len(results)
	ok := 0
	for _, r := range results {
		if r.Err != "" {
			a.Errors++
			continue
		}
		ok++
		a.MeanAvgPowerW += r.Result.AvgPowerW
		a.MeanAvgFPS += r.Result.AvgFPS
		a.MeanActiveFPS += r.Result.ActiveAvgFPS
		if r.Result.PeakPowerW > a.PeakPowerW {
			a.PeakPowerW = r.Result.PeakPowerW
		}
		if r.Result.PeakTempBigC > a.PeakTempBigC {
			a.PeakTempBigC = r.Result.PeakTempBigC
		}
		if r.Result.PeakTempDevC > a.PeakTempDevC {
			a.PeakTempDevC = r.Result.PeakTempDevC
		}
		a.TotalEnergyJ += r.Result.EnergyJ
		a.TotalSimS += r.Result.DurationS
	}
	if ok > 0 {
		a.MeanAvgPowerW /= float64(ok)
		a.MeanAvgFPS /= float64(ok)
		a.MeanActiveFPS /= float64(ok)
	}
	return a
}
