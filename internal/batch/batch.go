// Package batch is the parallel run orchestrator: it fans a grid of
// simulation jobs (app × scheme × seed × platform) out across a worker
// pool, one private sim.Engine per job, and returns results in
// deterministic job order regardless of worker count. Determinism is
// structural, not accidental: a Job owns everything mutable (its Build
// factory constructs a fresh config, chip, models and timeline), so the
// schedule cannot leak between runs — same-grid outputs are
// byte-identical at -parallel 1 and -parallel 8, the invariant
// deterministic-simulator practice demands and the batch tests pin.
package batch

import (
	"runtime"
	"sync"

	"nextdvfs/internal/sim"
)

// Job is one simulation in a grid. App/Scheme/Platform/Seed are labels
// carried through to the result for reporting and grouping; Build does
// the work: it must return a fresh, fully independent sim.Config every
// call (no shared chips, models, timelines or controllers with any
// other concurrently runnable job).
type Job struct {
	App      string
	Scheme   string
	Platform string
	Seed     int64
	Build    func() (sim.Config, error)
	// LockstepKey, when non-empty, marks this job as batchable: a run of
	// CONSECUTIVE jobs carrying the same key is executed through one
	// sim.BatchEngine (one shared tick loop, struct-of-arrays state)
	// instead of one scalar engine per job. Callers set the same key on
	// jobs that share platform/scenario structure and differ only by
	// seed or scheme — exactly what sim.NewBatch accepts. The key is an
	// optimization hint, never a correctness risk: lanes are
	// bit-identical to scalar runs, results still land in job order, and
	// a mis-keyed run falls back to scalar engines.
	LockstepKey string
}

// RunResult pairs a job's labels with its simulation outcome. Err is a
// string (empty = success) so result slices marshal and compare
// byte-for-byte in determinism checks.
type RunResult struct {
	Index    int
	App      string
	Scheme   string
	Platform string
	Seed     int64
	Result   sim.Result
	Err      string
}

// Options sizes the worker pool.
type Options struct {
	// Parallel is the worker count; 0 or negative means GOMAXPROCS.
	Parallel int
}

func (o Options) workers(n int) int {
	w := o.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every job on the pool and returns one RunResult per job,
// in job order. A job that fails to build or validate reports its error
// in the result instead of aborting the grid. Consecutive jobs sharing
// a non-empty LockstepKey run as one lockstep batch per worker; all
// other jobs get a private scalar engine as before.
func Run(jobs []Job, opts Options) []RunResult {
	results := make([]RunResult, len(jobs))
	spans := lockstepSpans(jobs)
	Map(len(spans), opts.Parallel, func(s int) {
		sp := spans[s]
		if sp.end-sp.start == 1 {
			results[sp.start] = runJob(sp.start, jobs[sp.start])
			return
		}
		runLockstep(jobs, sp.start, sp.end, results)
	})
	return results
}

// span is one schedulable unit: a single job, or a run of consecutive
// jobs sharing a LockstepKey. Half-open [start, end).
type span struct{ start, end int }

// lockstepSpans partitions the job list into schedulable units. Only
// CONSECUTIVE equal keys group — callers order their grids so batchable
// jobs are adjacent, and interleaving distinct work never silently
// serializes behind one worker.
func lockstepSpans(jobs []Job) []span {
	spans := make([]span, 0, len(jobs))
	for i := 0; i < len(jobs); {
		j := i + 1
		if jobs[i].LockstepKey != "" {
			for j < len(jobs) && jobs[j].LockstepKey == jobs[i].LockstepKey {
				j++
			}
		}
		spans = append(spans, span{start: i, end: j})
		i = j
	}
	return spans
}

// runLockstep executes jobs[start:end) through one sim.BatchEngine.
// Fallback is total, not partial: if any lane fails to build, or the
// configs turn out not to be lockstep-compatible, every job in the span
// runs on its own scalar engine — same results (lockstep lanes are
// bit-identical to scalar runs), just without the shared tick loop.
func runLockstep(jobs []Job, start, end int, results []RunResult) {
	k := end - start
	cfgs := make([]sim.Config, k)
	for r := 0; r < k; r++ {
		cfg, err := jobs[start+r].Build()
		if err != nil {
			for i := start; i < end; i++ {
				results[i] = runJob(i, jobs[i])
			}
			return
		}
		cfgs[r] = cfg
	}
	be, err := sim.NewBatch(cfgs)
	if err != nil {
		// Mis-keyed span: the configs are already built (Build must
		// return independent configs every call, and NewBatch does not
		// consume them on error), so run them scalar.
		for r := 0; r < k; r++ {
			i := start + r
			j := jobs[i]
			results[i] = RunResult{Index: i, App: j.App, Scheme: j.Scheme, Platform: j.Platform, Seed: j.Seed}
			eng, err := sim.New(cfgs[r])
			if err != nil {
				results[i].Err = err.Error()
				continue
			}
			results[i].Result = eng.Run()
		}
		return
	}
	for r, res := range be.Run() {
		i := start + r
		j := jobs[i]
		results[i] = RunResult{Index: i, App: j.App, Scheme: j.Scheme, Platform: j.Platform, Seed: j.Seed, Result: res}
	}
}

func runJob(i int, j Job) RunResult {
	rr := RunResult{Index: i, App: j.App, Scheme: j.Scheme, Platform: j.Platform, Seed: j.Seed}
	cfg, err := j.Build()
	if err != nil {
		rr.Err = err.Error()
		return rr
	}
	eng, err := sim.New(cfg)
	if err != nil {
		rr.Err = err.Error()
		return rr
	}
	rr.Result = eng.Run()
	return rr
}

// Map runs fn(0..n-1) across min(parallel, n) workers (parallel ≤ 0 →
// GOMAXPROCS) and returns when all calls finish. It is the generic
// fan-out under Run, and what experiment drivers use when one grid cell
// is more than a single simulation (e.g. train-then-evaluate per app).
// fn must confine its writes to cell i of the caller's result slice.
func Map(n, parallel int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Options{Parallel: parallel}.workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Aggregate summarizes a grid: unweighted per-job means and grid-wide
// peaks of the headline quantities (each job counts once regardless of
// its session length).
type Aggregate struct {
	Jobs   int
	Errors int
	// MeanAvgPowerW / MeanAvgFPS / MeanActiveFPS average the per-session
	// averages over the successful jobs.
	MeanAvgPowerW float64
	MeanAvgFPS    float64
	MeanActiveFPS float64
	// PeakPowerW / PeakTempBigC / PeakTempDevC are grid-wide maxima.
	PeakPowerW   float64
	PeakTempBigC float64
	PeakTempDevC float64
	// TotalEnergyJ and TotalSimS integrate across the grid.
	TotalEnergyJ float64
	TotalSimS    float64
}

// Aggregated folds a result slice into an Aggregate.
func Aggregated(results []RunResult) Aggregate {
	var a Aggregate
	a.Jobs = len(results)
	ok := 0
	for _, r := range results {
		if r.Err != "" {
			a.Errors++
			continue
		}
		ok++
		a.MeanAvgPowerW += r.Result.AvgPowerW
		a.MeanAvgFPS += r.Result.AvgFPS
		a.MeanActiveFPS += r.Result.ActiveAvgFPS
		if r.Result.PeakPowerW > a.PeakPowerW {
			a.PeakPowerW = r.Result.PeakPowerW
		}
		if r.Result.PeakTempBigC > a.PeakTempBigC {
			a.PeakTempBigC = r.Result.PeakTempBigC
		}
		if r.Result.PeakTempDevC > a.PeakTempDevC {
			a.PeakTempDevC = r.Result.PeakTempDevC
		}
		a.TotalEnergyJ += r.Result.EnergyJ
		a.TotalSimS += r.Result.DurationS
	}
	if ok > 0 {
		a.MeanAvgPowerW /= float64(ok)
		a.MeanAvgFPS /= float64(ok)
		a.MeanActiveFPS /= float64(ok)
	}
	return a
}
