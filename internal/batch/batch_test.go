package batch

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sync/atomic"
	"testing"

	"nextdvfs/internal/platform"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// gridJobs builds a small app × scheme × seed × platform grid. Every
// job owns its timeline and config; schemes are schedutil vs
// powersave-pinned governor so no controller state is shared.
func gridJobs() []Job {
	var jobs []Job
	for _, app := range []string{workload.NameSpotify, workload.NamePubG} {
		for _, seed := range []int64{1, 2} {
			for _, platName := range []string{"note9", "sd855"} {
				app, seed, platName := app, seed, platName
				jobs = append(jobs, Job{
					App: app, Scheme: "schedutil", Platform: platName, Seed: seed,
					Build: func() (sim.Config, error) {
						p := platform.MustGet(platName)
						rng := rand.New(rand.NewSource(seed))
						tl := &session.Timeline{Scripts: []session.Script{
							session.ForApp(workload.ByName(app), session.Seconds(20), rng),
						}}
						return p.Config(tl, seed), nil
					},
				})
			}
		}
	}
	return jobs
}

// The tentpole invariant: the same grid yields byte-identical results
// at -parallel 1 and -parallel 8.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	serial := Run(gridJobs(), Options{Parallel: 1})
	parallel := Run(gridJobs(), Options{Parallel: 8})

	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("parallel grid diverged from serial grid")
	}
}

func TestRunPreservesJobOrderAndLabels(t *testing.T) {
	jobs := gridJobs()
	results := Run(jobs, Options{Parallel: 4})
	if len(results) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if r.App != jobs[i].App || r.Platform != jobs[i].Platform || r.Seed != jobs[i].Seed {
			t.Fatalf("result %d labels %+v do not match job %+v", i, r, jobs[i])
		}
		if r.Err != "" {
			t.Fatalf("job %d failed: %s", i, r.Err)
		}
		if r.Result.DurationS != 20 {
			t.Fatalf("job %d duration %g", i, r.Result.DurationS)
		}
	}
}

func TestRunReportsBuildErrorsWithoutAborting(t *testing.T) {
	jobs := gridJobs()[:2]
	jobs[0].Build = func() (sim.Config, error) { return sim.Config{}, nil } // invalid: fails sim.New
	results := Run(jobs, Options{})
	if results[0].Err == "" {
		t.Fatal("invalid config must surface an error")
	}
	if results[1].Err != "" {
		t.Fatalf("healthy job poisoned: %s", results[1].Err)
	}
}

func TestMapCoversEveryIndexOnce(t *testing.T) {
	for _, par := range []int{1, 3, 16} {
		var counts [100]int32
		Map(len(counts), par, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("parallel=%d: index %d ran %d times", par, i, c)
			}
		}
	}
	Map(0, 4, func(int) { t.Fatal("Map(0) must not call fn") })
}

func TestAggregated(t *testing.T) {
	results := []RunResult{
		{Result: sim.Result{AvgPowerW: 2, PeakPowerW: 5, AvgFPS: 30, ActiveAvgFPS: 50, PeakTempBigC: 60, PeakTempDevC: 35, EnergyJ: 100, DurationS: 50}},
		{Result: sim.Result{AvgPowerW: 4, PeakPowerW: 9, AvgFPS: 50, ActiveAvgFPS: 60, PeakTempBigC: 40, PeakTempDevC: 45, EnergyJ: 300, DurationS: 70}},
		{Err: "boom"},
	}
	a := Aggregated(results)
	if a.Jobs != 3 || a.Errors != 1 {
		t.Fatalf("jobs/errors = %d/%d", a.Jobs, a.Errors)
	}
	if a.MeanAvgPowerW != 3 || a.PeakPowerW != 9 {
		t.Fatalf("power agg = %g/%g", a.MeanAvgPowerW, a.PeakPowerW)
	}
	if a.MeanAvgFPS != 40 || a.MeanActiveFPS != 55 {
		t.Fatalf("fps agg = %g/%g", a.MeanAvgFPS, a.MeanActiveFPS)
	}
	if a.PeakTempBigC != 60 || a.PeakTempDevC != 45 {
		t.Fatalf("temp agg = %g/%g", a.PeakTempBigC, a.PeakTempDevC)
	}
	if a.TotalEnergyJ != 400 || a.TotalSimS != 120 {
		t.Fatalf("totals = %g/%g", a.TotalEnergyJ, a.TotalSimS)
	}
}
