package batch

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sync/atomic"
	"testing"

	"nextdvfs/internal/platform"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// gridJobs builds a small app × scheme × seed × platform grid. Every
// job owns its timeline and config; schemes are schedutil vs
// powersave-pinned governor so no controller state is shared.
func gridJobs() []Job {
	var jobs []Job
	for _, app := range []string{workload.NameSpotify, workload.NamePubG} {
		for _, seed := range []int64{1, 2} {
			for _, platName := range []string{"note9", "sd855"} {
				app, seed, platName := app, seed, platName
				jobs = append(jobs, Job{
					App: app, Scheme: "schedutil", Platform: platName, Seed: seed,
					Build: func() (sim.Config, error) {
						p := platform.MustGet(platName)
						rng := rand.New(rand.NewSource(seed))
						tl := &session.Timeline{Scripts: []session.Script{
							session.ForApp(workload.ByName(app), session.Seconds(20), rng),
						}}
						return p.Config(tl, seed), nil
					},
				})
			}
		}
	}
	return jobs
}

// The tentpole invariant: the same grid yields byte-identical results
// at -parallel 1 and -parallel 8.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	serial := Run(gridJobs(), Options{Parallel: 1})
	parallel := Run(gridJobs(), Options{Parallel: 8})

	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("parallel grid diverged from serial grid")
	}
}

func TestRunPreservesJobOrderAndLabels(t *testing.T) {
	jobs := gridJobs()
	results := Run(jobs, Options{Parallel: 4})
	if len(results) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if r.App != jobs[i].App || r.Platform != jobs[i].Platform || r.Seed != jobs[i].Seed {
			t.Fatalf("result %d labels %+v do not match job %+v", i, r, jobs[i])
		}
		if r.Err != "" {
			t.Fatalf("job %d failed: %s", i, r.Err)
		}
		if r.Result.DurationS != 20 {
			t.Fatalf("job %d duration %g", i, r.Result.DurationS)
		}
	}
}

func TestRunReportsBuildErrorsWithoutAborting(t *testing.T) {
	jobs := gridJobs()[:2]
	jobs[0].Build = func() (sim.Config, error) { return sim.Config{}, nil } // invalid: fails sim.New
	results := Run(jobs, Options{})
	if results[0].Err == "" {
		t.Fatal("invalid config must surface an error")
	}
	if results[1].Err != "" {
		t.Fatalf("healthy job poisoned: %s", results[1].Err)
	}
}

func TestMapCoversEveryIndexOnce(t *testing.T) {
	for _, par := range []int{1, 3, 16} {
		var counts [100]int32
		Map(len(counts), par, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("parallel=%d: index %d ran %d times", par, i, c)
			}
		}
	}
	Map(0, 4, func(int) { t.Fatal("Map(0) must not call fn") })
}

// lockstepJobs builds a seed sweep in canonical lockstep shape: every
// job compiles the byte-identical timeline structure (fixed structural
// rng seed, fresh app instance per build) and varies only the engine
// seed. key tags every job; "" leaves the sweep scalar.
func lockstepJobs(key string) []Job {
	var jobs []Job
	for _, seed := range []int64{1, 2, 3, 4} {
		seed := seed
		jobs = append(jobs, Job{
			App: workload.NameSpotify, Scheme: "schedutil", Platform: "note9", Seed: seed,
			LockstepKey: key,
			Build: func() (sim.Config, error) {
				p := platform.MustGet("note9")
				rng := rand.New(rand.NewSource(99))
				tl := &session.Timeline{Scripts: []session.Script{
					session.ForApp(workload.ByName(workload.NameSpotify), session.Seconds(20), rng),
				}}
				return p.Config(tl, seed), nil
			},
		})
	}
	return jobs
}

func TestLockstepSpans(t *testing.T) {
	key := func(k string) Job { return Job{LockstepKey: k} }
	got := lockstepSpans([]Job{key(""), key("a"), key("a"), key("b"), key(""), key(""), key("a")})
	want := []span{{0, 1}, {1, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}}
	if len(got) != len(want) {
		t.Fatalf("spans = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("span %d = %v, want %v", i, got[i], want[i])
		}
	}
	if n := len(lockstepSpans(nil)); n != 0 {
		t.Fatalf("empty job list produced %d spans", n)
	}
}

// The wiring contract: a keyed sweep routes through one BatchEngine and
// still produces byte-identical results, labels and order versus the
// same jobs run scalar.
func TestRunLockstepMatchesScalar(t *testing.T) {
	scalar := Run(lockstepJobs(""), Options{Parallel: 1})
	lockstep := Run(lockstepJobs("sweep"), Options{Parallel: 2})

	a, err := json.Marshal(scalar)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(lockstep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("lockstep sweep diverged from scalar sweep")
	}
	for i, r := range lockstep {
		if r.Index != i || r.Err != "" {
			t.Fatalf("result %d: index %d err %q", i, r.Index, r.Err)
		}
	}
}

// A mis-keyed span (configs that are not lockstep-compatible) must fall
// back to scalar engines and still return every job's correct result.
func TestRunLockstepFallsBackOnIncompatibleSpan(t *testing.T) {
	mutate := func(jobs []Job) []Job {
		orig := jobs[1].Build
		jobs[1].Build = func() (sim.Config, error) {
			cfg, err := orig()
			cfg.TickUS = 2000
			return cfg, err
		}
		return jobs
	}
	want := Run(mutate(lockstepJobs("")), Options{Parallel: 1})
	got := Run(mutate(lockstepJobs("bad")), Options{Parallel: 1})
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatal("fallback span diverged from scalar run")
	}
	for i, r := range got {
		if r.Err != "" {
			t.Fatalf("job %d failed in fallback: %s", i, r.Err)
		}
	}
}

// A build error inside a keyed span must not poison its span-mates: the
// whole span falls back to per-job scalar runs, so healthy jobs succeed
// and only the broken one reports its error.
func TestRunLockstepBuildErrorFallsBack(t *testing.T) {
	jobs := lockstepJobs("sweep")
	jobs[2].Build = func() (sim.Config, error) { return sim.Config{}, nil } // invalid: fails sim.New
	results := Run(jobs, Options{Parallel: 1})
	for i, r := range results {
		if i == 2 {
			if r.Err == "" {
				t.Fatal("broken job must surface an error")
			}
			continue
		}
		if r.Err != "" {
			t.Fatalf("healthy job %d poisoned: %s", i, r.Err)
		}
		if r.Result.DurationS != 20 {
			t.Fatalf("job %d duration %g", i, r.Result.DurationS)
		}
	}
}

// Job order must hold even when the pool is wider than the job list —
// the worker clamp in Options.workers keeps index dispatch well-formed.
func TestRunOrderWithMoreWorkersThanJobs(t *testing.T) {
	jobs := gridJobs()[:3]
	want := Run(gridJobs()[:3], Options{Parallel: 1})
	got := Run(jobs, Options{Parallel: 32})
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatal("workers > jobs changed results or order")
	}
	for i, r := range got {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
	}
}

func TestAggregatedEdgeCases(t *testing.T) {
	empty := Aggregated(nil)
	if empty.Jobs != 0 || empty.Errors != 0 {
		t.Fatalf("nil slice: %+v", empty)
	}
	if empty.MeanAvgPowerW != 0 || empty.TotalEnergyJ != 0 {
		t.Fatalf("nil slice must aggregate to zeros: %+v", empty)
	}

	allErr := Aggregated([]RunResult{{Err: "a"}, {Err: "b"}})
	if allErr.Jobs != 2 || allErr.Errors != 2 {
		t.Fatalf("all-error slice: %+v", allErr)
	}
	// No successful job ⇒ means stay zero, never NaN from 0/0.
	if allErr.MeanAvgPowerW != 0 || allErr.MeanAvgFPS != 0 || allErr.MeanActiveFPS != 0 {
		t.Fatalf("all-error means must be zero: %+v", allErr)
	}
}

func TestAggregated(t *testing.T) {
	results := []RunResult{
		{Result: sim.Result{AvgPowerW: 2, PeakPowerW: 5, AvgFPS: 30, ActiveAvgFPS: 50, PeakTempBigC: 60, PeakTempDevC: 35, EnergyJ: 100, DurationS: 50}},
		{Result: sim.Result{AvgPowerW: 4, PeakPowerW: 9, AvgFPS: 50, ActiveAvgFPS: 60, PeakTempBigC: 40, PeakTempDevC: 45, EnergyJ: 300, DurationS: 70}},
		{Err: "boom"},
	}
	a := Aggregated(results)
	if a.Jobs != 3 || a.Errors != 1 {
		t.Fatalf("jobs/errors = %d/%d", a.Jobs, a.Errors)
	}
	if a.MeanAvgPowerW != 3 || a.PeakPowerW != 9 {
		t.Fatalf("power agg = %g/%g", a.MeanAvgPowerW, a.PeakPowerW)
	}
	if a.MeanAvgFPS != 40 || a.MeanActiveFPS != 55 {
		t.Fatalf("fps agg = %g/%g", a.MeanAvgFPS, a.MeanActiveFPS)
	}
	if a.PeakTempBigC != 60 || a.PeakTempDevC != 45 {
		t.Fatalf("temp agg = %g/%g", a.PeakTempBigC, a.PeakTempDevC)
	}
	if a.TotalEnergyJ != 400 || a.TotalSimS != 120 {
		t.Fatalf("totals = %g/%g", a.TotalEnergyJ, a.TotalSimS)
	}
}
