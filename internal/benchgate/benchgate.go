// Package benchgate enforces benchmark floors in CI: it parses
// `go test -bench` output, matches it against the BENCH_*.json
// baselines checked into the repo, and reports any benchmark whose
// throughput fell below its recorded floor (or whose latency rose
// above a recorded ceiling). cmd/benchgate is the CLI the CI bench job
// pipes bench output through.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Baseline is one BENCH_*.json file: a benchmark plus the limits CI
// holds it to. Extra fields (host, notes, recorded values) are
// documentation and ignored here.
type Baseline struct {
	Benchmark   string `json:"benchmark"`
	Description string `json:"description,omitempty"`
	// Floors maps metric name (e.g. "checkins/s") → minimum allowed.
	Floors map[string]float64 `json:"floors,omitempty"`
	// Ceilings maps metric name (e.g. "ns/op") → maximum allowed.
	Ceilings map[string]float64 `json:"ceilings,omitempty"`
}

// Validate reports an unusable baseline (nothing to enforce).
func (b Baseline) Validate() error {
	if b.Benchmark == "" {
		return fmt.Errorf("benchgate: baseline missing \"benchmark\"")
	}
	if len(b.Floors) == 0 && len(b.Ceilings) == 0 {
		return fmt.Errorf("benchgate: baseline %s has no floors or ceilings", b.Benchmark)
	}
	for m, v := range b.Floors {
		if v <= 0 {
			return fmt.Errorf("benchgate: baseline %s floor %q = %v", b.Benchmark, m, v)
		}
	}
	for m, v := range b.Ceilings {
		if v <= 0 {
			return fmt.Errorf("benchgate: baseline %s ceiling %q = %v", b.Benchmark, m, v)
		}
	}
	return nil
}

// LoadBaselineFile reads a BENCH_*.json file holding either a single
// baseline object or a JSON array of them (the per-subsystem gate files
// bundle several benchmarks per file). Every baseline is validated; an
// empty array is an error — a gate file that gates nothing means a
// wiring mistake, not a pass.
func LoadBaselineFile(path string) ([]Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	trimmed := strings.TrimLeftFunc(string(data), func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	var list []Baseline
	if strings.HasPrefix(trimmed, "[") {
		if err := json.Unmarshal(data, &list); err != nil {
			return nil, fmt.Errorf("benchgate: %s: %w", path, err)
		}
	} else {
		var b Baseline
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("benchgate: %s: %w", path, err)
		}
		list = []Baseline{b}
	}
	if len(list) == 0 {
		return nil, fmt.Errorf("benchgate: %s holds no baselines", path)
	}
	for _, b := range list {
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("%w (in %s)", err, path)
		}
	}
	return list, nil
}

// LoadBaselineFiles loads and concatenates several baseline files
// (each either shape LoadBaselineFile accepts), preserving file order
// — the order the margin table reports in.
func LoadBaselineFiles(paths []string) ([]Baseline, error) {
	var all []Baseline
	for _, p := range paths {
		bs, err := LoadBaselineFile(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		all = append(all, bs...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("benchgate: no baseline files given")
	}
	return all, nil
}

// Metrics is one benchmark's parsed values by unit ("ns/op",
// "checkins/s", "B/op", …).
type Metrics map[string]float64

// ParseBench extracts per-benchmark metrics from `go test -bench`
// output. The trailing -N GOMAXPROCS suffix is stripped, so
// "BenchmarkFleetCheckin-8" and "BenchmarkFleetCheckin" are the same
// benchmark. A benchmark that appears several times keeps its last
// line (the one -count repetitions would settle on).
func ParseBench(r io.Reader) (map[string]Metrics, error) {
	out := make(map[string]Metrics)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcSuffix(fields[0])
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count; some other Benchmark* text
		}
		m := make(Metrics)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q for %s", fields[i], name)
			}
			m[fields[i+1]] = v
		}
		out[name] = m
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	return out, nil
}

func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Violation is one broken limit.
type Violation struct {
	Benchmark string
	Metric    string
	// Kind is "floor" or "ceiling".
	Kind  string
	Limit float64
	Got   float64
}

func (v Violation) String() string {
	op := "<"
	if v.Kind == "ceiling" {
		op = ">"
	}
	return fmt.Sprintf("%s: %s %g %s %s %g", v.Benchmark, v.Metric, v.Got, op, v.Kind, v.Limit)
}

// Check matches every baseline against the parsed results. A baseline
// whose benchmark never ran is an error (the gate must not silently
// pass because a bench was renamed or filtered out); broken limits
// come back as violations, sorted for stable output.
func Check(baselines []Baseline, results map[string]Metrics) ([]Violation, error) {
	var violations []Violation
	for _, b := range baselines {
		m, ok := results[b.Benchmark]
		if !ok {
			ran := make([]string, 0, len(results))
			for name := range results {
				ran = append(ran, name)
			}
			sort.Strings(ran)
			return nil, fmt.Errorf("benchgate: %s not found in bench output (ran: %v)", b.Benchmark, ran)
		}
		for _, metric := range sortedKeys(b.Floors) {
			got, ok := m[metric]
			if !ok {
				return nil, fmt.Errorf("benchgate: %s did not report metric %q", b.Benchmark, metric)
			}
			if got < b.Floors[metric] {
				violations = append(violations, Violation{
					Benchmark: b.Benchmark, Metric: metric, Kind: "floor",
					Limit: b.Floors[metric], Got: got,
				})
			}
		}
		for _, metric := range sortedKeys(b.Ceilings) {
			got, ok := m[metric]
			if !ok {
				return nil, fmt.Errorf("benchgate: %s did not report metric %q", b.Benchmark, metric)
			}
			if got > b.Ceilings[metric] {
				violations = append(violations, Violation{
					Benchmark: b.Benchmark, Metric: metric, Kind: "ceiling",
					Limit: b.Ceilings[metric], Got: got,
				})
			}
		}
	}
	return violations, nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Margin is one enforced limit's measured headroom: how far the
// benchmark landed on the safe side of its floor or ceiling.
type Margin struct {
	Benchmark string
	Metric    string
	// Kind is "floor" or "ceiling".
	Kind  string
	Limit float64
	Got   float64
}

// Ratio is the headroom multiple: measured/limit for floors,
// limit/measured for ceilings — above 1.0 means the limit held, and
// larger is safer.
func (m Margin) Ratio() float64 {
	if m.Kind == "ceiling" {
		return m.Limit / m.Got
	}
	return m.Got / m.Limit
}

// Margins pairs every enforced limit with its measured value, in
// baseline order with metrics sorted within a baseline — the rows of
// the measured-vs-floor table the CLI prints on success. Metrics the
// results do not report are skipped; Check has already turned those
// into hard errors on the enforcement path.
func Margins(baselines []Baseline, results map[string]Metrics) []Margin {
	var ms []Margin
	for _, b := range baselines {
		res := results[b.Benchmark]
		for _, metric := range sortedKeys(b.Floors) {
			if got, ok := res[metric]; ok {
				ms = append(ms, Margin{b.Benchmark, metric, "floor", b.Floors[metric], got})
			}
		}
		for _, metric := range sortedKeys(b.Ceilings) {
			if got, ok := res[metric]; ok {
				ms = append(ms, Margin{b.Benchmark, metric, "ceiling", b.Ceilings[metric], got})
			}
		}
	}
	return ms
}

// FormatMargins renders the margin rows as an aligned table.
func FormatMargins(ms []Margin) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tmetric\tmeasured\tlimit\tkind\tmargin")
	for _, m := range ms {
		fmt.Fprintf(w, "%s\t%s\t%g\t%g\t%s\t%.2fx\n",
			m.Benchmark, m.Metric, m.Got, m.Limit, m.Kind, m.Ratio())
	}
	w.Flush()
	return sb.String()
}

// FormatMarginsMarkdown renders the margin rows as a GitHub-flavored
// markdown table — the block the CI bench job appends to the workflow
// step summary. A margin below 1.0 (a broken limit) is bolded so a
// failing run's summary leads with the regression.
func FormatMarginsMarkdown(ms []Margin) string {
	var sb strings.Builder
	sb.WriteString("| benchmark | metric | measured | limit | kind | margin |\n")
	sb.WriteString("|---|---|---:|---:|---|---:|\n")
	for _, m := range ms {
		ratio := fmt.Sprintf("%.2fx", m.Ratio())
		if m.Ratio() < 1.0 {
			ratio = "**" + ratio + " — FAIL**"
		}
		fmt.Fprintf(&sb, "| %s | %s | %g | %g | %s | %s |\n",
			m.Benchmark, m.Metric, m.Got, m.Limit, m.Kind, ratio)
	}
	return sb.String()
}
