package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: nextdvfs
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFleetCheckin-8 	    1436	    778292 ns/op	      1285 checkins/s
BenchmarkScenarioStep 	     264	   4504473 ns/op	   4739733 simticks/s
PASS
ok  	nextdvfs	2.959s
`

func TestParseBench(t *testing.T) {
	res, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(res))
	}
	fc := res["BenchmarkFleetCheckin"] // -8 suffix stripped
	if fc == nil {
		t.Fatalf("FleetCheckin missing: %v", res)
	}
	if fc["ns/op"] != 778292 || fc["checkins/s"] != 1285 {
		t.Fatalf("FleetCheckin metrics = %v", fc)
	}
	ss := res["BenchmarkScenarioStep"] // no suffix at GOMAXPROCS=1
	if ss["simticks/s"] != 4739733 {
		t.Fatalf("ScenarioStep metrics = %v", ss)
	}
}

func TestCheckPassesAndFails(t *testing.T) {
	res, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	pass := []Baseline{
		{Benchmark: "BenchmarkFleetCheckin", Floors: map[string]float64{"checkins/s": 1000}},
		{Benchmark: "BenchmarkScenarioStep", Floors: map[string]float64{"simticks/s": 1_500_000}},
	}
	v, err := Check(pass, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}

	fail := []Baseline{
		{Benchmark: "BenchmarkFleetCheckin",
			Floors:   map[string]float64{"checkins/s": 2000},
			Ceilings: map[string]float64{"ns/op": 500000}},
	}
	v, err = Check(fail, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 2 {
		t.Fatalf("want floor+ceiling violations, got %v", v)
	}
	if v[0].Kind != "floor" || v[1].Kind != "ceiling" {
		t.Fatalf("violation kinds = %v", v)
	}
	if !strings.Contains(v[0].String(), "checkins/s") {
		t.Fatalf("violation text %q", v[0].String())
	}
}

func TestCheckMissingBenchmarkIsError(t *testing.T) {
	res, _ := ParseBench(strings.NewReader(sampleOutput))
	_, err := Check([]Baseline{{Benchmark: "BenchmarkRenamed", Floors: map[string]float64{"x/s": 1}}}, res)
	if err == nil {
		t.Fatal("missing benchmark must be an error, not a silent pass")
	}
	_, err = Check([]Baseline{{Benchmark: "BenchmarkFleetCheckin", Floors: map[string]float64{"nope/s": 1}}}, res)
	if err == nil {
		t.Fatal("missing metric must be an error")
	}
}

func TestLoadRepoBaselines(t *testing.T) {
	// The two baselines CI enforces must stay loadable and armed.
	for _, name := range []string{"BENCH_fleet.json", "BENCH_scenario.json"} {
		b, err := LoadBaseline(filepath.Join("..", "..", name))
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Floors) == 0 {
			t.Fatalf("%s enforces nothing", name)
		}
	}
}

func TestLoadBaselineValidation(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"benchmark":"BenchmarkX"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Fatal("baseline without limits should fail to load")
	}
	if _, err := LoadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}
