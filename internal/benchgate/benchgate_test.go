package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: nextdvfs
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFleetCheckin-8 	    1436	    778292 ns/op	      1285 checkins/s
BenchmarkScenarioStep 	     264	   4504473 ns/op	   4739733 simticks/s
PASS
ok  	nextdvfs	2.959s
`

func TestParseBench(t *testing.T) {
	res, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(res))
	}
	fc := res["BenchmarkFleetCheckin"] // -8 suffix stripped
	if fc == nil {
		t.Fatalf("FleetCheckin missing: %v", res)
	}
	if fc["ns/op"] != 778292 || fc["checkins/s"] != 1285 {
		t.Fatalf("FleetCheckin metrics = %v", fc)
	}
	ss := res["BenchmarkScenarioStep"] // no suffix at GOMAXPROCS=1
	if ss["simticks/s"] != 4739733 {
		t.Fatalf("ScenarioStep metrics = %v", ss)
	}
}

func TestCheckPassesAndFails(t *testing.T) {
	res, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	pass := []Baseline{
		{Benchmark: "BenchmarkFleetCheckin", Floors: map[string]float64{"checkins/s": 1000}},
		{Benchmark: "BenchmarkScenarioStep", Floors: map[string]float64{"simticks/s": 1_500_000}},
	}
	v, err := Check(pass, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}

	fail := []Baseline{
		{Benchmark: "BenchmarkFleetCheckin",
			Floors:   map[string]float64{"checkins/s": 2000},
			Ceilings: map[string]float64{"ns/op": 500000}},
	}
	v, err = Check(fail, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 2 {
		t.Fatalf("want floor+ceiling violations, got %v", v)
	}
	if v[0].Kind != "floor" || v[1].Kind != "ceiling" {
		t.Fatalf("violation kinds = %v", v)
	}
	if !strings.Contains(v[0].String(), "checkins/s") {
		t.Fatalf("violation text %q", v[0].String())
	}
}

func TestCheckMissingBenchmarkIsError(t *testing.T) {
	res, _ := ParseBench(strings.NewReader(sampleOutput))
	_, err := Check([]Baseline{{Benchmark: "BenchmarkRenamed", Floors: map[string]float64{"x/s": 1}}}, res)
	if err == nil {
		t.Fatal("missing benchmark must be an error, not a silent pass")
	}
	_, err = Check([]Baseline{{Benchmark: "BenchmarkFleetCheckin", Floors: map[string]float64{"nope/s": 1}}}, res)
	if err == nil {
		t.Fatal("missing metric must be an error")
	}
}

func TestLoadRepoBaselines(t *testing.T) {
	// Every baseline file CI enforces must stay loadable and armed.
	want := map[string]int{
		"BENCH_fleet.json":    4,
		"BENCH_scenario.json": 3,
		"BENCH_sim.json":      5,
	}
	for name, n := range want {
		bs, err := LoadBaselineFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Fatal(err)
		}
		if len(bs) != n {
			t.Fatalf("%s holds %d baselines, want %d", name, len(bs), n)
		}
		for _, b := range bs {
			if len(b.Floors) == 0 {
				t.Fatalf("%s: %s enforces nothing", name, b.Benchmark)
			}
		}
	}
}

// TestBenchSimFloorsCoverTickSubsystems pins the per-subsystem gate
// wiring: renaming one of the micro benches must break this test, not
// silently drop the gate.
func TestBenchSimFloorsCoverTickSubsystems(t *testing.T) {
	bs, err := LoadBaselineFile(filepath.Join("..", "..", "BENCH_sim.json"))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, b := range bs {
		got[b.Benchmark] = true
	}
	for _, name := range []string{
		"BenchmarkPowerStep", "BenchmarkThermalStep", "BenchmarkQuantize",
		"BenchmarkAgentSelect", "BenchmarkAgentUpdate",
	} {
		if !got[name] {
			t.Errorf("BENCH_sim.json does not gate %s", name)
		}
	}
}

func TestLoadBaselineValidation(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"benchmark":"BenchmarkX"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaselineFile(bad); err == nil {
		t.Fatal("baseline without limits should fail to load")
	}
}

// TestLoadBaselineFilePaths covers the multi-baseline loader: missing
// floor file, malformed JSON, empty arrays, invalid members, and the
// two accepted shapes (single object, array).
func TestLoadBaselineFilePaths(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	if _, err := LoadBaselineFile(filepath.Join(dir, "nope.json")); err == nil {
		t.Fatal("missing floor file must error, not silently gate nothing")
	}
	if _, err := LoadBaselineFile(write("garbage.json", `{not json`)); err == nil {
		t.Fatal("malformed JSON object must error")
	}
	if _, err := LoadBaselineFile(write("garbage2.json", `[{"benchmark":`)); err == nil {
		t.Fatal("malformed JSON array must error")
	}
	if _, err := LoadBaselineFile(write("empty.json", `[]`)); err == nil {
		t.Fatal("empty baseline array must error")
	}
	if _, err := LoadBaselineFile(write("unarmored.json", `[{"benchmark":"BenchmarkX"}]`)); err == nil {
		t.Fatal("array member without limits must error")
	}

	one, err := LoadBaselineFile(write("one.json", `{"benchmark":"BenchmarkA","floors":{"x/s":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Benchmark != "BenchmarkA" {
		t.Fatalf("single-object load = %+v", one)
	}
	many, err := LoadBaselineFile(write("many.json", `  [
		{"benchmark":"BenchmarkA","floors":{"x/s":1}},
		{"benchmark":"BenchmarkB","ceilings":{"ns/op":100}}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != 2 || many[1].Benchmark != "BenchmarkB" {
		t.Fatalf("array load = %+v", many)
	}
}

// TestLoadBaselineFilesMixedShapes covers the multi-file loader over
// the full shape corpus: a single-object file, an array file, and a
// mixed list of both — concatenated in file order, with surrounding
// whitespace in the path list tolerated (the CLI splits a
// comma-separated flag).
func TestLoadBaselineFilesMixedShapes(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	single := write("single.json", `{"benchmark":"BenchmarkOne","floors":{"x/s":1}}`)
	array := write("array.json", `[
		{"benchmark":"BenchmarkTwo","floors":{"x/s":2}},
		{"benchmark":"BenchmarkThree","ceilings":{"ns/op":30}}
	]`)

	bs, err := LoadBaselineFiles([]string{single, " " + array})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, b := range bs {
		names = append(names, b.Benchmark)
	}
	want := []string{"BenchmarkOne", "BenchmarkTwo", "BenchmarkThree"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("loaded %v, want %v in file order", names, want)
	}

	if _, err := LoadBaselineFiles(nil); err == nil {
		t.Fatal("empty path list must error")
	}
	if _, err := LoadBaselineFiles([]string{single, filepath.Join(dir, "nope.json")}); err == nil {
		t.Fatal("one missing file must fail the whole load")
	}
	if _, err := LoadBaselineFiles([]string{single, write("empty.json", `[]`)}); err == nil {
		t.Fatal("an empty array file must fail the whole load")
	}
}

func TestFormatMarginsMarkdown(t *testing.T) {
	ms := []Margin{
		{Benchmark: "BenchmarkA", Metric: "x/s", Kind: "floor", Limit: 100, Got: 150},
		{Benchmark: "BenchmarkB", Metric: "ns/op", Kind: "ceiling", Limit: 10, Got: 20},
	}
	out := FormatMarginsMarkdown(ms)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("markdown has %d lines, want header + separator + 2 rows:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "| benchmark |") || !strings.HasPrefix(lines[1], "|---") {
		t.Fatalf("not a markdown table:\n%s", out)
	}
	if !strings.Contains(out, "| 1.50x |") {
		t.Fatalf("healthy margin row off:\n%s", out)
	}
	// The broken ceiling (ratio 0.5) must be bolded and flagged.
	if !strings.Contains(out, "**0.50x — FAIL**") {
		t.Fatalf("broken limit not highlighted:\n%s", out)
	}
}

// TestParseBenchMalformedLine covers the parse failure paths: a bench
// line whose metric value is not numeric must error (a truncated or
// corrupted bench log must fail the gate loudly), while non-result
// lines that merely start with "Benchmark" are skipped.
func TestParseBenchMalformedLine(t *testing.T) {
	_, err := ParseBench(strings.NewReader("BenchmarkBad 100 oops ns/op\n"))
	if err == nil {
		t.Fatal("non-numeric metric value must error")
	}
	res, err := ParseBench(strings.NewReader(
		"BenchmarkScenarioStep measures the scenario hot path\n" + // prose, no iter count
			"Benchmark\n" + // bare prefix, too few fields
			"BenchmarkGood-4 200 123 ns/op 456 widgets/s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("parsed %d benchmarks, want just BenchmarkGood: %v", len(res), res)
	}
	if m := res["BenchmarkGood"]; m["ns/op"] != 123 || m["widgets/s"] != 456 {
		t.Fatalf("BenchmarkGood metrics = %v", m)
	}
}

func TestMarginsAndFormat(t *testing.T) {
	baselines := []Baseline{
		{
			Benchmark: "BenchmarkA",
			Floors:    map[string]float64{"simticks/s": 4e6},
			Ceilings:  map[string]float64{"ns/op": 1e7},
		},
		{
			Benchmark: "BenchmarkB",
			Floors:    map[string]float64{"checkins/s": 2000},
		},
	}
	results := map[string]Metrics{
		"BenchmarkA": {"simticks/s": 9e6, "ns/op": 2.5e6},
		"BenchmarkB": {"checkins/s": 3000},
	}
	ms := Margins(baselines, results)
	if len(ms) != 3 {
		t.Fatalf("Margins returned %d rows, want 3: %+v", len(ms), ms)
	}
	// Baseline order, floors before ceilings within a baseline.
	if ms[0].Benchmark != "BenchmarkA" || ms[0].Kind != "floor" || ms[0].Metric != "simticks/s" {
		t.Fatalf("row 0 = %+v", ms[0])
	}
	if got, want := ms[0].Ratio(), 9e6/4e6; got != want {
		t.Fatalf("floor ratio = %v, want %v", got, want)
	}
	if ms[1].Kind != "ceiling" {
		t.Fatalf("row 1 = %+v", ms[1])
	}
	if got, want := ms[1].Ratio(), 1e7/2.5e6; got != want {
		t.Fatalf("ceiling ratio = %v, want %v (limit/measured)", got, want)
	}
	if ms[2].Benchmark != "BenchmarkB" {
		t.Fatalf("row 2 = %+v", ms[2])
	}

	out := FormatMargins(ms)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want header + 3 rows:\n%s", len(lines), out)
	}
	for _, want := range []string{"benchmark", "margin", "2.25x", "4.00x", "1.50x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestMarginsSkipsUnreportedMetric(t *testing.T) {
	baselines := []Baseline{{
		Benchmark: "BenchmarkA",
		Floors:    map[string]float64{"simticks/s": 1, "missing/s": 1},
	}}
	results := map[string]Metrics{"BenchmarkA": {"simticks/s": 2}}
	ms := Margins(baselines, results)
	if len(ms) != 1 || ms[0].Metric != "simticks/s" {
		t.Fatalf("Margins = %+v, want the one reported metric", ms)
	}
}
