// Package cloud models Section IV-C of the paper: offloading agent
// training to a cloud server and sharing learned Q-tables across a
// fleet of devices with federated averaging.
//
// The paper measured training on an Intel Xeon E7-8860V3 server to be
// roughly an order of magnitude faster than on-device (Fig. 6: 67→7 s,
// 312→73 s across quantization levels) with at most 4 s of round-trip
// communication overhead. This package reproduces that cost model and
// implements the visit-weighted Q-table merge a federated deployment
// would run.
package cloud

import (
	"fmt"

	"nextdvfs/internal/core"
)

// TrainerConfig is the cloud cost model.
type TrainerConfig struct {
	// Speedup is how much faster the cloud trains than the device
	// (cloud wall time = device time / Speedup).
	Speedup float64
	// CommOverheadUS is the to-and-fro transfer overhead per training
	// round (the paper observed a 4 s maximum).
	CommOverheadUS int64
}

// DefaultTrainerConfig matches the paper's observations.
func DefaultTrainerConfig() TrainerConfig {
	return TrainerConfig{Speedup: 9.5, CommOverheadUS: 4_000_000}
}

// WallTimeUS converts an on-device training duration into the cloud
// wall time the user experiences (compute at cloud speed plus the
// communication overhead).
func (c TrainerConfig) WallTimeUS(onDeviceUS int64) int64 {
	if c.Speedup <= 0 {
		return onDeviceUS + c.CommOverheadUS
	}
	return int64(float64(onDeviceUS)/c.Speedup) + c.CommOverheadUS
}

// MergeTables federated-averages Q-tables trained on different devices:
// every state's action values are combined weighted by per-device visit
// counts, so a device that explored a state thoroughly dominates
// devices that barely saw it. Tables must share the action-space size.
func MergeTables(tables []*core.QTable) (*core.QTable, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("cloud: nothing to merge")
	}
	for i, t := range tables {
		if t == nil {
			return nil, fmt.Errorf("cloud: table %d is nil", i)
		}
	}
	actions := tables[0].Actions
	for i, t := range tables {
		if t.Actions != actions {
			return nil, fmt.Errorf("cloud: table %d has %d actions, want %d", i, t.Actions, actions)
		}
	}
	merged := core.NewQTable(actions)
	type acc struct {
		sum    []float64
		weight int
	}
	accs := make(map[core.StateKey]*acc, len(tables[0].Q))
	for _, t := range tables {
		for s, row := range t.Q {
			w := t.Visits[s]
			if w <= 0 {
				w = 1 // seen but unweighted: count once
			}
			a, ok := accs[s]
			if !ok {
				a = &acc{sum: make([]float64, actions)}
				accs[s] = a
			}
			for i, v := range row {
				a.sum[i] += v * float64(w)
			}
			a.weight += w
		}
		merged.Steps += t.Steps
		if t.TrainedUS > merged.TrainedUS {
			merged.TrainedUS = t.TrainedUS // fleet trains in parallel
		}
	}
	for s, a := range accs {
		row := make([]float64, actions)
		for i := range row {
			row[i] = a.sum[i] / float64(a.weight)
		}
		merged.Q[s] = row
		merged.Visits[s] = a.weight
	}
	return merged, nil
}

// Fleet is a set of devices (agents) participating in federated
// training of the same applications.
type Fleet struct {
	Devices []*core.Agent
	Trainer TrainerConfig
}

// MergeApp merges the named app's tables across the fleet and installs
// the merged, trained table on every device. It returns the merged
// table and the user-visible wall time of the round (slowest device's
// training time through the cloud cost model). Devices that never saw
// the app are skipped as sources but still receive the merged table.
func (f *Fleet) MergeApp(app string) (*core.QTable, int64, error) {
	var tables []*core.QTable
	var slowest int64
	for _, d := range f.Devices {
		t := d.TableFor(app)
		if t == nil || t.Table == nil {
			continue
		}
		tables = append(tables, t.Table)
		if t.Table.TrainedUS > slowest {
			slowest = t.Table.TrainedUS
		}
	}
	merged, err := MergeTables(tables)
	if err != nil {
		return nil, 0, fmt.Errorf("cloud: merging %q: %w", app, err)
	}
	for _, d := range f.Devices {
		d.InstallTable(app, cloneTable(merged), true)
	}
	return merged, f.Trainer.WallTimeUS(slowest), nil
}

// cloneTable deep-copies a Q-table so devices do not share rows.
func cloneTable(t *core.QTable) *core.QTable {
	c := core.NewQTable(t.Actions)
	c.Steps = t.Steps
	c.TrainedUS = t.TrainedUS
	c.ConvergedAtUS = t.ConvergedAtUS
	for s, row := range t.Q {
		r := make([]float64, len(row))
		copy(r, row)
		c.Q[s] = r
	}
	for s, v := range t.Visits {
		c.Visits[s] = v
	}
	return c
}
