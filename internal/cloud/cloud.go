// Package cloud models Section IV-C of the paper: offloading agent
// training to a cloud server and sharing learned Q-tables across a
// fleet of devices with federated averaging.
//
// The paper measured training on an Intel Xeon E7-8860V3 server to be
// roughly an order of magnitude faster than on-device (Fig. 6: 67→7 s,
// 312→73 s across quantization levels) with at most 4 s of round-trip
// communication overhead. This package reproduces that cost model and
// implements the visit-weighted Q-table merge a federated deployment
// would run.
package cloud

import (
	"fmt"
	"sort"

	"nextdvfs/internal/core"
	"nextdvfs/internal/learner"
	"nextdvfs/internal/rollout"
)

// TrainerConfig is the cloud cost model.
type TrainerConfig struct {
	// Speedup is how much faster the cloud trains than the device
	// (cloud wall time = device time / Speedup).
	Speedup float64
	// CommOverheadUS is the to-and-fro transfer overhead per training
	// round (the paper observed a 4 s maximum).
	CommOverheadUS int64
}

// DefaultTrainerConfig matches the paper's observations.
func DefaultTrainerConfig() TrainerConfig {
	return TrainerConfig{Speedup: 9.5, CommOverheadUS: 4_000_000}
}

// WallTimeUS converts an on-device training duration into the cloud
// wall time the user experiences (compute at cloud speed plus the
// communication overhead).
func (c TrainerConfig) WallTimeUS(onDeviceUS int64) int64 {
	if c.Speedup <= 0 {
		return onDeviceUS + c.CommOverheadUS
	}
	return int64(float64(onDeviceUS)/c.Speedup) + c.CommOverheadUS
}

// MergeTables federated-averages Q-tables trained on different devices:
// every state's action values are combined weighted by per-device visit
// counts, so a device that explored a state thoroughly dominates
// devices that barely saw it. Tables must share the action-space size.
func MergeTables(tables []*core.QTable) (*core.QTable, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("cloud: nothing to merge")
	}
	for i, t := range tables {
		if t == nil {
			return nil, fmt.Errorf("cloud: table %d is nil", i)
		}
	}
	actions := tables[0].Actions
	for i, t := range tables {
		if t.Actions != actions {
			return nil, fmt.Errorf("cloud: table %d has %d actions, want %d", i, t.Actions, actions)
		}
	}
	merged := core.NewQTable(actions)
	type acc struct {
		sum    []float64
		weight int
	}
	accs := make(map[core.StateKey]*acc, len(tables[0].Q))
	for _, t := range tables {
		for s, row := range t.Q {
			w := t.Visits[s]
			if w <= 0 {
				w = 1 // seen but unweighted: count once
			}
			a, ok := accs[s]
			if !ok {
				a = &acc{sum: make([]float64, actions)}
				accs[s] = a
			}
			for i, v := range row {
				a.sum[i] += v * float64(w)
			}
			a.weight += w
		}
		merged.Steps += t.Steps
		if t.TrainedUS > merged.TrainedUS {
			merged.TrainedUS = t.TrainedUS // fleet trains in parallel
		}
	}
	for s, a := range accs {
		row := make([]float64, actions)
		for i := range row {
			row[i] = a.sum[i] / float64(a.weight)
		}
		merged.Q[s] = row
		merged.Visits[s] = a.weight
	}
	return merged, nil
}

// MergeTableSets federated-averages complete learner table states
// role-by-role: every set must come from the same learner (same
// registry name and role layout), and each role merges independently
// across devices via MergeTables — so a two-estimator Double-Q policy
// keeps two distinct estimators through a fleet merge instead of
// collapsing into one.
func MergeTableSets(sets []*learner.TableSet) (*learner.TableSet, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("cloud: nothing to merge")
	}
	for i, s := range sets {
		if s == nil || s.Primary() == nil {
			return nil, fmt.Errorf("cloud: set %d is empty", i)
		}
	}
	name := learner.Normalize(sets[0].Learner)
	roles := make([]string, len(sets[0].Roles))
	for i, r := range sets[0].Roles {
		roles[i] = r.Role
	}
	for i, s := range sets {
		if learner.Normalize(s.Learner) != name {
			return nil, fmt.Errorf("cloud: set %d is from learner %q, fleet has %q",
				i, learner.Normalize(s.Learner), name)
		}
		if len(s.Roles) != len(roles) {
			return nil, fmt.Errorf("cloud: set %d has %d roles, want %d", i, len(s.Roles), len(roles))
		}
		for j, r := range s.Roles {
			if r.Role != roles[j] {
				return nil, fmt.Errorf("cloud: set %d role %d is %q, want %q", i, j, r.Role, roles[j])
			}
		}
	}
	merged := &learner.TableSet{Learner: name, Roles: make([]learner.RoleTable, len(roles))}
	tables := make([]*core.QTable, len(sets))
	for j, role := range roles {
		for i, s := range sets {
			tables[i] = s.Roles[j].Table
		}
		m, err := MergeTables(tables)
		if err != nil {
			return nil, fmt.Errorf("cloud: role %q: %w", role, err)
		}
		merged.Roles[j] = learner.RoleTable{Role: role, Table: m}
	}
	return merged, nil
}

// JoinDevices is the federated-join phase of a merge epoch: it merges
// the latest per-device table sets in sorted-device-ID order and
// returns the merged set alongside that order. Sorting here — rather
// than at each call site — makes the floating-point association order
// of the weighted average a property of the device set alone. That is
// the byte-identity contract the hierarchical fleet leans on: edge
// aggregators forward raw per-device tables (never partial averages,
// which would reassociate the float sums), so a root join over the
// union of any number of aggregator regions is bit-identical to a
// flat single-tier merge of the same uploads.
func JoinDevices(uploads map[string]*learner.TableSet) (*learner.TableSet, []string, error) {
	if len(uploads) == 0 {
		return nil, nil, fmt.Errorf("cloud: nothing to join")
	}
	devices := make([]string, 0, len(uploads))
	for d := range uploads {
		devices = append(devices, d)
	}
	sort.Strings(devices)
	sets := make([]*learner.TableSet, len(devices))
	for i, d := range devices {
		sets[i] = uploads[d]
	}
	merged, err := MergeTableSets(sets)
	if err != nil {
		return nil, nil, err
	}
	return merged, devices, nil
}

// NewArtifact wraps a merge round's output as an unversioned policy
// artifact: the canonical content hash, the learner identity, and the
// merge provenance (round, contributing devices, state count). The
// rollout manager assigns Version, Parent and CreatedUS on Submit —
// versions are a per-key lifecycle property, not a merge property.
func NewArtifact(set *learner.TableSet, round int64, devices int) (rollout.Artifact, error) {
	if set == nil || set.Primary() == nil {
		return rollout.Artifact{}, fmt.Errorf("cloud: empty merge output")
	}
	hash, err := core.HashTableSet(set)
	if err != nil {
		return rollout.Artifact{}, fmt.Errorf("cloud: hashing merge output: %w", err)
	}
	return rollout.Artifact{
		ArtifactMeta: core.ArtifactMeta{
			Hash:    hash,
			Learner: learner.Normalize(set.Learner),
			Round:   round,
			Devices: devices,
			States:  set.Primary().States(),
		},
		Set: set,
	}, nil
}

// Fleet is a set of devices (agents) participating in federated
// training of the same applications.
type Fleet struct {
	Devices []*core.Agent
	Trainer TrainerConfig
}

// MergeApp merges the named app's learner table sets across the fleet
// role-by-role and installs the merged, trained set on every device.
// It returns the merged primary table and the user-visible wall time of
// the round (slowest device's training time through the cloud cost
// model). Devices that never saw the app are skipped as sources but
// still receive the merged set.
func (f *Fleet) MergeApp(app string) (*core.QTable, int64, error) {
	var sets []*learner.TableSet
	var slowest int64
	for _, d := range f.Devices {
		set := d.SnapshotFor(app)
		if set == nil || set.Primary() == nil {
			continue
		}
		sets = append(sets, set)
		if set.Primary().TrainedUS > slowest {
			slowest = set.Primary().TrainedUS
		}
	}
	merged, err := MergeTableSets(sets)
	if err != nil {
		return nil, 0, fmt.Errorf("cloud: merging %q: %w", app, err)
	}
	for _, d := range f.Devices {
		d.InstallTableSet(app, merged.Clone(), true)
	}
	return merged.Primary(), f.Trainer.WallTimeUS(slowest), nil
}
