package cloud

import (
	"math/rand"
	"testing"

	"nextdvfs/internal/core"
	"nextdvfs/internal/learner"
)

// mkDoubleQSet builds a two-estimator set with distinct, seeded values.
func mkDoubleQSet(seed int64) *learner.TableSet {
	rng := rand.New(rand.NewSource(seed))
	l := learner.Must("doubleq", 4)
	for i := 0; i < 400; i++ {
		l.Update(core.StateKey(rng.Intn(6)), rng.Intn(4), rng.Float64()-0.5,
			core.StateKey(rng.Intn(6)), rng.Intn(4), 0.3, 0.9, rng)
	}
	return l.Snapshot()
}

// TestMergeTableSetsMergesRoleByRole pins the federated contract for
// multi-table learners: each role averages independently across
// devices, exactly as MergeTables would merge that role's tables alone.
func TestMergeTableSetsMergesRoleByRole(t *testing.T) {
	s1, s2 := mkDoubleQSet(1), mkDoubleQSet(2)
	merged, err := MergeTableSets([]*learner.TableSet{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Learner != "doubleq" || len(merged.Roles) != 2 {
		t.Fatalf("merged set = %s with %d roles", merged.Learner, len(merged.Roles))
	}
	for i, role := range []string{"a", "b"} {
		if merged.Roles[i].Role != role {
			t.Fatalf("role %d = %q, want %q", i, merged.Roles[i].Role, role)
		}
		want, err := MergeTables([]*core.QTable{s1.Roles[i].Table, s2.Roles[i].Table})
		if err != nil {
			t.Fatal(err)
		}
		got := merged.Roles[i].Table
		if len(got.Q) != len(want.Q) {
			t.Fatalf("role %q: %d states, want %d", role, len(got.Q), len(want.Q))
		}
		for s, row := range want.Q {
			for j := range row {
				if got.Q[s][j] != row[j] {
					t.Fatalf("role %q: Q[%d][%d] = %g, want %g", role, s, j, got.Q[s][j], row[j])
				}
			}
		}
	}
	// The two estimators must stay distinct through the merge.
	a, b := merged.Roles[0].Table, merged.Roles[1].Table
	same := true
	for s, row := range a.Q {
		for j := range row {
			if bRow, ok := b.Q[s]; !ok || bRow[j] != row[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("merge collapsed the two estimators into one")
	}
}

func TestMergeTableSetsRejectsMixedLearners(t *testing.T) {
	dq := mkDoubleQSet(3)
	single := learner.SingleTableSet(core.NewQTable(4))
	if _, err := MergeTableSets([]*learner.TableSet{dq, single}); err == nil {
		t.Fatal("mixed-learner merge accepted")
	}
	if _, err := MergeTableSets(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := MergeTableSets([]*learner.TableSet{nil}); err == nil {
		t.Fatal("nil set accepted")
	}
}

// TestFleetMergeAppPreservesDoubleQ drives the Section IV-C loop with
// doubleq devices: after the federated round every device must hold a
// two-estimator policy again (not a collapsed single table).
func TestFleetMergeAppPreservesDoubleQ(t *testing.T) {
	cfg := core.DefaultAgentConfig()
	cfg.Learner = "doubleq"
	devices := make([]*core.Agent, 2)
	for i := range devices {
		c := cfg
		c.Seed = int64(i + 1)
		devices[i] = core.NewAgent(c)
		devices[i].InstallTableSet("pubgmobile", mkDoubleQSet(int64(10+i)), false)
	}
	fleet := &Fleet{Devices: devices, Trainer: DefaultTrainerConfig()}
	merged, _, err := fleet.MergeApp("pubgmobile")
	if err != nil {
		t.Fatal(err)
	}
	if merged.States() == 0 {
		t.Fatal("empty merged primary")
	}
	for i, d := range devices {
		set := d.SnapshotFor("pubgmobile")
		if set.Learner != "doubleq" || len(set.Roles) != 2 {
			t.Fatalf("device %d received %s with %d roles after merge", i, set.Learner, len(set.Roles))
		}
		if len(set.Roles[1].Table.Q) == 0 {
			t.Fatalf("device %d: estimator B lost in the merge", i)
		}
	}
}
