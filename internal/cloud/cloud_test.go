package cloud

import (
	"testing"

	"nextdvfs/internal/core"
)

func TestWallTimeMatchesPaperScale(t *testing.T) {
	c := DefaultTrainerConfig()
	// Paper Fig. 6: 67 s online → ~7-11 s in cloud (incl. ≤4 s comms);
	// 312 s online → ~37 s compute + comms.
	got := c.WallTimeUS(67_000_000)
	if got < 8_000_000 || got > 15_000_000 {
		t.Fatalf("67 s online → %.1f s cloud, want ≈7-15", float64(got)/1e6)
	}
	long := c.WallTimeUS(312_000_000)
	if long >= 312_000_000 {
		t.Fatal("cloud must be faster than online")
	}
	if ratio := float64(312_000_000) / float64(long); ratio < 4 || ratio > 12 {
		t.Fatalf("speedup ratio %.1f implausible vs paper's ~4-10×", ratio)
	}
}

func TestWallTimeZeroSpeedupDegradesGracefully(t *testing.T) {
	c := TrainerConfig{Speedup: 0, CommOverheadUS: 1000}
	if got := c.WallTimeUS(500); got != 1500 {
		t.Fatalf("got %d", got)
	}
}

func mkTable(vals map[core.StateKey]struct {
	row    []float64
	visits int
}) *core.QTable {
	t := core.NewQTable(3)
	for s, v := range vals {
		t.Q[s] = v.row
		t.Visits[s] = v.visits
	}
	return t
}

func TestMergeTablesVisitWeighted(t *testing.T) {
	a := core.NewQTable(3)
	a.Q[core.StateKey(1)] = []float64{1, 0, 0}
	a.Visits[core.StateKey(1)] = 3
	b := core.NewQTable(3)
	b.Q[core.StateKey(1)] = []float64{0, 1, 0}
	b.Visits[core.StateKey(1)] = 1

	m, err := MergeTables([]*core.QTable{a, b})
	if err != nil {
		t.Fatal(err)
	}
	row := m.Q[core.StateKey(1)]
	// Weighted: (1*3 + 0*1)/4 = 0.75 for action 0; (0*3+1*1)/4 = 0.25.
	if row[0] != 0.75 || row[1] != 0.25 {
		t.Fatalf("merged row = %v", row)
	}
	if m.Visits[core.StateKey(1)] != 4 {
		t.Fatalf("merged visits = %d", m.Visits[core.StateKey(1)])
	}
}

func TestMergeTablesDisjointStates(t *testing.T) {
	a := core.NewQTable(3)
	a.Q[core.StateKey(1)] = []float64{1, 2, 3}
	a.Visits[core.StateKey(1)] = 2
	b := core.NewQTable(3)
	b.Q[core.StateKey(2)] = []float64{4, 5, 6}
	b.Visits[core.StateKey(2)] = 5

	m, err := MergeTables([]*core.QTable{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Q) != 2 {
		t.Fatalf("states = %d", len(m.Q))
	}
	if m.Q[core.StateKey(1)][2] != 3 || m.Q[core.StateKey(2)][0] != 4 {
		t.Fatal("disjoint states must pass through unchanged")
	}
}

func TestMergeTablesSingleIsIdentity(t *testing.T) {
	a := core.NewQTable(3)
	a.Q[core.StateKey(5)] = []float64{0.5, -1.25, 3}
	a.Visits[core.StateKey(5)] = 7
	a.Steps = 42
	a.TrainedUS = 9_000_000

	m, err := MergeTables([]*core.QTable{a})
	if err != nil {
		t.Fatal(err)
	}
	row := m.Q[core.StateKey(5)]
	if row[0] != 0.5 || row[1] != -1.25 || row[2] != 3 {
		t.Fatalf("single-table merge altered values: %v", row)
	}
	if m.Visits[core.StateKey(5)] != 7 || m.Steps != 42 || m.TrainedUS != 9_000_000 {
		t.Fatal("single-table merge altered bookkeeping")
	}
	// The merge must return an independent table, not alias the input.
	m.Q[core.StateKey(5)][0] = 99
	if a.Q[core.StateKey(5)][0] == 99 {
		t.Fatal("merged table aliases its input")
	}
}

func TestMergeTablesZeroVisits(t *testing.T) {
	// A state that was seen but never counted (Visits 0, or missing from
	// the Visits map entirely) must weigh as one visit, never divide by
	// zero, and never poison the row with NaN/Inf.
	a := core.NewQTable(2)
	a.Q[core.StateKey(1)] = []float64{4, 8}
	a.Visits[core.StateKey(1)] = 0 // explicit zero
	b := core.NewQTable(2)
	b.Q[core.StateKey(1)] = []float64{0, 0} // no Visits entry at all
	b.Q[core.StateKey(2)] = []float64{6, 2} // zero-visit state unique to b

	m, err := MergeTables([]*core.QTable{a, b})
	if err != nil {
		t.Fatal(err)
	}
	row := m.Q[core.StateKey(1)]
	// Both devices weigh 1: (4+0)/2 = 2, (8+0)/2 = 4.
	if row[0] != 2 || row[1] != 4 {
		t.Fatalf("zero-visit weighting wrong: %v", row)
	}
	if m.Visits[core.StateKey(1)] != 2 {
		t.Fatalf("zero-visit states must count once each, got %d", m.Visits[core.StateKey(1)])
	}
	solo := m.Q[core.StateKey(2)]
	if solo[0] != 6 || solo[1] != 2 {
		t.Fatalf("zero-visit pass-through wrong: %v", solo)
	}
	for s, r := range m.Q {
		for a, v := range r {
			if v != v || v > 1e300 || v < -1e300 {
				t.Fatalf("state %d action %d is not finite: %v", s, a, v)
			}
		}
	}
}

func TestMergeTablesEmptySlice(t *testing.T) {
	if _, err := MergeTables([]*core.QTable{}); err == nil {
		t.Fatal("empty (non-nil) slice should fail like nil")
	}
}

func TestMergeTablesMismatchedActionsAnyPosition(t *testing.T) {
	// The action-space check must catch a mismatch anywhere in the
	// slice, not just against the first table.
	a, b, c := core.NewQTable(3), core.NewQTable(3), core.NewQTable(9)
	if _, err := MergeTables([]*core.QTable{a, b, c}); err == nil {
		t.Fatal("mismatch in third table should fail")
	}
}

func TestMergeTablesValidation(t *testing.T) {
	if _, err := MergeTables(nil); err == nil {
		t.Fatal("empty merge should fail")
	}
	if _, err := MergeTables([]*core.QTable{nil}); err == nil {
		t.Fatal("nil table should fail")
	}
	a, b := core.NewQTable(3), core.NewQTable(4)
	if _, err := MergeTables([]*core.QTable{a, b}); err == nil {
		t.Fatal("mismatched actions should fail")
	}
}

func TestFleetMergeApp(t *testing.T) {
	cfg := core.DefaultAgentConfig()
	d1, d2, d3 := core.NewAgent(cfg), core.NewAgent(cfg), core.NewAgent(cfg)

	t1 := core.NewQTable(9)
	t1.Q[core.StateKey(7)] = make([]float64, 9)
	t1.Q[core.StateKey(7)][2] = 1
	t1.Visits[core.StateKey(7)] = 10
	t1.TrainedUS = 100_000_000
	d1.InstallTable("pubgmobile", t1, false)

	t2 := core.NewQTable(9)
	t2.Q[core.StateKey(8)] = make([]float64, 9)
	t2.Visits[core.StateKey(8)] = 4
	t2.TrainedUS = 150_000_000
	d2.InstallTable("pubgmobile", t2, false)

	fleet := &Fleet{Devices: []*core.Agent{d1, d2, d3}, Trainer: DefaultTrainerConfig()}
	merged, wallUS, err := fleet.MergeApp("pubgmobile")
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Q) != 2 {
		t.Fatalf("merged states = %d", len(merged.Q))
	}
	// Wall time: slowest device (150 s) through the cloud model.
	want := DefaultTrainerConfig().WallTimeUS(150_000_000)
	if wallUS != want {
		t.Fatalf("wall = %d, want %d", wallUS, want)
	}
	// Every device, including the one that never saw the app, now has a
	// trained table.
	for i, d := range fleet.Devices {
		tab := d.TableFor("pubgmobile")
		if tab == nil || !tab.Trained || tab.Table.States() != 2 {
			t.Fatalf("device %d did not receive the merged table", i)
		}
	}
	// Tables are deep copies: mutating one device must not leak.
	d1.TableFor("pubgmobile").Table.Q[core.StateKey(7)][0] = 99
	if d2.TableFor("pubgmobile").Table.Q[core.StateKey(7)][0] == 99 {
		t.Fatal("devices share table memory")
	}
}

func TestFleetMergeAppNoSources(t *testing.T) {
	fleet := &Fleet{Devices: []*core.Agent{core.NewAgent(core.DefaultAgentConfig())}}
	if _, _, err := fleet.MergeApp("unknown"); err == nil {
		t.Fatal("merge with no sources should fail")
	}
}
