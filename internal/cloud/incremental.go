package cloud

import (
	"nextdvfs/internal/core"
	"nextdvfs/internal/learner"
)

// Merger is a reusable incremental federated-merge accumulator. A
// from-scratch JoinDevices rebuilds a fresh accumulator map over every
// device's full table each round — O(fleet) per merge, the measured
// bottleneck of the 10k-device check-in cycle. Merger keeps the
// accumulator state ("arena") alive across rounds: each re-upload is
// diffed against the rows already in the arena, only the states whose
// contribution actually changed are marked dirty, and Merge recomputes
// just those states — in the same sorted-device order as the
// from-scratch path, term for term, so the float association order is
// identical and the output is byte-identical to JoinDevices over the
// same uploads (differential-pinned in the tests). Clean states alias
// the previous merged rows, which are immutable once published.
//
// The arena is keyed by the device set and table layout captured at
// Rebuild. Structural changes — a new device, a learner or role-layout
// change, a different action count — invalidate it: Upload returns
// false and the caller runs Rebuild (which is JoinDevices plus arena
// construction). Merger is not safe for concurrent use; callers
// serialize (fleetd holds the shard lock).
type Merger struct {
	learnerName string
	actions     int
	roleNames   []string
	// devices is the sorted device-ID order — the float association
	// order of every weighted sum, fixed at Rebuild.
	devices []string
	devIdx  map[string]int
	roles   []*roleArena
	merged  *learner.TableSet
	scratch []float64
}

// roleArena is one role's accumulator state across the fleet.
type roleArena struct {
	// slots maps state → per-device contributions, parallel to
	// Merger.devices.
	slots map[core.StateKey]*stateSlot
	// dirty marks states whose next Merge must recompute.
	dirty map[core.StateKey]struct{}
	// steps/trained mirror each device's table metadata; stepsSum is
	// the maintained exact (integer) sum.
	steps    []int64
	trained  []int64
	stepsSum int64
}

// stateSlot is one state's contributions, indexed by sorted-device
// position: device i's row lives at flat[i*actions:(i+1)*actions] and
// its effective merge weight (>= 1 when present, 0 when absent) at
// weights[i]. Rows are copied into the flat buffer at Rebuild/Upload
// so a dirty-state recompute walks contiguous memory instead of
// chasing one heap pointer per device — the copy costs O(changed
// rows) per upload, the sequential scan saves a cache miss per device
// per dirty state, which dominates at fleet scale.
type stateSlot struct {
	flat    []float64
	weights []int
	n       int // devices contributing; 0 = state no longer exists
}

// row returns device i's contribution, or nil when absent.
func (s *stateSlot) row(i, actions int) []float64 {
	if s.weights[i] == 0 {
		return nil
	}
	return s.flat[i*actions : (i+1)*actions]
}

// NewMerger returns an empty arena; Rebuild must run before Merge.
func NewMerger() *Merger { return &Merger{} }

// Devices reports the device count the arena was built over (0 before
// Rebuild).
func (m *Merger) Devices() int { return len(m.devices) }

// Rebuild recomputes the merge from scratch via JoinDevices — the
// pinned reference path, so its output IS the from-scratch result —
// and rebuilds the arena over the given uploads. The uploads map is
// captured by reference: tables must be treated as immutable until the
// next Upload replaces them (fleetd's store contract).
func (m *Merger) Rebuild(uploads map[string]*learner.TableSet) (*learner.TableSet, []string, error) {
	merged, devices, err := JoinDevices(uploads)
	if err != nil {
		return nil, nil, err
	}
	first := uploads[devices[0]]
	m.learnerName = learner.Normalize(first.Learner)
	m.actions = first.Primary().Actions
	m.roleNames = make([]string, len(first.Roles))
	for i, r := range first.Roles {
		m.roleNames[i] = r.Role
	}
	m.devices = devices
	m.devIdx = make(map[string]int, len(devices))
	for i, d := range devices {
		m.devIdx[d] = i
	}
	m.scratch = make([]float64, m.actions)
	m.roles = make([]*roleArena, len(m.roleNames))
	for r := range m.roleNames {
		ra := &roleArena{
			slots:   make(map[core.StateKey]*stateSlot, len(merged.Roles[r].Table.Q)),
			dirty:   make(map[core.StateKey]struct{}),
			steps:   make([]int64, len(devices)),
			trained: make([]int64, len(devices)),
		}
		for i, d := range devices {
			t := uploads[d].Roles[r].Table
			ra.steps[i] = t.Steps
			ra.stepsSum += t.Steps
			ra.trained[i] = t.TrainedUS
			for s, row := range t.Q {
				slot := ra.slots[s]
				if slot == nil {
					slot = newStateSlot(len(devices), m.actions)
					ra.slots[s] = slot
				}
				copy(slot.flat[i*m.actions:], row)
				slot.weights[i] = effectiveWeight(t, s)
				slot.n++
			}
		}
		m.roles[r] = ra
	}
	m.merged = merged
	return merged, devices, nil
}

func newStateSlot(devices, actions int) *stateSlot {
	return &stateSlot{flat: make([]float64, devices*actions), weights: make([]int, devices)}
}

// effectiveWeight is MergeTables' per-device weight rule: the visit
// count, floored at 1 for states seen but unweighted.
func effectiveWeight(t *core.QTable, s core.StateKey) int {
	if w := t.Visits[s]; w > 0 {
		return w
	}
	return 1
}

// Upload integrates a device's replacement table set into the arena,
// diffing it against the rows already there and dirtying only states
// whose contribution (row values or weight) changed. It returns false
// — arena invalidated, caller must Rebuild — on any structural change:
// a device the arena doesn't know, a different learner or role layout,
// or a different action count.
func (m *Merger) Upload(device string, next *learner.TableSet) bool {
	idx, ok := m.devIdx[device]
	if !ok {
		return false
	}
	if next == nil || next.Primary() == nil ||
		learner.Normalize(next.Learner) != m.learnerName ||
		next.Primary().Actions != m.actions ||
		len(next.Roles) != len(m.roleNames) {
		return false
	}
	for i, r := range next.Roles {
		if r.Role != m.roleNames[i] || r.Table == nil || r.Table.Actions != m.actions {
			return false
		}
	}
	for r := range m.roleNames {
		ra := m.roles[r]
		t := next.Roles[r].Table
		ra.stepsSum += t.Steps - ra.steps[idx]
		ra.steps[idx] = t.Steps
		ra.trained[idx] = t.TrainedUS
		// States in the new table: install the row, dirty on change.
		for s, row := range t.Q {
			w := effectiveWeight(t, s)
			slot := ra.slots[s]
			if slot == nil {
				slot = newStateSlot(len(m.devices), m.actions)
				ra.slots[s] = slot
			}
			old := slot.row(idx, m.actions)
			if old == nil {
				slot.n++
				ra.dirty[s] = struct{}{}
			} else if slot.weights[idx] != w || !equalRow(old, row) {
				ra.dirty[s] = struct{}{}
			}
			copy(slot.flat[idx*m.actions:], row)
			slot.weights[idx] = w
		}
		// States the device previously contributed but dropped.
		for s, slot := range ra.slots {
			if slot.weights[idx] == 0 {
				continue
			}
			if _, still := t.Q[s]; still {
				continue
			}
			slot.weights[idx] = 0
			slot.n--
			ra.dirty[s] = struct{}{}
		}
	}
	return true
}

func equalRow(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge produces the merged set for the arena's current uploads,
// recomputing only dirty states — each in sorted-device order, the
// same term order as MergeTables — and aliasing every clean state's
// row from the previous output. The returned set is freshly allocated
// (rows shared with prior outputs are immutable); Merge is byte-
// identical to JoinDevices over the same uploads.
func (m *Merger) Merge() *learner.TableSet {
	if m.merged == nil {
		return nil
	}
	out := &learner.TableSet{Learner: m.learnerName, Roles: make([]learner.RoleTable, len(m.roleNames))}
	for r, roleName := range m.roleNames {
		ra := m.roles[r]
		prev := m.merged.Roles[r].Table
		nt := core.NewQTable(m.actions)
		nt.Q = make(map[core.StateKey][]float64, len(ra.slots))
		nt.Visits = make(map[core.StateKey]int, len(ra.slots))
		for s, slot := range ra.slots {
			if slot.n == 0 {
				delete(ra.slots, s) // every contributor dropped it
				continue
			}
			if _, dirty := ra.dirty[s]; dirty {
				row, weight := m.recompute(slot)
				nt.Q[s] = row
				nt.Visits[s] = weight
			} else {
				nt.Q[s] = prev.Q[s]
				nt.Visits[s] = prev.Visits[s]
			}
		}
		nt.Steps = ra.stepsSum
		var trained int64
		for _, v := range ra.trained {
			if v > trained {
				trained = v
			}
		}
		nt.TrainedUS = trained
		out.Roles[r] = learner.RoleTable{Role: roleName, Table: nt}
		clear(ra.dirty)
	}
	m.merged = out
	return out
}

// recompute is MergeTables' inner loop for one state: accumulate
// weight-scaled rows in device order, divide once by the total weight.
// Absent devices are skipped by weight, present rows stream out of the
// slot's flat buffer in order — one sequential pass over contiguous
// memory.
func (m *Merger) recompute(slot *stateSlot) ([]float64, int) {
	sum := m.scratch
	for i := range sum {
		sum[i] = 0
	}
	a := m.actions
	weight := 0
	for i, w := range slot.weights {
		if w == 0 {
			continue
		}
		fw := float64(w)
		row := slot.flat[i*a : i*a+a]
		sum = sum[:len(row)]
		for j, v := range row {
			sum[j] += v * fw
		}
		weight += w
	}
	out := make([]float64, len(sum))
	fw := float64(weight)
	for j := range out {
		out[j] = sum[j] / fw
	}
	return out, weight
}
