package cloud

import (
	"fmt"
	"math/rand"
	"testing"

	"nextdvfs/internal/core"
	"nextdvfs/internal/learner"
)

// randFillTable populates a table with random rows, mixed visit
// weights (positive, zero, absent), and metadata — every weight shape
// MergeTables distinguishes.
func randFillTable(rng *rand.Rand, t *core.QTable, states int) {
	for k := 0; k < states; k++ {
		s := core.StateKey(rng.Intn(120))
		row := make([]float64, t.Actions)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		t.Q[s] = row
		switch rng.Intn(4) {
		case 0:
			// seen but unweighted: exercises the w<=0 → 1 floor
		case 1:
			t.Visits[s] = 0
		default:
			t.Visits[s] = 1 + rng.Intn(200)
		}
	}
	if rng.Intn(2) == 0 {
		// A visit count without a row is legal and must not merge.
		t.Visits[core.StateKey(1000+rng.Intn(5))] = 1 + rng.Intn(9)
	}
	t.Steps = int64(rng.Intn(10_000))
	t.TrainedUS = int64(rng.Intn(1_000_000))
}

// randDeviceSet builds a random table set with the named learner's
// exact role layout.
func randDeviceSet(rng *rand.Rand, name string, actions int) *learner.TableSet {
	set := learner.Must(name, actions).Snapshot()
	for _, r := range set.Roles {
		randFillTable(rng, r.Table, 3+rng.Intn(12))
	}
	return set
}

// mutateDeviceSet clones a set and perturbs a few states per role —
// the realistic re-upload shape where most of the table is unchanged,
// so the incremental path's clean-state aliasing actually engages.
func mutateDeviceSet(rng *rand.Rand, prev *learner.TableSet) *learner.TableSet {
	next := prev.Clone()
	for _, r := range next.Roles {
		t := r.Table
		for i := 1 + rng.Intn(3); i > 0; i-- {
			s := core.StateKey(rng.Intn(120))
			switch rng.Intn(5) {
			case 0: // drop the state entirely
				delete(t.Q, s)
				delete(t.Visits, s)
			case 1: // bump only the weight
				if _, ok := t.Q[s]; ok {
					t.Visits[s] = 1 + rng.Intn(300)
				}
			default: // rewrite the row
				row := make([]float64, t.Actions)
				for j := range row {
					row[j] = rng.NormFloat64()
				}
				t.Q[s] = row
				t.Visits[s] = 1 + rng.Intn(200)
			}
		}
		t.Steps += int64(rng.Intn(500))
		t.TrainedUS += int64(rng.Intn(5_000))
	}
	return next
}

func setBytes(t *testing.T, set *learner.TableSet) string {
	t.Helper()
	data, err := core.MarshalTableSetCompact("app", set, true)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestMergerDifferentialByteIdentity is the tentpole pin: across every
// registered learner, several fleet sizes, and a dozen federation
// epochs of partial re-uploads (mutations, dropped states, weight-only
// changes, a mid-run fleet join forcing a rebuild), the incremental
// Merge output must be byte-identical to a from-scratch JoinDevices
// over the same uploads.
func TestMergerDifferentialByteIdentity(t *testing.T) {
	for _, name := range learner.Names() {
		for _, fleet := range []int{1, 3, 17} {
			t.Run(fmt.Sprintf("%s/fleet=%d", name, fleet), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(7919*fleet + len(name))))
				uploads := make(map[string]*learner.TableSet)
				for i := 0; i < fleet; i++ {
					uploads[fmt.Sprintf("dev-%03d", i)] = randDeviceSet(rng, name, 9)
				}
				m := NewMerger()
				got, devices, err := m.Rebuild(uploads)
				if err != nil {
					t.Fatal(err)
				}
				if len(devices) != fleet || m.Devices() != fleet {
					t.Fatalf("rebuild saw %d devices, want %d", len(devices), fleet)
				}
				want, _, err := JoinDevices(uploads)
				if err != nil {
					t.Fatal(err)
				}
				if setBytes(t, got) != setBytes(t, want) {
					t.Fatal("rebuild diverges from JoinDevices")
				}

				ids := func() []string {
					out := make([]string, 0, len(uploads))
					for d := range uploads {
						out = append(out, d)
					}
					return out
				}
				for epoch := 0; epoch < 12; epoch++ {
					all := ids()
					for j := 1 + rng.Intn(len(all)); j > 0; j-- {
						d := all[rng.Intn(len(all))]
						var next *learner.TableSet
						if rng.Intn(4) == 0 {
							next = randDeviceSet(rng, name, 9) // full rewrite
						} else {
							next = mutateDeviceSet(rng, uploads[d])
						}
						uploads[d] = next
						if !m.Upload(d, next) {
							t.Fatalf("epoch %d: same-layout re-upload invalidated the arena", epoch)
						}
					}
					if epoch == 5 {
						// A device joining mid-run is structural: the arena
						// must refuse the upload and rebuild cleanly.
						d := fmt.Sprintf("new-%03d", epoch)
						next := randDeviceSet(rng, name, 9)
						if m.Upload(d, next) {
							t.Fatal("unknown device accepted into the arena")
						}
						uploads[d] = next
						if _, _, err := m.Rebuild(uploads); err != nil {
							t.Fatal(err)
						}
					}
					got := m.Merge()
					want, _, err := JoinDevices(uploads)
					if err != nil {
						t.Fatal(err)
					}
					if setBytes(t, got) != setBytes(t, want) {
						t.Fatalf("%s fleet=%d epoch=%d: incremental merge diverges from scratch merge", name, fleet, epoch)
					}
				}
				// A merge round with zero uploads (everything clean) must
				// still reproduce the same bytes.
				clean := m.Merge()
				want2, _, err := JoinDevices(uploads)
				if err != nil {
					t.Fatal(err)
				}
				if setBytes(t, clean) != setBytes(t, want2) {
					t.Fatal("clean-round merge diverges")
				}
			})
		}
	}
}

// TestMergerStructuralInvalidation: every layout change a hostile or
// reconfigured device could ship must invalidate the arena instead of
// corrupting it.
func TestMergerStructuralInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	uploads := map[string]*learner.TableSet{
		"dev-0": randDeviceSet(rng, "watkins", 9),
		"dev-1": randDeviceSet(rng, "watkins", 9),
	}
	m := NewMerger()
	if _, _, err := m.Rebuild(uploads); err != nil {
		t.Fatal(err)
	}
	cases := map[string]*learner.TableSet{
		"different learner":      randDeviceSet(rng, "doubleq", 9),
		"different action count": randDeviceSet(rng, "watkins", 6),
		"nil set":                nil,
		"empty set":              {Learner: "watkins"},
	}
	for name, next := range cases {
		if m.Upload("dev-0", next) {
			t.Fatalf("%s accepted", name)
		}
	}
	// The arena stayed intact for valid traffic after the refusals.
	next := mutateDeviceSet(rng, uploads["dev-1"])
	uploads["dev-1"] = next
	if !m.Upload("dev-1", next) {
		t.Fatal("valid upload refused after structural refusals")
	}
	got := m.Merge()
	want, _, err := JoinDevices(uploads)
	if err != nil {
		t.Fatal(err)
	}
	if setBytes(t, got) != setBytes(t, want) {
		t.Fatal("arena corrupted by refused uploads")
	}
}

// TestMergerAliasesCleanRows: the perf contract behind the 10k-device
// target — a re-upload touching one state must leave every other
// state's merged row physically shared with the previous output, not
// recomputed.
func TestMergerAliasesCleanRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	uploads := map[string]*learner.TableSet{
		"dev-0": randDeviceSet(rng, "watkins", 9),
		"dev-1": randDeviceSet(rng, "watkins", 9),
	}
	m := NewMerger()
	first, _, err := m.Rebuild(uploads)
	if err != nil {
		t.Fatal(err)
	}
	// Touch exactly one state on one device.
	next := uploads["dev-0"].Clone()
	var touched core.StateKey
	for s := range next.Primary().Q {
		touched = s
		break
	}
	next.Primary().Q[touched][0] += 1
	uploads["dev-0"] = next
	if !m.Upload("dev-0", next) {
		t.Fatal("upload refused")
	}
	second := m.Merge()
	prevQ := first.Primary().Q
	var aliased, recomputed int
	for s, row := range second.Primary().Q {
		if prev, ok := prevQ[s]; ok && &prev[0] == &row[0] {
			aliased++
		} else if s == touched {
			recomputed++
		}
	}
	if recomputed != 1 {
		t.Fatalf("touched state not recomputed (recomputed=%d)", recomputed)
	}
	if aliased != len(second.Primary().Q)-1 {
		t.Fatalf("clean states reallocated: %d aliased of %d", aliased, len(second.Primary().Q))
	}
	// And the recomputed output still matches from-scratch.
	want, _, err := JoinDevices(uploads)
	if err != nil {
		t.Fatal(err)
	}
	if setBytes(t, second) != setBytes(t, want) {
		t.Fatal("single-state merge diverges")
	}
}
