package core

import (
	"math/rand"
	"sort"

	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/learner"
)

// AgentConfig parameterizes the Next agent. Defaults follow the paper:
// 25 ms FPS sampling into a 4 s window, 100 ms control period,
// Q-learning with PPDW reward over the quantized state space.
type AgentConfig struct {
	State  StateSpaceConfig
	Reward RewardConfig

	// Alpha is the learning rate, Gamma the discount (Eq. 3).
	Alpha float64
	Gamma float64

	// EpsilonStart/Min/Decay drive ε-greedy exploration during
	// training; ExploitEpsilon is used once a table is trained.
	EpsilonStart   float64
	EpsilonMin     float64
	EpsilonDecay   float64
	ExploitEpsilon float64

	// ObserveUS is the FPS sampling period (25 ms), ControlUS the
	// decision period (100 ms).
	ObserveUS int64
	ControlUS int64

	// WindowSamples is the frame-window length (160 = 4 s / 25 ms);
	// WarmupSamples gates the mode until the window has context.
	WindowSamples int
	WarmupSamples int

	// Frozen stops Q-updates (deploy a trained table verbatim).
	Frozen bool

	// UseMeanTarget replaces the paper's mode-of-window target with the
	// window mean (ablation).
	UseMeanTarget bool

	// Learner names the TD update rule from the learner registry
	// ("" = "watkins", the paper's Eq. 3 — bit-identical to the
	// pre-registry agent). See learner.Names().
	Learner string

	// Explorer names the exploration strategy from the explorer
	// registry ("" = "egreedy", the paper's schedule). See
	// learner.ExplorerNames().
	Explorer string

	// EmergencyTempC is a safety layer above the learned policy: when
	// the big-cluster sensor exceeds it, the agent force-lowers the big
	// and GPU caps instead of consulting the Q-table, like a thermal
	// zone's last-resort trip point. 0 disables (default — the paper's
	// agent relies on the reward alone).
	EmergencyTempC float64

	// Convergence: training is declared complete when the exponentially
	// averaged rate of greedy-action flips (how often an update changes
	// a state's argmax) drops below ConvergeFlipTol after at least
	// ConvergeMinSteps updates. Unlike a raw TD-error threshold, the
	// flip rate is robust to the reward spikes at interaction-phase
	// boundaries, and it naturally scales with the state-space size —
	// which is exactly the training-time-vs-quantization trade-off the
	// paper's Fig. 6 sweeps.
	ConvergeFlipTol  float64
	ConvergeMinSteps int
	// Seed drives exploration.
	Seed int64
}

// DefaultAgentConfig returns the paper-faithful configuration.
func DefaultAgentConfig() AgentConfig {
	return AgentConfig{
		State:            DefaultStateSpaceConfig(),
		Reward:           DefaultRewardConfig(),
		Alpha:            0.30,
		Gamma:            0.90,
		EpsilonStart:     0.80,
		EpsilonMin:       0.08,
		EpsilonDecay:     0.9997,
		ExploitEpsilon:   0.02,
		ObserveUS:        25_000,
		ControlUS:        100_000,
		WindowSamples:    160,
		WarmupSamples:    40,
		ConvergeFlipTol:  0.015,
		ConvergeMinSteps: 3500,
	}
}

// ExplorerConfig derives the explorer-construction parameters from the
// agent configuration (the ε schedule feeds ε-greedy; UCB/softmax use
// their registry defaults unless the caller tunes them post-hoc).
func (c AgentConfig) ExplorerConfig() learner.ExplorerConfig {
	return learner.ExplorerConfig{
		EpsilonStart: c.EpsilonStart,
		EpsilonMin:   c.EpsilonMin,
		EpsilonDecay: c.EpsilonDecay,
	}
}

// Agent is the Next controller (implements ctrl.Controller). One agent
// manages one device; it keeps a learner per application (a Q-table, or
// two for "doubleq"), trains apps that have never been seen, and
// exploits trained ones.
type Agent struct {
	cfg AgentConfig
	rng *rand.Rand

	space  *StateSpace
	window *FrameWindow

	tables map[string]*AppTable
	cur    *AppTable

	// exploit is the post-convergence selector (fixed ε, no decay) —
	// one instance, shared across apps, so the trained-path decision
	// costs no allocation.
	exploit learner.EpsilonGreedy

	prevValid  bool
	prevState  StateKey
	prevAction int
	lastCtlUS  int64
}

// AppTable is a per-application learner plus training bookkeeping.
type AppTable struct {
	App string
	// Table is the primary Q-table (the learner's Tables()[0]) — the
	// view persistence metadata, fleet merging and reporting use.
	Table *QTable
	// Trained is latched once convergence is detected (or set by
	// LoadTrained); a trained table runs at ExploitEpsilon.
	Trained bool

	learner  learner.Learner
	explorer learner.Explorer
	// pending holds an installed snapshot until the first Control step
	// knows the platform's action space and can build the learner.
	pending *learner.TableSet

	tdEWMA     float64
	tdSeeded   bool
	flipEWMA   float64
	flipSeeded bool
}

// TDError returns the exponentially averaged |TD error| (diagnostics).
func (t *AppTable) TDError() float64 { return t.tdEWMA }

// FlipRate returns the exponentially averaged greedy-action flip rate —
// the convergence signal.
func (t *AppTable) FlipRate() float64 { return t.flipEWMA }

// Learner exposes the app's learner (nil until the first control step
// builds it).
func (t *AppTable) Learner() learner.Learner { return t.learner }

// NewAgent builds an agent with the given configuration. Unknown
// learner or explorer names panic: agent wiring is code, and every
// input surface (facade options, CLI flags, grids) validates names
// against the registries before constructing an agent.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.ObserveUS <= 0 {
		cfg.ObserveUS = 25_000
	}
	if cfg.ControlUS <= 0 {
		cfg.ControlUS = 100_000
	}
	if cfg.WindowSamples <= 0 {
		cfg.WindowSamples = 160
	}
	if !learner.Known(cfg.Learner) {
		panic("core: unknown learner " + cfg.Learner)
	}
	if !learner.KnownExplorer(cfg.Explorer) {
		panic("core: unknown explorer " + cfg.Explorer)
	}
	return &Agent{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		window:  NewFrameWindow(cfg.WindowSamples, cfg.WarmupSamples),
		tables:  make(map[string]*AppTable),
		exploit: learner.EpsilonGreedy{Epsilon: cfg.ExploitEpsilon, EpsilonMin: cfg.ExploitEpsilon},
	}
}

// Name implements ctrl.Controller.
func (a *Agent) Name() string { return "next" }

// ObserveIntervalUS implements ctrl.Controller.
func (a *Agent) ObserveIntervalUS() int64 { return a.cfg.ObserveUS }

// ControlIntervalUS implements ctrl.Controller.
func (a *Agent) ControlIntervalUS() int64 { return a.cfg.ControlUS }

// Observe implements ctrl.Controller: push the 25 ms FPS sample into
// the frame window.
func (a *Agent) Observe(snap ctrl.Snapshot) {
	a.window.Push(snap.FPS)
}

// AppChanged implements ctrl.Controller: switch (or create) the app's
// learner and clear episode state. The frame window resets because the
// target FPS of the previous app is meaningless for the next, and the
// outgoing learner's episode state (n-step buffers) flushes — a return
// must never straddle two applications.
func (a *Agent) AppChanged(name string, _ bool) {
	if a.cur != nil && a.cur.learner != nil {
		a.cur.learner.Reset()
	}
	a.cur = a.tableFor(name)
	a.window.Reset()
	a.prevValid = false
	// Training time must not leak across apps: the gap since the
	// previous app's last control step belongs to nobody.
	a.lastCtlUS = 0
}

func (a *Agent) tableFor(name string) *AppTable {
	if t, ok := a.tables[name]; ok {
		return t
	}
	t := &AppTable{
		App:      name,
		explorer: learner.MustExplorer(a.cfg.Explorer, a.cfg.ExplorerConfig()),
	}
	a.tables[name] = t
	return t
}

// ensureLearner builds the app's learner once the action space is
// known, adopting any installed snapshot (persisted or federated
// tables). A snapshot that names a non-default learner carries that
// identity with it: a doubleq set loaded into a default-configured
// agent keeps running doubleq for that app — silently collapsing it to
// a single table would drop estimator B and the next save would make
// the loss permanent. Legacy single-table sets (learner "watkins")
// wrap into whatever the agent is configured with, preserving the
// historical install semantics.
func (a *Agent) ensureLearner(t *AppTable) {
	if t.learner != nil {
		return
	}
	set := t.pending
	if set == nil && t.Table != nil {
		set = learner.SingleTableSet(t.Table)
	}
	name := a.cfg.Learner
	if set != nil && learner.Normalize(set.Learner) != learner.DefaultLearner {
		name = set.Learner
	}
	t.learner = learner.Must(name, a.space.Actions())
	if set != nil {
		if err := t.learner.Restore(set); err != nil {
			// Incompatible snapshot — typically a table trained on a
			// platform with a different action space (stale store dir).
			// Such a policy cannot drive this chip; do what a real
			// device would do with a table for different hardware:
			// discard it and train fresh. A failed Restore may leave
			// the learner half-adopted, so rebuild it cleanly.
			t.learner = learner.Must(a.cfg.Learner, a.space.Actions())
			t.Trained = false
		}
		t.pending = nil
	}
	t.Table = t.learner.Tables()[0].Table
}

// Control implements ctrl.Controller: one TD-learning step per 100 ms.
func (a *Agent) Control(snap ctrl.Snapshot, act ctrl.Actuator) {
	if a.cur == nil {
		a.AppChanged(snap.AppName, snap.AppClassGame)
	}
	if a.space == nil {
		opps := make([]int, len(snap.Clusters))
		for i, c := range snap.Clusters {
			opps[i] = c.NumOPPs
		}
		a.space = NewStateSpace(opps, a.cfg.State)
	}
	t := a.cur
	a.ensureLearner(t)

	// Exploring starts: early in training, begin each episode from
	// random caps so the walk visits operating points the ±1-step
	// action set would take thousands of steps to reach. Gated on the
	// exploration schedule so a mostly-learned policy (or a live user
	// session) never gets a random frequency jolt.
	if !a.prevValid && !t.Trained && !a.cfg.Frozen && t.explorer.Rate() > 0.15 {
		for _, c := range snap.Clusters {
			act.SetCap(c.Name, a.rng.Intn(c.NumOPPs))
		}
	}

	var target float64
	if a.cfg.UseMeanTarget {
		target = float64(a.window.MeanTarget())
	} else {
		target = float64(a.window.Target())
	}
	state := a.space.Key(snap, target)
	reward := a.cfg.Reward.Reward(snap.FPS, target, snap.PowerW, snap.TempBigC, snap.AmbientC)

	// Choose the next action first (SARSA's update needs the executed
	// successor action; for Q-learning the order is immaterial).
	var action int
	emergency := a.cfg.EmergencyTempC > 0 && snap.TempBigC >= a.cfg.EmergencyTempC
	switch {
	case emergency:
		action = -1 // safety override, no policy action
	case t.Trained:
		action = t.learner.SelectAction(&a.exploit, state, a.rng)
	default:
		action = t.learner.SelectAction(t.explorer, state, a.rng)
	}

	// Learn from the transition that produced this observation. Online
	// RL keeps refining after convergence (at exploit ε); "trained" only
	// stops the training-time accounting and the exploration schedule.
	if a.prevValid && !a.cfg.Frozen {
		nextAction := action
		if nextAction < 0 {
			nextAction, _ = t.learner.Greedy(state)
		}
		// The convergence signal measures greedy-action flips at the
		// state the update actually modifies — a.prevState for one-step
		// rules, the oldest buffered transition for n-step returns
		// (UpdateTargeter). While an n-step learner is still buffering,
		// no update happens and no convergence sample is taken.
		flipState, applies := a.prevState, true
		if ut, ok := t.learner.(learner.UpdateTargeter); ok {
			flipState, applies = ut.NextUpdateTarget()
		}
		var bestBefore int
		if applies {
			bestBefore, _ = t.learner.Greedy(flipState)
		}
		td := t.learner.Update(a.prevState, a.prevAction, reward, state, nextAction, a.cfg.Alpha, a.cfg.Gamma, a.rng)
		if applies && !t.Trained {
			bestAfter, _ := t.learner.Greedy(flipState)
			a.trackConvergence(t, td, bestBefore != bestAfter)
		}
	}

	// Account training time while the table is still learning.
	if !t.Trained && a.lastCtlUS > 0 && snap.NowUS > a.lastCtlUS {
		t.Table.TrainedUS += snap.NowUS - a.lastCtlUS
	}
	a.lastCtlUS = snap.NowUS

	if emergency {
		// Thermal trip: pull the hot clusters down two OPPs regardless
		// of what the table says, and do not learn from the forced
		// transition (it is not the policy's doing).
		for _, c := range snap.Clusters {
			if c.Name == "big" || c.IsGPU {
				act.SetCap(c.Name, c.CurIdx-2)
			}
		}
		a.prevValid = false
		return
	}

	Action(action).Apply(snap, act)
	a.prevState = state
	a.prevAction = action
	a.prevValid = true
}

// trackConvergence updates the diagnostics EWMAs and latches Trained
// when the greedy policy has stopped flipping.
func (a *Agent) trackConvergence(t *AppTable, td float64, flipped bool) {
	if td < 0 {
		td = -td
	}
	const tdAlpha = 0.05
	if !t.tdSeeded {
		t.tdEWMA = td
		t.tdSeeded = true
	} else {
		t.tdEWMA += tdAlpha * (td - t.tdEWMA)
	}

	const flipAlpha = 1.0 / 400
	f := 0.0
	if flipped {
		f = 1
	}
	if !t.flipSeeded {
		t.flipEWMA = 1 // assume unstable until proven otherwise
		t.flipSeeded = true
	}
	t.flipEWMA += flipAlpha * (f - t.flipEWMA)

	if a.cfg.ConvergeFlipTol <= 0 || a.cfg.ConvergeMinSteps <= 0 {
		return
	}
	if t.Table.Steps >= int64(a.cfg.ConvergeMinSteps) && t.flipEWMA < a.cfg.ConvergeFlipTol && !t.Trained {
		t.Trained = true
		if t.Table.ConvergedAtUS == 0 {
			t.Table.ConvergedAtUS = t.Table.TrainedUS
		}
	}
}

// Reset implements ctrl.Controller: clears per-session episode state —
// including every learner's transient buffers — while keeping all
// learned Q-tables (the paper stores tables across sessions; training
// happens once per app).
func (a *Agent) Reset() {
	a.window.Reset()
	a.prevValid = false
	a.lastCtlUS = 0
	a.cur = nil
	for _, t := range a.tables {
		if t.learner != nil {
			t.learner.Reset()
		}
	}
}

// ForgetAll drops every learned table (a factory-reset test hook).
func (a *Agent) ForgetAll() {
	a.tables = make(map[string]*AppTable)
	a.cur = nil
	a.prevValid = false
}

// TableFor exposes the app's table (nil if the app was never seen).
func (a *Agent) TableFor(app string) *AppTable {
	return a.tables[app]
}

// Apps lists the applications the agent has tables for.
func (a *Agent) Apps() []string {
	names := make([]string, 0, len(a.tables))
	for n := range a.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SnapshotFor captures the app's complete learner table state for
// persistence (nil if the app was never seen or holds no tables). The
// set aliases live tables; clone before mutating.
func (a *Agent) SnapshotFor(app string) *learner.TableSet {
	t := a.tables[app]
	if t == nil {
		return nil
	}
	switch {
	case t.learner != nil:
		return t.learner.Snapshot()
	case t.pending != nil:
		return t.pending
	case t.Table != nil:
		return learner.SingleTableSet(t.Table)
	}
	return nil
}

// InstallTableSet installs (or replaces) an app's complete learner
// state — the loading path for persisted or cloud/federated-trained
// tables. The learner re-wraps the set lazily at the next control step
// (when the platform's action space is known); a single-role set
// installs into any learner, with multi-table rules bootstrapping
// their extra estimators from the primary.
func (a *Agent) InstallTableSet(app string, set *learner.TableSet, trained bool) {
	t := a.tableFor(app)
	t.pending = set
	t.Table = set.Primary()
	t.learner = nil // re-wrapped lazily around the new set
	t.Trained = trained
}

// InstallTable installs a single (primary) table for an app — the
// historical single-table entry point, kept for plain federated
// policies and legacy snapshot files.
func (a *Agent) InstallTable(app string, table *QTable, trained bool) {
	a.InstallTableSet(app, learner.SingleTableSet(table), trained)
}

// MarkTrained force-latches an app's table as trained (used when an
// external process — cloud training — decides convergence).
func (a *Agent) MarkTrained(app string) {
	t := a.tableFor(app)
	t.Trained = true
	if t.Table != nil && t.Table.ConvergedAtUS == 0 {
		t.Table.ConvergedAtUS = t.Table.TrainedUS
	}
}

// Config returns the agent's configuration (read-only copy).
func (a *Agent) Config() AgentConfig { return a.cfg }
