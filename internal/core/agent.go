package core

import (
	"math/rand"
	"sort"

	"nextdvfs/internal/ctrl"
)

// AgentConfig parameterizes the Next agent. Defaults follow the paper:
// 25 ms FPS sampling into a 4 s window, 100 ms control period,
// Q-learning with PPDW reward over the quantized state space.
type AgentConfig struct {
	State  StateSpaceConfig
	Reward RewardConfig

	// Alpha is the learning rate, Gamma the discount (Eq. 3).
	Alpha float64
	Gamma float64

	// EpsilonStart/Min/Decay drive ε-greedy exploration during
	// training; ExploitEpsilon is used once a table is trained.
	EpsilonStart   float64
	EpsilonMin     float64
	EpsilonDecay   float64
	ExploitEpsilon float64

	// ObserveUS is the FPS sampling period (25 ms), ControlUS the
	// decision period (100 ms).
	ObserveUS int64
	ControlUS int64

	// WindowSamples is the frame-window length (160 = 4 s / 25 ms);
	// WarmupSamples gates the mode until the window has context.
	WindowSamples int
	WarmupSamples int

	// Frozen stops Q-updates (deploy a trained table verbatim).
	Frozen bool

	// UseMeanTarget replaces the paper's mode-of-window target with the
	// window mean (ablation).
	UseMeanTarget bool

	// Algo selects the TD update rule (default: the paper's Watkins
	// Q-learning; Double Q and SARSA are extensions — see LearnAlgo).
	Algo LearnAlgo

	// EmergencyTempC is a safety layer above the learned policy: when
	// the big-cluster sensor exceeds it, the agent force-lowers the big
	// and GPU caps instead of consulting the Q-table, like a thermal
	// zone's last-resort trip point. 0 disables (default — the paper's
	// agent relies on the reward alone).
	EmergencyTempC float64

	// Convergence: training is declared complete when the exponentially
	// averaged rate of greedy-action flips (how often an update changes
	// a state's argmax) drops below ConvergeFlipTol after at least
	// ConvergeMinSteps updates. Unlike a raw TD-error threshold, the
	// flip rate is robust to the reward spikes at interaction-phase
	// boundaries, and it naturally scales with the state-space size —
	// which is exactly the training-time-vs-quantization trade-off the
	// paper's Fig. 6 sweeps.
	ConvergeFlipTol  float64
	ConvergeMinSteps int
	// Seed drives exploration.
	Seed int64
}

// DefaultAgentConfig returns the paper-faithful configuration.
func DefaultAgentConfig() AgentConfig {
	return AgentConfig{
		State:            DefaultStateSpaceConfig(),
		Reward:           DefaultRewardConfig(),
		Alpha:            0.30,
		Gamma:            0.90,
		EpsilonStart:     0.80,
		EpsilonMin:       0.08,
		EpsilonDecay:     0.9997,
		ExploitEpsilon:   0.02,
		ObserveUS:        25_000,
		ControlUS:        100_000,
		WindowSamples:    160,
		WarmupSamples:    40,
		ConvergeFlipTol:  0.015,
		ConvergeMinSteps: 3500,
	}
}

// Agent is the Next controller (implements ctrl.Controller). One agent
// manages one device; it keeps a Q-table per application, trains tables
// that have never been seen, and exploits trained ones.
type Agent struct {
	cfg AgentConfig
	rng *rand.Rand

	space  *StateSpace
	window *FrameWindow

	tables map[string]*AppTable
	cur    *AppTable

	prevValid  bool
	prevState  StateKey
	prevAction int
	lastCtlUS  int64
}

// AppTable is a per-application Q-table plus training bookkeeping.
type AppTable struct {
	App    string
	Table  *QTable
	Policy Policy
	// Trained is latched once convergence is detected (or set by
	// LoadTrained); a trained table runs at ExploitEpsilon.
	Trained bool

	learner    *Learner
	tdEWMA     float64
	tdSeeded   bool
	flipEWMA   float64
	flipSeeded bool
}

// TDError returns the exponentially averaged |TD error| (diagnostics).
func (t *AppTable) TDError() float64 { return t.tdEWMA }

// FlipRate returns the exponentially averaged greedy-action flip rate —
// the convergence signal.
func (t *AppTable) FlipRate() float64 { return t.flipEWMA }

// NewAgent builds an agent with the given configuration.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.ObserveUS <= 0 {
		cfg.ObserveUS = 25_000
	}
	if cfg.ControlUS <= 0 {
		cfg.ControlUS = 100_000
	}
	if cfg.WindowSamples <= 0 {
		cfg.WindowSamples = 160
	}
	return &Agent{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		window: NewFrameWindow(cfg.WindowSamples, cfg.WarmupSamples),
		tables: make(map[string]*AppTable),
	}
}

// Name implements ctrl.Controller.
func (a *Agent) Name() string { return "next" }

// ObserveIntervalUS implements ctrl.Controller.
func (a *Agent) ObserveIntervalUS() int64 { return a.cfg.ObserveUS }

// ControlIntervalUS implements ctrl.Controller.
func (a *Agent) ControlIntervalUS() int64 { return a.cfg.ControlUS }

// Observe implements ctrl.Controller: push the 25 ms FPS sample into
// the frame window.
func (a *Agent) Observe(snap ctrl.Snapshot) {
	a.window.Push(snap.FPS)
}

// AppChanged implements ctrl.Controller: switch (or create) the app's
// Q-table and clear episode state. The frame window resets because the
// target FPS of the previous app is meaningless for the next.
func (a *Agent) AppChanged(name string, _ bool) {
	a.cur = a.tableFor(name)
	a.window.Reset()
	a.prevValid = false
	// Training time must not leak across apps: the gap since the
	// previous app's last control step belongs to nobody.
	a.lastCtlUS = 0
}

func (a *Agent) tableFor(name string) *AppTable {
	if t, ok := a.tables[name]; ok {
		return t
	}
	t := &AppTable{
		App:   name,
		Table: nil,
		Policy: Policy{
			Epsilon:    a.cfg.EpsilonStart,
			EpsilonMin: a.cfg.EpsilonMin,
			Decay:      a.cfg.EpsilonDecay,
		},
	}
	a.tables[name] = t
	return t
}

// Control implements ctrl.Controller: one Q-learning step per 100 ms.
func (a *Agent) Control(snap ctrl.Snapshot, act ctrl.Actuator) {
	if a.cur == nil {
		a.AppChanged(snap.AppName, snap.AppClassGame)
	}
	if a.space == nil {
		opps := make([]int, len(snap.Clusters))
		for i, c := range snap.Clusters {
			opps[i] = c.NumOPPs
		}
		a.space = NewStateSpace(opps, a.cfg.State)
	}
	t := a.cur
	if t.learner == nil {
		if t.Table != nil {
			// Installed (persisted/federated) table: wrap it.
			t.learner = &Learner{Algo: a.cfg.Algo, A: t.Table}
			if a.cfg.Algo == AlgoDoubleQ {
				t.learner.B = t.Table.Clone()
			}
		} else {
			t.learner = NewLearner(a.cfg.Algo, a.space.Actions())
			t.Table = t.learner.A
		}
	}

	// Exploring starts: early in training, begin each episode from
	// random caps so the walk visits operating points the ±1-step
	// action set would take thousands of steps to reach. Gated on the
	// exploration schedule so a mostly-learned policy (or a live user
	// session) never gets a random frequency jolt.
	if !a.prevValid && !t.Trained && !a.cfg.Frozen && t.Policy.Epsilon > 0.15 {
		for _, c := range snap.Clusters {
			act.SetCap(c.Name, a.rng.Intn(c.NumOPPs))
		}
	}

	var target float64
	if a.cfg.UseMeanTarget {
		target = float64(a.window.MeanTarget())
	} else {
		target = float64(a.window.Target())
	}
	state := a.space.Key(snap, target)
	reward := a.cfg.Reward.Reward(snap.FPS, target, snap.PowerW, snap.TempBigC, snap.AmbientC)

	// Choose the next action first (SARSA's update needs the executed
	// successor action; for Q-learning the order is immaterial).
	var action int
	emergency := a.cfg.EmergencyTempC > 0 && snap.TempBigC >= a.cfg.EmergencyTempC
	switch {
	case emergency:
		action = -1 // safety override, no policy action
	case t.Trained:
		exploit := Policy{Epsilon: a.cfg.ExploitEpsilon, EpsilonMin: a.cfg.ExploitEpsilon}
		action = exploit.Select(t.learner.Table(), state, a.rng)
	default:
		action = t.Policy.Select(t.learner.Table(), state, a.rng)
	}

	// Learn from the transition that produced this observation. Online
	// RL keeps refining after convergence (at exploit ε); "trained" only
	// stops the training-time accounting and the exploration schedule.
	if a.prevValid && !a.cfg.Frozen {
		nextAction := action
		if nextAction < 0 {
			nextAction, _ = t.learner.Table().Best(state)
		}
		bestBefore, _ := t.learner.Table().Best(a.prevState)
		td := t.learner.Update(a.prevState, a.prevAction, reward, state, nextAction, a.cfg.Alpha, a.cfg.Gamma, a.rng)
		bestAfter, _ := t.learner.Table().Best(a.prevState)
		if !t.Trained {
			a.trackConvergence(t, td, bestBefore != bestAfter)
		}
	}

	// Account training time while the table is still learning.
	if !t.Trained && a.lastCtlUS > 0 && snap.NowUS > a.lastCtlUS {
		t.Table.TrainedUS += snap.NowUS - a.lastCtlUS
	}
	a.lastCtlUS = snap.NowUS

	if emergency {
		// Thermal trip: pull the hot clusters down two OPPs regardless
		// of what the table says, and do not learn from the forced
		// transition (it is not the policy's doing).
		for _, c := range snap.Clusters {
			if c.Name == "big" || c.IsGPU {
				act.SetCap(c.Name, c.CurIdx-2)
			}
		}
		a.prevValid = false
		return
	}

	Action(action).Apply(snap, act)
	a.prevState = state
	a.prevAction = action
	a.prevValid = true
}

// trackConvergence updates the diagnostics EWMAs and latches Trained
// when the greedy policy has stopped flipping.
func (a *Agent) trackConvergence(t *AppTable, td float64, flipped bool) {
	if td < 0 {
		td = -td
	}
	const tdAlpha = 0.05
	if !t.tdSeeded {
		t.tdEWMA = td
		t.tdSeeded = true
	} else {
		t.tdEWMA += tdAlpha * (td - t.tdEWMA)
	}

	const flipAlpha = 1.0 / 400
	f := 0.0
	if flipped {
		f = 1
	}
	if !t.flipSeeded {
		t.flipEWMA = 1 // assume unstable until proven otherwise
		t.flipSeeded = true
	}
	t.flipEWMA += flipAlpha * (f - t.flipEWMA)

	if a.cfg.ConvergeFlipTol <= 0 || a.cfg.ConvergeMinSteps <= 0 {
		return
	}
	if t.Table.Steps >= int64(a.cfg.ConvergeMinSteps) && t.flipEWMA < a.cfg.ConvergeFlipTol && !t.Trained {
		t.Trained = true
		if t.Table.ConvergedAtUS == 0 {
			t.Table.ConvergedAtUS = t.Table.TrainedUS
		}
	}
}

// Reset implements ctrl.Controller: clears per-session episode state
// while keeping all learned Q-tables (the paper stores tables across
// sessions; training happens once per app).
func (a *Agent) Reset() {
	a.window.Reset()
	a.prevValid = false
	a.lastCtlUS = 0
	a.cur = nil
}

// ForgetAll drops every learned table (a factory-reset test hook).
func (a *Agent) ForgetAll() {
	a.tables = make(map[string]*AppTable)
	a.cur = nil
	a.prevValid = false
}

// TableFor exposes the app's table (nil if the app was never seen).
func (a *Agent) TableFor(app string) *AppTable {
	return a.tables[app]
}

// Apps lists the applications the agent has tables for.
func (a *Agent) Apps() []string {
	names := make([]string, 0, len(a.tables))
	for n := range a.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// InstallTable installs (or replaces) a table for an app — the loading
// path for persisted or cloud/federated-trained tables.
func (a *Agent) InstallTable(app string, table *QTable, trained bool) {
	t := a.tableFor(app)
	t.Table = table
	t.learner = nil // re-wrapped lazily around the new table
	t.Trained = trained
	if trained {
		t.Policy.Epsilon = a.cfg.ExploitEpsilon
	}
}

// MarkTrained force-latches an app's table as trained (used when an
// external process — cloud training — decides convergence).
func (a *Agent) MarkTrained(app string) {
	t := a.tableFor(app)
	t.Trained = true
	if t.Table != nil && t.Table.ConvergedAtUS == 0 {
		t.Table.ConvergedAtUS = t.Table.TrainedUS
	}
}

// Config returns the agent's configuration (read-only copy).
func (a *Agent) Config() AgentConfig { return a.cfg }
