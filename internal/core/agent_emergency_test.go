// Tests for the EmergencyTempC thermal safety layer (recovered from
// the pre-registry variants_test.go — the layer is orthogonal to the
// learner refactor and keeps its own coverage).

package core

import (
	"testing"

	"nextdvfs/internal/ctrl"
)

func TestEmergencyTempOverridesPolicy(t *testing.T) {
	cfg := DefaultAgentConfig()
	cfg.Seed = 6
	cfg.EmergencyTempC = 80
	a := NewAgent(cfg)
	a.AppChanged("hot", true)
	act := &recordActuator{caps: map[string]int{}}

	// Normal temperature: policy actions at most ±1.
	snap, _ := snapWith([3]int{9, 5, 3}, 60, 0, 6, 70, 50)
	snap.NowUS = 100_000
	snap.AppName = "hot"
	a.Observe(snap)
	a.Control(snap, act)

	// Over the trip point: big and GPU caps must drop by 2 regardless
	// of the table.
	hot, _ := snapWith([3]int{9, 5, 3}, 60, 0, 8, 92, 60)
	hot.NowUS = 200_000
	hot.AppName = "hot"
	act2 := &recordActuator{caps: map[string]int{}}
	a.Observe(hot)
	a.Control(hot, act2)
	if act2.caps["big"] != 7 {
		t.Fatalf("emergency big cap = %d, want cur-2 = 7", act2.caps["big"])
	}
	if act2.caps["GPU"] != 1 {
		t.Fatalf("emergency GPU cap = %d, want cur-2 = 1", act2.caps["GPU"])
	}
}

func TestEmergencyDisabledByDefault(t *testing.T) {
	cfg := DefaultAgentConfig()
	if cfg.EmergencyTempC != 0 {
		t.Fatal("emergency layer must be opt-in (the paper's agent has none)")
	}
	// Frozen isolates the check from exploring starts: with the layer
	// disabled, even a scorching sensor must not force ±2 cap drops —
	// only ordinary ±1 policy actions may fire.
	cfg.Frozen = true
	a := NewAgent(cfg)
	a.AppChanged("x", false)
	act := &recordActuator{caps: map[string]int{}}
	snap, _ := snapWith([3]int{9, 5, 3}, 60, 0, 8, 99, 70)
	snap.AppName = "x"
	a.Control(snap, act)
	if v, ok := act.caps["big"]; ok && v < 8 {
		t.Fatalf("disabled emergency forced the big cap to %d (want >= cur-1)", v)
	}
	if v, ok := act.caps["GPU"]; ok && v < 2 {
		t.Fatalf("disabled emergency forced the GPU cap to %d (want >= cur-1)", v)
	}
}

var _ = ctrl.Snapshot{} // keep the import stable alongside helpers

var _ = ctrl.Snapshot{} // keep the import stable alongside helpers
