package core

import (
	"os"
	"path/filepath"
	"testing"

	"nextdvfs/internal/ctrl"
)

// stepAgent drives one Observe+Control cycle with a synthetic snapshot.
func stepAgent(a *Agent, act ctrl.Actuator, nowUS int64, fps, power, tb, td float64, caps [3]int) {
	snap, _ := snapWith(caps, fps, 0, power, tb, td)
	snap.NowUS = nowUS
	snap.AppName = "testapp"
	a.Observe(snap)
	a.Control(snap, act)
}

func TestAgentImplementsController(t *testing.T) {
	var c ctrl.Controller = NewAgent(DefaultAgentConfig())
	if c.Name() != "next" {
		t.Fatalf("name = %q", c.Name())
	}
	if c.ObserveIntervalUS() != 25_000 {
		t.Fatalf("observe interval = %d, want 25 ms", c.ObserveIntervalUS())
	}
	if c.ControlIntervalUS() != 100_000 {
		t.Fatalf("control interval = %d, want 100 ms", c.ControlIntervalUS())
	}
}

func TestAgentCreatesTablePerApp(t *testing.T) {
	a := NewAgent(DefaultAgentConfig())
	a.AppChanged("facebook", false)
	act := &recordActuator{caps: map[string]int{}}
	stepAgent(a, act, 100_000, 30, 4, 45, 38, [3]int{9, 5, 3})
	a.AppChanged("spotify", false)
	stepAgent(a, act, 200_000, 0, 3, 40, 35, [3]int{9, 5, 3})
	apps := a.Apps()
	if len(apps) != 3 { // facebook, spotify, testapp (from snapshot name fallback is not used here)
		// AppChanged was called explicitly twice; Control used the
		// current table, so exactly 2 tables exist.
		if len(apps) != 2 {
			t.Fatalf("apps = %v", apps)
		}
	}
	if a.TableFor("facebook") == nil || a.TableFor("spotify") == nil {
		t.Fatal("missing per-app tables")
	}
}

func TestAgentLearnsFromTransitions(t *testing.T) {
	cfg := DefaultAgentConfig()
	cfg.Seed = 42
	a := NewAgent(cfg)
	a.AppChanged("game", true)
	act := &recordActuator{caps: map[string]int{}}
	for i := 1; i <= 50; i++ {
		stepAgent(a, act, int64(i)*100_000, 60, 5, 50, 42, [3]int{9, 5, 3})
	}
	tab := a.TableFor("game")
	if tab == nil || tab.Table == nil {
		t.Fatal("no table")
	}
	if tab.Table.Steps < 40 {
		t.Fatalf("updates = %d, want ~49 (one per control after the first)", tab.Table.Steps)
	}
	if tab.Table.States() == 0 {
		t.Fatal("no states visited")
	}
	if tab.Table.TrainedUS == 0 {
		t.Fatal("training time not accounted")
	}
}

func TestAgentActsOnCaps(t *testing.T) {
	cfg := DefaultAgentConfig()
	cfg.Seed = 7
	cfg.EpsilonStart = 1.0 // force exploration so cap actions fire
	cfg.EpsilonMin = 1.0
	a := NewAgent(cfg)
	a.AppChanged("game", true)
	act := &recordActuator{caps: map[string]int{}}
	for i := 1; i <= 30; i++ {
		stepAgent(a, act, int64(i)*100_000, 60, 5, 50, 42, [3]int{9, 5, 3})
	}
	if len(act.caps) == 0 {
		t.Fatal("agent never moved a cap in 30 fully-exploratory steps")
	}
}

func TestAgentFrozenDoesNotLearn(t *testing.T) {
	cfg := DefaultAgentConfig()
	cfg.Frozen = true
	a := NewAgent(cfg)
	a.AppChanged("app", false)
	act := &recordActuator{caps: map[string]int{}}
	for i := 1; i <= 20; i++ {
		stepAgent(a, act, int64(i)*100_000, 30, 4, 45, 38, [3]int{9, 5, 3})
	}
	if steps := a.TableFor("app").Table.Steps; steps != 0 {
		t.Fatalf("frozen agent performed %d updates", steps)
	}
}

func TestAgentConvergenceLatch(t *testing.T) {
	cfg := DefaultAgentConfig()
	cfg.Seed = 3
	cfg.ConvergeFlipTol = 1.1 // generous: any flip rate counts as stable
	cfg.ConvergeMinSteps = 5
	a := NewAgent(cfg)
	a.AppChanged("quick", false)
	act := &recordActuator{caps: map[string]int{}}
	for i := 1; i <= 10; i++ {
		stepAgent(a, act, int64(i)*100_000, 30, 4, 45, 38, [3]int{9, 5, 3})
	}
	tab := a.TableFor("quick")
	if !tab.Trained {
		t.Fatal("convergence latch never fired")
	}
	if tab.Table.ConvergedAtUS == 0 {
		t.Fatal("convergence time not recorded")
	}
	// Once trained, the training-time accounting stops (online learning
	// itself continues at exploit ε).
	trainedUS := tab.Table.TrainedUS
	before := tab.Table.Steps
	for i := 11; i <= 20; i++ {
		stepAgent(a, act, int64(i)*100_000, 30, 4, 45, 38, [3]int{9, 5, 3})
	}
	if tab.Table.TrainedUS != trainedUS {
		t.Fatal("training time kept accumulating after convergence")
	}
	if tab.Table.Steps == before {
		t.Fatal("online learning should continue after convergence")
	}
}

func TestAgentResetKeepsTables(t *testing.T) {
	cfg := DefaultAgentConfig()
	a := NewAgent(cfg)
	a.AppChanged("app", false)
	act := &recordActuator{caps: map[string]int{}}
	stepAgent(a, act, 100_000, 30, 4, 45, 38, [3]int{9, 5, 3})
	stepAgent(a, act, 200_000, 30, 4, 45, 38, [3]int{9, 5, 3})
	steps := a.TableFor("app").Table.Steps
	a.Reset()
	if a.TableFor("app") == nil || a.TableFor("app").Table.Steps != steps {
		t.Fatal("Reset must keep learned tables (training happens once per app)")
	}
	a.ForgetAll()
	if a.TableFor("app") != nil {
		t.Fatal("ForgetAll should drop tables")
	}
}

func TestAgentControlWithoutAppChangedUsesSnapshotApp(t *testing.T) {
	a := NewAgent(DefaultAgentConfig())
	act := &recordActuator{caps: map[string]int{}}
	snap, _ := snapWith([3]int{9, 5, 3}, 30, 0, 4, 45, 38)
	snap.AppName = "implicit"
	a.Control(snap, act)
	if a.TableFor("implicit") == nil {
		t.Fatal("agent should adopt the snapshot's app")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := Store{Dir: dir}

	q := NewQTable(9)
	q.Update(StateKey(11), 3, 0.5, StateKey(12), 0.2, 0.9)
	q.Update(StateKey(12), 1, -0.1, StateKey(11), 0.2, 0.9)
	q.TrainedUS = 207_000_000 // the paper's 3 min 27 s
	q.ConvergedAtUS = 207_000_000

	if err := store.Save("lineage2revolution", q, true); err != nil {
		t.Fatal(err)
	}
	got, trained, err := store.Load("lineage2revolution")
	if err != nil {
		t.Fatal(err)
	}
	if !trained {
		t.Fatal("trained flag lost")
	}
	if got.Steps != q.Steps || got.TrainedUS != q.TrainedUS || got.ConvergedAtUS != q.ConvergedAtUS {
		t.Fatal("metadata lost")
	}
	if len(got.Q) != len(q.Q) {
		t.Fatalf("states = %d, want %d", len(got.Q), len(q.Q))
	}
	for k, row := range q.Q {
		gotRow, ok := got.Q[k]
		if !ok {
			t.Fatalf("state %d missing", k)
		}
		for i := range row {
			if row[i] != gotRow[i] {
				t.Fatalf("Q[%d][%d] = %g, want %g", k, i, gotRow[i], row[i])
			}
		}
	}
	if got.Visits[StateKey(11)] != 1 {
		t.Fatal("visits lost")
	}
}

func TestStoreAgentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := Store{Dir: dir}

	cfg := DefaultAgentConfig()
	cfg.Seed = 5
	a := NewAgent(cfg)
	a.AppChanged("youtube", false)
	act := &recordActuator{caps: map[string]int{}}
	for i := 1; i <= 10; i++ {
		stepAgent(a, act, int64(i)*100_000, 30, 3, 40, 35, [3]int{9, 5, 3})
	}
	a.MarkTrained("youtube")
	if err := store.SaveAgent(a); err != nil {
		t.Fatal(err)
	}

	b := NewAgent(cfg)
	if err := store.LoadAgent(b); err != nil {
		t.Fatal(err)
	}
	tab := b.TableFor("youtube")
	if tab == nil || !tab.Trained {
		t.Fatal("loaded agent missing trained table")
	}
	if tab.Table.States() == 0 {
		t.Fatal("loaded table empty")
	}
}

func TestStoreLoadMissing(t *testing.T) {
	store := Store{Dir: t.TempDir()}
	_, _, err := store.Load("never-seen")
	if !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
}

func TestUnmarshalRejectsCorruptTables(t *testing.T) {
	if _, _, _, err := UnmarshalTable([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, _, _, err := UnmarshalTable([]byte(`{"actions":0}`)); err == nil {
		t.Fatal("zero actions accepted")
	}
	if _, _, _, err := UnmarshalTable([]byte(`{"actions":9,"q":{"x":[1]}}`)); err == nil {
		t.Fatal("bad state key accepted")
	}
	if _, _, _, err := UnmarshalTable([]byte(`{"actions":9,"q":{"1":[1]}}`)); err == nil {
		t.Fatal("wrong row width accepted")
	}
}

func TestStoreFilesAreJSON(t *testing.T) {
	dir := t.TempDir()
	store := Store{Dir: dir}
	q := NewQTable(9)
	if err := store.Save("app", q, false); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.qtable.json"))
	if len(matches) != 1 {
		t.Fatalf("files = %v", matches)
	}
}
