package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"nextdvfs/internal/learner"
)

// ArtifactMeta is the identity card of a versioned, immutable policy
// artifact: the metadata the rollout controller reasons about without
// touching the table payload. Version numbers are per policy key and
// strictly monotonic; Parent names the version the artifact was built
// on top of (0 for the first artifact of a key), which is what a
// rollback returns the fleet to.
type ArtifactMeta struct {
	Version int64 `json:"version"`
	// Hash is the canonical content hash ("sha256:<hex>" over the
	// compact table-set wire form) — the artifact's identity across
	// restarts, snapshots and architectures.
	Hash string `json:"hash"`
	// Learner is the registry name of the rule that trained the tables.
	Learner string `json:"learner"`
	Parent  int64  `json:"parent"`
	// Round is the fleetd merge round that produced the artifact;
	// Devices how many device tables fed the merge; States the primary
	// table's state count.
	Round     int64 `json:"round"`
	Devices   int   `json:"devices"`
	States    int   `json:"states"`
	CreatedUS int64 `json:"created_us"`
}

// HashTableSet returns the canonical content hash of a table set:
// sha256 over the compact wire form with a fixed app name and trained
// bit, so the hash is a pure function of the tables. encoding/json
// sorts map keys, so the bytes — and therefore the hash — are
// deterministic and identical across GOARCH.
func HashTableSet(set *TableSet) (string, error) {
	data, err := MarshalTableSetCompact("", set, true)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// artifactDTO is the artifact wire/snapshot format: the metadata plus
// the table payload in the standard table-set wire form.
type artifactDTO struct {
	ArtifactMeta
	Table json.RawMessage `json:"table"`
}

func validateArtifactMeta(m ArtifactMeta) error {
	if m.Version <= 0 {
		return fmt.Errorf("core: artifact version %d (want > 0)", m.Version)
	}
	if m.Parent < 0 || m.Parent >= m.Version {
		return fmt.Errorf("core: artifact v%d has parent %d (want 0 <= parent < version)", m.Version, m.Parent)
	}
	if m.Hash == "" {
		return fmt.Errorf("core: artifact v%d has no content hash", m.Version)
	}
	if m.Round < 0 || m.Devices < 0 || m.States < 0 || m.CreatedUS < 0 {
		return fmt.Errorf("core: artifact v%d has negative metadata", m.Version)
	}
	return nil
}

// MarshalArtifact serializes a policy artifact for snapshots and admin
// responses.
func MarshalArtifact(meta ArtifactMeta, set *TableSet) ([]byte, error) {
	if err := validateArtifactMeta(meta); err != nil {
		return nil, err
	}
	table, err := MarshalTableSetCompact("", set, true)
	if err != nil {
		return nil, err
	}
	return json.Marshal(artifactDTO{ArtifactMeta: meta, Table: table})
}

// UnmarshalArtifact parses a persisted policy artifact with the same
// hostile-input posture as UnmarshalTableSet: snapshot files may be
// foreign or hand-edited, so the metadata is range-checked, the table
// payload goes through the hardened table-set path (registry-validated
// learner and role layout), the learner name must match the tables,
// and the content hash is recomputed — a tampered payload fails here,
// not after it has been served to a cohort.
func UnmarshalArtifact(data []byte) (ArtifactMeta, *TableSet, error) {
	var dto artifactDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return ArtifactMeta{}, nil, err
	}
	if err := validateArtifactMeta(dto.ArtifactMeta); err != nil {
		return ArtifactMeta{}, nil, err
	}
	_, set, _, err := UnmarshalTableSet(dto.Table)
	if err != nil {
		return ArtifactMeta{}, nil, fmt.Errorf("core: artifact v%d: %w", dto.Version, err)
	}
	if got := learner.Normalize(set.Learner); got != learner.Normalize(dto.Learner) {
		return ArtifactMeta{}, nil, fmt.Errorf("core: artifact v%d says learner %q but tables are %q",
			dto.Version, learner.Normalize(dto.Learner), got)
	}
	if got := set.Primary().States(); got != dto.States {
		return ArtifactMeta{}, nil, fmt.Errorf("core: artifact v%d says %d states but tables hold %d",
			dto.Version, dto.States, got)
	}
	hash, err := HashTableSet(set)
	if err != nil {
		return ArtifactMeta{}, nil, err
	}
	if hash != dto.Hash {
		return ArtifactMeta{}, nil, fmt.Errorf("core: artifact v%d content hash mismatch (tampered or torn snapshot)", dto.Version)
	}
	return dto.ArtifactMeta, set, nil
}
