package core

import (
	"bytes"
	"strings"
	"testing"

	"nextdvfs/internal/learner"
)

func artifactTestSet() *TableSet {
	t := NewQTable(3)
	t.Q[StateKey(7)] = []float64{1, 2, 3}
	t.Q[StateKey(9)] = []float64{-1, 0, 1}
	t.Visits[StateKey(7)] = 4
	t.Visits[StateKey(9)] = 2
	t.Steps = 6
	return learner.SingleTableSet(t)
}

func TestHashTableSetDeterministic(t *testing.T) {
	set := artifactTestSet()
	h1, err := HashTableSet(set)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashTableSet(set.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || !strings.HasPrefix(h1, "sha256:") {
		t.Fatalf("hash not deterministic or malformed: %q vs %q", h1, h2)
	}
	other := artifactTestSet()
	other.Primary().Q[StateKey(7)][0] = 99
	h3, _ := HashTableSet(other)
	if h3 == h1 {
		t.Fatal("different tables share a content hash")
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	set := artifactTestSet()
	hash, err := HashTableSet(set)
	if err != nil {
		t.Fatal(err)
	}
	meta := ArtifactMeta{
		Version: 3, Hash: hash, Learner: learner.DefaultLearner,
		Parent: 2, Round: 9, Devices: 4, States: 2, CreatedUS: 1234,
	}
	data, err := MarshalArtifact(meta, set)
	if err != nil {
		t.Fatalf("MarshalArtifact: %v", err)
	}
	got, gotSet, err := UnmarshalArtifact(data)
	if err != nil {
		t.Fatalf("UnmarshalArtifact: %v", err)
	}
	if got != meta {
		t.Fatalf("meta round trip: %+v != %+v", got, meta)
	}
	a, _ := MarshalTableSetCompact("", set, true)
	b, _ := MarshalTableSetCompact("", gotSet, true)
	if !bytes.Equal(a, b) {
		t.Fatal("table payload drifted through the artifact round trip")
	}
}

func TestUnmarshalArtifactHostileInputs(t *testing.T) {
	set := artifactTestSet()
	hash, _ := HashTableSet(set)
	good := ArtifactMeta{Version: 2, Hash: hash, Learner: learner.DefaultLearner, Parent: 1, States: 2}

	for name, mutate := range map[string]func(*ArtifactMeta){
		"zero-version":     func(m *ArtifactMeta) { m.Version = 0 },
		"negative-version": func(m *ArtifactMeta) { m.Version = -1 },
		"parent>=version":  func(m *ArtifactMeta) { m.Parent = 2 },
		"negative-parent":  func(m *ArtifactMeta) { m.Parent = -1 },
		"no-hash":          func(m *ArtifactMeta) { m.Hash = "" },
		"negative-devices": func(m *ArtifactMeta) { m.Devices = -1 },
	} {
		m := good
		mutate(&m)
		if _, err := MarshalArtifact(m, set); err == nil {
			t.Errorf("%s: MarshalArtifact accepted %+v", name, m)
		}
	}

	// A well-formed artifact whose payload was altered after hashing.
	data, err := MarshalArtifact(good, set)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"7":[1,2,3]`), []byte(`"7":[8,2,3]`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatalf("tamper target not found in %s", data)
	}
	if _, _, err := UnmarshalArtifact(tampered); err == nil || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("tampered artifact = %v, want content-hash error", err)
	}

	// Lying metadata: claimed state count differs from the payload.
	lying := good
	lying.States = 99
	data, err = MarshalArtifact(lying, set)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnmarshalArtifact(data); err == nil || !strings.Contains(err.Error(), "states") {
		t.Fatalf("states-mismatch artifact = %v, want states error", err)
	}

	// Lying learner name.
	wrongLearner := good
	wrongLearner.Learner = "doubleq"
	data, err = MarshalArtifact(wrongLearner, set)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnmarshalArtifact(data); err == nil || !strings.Contains(err.Error(), "learner") {
		t.Fatalf("learner-mismatch artifact = %v, want learner error", err)
	}
}
