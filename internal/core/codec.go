package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"nextdvfs/internal/learner"
)

// Binary table-set codec ("NXTB", version 1).
//
// JSON remains the default wire format everywhere — legacy clients
// must keep seeing byte-identical payloads — but a table is mostly
// float64 rows, and JSON pays ~4x the bytes plus marshal CPU for
// them. The binary form is a strict transfer encoding of the same
// logical tableDTO: decoding a binary payload and decoding the
// equivalent JSON payload yield identical TableSets, so everything
// downstream (merge, hash, artifact ETags) is encoding-independent.
//
// Layout (all integers little-endian; uvarint/varint are the
// encoding/binary varint forms):
//
//	magic   4 bytes  "NXTB"
//	version 1 byte   (1)
//	flags   1 byte   bit0 = trained
//	app     uvarint length + bytes
//	learner uvarint length + bytes (normalized registry name)
//	actions uvarint
//	roles   uvarint count, then per role:
//	  name          uvarint length + bytes
//	  (primary role only)
//	  steps         varint
//	  trained_us    varint
//	  converged_us  varint
//	  q entries     uvarint count, then per entry, state keys sorted
//	                ascending and delta-encoded (first key absolute,
//	                later keys as key-prev, so deltas are >= 1):
//	                key uvarint, actions x float64 bits (8 bytes LE)
//	  visit entries uvarint count, same sorted delta key encoding,
//	                each key followed by varint visit count
//
// Q and Visits are encoded as separate key sets because the wire
// contract allows them to differ (a visit count without a row, and
// vice versa). Sorted keys make the encoding canonical: equal sets
// encode to equal bytes. The decoder enforces the sort (a non-
// increasing key sequence is a hard error), bounds every count
// against the bytes remaining, rejects trailing garbage, and runs
// learner.ValidateSet like the JSON path, so hostile inputs fail
// loudly instead of allocating unboundedly.

// TableSetMediaType is the HTTP media type for the binary codec,
// negotiated via Content-Type (uploads, federation) and Accept
// (policy downloads). Requests without it default to JSON.
const TableSetMediaType = "application/x-nextdvfs-table"

const (
	binMagic   = "NXTB"
	binVersion = 1

	flagTrained = 1 << 0

	// maxBinActions bounds the per-row allocation a hostile header can
	// request before any row bytes are checked. Real action spaces are
	// single digits; 1<<16 leaves room without allowing multi-GB rows.
	maxBinActions = 1 << 16
)

// MarshalTableSetBinary encodes a learner table set in the binary wire
// format. It enforces the same structural rules as the JSON marshaler
// (non-nil primary, uniform action counts, unique non-empty role
// names) and produces canonical bytes: equal sets encode identically.
func MarshalTableSetBinary(app string, set *TableSet, trained bool) ([]byte, error) {
	if set == nil || set.Primary() == nil {
		return nil, fmt.Errorf("core: nil table set for %q", app)
	}
	primary := set.Primary()
	seen := make(map[string]bool, len(set.Roles))
	for _, r := range set.Roles {
		if r.Table == nil || r.Role == "" || seen[r.Role] {
			return nil, fmt.Errorf("core: bad role %q in table set for %q", r.Role, app)
		}
		seen[r.Role] = true
		if r.Table.Actions != primary.Actions {
			return nil, fmt.Errorf("core: role %q of %q has %d actions, primary has %d",
				r.Role, app, r.Table.Actions, primary.Actions)
		}
	}

	buf := make([]byte, 0, binSetSize(app, set))
	buf = append(buf, binMagic...)
	buf = append(buf, binVersion)
	var flags byte
	if trained {
		flags |= flagTrained
	}
	buf = append(buf, flags)
	buf = appendBinString(buf, app)
	buf = appendBinString(buf, learner.Normalize(set.Learner))
	buf = binary.AppendUvarint(buf, uint64(primary.Actions))
	buf = binary.AppendUvarint(buf, uint64(len(set.Roles)))
	for i, r := range set.Roles {
		buf = appendBinString(buf, r.Role)
		if i == 0 {
			buf = binary.AppendVarint(buf, r.Table.Steps)
			buf = binary.AppendVarint(buf, r.Table.TrainedUS)
			buf = binary.AppendVarint(buf, r.Table.ConvergedAtUS)
		}
		keys := sortedStateKeys(r.Table.Q)
		buf = binary.AppendUvarint(buf, uint64(len(keys)))
		prev := uint64(0)
		for j, k := range keys {
			buf = appendBinKey(buf, uint64(k), prev, j == 0)
			prev = uint64(k)
			for _, v := range r.Table.Q[k] {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		}
		vkeys := sortedVisitKeys(r.Table.Visits)
		buf = binary.AppendUvarint(buf, uint64(len(vkeys)))
		prev = 0
		for j, k := range vkeys {
			buf = appendBinKey(buf, uint64(k), prev, j == 0)
			prev = uint64(k)
			buf = binary.AppendVarint(buf, int64(r.Table.Visits[k]))
		}
	}
	return buf, nil
}

// MarshalTableBinary is MarshalTableSetBinary for a single-table
// (watkins) policy.
func MarshalTableBinary(app string, t *QTable, trained bool) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("core: nil table for %q", app)
	}
	return MarshalTableSetBinary(app, learner.SingleTableSet(t), trained)
}

// binSetSize estimates the encoded size so the encoder allocates once.
func binSetSize(app string, set *TableSet) int {
	n := 6 + len(app) + len(set.Learner) + 24
	actions := set.Primary().Actions
	for _, r := range set.Roles {
		n += len(r.Role) + 40
		n += len(r.Table.Q) * (10 + 8*actions)
		n += len(r.Table.Visits) * 20
	}
	return n
}

func appendBinString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendBinKey writes a sorted state key: the first key absolute, the
// rest as the (always >= 1) delta from the previous key.
func appendBinKey(buf []byte, key, prev uint64, first bool) []byte {
	if first {
		return binary.AppendUvarint(buf, key)
	}
	return binary.AppendUvarint(buf, key-prev)
}

func sortedStateKeys(m map[StateKey][]float64) []StateKey {
	keys := make([]StateKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedVisitKeys(m map[StateKey]int) []StateKey {
	keys := make([]StateKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// IsBinaryTableSet reports whether data begins with the binary codec
// magic — the sniff used where a payload arrives without (or inside a
// carrier that predates) content-type metadata.
func IsBinaryTableSet(data []byte) bool {
	return len(data) >= len(binMagic) && string(data[:len(binMagic)]) == binMagic
}

// binReader is a bounds-checked cursor over an untrusted payload.
type binReader struct {
	data []byte
	off  int
}

func (r *binReader) remaining() int { return len(r.data) - r.off }

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("core: binary table: bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("core: binary table: bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *binReader) str(what string) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", fmt.Errorf("core: binary table: %s length %d exceeds %d remaining bytes", what, n, r.remaining())
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *binReader) float64() (float64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("core: binary table: truncated float64 at offset %d", r.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v, nil
}

// key reads one sorted delta-encoded state key. Deltas after the first
// key must be >= 1 (strictly ascending keys without uint64 wraparound),
// which both rejects duplicates and makes the encoding canonical.
func (r *binReader) key(prev uint64, first bool) (uint64, error) {
	d, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if first {
		return d, nil
	}
	if d == 0 {
		return 0, fmt.Errorf("core: binary table: state keys not strictly ascending at offset %d", r.off)
	}
	k := prev + d
	if k < prev {
		return 0, fmt.Errorf("core: binary table: state key overflow at offset %d", r.off)
	}
	return k, nil
}

// UnmarshalTableSetBinary parses a binary-encoded learner table set,
// applying the same validation as the JSON path (action count, role
// layout, learner registry).
func UnmarshalTableSetBinary(data []byte) (app string, set *TableSet, trained bool, err error) {
	if !IsBinaryTableSet(data) {
		return "", nil, false, fmt.Errorf("core: binary table: missing %q magic", binMagic)
	}
	if len(data) < len(binMagic)+2 {
		return "", nil, false, fmt.Errorf("core: binary table: truncated header")
	}
	if data[len(binMagic)] != binVersion {
		return "", nil, false, fmt.Errorf("core: binary table: unsupported version %d (want %d)", data[len(binMagic)], binVersion)
	}
	flags := data[len(binMagic)+1]
	if flags&^flagTrained != 0 {
		return "", nil, false, fmt.Errorf("core: binary table: unknown flags %#x", flags)
	}
	trained = flags&flagTrained != 0

	r := &binReader{data: data, off: len(binMagic) + 2}
	if app, err = r.str("app"); err != nil {
		return "", nil, false, err
	}
	name, err := r.str("learner")
	if err != nil {
		return "", nil, false, err
	}
	actions64, err := r.uvarint()
	if err != nil {
		return "", nil, false, err
	}
	if actions64 == 0 || actions64 > maxBinActions {
		return "", nil, false, fmt.Errorf("core: table for %q has invalid action count %d", app, actions64)
	}
	actions := int(actions64)
	roleCount, err := r.uvarint()
	if err != nil {
		return "", nil, false, err
	}
	// Each role needs at least a name length byte and two count bytes.
	if roleCount == 0 || roleCount > uint64(r.remaining()/3)+1 {
		return "", nil, false, fmt.Errorf("core: binary table for %q has implausible role count %d", app, roleCount)
	}

	set = &TableSet{Learner: learner.Normalize(name)}
	set.Roles = make([]RoleTable, 0, roleCount)
	for i := 0; i < int(roleCount); i++ {
		role, err := r.str("role name")
		if err != nil {
			return "", nil, false, err
		}
		t := NewQTable(actions)
		if i == 0 {
			if t.Steps, err = r.varint(); err != nil {
				return "", nil, false, err
			}
			if t.TrainedUS, err = r.varint(); err != nil {
				return "", nil, false, err
			}
			if t.ConvergedAtUS, err = r.varint(); err != nil {
				return "", nil, false, err
			}
		}
		if err := r.readRows(t, actions); err != nil {
			return "", nil, false, fmt.Errorf("core: role %q of %q: %w", role, app, err)
		}
		if err := r.readVisits(t); err != nil {
			return "", nil, false, fmt.Errorf("core: role %q of %q: %w", role, app, err)
		}
		set.Roles = append(set.Roles, RoleTable{Role: role, Table: t})
	}
	if r.remaining() != 0 {
		return "", nil, false, fmt.Errorf("core: binary table for %q has %d trailing bytes", app, r.remaining())
	}
	if err := learner.ValidateSet(set); err != nil {
		return "", nil, false, fmt.Errorf("core: table set for %q: %w", app, err)
	}
	return app, set, trained, nil
}

func (r *binReader) readRows(t *QTable, actions int) error {
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	// Every entry consumes >= 1 key byte + 8*actions row bytes, so a
	// count beyond remaining/entrySize is hostile — reject before
	// sizing the map by it.
	entrySize := uint64(1 + 8*actions)
	if count > uint64(r.remaining())/entrySize {
		return fmt.Errorf("q entry count %d exceeds %d remaining bytes", count, r.remaining())
	}
	if count == 0 {
		return nil
	}
	t.Q = make(map[StateKey][]float64, count)
	// One backing array for all rows keeps the per-row overhead at a
	// slice header instead of a separate allocation each.
	backing := make([]float64, int(count)*actions)
	prev := uint64(0)
	for i := 0; i < int(count); i++ {
		k, err := r.key(prev, i == 0)
		if err != nil {
			return err
		}
		prev = k
		row := backing[i*actions : (i+1)*actions : (i+1)*actions]
		for j := range row {
			if row[j], err = r.float64(); err != nil {
				return err
			}
		}
		t.Q[StateKey(k)] = row
	}
	return nil
}

func (r *binReader) readVisits(t *QTable) error {
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	if count > uint64(r.remaining())/2 {
		return fmt.Errorf("visit entry count %d exceeds %d remaining bytes", count, r.remaining())
	}
	if count == 0 {
		return nil
	}
	t.Visits = make(map[StateKey]int, count)
	prev := uint64(0)
	for i := 0; i < int(count); i++ {
		k, err := r.key(prev, i == 0)
		if err != nil {
			return err
		}
		prev = k
		v, err := r.varint()
		if err != nil {
			return err
		}
		if int64(int(v)) != v {
			return fmt.Errorf("visit count %d overflows int", v)
		}
		t.Visits[StateKey(k)] = int(v)
	}
	return nil
}

// UnmarshalTableSetAny decodes either wire encoding, sniffing the
// binary magic — for ingress points that accept both (federation
// bodies carry no per-item content type).
func UnmarshalTableSetAny(data []byte) (app string, set *TableSet, trained bool, err error) {
	if IsBinaryTableSet(data) {
		return UnmarshalTableSetBinary(data)
	}
	return UnmarshalTableSet(data)
}
