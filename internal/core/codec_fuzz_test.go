package core

import (
	"bytes"
	"testing"

	"nextdvfs/internal/learner"
)

// fuzzSeedPayloads returns valid wire payloads in both encodings plus
// hostile variants — the seeded corpus both fuzz targets start from.
func fuzzSeedPayloads(tb testing.TB) (binSeeds, jsonSeeds [][]byte) {
	tb.Helper()
	sets := []*learner.TableSet{binTestSet()}
	q := NewQTable(9)
	q.Update(StateKey(11), 3, 0.5, StateKey(12), 0.2, 0.9)
	sets = append(sets, learner.SingleTableSet(q))
	sets = append(sets, learner.SingleTableSet(NewQTable(1))) // empty table

	for _, set := range sets {
		bin, err := MarshalTableSetBinary("spotify", set, true)
		if err != nil {
			tb.Fatal(err)
		}
		js, err := MarshalTableSetCompact("spotify", set, true)
		if err != nil {
			tb.Fatal(err)
		}
		binSeeds = append(binSeeds, bin, bin[:len(bin)/2], bin[:5])
		jsonSeeds = append(jsonSeeds, js, js[:len(js)/2])
	}
	binSeeds = append(binSeeds,
		[]byte{},
		[]byte("NXTB"),
		[]byte{'N', 'X', 'T', 'B', 1, 0, 0, 0, 2, 0xff, 0xff, 0xff, 0xff, 0x0f},
	)
	jsonSeeds = append(jsonSeeds,
		[]byte(`{}`),
		[]byte(`{"app":"x","actions":0}`),
		[]byte(`{"app":"x","actions":9,"learner":"zzz"}`),
		[]byte(`{"app":"x","actions":9,"q":{"1":[0,0,0,0,0,0,0,0,0]},"visits":{"1":-5}}`),
		[]byte(`{"app":"x","actions":9,"aux":{"b":{"q":{},"visits":{}}}}`),
	)
	return binSeeds, jsonSeeds
}

// FuzzUnmarshalTableSetBinary fuzzes the binary wire decoder: any
// input either errors or decodes to a set whose canonical re-encoding
// is a decode fixed point. Panics and unbounded allocations are the
// bugs this hunts.
func FuzzUnmarshalTableSetBinary(f *testing.F) {
	binSeeds, _ := fuzzSeedPayloads(f)
	for _, s := range binSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		app, set, trained, err := UnmarshalTableSetBinary(data)
		if err != nil {
			return
		}
		re, err := MarshalTableSetBinary(app, set, trained)
		if err != nil {
			t.Fatalf("decoded set does not re-encode: %v", err)
		}
		app2, set2, trained2, err := UnmarshalTableSetBinary(re)
		if err != nil {
			t.Fatalf("re-encoded set does not decode: %v", err)
		}
		if app2 != app || trained2 != trained {
			t.Fatalf("app/trained unstable: %q/%v vs %q/%v", app, trained, app2, trained2)
		}
		re2, err := MarshalTableSetBinary(app2, set2, trained2)
		if err != nil || !bytes.Equal(re, re2) {
			t.Fatalf("canonical encoding not a fixed point (err=%v)", err)
		}
	})
}

// FuzzUnmarshalTableSet fuzzes the JSON wire decoder with the same
// property: accepted inputs must round-trip through the canonical
// marshaler to a stable fixed point.
func FuzzUnmarshalTableSet(f *testing.F) {
	_, jsonSeeds := fuzzSeedPayloads(f)
	for _, s := range jsonSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		app, set, trained, err := UnmarshalTableSet(data)
		if err != nil {
			return
		}
		re, err := MarshalTableSetCompact(app, set, trained)
		if err != nil {
			t.Fatalf("decoded set does not re-marshal: %v", err)
		}
		// Note: app is compared only after one canonicalization round —
		// encoding/json coerces invalid UTF-8 to U+FFFD at marshal time,
		// so a hostile raw app string legitimately changes once.
		app2, set2, trained2, err := UnmarshalTableSet(re)
		if err != nil {
			t.Fatalf("canonical JSON does not decode: %v", err)
		}
		if trained2 != trained {
			t.Fatalf("trained flag unstable: %v vs %v", trained, trained2)
		}
		re2, err := MarshalTableSetCompact(app2, set2, trained2)
		if err != nil || !bytes.Equal(re, re2) {
			t.Fatalf("canonical JSON not a fixed point (err=%v)", err)
		}
	})
}
