package core

import (
	"bytes"
	"math"
	"testing"

	"nextdvfs/internal/learner"
)

// binTestSet builds a deterministic two-estimator doubleq set with
// divergent Q/Visits key sets, negative values, and metadata — the
// shapes the codec must carry exactly.
func binTestSet() *learner.TableSet {
	a := NewQTable(3)
	a.Q[StateKey(5)] = []float64{1.5, -2.25, 0}
	a.Q[StateKey(900)] = []float64{math.MaxFloat64, -0.0, 1e-300}
	a.Visits[StateKey(5)] = 7
	a.Visits[StateKey(44)] = 1 // visit without a row: legal on the wire
	a.Steps = 1234
	a.TrainedUS = 99_000_001
	a.ConvergedAtUS = 42
	b := NewQTable(3)
	b.Q[StateKey(0)] = []float64{0.125, 0.25, 0.5}
	b.Visits[StateKey(0)] = 3
	return &learner.TableSet{Learner: "doubleq", Roles: []learner.RoleTable{
		{Role: "a", Table: a},
		{Role: "b", Table: b},
	}}
}

// TestBinaryCodecRoundTrip pins the codec contract: every learner's
// set survives encode → decode with app, trained flag, metadata,
// values and visit counts intact, and the encoding is canonical
// (equal sets encode to equal bytes).
func TestBinaryCodecRoundTrip(t *testing.T) {
	sets := map[string]*learner.TableSet{
		"doubleq": binTestSet(),
	}
	q := NewQTable(9)
	q.Update(StateKey(11), 3, 0.5, StateKey(12), 0.2, 0.9)
	q.Update(StateKey(12), 1, -0.25, StateKey(11), 0.2, 0.9)
	sets["watkins"] = learner.SingleTableSet(q)

	for name, set := range sets {
		data, err := MarshalTableSetBinary("spotify", set, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !IsBinaryTableSet(data) {
			t.Fatalf("%s: encoding lost the magic", name)
		}
		again, err := MarshalTableSetBinary("spotify", set, true)
		if err != nil || !bytes.Equal(data, again) {
			t.Fatalf("%s: encoding is not canonical (err=%v)", name, err)
		}
		app, got, trained, err := UnmarshalTableSetBinary(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if app != "spotify" || !trained {
			t.Fatalf("%s: app=%q trained=%v", name, app, trained)
		}
		setsEqual(t, set, got)
		p, gp := set.Primary(), got.Primary()
		if gp.Steps != p.Steps || gp.TrainedUS != p.TrainedUS || gp.ConvergedAtUS != p.ConvergedAtUS {
			t.Fatalf("%s: metadata lost: %+v vs %+v", name, gp, p)
		}
		// Decode → re-encode is a fixed point: canonical in, canonical out.
		re, err := MarshalTableSetBinary(app, got, trained)
		if err != nil || !bytes.Equal(data, re) {
			t.Fatalf("%s: decode/re-encode not a fixed point (err=%v)", name, err)
		}
	}
}

// TestBinaryCodecMatchesJSON pins transfer-encoding equivalence: the
// binary and JSON forms of one set decode to identical TableSets, so
// the canonical content hash (artifact identity, ETags) is the same
// through either encoding.
func TestBinaryCodecMatchesJSON(t *testing.T) {
	set := binTestSet()
	jsonData, err := MarshalTableSetCompact("game", set, false)
	if err != nil {
		t.Fatal(err)
	}
	binData, err := MarshalTableSetBinary("game", set, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(binData) >= len(jsonData) {
		t.Errorf("binary (%d B) not smaller than JSON (%d B)", len(binData), len(jsonData))
	}
	appJ, setJ, trainedJ, err := UnmarshalTableSet(jsonData)
	if err != nil {
		t.Fatal(err)
	}
	appB, setB, trainedB, err := UnmarshalTableSetBinary(binData)
	if err != nil {
		t.Fatal(err)
	}
	if appJ != appB || trainedJ != trainedB {
		t.Fatalf("app/trained diverge: %q/%v vs %q/%v", appJ, trainedJ, appB, trainedB)
	}
	setsEqual(t, setJ, setB)
	hj, err := HashTableSet(setJ)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := HashTableSet(setB)
	if err != nil {
		t.Fatal(err)
	}
	if hj != hb {
		t.Fatalf("content hash depends on transfer encoding: %s vs %s", hj, hb)
	}

	// The Any dispatcher routes each encoding to its decoder.
	if _, s, _, err := UnmarshalTableSetAny(binData); err != nil || len(s.Roles) != 2 {
		t.Fatalf("Any(binary): %v", err)
	}
	if _, s, _, err := UnmarshalTableSetAny(jsonData); err != nil || len(s.Roles) != 2 {
		t.Fatalf("Any(json): %v", err)
	}
}

// TestBinaryCodecRejectsHostileInputs: the decoder is an untrusted
// ingress — malformed framing must error, never panic or allocate
// past the payload size.
func TestBinaryCodecRejectsHostileInputs(t *testing.T) {
	valid, err := MarshalTableSetBinary("spotify", binTestSet(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must fail cleanly (a prefix can never be a
	// complete set — trailing data is rejected, so no prefix parses).
	for i := 0; i < len(valid); i++ {
		if _, _, _, err := UnmarshalTableSetBinary(valid[:i]); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", i, len(valid))
		}
	}
	// Trailing garbage after a valid payload.
	if _, _, _, err := UnmarshalTableSetBinary(append(append([]byte{}, valid...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte{}, valid...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"bad magic":       corrupt(func(b []byte) { b[0] = 'J' }),
		"future version":  corrupt(func(b []byte) { b[4] = 9 }),
		"unknown flags":   corrupt(func(b []byte) { b[5] |= 0x80 }),
		"empty input":     {},
		"magic only":      []byte("NXTB"),
		"json body":       []byte(`{"app":"x","actions":9,"q":{},"visits":{}}`),
		"huge role count": {'N', 'X', 'T', 'B', 1, 0, 0, 0, 2, 0xff, 0xff, 0xff, 0xff, 0x0f},
	}
	for name, data := range cases {
		if _, _, _, err := UnmarshalTableSetBinary(data); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}

	// Non-ascending state keys (a zero delta) are non-canonical: build
	// a tiny watkins payload by hand and pin the rejection.
	q := NewQTable(1)
	q.Q[StateKey(3)] = []float64{1}
	q.Q[StateKey(4)] = []float64{2}
	data, err := MarshalTableBinary("x", q, false)
	if err != nil {
		t.Fatal(err)
	}
	// The second key's delta uvarint (value 1) sits right before its row:
	// locate it and zero it. Layout: ... count=2, key=3, 8B row, delta=1.
	idx := bytes.Index(data, []byte{2, 3}) // q count, first key
	if idx < 0 {
		t.Fatal("test payload layout changed; update the offset logic")
	}
	data[idx+2+8] = 0 // delta 1 → 0
	if _, _, _, err := UnmarshalTableSetBinary(data); err == nil {
		t.Fatal("zero key delta (duplicate state key) accepted")
	}

	// An undersized payload claiming a huge Q entry count must be
	// rejected before the count sizes an allocation.
	hdr := []byte{'N', 'X', 'T', 'B', 1, 0}
	hdr = append(hdr, 1, 'x')                       // app "x"
	hdr = append(hdr, 0)                            // learner "" → watkins
	hdr = append(hdr, 9)                            // actions
	hdr = append(hdr, 1)                            // one role
	hdr = append(hdr, 1, 'q')                       // role "q"
	hdr = append(hdr, 0, 0, 0)                      // steps, trained_us, converged
	hdr = append(hdr, 0xff, 0xff, 0xff, 0xff, 0x0f) // q count ~= 4 billion
	if _, _, _, err := UnmarshalTableSetBinary(hdr); err == nil {
		t.Fatal("implausible q entry count accepted")
	}
}

// TestBinaryCodecValidatesLearnerLayout: the binary path applies the
// same registry validation as JSON — a doubleq set missing role b, or
// an unknown learner name, fails at decode.
func TestBinaryCodecValidatesLearnerLayout(t *testing.T) {
	q := NewQTable(9)
	bad := &learner.TableSet{Learner: "doubleq", Roles: []learner.RoleTable{{Role: "a", Table: q}}}
	if _, err := MarshalTableSetBinary("x", bad, false); err != nil {
		// Encoder may reject structurally; decode must reject regardless.
		t.Skipf("encoder rejected truncated doubleq set: %v", err)
	}
	data, err := MarshalTableSetBinary("x", bad, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := UnmarshalTableSetBinary(data); err == nil {
		t.Fatal("doubleq set without role b accepted")
	}
}
