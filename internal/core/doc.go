// Package core implements the paper's primary contribution: Next, the
// user-interaction-aware reinforcement-learning DVFS agent, together
// with the PPDW metric it optimizes.
//
// The agent's loop mirrors Section IV of the paper:
//
//   - every 25 ms it samples the displayed frame rate into a 4 s frame
//     window (160 samples) and takes the window's mathematical mode as
//     the target FPS — the frame rate the user's current interaction
//     actually needs;
//   - every 100 ms it observes the platform state (per-cluster maxfreq
//     positions, current FPS, target FPS, power, big-cluster and device
//     temperatures), folds it into a quantized tabular state, performs a
//     TD update rewarded by PPDW (Eq. 1), and picks one of the 3·m
//     actions (frequency up / down / do nothing per cluster). The update
//     rule and exploration strategy come from the internal/learner
//     registries — Watkins Q-learning (Eq. 3) with decaying ε-greedy by
//     default, bit-identical to the paper's hard-coded rule — so the
//     same agent runs Double Q, SARSA, Expected SARSA or n-step returns
//     (and softmax/UCB1 exploration) by configuration;
//   - actions move the chosen cluster's maxfreq cap one OPP, leaving the
//     stock governor free to choose any frequency below the cap.
//
// Q-tables are kept per application and can be persisted and reloaded
// (the paper trains each new app once, ~3 min 27 s, then reuses the
// table), merged across devices (federated learning, Section IV-C), and
// trained at cloud speed via internal/cloud.
package core
