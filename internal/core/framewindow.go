package core

import "nextdvfs/internal/stats"

// FrameWindow is the paper's sliding window of frame-rate samples: the
// agent samples the displayed FPS every 25 ms for 4 s (160 samples) and
// takes the mathematical mode as the target FPS for the session's
// current interaction pattern.
type FrameWindow struct {
	counter *stats.ModeCounter
	warmup  int
	lastFPS int
}

// NewFrameWindow builds a window of n samples requiring warmup samples
// before the mode is trusted (before that, Target falls back to the
// latest sample so a fresh agent is not anchored at zero).
func NewFrameWindow(n, warmup int) *FrameWindow {
	if warmup > n {
		warmup = n
	}
	return &FrameWindow{counter: stats.NewModeCounter(n), warmup: warmup}
}

// Push records one FPS sample (rounded to the integer frame rates the
// mode operates on).
func (w *FrameWindow) Push(fps float64) {
	v := int(fps + 0.5)
	if v < 0 {
		v = 0
	}
	w.lastFPS = v
	w.counter.Push(v)
}

// Target returns the mode of the window — the paper's target FPS. Until
// warmup samples have arrived it returns the latest sample.
func (w *FrameWindow) Target() int {
	if w.counter.Len() < w.warmup {
		return w.lastFPS
	}
	mode, _ := w.counter.Mode()
	return mode
}

// MeanTarget returns the window average instead of the mode — the
// ablation the benchmarks compare against the paper's mode choice.
func (w *FrameWindow) MeanTarget() int {
	if w.counter.Len() < w.warmup {
		return w.lastFPS
	}
	return int(w.counter.Mean() + 0.5)
}

// Len reports the number of samples currently held.
func (w *FrameWindow) Len() int { return w.counter.Len() }

// Reset empties the window (used on app switch: the previous app's
// interaction pattern says nothing about the next one).
func (w *FrameWindow) Reset() {
	w.counter.Reset()
	w.lastFPS = 0
}
