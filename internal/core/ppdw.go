package core

// PPDW computes the paper's performance-per-degree-watt metric (Eq. 1):
//
//	PPDW_i = FPS_i / (ΔT × P_i),  ΔT = T_i − T_a
//
// Degenerate denominators are floored (ΔT at 0.5 K, P at 0.1 W): on
// real hardware the sensor never reads exactly ambient while the rail
// draws nonzero power, and the floor keeps the metric finite during the
// first instants of a cold simulation.
func PPDW(fps, powerW, tempC, ambientC float64) float64 {
	dT := tempC - ambientC
	if dT < 0.5 {
		dT = 0.5
	}
	if powerW < 0.1 {
		powerW = 0.1
	}
	return fps / (dT * powerW)
}

// Bounds are the PPDW_worst / PPDW_best anchors of Eq. 2: the worst
// value comes from the least FPS (1) at maximum power and temperature;
// the best from maximum FPS at the least plausible power and
// temperature rise.
type Bounds struct {
	Worst float64
	Best  float64
}

// NewBounds derives the anchors from platform extremes.
//
//	worst = FPS_least(=1) / ((Tmax−Ta) × Pmax)
//	best  = FPS_max / ((Tleast−Ta) × Pleast)
func NewBounds(fpsMax, pMaxW, pLeastW, tMaxC, tLeastC, ambientC float64) Bounds {
	return Bounds{
		Worst: PPDW(1, pMaxW, tMaxC, ambientC),
		Best:  PPDW(fpsMax, pLeastW, tLeastC, ambientC),
	}
}

// InRange reports whether v satisfies Eq. 2's ordering:
// best ≥ v > worst.
func (b Bounds) InRange(v float64) bool {
	return v > b.Worst && v <= b.Best
}

// RewardConfig shapes the scalar reward from PPDW and the target-FPS
// goal. Eq. 4 asks the agent to maximize PPDW while achieving
// FPS_current = TargetFPS; raw PPDW is zero at FPS 0 (no gradient at
// idle) and silent about overshoot, so the reward combines a squashed
// PPDW term with a target-miss penalty (see DESIGN.md §2 for the
// interpretation argument).
type RewardConfig struct {
	// Kappa weights the undershoot penalty max(0, Target − FPS)/60.
	// Only undershoot is penalized: the 4 s frame window lags the
	// user's interaction, so at the start of a burst the mode-derived
	// target is stale (often 0) and punishing "rendering more than the
	// stale target" would strangle exactly the frames the user is
	// waiting for. Overshoot is already discouraged through PPDW's
	// power and temperature denominators.
	Kappa float64
	// Squash is the soft-normalization constant c in ppdw/(ppdw+c),
	// mapping PPDW's open-ended scale into [0,1) without needing exact
	// platform bounds.
	Squash float64
	// FPSFloor substitutes for FPS in the PPDW numerator so that an
	// idle session (target 0, fps 0) still prefers lower power/heat —
	// consistent with the paper's PPDW_worst using FPS_least = 1.
	FPSFloor float64
	// PPW switches the metric to plain performance-per-watt (no ΔT
	// term) — the ablation that motivates the paper's PPDW: "for a
	// mobile platform ... trying to maximize PPW is not enough".
	PPW bool
}

// DefaultRewardConfig returns the shaping used in the experiments.
func DefaultRewardConfig() RewardConfig {
	return RewardConfig{Kappa: 0.45, Squash: 0.12, FPSFloor: 1}
}

// Reward computes the shaped reward for a measurement against a target.
func (rc RewardConfig) Reward(fps, targetFPS, powerW, tempC, ambientC float64) float64 {
	eff := fps
	if eff < rc.FPSFloor {
		eff = rc.FPSFloor
	}
	var metric float64
	if rc.PPW {
		// Ablation: performance per watt, thermally blind. Rescaled so
		// PPW (≈10× PPDW's magnitude at ΔT ≈ 10 K) lands in a
		// comparable range for the same squash constant.
		p := powerW
		if p < 0.1 {
			p = 0.1
		}
		metric = eff / p / 10
	} else {
		metric = PPDW(eff, powerW, tempC, ambientC)
	}
	norm := metric / (metric + rc.Squash)
	short := targetFPS - fps
	if short < 0 {
		short = 0
	}
	return norm - rc.Kappa*short/60.0
}
