package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPPDWMatchesEquationOne(t *testing.T) {
	// PPDW = FPS / (ΔT × P): 60 FPS at 10 K rise and 3 W → 2.0.
	got := PPDW(60, 3, 31, 21)
	if math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("PPDW = %g, want 2.0", got)
	}
}

func TestPPDWZeroFPSIsZero(t *testing.T) {
	// Fig. 4 marks FPS 0 as PPDW 0.0000.
	if got := PPDW(0, 5, 50, 21); got != 0 {
		t.Fatalf("PPDW at 0 FPS = %g, want 0", got)
	}
}

func TestPPDWFloorsDegenerateDenominators(t *testing.T) {
	// Temperature at/below ambient and near-zero power must not blow up.
	if v := PPDW(30, 0, 21, 21); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("degenerate PPDW = %g", v)
	}
	if v := PPDW(30, 0.001, 20, 21); v <= 0 {
		t.Fatalf("degenerate PPDW should stay positive: %g", v)
	}
}

func TestPPDWMonotonicity(t *testing.T) {
	// More FPS at equal cost → better; more power/temp at equal FPS → worse.
	rng := rand.New(rand.NewSource(8))
	f := func(fpsSeed, pSeed, tSeed uint8) bool {
		fps := 1 + float64(fpsSeed%60)
		p := 0.5 + float64(pSeed%150)/10
		temp := 25 + float64(tSeed%60)
		base := PPDW(fps, p, temp, 21)
		return PPDW(fps+1, p, temp, 21) > base &&
			PPDW(fps, p+0.5, temp, 21) < base &&
			PPDW(fps, p, temp+5, 21) < base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsOrdering(t *testing.T) {
	b := NewBounds(60, 16, 1.5, 95, 25, 21)
	if b.Worst >= b.Best {
		t.Fatalf("worst (%g) must be below best (%g)", b.Worst, b.Best)
	}
	// A typical operating point sits inside Eq. 2's range.
	typical := PPDW(60, 5, 55, 21)
	if !b.InRange(typical) {
		t.Fatalf("typical PPDW %g outside [%g, %g]", typical, b.Worst, b.Best)
	}
	if b.InRange(b.Worst) {
		t.Fatal("range excludes worst (strict inequality)")
	}
	if !b.InRange(b.Best) {
		t.Fatal("range includes best")
	}
}

func TestRewardPrefersMeetingTarget(t *testing.T) {
	rc := DefaultRewardConfig()
	onTarget := rc.Reward(60, 60, 5, 50, 21)
	under := rc.Reward(30, 60, 5, 50, 21)
	if onTarget <= under {
		t.Fatalf("meeting target (%g) must beat missing it (%g)", onTarget, under)
	}
}

func TestRewardPrefersLowerPowerAtIdle(t *testing.T) {
	// Target 0, FPS 0: the FPS floor keeps a gradient toward lower
	// power and temperature (the Spotify case).
	rc := DefaultRewardConfig()
	hot := rc.Reward(0, 0, 3.5, 45, 21)
	cool := rc.Reward(0, 0, 1.8, 32, 21)
	if cool <= hot {
		t.Fatalf("idle reward should prefer low power: cool=%g hot=%g", cool, hot)
	}
}

func TestRewardPenalizesOvershootThroughPower(t *testing.T) {
	// Overshoot carries no direct penalty (the mode-derived target lags
	// interaction by up to 4 s, so "above target" is often "the user
	// just started scrolling"). It is discouraged through PPDW instead:
	// rendering 60 when 30 suffices costs extra watts and degrees, and
	// that realistic cost must lose to the exact-target operating point.
	rc := DefaultRewardConfig()
	exact := rc.Reward(30, 30, 3.5, 42, 21)
	over := rc.Reward(60, 30, 7.0, 55, 21)
	if over >= exact {
		t.Fatalf("costly overshoot (%g) should not beat exact target (%g)", over, exact)
	}
}

func TestRewardBounded(t *testing.T) {
	rc := DefaultRewardConfig()
	rng := rand.New(rand.NewSource(9))
	f := func(a, b, c, d uint8) bool {
		r := rc.Reward(float64(a%61), float64(b%61), float64(c)/10, 21+float64(d%70), 21)
		return r > -2 && r < 1.5 && !math.IsNaN(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
