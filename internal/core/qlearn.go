package core

import "nextdvfs/internal/learner"

// The tabular value store and the exploration/update rules live in
// internal/learner (the pluggable policy layer); core re-exports the
// table types so the persistence, cloud-merge and fleet surfaces keep
// their historical names.
type (
	// StateKey is a packed mixed-radix encoding of the quantized state
	// tuple. Sparse Q-tables are keyed by it.
	StateKey = learner.StateKey
	// QTable is a sparse tabular action-value function.
	QTable = learner.QTable
	// Policy is the ε-greedy action selector with multiplicative decay
	// (the paper's exploration schedule; learner's "egreedy" explorer).
	Policy = learner.EpsilonGreedy
	// TableSet is a learner's complete table state: its registry name
	// plus role-tagged tables (two estimators for "doubleq") — the unit
	// the store persists and the fleet merges.
	TableSet = learner.TableSet
	// RoleTable is one role-tagged table of a TableSet.
	RoleTable = learner.RoleTable
)

// NewQTable returns an empty table over the given action count.
func NewQTable(actions int) *QTable { return learner.NewQTable(actions) }
