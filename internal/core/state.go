package core

import (
	"fmt"

	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/stats"
)

// StateSpace quantizes platform snapshots into tabular state keys. The
// dimensions follow the paper's state list for the Exynos 9810
// implementation: big/LITTLE/GPU frequency positions, FPS_current,
// Target FPS, Power_current, Temperature_big and Temperature_device.
//
// Frequency positions use the current OPP index — "the current
// operating frequency of each cluster ... fed to the RL module as part
// of the states" — while actions move the maxfreq cap relative to that
// operating point (see Action.Apply and DESIGN.md §2).
type StateSpace struct {
	clusterCard []int // cap-index cardinality per cluster, chip order
	fpsQ        stats.Quantizer
	targetQ     stats.Quantizer
	powerQ      stats.Quantizer
	tempQ       stats.Quantizer
}

// StateSpaceConfig sizes the quantized dimensions.
type StateSpaceConfig struct {
	// FPSLevels and TargetLevels quantize the two frame-rate dimensions
	// (the paper's Fig. 6 sweep; granularity 30 ⇒ 3 levels over 0–60).
	FPSLevels    int
	TargetLevels int
	PowerLevels  int
	TempLevels   int
	MaxFPS       float64
	PowerMaxW    float64
	TempMinC     float64
	TempMaxC     float64
}

// DefaultStateSpaceConfig returns the default quantization. The frame
// rate dimensions use 7 levels (≈8.6 FPS bins): coarse enough to train
// fast, fine enough that a 12-FPS QoS shortfall lands in a different
// bin than "target met" — with the paper's coarsest granularity the
// agent cannot see moderate under-provisioning at all (the Fig. 6 sweep
// explores exactly this trade-off).
func DefaultStateSpaceConfig() StateSpaceConfig {
	return StateSpaceConfig{
		FPSLevels:    7,
		TargetLevels: 7,
		PowerLevels:  4,
		TempLevels:   4,
		MaxFPS:       60,
		PowerMaxW:    16,
		TempMinC:     20,
		TempMaxC:     95,
	}
}

// NewStateSpace builds the quantizers for a platform with the given
// per-cluster OPP counts (chip order).
func NewStateSpace(clusterOPPs []int, cfg StateSpaceConfig) *StateSpace {
	if len(clusterOPPs) == 0 {
		panic("core: state space needs at least one cluster")
	}
	for i, n := range clusterOPPs {
		if n <= 0 {
			panic(fmt.Sprintf("core: cluster %d has %d OPPs", i, n))
		}
	}
	card := make([]int, len(clusterOPPs))
	copy(card, clusterOPPs)
	return &StateSpace{
		clusterCard: card,
		fpsQ:        stats.NewQuantizer(0, cfg.MaxFPS, cfg.FPSLevels),
		targetQ:     stats.NewQuantizer(0, cfg.MaxFPS, cfg.TargetLevels),
		powerQ:      stats.NewQuantizer(0, cfg.PowerMaxW, cfg.PowerLevels),
		tempQ:       stats.NewQuantizer(cfg.TempMinC, cfg.TempMaxC, cfg.TempLevels),
	}
}

// NumClusters returns the number of frequency dimensions.
func (ss *StateSpace) NumClusters() int { return len(ss.clusterCard) }

// Actions returns the action-space size: up/down/nothing per cluster
// (9 on a 3-cluster chip, as the paper enumerates).
func (ss *StateSpace) Actions() int { return 3 * len(ss.clusterCard) }

// Key folds a snapshot and target FPS into a packed state key.
func (ss *StateSpace) Key(snap ctrl.Snapshot, targetFPS float64) StateKey {
	var key uint64
	push := func(v, card int) {
		key = key*uint64(card) + uint64(v)
	}
	for i, c := range snap.Clusters {
		idx := c.CurIdx
		if idx < 0 {
			idx = 0
		}
		if idx >= ss.clusterCard[i] {
			idx = ss.clusterCard[i] - 1
		}
		push(idx, ss.clusterCard[i])
	}
	push(ss.fpsQ.Index(snap.FPS), ss.fpsQ.Levels)
	push(ss.targetQ.Index(targetFPS), ss.targetQ.Levels)
	push(ss.powerQ.Index(snap.PowerW), ss.powerQ.Levels)
	push(ss.tempQ.Index(snap.TempBigC), ss.tempQ.Levels)
	push(ss.tempQ.Index(snap.TempDeviceC), ss.tempQ.Levels)
	return StateKey(key)
}

// MaxStates returns the cardinality of the full product space — the
// upper bound the sparse table never comes close to occupying.
func (ss *StateSpace) MaxStates() uint64 {
	n := uint64(1)
	for _, c := range ss.clusterCard {
		n *= uint64(c)
	}
	n *= uint64(ss.fpsQ.Levels) * uint64(ss.targetQ.Levels)
	n *= uint64(ss.powerQ.Levels) * uint64(ss.tempQ.Levels) * uint64(ss.tempQ.Levels)
	return n
}

// Action encodes the paper's per-cluster action list: for cluster j the
// actions are 3j (frequency up), 3j+1 (frequency down) and 3j+2 (do
// nothing). Exactly one action fires per control step.
type Action int

// Decode splits an action into its cluster ordinal and verb
// (0 = up, 1 = down, 2 = nothing).
func (a Action) Decode() (cluster, verb int) { return int(a) / 3, int(a) % 3 }

// Apply performs the action against the actuator, following the
// paper's semantics: "setting operating frequency (up, down and do
// nothing) means to set the maxfreq of the respective PE to that
// operating frequency" — i.e. the new cap is one OPP above/below the
// cluster's CURRENT operating point, not the previous cap. Anchoring to
// the operating point makes every action bite immediately (a cap miles
// above the governor's choice is a dead zone no reward can see through).
func (a Action) Apply(snap ctrl.Snapshot, act ctrl.Actuator) {
	clusterIdx, verb := a.Decode()
	if clusterIdx >= len(snap.Clusters) || verb == 2 {
		return
	}
	c := snap.Clusters[clusterIdx]
	switch verb {
	case 0:
		act.SetCap(c.Name, c.CurIdx+1)
	case 1:
		act.SetCap(c.Name, c.CurIdx-1)
	}
}

// String renders the action ("big freq up", "GPU do nothing", ...).
// Cluster names must be supplied since the action itself only stores
// ordinals.
func (a Action) String() string {
	cluster, verb := a.Decode()
	verbs := [...]string{"freq up", "freq down", "do nothing"}
	return fmt.Sprintf("cluster[%d] %s", cluster, verbs[verb])
}
