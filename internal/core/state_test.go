package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nextdvfs/internal/ctrl"
)

func exynosSpace() *StateSpace {
	return NewStateSpace([]int{18, 10, 6}, DefaultStateSpaceConfig())
}

func snapWith(caps [3]int, fps, target, power, tb, td float64) (ctrl.Snapshot, float64) {
	return ctrl.Snapshot{
		FPS: fps, PowerW: power, TempBigC: tb, TempDeviceC: td, AmbientC: 21,
		Clusters: []ctrl.ClusterView{
			{Name: "big", NumOPPs: 18, CurIdx: caps[0], CapIdx: caps[0]},
			{Name: "LITTLE", NumOPPs: 10, CurIdx: caps[1], CapIdx: caps[1]},
			{Name: "GPU", IsGPU: true, NumOPPs: 6, CurIdx: caps[2], CapIdx: caps[2]},
		},
	}, target
}

func TestActionSpaceIsNinePerPaper(t *testing.T) {
	ss := exynosSpace()
	if ss.Actions() != 9 {
		t.Fatalf("actions = %d, want 9 (3 clusters × up/down/nothing)", ss.Actions())
	}
}

func TestStateKeyInjectivityOverCaps(t *testing.T) {
	// Different cap combinations must map to different keys (all else
	// equal) — the frequency dimensions are the agent's own coordinates.
	ss := exynosSpace()
	seen := map[StateKey][3]int{}
	for b := 0; b < 18; b++ {
		for l := 0; l < 10; l++ {
			for g := 0; g < 6; g++ {
				snap, target := snapWith([3]int{b, l, g}, 30, 30, 4, 50, 40)
				k := ss.Key(snap, target)
				if prev, dup := seen[k]; dup {
					t.Fatalf("collision: %v and %v → %d", prev, [3]int{b, l, g}, k)
				}
				seen[k] = [3]int{b, l, g}
			}
		}
	}
	if len(seen) != 18*10*6 {
		t.Fatalf("distinct keys = %d", len(seen))
	}
}

func TestStateKeyQuantizesFPS(t *testing.T) {
	// With 3 FPS levels (the paper's best granularity), 0 and 5 share a
	// bin but 0 and 59 do not.
	ss := exynosSpace()
	s1, tg := snapWith([3]int{5, 5, 3}, 0, 0, 4, 50, 40)
	s2, _ := snapWith([3]int{5, 5, 3}, 5, 0, 4, 50, 40)
	s3, _ := snapWith([3]int{5, 5, 3}, 59, 0, 4, 50, 40)
	if ss.Key(s1, tg) != ss.Key(s2, tg) {
		t.Fatal("0 and 5 FPS should share a bin at 3 levels")
	}
	if ss.Key(s1, tg) == ss.Key(s3, tg) {
		t.Fatal("0 and 59 FPS must differ")
	}
}

func TestStateKeyWithinMaxStates(t *testing.T) {
	ss := exynosSpace()
	maxStates := ss.MaxStates()
	rng := rand.New(rand.NewSource(15))
	f := func(b, l, g, fpsS, tgS, pS, tbS, tdS uint8) bool {
		snap, target := snapWith(
			[3]int{int(b) % 18, int(l) % 10, int(g) % 6},
			float64(fpsS%61), float64(tgS%61),
			float64(pS)/16, 20+float64(tbS%76), 20+float64(tdS%76),
		)
		return uint64(ss.Key(snap, target)) < maxStates
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestStateKeyClampsOutOfRangeCapIdx(t *testing.T) {
	ss := exynosSpace()
	snap, tg := snapWith([3]int{99, -1, 3}, 30, 30, 4, 50, 40)
	clamped, _ := snapWith([3]int{17, 0, 3}, 30, 30, 4, 50, 40)
	if ss.Key(snap, tg) != ss.Key(clamped, tg) {
		t.Fatal("out-of-range cap indices should clamp")
	}
}

func TestActionDecode(t *testing.T) {
	// Paper order per cluster: up, down, do nothing.
	tests := []struct {
		a       Action
		cluster int
		verb    int
	}{
		{0, 0, 0}, {1, 0, 1}, {2, 0, 2},
		{3, 1, 0}, {4, 1, 1}, {5, 1, 2},
		{6, 2, 0}, {7, 2, 1}, {8, 2, 2},
	}
	for _, tt := range tests {
		c, v := tt.a.Decode()
		if c != tt.cluster || v != tt.verb {
			t.Errorf("action %d decoded (%d,%d), want (%d,%d)", tt.a, c, v, tt.cluster, tt.verb)
		}
	}
}

type recordActuator struct{ caps map[string]int }

func (r *recordActuator) SetCap(c string, i int) { r.caps[c] = i }
func (r *recordActuator) SetFloor(string, int)   {}
func (r *recordActuator) Pin(string, int)        {}

func TestActionApply(t *testing.T) {
	snap, _ := snapWith([3]int{5, 5, 3}, 30, 30, 4, 50, 40)
	rec := &recordActuator{caps: map[string]int{}}

	Action(0).Apply(snap, rec) // big up
	if rec.caps["big"] != 6 {
		t.Fatalf("big up → %d, want 6", rec.caps["big"])
	}
	Action(7).Apply(snap, rec) // GPU down
	if rec.caps["GPU"] != 2 {
		t.Fatalf("GPU down → %d, want 2", rec.caps["GPU"])
	}
	// Do-nothing actions must not touch the actuator.
	before := len(rec.caps)
	Action(2).Apply(snap, rec)
	Action(5).Apply(snap, rec)
	Action(8).Apply(snap, rec)
	if len(rec.caps) != before {
		t.Fatal("do-nothing action actuated")
	}
}

func TestActionStringIsReadable(t *testing.T) {
	if Action(0).String() == "" || Action(8).String() == "" {
		t.Fatal("actions should render")
	}
}

func TestNewStateSpaceValidation(t *testing.T) {
	for _, bad := range [][]int{nil, {}, {0}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", bad)
				}
			}()
			NewStateSpace(bad, DefaultStateSpaceConfig())
		}()
	}
}

func TestFrameWindowModeTargeting(t *testing.T) {
	w := NewFrameWindow(160, 40)
	// Warmup: target follows the latest sample.
	w.Push(42)
	if w.Target() != 42 {
		t.Fatalf("warmup target = %d, want 42", w.Target())
	}
	// Fill with a bimodal pattern: 100 samples at 60, 60 at 0 → mode 60.
	for i := 0; i < 100; i++ {
		w.Push(60)
	}
	for i := 0; i < 59; i++ {
		w.Push(0)
	}
	if w.Target() != 60 {
		t.Fatalf("target = %d, want 60", w.Target())
	}
	// Another 100 zeros swings the mode to 0 (user went idle).
	for i := 0; i < 100; i++ {
		w.Push(0)
	}
	if w.Target() != 0 {
		t.Fatalf("target after idle = %d, want 0", w.Target())
	}
}

func TestFrameWindowReset(t *testing.T) {
	w := NewFrameWindow(160, 40)
	for i := 0; i < 160; i++ {
		w.Push(60)
	}
	w.Reset()
	if w.Len() != 0 || w.Target() != 0 {
		t.Fatal("reset failed")
	}
}

func TestFrameWindowRoundsSamples(t *testing.T) {
	w := NewFrameWindow(10, 1)
	w.Push(59.7)
	if w.Target() != 60 {
		t.Fatalf("59.7 should round to 60, got %d", w.Target())
	}
	// Negative FPS clamps to 0 (fresh window so the QoS-safe mode
	// tie-break cannot pick an older, higher sample).
	w2 := NewFrameWindow(10, 1)
	w2.Push(-3)
	if w2.Target() != 0 {
		t.Fatal("negative FPS should clamp to 0")
	}
}
