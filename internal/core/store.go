package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"nextdvfs/internal/learner"
)

// roleDTO is one auxiliary role table on the wire (the second Double-Q
// estimator). Metadata (Steps, TrainedUS, …) lives on the primary.
type roleDTO struct {
	Q      map[string][]float64 `json:"q"`
	Visits map[string]int       `json:"visits"`
}

// tableDTO is the JSON wire format for a persisted learner table set.
// Map keys are stringified state keys (JSON requires string keys). The
// primary table occupies the historical top-level fields, so a
// single-table watkins snapshot is byte-identical to the pre-registry
// format and old files load unchanged; multi-table learners carry
// their extra estimators under "aux" keyed by role, with the learner's
// registry name in "learner".
type tableDTO struct {
	App           string               `json:"app"`
	Actions       int                  `json:"actions"`
	Steps         int64                `json:"steps"`
	TrainedUS     int64                `json:"trained_us"`
	ConvergedAtUS int64                `json:"converged_at_us"`
	Trained       bool                 `json:"trained"`
	Q             map[string][]float64 `json:"q"`
	Visits        map[string]int       `json:"visits"`
	Learner       string               `json:"learner,omitempty"`
	Aux           map[string]roleDTO   `json:"aux,omitempty"`
}

// MarshalTable serializes a single-table policy for storage ("the
// Q-table results are stored on the memory so that later ... the agent
// is able to refer to the Q-table").
func MarshalTable(app string, t *QTable, trained bool) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("core: nil table for %q", app)
	}
	return MarshalTableSet(app, learner.SingleTableSet(t), trained)
}

// MarshalTableCompact is MarshalTable without indentation — the wire
// format for network transfer (fleetd uploads), where nobody reads the
// JSON and the whitespace is pure parse and transfer cost. Both forms
// unmarshal identically.
func MarshalTableCompact(app string, t *QTable, trained bool) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("core: nil table for %q", app)
	}
	return MarshalTableSetCompact(app, learner.SingleTableSet(t), trained)
}

// MarshalTableSet serializes a learner's complete table state.
func MarshalTableSet(app string, set *TableSet, trained bool) ([]byte, error) {
	dto, err := setToDTO(app, set, trained)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(dto, "", " ")
}

// MarshalTableSetCompact is MarshalTableSet without indentation.
func MarshalTableSetCompact(app string, set *TableSet, trained bool) ([]byte, error) {
	dto, err := setToDTO(app, set, trained)
	if err != nil {
		return nil, err
	}
	return json.Marshal(dto)
}

func setToDTO(app string, set *TableSet, trained bool) (*tableDTO, error) {
	if set == nil || set.Primary() == nil {
		return nil, fmt.Errorf("core: nil table set for %q", app)
	}
	t := set.Primary()
	dto := tableDTO{
		App:           app,
		Actions:       t.Actions,
		Steps:         t.Steps,
		TrainedUS:     t.TrainedUS,
		ConvergedAtUS: t.ConvergedAtUS,
		Trained:       trained,
		Q:             tableToWire(t),
		Visits:        visitsToWire(t),
	}
	// The default learner stays implicit so watkins snapshots remain
	// byte-identical to the historical single-table format.
	if name := learner.Normalize(set.Learner); name != learner.DefaultLearner {
		dto.Learner = name
	}
	for _, r := range set.Roles[1:] {
		if r.Table.Actions != t.Actions {
			return nil, fmt.Errorf("core: role %q of %q has %d actions, primary has %d",
				r.Role, app, r.Table.Actions, t.Actions)
		}
		if dto.Aux == nil {
			dto.Aux = make(map[string]roleDTO, len(set.Roles)-1)
		}
		if _, dup := dto.Aux[r.Role]; dup || r.Role == "" {
			return nil, fmt.Errorf("core: bad role %q in table set for %q", r.Role, app)
		}
		dto.Aux[r.Role] = roleDTO{Q: tableToWire(r.Table), Visits: visitsToWire(r.Table)}
	}
	return &dto, nil
}

func tableToWire(t *QTable) map[string][]float64 {
	m := make(map[string][]float64, len(t.Q))
	for k, v := range t.Q {
		m[strconv.FormatUint(uint64(k), 10)] = v
	}
	return m
}

func visitsToWire(t *QTable) map[string]int {
	m := make(map[string]int, len(t.Visits))
	for k, v := range t.Visits {
		m[strconv.FormatUint(uint64(k), 10)] = v
	}
	return m
}

func wireToTable(actions int, q map[string][]float64, visits map[string]int) (*QTable, error) {
	t := NewQTable(actions)
	for k, v := range q {
		key, err := strconv.ParseUint(k, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad state key %q: %w", k, err)
		}
		if len(v) != actions {
			return nil, fmt.Errorf("core: state %q has %d action values, want %d", k, len(v), actions)
		}
		t.Q[StateKey(key)] = v
	}
	for k, v := range visits {
		key, err := strconv.ParseUint(k, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad visit key %q: %w", k, err)
		}
		t.Visits[StateKey(key)] = v
	}
	return t, nil
}

// UnmarshalTable parses a persisted table, returning the primary table
// only (multi-table sets collapse to their primary — the policy view).
func UnmarshalTable(data []byte) (app string, t *QTable, trained bool, err error) {
	app, set, trained, err := UnmarshalTableSet(data)
	if err != nil {
		return "", nil, false, err
	}
	return app, set.Primary(), trained, nil
}

// UnmarshalTableSet parses a persisted learner table set. Legacy
// single-table files (no "learner"/"aux" fields) come back as
// single-role watkins sets.
func UnmarshalTableSet(data []byte) (app string, set *TableSet, trained bool, err error) {
	var dto tableDTO
	if err = json.Unmarshal(data, &dto); err != nil {
		return "", nil, false, err
	}
	if dto.Actions <= 0 {
		return "", nil, false, fmt.Errorf("core: table for %q has invalid action count %d", dto.App, dto.Actions)
	}
	primary, err := wireToTable(dto.Actions, dto.Q, dto.Visits)
	if err != nil {
		return "", nil, false, err
	}
	primary.Steps = dto.Steps
	primary.TrainedUS = dto.TrainedUS
	primary.ConvergedAtUS = dto.ConvergedAtUS

	name := learner.Normalize(dto.Learner)
	set = &TableSet{Learner: name, Roles: []RoleTable{{Role: learner.PrimaryRole(name), Table: primary}}}
	for _, role := range sortedRoles(dto.Aux) {
		aux, err := wireToTable(dto.Actions, dto.Aux[role].Q, dto.Aux[role].Visits)
		if err != nil {
			return "", nil, false, fmt.Errorf("core: role %q of %q: %w", role, dto.App, err)
		}
		set.Roles = append(set.Roles, RoleTable{Role: role, Table: aux})
	}
	// Snapshot files and uploads are untrusted: an unknown learner name
	// or a role layout that doesn't match the named learner fails here,
	// not as a silently dropped estimator downstream.
	if err := learner.ValidateSet(set); err != nil {
		return "", nil, false, fmt.Errorf("core: table set for %q: %w", dto.App, err)
	}
	return dto.App, set, dto.Trained, nil
}

// sortedRoles orders aux-role names so set reconstruction (and
// everything downstream: merges, re-marshals) is deterministic.
func sortedRoles(aux map[string]roleDTO) []string {
	roles := make([]string, 0, len(aux))
	for r := range aux {
		roles = append(roles, r)
	}
	sort.Strings(roles)
	return roles
}

// Store persists learner table sets under a directory, one JSON file
// per app.
type Store struct{ Dir string }

// path returns the file for an app, sanitized to a flat name.
func (s Store) path(app string) string {
	return filepath.Join(s.Dir, app+".qtable.json")
}

// Save writes the app's table atomically: the JSON goes to a temp file
// in the same directory and is renamed into place, so a reader (or a
// concurrent snapshotter, as in fleetd) can never observe a torn
// *.qtable.json. The temp name does not end in .json, so directory
// scans like LoadAgent skip in-flight writes.
func (s Store) Save(app string, t *QTable, trained bool) error {
	if t == nil {
		return fmt.Errorf("core: nil table for %q", app)
	}
	return s.SaveSet(app, learner.SingleTableSet(t), trained)
}

// SaveSet is Save for a learner's complete table state (both Double-Q
// estimators survive the round trip).
func (s Store) SaveSet(app string, set *TableSet, trained bool) error {
	data, err := MarshalTableSet(app, set, trained)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.Dir, app+".qtable.*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(app)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Load reads the app's primary table; os.IsNotExist(err) distinguishes
// "never trained" from corruption.
func (s Store) Load(app string) (*QTable, bool, error) {
	set, trained, err := s.LoadSet(app)
	if err != nil {
		return nil, false, err
	}
	return set.Primary(), trained, nil
}

// LoadSet reads the app's complete learner table set.
func (s Store) LoadSet(app string) (*TableSet, bool, error) {
	data, err := os.ReadFile(s.path(app))
	if err != nil {
		return nil, false, err
	}
	_, set, trained, err := UnmarshalTableSet(data)
	return set, trained, err
}

// SaveAgent persists every learner table set the agent holds.
func (s Store) SaveAgent(a *Agent) error {
	for _, app := range a.Apps() {
		set := a.SnapshotFor(app)
		if set == nil || set.Primary() == nil {
			continue
		}
		t := a.TableFor(app)
		if err := s.SaveSet(app, set, t.Trained); err != nil {
			return fmt.Errorf("core: saving %q: %w", app, err)
		}
	}
	return nil
}

// LoadAgent installs every stored table set into the agent.
func (s Store) LoadAgent(a *Agent) error {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.Dir, e.Name()))
		if err != nil {
			return err
		}
		app, set, trained, err := UnmarshalTableSet(data)
		if err != nil {
			return fmt.Errorf("core: loading %q: %w", e.Name(), err)
		}
		a.InstallTableSet(app, set, trained)
	}
	return nil
}
