package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// tableDTO is the JSON wire format for a persisted Q-table. Map keys
// are stringified state keys (JSON requires string keys).
type tableDTO struct {
	App           string               `json:"app"`
	Actions       int                  `json:"actions"`
	Steps         int64                `json:"steps"`
	TrainedUS     int64                `json:"trained_us"`
	ConvergedAtUS int64                `json:"converged_at_us"`
	Trained       bool                 `json:"trained"`
	Q             map[string][]float64 `json:"q"`
	Visits        map[string]int       `json:"visits"`
}

// MarshalTable serializes an app's table for storage ("the Q-table
// results are stored on the memory so that later ... the agent is able
// to refer to the Q-table").
func MarshalTable(app string, t *QTable, trained bool) ([]byte, error) {
	dto, err := tableToDTO(app, t, trained)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(dto, "", " ")
}

// MarshalTableCompact is MarshalTable without indentation — the wire
// format for network transfer (fleetd uploads), where nobody reads the
// JSON and the whitespace is pure parse and transfer cost. Both forms
// unmarshal identically.
func MarshalTableCompact(app string, t *QTable, trained bool) ([]byte, error) {
	dto, err := tableToDTO(app, t, trained)
	if err != nil {
		return nil, err
	}
	return json.Marshal(dto)
}

func tableToDTO(app string, t *QTable, trained bool) (*tableDTO, error) {
	if t == nil {
		return nil, fmt.Errorf("core: nil table for %q", app)
	}
	dto := tableDTO{
		App:           app,
		Actions:       t.Actions,
		Steps:         t.Steps,
		TrainedUS:     t.TrainedUS,
		ConvergedAtUS: t.ConvergedAtUS,
		Trained:       trained,
		Q:             make(map[string][]float64, len(t.Q)),
		Visits:        make(map[string]int, len(t.Visits)),
	}
	for k, v := range t.Q {
		dto.Q[strconv.FormatUint(uint64(k), 10)] = v
	}
	for k, v := range t.Visits {
		dto.Visits[strconv.FormatUint(uint64(k), 10)] = v
	}
	return &dto, nil
}

// UnmarshalTable parses a persisted table.
func UnmarshalTable(data []byte) (app string, t *QTable, trained bool, err error) {
	var dto tableDTO
	if err = json.Unmarshal(data, &dto); err != nil {
		return "", nil, false, err
	}
	if dto.Actions <= 0 {
		return "", nil, false, fmt.Errorf("core: table for %q has invalid action count %d", dto.App, dto.Actions)
	}
	t = NewQTable(dto.Actions)
	t.Steps = dto.Steps
	t.TrainedUS = dto.TrainedUS
	t.ConvergedAtUS = dto.ConvergedAtUS
	for k, v := range dto.Q {
		key, perr := strconv.ParseUint(k, 10, 64)
		if perr != nil {
			return "", nil, false, fmt.Errorf("core: bad state key %q: %w", k, perr)
		}
		if len(v) != dto.Actions {
			return "", nil, false, fmt.Errorf("core: state %q has %d action values, want %d", k, len(v), dto.Actions)
		}
		t.Q[StateKey(key)] = v
	}
	for k, v := range dto.Visits {
		key, perr := strconv.ParseUint(k, 10, 64)
		if perr != nil {
			return "", nil, false, fmt.Errorf("core: bad visit key %q: %w", k, perr)
		}
		t.Visits[StateKey(key)] = v
	}
	return dto.App, t, dto.Trained, nil
}

// Store persists Q-tables under a directory, one JSON file per app.
type Store struct{ Dir string }

// path returns the file for an app, sanitized to a flat name.
func (s Store) path(app string) string {
	return filepath.Join(s.Dir, app+".qtable.json")
}

// Save writes the app's table atomically: the JSON goes to a temp file
// in the same directory and is renamed into place, so a reader (or a
// concurrent snapshotter, as in fleetd) can never observe a torn
// *.qtable.json. The temp name does not end in .json, so directory
// scans like LoadAgent skip in-flight writes.
func (s Store) Save(app string, t *QTable, trained bool) error {
	data, err := MarshalTable(app, t, trained)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.Dir, app+".qtable.*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(app)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Load reads the app's table; os.IsNotExist(err) distinguishes "never
// trained" from corruption.
func (s Store) Load(app string) (*QTable, bool, error) {
	data, err := os.ReadFile(s.path(app))
	if err != nil {
		return nil, false, err
	}
	_, t, trained, err := UnmarshalTable(data)
	return t, trained, err
}

// SaveAgent persists every table the agent holds.
func (s Store) SaveAgent(a *Agent) error {
	for _, app := range a.Apps() {
		t := a.TableFor(app)
		if t == nil || t.Table == nil {
			continue
		}
		if err := s.Save(app, t.Table, t.Trained); err != nil {
			return fmt.Errorf("core: saving %q: %w", app, err)
		}
	}
	return nil
}

// LoadAgent installs every stored table into the agent.
func (s Store) LoadAgent(a *Agent) error {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.Dir, e.Name()))
		if err != nil {
			return err
		}
		app, t, trained, err := UnmarshalTable(data)
		if err != nil {
			return fmt.Errorf("core: loading %q: %w", e.Name(), err)
		}
		a.InstallTable(app, t, trained)
	}
	return nil
}
