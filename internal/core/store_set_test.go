package core

import (
	"strings"
	"testing"

	"nextdvfs/internal/learner"
)

// trainDoubleQ drives a doubleq agent long enough that both estimators
// hold distinct values.
func trainDoubleQ(t *testing.T, seed int64) *Agent {
	t.Helper()
	cfg := DefaultAgentConfig()
	cfg.Seed = seed
	cfg.Learner = "doubleq"
	a := NewAgent(cfg)
	a.AppChanged("game", true)
	act := &recordActuator{caps: map[string]int{}}
	for i := 1; i <= 120; i++ {
		stepAgent(a, act, int64(i)*100_000, 30+float64(i%20), 4, 45, 38, [3]int{9, 5, 3})
	}
	return a
}

func setsEqual(t *testing.T, want, got *learner.TableSet) {
	t.Helper()
	if learner.Normalize(want.Learner) != learner.Normalize(got.Learner) {
		t.Fatalf("learner %q vs %q", want.Learner, got.Learner)
	}
	if len(want.Roles) != len(got.Roles) {
		t.Fatalf("roles %d vs %d", len(want.Roles), len(got.Roles))
	}
	for i := range want.Roles {
		w, g := want.Roles[i], got.Roles[i]
		if w.Role != g.Role {
			t.Fatalf("role %d: %q vs %q", i, w.Role, g.Role)
		}
		if len(w.Table.Q) != len(g.Table.Q) {
			t.Fatalf("role %q: %d vs %d states", w.Role, len(w.Table.Q), len(g.Table.Q))
		}
		for s, row := range w.Table.Q {
			gRow, ok := g.Table.Q[s]
			if !ok {
				t.Fatalf("role %q: state %d missing", w.Role, s)
			}
			for j := range row {
				if row[j] != gRow[j] {
					t.Fatalf("role %q: Q[%d][%d] = %g, want %g", w.Role, s, j, gRow[j], row[j])
				}
			}
		}
		for s, v := range w.Table.Visits {
			if g.Table.Visits[s] != v {
				t.Fatalf("role %q: visits[%d] = %d, want %d", w.Role, s, g.Table.Visits[s], v)
			}
		}
	}
}

// TestDoubleQStoreRoundTrip pins the multi-table persistence contract:
// a doubleq agent's two estimators survive SaveAgent → LoadAgent with
// every value and visit count intact, and keep learning after the
// reload.
func TestDoubleQStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := Store{Dir: dir}
	a := trainDoubleQ(t, 21)
	want := a.SnapshotFor("game")
	if len(want.Roles) != 2 {
		t.Fatalf("doubleq snapshot has %d roles, want 2 (a, b)", len(want.Roles))
	}
	if len(want.Roles[1].Table.Q) == 0 {
		t.Fatal("estimator B never learned — the round trip would be vacuous")
	}
	if err := store.SaveAgent(a); err != nil {
		t.Fatal(err)
	}

	b := NewAgent(a.Config())
	if err := store.LoadAgent(b); err != nil {
		t.Fatal(err)
	}
	// Before any control step the snapshot is exactly the loaded set:
	// both estimators, every value and visit count.
	got := b.SnapshotFor("game")
	setsEqual(t, want, got)
	if got.Learner != "doubleq" || len(got.Roles) != 2 {
		t.Fatalf("loaded agent runs %s with %d roles, want doubleq with 2", got.Learner, len(got.Roles))
	}
	// The loaded set materializes into a live learner on the first
	// control step and keeps learning.
	act := &recordActuator{caps: map[string]int{}}
	b.AppChanged("game", true)
	stepAgent(b, act, 100_000, 30, 4, 45, 38, [3]int{9, 5, 3})
	tab := b.TableFor("game")
	if tab == nil || tab.Table == nil || tab.Learner() == nil {
		t.Fatal("loaded agent did not wire the learner")
	}
	if tab.Learner().Name() != "doubleq" {
		t.Fatalf("loaded learner = %s", tab.Learner().Name())
	}
}

// TestLegacySingleTableFileLoadsAsWatkinsSet pins backward
// compatibility: pre-registry snapshot files (no learner/aux fields)
// load as single-role watkins sets, and a watkins save emits exactly
// the legacy format (no new fields).
func TestLegacySingleTableFileLoadsAsWatkinsSet(t *testing.T) {
	q := NewQTable(9)
	q.Update(StateKey(11), 3, 0.5, StateKey(12), 0.2, 0.9)
	legacy, err := MarshalTable("spotify", q, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{`"learner"`, `"aux"`} {
		if strings.Contains(string(legacy), forbidden) {
			t.Fatalf("watkins snapshot leaked the %s field:\n%s", forbidden, legacy)
		}
	}
	app, set, trained, err := UnmarshalTableSet(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if app != "spotify" || !trained {
		t.Fatalf("app=%q trained=%v", app, trained)
	}
	if learner.Normalize(set.Learner) != "watkins" || len(set.Roles) != 1 || set.Roles[0].Role != "q" {
		t.Fatalf("legacy file parsed as %+v", set)
	}
	if set.Primary().Q[StateKey(11)][3] == 0 {
		t.Fatal("values lost")
	}
}

// TestDoubleQSnapshotKeepsIdentityInDefaultAgent pins the snapshot
// identity rule: a persisted doubleq set loaded into an agent that was
// NOT configured for doubleq must keep running doubleq for that app —
// collapsing it to watkins would silently drop estimator B and the
// next save would make the loss permanent.
func TestDoubleQSnapshotKeepsIdentityInDefaultAgent(t *testing.T) {
	dir := t.TempDir()
	store := Store{Dir: dir}
	trained := trainDoubleQ(t, 31)
	if err := store.SaveAgent(trained); err != nil {
		t.Fatal(err)
	}

	plain := NewAgent(DefaultAgentConfig()) // watkins-configured
	if err := store.LoadAgent(plain); err != nil {
		t.Fatal(err)
	}
	act := &recordActuator{caps: map[string]int{}}
	plain.AppChanged("game", true)
	stepAgent(plain, act, 100_000, 30, 4, 45, 38, [3]int{9, 5, 3})
	if got := plain.TableFor("game").Learner().Name(); got != "doubleq" {
		t.Fatalf("default agent collapsed the doubleq snapshot to %q", got)
	}
	// Re-saving must still carry both estimators.
	if err := store.SaveAgent(plain); err != nil {
		t.Fatal(err)
	}
	set, _, err := store.LoadSet("game")
	if err != nil {
		t.Fatal(err)
	}
	if set.Learner != "doubleq" || len(set.Roles) != 2 || len(set.Roles[1].Table.Q) == 0 {
		t.Fatalf("estimator B lost through the default agent: %s, %d roles", set.Learner, len(set.Roles))
	}
}

// TestUnmarshalTableSetRejectsUnregisteredLearners: snapshot files are
// untrusted input; an unknown learner name or a role layout that does
// not match the named learner must fail at parse.
func TestUnmarshalTableSetRejectsUnregisteredLearners(t *testing.T) {
	if _, _, _, err := UnmarshalTableSet([]byte(`{"actions":9,"learner":"zzz"}`)); err == nil {
		t.Fatal("unknown learner accepted")
	}
	// doubleq without its second role is a truncated set, not a policy.
	if _, _, _, err := UnmarshalTableSet([]byte(`{"actions":9,"learner":"doubleq"}`)); err == nil {
		t.Fatal("doubleq set without role b accepted")
	}
	// Extra roles on a single-table learner are equally malformed.
	if _, _, _, err := UnmarshalTableSet([]byte(`{"actions":9,"aux":{"b":{"q":{},"visits":{}}}}`)); err == nil {
		t.Fatal("watkins set with an aux role accepted")
	}
}

// TestIncompatibleSnapshotFallsBackToFreshTraining: a store dir from a
// platform with a different action space must not crash the first
// control step — the stale table is discarded and the app trains fresh
// on this hardware.
func TestIncompatibleSnapshotFallsBackToFreshTraining(t *testing.T) {
	a := NewAgent(DefaultAgentConfig())
	stale := NewQTable(6) // trained elsewhere: 6 actions vs this chip's 9
	stale.Update(StateKey(1), 2, 1, StateKey(2), 0.5, 0.9)
	a.InstallTable("game", stale, true)

	act := &recordActuator{caps: map[string]int{}}
	a.AppChanged("game", true)
	for i := 1; i <= 10; i++ {
		stepAgent(a, act, int64(i)*100_000, 30, 4, 45, 38, [3]int{9, 5, 3})
	}
	tab := a.TableFor("game")
	if tab.Table.Actions != 9 {
		t.Fatalf("agent kept the stale %d-action table", tab.Table.Actions)
	}
	if tab.Trained {
		t.Fatal("stale snapshot must not count as trained on this hardware")
	}
	if tab.Table.Steps == 0 {
		t.Fatal("fresh training never started")
	}
}

// TestNStepConvergenceTracksUpdatedState: the flip signal must follow
// the state the n-step update actually modifies, and buffering steps
// must not feed the convergence EWMAs — otherwise the flip rate decays
// to zero on its own and training latches "converged" prematurely.
func TestNStepConvergenceTracksUpdatedState(t *testing.T) {
	cfg := DefaultAgentConfig()
	cfg.Seed = 44
	cfg.Learner = "nstep"
	a := NewAgent(cfg)
	a.AppChanged("app", false)
	act := &recordActuator{caps: map[string]int{}}
	// Three control steps: two transitions enter the buffer (N=4), no
	// update applies, so the EWMAs must still be unseeded.
	for i := 1; i <= 3; i++ {
		stepAgent(a, act, int64(i)*100_000, 30, 4, 45, 38, [3]int{9, 5, 3})
	}
	tab := a.TableFor("app")
	if tab.Table.Steps != 0 {
		t.Fatalf("n-step applied %d updates before the window filled", tab.Table.Steps)
	}
	if tab.tdSeeded || tab.flipSeeded {
		t.Fatal("buffering steps polluted the convergence EWMAs")
	}
	// Keep stepping with varied FPS so updates actually apply.
	for i := 4; i <= 200; i++ {
		stepAgent(a, act, int64(i)*100_000, float64(20+i%25), 4, 45, 38, [3]int{9, 5, 3})
	}
	if tab.Table.Steps == 0 {
		t.Fatal("n-step never applied an update")
	}
	if !tab.flipSeeded {
		t.Fatal("convergence tracking never engaged once updates applied")
	}
}

// TestAgentPerLearnerDeterminism: same seed → byte-identical table
// sets, for every registered learner driven through the full agent.
func TestAgentPerLearnerDeterminism(t *testing.T) {
	for _, name := range learner.Names() {
		run := func() []byte {
			cfg := DefaultAgentConfig()
			cfg.Seed = 99
			cfg.Learner = name
			a := NewAgent(cfg)
			a.AppChanged("app", false)
			act := &recordActuator{caps: map[string]int{}}
			for i := 1; i <= 200; i++ {
				stepAgent(a, act, int64(i)*100_000, float64(20+i%25), 4+float64(i%3), 45, 38, [3]int{9, 5, 3})
			}
			data, err := MarshalTableSet("app", a.SnapshotFor("app"), false)
			if err != nil {
				t.Fatal(err)
			}
			return data
		}
		if string(run()) != string(run()) {
			t.Fatalf("%s: same seed produced different tables", name)
		}
	}
}

// TestAgentRunsWithEachLearnerAndExplorer smoke-drives every
// learner × explorer pair through the agent.
func TestAgentRunsWithEachLearnerAndExplorer(t *testing.T) {
	for _, lrn := range learner.Names() {
		for _, ex := range learner.ExplorerNames() {
			cfg := DefaultAgentConfig()
			cfg.Seed = 5
			cfg.Learner = lrn
			cfg.Explorer = ex
			a := NewAgent(cfg)
			a.AppChanged("app", false)
			act := &recordActuator{caps: map[string]int{}}
			for i := 1; i <= 40; i++ {
				stepAgent(a, act, int64(i)*100_000, 30, 4, 45, 38, [3]int{9, 5, 3})
			}
			tab := a.TableFor("app")
			if tab == nil || tab.Table == nil || tab.Table.Steps == 0 {
				t.Fatalf("%s/%s: agent did not learn", lrn, ex)
			}
		}
	}
}

func TestNewAgentPanicsOnUnknownNames(t *testing.T) {
	for _, cfg := range []AgentConfig{
		{Learner: "nope"},
		{Explorer: "nope"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewAgent accepted %+v", cfg)
				}
			}()
			c := DefaultAgentConfig()
			c.Learner = cfg.Learner
			c.Explorer = cfg.Explorer
			NewAgent(c)
		}()
	}
}
