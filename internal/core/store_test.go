package core

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func storeTable(seed int) *QTable {
	t := NewQTable(9)
	for i := 0; i < 8; i++ {
		row := make([]float64, 9)
		for a := range row {
			row[a] = float64(seed*100 + i*10 + a)
		}
		t.Q[StateKey(i)] = row
		t.Visits[StateKey(i)] = seed + i
	}
	t.Steps = int64(seed * 1000)
	t.TrainedUS = int64(seed) * 1_000_000
	return t
}

func TestStoreSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := Store{Dir: dir}
	want := storeTable(3)
	if err := s.Save("spotify", want, true); err != nil {
		t.Fatal(err)
	}
	got, trained, err := s.Load("spotify")
	if err != nil {
		t.Fatal(err)
	}
	if !trained {
		t.Fatal("trained flag lost")
	}
	if got.Steps != want.Steps || got.States() != want.States() {
		t.Fatalf("roundtrip mismatch: steps %d/%d states %d/%d",
			got.Steps, want.Steps, got.States(), want.States())
	}
	if got.Q[StateKey(2)][4] != want.Q[StateKey(2)][4] {
		t.Fatal("Q values lost in roundtrip")
	}
}

// Save must be atomic: after any number of saves (including concurrent
// ones to the same app) the directory holds exactly the final JSON and
// no temp-file debris, and the file always parses.
func TestStoreSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	s := Store{Dir: dir}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := s.Save("pubgmobile", storeTable(seed), false); err != nil {
					t.Error(err)
					return
				}
			}
		}(w + 1)
	}
	wg.Wait()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("want exactly one file, got %d", len(entries))
	}
	// Whatever writer won the final rename, the file must be whole.
	got, _, err := s.Load("pubgmobile")
	if err != nil {
		t.Fatalf("file torn after concurrent saves: %v", err)
	}
	if got.States() != 8 {
		t.Fatalf("states = %d, want 8", got.States())
	}
}

// A failed marshal or unwritable directory must not leave debris.
func TestStoreSaveNilTable(t *testing.T) {
	dir := t.TempDir()
	s := Store{Dir: dir}
	if err := s.Save("x", nil, false); err == nil {
		t.Fatal("nil table should fail")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("debris after failed save: %v", entries)
	}
}

// LoadAgent must skip non-.json names, so an in-flight temp file (were
// one ever observed) is invisible to directory scans.
func TestLoadAgentSkipsTempNames(t *testing.T) {
	dir := t.TempDir()
	s := Store{Dir: dir}
	if err := s.Save("spotify", storeTable(1), true); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "spotify.qtable.123.tmp"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := NewAgent(DefaultAgentConfig())
	if err := s.LoadAgent(a); err != nil {
		t.Fatalf("LoadAgent tripped on temp file: %v", err)
	}
	if a.TableFor("spotify") == nil {
		t.Fatal("real table not loaded")
	}
}
