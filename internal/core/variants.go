package core

import "math/rand"

// LearnAlgo selects the temporal-difference update rule. The paper uses
// Watkins Q-learning (Eq. 3); the variants are extensions for studying
// the design space:
//
//   - Double Q-learning decouples action selection from evaluation with
//     two tables, removing the max-operator's overestimation bias —
//     relevant here because the PPDW reward is noisy (power jitter,
//     FPS quantization edges) and noise is what max() overestimates;
//   - SARSA is the on-policy rule: it evaluates the ε-greedy behaviour
//     actually executed, which makes a deployed agent more conservative
//     around exploratory dips.
type LearnAlgo int

// Available update rules.
const (
	AlgoQLearning LearnAlgo = iota
	AlgoDoubleQ
	AlgoSARSA
)

var algoNames = [...]string{"qlearning", "doubleq", "sarsa"}

// String names the algorithm.
func (a LearnAlgo) String() string {
	if int(a) < len(algoNames) {
		return algoNames[a]
	}
	return "LearnAlgo?"
}

// Learner wraps one or two QTables under a chosen update rule. The
// agent talks to a Learner; the default configuration degenerates to
// the paper's single-table Q-learning with zero overhead.
type Learner struct {
	Algo LearnAlgo
	// A is the primary table (the only one for Q-learning/SARSA).
	A *QTable
	// B is the second estimator for Double Q-learning (nil otherwise).
	B *QTable
}

// NewLearner builds a learner over the given action count.
func NewLearner(algo LearnAlgo, actions int) *Learner {
	l := &Learner{Algo: algo, A: NewQTable(actions)}
	if algo == AlgoDoubleQ {
		l.B = NewQTable(actions)
	}
	return l
}

// Table returns the table used for greedy action selection. For Double
// Q-learning that is A; the policy's view stays a single table.
func (l *Learner) Table() *QTable { return l.A }

// CombinedBest returns the greedy action under the learner's value
// estimate: A for single-table rules, (A+B)/2 for Double Q.
func (l *Learner) CombinedBest(s StateKey) (int, float64) {
	if l.Algo != AlgoDoubleQ || l.B == nil {
		return l.A.Best(s)
	}
	ra, okA := l.A.Q[s]
	rb, okB := l.B.Q[s]
	if !okA && !okB {
		return 0, 0
	}
	best, bestV := 0, combinedAt(ra, rb, 0)
	for a := 1; a < l.A.Actions; a++ {
		if v := combinedAt(ra, rb, a); v > bestV {
			best, bestV = a, v
		}
	}
	return best, bestV
}

func combinedAt(ra, rb []float64, a int) float64 {
	var v float64
	if ra != nil {
		v += ra[a] / 2
	}
	if rb != nil {
		v += rb[a] / 2
	}
	return v
}

// Update applies one TD step for the transition (s, a, r, s'). next2 is
// the action taken in s' (needed by SARSA only; pass the behaviour
// policy's choice). rng drives Double Q's coin flip. Returns the TD
// error before the step.
func (l *Learner) Update(s StateKey, a int, reward float64, next StateKey, nextAction int, alpha, gamma float64, rng *rand.Rand) float64 {
	switch l.Algo {
	case AlgoSARSA:
		row := l.A.row(s)
		nextRow, ok := l.A.Q[next]
		var nextV float64
		if ok && nextAction < len(nextRow) {
			nextV = nextRow[nextAction]
		}
		td := reward + gamma*nextV - row[a]
		row[a] += alpha * td
		l.A.Visits[s]++
		l.A.Steps++
		return td

	case AlgoDoubleQ:
		// Flip which estimator updates; select with one, evaluate with
		// the other (van Hasselt 2010).
		upd, eval := l.A, l.B
		if rng.Intn(2) == 1 {
			upd, eval = l.B, l.A
		}
		row := upd.row(s)
		selAction, _ := upd.Best(next)
		var nextV float64
		if evalRow, ok := eval.Q[next]; ok {
			nextV = evalRow[selAction]
		}
		td := reward + gamma*nextV - row[a]
		row[a] += alpha * td
		// Bookkeeping lives on A so persistence/merging see one table.
		l.A.Visits[s]++
		l.A.Steps++
		return td

	default: // AlgoQLearning — the paper's Eq. 3.
		return l.A.Update(s, a, reward, next, alpha, gamma)
	}
}
