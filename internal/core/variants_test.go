package core

import (
	"math"
	"math/rand"
	"testing"

	"nextdvfs/internal/ctrl"
)

func TestLearnerQDegeneratesToPaperRule(t *testing.T) {
	// The default learner must produce byte-identical updates to the
	// raw Eq. 3 implementation.
	rng := rand.New(rand.NewSource(1))
	l := NewLearner(AlgoQLearning, 4)
	q := NewQTable(4)
	for i := 0; i < 500; i++ {
		s := StateKey(rng.Intn(6))
		a := rng.Intn(4)
		r := rng.Float64() - 0.5
		next := StateKey(rng.Intn(6))
		tdL := l.Update(s, a, r, next, rng.Intn(4), 0.2, 0.9, rng)
		tdQ := q.Update(s, a, r, next, 0.2, 0.9)
		if tdL != tdQ {
			t.Fatalf("step %d: td %g vs %g", i, tdL, tdQ)
		}
	}
	for s, row := range q.Q {
		for i := range row {
			if l.A.Q[s][i] != row[i] {
				t.Fatal("learner diverged from raw Q-learning")
			}
		}
	}
}

func TestSARSAUsesExecutedAction(t *testing.T) {
	l := NewLearner(AlgoSARSA, 3)
	rng := rand.New(rand.NewSource(2))
	s, next := StateKey(1), StateKey(2)
	l.A.row(next)[0] = 10 // greedy value
	l.A.row(next)[2] = 1  // executed action's value
	// SARSA must bootstrap from the executed action (2), not the max (0).
	td := l.Update(s, 0, 0, next, 2, 1.0, 0.5, rng)
	if math.Abs(td-0.5) > 1e-12 { // 0 + 0.5*1 − 0
		t.Fatalf("td = %g, want 0.5 (bootstrapped from executed action)", td)
	}
}

func TestDoubleQMaintainsTwoEstimators(t *testing.T) {
	l := NewLearner(AlgoDoubleQ, 3)
	if l.B == nil {
		t.Fatal("double Q needs a second table")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		l.Update(StateKey(i%4), i%3, 1, StateKey((i+1)%4), 0, 0.1, 0.9, rng)
	}
	if len(l.A.Q) == 0 || len(l.B.Q) == 0 {
		t.Fatal("both estimators should receive updates")
	}
	if a, _ := l.CombinedBest(StateKey(0)); a < 0 || a > 2 {
		t.Fatalf("combined best out of range: %d", a)
	}
}

func TestDoubleQReducesOverestimationUnderNoise(t *testing.T) {
	// Classic construction: all actions have true value 0 but rewards
	// are ±1 noise. Q-learning's max() drags values upward; Double Q
	// should sit closer to the truth.
	biasOf := func(algo LearnAlgo, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		l := NewLearner(algo, 8)
		s := StateKey(0)
		for i := 0; i < 30_000; i++ {
			a := rng.Intn(8)
			r := 1.0
			if rng.Intn(2) == 0 {
				r = -1.0
			}
			l.Update(s, a, r, s, rng.Intn(8), 0.1, 0.9, rng)
		}
		_, v := l.CombinedBest(s)
		return v
	}
	q := biasOf(AlgoQLearning, 4)
	dq := biasOf(AlgoDoubleQ, 4)
	if dq >= q {
		t.Fatalf("double Q value (%g) should be below Q-learning's optimistic estimate (%g)", dq, q)
	}
}

func TestLearnAlgoStrings(t *testing.T) {
	if AlgoQLearning.String() != "qlearning" || AlgoDoubleQ.String() != "doubleq" || AlgoSARSA.String() != "sarsa" {
		t.Fatal("algo names wrong")
	}
	if LearnAlgo(9).String() != "LearnAlgo?" {
		t.Fatal("unknown algo formatting")
	}
}

func TestAgentRunsWithEachAlgo(t *testing.T) {
	for _, algo := range []LearnAlgo{AlgoQLearning, AlgoDoubleQ, AlgoSARSA} {
		cfg := DefaultAgentConfig()
		cfg.Seed = 5
		cfg.Algo = algo
		a := NewAgent(cfg)
		a.AppChanged("app", false)
		act := &recordActuator{caps: map[string]int{}}
		for i := 1; i <= 30; i++ {
			stepAgent(a, act, int64(i)*100_000, 30, 4, 45, 38, [3]int{9, 5, 3})
		}
		tab := a.TableFor("app")
		if tab == nil || tab.Table == nil || tab.Table.Steps == 0 {
			t.Fatalf("%v: agent did not learn", algo)
		}
	}
}

func TestEmergencyTempOverridesPolicy(t *testing.T) {
	cfg := DefaultAgentConfig()
	cfg.Seed = 6
	cfg.EmergencyTempC = 80
	a := NewAgent(cfg)
	a.AppChanged("hot", true)
	act := &recordActuator{caps: map[string]int{}}

	// Normal temperature: policy actions at most ±1.
	snap, _ := snapWith([3]int{9, 5, 3}, 60, 0, 6, 70, 50)
	snap.NowUS = 100_000
	snap.AppName = "hot"
	a.Observe(snap)
	a.Control(snap, act)

	// Over the trip point: big and GPU caps must drop by 2 regardless
	// of the table.
	hot, _ := snapWith([3]int{9, 5, 3}, 60, 0, 8, 92, 60)
	hot.NowUS = 200_000
	hot.AppName = "hot"
	act2 := &recordActuator{caps: map[string]int{}}
	a.Observe(hot)
	a.Control(hot, act2)
	if act2.caps["big"] != 7 {
		t.Fatalf("emergency big cap = %d, want cur-2 = 7", act2.caps["big"])
	}
	if act2.caps["GPU"] != 1 {
		t.Fatalf("emergency GPU cap = %d, want cur-2 = 1", act2.caps["GPU"])
	}
}

func TestEmergencyDisabledByDefault(t *testing.T) {
	cfg := DefaultAgentConfig()
	if cfg.EmergencyTempC != 0 {
		t.Fatal("emergency layer must be opt-in (the paper's agent has none)")
	}
	// Frozen isolates the check from exploring starts: with the layer
	// disabled, even a scorching sensor must not force ±2 cap drops —
	// only ordinary ±1 policy actions may fire.
	cfg.Frozen = true
	a := NewAgent(cfg)
	a.AppChanged("x", false)
	act := &recordActuator{caps: map[string]int{}}
	snap, _ := snapWith([3]int{9, 5, 3}, 60, 0, 8, 99, 70)
	snap.AppName = "x"
	a.Control(snap, act)
	if v, ok := act.caps["big"]; ok && v < 8 {
		t.Fatalf("disabled emergency forced the big cap to %d (want >= cur-1)", v)
	}
	if v, ok := act.caps["GPU"]; ok && v < 2 {
		t.Fatalf("disabled emergency forced the GPU cap to %d (want >= cur-1)", v)
	}
}

var _ = ctrl.Snapshot{} // keep the import stable alongside helpers
