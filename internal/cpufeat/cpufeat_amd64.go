// Package cpufeat detects the instruction-set extensions the batched
// engine's vector kernels need. Detection runs once at init; other
// architectures compile the fallback file and report no support.
package cpufeat

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

// HasAVX2 reports whether the CPU and OS support AVX2: the AVX and
// OSXSAVE CPUID bits, YMM state enabled in XCR0, and the AVX2 feature
// bit itself.
var HasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 { // XMM and YMM state saved by the OS
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0
}
