//go:build !amd64

package cpufeat

// HasAVX2 is always false off amd64; the vector kernels' callers take
// their portable Go paths.
var HasAVX2 = false
