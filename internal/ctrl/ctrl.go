// Package ctrl defines the contract between the simulation engine and
// the power/thermal management policies that sit above the frequency
// governor: the Next agent (internal/core) and the Int. QoS PM baseline
// (internal/governor). Keeping the contract in its own package lets the
// agent stay independent of the engine — on the paper's platform the
// agent is an ordinary Android application reading sysfs, and this
// interface is the simulated equivalent of that surface.
package ctrl

// ClusterView is the read-only per-cluster state a controller observes:
// the same information the paper's agent reads from cpufreq/devfreq
// sysfs nodes.
type ClusterView struct {
	Name     string
	IsGPU    bool
	NumOPPs  int
	CurIdx   int
	CapIdx   int
	FloorIdx int
	FreqKHz  int
	// OPPKHz is the ascending frequency table (the sysfs
	// scaling_available_frequencies equivalent). Shared, do not mutate.
	OPPKHz []int
	// Util is busy/capacity at the current frequency (0..1).
	Util float64
	// NormUtil is busy/capacity at the maximum frequency (0..1) — the
	// scale-invariant load signal.
	NormUtil float64
}

// Snapshot is one observation of the whole platform, delivered to
// controllers on their observe/control cadence.
type Snapshot struct {
	NowUS int64
	// FPS is the current displayed frame rate (front-buffer updates over
	// the trailing second).
	FPS float64
	// PowerW is instantaneous whole-device power.
	PowerW float64
	// TempBigC is the big-cluster thermal sensor.
	TempBigC float64
	// TempDeviceC is the virtual device sensor.
	TempDeviceC float64
	// AmbientC is the ambient temperature (the paper's PPDW needs ΔT).
	AmbientC float64
	// AppName and AppClassGame identify the foreground application.
	AppName      string
	AppClassGame bool
	// Clusters in chip order.
	Clusters []ClusterView
}

// Actuator is the write surface a controller may use. The engine
// implements it on the chip; tests implement it with fakes.
type Actuator interface {
	// SetCap moves a cluster's maxfreq cap (the Next agent's only
	// actuation, mirroring scaling_max_freq).
	SetCap(cluster string, idx int)
	// SetFloor moves a cluster's minfreq floor.
	SetFloor(cluster string, idx int)
	// Pin sets floor = cap = idx, fixing the frequency outright (what
	// Int. QoS PM does).
	Pin(cluster string, idx int)
}

// Controller is a management policy invoked on two cadences: Observe on
// a fine sampling period (the Next agent samples FPS every 25 ms) and
// Control on the decision period (the agent acts every 100 ms).
type Controller interface {
	// Name identifies the policy in traces and reports.
	Name() string
	// ObserveIntervalUS is the sampling cadence (0 = no sampling).
	ObserveIntervalUS() int64
	// ControlIntervalUS is the decision cadence.
	ControlIntervalUS() int64
	// Observe records a fine-grained sample.
	Observe(snap Snapshot)
	// Control makes a decision and actuates.
	Control(snap Snapshot, act Actuator)
	// AppChanged notifies the controller that the foreground app
	// switched (the agent swaps Q-tables; Int. QoS re-baselines).
	AppChanged(name string, isGame bool)
	// Reset restores initial state for a fresh run.
	Reset()
}
