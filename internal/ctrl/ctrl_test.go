// Package ctrl_test pins the Controller/Snapshot/Actuator contracts
// from the outside: a probe controller rides a real sim engine run and
// asserts the cadence plumbing (ObserveIntervalUS/ControlIntervalUS),
// the lifecycle calls (Reset, AppChanged) and the actuator semantics
// (SetCap bounds the operating point, Pin fixes it outright) that every
// policy — the Next agent, Int. QoS PM, thermal capping — relies on.
package ctrl_test

import (
	"math/rand"
	"testing"

	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// probe records every call the engine makes and optionally actuates a
// scripted command at a given control step.
type probe struct {
	observeUS int64
	controlUS int64

	resets     int
	appChanges []string
	observeTs  []int64
	controlTs  []int64
	snaps      []ctrl.Snapshot

	script func(step int, snap ctrl.Snapshot, act ctrl.Actuator)
}

func (p *probe) Name() string             { return "probe" }
func (p *probe) ObserveIntervalUS() int64 { return p.observeUS }
func (p *probe) ControlIntervalUS() int64 { return p.controlUS }
func (p *probe) Observe(s ctrl.Snapshot)  { p.observeTs = append(p.observeTs, s.NowUS) }
func (p *probe) Control(s ctrl.Snapshot, act ctrl.Actuator) {
	p.controlTs = append(p.controlTs, s.NowUS)
	p.snaps = append(p.snaps, s)
	if p.script != nil {
		p.script(len(p.controlTs), s, act)
	}
}
func (p *probe) AppChanged(name string, _ bool) { p.appChanges = append(p.appChanges, name) }
func (p *probe) Reset()                         { p.resets++ }

// runProbe executes a short Note 9 session with the probe installed.
func runProbe(t *testing.T, p *probe, secs float64, apps ...*workload.ProfileApp) sim.Result {
	t.Helper()
	if len(apps) == 0 {
		apps = []*workload.ProfileApp{workload.YouTube()}
	}
	rng := rand.New(rand.NewSource(3))
	var scripts []session.Script
	for _, app := range apps {
		scripts = append(scripts, session.ForApp(app, session.Seconds(secs/float64(len(apps))), rng))
	}
	plat := platform.MustGet(platform.DefaultName)
	cfg := plat.Config(&session.Timeline{Scripts: scripts}, 3)
	cfg.Controller = p
	eng, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng.Run()
}

// TestObserveControlCadence pins the interval plumbing: the engine must
// call Observe every ObserveIntervalUS and Control every
// ControlIntervalUS — the paper's 25 ms / 100 ms split is exactly this
// contract.
func TestObserveControlCadence(t *testing.T) {
	p := &probe{observeUS: 25_000, controlUS: 100_000}
	runProbe(t, p, 10)
	if len(p.observeTs) == 0 || len(p.controlTs) == 0 {
		t.Fatal("controller never invoked")
	}
	for i := 1; i < len(p.observeTs); i++ {
		if d := p.observeTs[i] - p.observeTs[i-1]; d != 25_000 {
			t.Fatalf("observe gap %d µs at %d, want 25000", d, i)
		}
	}
	for i := 1; i < len(p.controlTs); i++ {
		if d := p.controlTs[i] - p.controlTs[i-1]; d != 100_000 {
			t.Fatalf("control gap %d µs at %d, want 100000", d, i)
		}
	}
	// ~4 observes per control (25 ms vs 100 ms).
	if ratio := float64(len(p.observeTs)) / float64(len(p.controlTs)); ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("observe/control ratio = %.2f, want ≈4", ratio)
	}
}

// TestZeroObserveIntervalDisablesSampling: a controller that reports 0
// must never receive Observe (the Int. QoS PM/pin-controller shape).
func TestZeroObserveIntervalDisablesSampling(t *testing.T) {
	p := &probe{observeUS: 0, controlUS: 50_000}
	runProbe(t, p, 5)
	if len(p.observeTs) != 0 {
		t.Fatalf("Observe called %d times despite a 0 interval", len(p.observeTs))
	}
	if len(p.controlTs) == 0 {
		t.Fatal("Control starved")
	}
}

// TestLifecycleCalls pins Reset-then-AppChanged ordering: the engine
// resets the controller once per run and announces every foreground
// app, in timeline order.
func TestLifecycleCalls(t *testing.T) {
	p := &probe{controlUS: 100_000}
	runProbe(t, p, 8, workload.Spotify(), workload.Lineage())
	if p.resets != 1 {
		t.Fatalf("resets = %d, want 1 per run", p.resets)
	}
	if len(p.appChanges) != 2 || p.appChanges[0] != workload.NameSpotify || p.appChanges[1] != workload.NameLineage {
		t.Fatalf("app changes = %v", p.appChanges)
	}
	// Snapshots during each script must carry that script's app.
	for _, s := range p.snaps {
		if s.AppName != workload.NameSpotify && s.AppName != workload.NameLineage {
			t.Fatalf("snapshot app %q not in the timeline", s.AppName)
		}
	}
}

// TestSnapshotInvariants: every snapshot must carry coherent cluster
// views — the sysfs-equivalent surface the agent quantizes.
func TestSnapshotInvariants(t *testing.T) {
	p := &probe{controlUS: 100_000}
	runProbe(t, p, 5)
	for _, s := range p.snaps {
		if len(s.Clusters) == 0 {
			t.Fatal("snapshot without clusters")
		}
		for _, c := range s.Clusters {
			if c.NumOPPs <= 0 || len(c.OPPKHz) != c.NumOPPs {
				t.Fatalf("%s: OPP table inconsistent (%d vs %d)", c.Name, len(c.OPPKHz), c.NumOPPs)
			}
			if c.CurIdx < 0 || c.CurIdx >= c.NumOPPs {
				t.Fatalf("%s: CurIdx %d out of range", c.Name, c.CurIdx)
			}
			if c.FreqKHz != c.OPPKHz[c.CurIdx] {
				t.Fatalf("%s: FreqKHz %d != OPP[%d] %d", c.Name, c.FreqKHz, c.CurIdx, c.OPPKHz[c.CurIdx])
			}
			if c.CurIdx > c.CapIdx || c.CurIdx < c.FloorIdx {
				t.Fatalf("%s: CurIdx %d outside [floor %d, cap %d]", c.Name, c.CurIdx, c.FloorIdx, c.CapIdx)
			}
		}
	}
}

// TestSetCapBoundsOperatingPoint: after SetCap(big, 2) every later
// snapshot must show the big cluster at or below OPP 2 — the Next
// agent's only actuation.
func TestSetCapBoundsOperatingPoint(t *testing.T) {
	const capIdx = 2
	p := &probe{controlUS: 100_000}
	p.script = func(step int, snap ctrl.Snapshot, act ctrl.Actuator) {
		if step == 1 {
			act.SetCap("big", capIdx)
		}
	}
	runProbe(t, p, 6)
	if len(p.snaps) < 3 {
		t.Fatal("too few control steps")
	}
	for _, s := range p.snaps[1:] {
		for _, c := range s.Clusters {
			if c.Name != "big" {
				continue
			}
			if c.CapIdx != capIdx {
				t.Fatalf("big CapIdx = %d after SetCap(%d)", c.CapIdx, capIdx)
			}
			if c.CurIdx > capIdx {
				t.Fatalf("big runs at OPP %d above its cap %d", c.CurIdx, capIdx)
			}
		}
	}
}

// TestPinFixesFrequency: Pin must set floor = cap = idx so the governor
// cannot move the cluster at all (the Int. QoS PM actuation).
func TestPinFixesFrequency(t *testing.T) {
	const pinIdx = 3
	p := &probe{controlUS: 100_000}
	p.script = func(step int, snap ctrl.Snapshot, act ctrl.Actuator) {
		if step == 1 {
			act.Pin("LITTLE", pinIdx)
		}
	}
	runProbe(t, p, 6)
	for _, s := range p.snaps[1:] {
		for _, c := range s.Clusters {
			if c.Name != "LITTLE" {
				continue
			}
			if c.FloorIdx != pinIdx || c.CapIdx != pinIdx {
				t.Fatalf("LITTLE floor/cap = %d/%d after Pin(%d)", c.FloorIdx, c.CapIdx, pinIdx)
			}
			if c.CurIdx != pinIdx {
				t.Fatalf("LITTLE runs at OPP %d despite Pin(%d)", c.CurIdx, pinIdx)
			}
		}
	}
}

// TestSetFloorRaisesOperatingPoint: a floor must keep the cluster at or
// above the index (the input-boost shape).
func TestSetFloorRaisesOperatingPoint(t *testing.T) {
	const floorIdx = 4
	p := &probe{controlUS: 100_000}
	p.script = func(step int, snap ctrl.Snapshot, act ctrl.Actuator) {
		if step == 1 {
			act.SetFloor("big", floorIdx)
		}
	}
	runProbe(t, p, 6)
	for _, s := range p.snaps[1:] {
		for _, c := range s.Clusters {
			if c.Name != "big" {
				continue
			}
			if c.FloorIdx != floorIdx {
				t.Fatalf("big FloorIdx = %d after SetFloor(%d)", c.FloorIdx, floorIdx)
			}
			if c.CurIdx < floorIdx {
				t.Fatalf("big runs at OPP %d below its floor %d", c.CurIdx, floorIdx)
			}
		}
	}
}
