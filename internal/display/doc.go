// Package display models Android's VSync display path as the paper
// describes it: a front buffer shown by the panel plus two back buffers
// the CPU/GPU render into (triple buffering). The panel refreshes on
// every VSync (16.67 ms at the default 60 Hz); if a newly rendered frame
// is waiting in a back buffer it is flipped to the front, otherwise the
// previous frame is repeated — a frame drop, the stutter the user
// perceives.
//
// The package also provides the FPS estimator the Next agent samples
// every 25 ms: the count of front-buffer updates over a one-second
// sliding horizon.
package display
