package display

import (
	"math/rand"
	"testing"
)

// refFPS is the pre-cursor reference implementation: a full scan of the
// retained flip ring. The windowed cursor must agree with it exactly.
func refFPS(p *Pipeline, nowUS int64) float64 {
	cutoff := nowUS - p.horizonUS
	n := 0
	for i := 0; i < p.flipCount; i++ {
		if t := p.flipTimes[i]; t > cutoff && t <= nowUS {
			n++
		}
	}
	return float64(n)
}

// TestFPSCursorMatchesScan drives a pipeline through a random vsync
// workload with an FPS query every tick (the engine's access pattern)
// and checks the O(1) cursor against the full-scan reference at every
// step, across refresh switches and a mid-run Reset.
func TestFPSCursorMatchesScan(t *testing.T) {
	p := NewPipeline(60)
	rng := rand.New(rand.NewSource(11))
	now := int64(0)
	for tick := 0; tick < 300_000; tick++ {
		now += 1000
		if rng.Intn(2000) == 0 {
			rates := []int{60, 90, 120, 30}
			p.SetRefresh(rates[rng.Intn(len(rates))], now)
		}
		if rng.Intn(50000) == 0 {
			p.Reset()
			now = 0
			continue
		}
		if rng.Float64() < 0.7 {
			p.OfferFrame()
		}
		p.Tick(now, rng.Float64() < 0.5)
		want := refFPS(p, now)
		if got := p.FPS(now); got != want {
			t.Fatalf("tick %d now %d: cursor FPS %g, reference %g", tick, now, got, want)
		}
		// Re-query at the same instant must be stable.
		if got := p.FPS(now); got != want {
			t.Fatalf("tick %d: repeated query drifted from %g", tick, want)
		}
	}
}

// TestFPSNonMonotonicQuery pins the fallback: querying an older instant
// after newer ones must still count exactly (tests and ad-hoc probes do
// this; the engine never does).
func TestFPSNonMonotonicQuery(t *testing.T) {
	p := NewPipeline(60)
	now := int64(0)
	for tick := 0; tick < 3000; tick++ {
		now += 1000
		p.OfferFrame()
		p.Tick(now, true)
	}
	if got := p.FPS(now); got != 60 {
		t.Fatalf("warm FPS = %g, want 60", got)
	}
	// 500 ms into the run only ~30 flips had happened yet — but those
	// early flips have been overwritten in the ring by now, so the exact
	// answer over the retained set is what the old implementation would
	// have returned too.
	for _, q := range []int64{now - 1, now - 400_000, now} {
		if got, want := p.FPS(q), refFPS(p, q); got != want {
			t.Fatalf("FPS(%d) = %g, reference %g", q, got, want)
		}
	}
	// And a later monotonic query still works after the detour.
	p.Tick(now+1000, true)
	if got, want := p.FPS(now+1000), refFPS(p, now+1000); got != want {
		t.Fatalf("post-detour FPS = %g, reference %g", got, want)
	}
}

func TestFPSZeroAllocQuery(t *testing.T) {
	p := NewPipeline(120)
	now := int64(0)
	allocs := testing.AllocsPerRun(2000, func() {
		now += 1000
		p.OfferFrame()
		p.Tick(now, true)
		p.FPS(now)
	})
	if allocs != 0 {
		t.Fatalf("Tick+FPS allocates %v per tick, want 0", allocs)
	}
}
