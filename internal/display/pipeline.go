package display

import "fmt"

// BackBuffers is the number of back buffers in Android's triple-buffered
// VSync scheme (1 front + 2 back).
const BackBuffers = 2

// Pipeline is the VSync-synchronized display path. Time is expressed in
// microseconds of simulation time; the engine calls Tick once per
// simulation step with the current timestamp and whether the workload
// currently wants frames on screen (drops are only counted when a frame
// was actually expected).
type Pipeline struct {
	RefreshHz int

	periodUS  int64
	nextVSync int64
	queued    int // completed frames waiting in back buffers
	displayed int64
	dropped   int64
	vsyncs    int64
	flipTimes []int64 // ring of recent front-buffer update times
	flipHead  int
	flipCount int
	horizonUS int64

	// Trailing-window cursor for the per-tick FPS query. flipSeq counts
	// every flip ever recorded; winStart is the sequence number of the
	// oldest flip still inside the trailing horizon as of the latest
	// monotonic FPS call, so the hot path is an O(1)-amortized eviction
	// walk instead of a full ring scan. maxNowUS/lastFlipUS gate the
	// fast path: a query older than either falls back to the exact scan
	// (the cursor only ever moves forward in time).
	flipSeq    int64
	winStart   int64
	maxNowUS   int64
	lastFlipUS int64
}

// NewPipeline returns a pipeline refreshing at refreshHz (60 for the
// Note 9 panel; the paper notes 90/120 Hz panels exist and the model
// supports them).
func NewPipeline(refreshHz int) *Pipeline {
	if refreshHz <= 0 {
		panic(fmt.Sprintf("display: refresh rate must be positive, got %d", refreshHz))
	}
	p := &Pipeline{
		RefreshHz: refreshHz,
		periodUS:  int64(1_000_000 / refreshHz),
		horizonUS: 1_000_000,
	}
	p.nextVSync = p.periodUS
	// Ring sized for the highest rate we expect within the horizon.
	p.flipTimes = make([]int64, refreshHz+1)
	return p
}

// PeriodUS returns the VSync period in microseconds (16 666 at 60 Hz).
func (p *Pipeline) PeriodUS() int64 { return p.periodUS }

// BackBufferFree reports whether a renderer may start another frame.
func (p *Pipeline) BackBufferFree() bool { return p.queued < BackBuffers }

// OfferFrame places a completed frame into a back buffer. It returns
// false (and discards nothing) when both back buffers are already full —
// the renderer must stall, which is exactly the back-pressure VSync
// applies to a fast producer.
func (p *Pipeline) OfferFrame() bool {
	if p.queued >= BackBuffers {
		return false
	}
	p.queued++
	return true
}

// Tick processes any VSync events that have become due at nowUS.
// expecting reports whether the workload currently has a frame in flight
// or pending demand; a VSync that finds no completed frame counts as a
// drop only when expecting is true (an idle home screen repeating its
// front buffer is not stutter).
//
// It returns the number of VSync events processed this call (0 or 1 for
// ticks shorter than the refresh period).
func (p *Pipeline) Tick(nowUS int64, expecting bool) int {
	n := 0
	for nowUS >= p.nextVSync {
		p.vsyncs++
		if p.queued > 0 {
			p.queued--
			p.displayed++
			p.recordFlip(p.nextVSync)
		} else if expecting {
			p.dropped++
		}
		p.nextVSync += p.periodUS
		n++
	}
	return n
}

func (p *Pipeline) recordFlip(atUS int64) {
	p.flipTimes[p.flipHead] = atUS
	p.flipHead++
	if p.flipHead == len(p.flipTimes) {
		p.flipHead = 0
	}
	if p.flipCount < len(p.flipTimes) {
		p.flipCount++
	}
	p.flipSeq++
	p.lastFlipUS = atUS
}

// slot maps a flip sequence number onto its ring index. Valid for the
// retained sequences [flipSeq-flipCount, flipSeq).
func (p *Pipeline) slot(seq int64) int {
	i := p.flipHead - int(p.flipSeq-seq)
	if i < 0 {
		i += len(p.flipTimes)
	}
	return i
}

// FPS returns the frame rate over the trailing one-second horizon ending
// at nowUS: the number of front-buffer updates with timestamps in
// (nowUS-1s, nowUS]. This is the instantaneous frame rate the Next agent
// samples every 25 ms.
//
// Queries at non-decreasing times (the engine's tick loop) are O(1)
// amortized: flips are recorded in time order, so the window cursor
// only ever evicts from the old end. A query older than a previous one
// (or older than the newest flip) takes the exact full-ring scan
// instead — same count either way.
func (p *Pipeline) FPS(nowUS int64) float64 {
	cutoff := nowUS - p.horizonUS
	if nowUS >= p.maxNowUS && nowUS >= p.lastFlipUS {
		p.maxNowUS = nowUS
		// Flips overwritten in the ring are gone from the countable set
		// regardless of age; the ring is sized to hold a full horizon at
		// the panel's peak rate, so this clamp only bites callers that
		// let far more than a second of flips pile up between queries.
		if lo := p.flipSeq - int64(p.flipCount); p.winStart < lo {
			p.winStart = lo
		}
		for p.winStart < p.flipSeq && p.flipTimes[p.slot(p.winStart)] <= cutoff {
			p.winStart++
		}
		return float64(p.flipSeq - p.winStart)
	}
	n := 0
	for i := 0; i < p.flipCount; i++ {
		if t := p.flipTimes[i]; t > cutoff && t <= nowUS {
			n++
		}
	}
	return float64(n)
}

// Displayed returns the total number of frames shown.
func (p *Pipeline) Displayed() int64 { return p.displayed }

// Dropped returns the total number of missed-VSync drops.
func (p *Pipeline) Dropped() int64 { return p.dropped }

// VSyncs returns the total number of refresh events processed.
func (p *Pipeline) VSyncs() int64 { return p.vsyncs }

// Queued returns the number of completed frames waiting in back buffers.
func (p *Pipeline) Queued() int { return p.queued }

// Reset restores the pipeline to its initial state.
func (p *Pipeline) Reset() {
	p.nextVSync = p.periodUS
	p.queued = 0
	p.displayed = 0
	p.dropped = 0
	p.vsyncs = 0
	p.flipHead = 0
	p.flipCount = 0
	p.flipSeq = 0
	p.winStart = 0
	p.maxNowUS = 0
	p.lastFlipUS = 0
	for i := range p.flipTimes {
		p.flipTimes[i] = 0
	}
}
