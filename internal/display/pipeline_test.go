package display

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVSyncCadence60Hz(t *testing.T) {
	p := NewPipeline(60)
	if p.PeriodUS() != 16_666 {
		t.Fatalf("period = %d µs, want 16666", p.PeriodUS())
	}
	// One second of 1 ms ticks → 60 VSyncs (with the integer period,
	// 1e6/16666 = 60.0024 → 60).
	total := 0
	for now := int64(1000); now <= 1_000_000; now += 1000 {
		total += p.Tick(now, false)
	}
	if total != 60 {
		t.Fatalf("vsyncs in 1 s = %d, want 60", total)
	}
}

func TestPerfectProducerHits60FPS(t *testing.T) {
	p := NewPipeline(60)
	for now := int64(1000); now <= 2_000_000; now += 1000 {
		if p.BackBufferFree() {
			p.OfferFrame()
		}
		p.Tick(now, true)
	}
	if got := p.FPS(2_000_000); got != 60 {
		t.Fatalf("FPS = %g, want 60", got)
	}
	if p.Dropped() != 0 {
		t.Fatalf("drops = %d, want 0", p.Dropped())
	}
}

func TestFPSNeverExceedsRefreshRate(t *testing.T) {
	// Property: however frames are offered, displayed FPS <= refresh Hz.
	rng := rand.New(rand.NewSource(6))
	f := func(offers []bool) bool {
		p := NewPipeline(60)
		now := int64(0)
		i := 0
		for now < 3_000_000 {
			now += 1000
			// Offer up to two frames per tick according to the fuzz input.
			for k := 0; k < 2; k++ {
				if i < len(offers) && offers[i] {
					p.OfferFrame()
				}
				i++
			}
			p.Tick(now, true)
			if p.FPS(now) > 60 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestBackPressure(t *testing.T) {
	p := NewPipeline(60)
	if !p.OfferFrame() || !p.OfferFrame() {
		t.Fatal("two back buffers should accept frames")
	}
	if p.OfferFrame() {
		t.Fatal("third offer must be rejected (only 2 back buffers)")
	}
	if p.BackBufferFree() {
		t.Fatal("back buffers should be full")
	}
	p.Tick(16_666, true) // one flip frees one buffer
	if !p.BackBufferFree() {
		t.Fatal("a buffer should be free after VSync consumed a frame")
	}
}

func TestDropsOnlyCountWhenExpecting(t *testing.T) {
	p := NewPipeline(60)
	// 30 VSyncs of idle screen: no drops.
	for now := int64(1000); now <= 500_000; now += 1000 {
		p.Tick(now, false)
	}
	if p.Dropped() != 0 {
		t.Fatalf("idle drops = %d, want 0", p.Dropped())
	}
	// 30 VSyncs with demand but no frames: all drops.
	before := p.VSyncs()
	for now := int64(501_000); now <= 1_000_000; now += 1000 {
		p.Tick(now, true)
	}
	missed := p.VSyncs() - before
	if p.Dropped() != missed {
		t.Fatalf("drops = %d, want %d (every expected VSync missed)", p.Dropped(), missed)
	}
}

func TestHalfRateProducerGets30FPS(t *testing.T) {
	p := NewPipeline(60)
	// Offer a frame every 33.3 ms (video-style cadence).
	nextFrame := int64(33_333)
	for now := int64(1000); now <= 2_000_000; now += 1000 {
		if now >= nextFrame {
			p.OfferFrame()
			nextFrame += 33_333
		}
		p.Tick(now, true)
	}
	got := p.FPS(2_000_000)
	if got < 28 || got > 32 {
		t.Fatalf("FPS = %g, want ≈30", got)
	}
}

func TestFPSDecaysAfterProducerStops(t *testing.T) {
	p := NewPipeline(60)
	now := int64(0)
	for ; now <= 1_000_000; now += 1000 {
		if p.BackBufferFree() {
			p.OfferFrame()
		}
		p.Tick(now, true)
	}
	if p.FPS(now) < 55 {
		t.Fatalf("warm FPS = %g", p.FPS(now))
	}
	// Producer stops; a second later FPS must be 0.
	for ; now <= 2_100_000; now += 1000 {
		p.Tick(now, false)
	}
	if got := p.FPS(now); got != 0 {
		t.Fatalf("FPS after stop = %g, want 0", got)
	}
}

func TestHighRefreshPanels(t *testing.T) {
	// The paper mentions 90/120 Hz panels; the pipeline must support them.
	for _, hz := range []int{90, 120} {
		p := NewPipeline(hz)
		for now := int64(500); now <= 2_000_000; now += 500 {
			if p.BackBufferFree() {
				p.OfferFrame()
			}
			p.Tick(now, true)
		}
		got := p.FPS(2_000_000)
		if got < float64(hz)-2 || got > float64(hz) {
			t.Fatalf("%d Hz panel FPS = %g", hz, got)
		}
	}
}

func TestDisplayedPlusDroppedNeverExceedsVSyncs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		p := NewPipeline(60)
		for now := int64(1000); now <= 1_000_000; now += 1000 {
			if r.Intn(3) == 0 && p.BackBufferFree() {
				p.OfferFrame()
			}
			p.Tick(now, r.Intn(2) == 0)
		}
		return p.Displayed()+p.Dropped() <= p.VSyncs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	p := NewPipeline(60)
	p.OfferFrame()
	p.Tick(20_000, true)
	p.Reset()
	if p.Displayed() != 0 || p.Dropped() != 0 || p.VSyncs() != 0 || p.Queued() != 0 {
		t.Fatal("reset did not clear counters")
	}
	if p.FPS(1_000_000) != 0 {
		t.Fatal("reset did not clear FPS history")
	}
}

func TestNewPipelinePanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPipeline(0)
}
