package display

import (
	"fmt"
	"sort"
)

// SetRefresh switches the panel's refresh rate at nowUS — the adaptive-
// refresh mechanism shipping panels use (120↔60↔10 Hz) and the scenario
// engine's per-phase panel hook. The next VSync is re-armed one new
// period after the switch point; accumulated frame/drop counters and
// the trailing-second flip history are preserved, so FPS reads stay
// continuous across the switch.
func (p *Pipeline) SetRefresh(refreshHz int, nowUS int64) {
	if refreshHz <= 0 {
		panic(fmt.Sprintf("display: refresh rate must be positive, got %d", refreshHz))
	}
	if refreshHz == p.RefreshHz {
		return
	}
	p.ensureFlipRing(refreshHz + 1)
	p.RefreshHz = refreshHz
	p.periodUS = int64(1_000_000 / refreshHz)
	p.nextVSync = nowUS + p.periodUS
}

// ensureFlipRing grows the flip-history ring to at least n slots,
// preserving the recorded flips in chronological order. The ring must
// hold one second of flips at the highest rate the panel will run.
func (p *Pipeline) ensureFlipRing(n int) {
	if len(p.flipTimes) >= n {
		return
	}
	times := make([]int64, n)
	// Oldest-first extraction: when the ring is full the oldest entry
	// sits at flipHead; otherwise entries occupy [0, flipCount).
	start := 0
	if p.flipCount == len(p.flipTimes) {
		start = p.flipHead
	}
	for i := 0; i < p.flipCount; i++ {
		times[i] = p.flipTimes[(start+i)%len(p.flipTimes)]
	}
	p.flipTimes = times
	p.flipHead = p.flipCount % len(times)
}

// RefreshStep is one piecewise-constant segment of a refresh schedule:
// from AtUS onward the panel runs at RefreshHz.
type RefreshStep struct {
	AtUS      int64
	RefreshHz int
}

// RefreshSchedule drives the panel rate over a run. Unlike the thermal
// ambient schedule it needs no time-0 step: until the first step fires,
// At returns 0 and the pipeline keeps the platform's native rate.
type RefreshSchedule struct {
	steps []RefreshStep
	idx   int
}

// NewRefreshSchedule builds a schedule from steps, sorted by time.
func NewRefreshSchedule(steps []RefreshStep) (*RefreshSchedule, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("display: refresh schedule needs at least one step")
	}
	s := &RefreshSchedule{steps: append([]RefreshStep(nil), steps...), idx: -1}
	sort.Slice(s.steps, func(i, j int) bool { return s.steps[i].AtUS < s.steps[j].AtUS })
	for i, st := range s.steps {
		if st.RefreshHz <= 0 {
			return nil, fmt.Errorf("display: refresh schedule step %d has rate %d", i, st.RefreshHz)
		}
		if i > 0 && st.AtUS == s.steps[i-1].AtUS {
			return nil, fmt.Errorf("display: refresh schedule has duplicate step at %d µs", st.AtUS)
		}
	}
	return s, nil
}

// Start rewinds the cursor for a fresh run.
func (s *RefreshSchedule) Start() { s.idx = -1 }

// At returns the scheduled rate at nowUS, or 0 while no step has fired
// yet (keep the platform default). nowUS must be non-decreasing between
// Start calls.
func (s *RefreshSchedule) At(nowUS int64) int {
	for s.idx+1 < len(s.steps) && s.steps[s.idx+1].AtUS <= nowUS {
		s.idx++
	}
	if s.idx < 0 {
		return 0
	}
	return s.steps[s.idx].RefreshHz
}

// Steps returns a copy of the schedule's segments (for reporting).
func (s *RefreshSchedule) Steps() []RefreshStep {
	return append([]RefreshStep(nil), s.steps...)
}
