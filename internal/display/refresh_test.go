package display

import "testing"

func TestSetRefreshReArmsVSync(t *testing.T) {
	p := NewPipeline(60)
	if p.PeriodUS() != 16_666 {
		t.Fatalf("60 Hz period = %d", p.PeriodUS())
	}
	// Run a few VSyncs at 60 Hz with frames queued.
	now := int64(0)
	for i := 0; i < 5; i++ {
		p.OfferFrame()
		now += p.PeriodUS()
		p.Tick(now, true)
	}
	if p.Displayed() != 5 {
		t.Fatalf("displayed %d, want 5", p.Displayed())
	}

	p.SetRefresh(120, now)
	if p.RefreshHz != 120 || p.PeriodUS() != 8_333 {
		t.Fatalf("after switch: %d Hz, period %d", p.RefreshHz, p.PeriodUS())
	}
	// Flip history survives the switch: FPS still sees the 60 Hz frames.
	if fps := p.FPS(now); fps != 5 {
		t.Fatalf("FPS after switch = %v, want 5 (history preserved)", fps)
	}
	// Next VSync lands one new period after the switch point.
	if n := p.Tick(now+8_332, true); n != 0 {
		t.Fatalf("VSync fired %d periods early", n)
	}
	p.OfferFrame()
	if n := p.Tick(now+8_333, true); n != 1 {
		t.Fatalf("VSync did not fire at the new period (n=%d)", n)
	}
	if p.Displayed() != 6 {
		t.Fatalf("displayed %d, want 6", p.Displayed())
	}

	// No-op switch keeps cadence untouched.
	before := p.RefreshHz
	p.SetRefresh(120, now+1)
	if p.RefreshHz != before {
		t.Fatal("same-rate switch should be a no-op")
	}
}

func TestSetRefreshGrowsFlipRing(t *testing.T) {
	p := NewPipeline(60)
	// Fill the 60-slot ring completely so growth must rotate it.
	now := int64(0)
	for i := 0; i < 70; i++ {
		p.OfferFrame()
		now += p.PeriodUS()
		p.Tick(now, true)
	}
	fpsBefore := p.FPS(now)
	p.SetRefresh(120, now)
	if len(p.flipTimes) < 121 {
		t.Fatalf("ring not grown: %d slots", len(p.flipTimes))
	}
	if got := p.FPS(now); got != fpsBefore {
		t.Fatalf("FPS changed across ring growth: %v → %v", fpsBefore, got)
	}
}

func TestRefreshSchedule(t *testing.T) {
	s, err := NewRefreshSchedule([]RefreshStep{
		{AtUS: 5_000_000, RefreshHz: 120},
		{AtUS: 9_000_000, RefreshHz: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	if got := s.At(0); got != 0 {
		t.Fatalf("before first step At = %d, want 0 (platform default)", got)
	}
	if got := s.At(5_000_000); got != 120 {
		t.Fatalf("At(5s) = %d, want 120", got)
	}
	if got := s.At(10_000_000); got != 60 {
		t.Fatalf("At(10s) = %d, want 60", got)
	}
	s.Start()
	if got := s.At(1); got != 0 {
		t.Fatalf("after restart At(1) = %d, want 0", got)
	}

	if _, err := NewRefreshSchedule(nil); err == nil {
		t.Fatal("empty schedule should fail")
	}
	if _, err := NewRefreshSchedule([]RefreshStep{{AtUS: 0, RefreshHz: 0}}); err == nil {
		t.Fatal("non-positive rate should fail")
	}
	if _, err := NewRefreshSchedule([]RefreshStep{
		{AtUS: 3, RefreshHz: 60}, {AtUS: 3, RefreshHz: 90},
	}); err == nil {
		t.Fatal("duplicate step times should fail")
	}
}
