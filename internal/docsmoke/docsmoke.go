// Package docsmoke keeps the documentation honest: it extracts the
// shell commands shown in fenced code blocks of the repo's markdown
// files and validates every flag they pass against the CLI's actual
// flag set, so a renamed or removed flag fails CI instead of rotting
// in a README example. It also checks that every package carries a doc
// comment. cmd/docsmoke is the CLI the CI lint job runs.
//
// The library is pure (no subprocesses, no filesystem walks beyond
// what the caller hands it); cmd/docsmoke wires it to `go run -h` and
// the repo layout.
package docsmoke

import (
	"bufio"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Command is one CLI invocation found in a fenced code block.
type Command struct {
	// File and Line locate the invocation for error reports (Line is
	// 1-based in the source markdown).
	File string
	Line int
	// Tool is the command's base name ("nextfleetd"), normalized from
	// either a bare invocation or a `go run ./cmd/<tool>` form.
	Tool string
	// Sub is the subcommand for multi-command tools ("run" in
	// `nextplan run -plan …`): the first argument when it is a bare
	// lowercase word rather than a flag. Tools whose first positional
	// argument merely looks like a subcommand are handled by the
	// flagsFor callback falling back to the tool's root flag set.
	Sub string
	// Flags are the flag names the invocation passes, without leading
	// dashes or "=value" suffixes, in order of appearance.
	Flags []string
}

// fenceRE matches a code-fence line and captures the info string.
var fenceRE = regexp.MustCompile("^\\s*```\\s*([A-Za-z0-9_+-]*)")

// shellLangs are the fence info strings treated as shell examples.
var shellLangs = map[string]bool{"": true, "sh": true, "shell": true, "bash": true, "console": true, "text": true}

// ExtractCommands scans markdown for fenced shell blocks and returns
// every invocation of one of the named tools. Lines are split on pipes
// so each stage of a pipeline is validated; `$ ` prompts and trailing
// backslash continuations are handled; lines inside non-shell fences
// (go, json, …) are ignored.
func ExtractCommands(file string, markdown []byte, tools map[string]bool) []Command {
	var out []Command
	inFence := false
	shell := false
	var cont strings.Builder
	contLine := 0
	sc := bufio.NewScanner(strings.NewReader(string(markdown)))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if m := fenceRE.FindStringSubmatch(text); m != nil && strings.Contains(text, "```") {
			if inFence {
				inFence = false
				continue
			}
			inFence = true
			shell = shellLangs[strings.ToLower(m[1])]
			cont.Reset()
			continue
		}
		if !inFence || !shell {
			continue
		}
		t := strings.TrimSpace(text)
		t = strings.TrimPrefix(t, "$ ")
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		if cont.Len() == 0 {
			contLine = line
		}
		if strings.HasSuffix(t, "\\") {
			cont.WriteString(strings.TrimSuffix(t, "\\"))
			cont.WriteString(" ")
			continue
		}
		cont.WriteString(t)
		out = append(out, parseLine(file, contLine, cont.String(), tools)...)
		cont.Reset()
	}
	return out
}

// parseLine splits one shell line into pipeline stages and returns the
// stages that invoke a known tool.
func parseLine(file string, line int, text string, tools map[string]bool) []Command {
	var out []Command
	for _, stage := range strings.Split(text, "|") {
		fields := strings.Fields(stage)
		tool, args, ok := resolveTool(fields, tools)
		if !ok {
			continue
		}
		sub := ""
		if len(args) > 0 && subRE.MatchString(args[0]) {
			sub, args = args[0], args[1:]
		}
		out = append(out, Command{File: file, Line: line, Tool: tool, Sub: sub, Flags: flagNames(args)})
	}
	return out
}

// subRE matches a plausible subcommand word: bare lowercase, so file
// arguments ("trace.json") and placeholders ("FILE") don't qualify.
var subRE = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// resolveTool recognizes `nextfleetd …`, `./nextfleetd …` and
// `go run ./cmd/nextfleetd …` (with an optional module path prefix)
// against the known tool set.
func resolveTool(fields []string, tools map[string]bool) (string, []string, bool) {
	if len(fields) == 0 {
		return "", nil, false
	}
	if fields[0] == "go" && len(fields) >= 3 && fields[1] == "run" {
		base := filepath.Base(strings.TrimSuffix(fields[2], "/"))
		if tools[base] {
			return base, fields[3:], true
		}
		return "", nil, false
	}
	base := filepath.Base(fields[0])
	if tools[base] {
		return base, fields[1:], true
	}
	return "", nil, false
}

// flagNames pulls the flag names out of an argument list: tokens that
// start with "-" followed by a letter, stripped of dashes and any
// "=value" suffix. A bare "--" ends flag parsing, shell metacharacters
// end the stage.
func flagNames(args []string) []string {
	var out []string
	for _, a := range args {
		if a == "--" || a == "&&" || a == ";" || a == ">" || a == ">>" || a == "<" {
			break
		}
		if len(a) < 2 || a[0] != '-' {
			continue
		}
		name := strings.TrimLeft(a, "-")
		if name == "" || !isLetter(name[0]) {
			continue // negative number or bare dashes, not a flag
		}
		if i := strings.IndexByte(name, '='); i >= 0 {
			name = name[:i]
		}
		out = append(out, name)
	}
	return out
}

func isLetter(b byte) bool {
	return ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z')
}

// helpFlagRE matches one flag definition line of `flag` package -h
// output: two leading spaces, a dash, the name.
var helpFlagRE = regexp.MustCompile(`(?m)^\s+-([A-Za-z][A-Za-z0-9._-]*)`)

// ParseHelpFlags extracts the defined flag names from a CLI's -h/usage
// output (the standard library flag package's format). "h" and "help"
// are always accepted — the flag package handles them implicitly.
func ParseHelpFlags(help string) map[string]bool {
	flags := map[string]bool{"h": true, "help": true}
	for _, m := range helpFlagRE.FindAllStringSubmatch(help, -1) {
		flags[m[1]] = true
	}
	return flags
}

// Problem is one documented invocation that no longer matches the CLI.
type Problem struct {
	Command Command
	Flag    string // the unknown flag ("" when the tool itself failed)
	Detail  string
}

func (p Problem) String() string {
	name := p.Command.Tool
	if p.Command.Sub != "" {
		name += " " + p.Command.Sub
	}
	if p.Flag != "" {
		return fmt.Sprintf("%s:%d: %s has no flag -%s (documented invocation drifted)", p.Command.File, p.Command.Line, name, p.Flag)
	}
	return fmt.Sprintf("%s:%d: %s: %s", p.Command.File, p.Command.Line, name, p.Detail)
}

// Check validates every command's flags against the tool's flag set,
// loading each (tool, subcommand) pair's flags once via flagsFor
// (typically an exec of `go run ./cmd/<tool> [<sub>] -h`). For a
// command whose Sub is really a positional argument, flagsFor is
// expected to fall back to the tool's root flag set.
func Check(cmds []Command, flagsFor func(tool, sub string) (map[string]bool, error)) []Problem {
	var problems []Problem
	cache := make(map[string]map[string]bool)
	failed := make(map[string]error)
	for _, c := range cmds {
		key := c.Tool + "\x00" + c.Sub
		flags, ok := cache[key]
		if !ok {
			if err, bad := failed[key]; bad {
				problems = append(problems, Problem{Command: c, Detail: err.Error()})
				continue
			}
			var err error
			flags, err = flagsFor(c.Tool, c.Sub)
			if err != nil {
				failed[key] = err
				problems = append(problems, Problem{Command: c, Detail: err.Error()})
				continue
			}
			cache[key] = flags
		}
		for _, f := range c.Flags {
			if !flags[f] {
				problems = append(problems, Problem{Command: c, Flag: f})
			}
		}
	}
	return problems
}

// MissingPackageDocs walks the given directories (each holding Go
// packages one level deep, like internal/ or cmd/) and reports every
// package whose files carry no package doc comment. Test-only
// packages are skipped.
func MissingPackageDocs(roots ...string) ([]string, error) {
	var missing []string
	for _, root := range roots {
		entries, err := os.ReadDir(root)
		if err != nil {
			return nil, fmt.Errorf("docsmoke: %w", err)
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			dir := filepath.Join(root, e.Name())
			documented, hasGo, err := packageDocumented(dir)
			if err != nil {
				return nil, err
			}
			if hasGo && !documented {
				missing = append(missing, dir)
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// packageDocumented parses the non-test Go files of one directory and
// reports whether any carries a package doc comment.
func packageDocumented(dir string) (documented, hasGo bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, fmt.Errorf("docsmoke: %w", err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, true, fmt.Errorf("docsmoke: %w", err)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, hasGo, nil
}
