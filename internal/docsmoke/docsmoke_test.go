package docsmoke

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var testTools = map[string]bool{"nextfleetd": true, "nextbench": true, "benchgate": true}

func TestExtractCommandsFromFencedBlocks(t *testing.T) {
	md := []byte("# Title\n" +
		"Run the server:\n" +
		"```sh\n" +
		"$ nextfleetd -addr 127.0.0.1:8077 -snapshot /tmp/s\n" +
		"nextbench -fleet 64 -rollout\n" +
		"# a comment line\n" +
		"```\n" +
		"```go\n" +
		"x := nextfleetd() // not a shell block\n" +
		"```\n" +
		"```\n" +
		"go run ./cmd/nextfleetd -bench 16 -aggregators 4\n" +
		"```\n")
	cmds := ExtractCommands("doc.md", md, testTools)
	if len(cmds) != 3 {
		t.Fatalf("extracted %d commands, want 3: %+v", len(cmds), cmds)
	}
	if cmds[0].Tool != "nextfleetd" || strings.Join(cmds[0].Flags, ",") != "addr,snapshot" {
		t.Fatalf("first command wrong: %+v", cmds[0])
	}
	if cmds[0].Line != 4 {
		t.Fatalf("first command line = %d, want 4", cmds[0].Line)
	}
	if cmds[1].Tool != "nextbench" || strings.Join(cmds[1].Flags, ",") != "fleet,rollout" {
		t.Fatalf("second command wrong: %+v", cmds[1])
	}
	if cmds[2].Tool != "nextfleetd" || strings.Join(cmds[2].Flags, ",") != "bench,aggregators" {
		t.Fatalf("go-run command wrong: %+v", cmds[2])
	}
}

func TestExtractCommandsPipelineAndContinuation(t *testing.T) {
	md := []byte("```sh\n" +
		"go test -run NONE -bench X . | \\\n" +
		"    go run ./cmd/benchgate -baselines BENCH_fleet.json\n" +
		"```\n")
	cmds := ExtractCommands("ci.md", md, testTools)
	if len(cmds) != 1 {
		t.Fatalf("extracted %d commands, want 1 (go test is not a tool): %+v", len(cmds), cmds)
	}
	if cmds[0].Tool != "benchgate" || strings.Join(cmds[0].Flags, ",") != "baselines" {
		t.Fatalf("pipeline command wrong: %+v", cmds[0])
	}
}

func TestFlagNamesSkipsNegativeNumbersAndValues(t *testing.T) {
	got := flagNames([]string{"-seed", "-1", "-scale=0.5", "--rollout", "arg", "--", "-notaflag"})
	want := "seed,scale,rollout"
	if strings.Join(got, ",") != want {
		t.Fatalf("flagNames = %v, want %s", got, want)
	}
}

func TestParseHelpFlags(t *testing.T) {
	help := "Usage of nextfleetd:\n" +
		"  -addr string\n" +
		"    \tlisten address (default \"127.0.0.1:8077\")\n" +
		"  -bench int\n" +
		"    \tbench mode\n" +
		"  -flush-every duration\n" +
		"    \tcadence\n"
	flags := ParseHelpFlags(help)
	for _, f := range []string{"addr", "bench", "flush-every", "h", "help"} {
		if !flags[f] {
			t.Fatalf("missing flag %q in %v", f, flags)
		}
	}
	if flags["string"] || flags["int"] {
		t.Fatalf("type words misread as flags: %v", flags)
	}
}

func TestCheckFlagsDriftIsReported(t *testing.T) {
	cmds := []Command{
		{File: "README.md", Line: 10, Tool: "nextfleetd", Flags: []string{"addr", "gone"}},
		{File: "README.md", Line: 12, Tool: "nextbench", Flags: []string{"fleet"}},
	}
	problems := Check(cmds, func(tool, sub string) (map[string]bool, error) {
		return map[string]bool{"addr": true, "fleet": true}, nil
	})
	if len(problems) != 1 {
		t.Fatalf("got %d problems, want 1: %v", len(problems), problems)
	}
	if problems[0].Flag != "gone" || !strings.Contains(problems[0].String(), "README.md:10") {
		t.Fatalf("wrong problem: %v", problems[0])
	}
}

// Multi-command tools: the first bare lowercase word after the tool is
// its subcommand, each (tool, sub) pair resolves its own flag set, and
// a positional argument that merely looks like one is not mistaken for
// a flag name.
func TestSubcommandExtractionAndCheck(t *testing.T) {
	md := []byte("```sh\n" +
		"nextplan run -plan examples/plan/smoke.json -out results.jsonl\n" +
		"nextplan analyze -plan examples/plan/smoke.json -results results.jsonl -json\n" +
		"nextsim -app gaming trace.json\n" +
		"```\n")
	cmds := ExtractCommands("docs/x.md", md, map[string]bool{"nextplan": true, "nextsim": true})
	if len(cmds) != 3 {
		t.Fatalf("extracted %d commands, want 3: %+v", len(cmds), cmds)
	}
	if cmds[0].Sub != "run" || strings.Join(cmds[0].Flags, ",") != "plan,out" {
		t.Fatalf("run command = %+v", cmds[0])
	}
	if cmds[1].Sub != "analyze" || strings.Join(cmds[1].Flags, ",") != "plan,results,json" {
		t.Fatalf("analyze command = %+v", cmds[1])
	}
	if cmds[2].Tool != "nextsim" || cmds[2].Sub != "" {
		t.Fatalf("file argument misread as subcommand: %+v", cmds[2])
	}

	asked := make(map[string]bool)
	problems := Check(cmds, func(tool, sub string) (map[string]bool, error) {
		asked[tool+"/"+sub] = true
		switch sub {
		case "run":
			return map[string]bool{"plan": true, "out": true}, nil
		case "analyze":
			return map[string]bool{"plan": true, "results": true, "json": true}, nil
		default:
			return map[string]bool{"app": true}, nil
		}
	})
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
	for _, key := range []string{"nextplan/run", "nextplan/analyze", "nextsim/"} {
		if !asked[key] {
			t.Fatalf("flag sets resolved per (tool, sub): asked %v, missing %s", asked, key)
		}
	}
}

func TestMissingPackageDocs(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("internal/good/good.go", "// Package good is documented.\npackage good\n")
	write("internal/bad/bad.go", "package bad\n")
	write("internal/testonly/x_test.go", "package testonly\n")
	missing, err := MissingPackageDocs(filepath.Join(root, "internal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || filepath.Base(missing[0]) != "bad" {
		t.Fatalf("missing = %v, want just the bad package", missing)
	}
}

// The real repository must pass its own gate: every internal and cmd
// package documented, and the committed markdown free of flag drift
// (flag sets faked from the real CLI sources would duplicate them, so
// this test only checks extraction runs cleanly over the live files —
// the full end-to-end check is cmd/docsmoke in CI).
func TestRepoMarkdownExtractsWithoutPanic(t *testing.T) {
	repoRoot := filepath.Join("..", "..")
	missing, err := MissingPackageDocs(filepath.Join(repoRoot, "internal"), filepath.Join(repoRoot, "cmd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("packages without doc comments: %v", missing)
	}
	for _, f := range []string{"README.md", filepath.Join("docs", "architecture.md"), filepath.Join("docs", "operations.md")} {
		data, err := os.ReadFile(filepath.Join(repoRoot, f))
		if err != nil {
			t.Fatal(err)
		}
		ExtractCommands(f, data, map[string]bool{"nextfleetd": true, "nextbench": true, "benchgate": true, "docsmoke": true, "nextsim": true, "nexttrain": true, "nextprof": true})
	}
}
