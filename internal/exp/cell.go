package exp

import (
	"fmt"
	"strings"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/learner"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/scenario"
	"nextdvfs/internal/sim"
)

// Cell is one plan-runnable grid unit: evaluate one management scheme
// on one scenario × platform at one seed. It is the same work a
// ScenarioGrid cell does — agent-training schemes first train a fresh
// agent on TrainSessions differently-seeded sessions, then every
// scheme replays the evaluation timeline compiled at Seed — exposed as
// a standalone unit so sweep drivers (internal/plan) can assemble
// their own grids, deduplicate cells and route them through
// internal/batch with their own lockstep spans.
type Cell struct {
	// Scenario and Platform name registry presets (both required).
	Scenario string
	Platform string
	// Scheme names the management stack ("" = schedutil).
	Scheme string
	// Learner / Explorer configure agent-training schemes ("" = watkins
	// / egreedy); governor schemes ignore them.
	Learner  string
	Explorer string
	// Seed is the cell's base seed, with the ScenarioGrid derivation:
	// training sessions run at Seed+1…Seed+TrainSessions and the
	// evaluation timeline compiles at Seed+500. Cells sharing (Scenario,
	// Platform, Seed, DurationScale) replay byte-identical evaluation
	// timelines, so their results are directly comparable — and
	// lockstep-batchable.
	Seed int64
	// TrainSessions is how many sessions train an agent scheme's agent
	// (0 → 6); governor schemes ignore it.
	TrainSessions int
	// DurationScale shrinks the scenario (0 or 1 = full length).
	DurationScale float64
}

// Validate resolves every name against its registry.
func (c Cell) Validate() error {
	if _, err := scenario.Get(c.Scenario); err != nil {
		return err
	}
	if _, err := platform.Get(c.Platform); err != nil {
		return err
	}
	spec, err := GetScheme(c.Scheme)
	if err != nil {
		return err
	}
	if spec.TrainsAgent {
		if !learner.Known(c.Learner) {
			return fmt.Errorf("exp: unknown learner %q (have: %s)", c.Learner, strings.Join(learner.Names(), ", "))
		}
		if !learner.KnownExplorer(c.Explorer) {
			return fmt.Errorf("exp: unknown explorer %q (have: %s)", c.Explorer, strings.Join(learner.ExplorerNames(), ", "))
		}
	}
	return nil
}

// Job converts the cell into a batch.Job. lockstepKey, when non-empty,
// marks the job batchable: the caller guarantees that consecutive jobs
// carrying the same key share (Scenario, Platform, Seed, DurationScale)
// so their evaluation lanes compile identical timeline structure.
func (c Cell) Job(lockstepKey string) (batch.Job, error) {
	if err := c.Validate(); err != nil {
		return batch.Job{}, err
	}
	scn := scenario.MustGet(c.Scenario)
	scn = scenario.Scaled(scn, c.DurationScale)
	plat := platform.MustGet(c.Platform)
	spec, _ := GetScheme(c.Scheme)
	lrn := ""
	if spec.TrainsAgent {
		lrn = learner.Normalize(c.Learner)
	}
	trainSessions := c.TrainSessions
	if trainSessions <= 0 {
		trainSessions = 6
	}
	seed := c.Seed
	explorer := c.Explorer
	return batch.Job{
		App:         scn.Name,
		Scheme:      spec.Name,
		Platform:    plat.Name,
		Seed:        seed,
		LockstepKey: lockstepKey,
		Build: func() (sim.Config, error) {
			return scenarioCellConfig(scn, plat, spec, lrn, explorer, seed, trainSessions)
		},
	}, nil
}

// RunCell evaluates a single cell on a private engine — the one-off
// entry point; sweeps should assemble jobs and use batch.Run.
func RunCell(c Cell) (sim.Result, error) {
	job, err := c.Job("")
	if err != nil {
		return sim.Result{}, err
	}
	cfg, err := job.Build()
	if err != nil {
		return sim.Result{}, err
	}
	eng, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return eng.Run(), nil
}
