package exp

import (
	"encoding/json"
	"testing"

	"nextdvfs/internal/batch"
)

// A Cell is the plan-runnable unit behind ScenarioGrid cells: with the
// grid's seed derivation it must reproduce the grid row byte-for-byte,
// scalar or lockstep.
func TestCellMatchesScenarioGridRow(t *testing.T) {
	opts := ScenarioOptions{
		Seed:          42,
		Scenarios:     []string{"doomscroll"},
		Platforms:     []string{"note9"},
		Schemes:       []string{"schedutil", "next"},
		DurationScale: 0.02,
		TrainSessions: 2,
		Parallel:      1,
	}
	rows, err := ScenarioGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	base := opts.Seed // si=0, pi=0 → grid base seed is opts.Seed
	for _, row := range rows {
		cell := Cell{
			Scenario:      row.Scenario,
			Platform:      row.Platform,
			Scheme:        row.Scheme,
			Learner:       row.Learner,
			Seed:          base,
			TrainSessions: opts.TrainSessions,
			DurationScale: opts.DurationScale,
		}
		got, err := RunCell(cell)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(got)
		b, _ := json.Marshal(row.Result)
		if string(a) != string(b) {
			t.Fatalf("cell %s/%s result differs from grid row:\n%s\nvs\n%s", row.Scenario, row.Scheme, a, b)
		}
	}
}

// Lockstep cells land on the same bytes as scalar ones, in job order.
func TestCellLockstepByteIdentical(t *testing.T) {
	cells := []Cell{
		{Scenario: "doomscroll", Platform: "note9", Scheme: "schedutil", Seed: 7, DurationScale: 0.02},
		{Scenario: "doomscroll", Platform: "note9", Scheme: "powersave", Seed: 7, DurationScale: 0.02},
		{Scenario: "doomscroll", Platform: "note9", Scheme: "performance", Seed: 7, DurationScale: 0.02},
	}
	build := func(key string) []batch.Job {
		jobs := make([]batch.Job, len(cells))
		for i, c := range cells {
			j, err := c.Job(key)
			if err != nil {
				t.Fatal(err)
			}
			jobs[i] = j
		}
		return jobs
	}
	scalar := batch.Run(build(""), batch.Options{Parallel: 1})
	lock := batch.Run(build("span"), batch.Options{Parallel: 1})
	a, _ := json.Marshal(scalar)
	b, _ := json.Marshal(lock)
	if string(a) != string(b) {
		t.Fatalf("lockstep cells differ from scalar:\n%s\nvs\n%s", a, b)
	}
}

func TestCellValidateRejectsUnknownNames(t *testing.T) {
	bad := []Cell{
		{Scenario: "nope", Platform: "note9"},
		{Scenario: "doomscroll", Platform: "nope"},
		{Scenario: "doomscroll", Platform: "note9", Scheme: "nope"},
		{Scenario: "doomscroll", Platform: "note9", Scheme: "next", Learner: "nope"},
		{Scenario: "doomscroll", Platform: "note9", Scheme: "next", Explorer: "nope"},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("cell %d: Validate accepted %+v", i, c)
		}
	}
	ok := Cell{Scenario: "doomscroll", Platform: "note9", Scheme: "powersave", Learner: "nope"}
	if err := ok.Validate(); err != nil {
		t.Errorf("governor cell must ignore the learner field: %v", err)
	}
}
