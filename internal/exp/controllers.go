package exp

import (
	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/governor"
	"nextdvfs/internal/platform"
)

// pinController pins cluster frequencies once at the first control tick
// (the Fig. 4 sweep's "userspace" actuation).
type pinController struct {
	caps map[string]int
	done bool
}

func (p *pinController) Name() string             { return "pin" }
func (p *pinController) ObserveIntervalUS() int64 { return 0 }
func (p *pinController) ControlIntervalUS() int64 { return 10_000 }
func (p *pinController) Observe(ctrl.Snapshot)    {}
func (p *pinController) Control(snap ctrl.Snapshot, act ctrl.Actuator) {
	if p.done {
		return
	}
	for name, idx := range p.caps {
		act.Pin(name, idx)
	}
	p.done = true
}
func (p *pinController) AppChanged(string, bool) {}
func (p *pinController) Reset()                  { p.done = false }

// NewIntQoS builds the Int. QoS PM baseline wired to the Note 9 power
// model — its published cost model gets the same fidelity the simulator
// burns with.
func NewIntQoS() ctrl.Controller {
	return NewIntQoSOn(platform.MustGet(platform.DefaultName))
}

// NewIntQoSOn builds Int. QoS PM against the given platform's own chip
// and power model, so the baseline's cost model tracks whatever device
// the grid is sweeping.
func NewIntQoSOn(p platform.Platform) ctrl.Controller {
	chip := p.NewChip()
	pm := p.NewPower()
	est := func(cluster string, idx int, util float64) float64 {
		c := chip.Cluster(cluster)
		if c == nil {
			return 0
		}
		return pm.PowerAt(c, idx, util, 50)
	}
	return governor.NewIntQoSPM(governor.DefaultIntQoSPMConfig(), est)
}
