// Package exp contains one runner per figure of the paper's evaluation,
// each returning a structured result that cmd/nextbench prints and the
// root bench_test.go wraps in testing.B benchmarks:
//
//	Fig1  — FPS + big/LITTLE frequency trace of the home→Facebook→
//	        Spotify session under schedutil (the motivation figure);
//	Fig3  — power and big-CPU temperature for the same session,
//	        schedutil vs a trained Next agent;
//	Fig4  — the PPDW-vs-FPS trend on Lineage 2 Revolution, including
//	        the worst-case anchors at FPS 0/1/10;
//	Fig6  — training time vs FPS state-granularity, online vs cloud;
//	Fig7  — average power per application for schedutil, Next and
//	        Int. QoS PM (games only);
//	Fig8  — average peak temperatures (big cluster and device) for the
//	        same matrix.
//
// Beyond the figures, the package hosts the registry-driven grids:
// ScenarioGrid (scenario × platform × scheme × learner) and
// LearnerGrid (learner × app convergence/energy/QoS comparison), both
// over the batch pool, plus the management-scheme registry (Schemes)
// that every surface — grids, facade, CLIs — resolves names through.
//
// Runners are deterministic given their seed.
package exp
