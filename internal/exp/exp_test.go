package exp

import (
	"math/rand"
	"reflect"
	"testing"

	"nextdvfs/internal/core"
	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// Experiment-level tests use reduced budgets: they verify the harness'
// mechanics and the direction of every effect, not the full calibrated
// magnitudes (cmd/nextbench and bench_test.go produce those).

func TestTrainProducesUsableAgent(t *testing.T) {
	agent, stats := Train(workload.Spotify, TrainOptions{
		MaxSessions: 4, SessionSecs: 90, BaseSeed: 5,
	})
	if stats.App != workload.NameSpotify {
		t.Fatalf("stats app = %q", stats.App)
	}
	if stats.Sessions != 4 {
		t.Fatalf("sessions = %d (budget must always run)", stats.Sessions)
	}
	tab := agent.TableFor(workload.NameSpotify)
	if tab == nil || tab.Table == nil || tab.Table.States() == 0 {
		t.Fatal("no Q-table learned")
	}
	if stats.States == 0 || stats.Steps == 0 || stats.TrainedUS == 0 {
		t.Fatalf("stats incomplete: %+v", stats)
	}
}

func TestFig1ProducesPaperPhenomena(t *testing.T) {
	r := Fig1(42)
	if r.Result.DurationS != 280 {
		t.Fatalf("session length = %g s, want 280", r.Result.DurationS)
	}
	if len(r.Samples) < 80 {
		t.Fatalf("samples = %d, want ≈93 at 3 s cadence", len(r.Samples))
	}
	// The Spotify stretch must show the waste phenomenon: near-zero FPS
	// with the big cluster well above its floor.
	var spotifySamples, wasteSamples int
	for _, s := range r.Samples {
		if s.App != workload.NameSpotify {
			continue
		}
		spotifySamples++
		if s.FPS < 5 && s.FreqKHz[0] > 1_000_000 {
			wasteSamples++
		}
	}
	if spotifySamples == 0 {
		t.Fatal("no spotify samples")
	}
	if frac := float64(wasteSamples) / float64(spotifySamples); frac < 0.3 {
		t.Fatalf("waste fraction = %.2f — Fig. 1's phenomenon (high freq at ~0 FPS) not reproduced", frac)
	}
}

func TestNextBeatsSchedutilOnSpotify(t *testing.T) {
	agent, _ := Train(workload.Spotify, TrainOptions{
		MaxSessions: 6, SessionSecs: 120, BaseSeed: 11,
	})
	tl := func() *session.Timeline {
		return session.EvalTimeline(workload.Spotify(), rand.New(rand.NewSource(777)))
	}
	sched := RunTimeline(tl(), 777, nil)
	next := RunTimeline(tl(), 777, agent)
	if next.AvgPowerW >= sched.AvgPowerW {
		t.Fatalf("Next (%.2f W) must beat schedutil (%.2f W) on the paper's waste case",
			next.AvgPowerW, sched.AvgPowerW)
	}
	// QoS must be approximately preserved on this non-game app.
	if sched.ActiveAvgFPS > 0 && next.ActiveAvgFPS < 0.8*sched.ActiveAvgFPS {
		t.Fatalf("Next QoS collapsed: %.1f vs %.1f FPS", next.ActiveAvgFPS, sched.ActiveAvgFPS)
	}
}

func TestFig4ShapeMatchesPaper(t *testing.T) {
	r := Fig4(42)
	var frontier, worst []PPDWPoint
	for _, p := range r.Points {
		if p.Worst {
			worst = append(worst, p)
		} else {
			frontier = append(frontier, p)
		}
	}
	if len(frontier) < 5 {
		t.Fatalf("frontier points = %d", len(frontier))
	}
	// Trend: PPDW at the highest-FPS point beats the lowest-FPS point
	// (the paper's increasing trend).
	lo, hi := frontier[0], frontier[0]
	for _, p := range frontier {
		if p.FPS < lo.FPS {
			lo = p
		}
		if p.PPDW > hi.PPDW {
			hi = p
		}
	}
	if hi.PPDW <= lo.PPDW {
		t.Fatalf("PPDW trend not increasing: lo(fps=%.0f)=%.3f hi=%.3f", lo.FPS, lo.PPDW, hi.PPDW)
	}
	// Worst anchors: tiny, ordered 0 < fps1 < fps10, all below frontier.
	if len(worst) != 3 {
		t.Fatalf("worst anchors = %d, want 3", len(worst))
	}
	if worst[0].PPDW != 0 {
		t.Fatal("FPS 0 worst anchor must be exactly 0 (paper: 0.0000)")
	}
	if !(worst[1].PPDW < worst[2].PPDW && worst[2].PPDW < lo.PPDW) {
		t.Fatalf("worst ordering wrong: %v", worst)
	}
	if !r.Bounds.InRange(hi.PPDW) {
		t.Fatalf("best frontier PPDW %.3f outside Eq. 2 bounds [%g, %g]", hi.PPDW, r.Bounds.Worst, r.Bounds.Best)
	}
}

func TestFig6CoverageGrowsWithGranularity(t *testing.T) {
	pts := Fig6(Fig6Options{
		Seed: 3, MaxSessions: 8, SessionSecs: 60,
		Levels: []int{2, 61}, Repeats: 2,
	})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].OnlineS < pts[0].OnlineS {
		t.Fatalf("training time must grow with FPS levels: %v", pts)
	}
	for _, p := range pts {
		if p.CloudS >= p.OnlineS {
			t.Fatalf("cloud must be faster than online: %+v", p)
		}
		// Cloud time includes the ≤4 s comms overhead.
		if p.CloudS < 4 {
			t.Fatalf("cloud time %.1f s below the comms overhead", p.CloudS)
		}
	}
}

// The full figure matrix must not depend on the worker-pool size: the
// tentpole invariant, checked end-to-end through Evaluate.
func TestEvaluateDeterministicAcrossParallelism(t *testing.T) {
	opts := EvalOptions{Seed: 11, MaxSessions: 2, SessionSecs: 30}
	opts.Parallel = 1
	serial := Evaluate(opts)
	opts.Parallel = 8
	parallel := Evaluate(opts)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("Evaluate results depend on the worker-pool size")
	}
}

// Sweeping the evaluation to another registry platform must work and
// produce different absolute numbers than the Note 9.
func TestEvaluateAppOnAlternatePlatform(t *testing.T) {
	opts := EvalOptions{Seed: 9, MaxSessions: 2, SessionSecs: 30}
	note9 := EvaluateApp(workload.NameSpotify, opts, nil)
	opts.Platform = "mid6"
	mid6 := EvaluateApp(workload.NameSpotify, opts, nil)
	if note9.Sched.AvgPowerW == mid6.Sched.AvgPowerW {
		t.Fatal("mid6 reproduced note9 power exactly — platform not applied")
	}
}

func TestEvaluateAppGameIncludesIntQoS(t *testing.T) {
	row := EvaluateApp(workload.NamePubG, EvalOptions{Seed: 9, MaxSessions: 3, SessionSecs: 60}, nil)
	if !row.Game {
		t.Fatal("pubg must be a game")
	}
	if row.IntQoS == nil {
		t.Fatal("games must include the Int. QoS PM comparison")
	}
	if row.Sched.AvgPowerW <= 0 || row.Next.AvgPowerW <= 0 {
		t.Fatal("missing results")
	}
}

func TestEvaluateAppNonGameSkipsIntQoS(t *testing.T) {
	row := EvaluateApp(workload.NameChrome, EvalOptions{Seed: 9, MaxSessions: 3, SessionSecs: 60}, nil)
	if row.Game || row.IntQoS != nil {
		t.Fatal("non-games must not be evaluated under Int. QoS PM")
	}
	if row.IntQoSPowerSavingPct != 0 {
		t.Fatal("IntQoS saving must be zero for non-games")
	}
}

func TestPinControllerPinsOnce(t *testing.T) {
	pin := &pinController{caps: map[string]int{"big": 2}}
	snap := ctrl.Snapshot{Clusters: []ctrl.ClusterView{{Name: "big", NumOPPs: 18}}}
	rec := &recordActuator{}
	pin.Control(snap, rec)
	if rec.pins["big"] != 2 {
		t.Fatal("pin not applied")
	}
	rec2 := &recordActuator{}
	pin.Control(snap, rec2)
	if len(rec2.pins) != 0 {
		t.Fatal("pin must be one-shot")
	}
	pin.Reset()
	rec3 := &recordActuator{}
	pin.Control(snap, rec3)
	if rec3.pins["big"] != 2 {
		t.Fatal("reset must re-arm the pin")
	}
}

type recordActuator struct {
	pins map[string]int
}

func (r *recordActuator) SetCap(string, int)   {}
func (r *recordActuator) SetFloor(string, int) {}
func (r *recordActuator) Pin(c string, i int) {
	if r.pins == nil {
		r.pins = map[string]int{}
	}
	r.pins[c] = i
}

// --- failure injection ---------------------------------------------------

// TestAgentSurvivesSensorDropout injects a stuck big-temperature sensor
// and verifies the agent still runs and produces sane results.
func TestAgentSurvivesSensorDropout(t *testing.T) {
	cfg := core.DefaultAgentConfig()
	cfg.Seed = 13
	agent := core.NewAgent(cfg)
	rng := rand.New(rand.NewSource(13))
	tl := &session.Timeline{Scripts: []session.Script{
		session.ForApp(workload.Facebook(), session.Seconds(60), rng),
	}}
	res := runWith(tl, 13, agent, func(c *sim.Config) {
		c.SnapshotFault = func(s *ctrl.Snapshot) {
			s.TempBigC = 21 // sensor stuck at ambient
		}
	})
	if res.AvgPowerW <= 0 {
		t.Fatal("run with faulty sensor produced no result")
	}
	tab := agent.TableFor(workload.NameFacebook)
	if tab == nil || tab.Table == nil || tab.Table.Steps == 0 {
		t.Fatal("agent stopped learning under sensor fault")
	}
}

// TestAgentSurvivesFPSJitter injects ±10 FPS measurement noise.
func TestAgentSurvivesFPSJitter(t *testing.T) {
	cfg := core.DefaultAgentConfig()
	cfg.Seed = 17
	agent := core.NewAgent(cfg)
	noise := rand.New(rand.NewSource(99))
	rng := rand.New(rand.NewSource(17))
	tl := &session.Timeline{Scripts: []session.Script{
		session.ForApp(workload.YouTube(), session.Seconds(60), rng),
	}}
	res := runWith(tl, 17, agent, func(c *sim.Config) {
		c.SnapshotFault = func(s *ctrl.Snapshot) {
			s.FPS += (noise.Float64() - 0.5) * 20
			if s.FPS < 0 {
				s.FPS = 0
			}
		}
	})
	if res.FramesDisplayed == 0 {
		t.Fatal("no frames under FPS jitter")
	}
}

// TestStaleQTableCrossApp runs a Lineage-trained agent on Facebook: the
// agent must fall back to fresh training for the unseen app rather than
// misapplying the game's table.
func TestStaleQTableCrossApp(t *testing.T) {
	agent, _ := Train(workload.Lineage, TrainOptions{MaxSessions: 3, SessionSecs: 60, BaseSeed: 19})
	before := agent.TableFor(workload.NameLineage).Table.Steps

	tl := session.EvalTimeline(workload.Facebook(), rand.New(rand.NewSource(555)))
	res := RunTimeline(tl, 555, agent)
	if res.AvgPowerW <= 0 {
		t.Fatal("cross-app run failed")
	}
	fb := agent.TableFor(workload.NameFacebook)
	if fb == nil || fb.Table == nil || fb.Table.Steps == 0 {
		t.Fatal("agent did not open a fresh table for the unseen app")
	}
	if agent.TableFor(workload.NameLineage).Table.Steps != before {
		t.Fatal("the game's table must not be touched by another app's session")
	}
}

func TestHighRefreshSupportsFasterPanels(t *testing.T) {
	rows := HighRefresh(7)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, hz := range []int{60, 90, 120} {
		r := rows[i]
		if r.RefreshHz != hz {
			t.Fatalf("row %d rate = %d", i, r.RefreshHz)
		}
		// schedutil must actually reach the faster panels' rates.
		if r.Sched.ActiveAvgFPS < 0.75*float64(hz) {
			t.Fatalf("%d Hz panel: schedutil FPS %.1f too low", hz, r.Sched.ActiveAvgFPS)
		}
		if r.Next.AvgPowerW >= r.Sched.AvgPowerW {
			t.Fatalf("%d Hz panel: Next (%.2f W) did not save vs schedutil (%.2f W)",
				hz, r.Next.AvgPowerW, r.Sched.AvgPowerW)
		}
	}
}
