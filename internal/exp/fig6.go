package exp

import (
	"math/rand"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/cloud"
	"nextdvfs/internal/core"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/session"
	"nextdvfs/internal/workload"
)

// Fig6Point is one x-position of Fig. 6: training time at a given FPS
// state granularity, online vs cloud.
type Fig6Point struct {
	// FPSLevels is the number of distinct frame-rate values admitted
	// into the state (the paper's x-axis; 60 ⇒ no quantization).
	FPSLevels int
	// OnlineS is on-device training time in (simulated) seconds.
	OnlineS float64
	// CloudS is the user-visible wall time when the same training runs
	// in the cloud (speedup + ≤4 s communication overhead).
	CloudS float64
	// Converged reports whether the policy actually reached its plateau
	// within the session budget (false = censored at the budget).
	Converged bool
}

// Fig6Options sizes the sweep.
type Fig6Options struct {
	Seed        int64
	MaxSessions int
	SessionSecs float64
	Levels      []int
	// Repeats averages the training time over this many seeds per level
	// (tabular RL convergence is noisy; the paper reports averages).
	Repeats int
	Trainer cloud.TrainerConfig
	// Platform names the registry device to sweep on ("" = note9).
	Platform string
	// Parallel sizes the batch worker pool for the level×repeat grid
	// (0 = GOMAXPROCS, 1 = sequential); every cell trains its own agent,
	// so the sweep is embarrassingly parallel and order-independent.
	Parallel int
}

func (o *Fig6Options) defaults() {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 18
	}
	if o.SessionSecs <= 0 {
		o.SessionSecs = 120
	}
	if len(o.Levels) == 0 {
		// Paper x-positions: ~{1, 15, 30, 45, 60} distinct frame rates;
		// a quantizer needs ≥ 2 levels, so the first becomes 2.
		o.Levels = []int{2, 15, 30, 45, 61}
	}
	if o.Repeats <= 0 {
		o.Repeats = 3
	}
	if o.Trainer.Speedup == 0 {
		o.Trainer = cloud.DefaultTrainerConfig()
	}
}

// Fig6 measures training time per FPS granularity as state-space
// coverage time: tabular Q-learning is trained when the agent has
// visited (and revisited) the situations the workload produces, so
// training is "complete" at the first session that discovers almost no
// new states (< 2 % growth of the visited set). Coverage time grows
// with the quantization granularity by construction — finer FPS bins
// mean more distinct states for the same behaviour — which is exactly
// the trade-off the paper's Fig. 6 sweeps.
func Fig6(opts Fig6Options) []Fig6Point {
	opts.defaults()
	plat := platform.MustGet(opts.Platform)

	// The level×repeat grid fans out across the batch pool: each cell
	// trains a private agent, and the per-level averages fold the cells
	// back in fixed (level, repeat) order so worker count cannot change
	// the floating-point sums.
	cells := make([]Fig6Point, len(opts.Levels)*opts.Repeats)
	batch.Map(len(cells), opts.Parallel, func(i int) {
		levels := opts.Levels[i/opts.Repeats]
		r := i % opts.Repeats
		cells[i] = fig6Level(plat, levels, int64(r)*31337, &opts)
	})

	points := make([]Fig6Point, 0, len(opts.Levels))
	for li, levels := range opts.Levels {
		var sumOnline float64
		converged := true
		for r := 0; r < opts.Repeats; r++ {
			p := cells[li*opts.Repeats+r]
			sumOnline += p.OnlineS
			converged = converged && p.Converged
		}
		onlineUS := int64(sumOnline / float64(opts.Repeats) * 1e6)
		points = append(points, Fig6Point{
			FPSLevels: levels,
			OnlineS:   float64(onlineUS) / 1e6,
			CloudS:    float64(opts.Trainer.WallTimeUS(onlineUS)) / 1e6,
			Converged: converged,
		})
	}
	return points
}

func fig6Level(plat platform.Platform, levels int, seedOffset int64, opts *Fig6Options) Fig6Point {
	cfg := DefaultAgentConfigFor(plat)
	cfg.State.FPSLevels = levels
	cfg.State.TargetLevels = levels
	cfg.Seed = opts.Seed + int64(levels)*1000 + seedOffset
	agent := core.NewAgent(cfg)
	appName := workload.NameFacebook

	statesBySession := make([]int, 0, opts.MaxSessions)
	for i := 1; i <= opts.MaxSessions; i++ {
		seed := cfg.Seed + int64(i)
		rng := rand.New(rand.NewSource(seed))
		tl := &session.Timeline{Scripts: []session.Script{
			session.ForApp(workload.Facebook(), session.Seconds(opts.SessionSecs), rng),
		}}
		runOn(plat, tl, seed, agent)
		n := 0
		if tab := agent.TableFor(appName); tab != nil && tab.Table != nil {
			n = tab.Table.States()
		}
		statesBySession = append(statesBySession, n)
	}

	convergedAt := len(statesBySession) // censored by default
	converged := false
	for i := 1; i < len(statesBySession); i++ {
		grown := statesBySession[i] - statesBySession[i-1]
		if statesBySession[i] > 0 && float64(grown)/float64(statesBySession[i]) < 0.02 {
			convergedAt = i + 1
			converged = true
			break
		}
	}
	onlineUS := int64(float64(convergedAt) * opts.SessionSecs * 1e6)
	return Fig6Point{
		FPSLevels: levels,
		OnlineS:   float64(onlineUS) / 1e6,
		CloudS:    float64(opts.Trainer.WallTimeUS(onlineUS)) / 1e6,
		Converged: converged,
	}
}
