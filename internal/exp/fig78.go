package exp

import (
	"math/rand"
	"nextdvfs/internal/core"

	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// AppRow is one application's results across the three schemes of
// Fig. 7 (power) and Fig. 8 (temperatures). IntQoS is nil for
// non-games (the baseline only manages games; the paper evaluated it
// on Lineage and PubG only).
type AppRow struct {
	App    string
	Game   bool
	Sched  sim.Result
	Next   sim.Result
	IntQoS *sim.Result

	// Fig. 7 derived numbers.
	NextPowerSavingPct   float64
	IntQoSPowerSavingPct float64 // 0 for non-games
	// Fig. 8 derived numbers (peak temperature reductions vs schedutil,
	// measured as rise over the 21 °C ambient).
	NextBigTempRedPct   float64
	NextDevTempRedPct   float64
	IntQoSBigTempRedPct float64
	IntQoSDevTempRedPct float64

	Train TrainStats
}

// EvalOptions sizes the Fig. 7 / Fig. 8 evaluation.
type EvalOptions struct {
	Seed        int64
	MaxSessions int
	SessionSecs float64
}

// Evaluate runs the full Fig. 7 / Fig. 8 matrix: for each of the six
// Play-store applications, train Next, then replay an identical
// evaluation session under schedutil, Next and (for games) Int. QoS PM.
func Evaluate(opts EvalOptions) []AppRow {
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 12
	}
	if opts.SessionSecs <= 0 {
		opts.SessionSecs = 120
	}
	makers := []func() *workload.ProfileApp{
		workload.Facebook, workload.Lineage, workload.PubG,
		workload.Spotify, workload.Chrome, workload.YouTube,
	}
	rows := make([]AppRow, 0, len(makers))
	for i, mk := range makers {
		rows = append(rows, evaluateApp(mk, opts, int64(i+1)))
	}
	return rows
}

// EvaluateApp runs the Fig. 7/8 protocol for one preset app name with
// an optional agent-configuration override (used by the ablation
// benchmarks). It panics on unknown names: the callers are code.
func EvaluateApp(name string, opts EvalOptions, agentCfg *core.AgentConfig) AppRow {
	if workload.ByName(name) == nil {
		panic("exp: unknown app " + name)
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 12
	}
	if opts.SessionSecs <= 0 {
		opts.SessionSecs = 120
	}
	return evaluateAppCfg(func() *workload.ProfileApp { return workload.ByName(name) }, opts, 99, agentCfg)
}

func evaluateApp(mk func() *workload.ProfileApp, opts EvalOptions, ordinal int64) AppRow {
	return evaluateAppCfg(mk, opts, ordinal, nil)
}

func evaluateAppCfg(mk func() *workload.ProfileApp, opts EvalOptions, ordinal int64, agentCfg *core.AgentConfig) AppRow {
	app := mk()
	seed := opts.Seed + ordinal*10_000

	agent, stats := Train(mk, TrainOptions{
		MaxSessions: opts.MaxSessions,
		SessionSecs: opts.SessionSecs,
		BaseSeed:    seed,
		AgentConfig: agentCfg,
	})

	evalSeed := seed + 500
	evalTL := func() *session.Timeline {
		return session.EvalTimeline(mk(), rand.New(rand.NewSource(evalSeed)))
	}
	sched := runWith(evalTL(), evalSeed, nil)
	next := runWith(evalTL(), evalSeed, agent)

	row := AppRow{
		App:                mk().Name(),
		Game:               app.Class() == workload.ClassGame,
		Sched:              sched,
		Next:               next,
		NextPowerSavingPct: pctLess(sched.AvgPowerW, next.AvgPowerW),
		NextBigTempRedPct:  pctLess(sched.PeakTempBigC-21, next.PeakTempBigC-21),
		NextDevTempRedPct:  pctLess(sched.PeakTempDevC-21, next.PeakTempDevC-21),
		Train:              stats,
	}
	if row.Game {
		iq := runWith(evalTL(), evalSeed, NewIntQoS())
		row.IntQoS = &iq
		row.IntQoSPowerSavingPct = pctLess(sched.AvgPowerW, iq.AvgPowerW)
		row.IntQoSBigTempRedPct = pctLess(sched.PeakTempBigC-21, iq.PeakTempBigC-21)
		row.IntQoSDevTempRedPct = pctLess(sched.PeakTempDevC-21, iq.PeakTempDevC-21)
	}
	return row
}
