package exp

import (
	"math/rand"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/core"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// AppRow is one application's results across the three schemes of
// Fig. 7 (power) and Fig. 8 (temperatures). IntQoS is nil for
// non-games (the baseline only manages games; the paper evaluated it
// on Lineage and PubG only).
type AppRow struct {
	App    string
	Game   bool
	Sched  sim.Result
	Next   sim.Result
	IntQoS *sim.Result

	// Fig. 7 derived numbers.
	NextPowerSavingPct   float64
	IntQoSPowerSavingPct float64 // 0 for non-games
	// Fig. 8 derived numbers (peak temperature reductions vs schedutil,
	// measured as rise over the 21 °C ambient).
	NextBigTempRedPct   float64
	NextDevTempRedPct   float64
	IntQoSBigTempRedPct float64
	IntQoSDevTempRedPct float64

	Train TrainStats
}

// EvalOptions sizes the Fig. 7 / Fig. 8 evaluation.
type EvalOptions struct {
	Seed        int64
	MaxSessions int
	SessionSecs float64
	// Platform names the registry device to evaluate on ("" = note9).
	Platform string
	// Parallel sizes the batch worker pool (0 = GOMAXPROCS, 1 =
	// sequential). Results are identical at any setting: each app trains
	// its own agent and each session run owns a private engine.
	Parallel int
}

func (o *EvalOptions) defaults() {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 12
	}
	if o.SessionSecs <= 0 {
		o.SessionSecs = 120
	}
}

// Evaluate runs the full Fig. 7 / Fig. 8 matrix: for each of the six
// Play-store applications, train Next, then replay an identical
// evaluation session under schedutil, Next and (for games) Int. QoS PM.
// The per-app pipelines are independent (one fresh agent each), so they
// fan out across the batch worker pool; row order is fixed by the app
// list regardless of worker count.
func Evaluate(opts EvalOptions) []AppRow {
	opts.defaults()
	plat := platform.MustGet(opts.Platform)
	makers := []func() *workload.ProfileApp{
		workload.Facebook, workload.Lineage, workload.PubG,
		workload.Spotify, workload.Chrome, workload.YouTube,
	}
	rows := make([]AppRow, len(makers))
	batch.Map(len(makers), opts.Parallel, func(i int) {
		// The outer pool already holds the -parallel bound; the per-app
		// eval grid runs sequentially so worker counts do not multiply.
		rows[i] = evaluateAppCfg(plat, makers[i], opts, int64(i+1), nil, 1)
	})
	return rows
}

// EvaluateApp runs the Fig. 7/8 protocol for one preset app name with
// an optional agent-configuration override (used by the ablation
// benchmarks). It panics on unknown names: the callers are code.
func EvaluateApp(name string, opts EvalOptions, agentCfg *core.AgentConfig) AppRow {
	if workload.ByName(name) == nil {
		panic("exp: unknown app " + name)
	}
	opts.defaults()
	plat := platform.MustGet(opts.Platform)
	return evaluateAppCfg(plat, func() *workload.ProfileApp { return workload.ByName(name) }, opts, 99, agentCfg, opts.Parallel)
}

// evalParallel sizes the per-app eval grid's pool: 1 when an outer pool
// already enforces the -parallel bound, opts.Parallel for direct calls.
func evaluateAppCfg(plat platform.Platform, mk func() *workload.ProfileApp, opts EvalOptions, ordinal int64, agentCfg *core.AgentConfig, evalParallel int) AppRow {
	app := mk()
	name := app.Name()
	game := app.Class() == workload.ClassGame
	seed := opts.Seed + ordinal*10_000

	agent, stats := Train(mk, TrainOptions{
		MaxSessions: opts.MaxSessions,
		SessionSecs: opts.SessionSecs,
		BaseSeed:    seed,
		AgentConfig: agentCfg,
		Platform:    plat.Name,
	})

	// The evaluation sessions form a small scheme grid; each job builds
	// a private config over a freshly seeded timeline, so the grid is
	// safe to run on the shared worker pool.
	evalSeed := seed + 500
	evalTL := func() *session.Timeline {
		return session.EvalTimeline(mk(), rand.New(rand.NewSource(evalSeed)))
	}
	jobs := []batch.Job{
		{App: name, Scheme: "schedutil", Platform: plat.Name, Seed: evalSeed, Build: func() (sim.Config, error) {
			return plat.Config(evalTL(), evalSeed), nil
		}},
		{App: name, Scheme: "next", Platform: plat.Name, Seed: evalSeed, Build: func() (sim.Config, error) {
			cfg := plat.Config(evalTL(), evalSeed)
			cfg.Controller = agent
			return cfg, nil
		}},
	}
	if game {
		jobs = append(jobs, batch.Job{App: name, Scheme: "intqospm", Platform: plat.Name, Seed: evalSeed, Build: func() (sim.Config, error) {
			cfg := plat.Config(evalTL(), evalSeed)
			cfg.Controller = NewIntQoSOn(plat)
			return cfg, nil
		}})
	}
	res := mustResults(batch.Run(jobs, batch.Options{Parallel: evalParallel}))
	sched, next := res[0].Result, res[1].Result

	ambient := plat.AmbientC
	row := AppRow{
		App:                name,
		Game:               game,
		Sched:              sched,
		Next:               next,
		NextPowerSavingPct: pctLess(sched.AvgPowerW, next.AvgPowerW),
		NextBigTempRedPct:  pctLess(sched.PeakTempBigC-ambient, next.PeakTempBigC-ambient),
		NextDevTempRedPct:  pctLess(sched.PeakTempDevC-ambient, next.PeakTempDevC-ambient),
		Train:              stats,
	}
	if game {
		iq := res[2].Result
		row.IntQoS = &iq
		row.IntQoSPowerSavingPct = pctLess(sched.AvgPowerW, iq.AvgPowerW)
		row.IntQoSBigTempRedPct = pctLess(sched.PeakTempBigC-ambient, iq.PeakTempBigC-ambient)
		row.IntQoSDevTempRedPct = pctLess(sched.PeakTempDevC-ambient, iq.PeakTempDevC-ambient)
	}
	return row
}
