package exp

import (
	"math/rand"

	"nextdvfs/internal/core"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// Fig1Result is the motivation trace: FPS and CPU frequencies over the
// home→Facebook→Spotify session on stock schedutil.
type Fig1Result struct {
	Result  sim.Result
	Samples []sim.Sample
}

// Fig1 reproduces the paper's Fig. 1 at 3 s sample resolution (the
// paper records FPS every 3 seconds for the figure).
func Fig1(seed int64) Fig1Result {
	return Fig1On(platform.DefaultName, seed)
}

// Fig1On replays the Fig. 1 session on any registry platform.
func Fig1On(platformName string, seed int64) Fig1Result {
	plat := platform.MustGet(platformName)
	rng := rand.New(rand.NewSource(seed))
	tl := session.Fig1Timeline(rng)
	res := runOn(plat, tl, seed, nil, func(c *sim.Config) {
		c.RecordIntervalUS = 3_000_000
	})
	return Fig1Result{Result: res, Samples: res.Samples}
}

// Fig3Result compares schedutil against a trained Next agent on the
// Fig. 1 session.
type Fig3Result struct {
	Sched sim.Result
	Next  sim.Result
	// PowerSavingPct is the average-power saving of Next vs schedutil
	// (paper: 41.88 %).
	PowerSavingPct float64
	// AvgTempRedPct is the average big-CPU temperature reduction
	// (paper: 21.02 % vs the 52.33→41.33 °C averages).
	AvgTempRedPct float64
	// PeakTempRedPct is the peak big-CPU temperature reduction.
	PeakTempRedPct float64
	Train          []TrainStats
}

// Fig3 trains Next on the three session apps, then replays the same
// session under schedutil and under the trained agent.
func Fig3(seed int64) Fig3Result {
	return Fig3On(platform.DefaultName, seed)
}

// Fig3On runs the Fig. 3 comparison on any registry platform.
func Fig3On(platformName string, seed int64) Fig3Result {
	plat := platform.MustGet(platformName)
	// One shared agent learns all three apps, as on a real device.
	cfg := DefaultAgentConfigFor(plat)
	cfg.Seed = seed
	agent := core.NewAgent(cfg)
	var stats []TrainStats
	for i := 1; i <= 18; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		runOn(plat, session.Fig1Timeline(rng), seed+int64(i), agent)
	}
	for _, app := range []string{workload.NameHome, workload.NameFacebook, workload.NameSpotify} {
		if tab := agent.TableFor(app); tab != nil && tab.Table != nil {
			stats = append(stats, TrainStats{
				App: app, Converged: tab.Trained,
				TrainedUS: tab.Table.TrainedUS,
				States:    tab.Table.States(), Steps: tab.Table.Steps,
			})
		}
	}

	evalSeed := seed + 1000
	sched := runOn(plat, session.Fig1Timeline(rand.New(rand.NewSource(evalSeed))), evalSeed, nil,
		func(c *sim.Config) { c.RecordIntervalUS = 1_000_000 })
	next := runOn(plat, session.Fig1Timeline(rand.New(rand.NewSource(evalSeed))), evalSeed, agent,
		func(c *sim.Config) { c.RecordIntervalUS = 1_000_000 })

	amb := plat.AmbientC
	return Fig3Result{
		Sched:          sched,
		Next:           next,
		PowerSavingPct: pctLess(sched.AvgPowerW, next.AvgPowerW),
		AvgTempRedPct:  pctLess(sched.AvgTempBigC-amb, next.AvgTempBigC-amb),
		PeakTempRedPct: pctLess(sched.PeakTempBigC-amb, next.PeakTempBigC-amb),
		Train:          stats,
	}
}

// pctLess returns the percentage by which b undercuts a.
func pctLess(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (1 - b/a)
}

// PPDWPoint is one point of the Fig. 4 trend.
type PPDWPoint struct {
	FPS      float64
	PPDW     float64
	PowerW   float64
	TempBigC float64
	// Worst marks the analytic worst-case anchors (the paper's
	// red-marked values at FPS 0, 1 and 10).
	Worst bool
}

// Fig4Result is the PPDW-vs-FPS trend on Lineage 2 Revolution.
type Fig4Result struct {
	Points []PPDWPoint
	Bounds core.Bounds
}

// Fig4 reproduces the PPDW-vs-FPS trend the way the paper measured it:
// during Lineage gameplay on stock schedutil, where the frame rate is
// set by scene weight — heavy scenes push the pipeline past its VSync
// budget (low FPS at high power and temperature → low PPDW), light
// scenes ride the 60 Hz cap with idle headroom (high PPDW). The sweep
// scales the per-frame render cost to visit that scene spectrum, and
// adds the analytic worst-case anchors at FPS 0/1/10 (the paper's
// red-marked points: least frames at maximum power and temperature).
func Fig4(seed int64) Fig4Result {
	return Fig4On(platform.DefaultName, seed)
}

// Fig4On runs the PPDW sweep on any registry platform.
func Fig4On(platformName string, seed int64) Fig4Result {
	plat := platform.MustGet(platformName)
	weights := []float64{2.6, 2.2, 1.8, 1.5, 1.25, 1.0, 0.8, 0.6}
	var points []PPDWPoint
	var maxP, maxT float64
	for i, w := range weights {
		res := fig4Run(plat, seed+int64(i), w)
		points = append(points, PPDWPoint{
			FPS:      res.ActiveAvgFPS,
			PPDW:     core.PPDW(res.ActiveAvgFPS, res.AvgPowerW, res.AvgTempBigC, plat.AmbientC),
			PowerW:   res.AvgPowerW,
			TempBigC: res.AvgTempBigC,
		})
		if res.AvgPowerW > maxP {
			maxP = res.AvgPowerW
		}
		if res.PeakTempBigC > maxT {
			maxT = res.PeakTempBigC
		}
	}

	for _, f := range []float64{0, 1, 10} {
		points = append(points, PPDWPoint{
			FPS:      f,
			PPDW:     core.PPDW(f, maxP, maxT, plat.AmbientC),
			PowerW:   maxP,
			TempBigC: maxT,
			Worst:    true,
		})
	}
	bounds := core.NewBounds(float64(plat.RefreshHz), maxP, 1.5, maxT, 25, plat.AmbientC)
	return Fig4Result{Points: points, Bounds: bounds}
}

// fig4Run plays Lineage for 180 s under schedutil with per-frame render
// costs scaled by weight (the scene-heaviness knob).
func fig4Run(plat platform.Platform, seed int64, weight float64) sim.Result {
	p := workload.Lineage().Profile()
	p.FrameCPUMean *= weight
	p.FrameGPUMean *= weight
	app := workload.NewProfileApp(p)
	tl := &session.Timeline{Scripts: []session.Script{{
		App: app,
		Phases: []session.Phase{
			{Inter: workload.InterPlay, DurUS: session.Seconds(180)},
		},
	}}}
	return runOn(plat, tl, seed, nil)
}
