package exp

import (
	"nextdvfs/internal/batch"
	"nextdvfs/internal/core"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// RefreshRow is one panel refresh rate's results (extension experiment:
// the paper notes 90/120 Hz panels exist but evaluates only 60 Hz).
type RefreshRow struct {
	RefreshHz int
	Sched     sim.Result
	Next      sim.Result
	SavingPct float64
}

// HighRefreshOptions sizes the panel sweep.
type HighRefreshOptions struct {
	Seed int64
	// Platform is the base registry device whose panel is swept
	// ("" = note9); the 90/120 Hz rows are derived WithRefresh variants.
	Platform string
	// Parallel sizes the batch worker pool (0 = GOMAXPROCS); each rate
	// trains its own agent, so the rates fan out independently.
	Parallel int
}

// HighRefresh runs Lineage on 60/90/120 Hz panels under schedutil and a
// trained Next agent on the default platform.
func HighRefresh(seed int64) []RefreshRow {
	return HighRefreshOn(HighRefreshOptions{Seed: seed})
}

// HighRefreshOn runs the panel sweep on any base platform. The agent's
// FPS quantizers span the panel rate, and the game's render loop chases
// it — the experiment shows the approach is not hard-wired to 60 Hz.
func HighRefreshOn(opts HighRefreshOptions) []RefreshRow {
	base := platform.MustGet(opts.Platform)
	rates := []int{60, 90, 120}
	rows := make([]RefreshRow, len(rates))
	batch.Map(len(rates), opts.Parallel, func(i int) {
		// The outer pool holds the -parallel bound; each rate's eval
		// pair runs sequentially so worker counts do not multiply.
		rows[i] = highRefreshRate(base, opts.Seed, rates[i])
	})
	return rows
}

func highRefreshRate(base platform.Platform, seed int64, hz int) RefreshRow {
	plat := base
	if hz != base.RefreshHz {
		plat = base.WithRefresh(hz)
	}
	mkApp := func() *workload.ProfileApp {
		p := workload.Lineage().Profile()
		p.GameFPS = hz
		// Per-frame budget shrinks with the refresh period; a panel
		// worth shipping comes with content tuned to fit it.
		scale := 60.0 / float64(hz)
		p.FrameCPUMean *= scale
		p.FrameGPUMean *= scale
		return workload.NewProfileApp(p)
	}
	mkTL := func(secs float64) *session.Timeline {
		return &session.Timeline{Scripts: []session.Script{{
			App: mkApp(),
			Phases: []session.Phase{
				{Inter: workload.InterPlay, DurUS: session.Seconds(secs)},
			},
		}}}
	}

	// DefaultAgentConfigFor spans the variant's panel rate.
	agentCfg := DefaultAgentConfigFor(plat)
	agentCfg.Seed = seed + int64(hz)
	agent := core.NewAgent(agentCfg)
	for i := 1; i <= 10; i++ {
		runOn(plat, mkTL(120), seed+int64(hz)+int64(i), agent)
	}

	evalSeed := seed + int64(hz) + 999
	res := mustResults(batch.Run([]batch.Job{
		{App: workload.NameLineage, Scheme: "schedutil", Platform: plat.Name, Seed: evalSeed, Build: func() (sim.Config, error) {
			return plat.Config(mkTL(120), evalSeed), nil
		}},
		{App: workload.NameLineage, Scheme: "next", Platform: plat.Name, Seed: evalSeed, Build: func() (sim.Config, error) {
			cfg := plat.Config(mkTL(120), evalSeed)
			cfg.Controller = agent
			return cfg, nil
		}},
	}, batch.Options{Parallel: 1}))
	sched, next := res[0].Result, res[1].Result
	return RefreshRow{
		RefreshHz: hz,
		Sched:     sched,
		Next:      next,
		SavingPct: pctLess(sched.AvgPowerW, next.AvgPowerW),
	}
}
