package exp

import (
	"nextdvfs/internal/core"
	"nextdvfs/internal/display"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// RefreshRow is one panel refresh rate's results (extension experiment:
// the paper notes 90/120 Hz panels exist but evaluates only 60 Hz).
type RefreshRow struct {
	RefreshHz int
	Sched     sim.Result
	Next      sim.Result
	SavingPct float64
}

// HighRefresh runs Lineage on 60/90/120 Hz panels under schedutil and a
// trained Next agent. The agent's FPS quantizers span the panel rate,
// and the game's render loop chases it — the experiment shows the
// approach is not hard-wired to 60 Hz.
func HighRefresh(seed int64) []RefreshRow {
	rates := []int{60, 90, 120}
	rows := make([]RefreshRow, 0, len(rates))
	for _, hz := range rates {
		rows = append(rows, highRefreshRate(seed, hz))
	}
	return rows
}

func highRefreshRate(seed int64, hz int) RefreshRow {
	mkApp := func() *workload.ProfileApp {
		p := workload.Lineage().Profile()
		p.GameFPS = hz
		// Per-frame budget shrinks with the refresh period; a panel
		// worth shipping comes with content tuned to fit it.
		scale := 60.0 / float64(hz)
		p.FrameCPUMean *= scale
		p.FrameGPUMean *= scale
		return workload.NewProfileApp(p)
	}
	mkTL := func(secs float64) *session.Timeline {
		return &session.Timeline{Scripts: []session.Script{{
			App: mkApp(),
			Phases: []session.Phase{
				{Inter: workload.InterPlay, DurUS: session.Seconds(secs)},
			},
		}}}
	}
	mut := func(c *sim.Config) { c.Display = display.NewPipeline(hz) }

	// The agent's FPS quantizers must span the panel rate.
	agentCfg := core.DefaultAgentConfig()
	agentCfg.State.MaxFPS = float64(hz)
	agentCfg.Seed = seed + int64(hz)
	agent := core.NewAgent(agentCfg)
	for i := 1; i <= 10; i++ {
		runWith(mkTL(120), seed+int64(hz)+int64(i), agent, mut)
	}

	evalSeed := seed + int64(hz) + 999
	sched := runWith(mkTL(120), evalSeed, nil, mut)
	next := runWith(mkTL(120), evalSeed, agent, mut)
	return RefreshRow{
		RefreshHz: hz,
		Sched:     sched,
		Next:      next,
		SavingPct: pctLess(sched.AvgPowerW, next.AvgPowerW),
	}
}
