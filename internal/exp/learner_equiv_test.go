package exp

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"nextdvfs/internal/core"
	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/scenario"
	"nextdvfs/internal/session"
	"nextdvfs/internal/workload"
)

// refAgent is a line-for-line reimplementation of the agent's control
// loop as it existed BEFORE the learner registry: Watkins Q-learning
// (core.QTable.Update) with the ε-greedy Policy, exploring starts and
// the flip-rate convergence latch, hard-coded with no Learner/Explorer
// indirection. The differential tests drive it and the real Agent over
// identical sessions and require byte-identical results and tables —
// the pin that extracting the rule behind the interface changed no
// behavior.
type refAgent struct {
	cfg    core.AgentConfig
	rng    *rand.Rand
	space  *core.StateSpace
	window *core.FrameWindow

	tables map[string]*refTable
	cur    *refTable

	prevValid  bool
	prevState  core.StateKey
	prevAction int
	lastCtlUS  int64
}

type refTable struct {
	table   *core.QTable
	policy  core.Policy
	trained bool

	tdEWMA     float64
	tdSeeded   bool
	flipEWMA   float64
	flipSeeded bool
}

func newRefAgent(cfg core.AgentConfig) *refAgent {
	return &refAgent{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		window: core.NewFrameWindow(cfg.WindowSamples, cfg.WarmupSamples),
		tables: make(map[string]*refTable),
	}
}

func (a *refAgent) Name() string             { return "next" }
func (a *refAgent) ObserveIntervalUS() int64 { return a.cfg.ObserveUS }
func (a *refAgent) ControlIntervalUS() int64 { return a.cfg.ControlUS }
func (a *refAgent) Observe(s ctrl.Snapshot)  { a.window.Push(s.FPS) }
func (a *refAgent) AppChanged(n string, _ bool) {
	a.cur = a.tableFor(n)
	a.window.Reset()
	a.prevValid = false
	a.lastCtlUS = 0
}

func (a *refAgent) tableFor(name string) *refTable {
	if t, ok := a.tables[name]; ok {
		return t
	}
	t := &refTable{policy: core.Policy{
		Epsilon:    a.cfg.EpsilonStart,
		EpsilonMin: a.cfg.EpsilonMin,
		Decay:      a.cfg.EpsilonDecay,
	}}
	a.tables[name] = t
	return t
}

func (a *refAgent) Control(snap ctrl.Snapshot, act ctrl.Actuator) {
	if a.cur == nil {
		a.AppChanged(snap.AppName, snap.AppClassGame)
	}
	if a.space == nil {
		opps := make([]int, len(snap.Clusters))
		for i, c := range snap.Clusters {
			opps[i] = c.NumOPPs
		}
		a.space = core.NewStateSpace(opps, a.cfg.State)
	}
	t := a.cur
	if t.table == nil {
		t.table = core.NewQTable(a.space.Actions())
	}

	if !a.prevValid && !t.trained && !a.cfg.Frozen && t.policy.Epsilon > 0.15 {
		for _, c := range snap.Clusters {
			act.SetCap(c.Name, a.rng.Intn(c.NumOPPs))
		}
	}

	target := float64(a.window.Target())
	state := a.space.Key(snap, target)
	reward := a.cfg.Reward.Reward(snap.FPS, target, snap.PowerW, snap.TempBigC, snap.AmbientC)

	var action int
	if t.trained {
		exploit := core.Policy{Epsilon: a.cfg.ExploitEpsilon, EpsilonMin: a.cfg.ExploitEpsilon}
		action = exploit.Select(t.table, state, a.rng)
	} else {
		action = t.policy.Select(t.table, state, a.rng)
	}

	if a.prevValid && !a.cfg.Frozen {
		bestBefore, _ := t.table.Best(a.prevState)
		td := t.table.Update(a.prevState, a.prevAction, reward, state, a.cfg.Alpha, a.cfg.Gamma)
		bestAfter, _ := t.table.Best(a.prevState)
		if !t.trained {
			a.trackConvergence(t, td, bestBefore != bestAfter)
		}
	}

	if !t.trained && a.lastCtlUS > 0 && snap.NowUS > a.lastCtlUS {
		t.table.TrainedUS += snap.NowUS - a.lastCtlUS
	}
	a.lastCtlUS = snap.NowUS

	core.Action(action).Apply(snap, act)
	a.prevState = state
	a.prevAction = action
	a.prevValid = true
}

func (a *refAgent) trackConvergence(t *refTable, td float64, flipped bool) {
	if td < 0 {
		td = -td
	}
	const tdAlpha = 0.05
	if !t.tdSeeded {
		t.tdEWMA, t.tdSeeded = td, true
	} else {
		t.tdEWMA += tdAlpha * (td - t.tdEWMA)
	}
	const flipAlpha = 1.0 / 400
	f := 0.0
	if flipped {
		f = 1
	}
	if !t.flipSeeded {
		t.flipEWMA, t.flipSeeded = 1, true
	}
	t.flipEWMA += flipAlpha * (f - t.flipEWMA)
	if a.cfg.ConvergeFlipTol <= 0 || a.cfg.ConvergeMinSteps <= 0 {
		return
	}
	if t.table.Steps >= int64(a.cfg.ConvergeMinSteps) && t.flipEWMA < a.cfg.ConvergeFlipTol && !t.trained {
		t.trained = true
		if t.table.ConvergedAtUS == 0 {
			t.table.ConvergedAtUS = t.table.TrainedUS
		}
	}
}

func (a *refAgent) Reset() {
	a.window.Reset()
	a.prevValid = false
	a.lastCtlUS = 0
	a.cur = nil
}

// marshalAgentTables serializes every app table of either agent kind
// for byte comparison.
func marshalRefTables(t *testing.T, a *refAgent) []byte {
	t.Helper()
	out := map[string]*core.QTable{}
	for app, tab := range a.tables {
		out[app] = tab.table
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func marshalAgentTables(t *testing.T, a *core.Agent) []byte {
	t.Helper()
	out := map[string]*core.QTable{}
	for _, app := range a.Apps() {
		out[app] = a.TableFor(app).Table
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestWatkinsAgentMatchesPreRefactorRule pins the tentpole's
// bit-identity contract on the Fig. 7 protocol shape: the default
// agent (watkins + egreedy through the Learner/Explorer interfaces)
// and the hard-coded pre-refactor loop train on identical sessions and
// must produce byte-identical Q-tables and evaluation results.
func TestWatkinsAgentMatchesPreRefactorRule(t *testing.T) {
	cfg := DefaultAgentConfigFor(mustNote9())
	cfg.Seed = 42
	agent := core.NewAgent(cfg)
	ref := newRefAgent(cfg)

	for i := 1; i <= 4; i++ {
		seed := int64(42 + i)
		mkTL := func() *session.Timeline {
			return &session.Timeline{Scripts: []session.Script{
				session.ForApp(workload.Spotify(), session.Seconds(60), rand.New(rand.NewSource(seed))),
			}}
		}
		RunTimeline(mkTL(), seed, agent)
		RunTimeline(mkTL(), seed, ref)
	}

	evalTL := func() *session.Timeline {
		return session.EvalTimeline(workload.Spotify(), rand.New(rand.NewSource(999)))
	}
	resAgent := RunTimeline(evalTL(), 999, agent)
	resRef := RunTimeline(evalTL(), 999, ref)
	if !reflect.DeepEqual(resAgent, resRef) {
		t.Fatalf("evaluation diverged:\nagent: %+v\nref:   %+v", resAgent, resRef)
	}
	if !bytes.Equal(marshalAgentTables(t, agent), marshalRefTables(t, ref)) {
		t.Fatal("trained Q-tables diverged from the pre-refactor rule")
	}
}

// TestWatkinsMatchesPreRefactorOnEveryScenarioPreset replays every
// scenario preset (scaled) under both implementations: multi-app
// switches, screen-off stretches, ambient drift, refresh switching —
// the full environment the scenario engine can throw at the agent —
// must leave the two with byte-identical results and tables.
func TestWatkinsMatchesPreRefactorOnEveryScenarioPreset(t *testing.T) {
	for _, name := range scenario.Names() {
		scn := scenario.Scaled(scenario.MustGet(name), 0.03)
		cfg := DefaultAgentConfigFor(mustNote9())
		cfg.Seed = 7
		agent := core.NewAgent(cfg)
		ref := newRefAgent(cfg)
		for s := int64(1); s <= 2; s++ {
			resA, err := RunScenarioOn("note9", scn, 100+s, agent)
			if err != nil {
				t.Fatal(err)
			}
			resR, err := RunScenarioOn("note9", scn, 100+s, ref)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resA, resR) {
				t.Fatalf("%s session %d: results diverged", name, s)
			}
		}
		if !bytes.Equal(marshalAgentTables(t, agent), marshalRefTables(t, ref)) {
			t.Fatalf("%s: tables diverged from the pre-refactor rule", name)
		}
	}
}

func mustNote9() platform.Platform { return platform.MustGet(platform.DefaultName) }
