package exp

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/learner"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// LearnerGridOptions sizes the learner × app comparison grid: every
// registered (or requested) update rule trains a fresh agent on each
// app, then replays the identical evaluation session under schedutil
// and under the trained agent — the apples-to-apples answer to "would a
// different learner do better on the same state/reward design?".
type LearnerGridOptions struct {
	Seed int64
	// Learners names the update rules to compare (nil = every
	// registered learner).
	Learners []string
	// Explorer names the exploration strategy all cells train with
	// ("" = egreedy). The explorer is held fixed across the grid so the
	// comparison isolates the update rule.
	Explorer string
	// Apps names the preset applications (nil = [lineage2revolution,
	// spotify] — the paper's heavy-game and idle-waste poles).
	Apps []string
	// Platform names the registry device ("" = note9).
	Platform string
	// MaxSessions bounds training per cell (0 → 8).
	MaxSessions int
	// SessionSecs is each training session's length (0 → 120).
	SessionSecs float64
	// Parallel sizes the batch worker pool (0 = GOMAXPROCS, 1 =
	// sequential). Cells are independent, so the grid is byte-identical
	// at any worker count.
	Parallel int
}

func (o *LearnerGridOptions) defaults() {
	if len(o.Learners) == 0 {
		o.Learners = learner.Names()
	}
	if len(o.Apps) == 0 {
		o.Apps = []string{workload.NameLineage, workload.NameSpotify}
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 8
	}
	if o.SessionSecs <= 0 {
		o.SessionSecs = 120
	}
}

// LearnerRow is one (learner, app) cell: convergence statistics from
// training plus the energy/QoS comparison of the trained agent against
// the schedutil baseline on the identical session.
type LearnerRow struct {
	Learner string
	App     string
	// Convergence.
	Converged bool
	TrainedS  float64
	States    int
	Steps     int64
	// Evaluation.
	Sched          sim.Result
	Next           sim.Result
	PowerSavingPct float64
	EnergySavedJ   float64
}

// LearnerGrid runs the learner × app grid over the batch pool and
// returns rows in fixed learner-major, app-minor order (learners in
// the requested order, which defaults to the sorted registry).
func LearnerGrid(opts LearnerGridOptions) ([]LearnerRow, error) {
	opts.defaults()
	for _, l := range opts.Learners {
		if !learner.Known(l) {
			return nil, fmt.Errorf("exp: unknown learner %q (have: %s)", l, strings.Join(learner.Names(), ", "))
		}
	}
	if !learner.KnownExplorer(opts.Explorer) {
		return nil, fmt.Errorf("exp: unknown explorer %q (have: %s)", opts.Explorer, strings.Join(learner.ExplorerNames(), ", "))
	}
	for _, app := range opts.Apps {
		if workload.ByName(app) == nil {
			return nil, fmt.Errorf("exp: unknown app %q", app)
		}
	}
	plat, err := platform.Get(opts.Platform)
	if err != nil {
		return nil, err
	}

	type cell struct {
		lrn string
		app string
		ai  int
	}
	cells := make([]cell, 0, len(opts.Learners)*len(opts.Apps))
	for _, l := range opts.Learners {
		for ai, app := range opts.Apps {
			cells = append(cells, cell{lrn: learner.Normalize(l), app: app, ai: ai})
		}
	}
	rows := make([]LearnerRow, len(cells))
	batch.Map(len(cells), opts.Parallel, func(i int) {
		c := cells[i]
		rows[i] = learnerCell(plat, c.lrn, opts.Explorer, c.app, c.ai, opts)
	})
	return rows, nil
}

// learnerCell trains one learner on one app and evaluates it. Seeds
// derive from the app ordinal only, so every learner trains on the same
// session stream and replays the identical evaluation timeline — the
// rows differ only through the update rule.
func learnerCell(plat platform.Platform, lrn, explorer, app string, appOrdinal int, opts LearnerGridOptions) LearnerRow {
	seed := opts.Seed + int64(appOrdinal+1)*10_000
	mk := func() *workload.ProfileApp { return workload.ByName(app) }
	agent, stats := Train(mk, TrainOptions{
		MaxSessions: opts.MaxSessions,
		SessionSecs: opts.SessionSecs,
		BaseSeed:    seed,
		Platform:    plat.Name,
		Learner:     lrn,
		Explorer:    explorer,
	})

	evalSeed := seed + 500
	evalTL := func() *session.Timeline {
		return session.EvalTimeline(mk(), rand.New(rand.NewSource(evalSeed)))
	}
	sched := runOn(plat, evalTL(), evalSeed, nil)
	next := runOn(plat, evalTL(), evalSeed, agent)

	trainedS := float64(stats.TrainedUS) / 1e6
	return LearnerRow{
		Learner:        lrn,
		App:            app,
		Converged:      stats.Converged,
		TrainedS:       trainedS,
		States:         stats.States,
		Steps:          stats.Steps,
		Sched:          sched,
		Next:           next,
		PowerSavingPct: pctLess(sched.AvgPowerW, next.AvgPowerW),
		EnergySavedJ:   sched.EnergyJ - next.EnergyJ,
	}
}

// WriteLearnerGrid prints the comparison the way cmd/nextbench
// -learners does — the shared printer keeps the CLI and the
// determinism tests on the same bytes.
func WriteLearnerGrid(w io.Writer, rows []LearnerRow) {
	fmt.Fprintf(w, "%-15s %-20s %5s %9s %7s %8s %9s %9s %7s %10s %8s %8s\n",
		"learner", "app", "conv", "train(s)", "states", "steps",
		"schedP(W)", "nextP(W)", "sav%", "energy(J)", "schedFPS", "nextFPS")
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %-20s %5v %9.0f %7d %8d %9.3f %9.3f %7.1f %10.0f %8.1f %8.1f\n",
			r.Learner, r.App, r.Converged, r.TrainedS, r.States, r.Steps,
			r.Sched.AvgPowerW, r.Next.AvgPowerW, r.PowerSavingPct, r.EnergySavedJ,
			r.Sched.ActiveAvgFPS, r.Next.ActiveAvgFPS)
	}
}
