package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nextdvfs/internal/learner"
	"nextdvfs/internal/workload"
)

// The -learners acceptance pin: the learner comparison grid — every
// registered learner — is byte-identical at -parallel 1 and -parallel 8,
// both as marshalled rows and as the exact bytes cmd/nextbench
// -learners prints.
func TestLearnerGridParallelByteIdentical(t *testing.T) {
	run := func(parallel int) ([]LearnerRow, []byte) {
		rows, err := LearnerGrid(LearnerGridOptions{
			Seed:        42,
			Apps:        []string{workload.NameSpotify},
			MaxSessions: 2,
			SessionSecs: 30,
			Parallel:    parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		WriteLearnerGrid(&buf, rows)
		return rows, buf.Bytes()
	}
	rows1, out1 := run(1)
	rows8, out8 := run(8)
	j1, _ := json.Marshal(rows1)
	j8, _ := json.Marshal(rows8)
	if !bytes.Equal(j1, j8) {
		t.Fatal("learner grid rows differ between -parallel 1 and -parallel 8")
	}
	if !bytes.Equal(out1, out8) {
		t.Fatalf("printed learner grid differs between -parallel 1 and -parallel 8:\n%s\n--- vs ---\n%s", out1, out8)
	}

	// One row per registered learner, in registry order, each with a
	// real evaluation on both sides.
	names := learner.Names()
	if len(rows1) != len(names) {
		t.Fatalf("%d rows, want %d", len(rows1), len(names))
	}
	for i, name := range names {
		r := rows1[i]
		if r.Learner != name || r.App != workload.NameSpotify {
			t.Fatalf("row %d = %s/%s, want %s/spotify", i, r.Learner, r.App, name)
		}
		if r.Sched.AvgPowerW <= 0 || r.Next.AvgPowerW <= 0 || r.Steps == 0 {
			t.Fatalf("row %d (%s) has empty results: %+v", i, name, r)
		}
	}
}

func TestLearnerGridRejectsUnknownNames(t *testing.T) {
	if _, err := LearnerGrid(LearnerGridOptions{Learners: []string{"nope"}}); err == nil {
		t.Fatal("unknown learner should error")
	}
	if _, err := LearnerGrid(LearnerGridOptions{Explorer: "nope"}); err == nil {
		t.Fatal("unknown explorer should error")
	}
	if _, err := LearnerGrid(LearnerGridOptions{Apps: []string{"nope"}}); err == nil {
		t.Fatal("unknown app should error")
	}
	if _, err := LearnerGrid(LearnerGridOptions{Platform: "nope"}); err == nil {
		t.Fatal("unknown platform should error")
	}
}

// The scenario grid's learner dimension: agent-training schemes fan out
// per learner, governor schemes do not, and the learner column appears
// in the printout exactly when a non-default learner is present.
func TestScenarioGridLearnerDimension(t *testing.T) {
	rows, err := ScenarioGrid(ScenarioOptions{
		Seed:          42,
		Scenarios:     []string{"commute"},
		Schemes:       []string{"schedutil", "next"},
		Learners:      []string{"watkins", "doubleq"},
		DurationScale: 0.02,
		TrainSessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// schedutil has no learner dimension: 1 cell; next: 2 cells.
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Scheme != "schedutil" || rows[0].Learner != "" {
		t.Fatalf("governor row carries a learner: %+v", rows[0])
	}
	if rows[1].Learner != "watkins" || rows[2].Learner != "doubleq" {
		t.Fatalf("learner order broken: %+v / %+v", rows[1], rows[2])
	}
	// Both learners replay the identical evaluation timeline; the rows
	// must differ only through the update rule, and each must be a real
	// result.
	for _, r := range rows[1:] {
		if r.Result.AvgPowerW <= 0 {
			t.Fatalf("%s: empty result", r.Learner)
		}
	}

	var buf bytes.Buffer
	WriteScenarioGrid(&buf, rows)
	if !strings.Contains(buf.String(), "learner") || !strings.Contains(buf.String(), "doubleq") {
		t.Fatalf("learner column missing from mixed-learner grid:\n%s", buf.String())
	}

	// Default grids must keep the historical layout: no learner column.
	defRows, err := ScenarioGrid(ScenarioOptions{
		Seed: 42, Scenarios: []string{"commute"}, Schemes: []string{"schedutil"},
		DurationScale: 0.02, TrainSessions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	WriteScenarioGrid(&buf, defRows)
	if strings.Contains(buf.String(), "learner") {
		t.Fatalf("default grid grew a learner column:\n%s", buf.String())
	}
}

func TestScenarioGridRejectsUnknownLearner(t *testing.T) {
	if _, err := ScenarioGrid(ScenarioOptions{Learners: []string{"nope"}}); err == nil {
		t.Fatal("unknown learner should error")
	}
	if _, err := ScenarioGrid(ScenarioOptions{Explorer: "nope"}); err == nil {
		t.Fatal("unknown explorer should error")
	}
}

// The scheme registry contract: the unknown-scheme error enumerates the
// registered set dynamically, so it can never drift from reality.
func TestSchemeRegistryErrorEnumeratesRegistry(t *testing.T) {
	_, err := GetScheme("nope")
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	for _, name := range Schemes() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not mention registered scheme %q", err, name)
		}
	}
	if len(Schemes()) < 6 {
		t.Fatalf("schemes registered = %d, want the full set", len(Schemes()))
	}
	if !KnownScheme("") || !KnownScheme("next") || KnownScheme("nope") {
		t.Fatal("KnownScheme wrong")
	}
	for _, name := range Schemes() {
		spec, err := GetScheme(name)
		if err != nil || spec.Configure == nil {
			t.Fatalf("%s: incomplete spec (%v)", name, err)
		}
		if (name == "next") != spec.TrainsAgent {
			t.Fatalf("%s: TrainsAgent = %v", name, spec.TrainsAgent)
		}
	}
}
