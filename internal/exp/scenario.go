package exp

import (
	"fmt"
	"io"
	"strings"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/core"
	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/learner"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/scenario"
	"nextdvfs/internal/sim"
)

// ScenarioOptions sizes a scenario × platform × scheme × learner grid
// run.
type ScenarioOptions struct {
	Seed int64
	// Scenarios names the presets to run (nil = the whole library).
	Scenarios []string
	// Platforms names the registry devices (nil = [note9]).
	Platforms []string
	// Schemes names the management stacks per cell (nil = [schedutil,
	// next]). See Schemes() for the registry.
	Schemes []string
	// Learners names the TD update rules swept for every agent-training
	// scheme ("next") — nil = just the default watkins. Schemes that do
	// not train an agent ignore the learner dimension (one cell each).
	// See learner.Names() for the registry.
	Learners []string
	// Explorer names the exploration strategy agent cells train with
	// ("" = egreedy).
	Explorer string
	// Parallel sizes the batch worker pool (0 = GOMAXPROCS, 1 =
	// sequential). Cells are independent — each trains its own agent and
	// compiles its own timeline — so results are byte-identical at any
	// worker count.
	Parallel int
	// DurationScale shrinks every scenario (0 or 1 = full length);
	// tests and smoke runs use small factors to keep wall time bounded.
	DurationScale float64
	// TrainSessions is how many scenario sessions train each "next"
	// cell's agent (0 → 6).
	TrainSessions int
	// Lockstep routes the evaluation runs of each (scenario, platform)
	// pair through one sim.BatchEngine: all schemes and learners of the
	// pair share its compiled timeline's structure, so their eval lanes
	// step one shared tick loop instead of one engine each. Rows are
	// byte-identical either way — the batched engine is pinned
	// bit-identical to scalar runs — so this is purely a throughput
	// knob.
	Lockstep bool
}

func (o *ScenarioOptions) defaults() {
	if len(o.Scenarios) == 0 {
		o.Scenarios = scenario.Names()
	}
	if len(o.Platforms) == 0 {
		o.Platforms = []string{platform.DefaultName}
	}
	if len(o.Schemes) == 0 {
		o.Schemes = []string{"schedutil", "next"}
	}
	if len(o.Learners) == 0 {
		o.Learners = []string{learner.DefaultLearner}
	}
	if o.TrainSessions <= 0 {
		o.TrainSessions = 6
	}
}

// ScenarioRow is one grid cell's outcome. Learner is empty for schemes
// that do not train an agent.
type ScenarioRow struct {
	Scenario string
	Platform string
	Scheme   string
	Learner  string
	Result   sim.Result
}

// ScenarioGrid evaluates every (scenario, platform, scheme, learner)
// cell of the options across the batch pool and returns rows in fixed
// scenario-major, platform, scheme, learner-minor order. All cells of a
// (scenario, platform) pair replay the byte-identical compiled
// timeline, so their rows are directly comparable; agent cells first
// train a fresh agent — with the cell's learner — on TrainSessions
// differently-seeded sessions of the same scenario. The learner
// dimension applies only to agent-training schemes: a governor cell
// has no update rule to sweep.
func ScenarioGrid(opts ScenarioOptions) ([]ScenarioRow, error) {
	opts.defaults()
	for _, l := range opts.Learners {
		if !learner.Known(l) {
			return nil, fmt.Errorf("exp: unknown learner %q (have: %s)", l, strings.Join(learner.Names(), ", "))
		}
	}
	if !learner.KnownExplorer(opts.Explorer) {
		return nil, fmt.Errorf("exp: unknown explorer %q (have: %s)", opts.Explorer, strings.Join(learner.ExplorerNames(), ", "))
	}
	type cell struct {
		scn  scenario.Scenario
		plat platform.Platform
		si   int
		pi   int
		sch  SchemeSpec
		lrn  string // "" for schemes that do not train an agent
	}
	var cells []cell
	for si, sn := range opts.Scenarios {
		scn, err := scenario.Get(sn)
		if err != nil {
			return nil, err
		}
		scn = scenario.Scaled(scn, opts.DurationScale)
		for pi, pn := range opts.Platforms {
			plat, err := platform.Get(pn)
			if err != nil {
				return nil, err
			}
			for _, sch := range opts.Schemes {
				spec, err := GetScheme(sch)
				if err != nil {
					return nil, err
				}
				if spec.TrainsAgent {
					for _, l := range opts.Learners {
						cells = append(cells, cell{scn: scn, plat: plat, si: si, pi: pi, sch: spec, lrn: learner.Normalize(l)})
					}
				} else {
					cells = append(cells, cell{scn: scn, plat: plat, si: si, pi: pi, sch: spec})
				}
			}
		}
	}

	jobs := make([]batch.Job, len(cells))
	for i, c := range cells {
		c := c
		// Seeds derive from the (scenario, platform) pair only, so every
		// scheme and learner replays the identical evaluation timeline.
		base := opts.Seed + int64(c.si)*100_003 + int64(c.pi)*1_009
		jobs[i] = batch.Job{
			App:      c.scn.Name,
			Scheme:   c.sch.Name,
			Platform: c.plat.Name,
			Seed:     base,
			Build: func() (sim.Config, error) {
				return scenarioCellConfig(c.scn, c.plat, c.sch, c.lrn, opts.Explorer, base, opts.TrainSessions)
			},
		}
		if opts.Lockstep {
			// Cells are ordered scheme/learner-minor, so every cell of a
			// (scenario, platform) pair is consecutive and the whole pair
			// becomes one lockstep span.
			jobs[i].LockstepKey = fmt.Sprintf("grid|%d|%d", c.si, c.pi)
		}
	}
	results := batch.Run(jobs, batch.Options{Parallel: opts.Parallel})
	rows := make([]ScenarioRow, len(cells))
	for i, r := range results {
		if r.Err != "" {
			return nil, fmt.Errorf("exp: scenario cell %s/%s/%s: %s", r.App, r.Platform, r.Scheme, r.Err)
		}
		c := cells[i]
		rows[i] = ScenarioRow{Scenario: c.scn.Name, Platform: c.plat.Name, Scheme: c.sch.Name, Learner: c.lrn, Result: r.Result}
	}
	return rows, nil
}

// scenarioConfig compiles the scenario at seed and assembles the
// platform's sim config with the environment schedules attached.
func scenarioConfig(scn scenario.Scenario, plat platform.Platform, seed int64) (sim.Config, error) {
	compiled, err := scenario.Compile(scn, seed, plat.AmbientC)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := plat.Config(compiled.Timeline, seed)
	cfg.Ambient = compiled.Ambient
	cfg.Refresh = compiled.Refresh
	return cfg, nil
}

// trainSchemeAgent trains a fresh agent for an agent-training scheme on
// trainSessions differently-seeded sessions of the scenario, or returns
// nil for schemes that do not train. Training runs stay scalar — each
// session's timeline structure depends on its seed, so they are not
// lockstep candidates; only the shared-structure evaluation run is.
func trainSchemeAgent(scn scenario.Scenario, plat platform.Platform, spec SchemeSpec, learnerName, explorer string, baseSeed int64, trainSessions int) (*core.Agent, error) {
	if !spec.TrainsAgent {
		return nil, nil
	}
	cfg := DefaultAgentConfigFor(plat)
	cfg.Seed = baseSeed
	cfg.Learner = learnerName
	cfg.Explorer = explorer
	agent := core.NewAgent(cfg)
	for i := 1; i <= trainSessions; i++ {
		seed := baseSeed + int64(i)
		c, err := scenarioConfig(scn, plat, seed)
		if err != nil {
			return nil, err
		}
		c.Controller = agent
		eng, err := sim.New(c)
		if err != nil {
			return nil, err
		}
		eng.Run()
	}
	return agent, nil
}

// scenarioCellConfig trains the cell's agent (if its scheme needs one)
// and returns the fully-configured evaluation config. Every call is
// independent — fresh agent, fresh compiled timeline — which is the
// batch.Job Build contract.
func scenarioCellConfig(scn scenario.Scenario, plat platform.Platform, spec SchemeSpec, learnerName, explorer string, baseSeed int64, trainSessions int) (sim.Config, error) {
	agent, err := trainSchemeAgent(scn, plat, spec, learnerName, explorer, baseSeed, trainSessions)
	if err != nil {
		return sim.Config{}, err
	}
	evalSeed := baseSeed + 500
	cfg, err := scenarioConfig(scn, plat, evalSeed)
	if err != nil {
		return sim.Config{}, err
	}
	spec.Configure(&cfg, plat, agent)
	return cfg, nil
}

func scenarioCell(scn scenario.Scenario, plat platform.Platform, spec SchemeSpec, learnerName, explorer string, baseSeed int64, trainSessions int) (sim.Result, error) {
	cfg, err := scenarioCellConfig(scn, plat, spec, learnerName, explorer, baseSeed, trainSessions)
	if err != nil {
		return sim.Result{}, err
	}
	eng, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return eng.Run(), nil
}

// RunScenarioOn compiles the scenario at seed for the named registry
// platform and runs it with an optional controller — the single-run
// entry point fleetsim and tools use.
func RunScenarioOn(platformName string, scn scenario.Scenario, seed int64, controller ctrl.Controller) (sim.Result, error) {
	plat, err := platform.Get(platformName)
	if err != nil {
		return sim.Result{}, err
	}
	cfg, err := scenarioConfig(scn, plat, seed)
	if err != nil {
		return sim.Result{}, err
	}
	if controller != nil {
		cfg.Controller = controller
	}
	eng, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return eng.Run(), nil
}

// WriteScenarioGrid prints the grid the way cmd/nextbench -scenarios
// does — the shared printer keeps CLI output and the byte-identity
// tests on the same bytes. The learner column appears only when the
// grid actually swept a non-default learner, so default runs print the
// historical layout byte-for-byte.
func WriteScenarioGrid(w io.Writer, rows []ScenarioRow) {
	withLearner := false
	for _, r := range rows {
		if r.Learner != "" && r.Learner != learner.DefaultLearner {
			withLearner = true
			break
		}
	}
	if withLearner {
		fmt.Fprintf(w, "%-18s %-14s %-11s %-14s %9s %9s %9s %9s %8s %10s\n",
			"scenario", "platform", "scheme", "learner", "avgP(W)", "peakP(W)", "bigPk°C", "devPk°C", "actFPS", "energy(J)")
	} else {
		fmt.Fprintf(w, "%-18s %-14s %-11s %9s %9s %9s %9s %8s %10s\n",
			"scenario", "platform", "scheme", "avgP(W)", "peakP(W)", "bigPk°C", "devPk°C", "actFPS", "energy(J)")
	}
	for _, r := range rows {
		if withLearner {
			lrn := r.Learner
			if lrn == "" {
				lrn = "-"
			}
			fmt.Fprintf(w, "%-18s %-14s %-11s %-14s %9.3f %9.2f %9.1f %9.1f %8.1f %10.0f\n",
				r.Scenario, r.Platform, r.Scheme, lrn,
				r.Result.AvgPowerW, r.Result.PeakPowerW,
				r.Result.PeakTempBigC, r.Result.PeakTempDevC,
				r.Result.ActiveAvgFPS, r.Result.EnergyJ)
		} else {
			fmt.Fprintf(w, "%-18s %-14s %-11s %9.3f %9.2f %9.1f %9.1f %8.1f %10.0f\n",
				r.Scenario, r.Platform, r.Scheme,
				r.Result.AvgPowerW, r.Result.PeakPowerW,
				r.Result.PeakTempBigC, r.Result.PeakTempDevC,
				r.Result.ActiveAvgFPS, r.Result.EnergyJ)
		}
	}
}
