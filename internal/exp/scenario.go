package exp

import (
	"fmt"
	"io"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/core"
	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/governor"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/scenario"
	"nextdvfs/internal/sim"
)

// ScenarioOptions sizes a scenario × platform × scheme grid run.
type ScenarioOptions struct {
	Seed int64
	// Scenarios names the presets to run (nil = the whole library).
	Scenarios []string
	// Platforms names the registry devices (nil = [note9]).
	Platforms []string
	// Schemes names the management stacks per cell (nil = [schedutil,
	// next]). Known: schedutil, next, intqospm, thermalcap, performance,
	// powersave.
	Schemes []string
	// Parallel sizes the batch worker pool (0 = GOMAXPROCS, 1 =
	// sequential). Cells are independent — each trains its own agent and
	// compiles its own timeline — so results are byte-identical at any
	// worker count.
	Parallel int
	// DurationScale shrinks every scenario (0 or 1 = full length);
	// tests and smoke runs use small factors to keep wall time bounded.
	DurationScale float64
	// TrainSessions is how many scenario sessions train each "next"
	// cell's agent (0 → 6).
	TrainSessions int
}

func (o *ScenarioOptions) defaults() {
	if len(o.Scenarios) == 0 {
		o.Scenarios = scenario.Names()
	}
	if len(o.Platforms) == 0 {
		o.Platforms = []string{platform.DefaultName}
	}
	if len(o.Schemes) == 0 {
		o.Schemes = []string{"schedutil", "next"}
	}
	if o.TrainSessions <= 0 {
		o.TrainSessions = 6
	}
}

// ScenarioRow is one grid cell's outcome.
type ScenarioRow struct {
	Scenario string
	Platform string
	Scheme   string
	Result   sim.Result
}

// ScenarioGrid evaluates every (scenario, platform, scheme) cell of the
// options across the batch pool and returns rows in fixed
// scenario-major, platform-middle, scheme-minor order. All schemes of a
// (scenario, platform) pair replay the byte-identical compiled
// timeline, so their rows are directly comparable; "next" cells first
// train a fresh agent on TrainSessions differently-seeded sessions of
// the same scenario.
func ScenarioGrid(opts ScenarioOptions) ([]ScenarioRow, error) {
	opts.defaults()
	type cell struct {
		scn  scenario.Scenario
		plat platform.Platform
		si   int
		pi   int
		sch  string
	}
	var cells []cell
	for si, sn := range opts.Scenarios {
		scn, err := scenario.Get(sn)
		if err != nil {
			return nil, err
		}
		scn = scenario.Scaled(scn, opts.DurationScale)
		for pi, pn := range opts.Platforms {
			plat, err := platform.Get(pn)
			if err != nil {
				return nil, err
			}
			for _, sch := range opts.Schemes {
				if !knownScheme(sch) {
					return nil, fmt.Errorf("exp: unknown scheme %q (have: schedutil, next, intqospm, thermalcap, performance, powersave)", sch)
				}
				cells = append(cells, cell{scn: scn, plat: plat, si: si, pi: pi, sch: sch})
			}
		}
	}

	rows := make([]ScenarioRow, len(cells))
	errs := make([]error, len(cells))
	batch.Map(len(cells), opts.Parallel, func(i int) {
		c := cells[i]
		// Seeds derive from the (scenario, platform) pair only, so every
		// scheme replays the identical evaluation timeline.
		base := opts.Seed + int64(c.si)*100_003 + int64(c.pi)*1_009
		res, err := scenarioCell(c.scn, c.plat, c.sch, base, opts.TrainSessions)
		rows[i] = ScenarioRow{Scenario: c.scn.Name, Platform: c.plat.Name, Scheme: c.sch, Result: res}
		errs[i] = err // cells are validated up front; this is defensive
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func knownScheme(s string) bool {
	switch s {
	case "schedutil", "next", "intqospm", "thermalcap", "performance", "powersave":
		return true
	}
	return false
}

// scenarioConfig compiles the scenario at seed and assembles the
// platform's sim config with the environment schedules attached.
func scenarioConfig(scn scenario.Scenario, plat platform.Platform, seed int64) (sim.Config, error) {
	compiled, err := scenario.Compile(scn, seed, plat.AmbientC)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := plat.Config(compiled.Timeline, seed)
	cfg.Ambient = compiled.Ambient
	cfg.Refresh = compiled.Refresh
	return cfg, nil
}

func scenarioCell(scn scenario.Scenario, plat platform.Platform, scheme string, baseSeed int64, trainSessions int) (sim.Result, error) {
	var agent *core.Agent
	if scheme == "next" {
		cfg := DefaultAgentConfigFor(plat)
		cfg.Seed = baseSeed
		agent = core.NewAgent(cfg)
		for i := 1; i <= trainSessions; i++ {
			seed := baseSeed + int64(i)
			c, err := scenarioConfig(scn, plat, seed)
			if err != nil {
				return sim.Result{}, err
			}
			c.Controller = agent
			eng, err := sim.New(c)
			if err != nil {
				return sim.Result{}, err
			}
			eng.Run()
		}
	}

	evalSeed := baseSeed + 500
	cfg, err := scenarioConfig(scn, plat, evalSeed)
	if err != nil {
		return sim.Result{}, err
	}
	switch scheme {
	case "schedutil":
		// Platform default.
	case "next":
		cfg.Controller = agent
	case "intqospm":
		cfg.Controller = NewIntQoSOn(plat)
	case "thermalcap":
		cfg.Controller = governor.NewThermalCap(governor.DefaultThermalCapConfig())
	case "performance":
		cfg.Governor = governor.Performance{}
	case "powersave":
		cfg.Governor = governor.Powersave{}
	}
	eng, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return eng.Run(), nil
}

// RunScenarioOn compiles the scenario at seed for the named registry
// platform and runs it with an optional controller — the single-run
// entry point fleetsim and tools use.
func RunScenarioOn(platformName string, scn scenario.Scenario, seed int64, controller ctrl.Controller) (sim.Result, error) {
	plat, err := platform.Get(platformName)
	if err != nil {
		return sim.Result{}, err
	}
	cfg, err := scenarioConfig(scn, plat, seed)
	if err != nil {
		return sim.Result{}, err
	}
	if controller != nil {
		cfg.Controller = controller
	}
	eng, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return eng.Run(), nil
}

// WriteScenarioGrid prints the grid the way cmd/nextbench -scenarios
// does — the shared printer keeps CLI output and the byte-identity
// tests on the same bytes.
func WriteScenarioGrid(w io.Writer, rows []ScenarioRow) {
	fmt.Fprintf(w, "%-18s %-14s %-11s %9s %9s %9s %9s %8s %10s\n",
		"scenario", "platform", "scheme", "avgP(W)", "peakP(W)", "bigPk°C", "devPk°C", "actFPS", "energy(J)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-14s %-11s %9.3f %9.2f %9.1f %9.1f %8.1f %10.0f\n",
			r.Scenario, r.Platform, r.Scheme,
			r.Result.AvgPowerW, r.Result.PeakPowerW,
			r.Result.PeakTempBigC, r.Result.PeakTempDevC,
			r.Result.ActiveAvgFPS, r.Result.EnergyJ)
	}
}
