package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"nextdvfs/internal/scenario"
)

// The scenario-grid acceptance pin: every preset, run through the full
// scheme pair, is byte-identical at -parallel 1 and -parallel 8 — both
// as marshalled rows and as the exact bytes cmd/nextbench -scenarios
// prints (WriteScenarioGrid is the CLI's printer).
func TestScenarioGridParallelByteIdentical(t *testing.T) {
	run := func(parallel int) ([]ScenarioRow, []byte) {
		rows, err := ScenarioGrid(ScenarioOptions{
			Seed:          42,
			Parallel:      parallel,
			DurationScale: 0.02,
			TrainSessions: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		WriteScenarioGrid(&buf, rows)
		return rows, buf.Bytes()
	}
	rows1, out1 := run(1)
	rows8, out8 := run(8)

	j1, err := json.Marshal(rows1)
	if err != nil {
		t.Fatal(err)
	}
	j8, err := json.Marshal(rows8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatal("scenario grid rows differ between -parallel 1 and -parallel 8")
	}
	if !bytes.Equal(out1, out8) {
		t.Fatalf("printed grid differs between -parallel 1 and -parallel 8:\n%s\n--- vs ---\n%s", out1, out8)
	}

	// Every preset × scheme cell is present, in library order.
	wantRows := len(scenario.Names()) * 2
	if len(rows1) != wantRows {
		t.Fatalf("%d rows, want %d", len(rows1), wantRows)
	}
	for i, name := range scenario.Names() {
		if rows1[2*i].Scenario != name || rows1[2*i].Scheme != "schedutil" ||
			rows1[2*i+1].Scenario != name || rows1[2*i+1].Scheme != "next" {
			t.Fatalf("row order broken at %s: %+v / %+v", name, rows1[2*i], rows1[2*i+1])
		}
		if rows1[2*i].Result.DurationS <= 0 {
			t.Fatalf("%s: empty result", name)
		}
	}
}

func TestScenarioGridEnvironmentMatters(t *testing.T) {
	rows, err := ScenarioGrid(ScenarioOptions{
		Seed:          7,
		Scenarios:     []string{"thermal-soak", "cold-start"},
		Schemes:       []string{"schedutil"},
		DurationScale: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	soak, cold := rows[0].Result, rows[1].Result
	// A 35 °C car versus a 5 °C street must dominate everything else the
	// two scenarios differ in.
	if soak.PeakTempBigC <= cold.PeakTempBigC+10 {
		t.Fatalf("thermal-soak peak %.1f °C vs cold-start %.1f °C — ambient not driving the grid",
			soak.PeakTempBigC, cold.PeakTempBigC)
	}
}

func TestScenarioGridRejectsUnknownNames(t *testing.T) {
	if _, err := ScenarioGrid(ScenarioOptions{Scenarios: []string{"nope"}}); err == nil {
		t.Fatal("unknown scenario should error")
	}
	if _, err := ScenarioGrid(ScenarioOptions{Platforms: []string{"nope"}}); err == nil {
		t.Fatal("unknown platform should error")
	}
	if _, err := ScenarioGrid(ScenarioOptions{Schemes: []string{"nope"}}); err == nil {
		t.Fatal("unknown scheme should error")
	}
}
