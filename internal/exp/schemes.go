package exp

import (
	"fmt"
	"sort"
	"strings"

	"nextdvfs/internal/core"
	"nextdvfs/internal/governor"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/sim"
)

// SchemeSpec is one registered power/thermal management stack: the
// registry replaces the string switches that used to be duplicated
// across the scenario grid, the evaluation drivers and the facade, so
// adding a scheme is one entry here and every surface — grids, CLIs,
// error messages — picks it up.
type SchemeSpec struct {
	Name        string
	Description string
	// TrainsAgent marks schemes that evaluate a trained Next agent;
	// grid cells train one first and pass it to Configure.
	TrainsAgent bool
	// Configure mutates a cell's sim config for the scheme. agent is
	// non-nil exactly when TrainsAgent is set.
	Configure func(cfg *sim.Config, plat platform.Platform, agent *core.Agent)
}

var schemeRegistry = map[string]SchemeSpec{}

func registerScheme(s SchemeSpec) {
	if _, dup := schemeRegistry[s.Name]; dup {
		panic("exp: duplicate scheme " + s.Name)
	}
	schemeRegistry[s.Name] = s
}

func init() {
	registerScheme(SchemeSpec{
		Name:        "schedutil",
		Description: "stock Android utilization governor with input boost (the paper's baseline)",
		Configure:   func(*sim.Config, platform.Platform, *core.Agent) {}, // platform default
	})
	registerScheme(SchemeSpec{
		Name:        "next",
		Description: "the paper's RL agent on top of schedutil",
		TrainsAgent: true,
		Configure: func(cfg *sim.Config, _ platform.Platform, agent *core.Agent) {
			cfg.Controller = agent
		},
	})
	registerScheme(SchemeSpec{
		Name:        "intqospm",
		Description: "Int. QoS PM baseline (games only; others fall back to schedutil)",
		Configure: func(cfg *sim.Config, plat platform.Platform, _ *core.Agent) {
			cfg.Controller = NewIntQoSOn(plat)
		},
	})
	registerScheme(SchemeSpec{
		Name:        "thermalcap",
		Description: "kernel-thermal-zone-style capping on the big sensor's trip point",
		Configure: func(cfg *sim.Config, _ platform.Platform, _ *core.Agent) {
			cfg.Controller = governor.NewThermalCap(governor.DefaultThermalCapConfig())
		},
	})
	registerScheme(SchemeSpec{
		Name:        "performance",
		Description: "every cluster pinned to its cap (bracketing governor)",
		Configure: func(cfg *sim.Config, _ platform.Platform, _ *core.Agent) {
			cfg.Governor = governor.Performance{}
		},
	})
	registerScheme(SchemeSpec{
		Name:        "powersave",
		Description: "every cluster pinned to its floor (bracketing governor)",
		Configure: func(cfg *sim.Config, _ platform.Platform, _ *core.Agent) {
			cfg.Governor = governor.Powersave{}
		},
	})
}

// Schemes lists the registered scheme names, sorted.
func Schemes() []string {
	names := make([]string, 0, len(schemeRegistry))
	for n := range schemeRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SchemeInfos lists every registered scheme, sorted by name.
func SchemeInfos() []SchemeSpec {
	names := Schemes()
	infos := make([]SchemeSpec, 0, len(names))
	for _, n := range names {
		infos = append(infos, schemeRegistry[n])
	}
	return infos
}

// GetScheme resolves a scheme name ("" = schedutil). The unknown-name
// error enumerates the live registry, so the message can never drift
// from the actual set.
func GetScheme(name string) (SchemeSpec, error) {
	if name == "" {
		name = "schedutil"
	}
	s, ok := schemeRegistry[name]
	if !ok {
		return SchemeSpec{}, fmt.Errorf("exp: unknown scheme %q (have: %s)", name, strings.Join(Schemes(), ", "))
	}
	return s, nil
}

// KnownScheme reports whether name is registered ("" counts: it
// resolves to schedutil).
func KnownScheme(name string) bool {
	_, err := GetScheme(name)
	return err == nil
}
