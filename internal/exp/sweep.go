package exp

import (
	"fmt"
	"io"
	"strings"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/learner"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/scenario"
	"nextdvfs/internal/sim"
)

// SeedSweepOptions sizes a seed sweep: one scenario, one platform, one
// scheme, Runs engine seeds. This is the canonical lockstep-batching
// shape — every run shares the scenario's compiled structure (phase
// layout, ambient and refresh schedules) and differs only in the engine
// seed that drives jitter, input timing and exploration.
type SeedSweepOptions struct {
	// Scenario names the preset to sweep ("" = mixed-day).
	Scenario string
	// Platform names the registry device ("" = note9).
	Platform string
	// Scheme names the management stack ("" = schedutil).
	Scheme string
	// Learner / Explorer configure agent-training schemes ("" =
	// watkins / egreedy); governor schemes ignore them.
	Learner  string
	Explorer string
	// Seed is the structural seed: it fixes the compiled scenario shape
	// every run replays, and run i executes with engine seed Seed+i.
	Seed int64
	// Runs is the sweep width (0 → 8).
	Runs int
	// Parallel sizes the worker pool (0 = GOMAXPROCS).
	Parallel int
	// DurationScale shrinks the scenario (0 or 1 = full length).
	DurationScale float64
	// TrainSessions is how many sessions train an agent scheme's agent
	// per run (0 → 6).
	TrainSessions int
	// Lockstep steps all runs through one sim.BatchEngine instead of
	// one scalar engine each. Rows are byte-identical either way — the
	// batched engine is pinned bit-identical to scalar runs — so this
	// is purely a throughput knob.
	Lockstep bool
}

func (o *SeedSweepOptions) defaults() {
	if o.Scenario == "" {
		o.Scenario = "mixed-day"
	}
	if o.Platform == "" {
		o.Platform = platform.DefaultName
	}
	if o.Scheme == "" {
		o.Scheme = "schedutil"
	}
	if o.Runs <= 0 {
		o.Runs = 8
	}
	if o.TrainSessions <= 0 {
		o.TrainSessions = 6
	}
}

// SeedSweepRow is one run's outcome.
type SeedSweepRow struct {
	Seed   int64
	Result sim.Result
}

// SeedSweep runs the scenario Runs times with consecutive engine seeds
// over a shared compiled structure and returns rows in seed order.
func SeedSweep(opts SeedSweepOptions) ([]SeedSweepRow, error) {
	opts.defaults()
	scn, err := scenario.Get(opts.Scenario)
	if err != nil {
		return nil, err
	}
	scn = scenario.Scaled(scn, opts.DurationScale)
	plat, err := platform.Get(opts.Platform)
	if err != nil {
		return nil, err
	}
	spec, err := GetScheme(opts.Scheme)
	if err != nil {
		return nil, err
	}
	lrn := ""
	if spec.TrainsAgent {
		if !learner.Known(opts.Learner) {
			return nil, fmt.Errorf("exp: unknown learner %q (have: %s)", opts.Learner, strings.Join(learner.Names(), ", "))
		}
		if !learner.KnownExplorer(opts.Explorer) {
			return nil, fmt.Errorf("exp: unknown explorer %q (have: %s)", opts.Explorer, strings.Join(learner.ExplorerNames(), ", "))
		}
		lrn = learner.Normalize(opts.Learner)
	}

	jobs := make([]batch.Job, opts.Runs)
	for i := range jobs {
		engineSeed := opts.Seed + int64(i)
		jobs[i] = batch.Job{
			App:      scn.Name,
			Scheme:   spec.Name,
			Platform: plat.Name,
			Seed:     engineSeed,
			Build: func() (sim.Config, error) {
				return sweepLaneConfig(scn, plat, spec, lrn, opts.Explorer, opts.Seed, engineSeed, opts.TrainSessions)
			},
		}
		if opts.Lockstep {
			jobs[i].LockstepKey = fmt.Sprintf("sweep|%s|%s|%s|%d", scn.Name, plat.Name, spec.Name, opts.Seed)
		}
	}
	results := batch.Run(jobs, batch.Options{Parallel: opts.Parallel})
	rows := make([]SeedSweepRow, len(results))
	for i, r := range results {
		if r.Err != "" {
			return nil, fmt.Errorf("exp: sweep seed %d: %s", r.Seed, r.Err)
		}
		rows[i] = SeedSweepRow{Seed: r.Seed, Result: r.Result}
	}
	return rows, nil
}

// sweepLaneConfig assembles one sweep lane: the scenario compiles at
// the shared structural seed (identical phase structure and schedules
// in every lane, fresh app instances) while the engine seed is the
// lane's own. Agent schemes train a fresh per-lane agent first —
// training sessions vary structurally with the engine seed, so they
// run scalar; only the evaluation run locksteps.
func sweepLaneConfig(scn scenario.Scenario, plat platform.Platform, spec SchemeSpec, learnerName, explorer string, structSeed, engineSeed int64, trainSessions int) (sim.Config, error) {
	agent, err := trainSchemeAgent(scn, plat, spec, learnerName, explorer, engineSeed, trainSessions)
	if err != nil {
		return sim.Config{}, err
	}
	compiled, err := scenario.Compile(scn, structSeed, plat.AmbientC)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := plat.Config(compiled.Timeline, engineSeed)
	cfg.Ambient = compiled.Ambient
	cfg.Refresh = compiled.Refresh
	spec.Configure(&cfg, plat, agent)
	return cfg, nil
}

// WriteSeedSweep prints per-seed rows and an unweighted mean line — the
// printer cmd/nextbench -sweep uses.
func WriteSeedSweep(w io.Writer, rows []SeedSweepRow) {
	fmt.Fprintf(w, "%-8s %9s %9s %9s %9s %8s %10s\n",
		"seed", "avgP(W)", "peakP(W)", "bigPk°C", "devPk°C", "actFPS", "energy(J)")
	var mp, mpk, mb, md, mf, me float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %9.3f %9.2f %9.1f %9.1f %8.1f %10.0f\n",
			r.Seed, r.Result.AvgPowerW, r.Result.PeakPowerW,
			r.Result.PeakTempBigC, r.Result.PeakTempDevC,
			r.Result.ActiveAvgFPS, r.Result.EnergyJ)
		mp += r.Result.AvgPowerW
		mpk += r.Result.PeakPowerW
		mb += r.Result.PeakTempBigC
		md += r.Result.PeakTempDevC
		mf += r.Result.ActiveAvgFPS
		me += r.Result.EnergyJ
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(w, "%-8s %9.3f %9.2f %9.1f %9.1f %8.1f %10.0f\n",
			"mean", mp/n, mpk/n, mb/n, md/n, mf/n, me/n)
	}
}
