package exp

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The sweep wiring pin: Lockstep on and off must produce byte-identical
// rows — the BatchEngine is an execution strategy, never a result
// change — for both a bare governor scheme and an agent-training one.
func TestSeedSweepLockstepByteIdentical(t *testing.T) {
	for _, scheme := range []string{"schedutil", "next"} {
		t.Run(scheme, func(t *testing.T) {
			run := func(lockstep bool) []SeedSweepRow {
				rows, err := SeedSweep(SeedSweepOptions{
					Scenario:      "doomscroll",
					Scheme:        scheme,
					Seed:          42,
					Runs:          4,
					Parallel:      2,
					DurationScale: 0.02,
					TrainSessions: 1,
					Lockstep:      lockstep,
				})
				if err != nil {
					t.Fatal(err)
				}
				return rows
			}
			scalar, lockstep := run(false), run(true)
			a, _ := json.Marshal(scalar)
			b, _ := json.Marshal(lockstep)
			if !bytes.Equal(a, b) {
				t.Fatal("lockstep sweep rows diverged from scalar rows")
			}
			for i, r := range lockstep {
				if r.Seed != 42+int64(i) {
					t.Fatalf("row %d seed %d, want %d", i, r.Seed, 42+int64(i))
				}
				if r.Result.DurationS <= 0 {
					t.Fatalf("row %d empty result", i)
				}
			}
			// The sweep must actually vary: distinct engine seeds over the
			// same structure should not collapse to one trajectory.
			if lockstep[0].Result.EnergyJ == lockstep[1].Result.EnergyJ {
				t.Fatal("seeds 42 and 43 produced identical energy; engine seed not applied")
			}
		})
	}
}

func TestSeedSweepRejectsUnknownNames(t *testing.T) {
	if _, err := SeedSweep(SeedSweepOptions{Scenario: "nope"}); err == nil {
		t.Fatal("unknown scenario should error")
	}
	if _, err := SeedSweep(SeedSweepOptions{Platform: "nope"}); err == nil {
		t.Fatal("unknown platform should error")
	}
	if _, err := SeedSweep(SeedSweepOptions{Scheme: "nope"}); err == nil {
		t.Fatal("unknown scheme should error")
	}
	if _, err := SeedSweep(SeedSweepOptions{Scheme: "next", Learner: "nope"}); err == nil {
		t.Fatal("unknown learner should error")
	}
}

// The grid wiring pin: ScenarioGrid Lockstep batches every (scenario,
// platform) pair's schemes through one engine, and rows — and the exact
// bytes the CLI prints — stay identical to the scalar grid.
func TestScenarioGridLockstepByteIdentical(t *testing.T) {
	run := func(lockstep bool) ([]ScenarioRow, []byte) {
		rows, err := ScenarioGrid(ScenarioOptions{
			Seed:          42,
			Scenarios:     []string{"doomscroll", "cold-start"},
			Parallel:      4,
			DurationScale: 0.02,
			TrainSessions: 1,
			Lockstep:      lockstep,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		WriteScenarioGrid(&buf, rows)
		return rows, buf.Bytes()
	}
	scalarRows, scalarOut := run(false)
	lockRows, lockOut := run(true)
	a, _ := json.Marshal(scalarRows)
	b, _ := json.Marshal(lockRows)
	if !bytes.Equal(a, b) {
		t.Fatal("lockstep grid rows diverged from scalar grid")
	}
	if !bytes.Equal(scalarOut, lockOut) {
		t.Fatalf("printed grid differs:\n%s\n--- vs ---\n%s", scalarOut, lockOut)
	}
}
