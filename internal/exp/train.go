package exp

import (
	"fmt"
	"math/rand"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/core"
	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// TrainOptions controls on-device training of a Next agent.
type TrainOptions struct {
	// MaxSessions bounds training when convergence never latches.
	MaxSessions int
	// SessionSecs is the length of each training session.
	SessionSecs float64
	// BaseSeed derives per-session seeds.
	BaseSeed int64
	// AgentConfig overrides the default agent configuration.
	AgentConfig *core.AgentConfig
	// Platform names the registry device to train on ("" = note9).
	Platform string
	// Learner names the TD update rule from the learner registry
	// ("" = keep the config's, i.e. watkins by default).
	Learner string
	// Explorer names the exploration strategy ("" = keep the config's).
	Explorer string
}

func (o *TrainOptions) defaults() {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 16
	}
	if o.SessionSecs <= 0 {
		o.SessionSecs = 150
	}
}

// TrainStats reports how training went.
type TrainStats struct {
	App       string
	Sessions  int
	Converged bool
	// TrainedUS is the accumulated on-device training time (the paper's
	// "training period"; ~3 min 27 s on average for a new app).
	TrainedUS int64
	States    int
	Steps     int64
}

// Train runs repeated sessions of the app on a fresh device (the
// registry platform named in the options; Note 9 by default) until the
// agent's Q-table converges (or MaxSessions elapse) and returns the
// trained agent. makeApp must return a fresh instance per call.
// Training is inherently sequential — every session mutates the same
// agent — so the parallel grain lives one level up, in the drivers that
// train independent agents (see fig78.go).
func Train(makeApp func() *workload.ProfileApp, opts TrainOptions) (*core.Agent, TrainStats) {
	opts.defaults()
	plat := platform.MustGet(opts.Platform)
	cfg := DefaultAgentConfigFor(plat)
	if opts.AgentConfig != nil {
		cfg = *opts.AgentConfig
	}
	if opts.Learner != "" {
		cfg.Learner = opts.Learner
	}
	if opts.Explorer != "" {
		cfg.Explorer = opts.Explorer
	}
	cfg.Seed = opts.BaseSeed
	agent := core.NewAgent(cfg)
	name := makeApp().Name()

	// The full session budget always runs: convergence only timestamps
	// the "trained" point (the paper's training-period measurement);
	// the remaining sessions keep refining the policy online, exactly
	// as a deployed agent would across a user's day.
	stats := TrainStats{App: name}
	for i := 1; i <= opts.MaxSessions; i++ {
		seed := opts.BaseSeed + int64(i)
		rng := rand.New(rand.NewSource(seed))
		tl := &session.Timeline{Scripts: []session.Script{
			session.ForApp(makeApp(), session.Seconds(opts.SessionSecs), rng),
		}}
		runOn(plat, tl, seed, agent)
		stats.Sessions = i
		if tab := agent.TableFor(name); tab != nil && tab.Trained {
			stats.Converged = true
		}
	}
	if tab := agent.TableFor(name); tab != nil && tab.Table != nil {
		stats.TrainedUS = tab.Table.TrainedUS
		stats.States = tab.Table.States()
		stats.Steps = tab.Table.Steps
		if tab.Table.ConvergedAtUS > 0 {
			stats.TrainedUS = tab.Table.ConvergedAtUS
		}
	}
	return agent, stats
}

// DefaultAgentConfigFor returns the paper-default agent configuration
// adapted to a platform: on fast panels the FPS/target quantizers are
// widened to span the refresh rate — without this every frame rate
// above 60 collapses into one state bin. Every driver that builds a
// default agent for a registry platform must go through here.
func DefaultAgentConfigFor(p platform.Platform) core.AgentConfig {
	cfg := core.DefaultAgentConfig()
	if float64(p.RefreshHz) > cfg.State.MaxFPS {
		cfg.State.MaxFPS = float64(p.RefreshHz)
	}
	return cfg
}

// mustResults asserts every job in a batch succeeded and returns the
// results — experiment wiring is code, not input, so a failed build is
// a panic, with the job's labels in the message.
func mustResults(res []batch.RunResult) []batch.RunResult {
	for _, r := range res {
		if r.Err != "" {
			panic(fmt.Sprintf("exp: %s/%s on %s: %s", r.App, r.Scheme, r.Platform, r.Err))
		}
	}
	return res
}

// runOn executes a timeline on the given platform with an optional
// controller (nil = bare schedutil) and an optional config mutator.
func runOn(p platform.Platform, tl *session.Timeline, seed int64, controller ctrl.Controller, mutate ...func(*sim.Config)) sim.Result {
	cfg := p.Config(tl, seed)
	if controller != nil {
		cfg.Controller = controller
	}
	for _, m := range mutate {
		m(&cfg)
	}
	eng, err := sim.New(cfg)
	if err != nil {
		panic(err) // experiment wiring is code, not input
	}
	return eng.Run()
}

// runWith is runOn on the default platform (the paper's Note 9) — the
// shorthand the paper-figure drivers use.
func runWith(tl *session.Timeline, seed int64, controller ctrl.Controller, mutate ...func(*sim.Config)) sim.Result {
	return runOn(platform.MustGet(platform.DefaultName), tl, seed, controller, mutate...)
}

// RunTimeline executes a timeline on the Note 9 with an optional
// controller — the exported single-run entry point used by tools and
// examples.
func RunTimeline(tl *session.Timeline, seed int64, controller ctrl.Controller) sim.Result {
	return runWith(tl, seed, controller)
}

// RunTimelineOn is RunTimeline on a named registry platform.
func RunTimelineOn(platformName string, tl *session.Timeline, seed int64, controller ctrl.Controller) (sim.Result, error) {
	p, err := platform.Get(platformName)
	if err != nil {
		return sim.Result{}, err
	}
	return runOn(p, tl, seed, controller), nil
}
