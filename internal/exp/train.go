package exp

import (
	"math/rand"

	"nextdvfs/internal/core"
	"nextdvfs/internal/ctrl"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// TrainOptions controls on-device training of a Next agent.
type TrainOptions struct {
	// MaxSessions bounds training when convergence never latches.
	MaxSessions int
	// SessionSecs is the length of each training session.
	SessionSecs float64
	// BaseSeed derives per-session seeds.
	BaseSeed int64
	// AgentConfig overrides the default agent configuration.
	AgentConfig *core.AgentConfig
}

func (o *TrainOptions) defaults() {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 16
	}
	if o.SessionSecs <= 0 {
		o.SessionSecs = 150
	}
}

// TrainStats reports how training went.
type TrainStats struct {
	App       string
	Sessions  int
	Converged bool
	// TrainedUS is the accumulated on-device training time (the paper's
	// "training period"; ~3 min 27 s on average for a new app).
	TrainedUS int64
	States    int
	Steps     int64
}

// Train runs repeated sessions of the app on a fresh Note 9 until the
// agent's Q-table converges (or MaxSessions elapse) and returns the
// trained agent. makeApp must return a fresh instance per call.
func Train(makeApp func() *workload.ProfileApp, opts TrainOptions) (*core.Agent, TrainStats) {
	opts.defaults()
	cfg := core.DefaultAgentConfig()
	if opts.AgentConfig != nil {
		cfg = *opts.AgentConfig
	}
	cfg.Seed = opts.BaseSeed
	agent := core.NewAgent(cfg)
	name := makeApp().Name()

	// The full session budget always runs: convergence only timestamps
	// the "trained" point (the paper's training-period measurement);
	// the remaining sessions keep refining the policy online, exactly
	// as a deployed agent would across a user's day.
	stats := TrainStats{App: name}
	for i := 1; i <= opts.MaxSessions; i++ {
		seed := opts.BaseSeed + int64(i)
		rng := rand.New(rand.NewSource(seed))
		tl := &session.Timeline{Scripts: []session.Script{
			session.ForApp(makeApp(), session.Seconds(opts.SessionSecs), rng),
		}}
		runWith(tl, seed, agent)
		stats.Sessions = i
		if tab := agent.TableFor(name); tab != nil && tab.Trained {
			stats.Converged = true
		}
	}
	if tab := agent.TableFor(name); tab != nil && tab.Table != nil {
		stats.TrainedUS = tab.Table.TrainedUS
		stats.States = tab.Table.States()
		stats.Steps = tab.Table.Steps
		if tab.Table.ConvergedAtUS > 0 {
			stats.TrainedUS = tab.Table.ConvergedAtUS
		}
	}
	return agent, stats
}

// runWith executes a timeline on a Note 9 with an optional controller
// (nil = bare schedutil) and an optional config mutator.
func runWith(tl *session.Timeline, seed int64, controller ctrl.Controller, mutate ...func(*sim.Config)) sim.Result {
	cfg := sim.Note9Config(tl, seed)
	if controller != nil {
		cfg.Controller = controller
	}
	for _, m := range mutate {
		m(&cfg)
	}
	eng, err := sim.New(cfg)
	if err != nil {
		panic(err) // experiment wiring is code, not input
	}
	return eng.Run()
}

// RunTimeline executes a timeline with an optional controller — the
// exported single-run entry point used by tools and examples.
func RunTimeline(tl *session.Timeline, seed int64, controller ctrl.Controller) sim.Result {
	return runWith(tl, seed, controller)
}
