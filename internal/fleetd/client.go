package fleetd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"nextdvfs/internal/core"
	"nextdvfs/internal/rollout"
)

// Client is the device-side API of the fleet policy service: what a
// handset (or the fleetsim load generator) uses to check in, upload its
// locally trained Q-tables, trigger merge rounds and pull merged
// policies.
type Client struct {
	base string
	http *http.Client

	// UseBinary switches table traffic to the compact binary wire
	// encoding: uploads go out as application/x-nextdvfs-table and
	// policy downloads send the matching Accept header. Replies are
	// sniffed, so a binary client still interoperates with a JSON-only
	// server. Set before first use; the default (false) keeps every
	// request byte-identical to the legacy JSON wire.
	UseBinary bool
}

// newClientTransport builds the shared HTTP transport. The default
// transport caps idle connections per host at 2, so a fleet harness
// driving hundreds of concurrent devices through one *Client churns a
// fresh TCP connection per check-in; raising the idle pool to the
// fleet-concurrency scale keeps connections alive across the whole
// check-in cycle (measured in BENCH_fleet.json).
func newClientTransport() *http.Transport {
	t, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		return &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 256}
	}
	t = t.Clone()
	t.MaxIdleConns = 512
	t.MaxIdleConnsPerHost = 256
	t.IdleConnTimeout = 90 * time.Second
	return t
}

// NewClient targets a server base URL (e.g. "http://127.0.0.1:8077").
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 30 * time.Second, Transport: newClientTransport()},
	}
}

// RetryAfterError is the typed backpressure signal of the aggregator
// tier: an edge whose upward queue is full answers 429 with a
// Retry-After header, and the client surfaces both so devices can
// delay and re-upload instead of treating the rejection as fatal.
// Detect it with errors.As.
type RetryAfterError struct {
	// Seconds is the server's suggested delay before retrying.
	Seconds float64
	Err     error
}

func (e *RetryAfterError) Error() string { return e.Err.Error() }
func (e *RetryAfterError) Unwrap() error { return e.Err }

// apiErrorOf turns a non-2xx response into a descriptive error.
func apiErrorOf(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e apiError
	err := fmt.Errorf("fleetd: server said %s", resp.Status)
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		err = fmt.Errorf("fleetd: server said %s: %s", resp.Status, e.Error)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		secs, _ := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64)
		return &RetryAfterError{Seconds: secs, Err: err}
	}
	return err
}

func (c *Client) decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErrorOf(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Checkin announces the device and returns which merged policies exist
// for its platform.
func (c *Client) Checkin(device, platform string) (CheckinReply, error) {
	body, err := json.Marshal(CheckinRequest{Device: device, Platform: platform})
	if err != nil {
		return CheckinReply{}, err
	}
	resp, err := c.http.Post(c.base+"/v1/checkin", "application/json", bytes.NewReader(body))
	if err != nil {
		return CheckinReply{}, err
	}
	var reply CheckinReply
	err = c.decode(resp, &reply)
	return reply, err
}

// UploadTable sends the device's table for one app. The table's app
// name travels inside the marshaled body (compact JSON — or the binary
// encoding when the client is in binary mode).
func (c *Client) UploadTable(device, platform, app string, t *core.QTable) (UploadReply, error) {
	if c.UseBinary {
		data, err := core.MarshalTableBinary(app, t, false)
		if err != nil {
			return UploadReply{}, err
		}
		return c.uploadBody(device, platform, core.TableSetMediaType, 0, data)
	}
	data, err := core.MarshalTableCompact(app, t, false)
	if err != nil {
		return UploadReply{}, err
	}
	return c.uploadBody(device, platform, "application/json", 0, data)
}

// UploadTableSet sends a device's complete learner table set (both
// Double-Q estimators; single-table learners degrade to the plain
// UploadTable wire format).
func (c *Client) UploadTableSet(device, platform, app string, set *core.TableSet) (UploadReply, error) {
	data, contentType, err := c.marshalUpload(app, set)
	if err != nil {
		return UploadReply{}, err
	}
	return c.uploadBody(device, platform, contentType, 0, data)
}

// UploadTableSetDelta sends only the states trained since the last
// accepted upload, echoing that upload's generation. The server
// answers 409 — surfaced as an error matching errors.Is(err,
// ErrDeltaBase) — when the base is gone (restart, eviction, competing
// session); the caller then re-sends the full table. DeltaUploader
// wraps this loop.
func (c *Client) UploadTableSetDelta(device, platform, app string, delta *core.TableSet, baseGen int64) (UploadReply, error) {
	data, contentType, err := c.marshalUpload(app, delta)
	if err != nil {
		return UploadReply{}, err
	}
	return c.uploadBody(device, platform, contentType, baseGen, data)
}

func (c *Client) marshalUpload(app string, set *core.TableSet) ([]byte, string, error) {
	if c.UseBinary {
		data, err := core.MarshalTableSetBinary(app, set, false)
		return data, core.TableSetMediaType, err
	}
	data, err := core.MarshalTableSetCompact(app, set, false)
	return data, "application/json", err
}

func (c *Client) uploadBody(device, platform, contentType string, baseGen int64, data []byte) (UploadReply, error) {
	u := fmt.Sprintf("%s/v1/table?device=%s&platform=%s",
		c.base, url.QueryEscape(device), url.QueryEscape(platform))
	req, err := http.NewRequest(http.MethodPut, u, bytes.NewReader(data))
	if err != nil {
		return UploadReply{}, err
	}
	req.Header.Set("Content-Type", contentType)
	if baseGen > 0 {
		req.Header.Set(baseGenHeader, strconv.FormatInt(baseGen, 10))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return UploadReply{}, err
	}
	if resp.StatusCode == http.StatusConflict {
		err := apiErrorOf(resp)
		resp.Body.Close()
		return UploadReply{}, fmt.Errorf("%w: %s", ErrDeltaBase, err)
	}
	var reply UploadReply
	err = c.decode(resp, &reply)
	return reply, err
}

// Merge asks the server to run a federated merge round for app×platform.
func (c *Client) Merge(app, platform string) (MergeInfo, error) {
	u := fmt.Sprintf("%s/v1/merge?app=%s&platform=%s",
		c.base, url.QueryEscape(app), url.QueryEscape(platform))
	resp, err := c.http.Post(u, "application/json", nil)
	if err != nil {
		return MergeInfo{}, err
	}
	var info MergeInfo
	err = c.decode(resp, &info)
	return info, err
}

// Policy downloads the current merged primary table for app×platform
// along with its merge-round number.
func (c *Client) Policy(app, platform string) (*core.QTable, int64, error) {
	set, round, err := c.PolicySet(app, platform)
	if err != nil {
		return nil, 0, err
	}
	return set.Primary(), round, nil
}

// PolicySet downloads the complete merged learner table set for
// app×platform along with its merge-round number.
func (c *Client) PolicySet(app, platform string) (*core.TableSet, int64, error) {
	u := fmt.Sprintf("%s/v1/policy?app=%s&platform=%s",
		c.base, url.QueryEscape(app), url.QueryEscape(platform))
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, err
	}
	if c.UseBinary {
		req.Header.Set("Accept", core.TableSetMediaType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, apiErrorOf(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	// Sniffed, not assumed: a binary-mode client downgrades cleanly
	// when talking to a JSON-only server.
	_, set, _, err := core.UnmarshalTableSetAny(data)
	if err != nil {
		return nil, 0, err
	}
	round, _ := strconv.ParseInt(resp.Header.Get(roundHeader), 10, 64)
	return set, round, nil
}

// PolicyMeta is the lifecycle metadata a version-aware policy download
// carries: which artifact version the device got, which cohort it is
// in, the merge round, and the ETag to echo back next time.
type PolicyMeta struct {
	Version int64
	Cohort  string
	Round   int64
	ETag    string
}

// PolicyForDevice is the version-aware policy download: the server
// resolves the device's cohort (canary devices get the candidate
// artifact during a staged rollout) and honors If-None-Match — when
// etag matches the current artifact the server answers 304 and
// PolicyForDevice returns (nil, meta, false, nil), skipping the
// redundant table download. Pass the ETag from the previous call ("" on
// the first).
func (c *Client) PolicyForDevice(device, app, platform, etag string) (*core.TableSet, PolicyMeta, bool, error) {
	u := fmt.Sprintf("%s/v1/policy?app=%s&platform=%s&device=%s",
		c.base, url.QueryEscape(app), url.QueryEscape(platform), url.QueryEscape(device))
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, PolicyMeta{}, false, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	if c.UseBinary {
		req.Header.Set("Accept", core.TableSetMediaType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, PolicyMeta{}, false, err
	}
	defer resp.Body.Close()
	meta := PolicyMeta{ETag: resp.Header.Get("ETag")}
	meta.Version, _ = strconv.ParseInt(resp.Header.Get(versionHeader), 10, 64)
	meta.Round, _ = strconv.ParseInt(resp.Header.Get(roundHeader), 10, 64)
	meta.Cohort = resp.Header.Get(cohortHeader)
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil, meta, false, nil
	case http.StatusOK:
	default:
		return nil, PolicyMeta{}, false, apiErrorOf(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, PolicyMeta{}, false, err
	}
	_, set, _, err := core.UnmarshalTableSetAny(data)
	if err != nil {
		return nil, PolicyMeta{}, false, err
	}
	return set, meta, true, nil
}

// ReportEval submits a device's measured evaluation of the policy
// version it ran; the reply names the cohort the report counted toward.
func (c *Client) ReportEval(app, platform string, rep rollout.EvalReport) (ReportReply, error) {
	body, err := json.Marshal(rep)
	if err != nil {
		return ReportReply{}, err
	}
	u := fmt.Sprintf("%s/v1/report?app=%s&platform=%s",
		c.base, url.QueryEscape(app), url.QueryEscape(platform))
	resp, err := c.http.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		return ReportReply{}, err
	}
	var reply ReportReply
	err = c.decode(resp, &reply)
	return reply, err
}

// RolloutStatus fetches one policy's rollout state.
func (c *Client) RolloutStatus(app, platform string) (rollout.Status, error) {
	u := fmt.Sprintf("%s/v1/rollout?app=%s&platform=%s",
		c.base, url.QueryEscape(app), url.QueryEscape(platform))
	resp, err := c.http.Get(u)
	if err != nil {
		return rollout.Status{}, err
	}
	var st rollout.Status
	err = c.decode(resp, &st)
	return st, err
}

// RolloutStatuses lists rollout state for every policy key.
func (c *Client) RolloutStatuses() ([]rollout.Status, error) {
	resp, err := c.http.Get(c.base + "/v1/rollout")
	if err != nil {
		return nil, err
	}
	var sts []rollout.Status
	err = c.decode(resp, &sts)
	return sts, err
}

// RolloutAdvance asks the server to judge the active stage: promote,
// advance, or automatically roll back on a QoS/energy regression.
func (c *Client) RolloutAdvance(app, platform string) (rollout.Decision, error) {
	return c.rolloutAction("advance", app, platform)
}

// RolloutRollback is the operator override: drop the candidate and
// return the whole fleet to the stable artifact.
func (c *Client) RolloutRollback(app, platform string) (rollout.Decision, error) {
	return c.rolloutAction("rollback", app, platform)
}

func (c *Client) rolloutAction(action, app, platform string) (rollout.Decision, error) {
	u := fmt.Sprintf("%s/v1/rollout/%s?app=%s&platform=%s",
		c.base, action, url.QueryEscape(app), url.QueryEscape(platform))
	resp, err := c.http.Post(u, "application/json", nil)
	if err != nil {
		return rollout.Decision{}, err
	}
	var d rollout.Decision
	err = c.decode(resp, &d)
	return d, err
}

// Apps lists the server's known policies, optionally filtered to one
// platform ("" = all).
func (c *Client) Apps(platform string) ([]KeyInfo, error) {
	u := c.base + "/v1/apps"
	if platform != "" {
		u += "?platform=" + url.QueryEscape(platform)
	}
	resp, err := c.http.Get(u)
	if err != nil {
		return nil, err
	}
	var infos []KeyInfo
	err = c.decode(resp, &infos)
	return infos, err
}

// Healthz probes liveness and returns the server's health summary.
func (c *Client) Healthz() (HealthReply, error) {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return HealthReply{}, err
	}
	var reply HealthReply
	err = c.decode(resp, &reply)
	return reply, err
}

// MetricsText fetches the raw Prometheus exposition.
func (c *Client) MetricsText() (string, error) {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiErrorOf(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}
