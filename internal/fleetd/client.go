package fleetd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"nextdvfs/internal/core"
)

// Client is the device-side API of the fleet policy service: what a
// handset (or the fleetsim load generator) uses to check in, upload its
// locally trained Q-tables, trigger merge rounds and pull merged
// policies.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a server base URL (e.g. "http://127.0.0.1:8077").
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// apiErrorOf turns a non-2xx response into a descriptive error.
func apiErrorOf(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e apiError
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("fleetd: server said %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("fleetd: server said %s", resp.Status)
}

func (c *Client) decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErrorOf(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Checkin announces the device and returns which merged policies exist
// for its platform.
func (c *Client) Checkin(device, platform string) (CheckinReply, error) {
	body, err := json.Marshal(CheckinRequest{Device: device, Platform: platform})
	if err != nil {
		return CheckinReply{}, err
	}
	resp, err := c.http.Post(c.base+"/v1/checkin", "application/json", bytes.NewReader(body))
	if err != nil {
		return CheckinReply{}, err
	}
	var reply CheckinReply
	err = c.decode(resp, &reply)
	return reply, err
}

// UploadTable sends the device's table for one app. The table's app
// name travels inside the marshaled body (compact JSON — the wire
// doesn't need the on-disk format's indentation).
func (c *Client) UploadTable(device, platform, app string, t *core.QTable) (UploadReply, error) {
	data, err := core.MarshalTableCompact(app, t, false)
	if err != nil {
		return UploadReply{}, err
	}
	return c.uploadBody(device, platform, data)
}

// UploadTableSet sends a device's complete learner table set (both
// Double-Q estimators; single-table learners degrade to the plain
// UploadTable wire format).
func (c *Client) UploadTableSet(device, platform, app string, set *core.TableSet) (UploadReply, error) {
	data, err := core.MarshalTableSetCompact(app, set, false)
	if err != nil {
		return UploadReply{}, err
	}
	return c.uploadBody(device, platform, data)
}

func (c *Client) uploadBody(device, platform string, data []byte) (UploadReply, error) {
	u := fmt.Sprintf("%s/v1/table?device=%s&platform=%s",
		c.base, url.QueryEscape(device), url.QueryEscape(platform))
	req, err := http.NewRequest(http.MethodPut, u, bytes.NewReader(data))
	if err != nil {
		return UploadReply{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return UploadReply{}, err
	}
	var reply UploadReply
	err = c.decode(resp, &reply)
	return reply, err
}

// Merge asks the server to run a federated merge round for app×platform.
func (c *Client) Merge(app, platform string) (MergeInfo, error) {
	u := fmt.Sprintf("%s/v1/merge?app=%s&platform=%s",
		c.base, url.QueryEscape(app), url.QueryEscape(platform))
	resp, err := c.http.Post(u, "application/json", nil)
	if err != nil {
		return MergeInfo{}, err
	}
	var info MergeInfo
	err = c.decode(resp, &info)
	return info, err
}

// Policy downloads the current merged primary table for app×platform
// along with its merge-round number.
func (c *Client) Policy(app, platform string) (*core.QTable, int64, error) {
	set, round, err := c.PolicySet(app, platform)
	if err != nil {
		return nil, 0, err
	}
	return set.Primary(), round, nil
}

// PolicySet downloads the complete merged learner table set for
// app×platform along with its merge-round number.
func (c *Client) PolicySet(app, platform string) (*core.TableSet, int64, error) {
	u := fmt.Sprintf("%s/v1/policy?app=%s&platform=%s",
		c.base, url.QueryEscape(app), url.QueryEscape(platform))
	resp, err := c.http.Get(u)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, apiErrorOf(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	_, set, _, err := core.UnmarshalTableSet(data)
	if err != nil {
		return nil, 0, err
	}
	round, _ := strconv.ParseInt(resp.Header.Get(roundHeader), 10, 64)
	return set, round, nil
}

// Apps lists the server's known policies, optionally filtered to one
// platform ("" = all).
func (c *Client) Apps(platform string) ([]KeyInfo, error) {
	u := c.base + "/v1/apps"
	if platform != "" {
		u += "?platform=" + url.QueryEscape(platform)
	}
	resp, err := c.http.Get(u)
	if err != nil {
		return nil, err
	}
	var infos []KeyInfo
	err = c.decode(resp, &infos)
	return infos, err
}

// Healthz probes liveness and returns the server's health summary.
func (c *Client) Healthz() (HealthReply, error) {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return HealthReply{}, err
	}
	var reply HealthReply
	err = c.decode(resp, &reply)
	return reply, err
}

// MetricsText fetches the raw Prometheus exposition.
func (c *Client) MetricsText() (string, error) {
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiErrorOf(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}
