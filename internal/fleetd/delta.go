package fleetd

import (
	"errors"

	"nextdvfs/internal/core"
	"nextdvfs/internal/learner"
)

// DeltaUploader wraps a Client with the delta-upload state machine for
// one device×app×platform stream: it remembers the last accepted
// upload and its generation, diffs each new snapshot against it, and
// sends only the changed states with the generation echoed in
// X-Fleet-Base-Gen. Any base mismatch (server restart, store eviction,
// a competing uploader) comes back as 409 and the uploader transparently
// re-sends the full table, re-arming delta mode from the new
// generation. Servers that don't track generations — aggregator edges,
// whose replies carry no gen — permanently disable delta mode for this
// stream and every later upload goes out full, exactly as before.
//
// Not safe for concurrent use; each simulated device owns its own
// DeltaUploader (matching the one-session-per-device fleet model).
type DeltaUploader struct {
	c                     *Client
	device, platform, app string

	gen      int64
	prev     *core.TableSet
	disabled bool
}

// NewDeltaUploader starts a delta-upload stream. The first Upload is
// always full.
func (c *Client) NewDeltaUploader(device, platform, app string) *DeltaUploader {
	return &DeltaUploader{c: c, device: device, platform: platform, app: app}
}

// Upload sends the device's current table set, as a delta when
// possible. The set is read, never retained or mutated; callers may
// keep training on it afterwards.
func (d *DeltaUploader) Upload(set *core.TableSet) (UploadReply, error) {
	if !d.disabled && d.gen > 0 && d.prev != nil {
		if delta, ok := diffTableSet(d.prev, set); ok {
			reply, err := d.c.UploadTableSetDelta(d.device, d.platform, d.app, delta, d.gen)
			switch {
			case err == nil:
				d.accept(set, reply)
				return reply, nil
			case errors.Is(err, ErrDeltaBase):
				// Base gone — fall through to a full upload.
			default:
				return reply, err
			}
		}
		// Deltas can only add or replace states (the merge treats an
		// absent state as "unchanged", not "deleted"), so a snapshot
		// that dropped states also falls back to a full upload.
	}
	reply, err := d.c.UploadTableSet(d.device, d.platform, d.app, set)
	if err != nil {
		return reply, err
	}
	d.accept(set, reply)
	return reply, nil
}

func (d *DeltaUploader) accept(set *core.TableSet, reply UploadReply) {
	if reply.Gen <= 0 {
		// This tier doesn't track generations; stop diffing for good.
		d.disabled, d.gen, d.prev = true, 0, nil
		return
	}
	d.gen = reply.Gen
	d.prev = set.Clone()
}

// diffTableSet returns a set carrying only the states of next whose
// row or visit count differs from prev, with each role's metadata
// (Steps, TrainedUS, ConvergedAtUS) absolute — matching the overlay
// semantics of Store.UploadDelta. ok is false when the diff cannot be
// expressed as an overlay: layout changed, or next dropped a state
// prev had.
func diffTableSet(prev, next *core.TableSet) (*core.TableSet, bool) {
	if prev == nil || next == nil || len(prev.Roles) != len(next.Roles) ||
		learner.Normalize(prev.Learner) != learner.Normalize(next.Learner) {
		return nil, false
	}
	delta := &core.TableSet{Learner: next.Learner, Roles: make([]learner.RoleTable, len(next.Roles))}
	for i, r := range next.Roles {
		p := prev.Roles[i]
		if p.Role != r.Role || p.Table == nil || r.Table == nil || p.Table.Actions != r.Table.Actions {
			return nil, false
		}
		// Overlays can't delete: every state and visit entry the base
		// had must still exist in next, else only a full upload can
		// express the change.
		for s := range p.Table.Q {
			if _, still := r.Table.Q[s]; !still {
				return nil, false
			}
		}
		for s := range p.Table.Visits {
			if _, still := r.Table.Visits[s]; !still {
				return nil, false
			}
		}
		dt := core.NewQTable(r.Table.Actions)
		dt.Steps = r.Table.Steps
		dt.TrainedUS = r.Table.TrainedUS
		dt.ConvergedAtUS = r.Table.ConvergedAtUS
		for s, row := range r.Table.Q {
			old, had := p.Table.Q[s]
			if !had {
				dt.Q[s] = row
				if v, ok := r.Table.Visits[s]; ok {
					dt.Visits[s] = v
				}
				continue
			}
			if p.Table.Visits[s] != r.Table.Visits[s] || !equalActionRow(old, row) {
				dt.Q[s] = row
				if v, ok := r.Table.Visits[s]; ok {
					dt.Visits[s] = v
				}
			}
		}
		// Visit counts without rows (legal, merge-inert) still need to
		// travel when they change.
		for s, v := range r.Table.Visits {
			if _, hasRow := r.Table.Q[s]; hasRow {
				continue
			}
			if _, sent := dt.Visits[s]; sent {
				continue
			}
			if pv, had := p.Table.Visits[s]; !had || pv != v {
				dt.Visits[s] = v
			}
		}
		delta.Roles[i] = learner.RoleTable{Role: r.Role, Table: dt}
	}
	return delta, true
}

func equalActionRow(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
