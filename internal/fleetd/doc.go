// Package fleetd is the fleet policy server: the network-facing half of
// the paper's Section IV-C, where Q-table training is offloaded to a
// server and shared across a fleet of devices.
//
// The server exposes an HTTP/JSON API:
//
//	POST /v1/checkin   device check-in: announces {device, platform} and
//	                   learns which merged policies exist for it
//	PUT  /v1/table     upload one device-trained Q-table (the JSON that
//	                   core.MarshalTable produces)
//	POST /v1/merge     run a federated merge round for one app×platform
//	                   via cloud.MergeTables (visit-weighted averaging)
//	GET  /v1/policy    download the current merged policy for app×platform
//	GET  /v1/apps      list known policies (optionally per platform)
//	GET  /healthz      liveness + table/device counts
//	GET  /metrics      Prometheus-style request counts and merge latencies
//
// Behind the handlers sits Store, a sharded, mutex-striped in-memory
// table store keyed by app×platform. A merge round always recomputes
// from every device's latest upload in sorted-device order, so the
// served policy is a deterministic function of the upload set — a fleet
// driven concurrently converges to the byte-identical table a serial
// cloud.Fleet.MergeApp of the same uploads produces (pinned by the
// end-to-end test in internal/fleetsim).
//
// When configured with a snapshot directory the server persists each
// merged table through core.Store (atomic temp-file + rename writes)
// after every merge round, and a restarted server warms itself from the
// same directory, serving the last merged policies before any device
// re-uploads.
package fleetd
