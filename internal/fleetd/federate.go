package fleetd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"nextdvfs/internal/core"
)

// This file is the root side of the hierarchical fleet: edge
// aggregators (internal/aggregator) batch device uploads and push them
// here over POST /v1/federate. The root stores the raw per-device
// tables exactly as if each device had uploaded directly — never a
// regional pre-average, which would reassociate the merge's float sums
// — so a root merge round stays byte-identical to a flat single-tier
// fleet (see cloud.JoinDevices).

// FederatedUpload is one device's table relayed by an aggregator: the
// device and platform that produced it plus the compact wire body the
// device originally uploaded, unmodified. The root re-validates and
// re-sanitizes it as if the device had uploaded directly.
type FederatedUpload struct {
	Device   string          `json:"device"`
	Platform string          `json:"platform"`
	Body     json.RawMessage `json:"body"`
}

// FederateRequest is one batched upward push from an edge aggregator.
type FederateRequest struct {
	// Agg names the pushing aggregator (a single [a-zA-Z0-9._-]
	// segment), for logs and partial-success attribution.
	Agg string `json:"agg"`
	// Devices lists device IDs that checked in at the edge since the
	// last push, so root-side device tracking and rollout cohort floors
	// count the whole fleet, not the handful of aggregators.
	Devices []string `json:"devices,omitempty"`
	// Uploads carries the queued device tables, oldest first.
	Uploads []FederatedUpload `json:"uploads,omitempty"`
}

// FederateReply summarizes a federation push. Acceptance is per item:
// a poisoned upload is rejected (and sampled into Errors) while the
// rest of the batch lands, so an aggregator drops it instead of
// retrying the whole batch forever.
type FederateReply struct {
	Agg        string   `json:"agg"`
	Registered int      `json:"registered"`
	Accepted   int      `json:"accepted"`
	Rejected   int      `json:"rejected"`
	Errors     []string `json:"errors,omitempty"`
}

// maxFederateErrors caps the rejection-reason sample in a reply.
const maxFederateErrors = 8

func (s *Server) handleFederate(w http.ResponseWriter, r *http.Request) int {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxFederateBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("fleetd: federation push exceeds %d bytes", tooBig.Limit))
		}
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("fleetd: reading federation body: %w", err))
	}
	var req FederateRequest
	if mediaType(r.Header.Get("Content-Type")) == FederateMediaType {
		req, err = UnmarshalFederateRequest(data)
	} else {
		err = json.Unmarshal(data, &req)
	}
	if err != nil {
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("fleetd: bad federation body: %w", err))
	}
	if !safeName(req.Agg) {
		return writeErr(w, http.StatusBadRequest,
			fmt.Errorf("fleetd: federation push needs an aggregator ID as a single [a-zA-Z0-9._-] segment"))
	}
	reply := FederateReply{Agg: req.Agg}
	for _, d := range req.Devices {
		if safeName(d) {
			s.noteDevice(d)
			reply.Registered++
		}
	}
	for _, up := range req.Uploads {
		if err := s.acceptFederated(up); err != nil {
			reply.Rejected++
			if len(reply.Errors) < maxFederateErrors {
				reply.Errors = append(reply.Errors, err.Error())
			}
			continue
		}
		reply.Accepted++
	}
	return writeJSON(w, http.StatusOK, reply)
}

// acceptFederated lands one relayed device table through the same
// validation and sanitization path a direct upload takes. Bodies are
// sniffed per upload (UnmarshalTableSetAny) because one envelope may
// relay a mixed fleet of binary and legacy-JSON devices.
func (s *Server) acceptFederated(up FederatedUpload) error {
	if int64(len(up.Body)) > s.cfg.MaxBodyBytes {
		return fmt.Errorf("fleetd: federated upload from %q exceeds %d bytes", up.Device, s.cfg.MaxBodyBytes)
	}
	app, set, _, err := core.UnmarshalTableSetAny(up.Body)
	if err != nil {
		return fmt.Errorf("fleetd: federated upload from %q: %w", up.Device, err)
	}
	_, err = s.store.UploadSetOwned(Key{App: app, Platform: up.Platform}, up.Device, set)
	return err
}

// Federate pushes a batch of device tables (and newly checked-in
// device IDs) upward to the root. Aggregators call it from their flush
// pipeline; devices never do. The envelope encoding is chosen
// automatically: if any queued body is binary (or the client is in
// binary mode) the push uses the NXTF envelope, since json.RawMessage
// cannot carry binary bodies; otherwise the legacy JSON envelope goes
// out byte-identical to before.
func (c *Client) Federate(req FederateRequest) (FederateReply, error) {
	binary := c.UseBinary
	for _, up := range req.Uploads {
		if core.IsBinaryTableSet(up.Body) {
			binary = true
			break
		}
	}
	var body []byte
	var err error
	contentType := "application/json"
	if binary {
		body, contentType = MarshalFederateRequest(req), FederateMediaType
	} else if body, err = json.Marshal(req); err != nil {
		return FederateReply{}, err
	}
	resp, err := c.http.Post(c.base+"/v1/federate", contentType, bytes.NewReader(body))
	if err != nil {
		return FederateReply{}, err
	}
	var reply FederateReply
	err = c.decode(resp, &reply)
	return reply, err
}
