package fleetd

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalFederateRequest hammers the NXTF envelope parser with
// hostile input: it must never panic or over-allocate (counts are
// bounded against the remaining buffer before any make), and every
// envelope it does accept must survive a marshal round trip
// byte-identically — the decode-is-a-fixed-point property the wire
// tests pin for hand-built envelopes, extended to whatever the fuzzer
// finds.
func FuzzUnmarshalFederateRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("NXTF"))
	f.Add([]byte("{\"agg\":\"edge\"}"))
	seed := MarshalFederateRequest(FederateRequest{
		Agg:     "edge-west",
		Devices: []string{"dev-a", "dev-b"},
		Uploads: []FederatedUpload{
			{Device: "dev-a", Platform: "note9", Body: []byte("{}")},
			{Device: "dev-b", Platform: "sd855", Body: []byte{0x4e, 0x58, 0x54, 0x42, 0x01}},
		},
	})
	f.Add(seed)
	for cut := 1; cut < len(seed); cut += 7 {
		f.Add(seed[:cut])
	}
	// Non-minimal varint (0x80 0x00 encodes 0 in two bytes): the fuzzer
	// found this breaking the fixed-point property before the reader
	// rejected non-canonical encodings; keep it as a regression seed.
	f.Add([]byte("NXTF\x01\t000000000\x02\x0500000\x0500000\x80\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := UnmarshalFederateRequest(data)
		if err != nil {
			return
		}
		again := MarshalFederateRequest(req)
		if !bytes.Equal(again, data) {
			t.Fatalf("accepted envelope is not a marshal fixed point:\n in: %x\nout: %x", data, again)
		}
		req2, err := UnmarshalFederateRequest(again)
		if err != nil {
			t.Fatalf("re-decode of re-marshaled envelope failed: %v", err)
		}
		if req2.Agg != req.Agg || len(req2.Devices) != len(req.Devices) || len(req2.Uploads) != len(req.Uploads) {
			t.Fatal("round trip changed the envelope shape")
		}
	})
}
