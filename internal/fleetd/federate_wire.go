package fleetd

import (
	"encoding/binary"
	"fmt"
	"math"
)

// FederateMediaType is the Content-Type of the binary federation
// envelope (NXTF v1). The JSON envelope embeds each device body as a
// json.RawMessage, which cannot carry the binary table encoding, so an
// aggregator relaying binary device uploads must push the binary
// envelope; JSON envelopes remain the default and stay byte-identical.
const FederateMediaType = "application/x-nextdvfs-federate"

// NXTF v1 layout, little-endian throughout:
//
//	magic "NXTF" | version u8 | agg str |
//	uvarint device-count | device str ... |
//	uvarint upload-count | (device str, platform str, body blob) ...
//
// where str and blob are uvarint length-prefixed byte strings. Counts
// and lengths are bounds-checked against the remaining input before
// allocation, and trailing bytes are rejected, mirroring the NXTB
// table codec's hostile-input posture.
const (
	fedMagic   = "NXTF"
	fedVersion = 1
)

// MarshalFederateRequest encodes a federation push as an NXTF v1
// envelope. Bodies travel verbatim, whichever table encoding they use.
func MarshalFederateRequest(req FederateRequest) []byte {
	size := len(fedMagic) + 1 + strSize(req.Agg) + binary.MaxVarintLen64
	for _, d := range req.Devices {
		size += strSize(d)
	}
	size += binary.MaxVarintLen64
	for _, up := range req.Uploads {
		size += strSize(up.Device) + strSize(up.Platform) + binary.MaxVarintLen64 + len(up.Body)
	}
	out := make([]byte, 0, size)
	out = append(out, fedMagic...)
	out = append(out, fedVersion)
	out = appendStr(out, req.Agg)
	out = binary.AppendUvarint(out, uint64(len(req.Devices)))
	for _, d := range req.Devices {
		out = appendStr(out, d)
	}
	out = binary.AppendUvarint(out, uint64(len(req.Uploads)))
	for _, up := range req.Uploads {
		out = appendStr(out, up.Device)
		out = appendStr(out, up.Platform)
		out = binary.AppendUvarint(out, uint64(len(up.Body)))
		out = append(out, up.Body...)
	}
	return out
}

func strSize(s string) int { return binary.MaxVarintLen64 + len(s) }

func appendStr(out []byte, s string) []byte {
	out = binary.AppendUvarint(out, uint64(len(s)))
	return append(out, s...)
}

// IsFederateEnvelope reports whether data starts with the NXTF magic.
func IsFederateEnvelope(data []byte) bool {
	return len(data) >= len(fedMagic) && string(data[:len(fedMagic)]) == fedMagic
}

// fedReader is a bounds-checked cursor over an NXTF envelope.
type fedReader struct {
	data []byte
	off  int
}

func (r *fedReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("fleetd: truncated varint at offset %d", r.off)
	}
	// Reject non-minimal encodings (e.g. 0x80 0x00 for 0): the wire
	// format is canonical, so every accepted envelope re-marshals to
	// the exact bytes it arrived as.
	if n > 1 && r.data[r.off+n-1] == 0 {
		return 0, fmt.Errorf("fleetd: non-minimal varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *fedReader) bytes(what string) ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.off) {
		return nil, fmt.Errorf("fleetd: %s length %d exceeds remaining input", what, n)
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *fedReader) str(what string) (string, error) {
	b, err := r.bytes(what)
	return string(b), err
}

// UnmarshalFederateRequest decodes an NXTF v1 envelope. Upload bodies
// alias the input buffer (the caller owns it until the request is
// fully absorbed).
func UnmarshalFederateRequest(data []byte) (FederateRequest, error) {
	var req FederateRequest
	if !IsFederateEnvelope(data) {
		return req, fmt.Errorf("fleetd: not a federation envelope")
	}
	if len(data) < len(fedMagic)+1 {
		return req, fmt.Errorf("fleetd: truncated federation envelope")
	}
	if v := data[len(fedMagic)]; v != fedVersion {
		return req, fmt.Errorf("fleetd: unsupported federation envelope version %d", v)
	}
	r := &fedReader{data: data, off: len(fedMagic) + 1}
	var err error
	if req.Agg, err = r.str("agg"); err != nil {
		return req, err
	}
	nDev, err := r.uvarint()
	if err != nil {
		return req, err
	}
	// Every device entry needs at least its length byte.
	if nDev > uint64(len(r.data)-r.off) || nDev > math.MaxInt32 {
		return req, fmt.Errorf("fleetd: device count %d exceeds remaining input", nDev)
	}
	if nDev > 0 {
		req.Devices = make([]string, 0, nDev)
		for i := uint64(0); i < nDev; i++ {
			d, err := r.str("device")
			if err != nil {
				return req, err
			}
			req.Devices = append(req.Devices, d)
		}
	}
	nUp, err := r.uvarint()
	if err != nil {
		return req, err
	}
	// Each upload needs at least 3 length bytes (device, platform, body).
	if nUp > uint64(len(r.data)-r.off)/3 {
		return req, fmt.Errorf("fleetd: upload count %d exceeds remaining input", nUp)
	}
	if nUp > 0 {
		req.Uploads = make([]FederatedUpload, 0, nUp)
		for i := uint64(0); i < nUp; i++ {
			var up FederatedUpload
			if up.Device, err = r.str("upload device"); err != nil {
				return req, err
			}
			if up.Platform, err = r.str("upload platform"); err != nil {
				return req, err
			}
			if up.Body, err = r.bytes("upload body"); err != nil {
				return req, err
			}
			req.Uploads = append(req.Uploads, up)
		}
	}
	if r.off != len(r.data) {
		return req, fmt.Errorf("fleetd: %d trailing bytes after federation envelope", len(r.data)-r.off)
	}
	return req, nil
}
