package fleetd

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nextdvfs/internal/rollout"
)

// numLabels counts the API endpoints instrumented below.
const numLabels = 10

// Request labels, one per API endpoint. The metrics page iterates this
// list so every counter appears even at zero.
var requestLabels = [numLabels]string{"checkin", "upload", "merge", "federate", "policy", "apps", "rollout", "report", "healthz", "metrics"}

// mergeRingSize is the window behind the merge-latency quantiles: the
// last 256 rounds, enough to smooth a burst without letting ancient
// rounds dominate after a traffic shift.
const mergeRingSize = 256

// Metrics is the server's instrumentation: per-endpoint request and
// error counters plus a merge-latency summary, all lock-free atomics on
// the hot path.
type Metrics struct {
	start    time.Time
	requests [numLabels]atomic.Int64
	errors   [numLabels]atomic.Int64

	mergeCount atomic.Int64
	mergeSumUS atomic.Int64
	mergeMaxUS atomic.Int64

	// mergeRing holds recent merge latencies for the exposition's named
	// quantiles. A plain mutex is fine here: merge rounds are orders of
	// magnitude rarer than check-ins, so this never sits on the serving
	// hot path.
	mergeMu    sync.Mutex
	mergeRing  [mergeRingSize]int64
	mergeRingN int64

	snapshots atomic.Int64
	restored  atomic.Int64
}

// NewMetrics starts the uptime clock.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

func labelIndex(label string) int {
	for i, l := range requestLabels {
		if l == label {
			return i
		}
	}
	panic("fleetd: unknown metrics label " + label)
}

func (m *Metrics) request(idx int)  { m.requests[idx].Add(1) }
func (m *Metrics) errored(idx int)  { m.errors[idx].Add(1) }
func (m *Metrics) snapshotWritten() { m.snapshots.Add(1) }

// observeMerge records one merge round's latency.
func (m *Metrics) observeMerge(d time.Duration) {
	us := d.Microseconds()
	m.mergeCount.Add(1)
	m.mergeSumUS.Add(us)
	m.mergeMu.Lock()
	m.mergeRing[m.mergeRingN%mergeRingSize] = us
	m.mergeRingN++
	m.mergeMu.Unlock()
	for {
		cur := m.mergeMaxUS.Load()
		if us <= cur || m.mergeMaxUS.CompareAndSwap(cur, us) {
			return
		}
	}
}

// mergeQuantiles returns the named latency quantiles (nearest-rank)
// over the ring window, or nil before the first merge round.
func (m *Metrics) mergeQuantiles(qs ...float64) []int64 {
	m.mergeMu.Lock()
	n := m.mergeRingN
	if n > mergeRingSize {
		n = mergeRingSize
	}
	window := make([]int64, n)
	copy(window, m.mergeRing[:n])
	m.mergeMu.Unlock()
	if len(window) == 0 {
		return nil
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	out := make([]int64, len(qs))
	for i, q := range qs {
		out[i] = window[int(q*float64(len(window)-1)+0.5)]
	}
	return out
}

// Requests returns the total request count across endpoints.
func (m *Metrics) Requests() int64 {
	var n int64
	for i := range m.requests {
		n += m.requests[i].Load()
	}
	return n
}

// MergeLatency reports the merge-round latency summary.
func (m *Metrics) MergeLatency() (count, sumUS, maxUS int64) {
	return m.mergeCount.Load(), m.mergeSumUS.Load(), m.mergeMaxUS.Load()
}

// write renders the Prometheus text exposition. Store-level gauges are
// passed in so the metrics page reflects the live table store.
func (m *Metrics) write(w io.Writer, keys, merged, uploads, devices, untracked int) {
	fmt.Fprintf(w, "# HELP fleetd_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE fleetd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "fleetd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# HELP fleetd_requests_total Requests served, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE fleetd_requests_total counter\n")
	for i, l := range requestLabels {
		fmt.Fprintf(w, "fleetd_requests_total{endpoint=%q} %d\n", l, m.requests[i].Load())
	}
	fmt.Fprintf(w, "# HELP fleetd_request_errors_total Requests answered with an error status, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE fleetd_request_errors_total counter\n")
	for i, l := range requestLabels {
		fmt.Fprintf(w, "fleetd_request_errors_total{endpoint=%q} %d\n", l, m.errors[i].Load())
	}

	count, sumUS, maxUS := m.MergeLatency()
	fmt.Fprintf(w, "# HELP fleetd_merge_latency_us Federated merge round latency in microseconds (quantiles over the last %d rounds; count/sum/max over the server lifetime).\n", mergeRingSize)
	fmt.Fprintf(w, "# TYPE fleetd_merge_latency_us summary\n")
	if qs := m.mergeQuantiles(0.5, 0.9, 0.99); qs != nil {
		fmt.Fprintf(w, "fleetd_merge_latency_us{quantile=\"0.5\"} %d\n", qs[0])
		fmt.Fprintf(w, "fleetd_merge_latency_us{quantile=\"0.9\"} %d\n", qs[1])
		fmt.Fprintf(w, "fleetd_merge_latency_us{quantile=\"0.99\"} %d\n", qs[2])
	}
	fmt.Fprintf(w, "fleetd_merge_latency_us_count %d\n", count)
	fmt.Fprintf(w, "fleetd_merge_latency_us_sum %d\n", sumUS)
	fmt.Fprintf(w, "fleetd_merge_latency_us_max %d\n", maxUS)

	fmt.Fprintf(w, "# HELP fleetd_policies Known app-platform policies (merged = with a served table).\n")
	fmt.Fprintf(w, "# TYPE fleetd_policies gauge\n")
	fmt.Fprintf(w, "fleetd_policies{state=\"known\"} %d\n", keys)
	fmt.Fprintf(w, "fleetd_policies{state=\"merged\"} %d\n", merged)
	fmt.Fprintf(w, "# HELP fleetd_device_tables Device tables currently held for merging.\n")
	fmt.Fprintf(w, "# TYPE fleetd_device_tables gauge\n")
	fmt.Fprintf(w, "fleetd_device_tables %d\n", uploads)
	fmt.Fprintf(w, "# HELP fleetd_devices_seen Distinct devices that have checked in (lower bound once the tracking set is full).\n")
	fmt.Fprintf(w, "# TYPE fleetd_devices_seen gauge\n")
	fmt.Fprintf(w, "fleetd_devices_seen %d\n", devices)
	fmt.Fprintf(w, "# HELP fleetd_untracked_checkins_total Check-ins from devices not in the bounded tracking set.\n")
	fmt.Fprintf(w, "# TYPE fleetd_untracked_checkins_total counter\n")
	fmt.Fprintf(w, "fleetd_untracked_checkins_total %d\n", untracked)
	fmt.Fprintf(w, "# HELP fleetd_snapshots_total Merged tables written to the snapshot directory.\n")
	fmt.Fprintf(w, "# TYPE fleetd_snapshots_total counter\n")
	fmt.Fprintf(w, "fleetd_snapshots_total %d\n", m.snapshots.Load())
	fmt.Fprintf(w, "# HELP fleetd_restored_tables Policies warm-started from a snapshot at boot.\n")
	fmt.Fprintf(w, "# TYPE fleetd_restored_tables gauge\n")
	fmt.Fprintf(w, "fleetd_restored_tables %d\n", m.restored.Load())
}

// writeRolloutMetrics renders the policy-lifecycle gauges. Emitted only
// on rollout-enabled servers, so the default exposition is unchanged.
func writeRolloutMetrics(w io.Writer, statuses []rollout.Status, rollbacksTotal int64) {
	fmt.Fprintf(w, "# HELP fleetd_rollout_version Current policy artifact version, by policy and lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE fleetd_rollout_version gauge\n")
	for _, st := range statuses {
		if st.Stable != nil {
			fmt.Fprintf(w, "fleetd_rollout_version{policy=%q,state=\"stable\"} %d\n", st.Key, st.Stable.Version)
		}
		if st.Candidate != nil {
			fmt.Fprintf(w, "fleetd_rollout_version{policy=%q,state=\"candidate\"} %d\n", st.Key, st.Candidate.Version)
		}
	}
	fmt.Fprintf(w, "# HELP fleetd_rollout_stage_bps Active canary stage size in basis points (0 = no active rollout); effective widens to the MinCanary floor.\n")
	fmt.Fprintf(w, "# TYPE fleetd_rollout_stage_bps gauge\n")
	for _, st := range statuses {
		fmt.Fprintf(w, "fleetd_rollout_stage_bps{policy=%q,kind=\"stage\"} %d\n", st.Key, st.StageBps)
		fmt.Fprintf(w, "fleetd_rollout_stage_bps{policy=%q,kind=\"effective\"} %d\n", st.Key, st.EffectiveBps)
	}
	fmt.Fprintf(w, "# HELP fleetd_rollout_cohort_reports Evaluation reports collected this stage, by policy and cohort.\n")
	fmt.Fprintf(w, "# TYPE fleetd_rollout_cohort_reports gauge\n")
	for _, st := range statuses {
		fmt.Fprintf(w, "fleetd_rollout_cohort_reports{policy=%q,cohort=\"canary\"} %d\n", st.Key, st.CanaryReports)
		fmt.Fprintf(w, "fleetd_rollout_cohort_reports{policy=%q,cohort=\"control\"} %d\n", st.Key, st.ControlReports)
	}
	fmt.Fprintf(w, "# HELP fleetd_rollout_rollbacks_total Automatic and operator policy rollbacks since start.\n")
	fmt.Fprintf(w, "# TYPE fleetd_rollout_rollbacks_total counter\n")
	fmt.Fprintf(w, "fleetd_rollout_rollbacks_total %d\n", rollbacksTotal)
}
