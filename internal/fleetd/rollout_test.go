package fleetd

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nextdvfs/internal/rollout"
)

// newRolloutServer builds a rollout-enabled test server, also returning
// its base URL for raw-wire assertions the typed client would hide.
func newRolloutServer(t *testing.T, cfg Config) (*Server, *Client, string, func()) {
	t.Helper()
	if cfg.Rollout == nil {
		cfg.Rollout = &rollout.Config{NowUS: func() int64 { return 1000 }}
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return srv, NewClient(ts.URL), ts.URL, ts.Close
}

// checkinFleet registers n fleetsim-named devices so the cohort floor
// sees the same device population the bucket golden tests pin.
func checkinFleet(t *testing.T, client *Client, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := client.Checkin(fmt.Sprintf("dev-%08d", i), "note9"); err != nil {
			t.Fatal(err)
		}
	}
}

// trainAndMerge uploads tables from two devices and runs a merge round.
func trainAndMerge(t *testing.T, client *Client, seedA, seedB int) MergeInfo {
	t.Helper()
	if _, err := client.UploadTable("dev-00000000", "note9", "spotify", devTable(seedA)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.UploadTable("dev-00000001", "note9", "spotify", devTable(seedB)); err != nil {
		t.Fatal(err)
	}
	info, err := client.Merge("spotify", "note9")
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestRolloutLifecycleE2E drives the full healthy path over the wire:
// bootstrap v1 → candidate v2 canaries at 1% (widened to the cohort
// floor) → healthy reports advance to 10% → promote to 100%, with
// version negotiation skipping redundant downloads along the way.
func TestRolloutLifecycleE2E(t *testing.T) {
	dir := t.TempDir()
	srv, client, _, done := newRolloutServer(t, Config{SnapshotDir: dir})
	defer done()

	checkinFleet(t, client, 16)

	// Round 1 bootstraps the first artifact straight to stable.
	info := trainAndMerge(t, client, 1, 2)
	if info.Round != 1 || info.Version != 1 {
		t.Fatalf("bootstrap merge = %+v, want round 1 version 1", info)
	}
	st, err := client.RolloutStatus("spotify", "note9")
	if err != nil {
		t.Fatal(err)
	}
	if st.Stable == nil || st.Stable.Version != 1 || st.Candidate != nil || st.LastAction != "bootstrap" {
		t.Fatalf("post-bootstrap status = %+v", st)
	}

	// Round 2: training continued, the merge differs → candidate v2.
	info = trainAndMerge(t, client, 3, 4)
	if info.Round != 2 || info.Version != 2 {
		t.Fatalf("candidate merge = %+v, want round 2 version 2", info)
	}
	st, _ = client.RolloutStatus("spotify", "note9")
	if st.Candidate == nil || st.Candidate.Version != 2 || st.Candidate.Parent != 1 {
		t.Fatalf("candidate status = %+v", st)
	}
	if st.StageBps != 100 || st.EffectiveBps != 350 {
		// 16 registered fleetsim devices: the lowest bucket is
		// dev-00000011 at 349, so the 1% stage widens to 350 bps to
		// cover the MinCanary=1 floor (pinned by the bucket golden test).
		t.Fatalf("stage = %d/%d bps, want 100/350", st.StageBps, st.EffectiveBps)
	}

	// Cohort resolution: dev-00000011 is the sole canary, everyone else
	// stays on stable v1.
	set, meta, modified, err := client.PolicyForDevice("dev-00000011", "spotify", "note9", "")
	if err != nil || !modified || set == nil {
		t.Fatalf("canary download = set %v, modified %v, err %v", set, modified, err)
	}
	if meta.Version != 2 || meta.Cohort != rollout.CohortCanary {
		t.Fatalf("canary meta = %+v, want v2 canary", meta)
	}
	ctrlSet, ctrlMeta, _, err := client.PolicyForDevice("dev-00000000", "spotify", "note9", "")
	if err != nil || ctrlSet == nil {
		t.Fatal(err)
	}
	if ctrlMeta.Version != 1 || ctrlMeta.Cohort != rollout.CohortControl {
		t.Fatalf("control meta = %+v, want v1 control", ctrlMeta)
	}

	// Version negotiation: echoing the ETag back skips the download.
	if set2, meta2, modified2, err := client.PolicyForDevice("dev-00000011", "spotify", "note9", meta.ETag); err != nil ||
		modified2 || set2 != nil || meta2.Version != 2 {
		t.Fatalf("If-None-Match revalidation = set %v, meta %+v, modified %v, err %v", set2, meta2, modified2, err)
	}

	// Healthy canary evidence at each stage; two judgments promote.
	report := func(device string, version int64) {
		t.Helper()
		reply, err := client.ReportEval("spotify", "note9", rollout.EvalReport{
			Device: device, Version: version, EnergyJ: 100, QoSFPS: 60, DurS: 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := rollout.CohortControl
		if version == 2 {
			want = rollout.CohortCanary
		}
		if reply.Cohort != want {
			t.Fatalf("report %s v%d counted as %q, want %q", device, version, reply.Cohort, want)
		}
	}
	report("dev-00000011", 2)
	report("dev-00000000", 1)
	d, err := client.RolloutAdvance("spotify", "note9")
	if err != nil || d.Action != "advance" {
		t.Fatalf("first advance = %+v, %v", d, err)
	}
	if d.Status.StageBps != 1000 || d.Status.CanaryReports != 0 {
		t.Fatalf("post-advance status = %+v, want 1000 bps and a clean report slate", d.Status)
	}
	report("dev-00000011", 2)
	report("dev-00000000", 1)
	d, err = client.RolloutAdvance("spotify", "note9")
	if err != nil || d.Action != "promote" {
		t.Fatalf("second advance = %+v, %v", d, err)
	}

	// Promotion: the whole fleet now resolves to v2.
	for _, dev := range []string{"dev-00000000", "dev-00000011"} {
		if _, m, _, err := client.PolicyForDevice(dev, "spotify", "note9", ""); err != nil ||
			m.Version != 2 || m.Cohort != rollout.CohortStable {
			t.Fatalf("%s after promote = %+v, %v; want v2 stable", dev, m, err)
		}
	}

	// The lifecycle survives a warm restart from the snapshot dir.
	done()
	srv2, err := NewServer(Config{SnapshotDir: dir, Rollout: &rollout.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	st2, ok := srv2.Rollout().Status("spotify@note9")
	if !ok || st2.Stable == nil || st2.Stable.Version != 2 || st2.Stable.Hash != srvStableHash(srv) {
		t.Fatalf("status after restart = %+v (ok=%v)", st2, ok)
	}
}

func srvStableHash(s *Server) string {
	st, _ := s.Rollout().Status("spotify@note9")
	return st.Stable.Hash
}

// TestRolloutAutoRollbackE2E submits a degraded candidate: the canary
// cohort's energy regression trips the automatic rollback and the fleet
// returns to the last-good artifact.
func TestRolloutAutoRollbackE2E(t *testing.T) {
	_, client, _, done := newRolloutServer(t, Config{})
	defer done()

	checkinFleet(t, client, 16)
	trainAndMerge(t, client, 1, 2)
	info := trainAndMerge(t, client, 9, 10)
	if info.Version != 2 {
		t.Fatalf("candidate merge = %+v", info)
	}

	// Canary burns 20% more energy than control.
	if _, err := client.ReportEval("spotify", "note9", rollout.EvalReport{
		Device: "dev-00000011", Version: 2, EnergyJ: 120, QoSFPS: 60,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ReportEval("spotify", "note9", rollout.EvalReport{
		Device: "dev-00000000", Version: 1, EnergyJ: 100, QoSFPS: 60,
	}); err != nil {
		t.Fatal(err)
	}
	d, err := client.RolloutAdvance("spotify", "note9")
	if err != nil || d.Action != "rollback" || !strings.Contains(d.Reason, "energy") {
		t.Fatalf("advance on degraded canary = %+v, %v; want energy rollback", d, err)
	}

	// The canary device is back on the last-good artifact.
	if _, m, _, err := client.PolicyForDevice("dev-00000011", "spotify", "note9", ""); err != nil ||
		m.Version != 1 || m.Cohort != rollout.CohortStable {
		t.Fatalf("canary after rollback = %+v, %v; want v1 stable", m, err)
	}
	st, _ := client.RolloutStatus("spotify", "note9")
	if st.Rollbacks != 1 || st.Candidate != nil {
		t.Fatalf("status after rollback = %+v", st)
	}
	// The rolled-back version stays inspectable for post-mortems.
	if len(st.Versions) != 2 {
		t.Fatalf("version history after rollback = %v", st.Versions)
	}

	// A report against the retired candidate version is now rejected.
	if _, err := client.ReportEval("spotify", "note9", rollout.EvalReport{
		Device: "dev-00000011", Version: 2, EnergyJ: 100, QoSFPS: 60,
	}); err == nil {
		t.Fatal("report accepted with no active rollout")
	}

	// Operator rollback needs an active candidate too.
	if _, err := client.RolloutRollback("spotify", "note9"); err == nil {
		t.Fatal("rollback accepted with no active candidate")
	}
}

// TestRolloutLegacyByteIdentity pins the compatibility contract: a
// legacy unversioned client (no device param) gets byte-for-byte the
// same policy payload from a rollout-enabled server as from a plain
// one, and never sees a candidate.
func TestRolloutLegacyByteIdentity(t *testing.T) {
	_, plainClient, plainURL, plainDone := func() (*Server, *Client, string, func()) {
		srv, err := NewServer(Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		return srv, NewClient(ts.URL), ts.URL, ts.Close
	}()
	defer plainDone()
	_, rollClient, rollURL, rollDone := newRolloutServer(t, Config{})
	defer rollDone()

	get := func(base string) []byte {
		resp, err := http.Get(base + "/v1/policy?app=spotify&platform=note9")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("policy status = %s", resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	for _, c := range []*Client{plainClient, rollClient} {
		checkinFleet(t, c, 16)
		trainAndMerge(t, c, 1, 2) // identical uploads → identical merged set
	}
	plain, rolled := get(plainURL), get(rollURL)
	if string(plain) != string(rolled) {
		t.Fatalf("legacy policy payload drifted under rollout:\nplain: %s\nrollout: %s", plain, rolled)
	}

	// With a candidate in flight the legacy payload is still the STABLE
	// artifact, byte-identical to what it was before the candidate
	// appeared — unversioned clients cannot report evaluations, so they
	// must never run unvetted policies.
	trainAndMerge(t, rollClient, 3, 4)
	if st, _ := rollClient.RolloutStatus("spotify", "note9"); st.Candidate == nil {
		t.Fatal("expected an in-flight candidate")
	}
	if during := get(rollURL); string(during) != string(rolled) {
		t.Fatalf("legacy payload changed while a candidate is in flight:\nbefore: %s\nduring: %s", rolled, during)
	}
}

// TestRolloutDisabledByDefault pins zero behavior change on servers
// without the lifecycle: no artifact versions in merge replies and 404s
// on the lifecycle endpoints.
func TestRolloutDisabledByDefault(t *testing.T) {
	_, client, _, done := func() (*Server, *Client, string, func()) {
		srv, err := NewServer(Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		return srv, NewClient(ts.URL), ts.URL, ts.Close
	}()
	defer done()

	info := trainAndMerge(t, client, 1, 2)
	if info.Version != 0 {
		t.Fatalf("merge on plain server minted version %d", info.Version)
	}
	if _, err := client.RolloutStatuses(); err == nil || !strings.Contains(err.Error(), "not enabled") {
		t.Fatalf("rollout status on plain server = %v, want not-enabled error", err)
	}
	if _, err := client.RolloutAdvance("spotify", "note9"); err == nil {
		t.Fatal("advance accepted on plain server")
	}
	if _, err := client.ReportEval("spotify", "note9", rollout.EvalReport{Device: "d0", Version: 1}); err == nil {
		t.Fatal("report accepted on plain server")
	}
	text, err := client.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "fleetd_rollout_") {
		t.Fatalf("plain server exposes rollout metrics:\n%s", text)
	}
}

// TestRolloutMetricsExposition covers the lifecycle gauges on a
// rollout-enabled scrape.
func TestRolloutMetricsExposition(t *testing.T) {
	_, client, _, done := newRolloutServer(t, Config{})
	defer done()

	checkinFleet(t, client, 16)
	trainAndMerge(t, client, 1, 2)
	trainAndMerge(t, client, 9, 10)
	client.ReportEval("spotify", "note9", rollout.EvalReport{Device: "dev-00000011", Version: 2, EnergyJ: 150, QoSFPS: 60})
	client.ReportEval("spotify", "note9", rollout.EvalReport{Device: "dev-00000000", Version: 1, EnergyJ: 100, QoSFPS: 60})
	if d, err := client.RolloutAdvance("spotify", "note9"); err != nil || d.Action != "rollback" {
		t.Fatalf("advance = %+v, %v", d, err)
	}

	text, err := client.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`fleetd_rollout_version{policy="spotify@note9",state="stable"} 1`,
		`fleetd_rollout_stage_bps{policy="spotify@note9",kind="stage"} 0`,
		`fleetd_rollout_cohort_reports{policy="spotify@note9",cohort="canary"} 0`,
		`fleetd_rollout_rollbacks_total 1`,
		`fleetd_requests_total{endpoint="rollout"} 1`,
		`fleetd_requests_total{endpoint="report"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}
