package fleetd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"nextdvfs/internal/core"
)

// roundHeader carries the merge-round number on policy downloads.
const roundHeader = "X-Fleet-Round"

// maxTrackedDevices bounds the distinct-device set behind the
// fleetd_devices_seen gauge. Check-ins are unauthenticated, so an
// unbounded set would be a memory leak under ID-spraying traffic; past
// the cap new IDs are counted, not stored, and the gauge becomes a
// lower bound on distinct devices.
const maxTrackedDevices = 1 << 16

// Config tunes a Server.
type Config struct {
	// SnapshotDir, when set, is restored from at construction and
	// written to after every merge round (one atomic file per merged
	// app×platform policy). Empty disables persistence.
	SnapshotDir string
	// MaxBodyBytes bounds upload bodies (0 → 16 MiB).
	MaxBodyBytes int64
}

// Server is the fleet policy service: an http.Handler over a Store.
type Server struct {
	cfg     Config
	store   *Store
	metrics *Metrics
	mux     *http.ServeMux

	devMu       sync.Mutex
	devices     map[string]struct{}
	devOverflow int
}

// NewServer builds a server, warm-starting from cfg.SnapshotDir when
// one is configured and present.
func NewServer(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	s := &Server{
		cfg:     cfg,
		store:   NewStore(),
		metrics: NewMetrics(),
		devices: make(map[string]struct{}),
	}
	if cfg.SnapshotDir != "" {
		n, err := s.store.Restore(cfg.SnapshotDir)
		if err != nil {
			return nil, err
		}
		s.metrics.restored.Store(int64(n))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/checkin", s.instrument("checkin", s.handleCheckin))
	mux.HandleFunc("PUT /v1/table", s.instrument("upload", s.handleUpload))
	mux.HandleFunc("POST /v1/merge", s.instrument("merge", s.handleMerge))
	mux.HandleFunc("GET /v1/policy", s.instrument("policy", s.handlePolicy))
	mux.HandleFunc("GET /v1/apps", s.instrument("apps", s.handleApps))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux = mux
	return s, nil
}

// Handler returns the service's http.Handler (mountable under a parent
// mux or served directly).
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the underlying table store (in-process callers, tests).
func (s *Server) Store() *Store { return s.store }

// Metrics exposes the server's instrumentation.
func (s *Server) Metrics() *Metrics { return s.metrics }

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// handlerFunc is a handler that reports its HTTP status so instrument
// can count errors.
type handlerFunc func(w http.ResponseWriter, r *http.Request) int

func (s *Server) instrument(label string, h handlerFunc) http.HandlerFunc {
	idx := labelIndex(label)
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.request(idx)
		if status := h(w, r); status >= 400 {
			s.metrics.errored(idx)
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
	return status
}

func writeErr(w http.ResponseWriter, status int, err error) int {
	return writeJSON(w, status, apiError{Error: err.Error()})
}

// CheckinRequest is a device's periodic announcement.
type CheckinRequest struct {
	Device   string `json:"device"`
	Platform string `json:"platform"`
}

// CheckinReply tells the device which merged policies exist for its
// platform, so it knows what to download and what still needs training.
type CheckinReply struct {
	Device   string    `json:"device"`
	Platform string    `json:"platform"`
	Policies []KeyInfo `json:"policies"`
}

func (s *Server) handleCheckin(w http.ResponseWriter, r *http.Request) int {
	var req CheckinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("fleetd: bad check-in body: %w", err))
	}
	if !safeName(req.Device) || !safeName(req.Platform) {
		return writeErr(w, http.StatusBadRequest,
			fmt.Errorf("fleetd: check-in needs device and platform as single [a-zA-Z0-9._-] segments"))
	}
	s.devMu.Lock()
	if _, seen := s.devices[req.Device]; !seen {
		if len(s.devices) < maxTrackedDevices {
			s.devices[req.Device] = struct{}{}
		} else {
			s.devOverflow++ // counted, not stored (lower-bound gauge)
		}
	}
	s.devMu.Unlock()
	reply := CheckinReply{Device: req.Device, Platform: req.Platform, Policies: []KeyInfo{}}
	for _, info := range s.store.Infos(req.Platform) {
		if info.Round > 0 {
			reply.Policies = append(reply.Policies, info)
		}
	}
	return writeJSON(w, http.StatusOK, reply)
}

// UploadReply acknowledges a table upload.
type UploadReply struct {
	App      string `json:"app"`
	Platform string `json:"platform"`
	Device   string `json:"device"`
	Devices  int    `json:"devices"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) int {
	device := r.URL.Query().Get("device")
	platform := r.URL.Query().Get("platform")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("fleetd: upload exceeds %d bytes", tooBig.Limit))
		}
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("fleetd: reading upload: %w", err))
	}
	app, set, _, err := core.UnmarshalTableSet(data)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("fleetd: bad table upload: %w", err))
	}
	n, err := s.store.UploadSetOwned(Key{App: app, Platform: platform}, device, set)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, err)
	}
	return writeJSON(w, http.StatusOK, UploadReply{App: app, Platform: platform, Device: device, Devices: n})
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) int {
	k := Key{App: r.URL.Query().Get("app"), Platform: r.URL.Query().Get("platform")}
	start := time.Now()
	info, err := s.store.Merge(k)
	// Latency covers the merge itself, captured once so the reply and
	// the metric agree; snapshot disk I/O is deliberately excluded.
	elapsed := time.Since(start)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, err)
	}
	info.LatencyUS = elapsed.Microseconds()
	s.metrics.observeMerge(elapsed)
	if s.cfg.SnapshotDir != "" {
		if err := s.store.SnapshotKey(s.cfg.SnapshotDir, k); err != nil {
			return writeErr(w, http.StatusInternalServerError, fmt.Errorf("fleetd: snapshotting %s: %w", k, err))
		}
		s.metrics.snapshotWritten()
	}
	return writeJSON(w, http.StatusOK, info)
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) int {
	k := Key{App: r.URL.Query().Get("app"), Platform: r.URL.Query().Get("platform")}
	if err := k.validate(); err != nil {
		return writeErr(w, http.StatusBadRequest, err)
	}
	// PolicySetRef + compact marshal keeps the download path symmetric
	// with the optimized upload path: published sets are immutable, so
	// no defensive clone, and the wire needs no indentation. Multi-table
	// policies travel whole (aux roles under "aux"), so a Double-Q fleet
	// round-trips both estimators.
	set, round, ok := s.store.PolicySetRef(k)
	if !ok {
		return writeErr(w, http.StatusNotFound, fmt.Errorf("fleetd: no merged policy for %s", k))
	}
	data, err := core.MarshalTableSetCompact(k.App, set, true)
	if err != nil {
		return writeErr(w, http.StatusInternalServerError, err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(roundHeader, strconv.FormatInt(round, 10))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	return http.StatusOK
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) int {
	infos := s.store.Infos(r.URL.Query().Get("platform"))
	if infos == nil {
		infos = []KeyInfo{}
	}
	return writeJSON(w, http.StatusOK, infos)
}

// HealthReply is the /healthz body.
type HealthReply struct {
	Status       string  `json:"status"`
	UptimeS      float64 `json:"uptime_s"`
	Policies     int     `json:"policies"`
	Merged       int     `json:"merged"`
	DeviceTables int     `json:"device_tables"`
	Devices      int     `json:"devices"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) int {
	keys, merged, uploads := s.store.Stats()
	s.devMu.Lock()
	devices := len(s.devices)
	s.devMu.Unlock()
	return writeJSON(w, http.StatusOK, HealthReply{
		Status: "ok", UptimeS: time.Since(s.metrics.start).Seconds(),
		Policies: keys, Merged: merged, DeviceTables: uploads, Devices: devices,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) int {
	keys, merged, uploads := s.store.Stats()
	s.devMu.Lock()
	devices, untracked := len(s.devices), s.devOverflow
	s.devMu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, keys, merged, uploads, devices, untracked)
	return http.StatusOK
}
