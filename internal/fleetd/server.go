package fleetd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"nextdvfs/internal/cloud"
	"nextdvfs/internal/core"
	"nextdvfs/internal/rollout"
)

// roundHeader carries the merge-round number on policy downloads.
const roundHeader = "X-Fleet-Round"

// baseGenHeader turns PUT /v1/table into a delta upload: it echoes the
// per-device generation from the device's last accepted UploadReply,
// and the body carries only the states trained since. A mismatch —
// device unknown, server restarted, another session uploaded in
// between — answers 409 Conflict and the client falls back to a full
// upload.
const baseGenHeader = "X-Fleet-Base-Gen"

// Version-negotiation headers on policy downloads when the rollout
// lifecycle is enabled.
const (
	versionHeader = "X-Fleet-Version"
	cohortHeader  = "X-Fleet-Cohort"
)

// maxTrackedDevices bounds the distinct-device set behind the
// fleetd_devices_seen gauge. Check-ins are unauthenticated, so an
// unbounded set would be a memory leak under ID-spraying traffic; past
// the cap new IDs are counted, not stored, and the gauge becomes a
// lower bound on distinct devices.
const maxTrackedDevices = 1 << 16

// Config tunes a Server.
type Config struct {
	// SnapshotDir, when set, is restored from at construction and
	// written to after every merge round (one atomic file per merged
	// app×platform policy). Empty disables persistence.
	SnapshotDir string
	// MaxBodyBytes bounds upload bodies (0 → 16 MiB).
	MaxBodyBytes int64
	// MaxFederateBytes bounds aggregator federation pushes, which batch
	// many device tables per request (0 → 64 MiB).
	MaxFederateBytes int64
	// MaxDevicesPerKey raises the distinct-devices-per-policy cap for
	// root servers that absorb whole aggregator regions of raw device
	// tables (0 → the store default of 4096).
	MaxDevicesPerKey int
	// Rollout enables the policy-lifecycle subsystem: merge rounds mint
	// versioned artifacts that reach the fleet through staged canary
	// cohorts with automatic QoS/energy rollback. Nil disables it —
	// policy serving then behaves exactly as before.
	Rollout *rollout.Config
}

// Server is the fleet policy service: an http.Handler over a Store.
type Server struct {
	cfg     Config
	store   *Store
	metrics *Metrics
	rollout *rollout.Manager // nil unless Config.Rollout is set
	mux     *http.ServeMux

	devMu       sync.Mutex
	devices     map[string]struct{}
	devOverflow int
}

// NewServer builds a server, warm-starting from cfg.SnapshotDir when
// one is configured and present.
func NewServer(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.MaxFederateBytes <= 0 {
		cfg.MaxFederateBytes = 64 << 20
	}
	s := &Server{
		cfg:     cfg,
		store:   NewStoreMaxDevices(cfg.MaxDevicesPerKey),
		metrics: NewMetrics(),
		devices: make(map[string]struct{}),
	}
	if cfg.SnapshotDir != "" {
		n, err := s.store.Restore(cfg.SnapshotDir)
		if err != nil {
			return nil, err
		}
		s.metrics.restored.Store(int64(n))
	}
	if cfg.Rollout != nil {
		s.rollout = rollout.New(*cfg.Rollout)
		if cfg.SnapshotDir != "" {
			if _, err := s.rollout.Restore(s.rolloutDir()); err != nil {
				return nil, err
			}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/checkin", s.instrument("checkin", s.handleCheckin))
	mux.HandleFunc("PUT /v1/table", s.instrument("upload", s.handleUpload))
	mux.HandleFunc("POST /v1/merge", s.instrument("merge", s.handleMerge))
	mux.HandleFunc("POST /v1/federate", s.instrument("federate", s.handleFederate))
	mux.HandleFunc("GET /v1/policy", s.instrument("policy", s.handlePolicy))
	mux.HandleFunc("GET /v1/apps", s.instrument("apps", s.handleApps))
	mux.HandleFunc("GET /v1/rollout", s.instrument("rollout", s.handleRolloutStatus))
	mux.HandleFunc("POST /v1/rollout/advance", s.instrument("rollout", s.handleRolloutAdvance))
	mux.HandleFunc("POST /v1/rollout/rollback", s.instrument("rollout", s.handleRolloutRollback))
	mux.HandleFunc("POST /v1/report", s.instrument("report", s.handleReport))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux = mux
	return s, nil
}

// rolloutDir is where rollout lifecycle state snapshots live, beside
// (not inside) the per-policy table snapshots.
func (s *Server) rolloutDir() string { return filepath.Join(s.cfg.SnapshotDir, "rollout") }

// Rollout exposes the lifecycle manager (nil when disabled) for
// in-process callers and tests.
func (s *Server) Rollout() *rollout.Manager { return s.rollout }

// Handler returns the service's http.Handler (mountable under a parent
// mux or served directly).
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the underlying table store (in-process callers, tests).
func (s *Server) Store() *Store { return s.store }

// Metrics exposes the server's instrumentation.
func (s *Server) Metrics() *Metrics { return s.metrics }

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// handlerFunc is a handler that reports its HTTP status so instrument
// can count errors.
type handlerFunc func(w http.ResponseWriter, r *http.Request) int

func (s *Server) instrument(label string, h handlerFunc) http.HandlerFunc {
	idx := labelIndex(label)
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.request(idx)
		if status := h(w, r); status >= 400 {
			s.metrics.errored(idx)
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
	return status
}

func writeErr(w http.ResponseWriter, status int, err error) int {
	return writeJSON(w, status, apiError{Error: err.Error()})
}

// CheckinRequest is a device's periodic announcement.
type CheckinRequest struct {
	Device   string `json:"device"`
	Platform string `json:"platform"`
}

// CheckinReply tells the device which merged policies exist for its
// platform, so it knows what to download and what still needs training.
type CheckinReply struct {
	Device   string    `json:"device"`
	Platform string    `json:"platform"`
	Policies []KeyInfo `json:"policies"`
}

func (s *Server) handleCheckin(w http.ResponseWriter, r *http.Request) int {
	var req CheckinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("fleetd: bad check-in body: %w", err))
	}
	if !safeName(req.Device) || !safeName(req.Platform) {
		return writeErr(w, http.StatusBadRequest,
			fmt.Errorf("fleetd: check-in needs device and platform as single [a-zA-Z0-9._-] segments"))
	}
	s.noteDevice(req.Device)
	reply := CheckinReply{Device: req.Device, Platform: req.Platform, Policies: []KeyInfo{}}
	for _, info := range s.store.Infos(req.Platform) {
		if info.Round > 0 {
			reply.Policies = append(reply.Policies, info)
		}
	}
	return writeJSON(w, http.StatusOK, reply)
}

// noteDevice records a device in the bounded distinct-device set and
// registers it with the rollout lifecycle — the canary stage widens
// until it covers at least MinCanary registered devices. Check-ins and
// aggregator federation pushes share this path, so cohort floors count
// edge devices too.
func (s *Server) noteDevice(device string) {
	s.devMu.Lock()
	if _, seen := s.devices[device]; !seen {
		if len(s.devices) < maxTrackedDevices {
			s.devices[device] = struct{}{}
		} else {
			s.devOverflow++ // counted, not stored (lower-bound gauge)
		}
	}
	s.devMu.Unlock()
	if s.rollout != nil {
		s.rollout.RegisterDevice(device)
	}
}

// UploadReply acknowledges a table upload. Gen is the device's upload
// generation — echo it in the X-Fleet-Base-Gen header to send the next
// upload as a delta. Servers that don't track generations (aggregator
// edges) omit it.
type UploadReply struct {
	App      string `json:"app"`
	Platform string `json:"platform"`
	Device   string `json:"device"`
	Devices  int    `json:"devices"`
	Gen      int64  `json:"gen,omitempty"`
}

// mediaType normalizes a Content-Type/Accept member: parameters after
// ';' stripped, trimmed, lowercased.
func mediaType(v string) string {
	if i := strings.IndexByte(v, ';'); i >= 0 {
		v = v[:i]
	}
	return strings.ToLower(strings.TrimSpace(v))
}

// DecodeTableSet picks the wire codec by Content-Type: the binary
// media type decodes strictly as NXTB; every other type (including the
// default empty one) takes the legacy JSON path unchanged. The
// aggregator tier shares it so both tiers negotiate identically.
func DecodeTableSet(contentType string, data []byte) (string, *core.TableSet, bool, error) {
	if mediaType(contentType) == core.TableSetMediaType {
		return core.UnmarshalTableSetBinary(data)
	}
	return core.UnmarshalTableSet(data)
}

// AcceptsBinary reports whether any member of the request's Accept
// list names the binary table media type.
func AcceptsBinary(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		if mediaType(part) == core.TableSetMediaType {
			return true
		}
	}
	return false
}

// EncodePolicy encodes a policy body in the negotiated encoding and
// returns the matching Content-Type.
func EncodePolicy(app string, set *core.TableSet, binary bool) ([]byte, string, error) {
	if binary {
		data, err := core.MarshalTableSetBinary(app, set, true)
		return data, core.TableSetMediaType, err
	}
	data, err := core.MarshalTableSetCompact(app, set, true)
	return data, "application/json", err
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) int {
	device := r.URL.Query().Get("device")
	platform := r.URL.Query().Get("platform")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("fleetd: upload exceeds %d bytes", tooBig.Limit))
		}
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("fleetd: reading upload: %w", err))
	}
	app, set, _, err := DecodeTableSet(r.Header.Get("Content-Type"), data)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("fleetd: bad table upload: %w", err))
	}
	k := Key{App: app, Platform: platform}
	if baseHdr := r.Header.Get(baseGenHeader); baseHdr != "" {
		baseGen, perr := strconv.ParseInt(baseHdr, 10, 64)
		if perr != nil {
			return writeErr(w, http.StatusBadRequest,
				fmt.Errorf("fleetd: bad %s header: %w", baseGenHeader, perr))
		}
		n, gen, err := s.store.UploadDelta(k, device, set, baseGen)
		if err != nil {
			if errors.Is(err, ErrDeltaBase) {
				return writeErr(w, http.StatusConflict, err)
			}
			return writeErr(w, http.StatusBadRequest, err)
		}
		return writeJSON(w, http.StatusOK,
			UploadReply{App: app, Platform: platform, Device: device, Devices: n, Gen: gen})
	}
	n, gen, err := s.store.UploadSetGen(k, device, set)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, err)
	}
	return writeJSON(w, http.StatusOK,
		UploadReply{App: app, Platform: platform, Device: device, Devices: n, Gen: gen})
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) int {
	k := Key{App: r.URL.Query().Get("app"), Platform: r.URL.Query().Get("platform")}
	start := time.Now()
	info, set, err := s.store.MergeSet(k)
	// Latency covers the merge itself, captured once so the reply and
	// the metric agree; snapshot disk I/O is deliberately excluded.
	elapsed := time.Since(start)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, err)
	}
	info.LatencyUS = elapsed.Microseconds()
	s.metrics.observeMerge(elapsed)
	if s.rollout != nil {
		// Mint (or dedup to) this round's policy artifact. The merged set
		// is immutable once published, so the artifact shares it.
		art, err := cloud.NewArtifact(set, info.Round, info.Devices)
		if err != nil {
			return writeErr(w, http.StatusInternalServerError, fmt.Errorf("fleetd: building artifact for %s: %w", k, err))
		}
		sub, err := s.rollout.Submit(k.String(), art)
		if err != nil {
			return writeErr(w, http.StatusInternalServerError, err)
		}
		info.Version = sub.Version
	}
	if s.cfg.SnapshotDir != "" {
		if err := s.store.SnapshotKey(s.cfg.SnapshotDir, k); err != nil {
			return writeErr(w, http.StatusInternalServerError, fmt.Errorf("fleetd: snapshotting %s: %w", k, err))
		}
		s.metrics.snapshotWritten()
		if s.rollout != nil {
			if err := s.rollout.SnapshotKey(s.rolloutDir(), k.String()); err != nil {
				return writeErr(w, http.StatusInternalServerError, fmt.Errorf("fleetd: snapshotting rollout %s: %w", k, err))
			}
		}
	}
	return writeJSON(w, http.StatusOK, info)
}

// artifactETag derives the policy ETag a version-aware client echoes
// back via If-None-Match: the version plus a content-hash prefix, so a
// warm restart that renumbers nothing and a same-version different-
// content bug both invalidate correctly.
func artifactETag(meta core.ArtifactMeta) string {
	h := strings.TrimPrefix(meta.Hash, "sha256:")
	if len(h) > 12 {
		h = h[:12]
	}
	return fmt.Sprintf("%q", fmt.Sprintf("v%d-%s", meta.Version, h))
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) int {
	k := Key{App: r.URL.Query().Get("app"), Platform: r.URL.Query().Get("platform")}
	if err := k.validate(); err != nil {
		return writeErr(w, http.StatusBadRequest, err)
	}
	device := r.URL.Query().Get("device")
	if device != "" && !safeName(device) {
		return writeErr(w, http.StatusBadRequest,
			fmt.Errorf("fleetd: device must be a single [a-zA-Z0-9._-] segment"))
	}
	// Accept-negotiated encoding. The ETag hashes the table content,
	// not the transfer encoding, so a client may switch encodings
	// between polls without invalidating its cache.
	binary := AcceptsBinary(r)
	if s.rollout != nil {
		if art, cohort, ok := s.rollout.Resolve(k.String(), device); ok {
			etag := artifactETag(art.ArtifactMeta)
			w.Header().Set(versionHeader, strconv.FormatInt(art.Version, 10))
			w.Header().Set(cohortHeader, cohort)
			w.Header().Set(roundHeader, strconv.FormatInt(art.Round, 10))
			w.Header().Set("ETag", etag)
			// Only version-aware clients (those that identify themselves)
			// get the skip-redundant-download path; a legacy client that
			// happens to send If-None-Match still gets the full body.
			if device != "" && r.Header.Get("If-None-Match") == etag {
				w.WriteHeader(http.StatusNotModified)
				return http.StatusNotModified
			}
			data, ct, err := EncodePolicy(k.App, art.Set, binary)
			if err != nil {
				return writeErr(w, http.StatusInternalServerError, err)
			}
			w.Header().Set("Content-Type", ct)
			w.WriteHeader(http.StatusOK)
			w.Write(data)
			return http.StatusOK
		}
		// No artifact yet for this key (e.g. lifecycle enabled over a
		// pre-rollout snapshot dir): fall through to the legacy path.
	}
	// PolicySetRef + compact marshal keeps the download path symmetric
	// with the optimized upload path: published sets are immutable, so
	// no defensive clone, and the wire needs no indentation. Multi-table
	// policies travel whole (aux roles under "aux"), so a Double-Q fleet
	// round-trips both estimators.
	set, round, ok := s.store.PolicySetRef(k)
	if !ok {
		return writeErr(w, http.StatusNotFound, fmt.Errorf("fleetd: no merged policy for %s", k))
	}
	data, ct, err := EncodePolicy(k.App, set, binary)
	if err != nil {
		return writeErr(w, http.StatusInternalServerError, err)
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set(roundHeader, strconv.FormatInt(round, 10))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	return http.StatusOK
}

// errRolloutDisabled answers lifecycle endpoints on servers running
// without the rollout subsystem.
var errRolloutDisabled = errors.New("fleetd: rollout lifecycle not enabled on this server")

func (s *Server) handleRolloutStatus(w http.ResponseWriter, r *http.Request) int {
	if s.rollout == nil {
		return writeErr(w, http.StatusNotFound, errRolloutDisabled)
	}
	app, platform := r.URL.Query().Get("app"), r.URL.Query().Get("platform")
	if app == "" && platform == "" {
		return writeJSON(w, http.StatusOK, s.rollout.Statuses())
	}
	k := Key{App: app, Platform: platform}
	if err := k.validate(); err != nil {
		return writeErr(w, http.StatusBadRequest, err)
	}
	st, ok := s.rollout.Status(k.String())
	if !ok {
		return writeErr(w, http.StatusNotFound, fmt.Errorf("fleetd: no rollout state for %s", k))
	}
	return writeJSON(w, http.StatusOK, st)
}

// rolloutAction runs one admin lifecycle action (advance / rollback)
// and persists the resulting state.
func (s *Server) rolloutAction(w http.ResponseWriter, r *http.Request,
	act func(key string) (rollout.Decision, error)) int {
	if s.rollout == nil {
		return writeErr(w, http.StatusNotFound, errRolloutDisabled)
	}
	k := Key{App: r.URL.Query().Get("app"), Platform: r.URL.Query().Get("platform")}
	if err := k.validate(); err != nil {
		return writeErr(w, http.StatusBadRequest, err)
	}
	d, err := act(k.String())
	if err != nil {
		// "no active rollout" / "not enough reports yet" are state
		// conflicts, not malformed requests.
		return writeErr(w, http.StatusConflict, err)
	}
	if s.cfg.SnapshotDir != "" {
		if err := s.rollout.SnapshotKey(s.rolloutDir(), k.String()); err != nil {
			return writeErr(w, http.StatusInternalServerError, fmt.Errorf("fleetd: snapshotting rollout %s: %w", k, err))
		}
	}
	return writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleRolloutAdvance(w http.ResponseWriter, r *http.Request) int {
	return s.rolloutAction(w, r, func(key string) (rollout.Decision, error) {
		return s.rollout.Advance(key)
	})
}

func (s *Server) handleRolloutRollback(w http.ResponseWriter, r *http.Request) int {
	return s.rolloutAction(w, r, func(key string) (rollout.Decision, error) {
		return s.rollout.Rollback(key)
	})
}

// ReportReply acknowledges an evaluation report with the cohort it
// counted toward.
type ReportReply struct {
	Device  string `json:"device"`
	Version int64  `json:"version"`
	Cohort  string `json:"cohort"`
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) int {
	if s.rollout == nil {
		return writeErr(w, http.StatusNotFound, errRolloutDisabled)
	}
	k := Key{App: r.URL.Query().Get("app"), Platform: r.URL.Query().Get("platform")}
	if err := k.validate(); err != nil {
		return writeErr(w, http.StatusBadRequest, err)
	}
	var rep rollout.EvalReport
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&rep); err != nil {
		return writeErr(w, http.StatusBadRequest, fmt.Errorf("fleetd: bad report body: %w", err))
	}
	if !safeName(rep.Device) {
		return writeErr(w, http.StatusBadRequest,
			fmt.Errorf("fleetd: report needs a device as a single [a-zA-Z0-9._-] segment"))
	}
	cohort, err := s.rollout.Report(k.String(), rep)
	if err != nil {
		return writeErr(w, http.StatusConflict, err)
	}
	return writeJSON(w, http.StatusOK, ReportReply{Device: rep.Device, Version: rep.Version, Cohort: cohort})
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) int {
	infos := s.store.Infos(r.URL.Query().Get("platform"))
	if infos == nil {
		infos = []KeyInfo{}
	}
	return writeJSON(w, http.StatusOK, infos)
}

// HealthReply is the /healthz body.
type HealthReply struct {
	Status       string  `json:"status"`
	UptimeS      float64 `json:"uptime_s"`
	Policies     int     `json:"policies"`
	Merged       int     `json:"merged"`
	DeviceTables int     `json:"device_tables"`
	Devices      int     `json:"devices"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) int {
	keys, merged, uploads := s.store.Stats()
	s.devMu.Lock()
	devices := len(s.devices)
	s.devMu.Unlock()
	return writeJSON(w, http.StatusOK, HealthReply{
		Status: "ok", UptimeS: time.Since(s.metrics.start).Seconds(),
		Policies: keys, Merged: merged, DeviceTables: uploads, Devices: devices,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) int {
	keys, merged, uploads := s.store.Stats()
	s.devMu.Lock()
	devices, untracked := len(s.devices), s.devOverflow
	s.devMu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, keys, merged, uploads, devices, untracked)
	if s.rollout != nil {
		writeRolloutMetrics(w, s.rollout.Statuses(), s.rollout.RollbacksTotal())
	}
	return http.StatusOK
}
