package fleetd

import (
	"net/http/httptest"
	"strings"
	"testing"

	"nextdvfs/internal/core"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *Client, func()) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return srv, NewClient(ts.URL), ts.Close
}

func TestServerEndToEnd(t *testing.T) {
	_, client, done := newTestServer(t, Config{})
	defer done()

	if _, err := client.Healthz(); err != nil {
		t.Fatal(err)
	}

	// Fresh check-in: no policies yet.
	reply, err := client.Checkin("dev-000", "note9")
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Policies) != 0 {
		t.Fatalf("policies on empty server: %+v", reply.Policies)
	}

	// Two devices upload, a merge round runs, a third pulls the policy.
	if _, err := client.UploadTable("dev-000", "note9", "spotify", devTable(1)); err != nil {
		t.Fatal(err)
	}
	up, err := client.UploadTable("dev-001", "note9", "spotify", devTable(2))
	if err != nil {
		t.Fatal(err)
	}
	if up.Devices != 2 {
		t.Fatalf("devices after second upload = %d", up.Devices)
	}
	info, err := client.Merge("spotify", "note9")
	if err != nil {
		t.Fatal(err)
	}
	if info.Round != 1 || info.Devices != 2 || info.States == 0 {
		t.Fatalf("merge info = %+v", info)
	}
	table, round, err := client.Policy("spotify", "note9")
	if err != nil {
		t.Fatal(err)
	}
	if round != 1 || table.States() != info.States {
		t.Fatalf("policy round=%d states=%d, want round=1 states=%d", round, table.States(), info.States)
	}

	// The next check-in now advertises the merged policy.
	reply, err = client.Checkin("dev-002", "note9")
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Policies) != 1 || reply.Policies[0].App != "spotify" || reply.Policies[0].Round != 1 {
		t.Fatalf("check-in policies = %+v", reply.Policies)
	}
	// A different platform sees nothing.
	other, err := client.Checkin("dev-003", "sd855")
	if err != nil {
		t.Fatal(err)
	}
	if len(other.Policies) != 0 {
		t.Fatalf("cross-platform policy leak: %+v", other.Policies)
	}

	infos, err := client.Apps("")
	if err != nil || len(infos) != 1 {
		t.Fatalf("apps: %v %v", infos, err)
	}

	health, err := client.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	// Three devices checked in (dev-001 only uploaded; uploads do not
	// count as check-ins), two contributed tables, one policy merged.
	if health.Devices != 3 || health.Merged != 1 || health.DeviceTables != 2 {
		t.Fatalf("health = %+v", health)
	}
}

func TestServerErrorPaths(t *testing.T) {
	_, client, done := newTestServer(t, Config{})
	defer done()

	if _, err := client.Checkin("", "note9"); err == nil {
		t.Fatal("empty device check-in should fail")
	}
	if _, err := client.UploadTable("", "note9", "spotify", devTable(1)); err == nil {
		t.Fatal("upload without device should fail")
	}
	if _, err := client.Merge("spotify", "note9"); err == nil {
		t.Fatal("merge with no uploads should fail")
	}
	if _, _, err := client.Policy("spotify", "note9"); err == nil {
		t.Fatal("policy on empty server should 404")
	}
	if _, err := client.UploadTable("d0", "note9", "spotify", devTable(1)); err != nil {
		t.Fatal(err)
	}
	mismatched := core.NewQTable(3)
	if _, err := client.UploadTable("d1", "note9", "spotify", mismatched); err == nil {
		t.Fatal("action mismatch should be rejected")
	}
}

func TestServerMetricsExposition(t *testing.T) {
	_, client, done := newTestServer(t, Config{})
	defer done()

	client.Checkin("d0", "note9")
	client.UploadTable("d0", "note9", "spotify", devTable(1))
	client.Merge("spotify", "note9")
	client.Policy("spotify", "note9")
	client.Merge("nosuchapp", "note9") // counted as a merge error

	text, err := client.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`fleetd_requests_total{endpoint="checkin"} 1`,
		`fleetd_requests_total{endpoint="upload"} 1`,
		`fleetd_requests_total{endpoint="merge"} 2`,
		`fleetd_requests_total{endpoint="policy"} 1`,
		`fleetd_request_errors_total{endpoint="merge"} 1`,
		`fleetd_merge_latency_us_count 1`,
		`fleetd_devices_seen 1`,
		`fleetd_policies{state="merged"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestServerSnapshotWarmRestart(t *testing.T) {
	dir := t.TempDir()
	_, client, done := newTestServer(t, Config{SnapshotDir: dir})

	if _, err := client.UploadTable("d0", "note9", "spotify", devTable(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Merge("spotify", "note9"); err != nil {
		t.Fatal(err)
	}
	before, _, err := client.Policy("spotify", "note9")
	if err != nil {
		t.Fatal(err)
	}
	done() // server gone

	// A brand-new server over the same directory serves the policy
	// before any device re-uploads.
	_, client2, done2 := newTestServer(t, Config{SnapshotDir: dir})
	defer done2()
	after, round, err := client2.Policy("spotify", "note9")
	if err != nil {
		t.Fatal(err)
	}
	if round != 1 {
		t.Fatalf("restored round = %d", round)
	}
	beforeJSON, _ := core.MarshalTable("spotify", before, true)
	afterJSON, _ := core.MarshalTable("spotify", after, true)
	if string(beforeJSON) != string(afterJSON) {
		t.Fatal("warm-restarted policy differs from pre-restart policy")
	}
}
