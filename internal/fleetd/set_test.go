package fleetd

import (
	"math/rand"
	"net/http/httptest"
	"testing"

	"nextdvfs/internal/core"
	"nextdvfs/internal/learner"
)

func mkDoubleQSet(seed int64) *learner.TableSet {
	rng := rand.New(rand.NewSource(seed))
	l := learner.Must("doubleq", 9)
	for i := 0; i < 300; i++ {
		l.Update(core.StateKey(rng.Intn(12)), rng.Intn(9), rng.Float64()-0.5,
			core.StateKey(rng.Intn(12)), rng.Intn(9), 0.3, 0.9, rng)
	}
	return l.Snapshot()
}

// TestDoubleQUploadMergePolicyRoundTrip closes the full fleet loop over
// HTTP for a multi-table learner: two devices upload two-estimator
// sets, the merge federates role-by-role, and the downloaded policy
// carries both estimators — with values matching a serial
// cloud-reference merge of the same sets.
func TestDoubleQUploadMergePolicyRoundTrip(t *testing.T) {
	srv, err := NewServer(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	sets := []*learner.TableSet{mkDoubleQSet(1), mkDoubleQSet(2)}
	for i, set := range sets {
		if _, err := client.UploadTableSet(deviceName(i), "note9", "pubgmobile", set); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Merge("pubgmobile", "note9"); err != nil {
		t.Fatal(err)
	}
	policy, round, err := client.PolicySet("pubgmobile", "note9")
	if err != nil {
		t.Fatal(err)
	}
	if round != 1 {
		t.Fatalf("round = %d", round)
	}
	if policy.Learner != "doubleq" || len(policy.Roles) != 2 {
		t.Fatalf("policy = %s with %d roles, want doubleq with 2", policy.Learner, len(policy.Roles))
	}
	// Byte-level agreement with the in-process store: the wire adds
	// nothing and loses nothing.
	want, _, ok := srv.Store().PolicySetRef(Key{App: "pubgmobile", Platform: "note9"})
	if !ok {
		t.Fatal("store lost the merged policy")
	}
	for i := range want.Roles {
		w, g := want.Roles[i].Table, policy.Roles[i].Table
		if len(w.Q) != len(g.Q) {
			t.Fatalf("role %q: states %d vs %d", want.Roles[i].Role, len(g.Q), len(w.Q))
		}
		for s, row := range w.Q {
			for j := range row {
				if g.Q[s][j] != row[j] {
					t.Fatalf("role %q: value drift through the wire", want.Roles[i].Role)
				}
			}
		}
	}
}

func deviceName(i int) string {
	return string(rune('a'+i)) + "-device"
}

// TestUploadRejectsMixedLearnersPerKey: one policy key, one learner —
// averaging a Double-Q estimator into single-table uploads would
// corrupt both.
func TestUploadRejectsMixedLearnersPerKey(t *testing.T) {
	s := NewStore()
	k := Key{App: "spotify", Platform: "note9"}
	if _, err := s.UploadSetOwned(k, "dev-a", mkDoubleQSet(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UploadOwned(k, "dev-b", core.NewQTable(9)); err == nil {
		t.Fatal("single-table upload accepted into a doubleq fleet")
	}
}

// TestUploadRejectsUnregisteredLayouts: a hostile first upload with a
// made-up learner name or bogus role layout must die at the boundary —
// otherwise it would pin an unmatchable layout onto the key and lock
// out every legitimate device.
func TestUploadRejectsUnregisteredLayouts(t *testing.T) {
	s := NewStore()
	k := Key{App: "spotify", Platform: "note9"}
	bogus := &learner.TableSet{
		Learner: "zzz",
		Roles:   []learner.RoleTable{{Role: "q", Table: core.NewQTable(9)}},
	}
	if _, err := s.UploadSetOwned(k, "dev-evil", bogus); err == nil {
		t.Fatal("unknown learner name accepted")
	}
	wrongRoles := &learner.TableSet{
		Learner: "doubleq",
		Roles:   []learner.RoleTable{{Role: "x", Table: core.NewQTable(9)}, {Role: "y", Table: core.NewQTable(9)}},
	}
	if _, err := s.UploadSetOwned(k, "dev-evil", wrongRoles); err == nil {
		t.Fatal("bogus role layout accepted")
	}
	// The key stays unpinned: a legitimate upload still lands.
	if _, err := s.UploadSetOwned(k, "dev-a", mkDoubleQSet(1)); err != nil {
		t.Fatalf("legitimate upload rejected after hostile attempts: %v", err)
	}
	// And the HTTP boundary rejects the same garbage at unmarshal.
	if _, _, _, err := core.UnmarshalTableSet([]byte(`{"app":"spotify","actions":9,"learner":"zzz","q":{},"visits":{}}`)); err == nil {
		t.Fatal("unknown learner survived unmarshal")
	}
}

// TestDoubleQSnapshotRestore: a doubleq policy survives the snapshot
// dir round trip with both estimators.
func TestDoubleQSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	k := Key{App: "pubgmobile", Platform: "note9"}
	if _, err := s.UploadSetOwned(k, "dev-a", mkDoubleQSet(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Merge(k); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	warm := NewStore()
	if n, err := warm.Restore(dir); err != nil || n != 1 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	set, round, ok := warm.PolicySet(k)
	if !ok || round != 1 {
		t.Fatalf("restored policy missing (ok=%v round=%d)", ok, round)
	}
	if set.Learner != "doubleq" || len(set.Roles) != 2 || len(set.Roles[1].Table.Q) == 0 {
		t.Fatalf("restore lost the second estimator: %s, %d roles", set.Learner, len(set.Roles))
	}
}
