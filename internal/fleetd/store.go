package fleetd

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"nextdvfs/internal/cloud"
	"nextdvfs/internal/core"
	"nextdvfs/internal/learner"
)

// Key identifies one fleet policy: an application trained on a device
// platform. Tables from different platforms never merge — their action
// spaces (3 per cluster) differ with the cluster count.
type Key struct {
	App      string `json:"app"`
	Platform string `json:"platform"`
}

func (k Key) String() string { return k.App + "@" + k.Platform }

// safeName guards every identifier that later becomes a snapshot path
// component (app and platform name files and directories under the
// snapshot dir) or a store map key: one path segment of
// [a-zA-Z0-9._-], no separators, no "." / "..". Requests come from
// unauthenticated devices, so "../../../tmp/pwn" must die here, not in
// filepath.Join (which would happily clean and escape it).
func safeName(s string) bool {
	if s == "" || len(s) > 128 || s == "." || s == ".." {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// SafeName reports whether s passes the store's identifier rules (the
// aggregator tier applies the same validation before queueing uploads
// for upward federation).
func SafeName(s string) bool { return safeName(s) }

func (k Key) validate() error {
	if !safeName(k.App) {
		return fmt.Errorf("fleetd: bad app name %q (want a single [a-zA-Z0-9._-] segment)", k.App)
	}
	if !safeName(k.Platform) {
		return fmt.Errorf("fleetd: bad platform name %q (want a single [a-zA-Z0-9._-] segment)", k.Platform)
	}
	return nil
}

// numShards stripes the store's locks. Requests for different
// app×platform keys proceed in parallel; only same-key operations
// serialize, which is exactly the ordering a merge round needs.
const numShards = 16

// Uploads are unauthenticated, so the store bounds both axes an
// ID-spraying client could grow: distinct app×platform keys per shard
// and distinct devices per key. Both sit far above any real fleet this
// repo simulates; hitting one returns an error, never silent eviction.
const (
	maxKeysPerShard  = 1024
	maxDevicesPerKey = 4096
)

// Uploaded tables are attacker-controlled JSON, so every quantity that
// feeds the federated merge is clamped into ranges the merge cannot
// overflow. maxVisitWeight bounds a state's visit count: the merge
// accumulator is a plain int, so the worst-case total weight
// (maxVisitWeight × maxDevicesPerKey = 2^18 × 2^12 = 2^30) must fit a
// 32-bit int too — and 2^18 visits of one state is hours of control
// steps, far beyond any real session. maxQValue bounds Q magnitudes:
// JSON happily carries 1e308, and summing that across devices (or
// multiplying by a weight) reaches ±Inf/NaN, which json.Marshal then
// refuses — one hostile upload would otherwise brick the policy's
// download and snapshot path until restart. PPDW-reward Q-values are
// O(1), so 1e12 is astronomically above legitimate data. maxCounter
// bounds the Steps/TrainedUS bookkeeping sums the same way.
const (
	maxVisitWeight = 1 << 18
	maxQValue      = 1e12
	maxCounter     = int64(1) << 48
)

// sanitizeSet clamps every role table of an uploaded set.
func sanitizeSet(set *learner.TableSet) {
	for _, r := range set.Roles {
		sanitizeTable(r.Table)
	}
}

// sanitizeTable clamps an uploaded table's counters and Q-values into
// merge-safe ranges (see the constant block above for why each bound
// exists).
func sanitizeTable(t *core.QTable) {
	for s, v := range t.Visits {
		if v < 0 {
			t.Visits[s] = 0
		} else if v > maxVisitWeight {
			t.Visits[s] = maxVisitWeight
		}
	}
	for _, row := range t.Q {
		for i, v := range row {
			switch {
			case v != v: // NaN can't arrive via JSON, but cost nothing to kill
				row[i] = 0
			case v > maxQValue:
				row[i] = maxQValue
			case v < -maxQValue:
				row[i] = -maxQValue
			}
		}
	}
	clamp := func(v *int64) {
		if *v < 0 {
			*v = 0
		} else if *v > maxCounter {
			*v = maxCounter
		}
	}
	clamp(&t.Steps)
	clamp(&t.TrainedUS)
	clamp(&t.ConvergedAtUS)
}

// Store is fleetd's in-memory table store: a fixed array of shards,
// each a mutex-striped map from Key to the per-policy entry (latest
// upload per device plus the current merged table).
type Store struct {
	shards [numShards]storeShard
	// maxDevices bounds distinct devices per key (maxDevicesPerKey by
	// default). A root store absorbing whole aggregator regions raises
	// it via NewStoreMaxDevices — see docs/operations.md, "Capacity
	// limits".
	maxDevices int
}

type storeShard struct {
	mu      sync.RWMutex
	entries map[Key]*entry
}

type entry struct {
	// uploads holds the latest learner table set per device ID (deep
	// copies — the store never aliases caller memory). Stored sets are
	// immutable once inserted: re-uploads replace the map entry with a
	// fresh set, so a merge round may snapshot references and drop the
	// shard lock while it computes.
	uploads map[string]*learner.TableSet
	// merged is the current served policy, nil until the first merge
	// round (or snapshot restore); round counts merge rounds.
	merged *learner.TableSet
	round  int64
	// uploadGen counts uploads; installedGen records the uploadGen the
	// currently installed merged set was computed from. Together they
	// let the phased merge run lock-free: a slow round whose snapshot
	// predates the installed one never overwrites it backwards.
	uploadGen    int64
	installedGen int64
	// merger is the incremental dirty-state merge arena. Non-nil means
	// it reflects exactly the current uploads (every accepted upload
	// either updated it in place or nilled it), so a merge round can
	// recompute only what changed. Nil means the next round runs the
	// phased from-scratch path, which rebuilds it.
	merger *cloud.Merger
	// devGen counts accepted uploads per device — the generation a
	// delta upload must echo to prove its base is the set the store
	// holds (see UploadDelta).
	devGen map[string]int64
}

// NewStore returns an empty store with the default per-key device cap.
func NewStore() *Store { return NewStoreMaxDevices(0) }

// NewStoreMaxDevices returns an empty store accepting up to maxDevices
// distinct devices per policy key (≤ 0 → the default cap). The root of
// a hierarchical fleet holds the raw per-device tables of every region
// — byte-identity with a flat merge demands raw tables, not regional
// pre-averages — so its cap is sized to the whole fleet, while edge
// aggregators and standalone servers keep the tighter anti-spray bound.
func NewStoreMaxDevices(maxDevices int) *Store {
	if maxDevices <= 0 {
		maxDevices = maxDevicesPerKey
	}
	s := &Store{maxDevices: maxDevices}
	for i := range s.shards {
		s.shards[i].entries = make(map[Key]*entry)
	}
	return s
}

func (s *Store) shardFor(k Key) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(k.App))
	h.Write([]byte{0})
	h.Write([]byte(k.Platform))
	return &s.shards[h.Sum32()%numShards]
}

// Upload records a device's latest table for the key, replacing any
// previous upload from the same device. It returns how many devices
// have contributed. The action-space size must match what the fleet
// already holds. The table is deep-copied; use UploadOwned when the
// caller hands over ownership.
func (s *Store) Upload(k Key, device string, t *core.QTable) (devices int, err error) {
	if t != nil {
		t = t.Clone()
	}
	return s.UploadOwned(k, device, t)
}

// UploadOwned is UploadSetOwned for a plain single-table upload (the
// watkins wire format).
func (s *Store) UploadOwned(k Key, device string, t *core.QTable) (devices int, err error) {
	if t == nil {
		return 0, fmt.Errorf("fleetd: %s: nil table from %q", k, device)
	}
	return s.UploadSetOwned(k, device, learner.SingleTableSet(t))
}

// UploadSet records a device's complete learner table set, deep-copied.
func (s *Store) UploadSet(k Key, device string, set *learner.TableSet) (devices int, err error) {
	if set != nil {
		set = set.Clone()
	}
	return s.UploadSetOwned(k, device, set)
}

// UploadSetOwned is UploadSet without the defensive copy: the caller
// promises it holds no other reference to the set (the HTTP handler
// qualifies — each request unmarshals a fresh set — and skipping the
// clone is worth ~15% on the check-in hot path). Every upload for a key
// must come from the same learner (same registry name and role layout):
// tables merge role-by-role, and averaging a Double-Q estimator into a
// single-table policy would silently corrupt both.
func (s *Store) UploadSetOwned(k Key, device string, set *learner.TableSet) (devices int, err error) {
	devices, _, err = s.UploadSetGen(k, device, set)
	return devices, err
}

// UploadSetGen is UploadSetOwned returning the device's new upload
// generation alongside the device count — the value the server echoes
// so the client can base its next delta upload on this one.
func (s *Store) UploadSetGen(k Key, device string, set *learner.TableSet) (devices int, gen int64, err error) {
	if err := k.validate(); err != nil {
		return 0, 0, err
	}
	if !safeName(device) {
		return 0, 0, fmt.Errorf("fleetd: %s: bad device ID %q (want a single [a-zA-Z0-9._-] segment)", k, device)
	}
	if set == nil || set.Primary() == nil {
		return 0, 0, fmt.Errorf("fleetd: %s: empty table set from %q", k, device)
	}
	// Registry validation before anything is stored: a hostile first
	// upload with a made-up learner name (or bogus role names) would
	// otherwise pin an unmatchable layout onto the key and lock out
	// every legitimate device.
	if err := learner.ValidateSet(set); err != nil {
		return 0, 0, fmt.Errorf("fleetd: %s: upload from %q: %w", k, device, err)
	}
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, err := s.entryForUpload(sh, k, device, set)
	if err != nil {
		return 0, 0, err
	}
	sanitizeSet(set)
	gen = e.install(device, set)
	return len(e.uploads), gen, nil
}

// entryForUpload runs the per-entry admission checks (key/device caps,
// action-space and learner consistency) and returns the entry, creating
// it on first contact. Callers hold the shard write lock.
func (s *Store) entryForUpload(sh *storeShard, k Key, device string, set *learner.TableSet) (*entry, error) {
	e := sh.entries[k]
	if e == nil {
		if len(sh.entries) >= maxKeysPerShard {
			return nil, fmt.Errorf("fleetd: %s: policy-key limit reached (%d per shard)", k, maxKeysPerShard)
		}
		e = &entry{uploads: make(map[string]*learner.TableSet)}
		sh.entries[k] = e
	}
	if want := e.actions(); want > 0 && set.Primary().Actions != want {
		return nil, fmt.Errorf("fleetd: %s: upload from %q has %d actions, fleet has %d", k, device, set.Primary().Actions, want)
	}
	// ValidateSet already pinned the role layout to the learner name,
	// so cross-upload consistency reduces to the name itself.
	if ref := e.anySet(); ref != nil && learner.Normalize(ref.Learner) != learner.Normalize(set.Learner) {
		return nil, fmt.Errorf("fleetd: %s: upload from %q: learner %q does not match the fleet's %q",
			k, device, learner.Normalize(set.Learner), learner.Normalize(ref.Learner))
	}
	if _, seen := e.uploads[device]; !seen && len(e.uploads) >= s.maxDevices {
		return nil, fmt.Errorf("fleetd: %s: device limit reached (%d)", k, s.maxDevices)
	}
	return e, nil
}

// install records a sanitized set as the device's latest upload, bumps
// the generations, and keeps the incremental merge arena in step: a
// re-upload from a known device updates it in place; anything
// structural (first upload from a new device, layout change) drops it,
// and the next merge's from-scratch rebuild recreates it. Callers hold
// the shard write lock.
func (e *entry) install(device string, set *learner.TableSet) (gen int64) {
	_, known := e.uploads[device]
	e.uploads[device] = set
	e.uploadGen++
	if e.devGen == nil {
		e.devGen = make(map[string]int64)
	}
	e.devGen[device]++
	if e.merger != nil && (!known || !e.merger.Upload(device, set)) {
		e.merger = nil
	}
	return e.devGen[device]
}

// ErrDeltaBase marks a delta upload whose base generation does not
// match the set the store holds for the device — the client's view is
// stale (server restart, lost reply, aggregator tier that does not
// store deltas) and it must fall back to a full upload. The server
// maps it to HTTP 409.
var ErrDeltaBase = errors.New("fleetd: delta base generation mismatch")

// UploadDelta applies a delta upload: a table set carrying only the
// states changed since the device's last accepted upload (plus
// absolute metadata), guarded by the generation echo from that upload.
// The delta's layout must match the stored base exactly; states in the
// delta replace the base's, states absent carry over. On success it
// returns the device count and the new generation for the next delta.
// A missing base or a stale baseGen fails with ErrDeltaBase (full
// upload required); the store is never modified on error.
func (s *Store) UploadDelta(k Key, device string, delta *learner.TableSet, baseGen int64) (devices int, gen int64, err error) {
	if err := k.validate(); err != nil {
		return 0, 0, err
	}
	if !safeName(device) {
		return 0, 0, fmt.Errorf("fleetd: %s: bad device ID %q (want a single [a-zA-Z0-9._-] segment)", k, device)
	}
	if delta == nil || delta.Primary() == nil {
		return 0, 0, fmt.Errorf("fleetd: %s: empty delta from %q", k, device)
	}
	if err := learner.ValidateSet(delta); err != nil {
		return 0, 0, fmt.Errorf("fleetd: %s: delta from %q: %w", k, device, err)
	}
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[k]
	if e == nil {
		return 0, 0, fmt.Errorf("fleetd: %s: delta from %q: %w (no uploads for key)", k, device, ErrDeltaBase)
	}
	prev := e.uploads[device]
	if prev == nil {
		return 0, 0, fmt.Errorf("fleetd: %s: delta from %q: %w (no base upload)", k, device, ErrDeltaBase)
	}
	if have := e.devGen[device]; have != baseGen {
		return 0, 0, fmt.Errorf("fleetd: %s: delta from %q: %w (base %d, store at %d)", k, device, ErrDeltaBase, baseGen, have)
	}
	if learner.Normalize(delta.Learner) != learner.Normalize(prev.Learner) ||
		delta.Primary().Actions != prev.Primary().Actions ||
		len(delta.Roles) != len(prev.Roles) {
		return 0, 0, fmt.Errorf("fleetd: %s: delta from %q does not match the stored base layout", k, device)
	}
	for i, r := range delta.Roles {
		if r.Role != prev.Roles[i].Role {
			return 0, 0, fmt.Errorf("fleetd: %s: delta from %q does not match the stored base layout", k, device)
		}
	}
	// Sanitize the delta, then overlay it on the (already sanitized,
	// immutable) base into a fresh set: unchanged rows are shared, never
	// copied — the base stays untouched for in-flight merge snapshots.
	sanitizeSet(delta)
	next := applyDelta(prev, delta)
	gen = e.install(device, next)
	return len(e.uploads), gen, nil
}

// applyDelta overlays a delta set on its base role-by-role. The result
// is a fresh set whose unchanged rows alias the base (both are
// immutable in the store); metadata is absolute from the delta.
func applyDelta(base, delta *learner.TableSet) *learner.TableSet {
	next := &learner.TableSet{Learner: base.Learner, Roles: make([]learner.RoleTable, len(base.Roles))}
	for i := range base.Roles {
		bt, dt := base.Roles[i].Table, delta.Roles[i].Table
		nt := &core.QTable{
			Actions:       bt.Actions,
			Q:             make(map[core.StateKey][]float64, len(bt.Q)+len(dt.Q)),
			Visits:        make(map[core.StateKey]int, len(bt.Visits)+len(dt.Visits)),
			Steps:         dt.Steps,
			TrainedUS:     dt.TrainedUS,
			ConvergedAtUS: dt.ConvergedAtUS,
		}
		for s, row := range bt.Q {
			nt.Q[s] = row
		}
		for s, v := range bt.Visits {
			nt.Visits[s] = v
		}
		for s, row := range dt.Q {
			nt.Q[s] = row
		}
		for s, v := range dt.Visits {
			nt.Visits[s] = v
		}
		next.Roles[i] = learner.RoleTable{Role: base.Roles[i].Role, Table: nt}
	}
	return next
}

// actions returns the entry's established action-space size (0 if the
// entry is still empty). Callers hold the shard lock.
func (e *entry) actions() int {
	for _, set := range e.uploads {
		return set.Primary().Actions
	}
	if e.merged != nil {
		return e.merged.Primary().Actions
	}
	return 0
}

// anySet returns any established set of the entry (an upload, else the
// merged policy) for learner-layout validation. Callers hold the lock.
func (e *entry) anySet() *learner.TableSet {
	for _, set := range e.uploads {
		return set
	}
	return e.merged
}

// MergeInfo summarizes one federated merge round.
type MergeInfo struct {
	App       string `json:"app"`
	Platform  string `json:"platform"`
	Round     int64  `json:"round"`
	Devices   int    `json:"devices"`
	States    int    `json:"states"`
	LatencyUS int64  `json:"latency_us"`
	// Version is the policy artifact the round minted (or deduped to)
	// when the server runs the rollout lifecycle; 0 otherwise.
	Version int64 `json:"version,omitempty"`
}

// Merge runs a federated merge round for the key: every device's latest
// upload, in sorted-device-ID order, through cloud.MergeTables. The
// merge always recomputes from the full upload set (never incrementally
// from the previous merged table), so the result is a deterministic
// function of the uploads — concurrent rounds interleaved with uploads
// converge to the same table a serial merge of the final upload set
// produces.
func (s *Store) Merge(k Key) (MergeInfo, error) {
	info, _, err := s.MergeSet(k)
	return info, err
}

// MergeSet is Merge returning the merged table set alongside the round
// summary — the reference is the freshly installed, immutable
// published set, handed back so the rollout layer can wrap the round's
// output as a policy artifact without re-locking the shard (and
// without racing a concurrent round for "which set did my round
// produce").
//
// MergeSet runs as a phased epoch — split → local-merge → join, the
// doppel coordinator/worker decomposition — so no lock spans the whole
// round:
//
//   - split: snapshot the device→set references and the upload
//     generation they represent under a brief read lock. Stored sets
//     are immutable once inserted, so the references stay valid after
//     the lock drops.
//   - local-merge: the expensive federated join (cloud.JoinDevices,
//     sorted-device order) computes with no lock held; uploads and
//     rounds for other keys proceed concurrently.
//   - join: install under a brief write lock, guarded by the snapshot's
//     generation — a slow round whose snapshot predates the installed
//     set returns the newer installed set instead of overwriting it
//     backwards.
func (s *Store) MergeSet(k Key) (MergeInfo, *learner.TableSet, error) {
	if err := k.validate(); err != nil {
		return MergeInfo{}, nil, err
	}
	sh := s.shardFor(k)

	// Incremental fast path: when the arena is live it reflects exactly
	// the current uploads, so the round is a dirty-state recompute —
	// O(changed state), not O(fleet). It runs under the shard write
	// lock: the work is milliseconds even at 10k devices, and holding
	// the lock is what lets the arena absorb the round without the
	// generation dance the from-scratch path needs.
	sh.mu.Lock()
	if e := sh.entries[k]; e != nil && e.merger != nil && len(e.uploads) > 0 {
		merged := e.merger.Merge()
		e.merged = merged
		e.installedGen = e.uploadGen
		e.round++
		info := MergeInfo{
			App: k.App, Platform: k.Platform,
			Round: e.round, Devices: len(e.uploads), States: merged.Primary().States(),
		}
		sh.mu.Unlock()
		return info, merged, nil
	}
	sh.mu.Unlock()

	// Split.
	sh.mu.RLock()
	e := sh.entries[k]
	var snap map[string]*learner.TableSet
	var gen int64
	if e != nil {
		gen = e.uploadGen
		snap = make(map[string]*learner.TableSet, len(e.uploads))
		for d, set := range e.uploads {
			snap[d] = set
		}
	}
	sh.mu.RUnlock()
	if len(snap) == 0 {
		return MergeInfo{}, nil, fmt.Errorf("fleetd: %s: no device tables to merge", k)
	}

	// Local-merge (no lock held): the from-scratch join also builds the
	// incremental arena for future rounds (Rebuild IS JoinDevices plus
	// arena construction, so this phase's output is unchanged).
	m := cloud.NewMerger()
	merged, devices, err := m.Rebuild(snap)
	if err != nil {
		return MergeInfo{}, nil, fmt.Errorf("fleetd: %s: %w", k, err)
	}

	// Join.
	sh.mu.Lock()
	if gen >= e.installedGen {
		e.merged = merged
		e.installedGen = gen
	} else {
		merged = e.merged // a round over newer uploads already installed
	}
	// Adopt the arena only if no upload landed while the join computed
	// (it reflects exactly the snapshot's generation) and no concurrent
	// round already installed a live one — which uploads since have
	// been keeping current, making it strictly fresher than ours.
	if gen == e.uploadGen && e.merger == nil {
		e.merger = m
	}
	e.round++
	info := MergeInfo{
		App: k.App, Platform: k.Platform,
		Round: e.round, Devices: len(devices), States: merged.Primary().States(),
	}
	sh.mu.Unlock()
	return info, merged, nil
}

// Policy returns a deep copy of the key's current merged primary table
// and its round number, or ok=false if no merge round has run yet.
func (s *Store) Policy(k Key) (t *core.QTable, round int64, ok bool) {
	set, round, ok := s.PolicySetRef(k)
	if !ok {
		return nil, 0, false
	}
	return set.Primary().Clone(), round, true
}

// PolicyRef is Policy without the deep copy. Published merged tables
// are immutable — Merge and Restore always install freshly built
// tables, never mutate one in place — so read-only consumers (the HTTP
// download path, snapshotting) may share the reference; callers that
// intend to mutate must use Policy.
func (s *Store) PolicyRef(k Key) (t *core.QTable, round int64, ok bool) {
	set, round, ok := s.PolicySetRef(k)
	if !ok {
		return nil, 0, false
	}
	return set.Primary(), round, true
}

// PolicySet returns a deep copy of the key's merged learner table set.
func (s *Store) PolicySet(k Key) (set *learner.TableSet, round int64, ok bool) {
	set, round, ok = s.PolicySetRef(k)
	if ok {
		set = set.Clone()
	}
	return set, round, ok
}

// PolicySetRef is PolicySet without the deep copy (same immutability
// contract as PolicyRef).
func (s *Store) PolicySetRef(k Key) (set *learner.TableSet, round int64, ok bool) {
	sh := s.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.entries[k]
	if e == nil || e.merged == nil {
		return nil, 0, false
	}
	return e.merged, e.round, true
}

// KeyInfo describes one stored policy for listings and check-ins.
type KeyInfo struct {
	Key
	Devices int   `json:"devices"`
	Round   int64 `json:"round"`
	States  int   `json:"states"`
}

// Infos lists every key (platform == "" ) or just one platform's keys,
// sorted by platform then app.
func (s *Store) Infos(platform string) []KeyInfo {
	var infos []KeyInfo
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, e := range sh.entries {
			if platform != "" && k.Platform != platform {
				continue
			}
			info := KeyInfo{Key: k, Devices: len(e.uploads), Round: e.round}
			if e.merged != nil {
				info.States = e.merged.Primary().States()
			}
			infos = append(infos, info)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Platform != infos[j].Platform {
			return infos[i].Platform < infos[j].Platform
		}
		return infos[i].App < infos[j].App
	})
	return infos
}

// Stats counts keys, merged policies and device uploads across the
// whole store (for /healthz and /metrics).
func (s *Store) Stats() (keys, merged, uploads int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			keys++
			uploads += len(e.uploads)
			if e.merged != nil {
				merged++
			}
		}
		sh.mu.RUnlock()
	}
	return keys, merged, uploads
}

// SnapshotKey persists the key's merged table set (if any) under
// dir/<platform>/<app>.qtable.json through core.Store, whose atomic
// temp-file + rename write guarantees concurrent snapshots never leave
// a torn file.
func (s *Store) SnapshotKey(dir string, k Key) error {
	set, _, ok := s.PolicySetRef(k) // SaveSet only reads; immutable published set
	if !ok {
		return nil
	}
	st := core.Store{Dir: filepath.Join(dir, k.Platform)}
	return st.SaveSet(k.App, set, true)
}

// Snapshot persists every merged table and returns how many were
// written.
func (s *Store) Snapshot(dir string) (int, error) {
	n := 0
	for _, info := range s.Infos("") {
		if info.Round == 0 {
			continue
		}
		if err := s.SnapshotKey(dir, info.Key); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Restore warm-starts the store from a snapshot directory: every
// dir/<platform>/<app>.qtable.json becomes a served policy at round 1.
// Restored policies carry no device uploads — the next merge round
// recomputes from whatever devices upload after the restart. A missing
// directory is a cold start, not an error.
func (s *Store) Restore(dir string) (int, error) {
	platforms, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range platforms {
		if !p.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, p.Name()))
		if err != nil {
			return n, err
		}
		for _, f := range files {
			if f.IsDir() || filepath.Ext(f.Name()) != ".json" {
				continue
			}
			// Rollout lifecycle state lives under SnapshotDir/rollout/
			// in its own format; the rollout manager restores it.
			if strings.HasSuffix(f.Name(), ".rollout.json") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, p.Name(), f.Name()))
			if err != nil {
				return n, err
			}
			app, set, _, err := core.UnmarshalTableSet(data)
			if err != nil {
				return n, fmt.Errorf("fleetd: restoring %s/%s: %w", p.Name(), f.Name(), err)
			}
			k := Key{App: app, Platform: p.Name()}
			// Names restored from disk must honor the same invariant
			// as uploads: a foreign or hand-edited snapshot file with
			// an unsafe embedded app name would otherwise create a
			// policy the API advertises but can never serve — and
			// escape the snapshot dir on the next Snapshot.
			if err := k.validate(); err != nil {
				return n, fmt.Errorf("fleetd: restoring %s/%s: %w", p.Name(), f.Name(), err)
			}
			sh := s.shardFor(k)
			sh.mu.Lock()
			sh.entries[k] = &entry{
				uploads: make(map[string]*learner.TableSet),
				merged:  set,
				round:   1,
			}
			sh.mu.Unlock()
			n++
		}
	}
	return n, nil
}
