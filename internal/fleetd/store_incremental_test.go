package fleetd

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"nextdvfs/internal/cloud"
	"nextdvfs/internal/core"
	"nextdvfs/internal/learner"
)

func policyBytes(t *testing.T, s *Store, k Key) string {
	t.Helper()
	set, _, ok := s.PolicySetRef(k)
	if !ok {
		t.Fatal("no policy")
	}
	data, err := core.MarshalTableSetCompact(k.App, set, true)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestStoreIncrementalMergeMatchesScratch is the store-level
// differential pin: across interleaved re-uploads and merge rounds —
// the pattern that keeps the arena live — every served policy must be
// byte-identical to a from-scratch JoinDevices over a shadow copy of
// the same uploads.
func TestStoreIncrementalMergeMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewStore()
	k := Key{App: "spotify", Platform: "note9"}
	shadow := make(map[string]*learner.TableSet)

	upload := func(dev string, seed int) {
		t.Helper()
		set := learner.SingleTableSet(devTable(seed))
		shadow[dev] = set.Clone()
		if _, err := s.UploadSet(k, dev, set); err != nil {
			t.Fatal(err)
		}
	}
	check := func(round int) {
		t.Helper()
		if _, err := s.Merge(k); err != nil {
			t.Fatal(err)
		}
		want, _, err := cloud.JoinDevices(shadow)
		if err != nil {
			t.Fatal(err)
		}
		wantData, err := core.MarshalTableSetCompact(k.App, want, true)
		if err != nil {
			t.Fatal(err)
		}
		if got := policyBytes(t, s, k); got != string(wantData) {
			t.Fatalf("round %d: incremental policy diverges from scratch merge", round)
		}
	}

	for i := 0; i < 6; i++ {
		upload(fmt.Sprintf("dev-%03d", i), i+1)
	}
	check(0)
	for round := 1; round <= 10; round++ {
		// Re-upload a random subset (keeps the arena live) ...
		for j := 1 + rng.Intn(4); j > 0; j-- {
			upload(fmt.Sprintf("dev-%03d", rng.Intn(6)), rng.Intn(40)+1)
		}
		// ... and occasionally a brand-new device (invalidates it).
		if round%4 == 0 {
			upload(fmt.Sprintf("late-%03d", round), rng.Intn(40)+1)
		}
		check(round)
	}
}

// TestStoreUploadDelta pins the delta protocol: a delta applied on the
// generation it echoes lands exactly like the equivalent full upload,
// a stale or missing base fails with ErrDeltaBase without touching the
// store, and a layout change is rejected outright.
func TestStoreUploadDelta(t *testing.T) {
	s := NewStore()
	k := Key{App: "game", Platform: "note9"}

	full := devTable(3)
	_, gen, err := s.UploadSetGen(k, "dev-a", learner.SingleTableSet(full.Clone()))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first upload gen = %d, want 1", gen)
	}
	// Second contributor so merges exercise real averaging.
	if _, err := s.UploadSet(k, "dev-b", learner.SingleTableSet(devTable(5))); err != nil {
		t.Fatal(err)
	}

	// The device trains two more states and revisits one.
	next := full.Clone()
	next.Q[core.StateKey(31)][0] = 7.5
	next.Visits[core.StateKey(31)] = 99
	row := make([]float64, 9)
	row[4] = -2.5
	next.Q[core.StateKey(777)] = row
	next.Visits[core.StateKey(777)] = 3
	next.Steps += 42

	delta := core.NewQTable(9)
	delta.Q[core.StateKey(31)] = next.Q[core.StateKey(31)]
	delta.Visits[core.StateKey(31)] = next.Visits[core.StateKey(31)]
	delta.Q[core.StateKey(777)] = next.Q[core.StateKey(777)]
	delta.Visits[core.StateKey(777)] = next.Visits[core.StateKey(777)]
	delta.Steps = next.Steps
	delta.TrainedUS = next.TrainedUS
	delta.ConvergedAtUS = next.ConvergedAtUS

	// Stale generation first: must refuse and leave the store as-is.
	if _, _, err := s.UploadDelta(k, "dev-a", learner.SingleTableSet(delta.Clone()), gen+7); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("stale base accepted (err=%v)", err)
	}
	// Unknown device: no base.
	if _, _, err := s.UploadDelta(k, "dev-new", learner.SingleTableSet(delta.Clone()), 0); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("baseless delta accepted (err=%v)", err)
	}
	// Layout change is a hard error, not a fallback signal.
	if _, _, err := s.UploadDelta(k, "dev-a", learner.SingleTableSet(core.NewQTable(6)), gen); err == nil || errors.Is(err, ErrDeltaBase) {
		t.Fatalf("action-space change err = %v, want non-ErrDeltaBase error", err)
	}

	_, gen2, err := s.UploadDelta(k, "dev-a", learner.SingleTableSet(delta), gen)
	if err != nil {
		t.Fatal(err)
	}
	if gen2 != gen+1 {
		t.Fatalf("delta gen = %d, want %d", gen2, gen+1)
	}
	if _, err := s.Merge(k); err != nil {
		t.Fatal(err)
	}
	deltaPolicy := policyBytes(t, s, k)

	// Reference store: same traffic as full uploads.
	ref := NewStore()
	if _, err := ref.UploadSet(k, "dev-a", learner.SingleTableSet(next)); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.UploadSet(k, "dev-b", learner.SingleTableSet(devTable(5))); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Merge(k); err != nil {
		t.Fatal(err)
	}
	if deltaPolicy != policyBytes(t, ref, k) {
		t.Fatal("delta-built policy diverges from full-upload policy")
	}
}

// TestStoreDeltaAfterRestoreFallsBack: a warm-restarted store holds
// merged policies but no per-device bases, so the first delta from a
// pre-restart session must get ErrDeltaBase (the 409 that triggers the
// client's full-upload fallback), and the full upload must then work.
func TestStoreDeltaAfterRestoreFallsBack(t *testing.T) {
	dir := t.TempDir()
	k := Key{App: "maps", Platform: "note9"}
	a := NewStore()
	if _, gen, err := a.UploadSetGen(k, "dev-a", learner.SingleTableSet(devTable(2))); err != nil || gen != 1 {
		t.Fatalf("gen=%d err=%v", gen, err)
	}
	if _, err := a.Merge(k); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Snapshot(dir); err != nil {
		t.Fatal(err)
	}

	b := NewStore()
	if n, err := b.Restore(dir); err != nil || n != 1 {
		t.Fatalf("restore n=%d err=%v", n, err)
	}
	delta := learner.SingleTableSet(devTable(2))
	if _, _, err := b.UploadDelta(k, "dev-a", delta, 1); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("post-restore delta accepted (err=%v)", err)
	}
	if _, _, err := b.UploadSetGen(k, "dev-a", learner.SingleTableSet(devTable(2))); err != nil {
		t.Fatalf("full-upload fallback failed: %v", err)
	}
}

// TestStoreSnapshotRestoreConcurrentWithTraffic gives the race job
// real contention on the new incremental path: uploads, deltas, merge
// rounds, snapshots, restores into a second store, and policy reads
// all run concurrently. Correctness here is "no race, no panic, every
// operation either succeeds or fails cleanly"; byte-identity under
// concurrency is pinned by the deterministic tests above.
func TestStoreSnapshotRestoreConcurrentWithTraffic(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	k := Key{App: "spotify", Platform: "note9"}
	if _, err := s.UploadSet(k, "dev-000", learner.SingleTableSet(devTable(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Merge(k); err != nil {
		t.Fatal(err)
	}

	const iters = 150
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dev := fmt.Sprintf("dev-%03d", w)
			gen := int64(0)
			for i := 0; i < iters; i++ {
				if gen > 0 && i%3 == 0 {
					delta := learner.SingleTableSet(devTable(w + i%7))
					if _, g, err := s.UploadDelta(k, dev, delta, gen); err == nil {
						gen = g
					} else if !errors.Is(err, ErrDeltaBase) {
						t.Error(err)
						return
					} else {
						gen = 0 // fall back to a full upload next round
					}
					continue
				}
				_, g, err := s.UploadSetGen(k, dev, learner.SingleTableSet(devTable(w+i%7)))
				if err != nil {
					t.Error(err)
					return
				}
				gen = g
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := s.Merge(k); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/3; i++ {
			if _, err := s.Snapshot(dir); err != nil {
				t.Error(err)
				return
			}
			other := NewStore()
			if _, err := other.Restore(dir); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if set, _, ok := s.PolicySetRef(k); ok && set.Primary() == nil {
				t.Error("published policy lost its primary table")
				return
			}
			s.Infos("")
			s.Stats()
		}
	}()
	wg.Wait()

	// The store converges: one more serial merge must match a scratch
	// join of whatever uploads won the races — via the public API, by
	// re-merging twice and comparing (the second round is all-clean).
	if _, err := s.Merge(k); err != nil {
		t.Fatal(err)
	}
	first := policyBytes(t, s, k)
	if _, err := s.Merge(k); err != nil {
		t.Fatal(err)
	}
	if second := policyBytes(t, s, k); first != second {
		t.Fatal("idle merge rounds do not converge to identical bytes")
	}
}
