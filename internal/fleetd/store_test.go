package fleetd

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nextdvfs/internal/cloud"
	"nextdvfs/internal/core"
)

func devTable(seed int) *core.QTable {
	t := core.NewQTable(9)
	for i := 0; i < 6; i++ {
		row := make([]float64, 9)
		for a := range row {
			row[a] = float64(seed) + float64(i*9+a)*0.25
		}
		t.Q[core.StateKey(seed*10+i)] = row
		t.Visits[core.StateKey(seed*10+i)] = seed + i + 1
	}
	t.Steps = int64(seed * 100)
	return t
}

func TestStoreUploadMergePolicy(t *testing.T) {
	s := NewStore()
	k := Key{App: "spotify", Platform: "note9"}
	for i := 0; i < 4; i++ {
		n, err := s.Upload(k, fmt.Sprintf("dev-%03d", i), devTable(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if n != i+1 {
			t.Fatalf("device count = %d, want %d", n, i+1)
		}
	}
	if _, _, ok := s.Policy(k); ok {
		t.Fatal("policy before any merge round")
	}
	info, err := s.Merge(k)
	if err != nil {
		t.Fatal(err)
	}
	if info.Round != 1 || info.Devices != 4 {
		t.Fatalf("merge info = %+v", info)
	}
	got, round, ok := s.Policy(k)
	if !ok || round != 1 {
		t.Fatalf("policy missing after merge (ok=%v round=%d)", ok, round)
	}

	// The served policy must equal a direct cloud.MergeTables of the
	// uploads in sorted-device order — byte-for-byte.
	var tables []*core.QTable
	for i := 0; i < 4; i++ {
		tables = append(tables, devTable(i+1))
	}
	want, err := cloud.MergeTables(tables)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := core.MarshalTable(k.App, got, true)
	wantJSON, _ := core.MarshalTable(k.App, want, true)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("store merge differs from serial cloud.MergeTables")
	}
}

func TestStoreReUploadReplaces(t *testing.T) {
	s := NewStore()
	k := Key{App: "chrome", Platform: "note9"}
	if _, err := s.Upload(k, "d0", devTable(1)); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Upload(k, "d0", devTable(2)); err != nil || n != 1 {
		t.Fatalf("re-upload: n=%d err=%v", n, err)
	}
	info, err := s.Merge(k)
	if err != nil {
		t.Fatal(err)
	}
	if info.Devices != 1 {
		t.Fatalf("re-upload must replace, not add: %d devices", info.Devices)
	}
}

func TestStoreCloneSemantics(t *testing.T) {
	s := NewStore()
	k := Key{App: "spotify", Platform: "note9"}
	mine := devTable(1)
	if _, err := s.Upload(k, "d0", mine); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's table after upload must not affect the store.
	mine.Q[core.StateKey(10)][0] = 1e9
	if _, err := s.Merge(k); err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.Policy(k)
	if got.Q[core.StateKey(10)][0] == 1e9 {
		t.Fatal("store aliases uploaded table memory")
	}
	// Mutating a returned policy must not affect the store either.
	got.Q[core.StateKey(10)][0] = -1e9
	again, _, _ := s.Policy(k)
	if again.Q[core.StateKey(10)][0] == -1e9 {
		t.Fatal("store aliases returned policy memory")
	}
}

func TestStoreValidation(t *testing.T) {
	s := NewStore()
	k := Key{App: "spotify", Platform: "note9"}
	if _, err := s.Upload(Key{}, "d0", devTable(1)); err == nil {
		t.Fatal("empty key should fail")
	}
	if _, err := s.Upload(k, "", devTable(1)); err == nil {
		t.Fatal("empty device should fail")
	}
	if _, err := s.Upload(k, "d0", nil); err == nil {
		t.Fatal("nil table should fail")
	}
	if _, err := s.Merge(k); err == nil {
		t.Fatal("merge with no uploads should fail")
	}
	if _, err := s.Upload(k, "d0", devTable(1)); err != nil {
		t.Fatal(err)
	}
	bad := core.NewQTable(3)
	if _, err := s.Upload(k, "d1", bad); err == nil {
		t.Fatal("action-space mismatch should fail at upload")
	}
}

// Identifiers become snapshot path components; anything that could
// escape the snapshot directory (or smuggle a separator) must be
// rejected before it reaches filepath.Join.
func TestStoreRejectsPathTraversalNames(t *testing.T) {
	s := NewStore()
	evil := []string{"../../../../tmp/pwn", "a/b", `a\b`, "..", ".", "", "name with spaces", "x\x00y"}
	for _, name := range evil {
		if _, err := s.Upload(Key{App: name, Platform: "note9"}, "d0", devTable(1)); err == nil {
			t.Fatalf("app %q accepted", name)
		}
		if _, err := s.Upload(Key{App: "spotify", Platform: name}, "d0", devTable(1)); err == nil {
			t.Fatalf("platform %q accepted", name)
		}
		if _, err := s.Upload(Key{App: "spotify", Platform: "note9"}, name, devTable(1)); err == nil {
			t.Fatalf("device %q accepted", name)
		}
		if _, err := s.Merge(Key{App: "spotify", Platform: name}); err == nil {
			t.Fatalf("merge with platform %q accepted", name)
		}
	}
}

// Hostile bookkeeping counters and Q magnitudes must be clamped before
// merging: absurd visit counts must not overflow the merge weight into
// sign-flipped Q-values, and 1e308 Q-values must not reach ±Inf in the
// accumulator (json.Marshal refuses Inf, which would brick the policy
// download and snapshot path for the key).
func TestStoreClampsHostileUploads(t *testing.T) {
	s := NewStore()
	k := Key{App: "spotify", Platform: "note9"}
	for _, dev := range []string{"d0", "d1"} {
		evil := core.NewQTable(9)
		evil.Q[core.StateKey(1)] = []float64{1, 1e308, -1e308, 0, 0, 0, 0, 0, 0}
		evil.Visits[core.StateKey(1)] = math.MaxInt
		evil.Steps = -5
		evil.TrainedUS = math.MaxInt64
		if _, err := s.Upload(k, dev, evil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Merge(k); err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.Policy(k)
	if v := got.Visits[core.StateKey(1)]; v <= 0 || v > 2*maxVisitWeight {
		t.Fatalf("merged visits = %d; overflow not prevented", v)
	}
	row := got.Q[core.StateKey(1)]
	if row[0] != 1 {
		t.Fatalf("merged Q = %v, want 1 (sign-flip/garbage from weight overflow)", row[0])
	}
	for i, q := range row {
		if math.IsInf(q, 0) || math.IsNaN(q) {
			t.Fatalf("action %d merged to %v; magnitude clamp failed", i, q)
		}
	}
	// The poisoned-but-sanitized policy must still marshal (the exact
	// failure mode of unclamped Inf).
	if _, err := core.MarshalTableCompact(k.App, got, true); err != nil {
		t.Fatalf("merged policy no longer marshals: %v", err)
	}
	if got.Steps < 0 || got.TrainedUS < 0 {
		t.Fatalf("negative counters survived: steps=%d trained=%d", got.Steps, got.TrainedUS)
	}
}

// A snapshot file whose embedded app name breaks the safe-name
// invariant must fail restore loudly, not become an unservable (and
// re-snapshot-escaping) ghost policy.
func TestStoreRestoreRejectsUnsafeNames(t *testing.T) {
	dir := t.TempDir()
	data, err := core.MarshalTable("../escape", devTable(1), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "note9"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "note9", "evil.qtable.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore().Restore(dir); err == nil {
		t.Fatal("unsafe embedded app name restored silently")
	}
}

// Unauthenticated uploads must not grow the store without bound.
func TestStoreBoundsDevicesPerKey(t *testing.T) {
	s := NewStore()
	k := Key{App: "spotify", Platform: "note9"}
	small := func() *core.QTable {
		t := core.NewQTable(9)
		t.Q[core.StateKey(1)] = make([]float64, 9)
		t.Visits[core.StateKey(1)] = 1
		return t
	}
	for i := 0; i < maxDevicesPerKey; i++ {
		if _, err := s.Upload(k, fmt.Sprintf("dev-%08d", i), small()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Upload(k, "dev-one-too-many", small()); err == nil {
		t.Fatal("device cap not enforced")
	}
	// A device already in the fleet may still refresh its table.
	if _, err := s.Upload(k, "dev-00000000", small()); err != nil {
		t.Fatalf("re-upload at cap rejected: %v", err)
	}
}

// Concurrent uploads and merges across many keys: exercised under
// -race in CI; also asserts every key ends up mergeable.
func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	apps := []string{"spotify", "chrome", "pubgmobile", "youtube"}
	const devices = 16
	var wg sync.WaitGroup
	for _, app := range apps {
		for d := 0; d < devices; d++ {
			wg.Add(1)
			go func(app string, d int) {
				defer wg.Done()
				k := Key{App: app, Platform: "note9"}
				if _, err := s.Upload(k, fmt.Sprintf("dev-%03d", d), devTable(d+1)); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Merge(k); err != nil {
					t.Error(err)
				}
			}(app, d)
		}
	}
	wg.Wait()
	for _, app := range apps {
		info, err := s.Merge(Key{App: app, Platform: "note9"})
		if err != nil {
			t.Fatal(err)
		}
		if info.Devices != devices {
			t.Fatalf("%s: %d devices, want %d", app, info.Devices, devices)
		}
	}
	keys, merged, uploads := s.Stats()
	if keys != len(apps) || merged != len(apps) || uploads != len(apps)*devices {
		t.Fatalf("stats = %d/%d/%d", keys, merged, uploads)
	}
}

func TestStoreSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	for _, k := range []Key{
		{App: "spotify", Platform: "note9"},
		{App: "pubgmobile", Platform: "sd855"},
	} {
		if _, err := s.Upload(k, "d0", devTable(3)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Merge(k); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.Snapshot(dir)
	if err != nil || n != 2 {
		t.Fatalf("snapshot: n=%d err=%v", n, err)
	}

	warm := NewStore()
	n, err = warm.Restore(dir)
	if err != nil || n != 2 {
		t.Fatalf("restore: n=%d err=%v", n, err)
	}
	for _, k := range []Key{
		{App: "spotify", Platform: "note9"},
		{App: "pubgmobile", Platform: "sd855"},
	} {
		cold, _, _ := s.Policy(k)
		hot, round, ok := warm.Policy(k)
		if !ok || round != 1 {
			t.Fatalf("%s not restored", k)
		}
		coldJSON, _ := core.MarshalTable(k.App, cold, true)
		hotJSON, _ := core.MarshalTable(k.App, hot, true)
		if !bytes.Equal(coldJSON, hotJSON) {
			t.Fatalf("%s: restored table differs from snapshotted", k)
		}
	}

	// Restoring from a directory that never existed is a cold start.
	if n, err := NewStore().Restore(dir + "/nope"); err != nil || n != 0 {
		t.Fatalf("missing dir: n=%d err=%v", n, err)
	}
}
