package fleetd

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"nextdvfs/internal/core"
	"nextdvfs/internal/learner"
)

func newWireServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func setHash(t *testing.T, set *core.TableSet) string {
	t.Helper()
	h, err := core.HashTableSet(set)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func getPolicy(t *testing.T, base, accept string) (string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/policy?app=game&platform=note9", nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policy: %s: %s", resp.Status, body)
	}
	return resp.Header.Get("Content-Type"), body
}

// TestServerWireNegotiation drives the same fleet traffic through a
// binary client and a JSON client against two servers and pins the
// compatibility contract: merged policies are identical either way,
// legacy JSON downloads stay byte-identical no matter how the uploads
// arrived, and the binary download decodes to the same set.
func TestServerWireNegotiation(t *testing.T) {
	_, tsBin := newWireServer(t, Config{})
	_, tsJSON := newWireServer(t, Config{})

	bin := NewClient(tsBin.URL)
	bin.UseBinary = true
	js := NewClient(tsJSON.URL)

	for _, c := range []*Client{bin, js} {
		for seed := 1; seed <= 3; seed++ {
			set := learner.SingleTableSet(devTable(seed))
			if _, err := c.UploadTableSet("dev-a", "note9", "game", set.Clone()); err != nil {
				t.Fatal(err)
			}
			if _, err := c.UploadTable("dev-b", "note9", "game", devTable(seed+7)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Merge("game", "note9"); err != nil {
			t.Fatal(err)
		}
	}

	// Legacy clients (no Accept header) must see byte-identical JSON
	// regardless of the upload encoding.
	ctA, jsonFromBin := getPolicy(t, tsBin.URL, "")
	ctB, jsonFromJSON := getPolicy(t, tsJSON.URL, "")
	if ctA != "application/json" || ctB != "application/json" {
		t.Fatalf("default policy content types = %q, %q", ctA, ctB)
	}
	if !bytes.Equal(jsonFromBin, jsonFromJSON) {
		t.Fatal("binary uploads changed the legacy JSON policy bytes")
	}

	// Binary download (incl. an Accept list with parameters) decodes to
	// the same set and is smaller on the wire.
	ct, binBody := getPolicy(t, tsBin.URL, "application/json, "+core.TableSetMediaType+"; v=1")
	if ct != core.TableSetMediaType {
		t.Fatalf("binary policy content type = %q", ct)
	}
	if !core.IsBinaryTableSet(binBody) {
		t.Fatal("binary policy body is not NXTB")
	}
	// (Wire-size advantage is pinned in the core codec tests over
	// full-precision values; devTable's short decimals favor JSON.)
	_, fromBin, _, err := core.UnmarshalTableSetAny(binBody)
	if err != nil {
		t.Fatal(err)
	}
	_, fromJSON, _, err := core.UnmarshalTableSetAny(jsonFromBin)
	if err != nil {
		t.Fatal(err)
	}
	if setHash(t, fromBin) != setHash(t, fromJSON) {
		t.Fatal("binary and JSON policy bodies decode to different sets")
	}

	// And the binary client's own high-level download agrees.
	set, _, err := bin.PolicySet("game", "note9")
	if err != nil {
		t.Fatal(err)
	}
	if setHash(t, set) != setHash(t, fromJSON) {
		t.Fatal("client binary PolicySet diverges")
	}
}

// TestServerBinaryUploadContentType pins strictness: a body sent with
// the binary content type must actually be binary, and a JSON body
// with the default content type still works with parameters attached.
func TestServerBinaryUploadContentType(t *testing.T) {
	_, ts := newWireServer(t, Config{})
	jsonBody, err := core.MarshalTableSetCompact("game", learner.SingleTableSet(devTable(1)), false)
	if err != nil {
		t.Fatal(err)
	}
	put := func(contentType string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut,
			ts.URL+"/v1/table?device=dev-a&platform=note9", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(core.TableSetMediaType, jsonBody); code != http.StatusBadRequest {
		t.Fatalf("JSON body with binary content type: %d, want 400", code)
	}
	if code := put("application/json; charset=utf-8", jsonBody); code != http.StatusOK {
		t.Fatalf("JSON body with parameterized content type: %d, want 200", code)
	}
	binBody, err := core.MarshalTableSetBinary("game", learner.SingleTableSet(devTable(2)), false)
	if err != nil {
		t.Fatal(err)
	}
	if code := put(core.TableSetMediaType+"; v=1", binBody); code != http.StatusOK {
		t.Fatalf("binary body: %d, want 200", code)
	}
}

// TestServerDeltaUploadHTTP exercises the delta protocol end to end:
// generations echo through UploadReply, deltas land exactly like full
// uploads, a stale base answers 409, and DeltaUploader recovers from
// it transparently.
func TestServerDeltaUploadHTTP(t *testing.T) {
	srv, ts := newWireServer(t, Config{})
	c := NewClient(ts.URL)

	base := learner.SingleTableSet(devTable(3))
	reply, err := c.UploadTableSet("dev-a", "note9", "game", base.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if reply.Gen != 1 {
		t.Fatalf("first upload gen = %d, want 1", reply.Gen)
	}

	// Hand-built delta: one changed state.
	next := base.Clone()
	next.Primary().Q[core.StateKey(31)][2] = 9.25
	next.Primary().Visits[core.StateKey(31)] = 77
	delta := core.NewQTable(9)
	delta.Q[core.StateKey(31)] = next.Primary().Q[core.StateKey(31)]
	delta.Visits[core.StateKey(31)] = 77
	delta.Steps = next.Primary().Steps

	// Stale generation → 409 surfaced as ErrDeltaBase.
	if _, err := c.UploadTableSetDelta("dev-a", "note9", "game",
		learner.SingleTableSet(delta.Clone()), 99); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("stale delta err = %v, want ErrDeltaBase", err)
	}
	reply, err = c.UploadTableSetDelta("dev-a", "note9", "game",
		learner.SingleTableSet(delta), reply.Gen)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Gen != 2 {
		t.Fatalf("delta gen = %d, want 2", reply.Gen)
	}
	if _, err := c.Merge("game", "note9"); err != nil {
		t.Fatal(err)
	}
	got, _, ok := srv.Store().PolicySetRef(Key{App: "game", Platform: "note9"})
	if !ok || setHash(t, got) != setHash(t, next) {
		t.Fatal("delta-built policy does not equal the full table")
	}
}

// TestDeltaUploaderFallback: a competing upload bumps the generation
// under the uploader; its next delta gets 409 and it must recover with
// a full upload in the same call, re-arming delta mode after.
func TestDeltaUploaderFallback(t *testing.T) {
	srv, ts := newWireServer(t, Config{})
	c := NewClient(ts.URL)
	up := c.NewDeltaUploader("dev-a", "note9", "game")

	s1 := learner.SingleTableSet(devTable(1))
	if _, err := up.Upload(s1); err != nil {
		t.Fatal(err)
	}
	// Incremental training step → should go out as a delta.
	s2 := s1.Clone()
	s2.Primary().Q[core.StateKey(10)][0] += 0.5
	s2.Primary().Visits[core.StateKey(10)]++
	s2.Primary().Steps++
	reply, err := up.Upload(s2)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Gen != 2 {
		t.Fatalf("gen after delta = %d, want 2", reply.Gen)
	}

	// A competing session replaces the device's table: uploader's base
	// generation is now stale.
	if _, err := c.UploadTableSet("dev-a", "note9", "game", learner.SingleTableSet(devTable(9))); err != nil {
		t.Fatal(err)
	}
	s3 := s2.Clone()
	s3.Primary().Q[core.StateKey(11)][1] -= 0.25
	s3.Primary().Steps++
	reply, err = up.Upload(s3)
	if err != nil {
		t.Fatalf("uploader did not recover from stale base: %v", err)
	}
	if reply.Gen != 4 {
		t.Fatalf("gen after fallback = %d, want 4", reply.Gen)
	}
	if _, err := c.Merge("game", "note9"); err != nil {
		t.Fatal(err)
	}
	got, _, ok := srv.Store().PolicySetRef(Key{App: "game", Platform: "note9"})
	if !ok || setHash(t, got) != setHash(t, s3) {
		t.Fatal("post-fallback policy does not equal the uploader's latest table")
	}
	// Delta mode re-armed: next incremental change goes out as a delta
	// against the fallback's generation.
	s4 := s3.Clone()
	s4.Primary().Q[core.StateKey(12)][0] += 1
	s4.Primary().Steps++
	if reply, err = up.Upload(s4); err != nil || reply.Gen != 5 {
		t.Fatalf("re-armed delta: gen=%d err=%v", reply.Gen, err)
	}
}

// TestFederateBinaryEnvelope round-trips the NXTF envelope and pushes
// a mixed batch (binary + JSON bodies) through the server, pinning
// that the merged policy matches direct uploads of the same tables.
func TestFederateBinaryEnvelope(t *testing.T) {
	binBody, err := core.MarshalTableSetBinary("game", learner.SingleTableSet(devTable(1)), false)
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, err := core.MarshalTableSetCompact("game", learner.SingleTableSet(devTable(2)), false)
	if err != nil {
		t.Fatal(err)
	}
	req := FederateRequest{
		Agg:     "edge-0",
		Devices: []string{"dev-a", "dev-b"},
		Uploads: []FederatedUpload{
			{Device: "dev-a", Platform: "note9", Body: binBody},
			{Device: "dev-b", Platform: "note9", Body: jsonBody},
		},
	}
	data := MarshalFederateRequest(req)
	got, err := UnmarshalFederateRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Agg != req.Agg || len(got.Devices) != 2 || len(got.Uploads) != 2 ||
		!bytes.Equal(got.Uploads[0].Body, binBody) || !bytes.Equal(got.Uploads[1].Body, jsonBody) {
		t.Fatal("envelope round trip mangled the request")
	}
	// Hostile inputs: truncations and trailing bytes must error, never
	// panic or over-allocate.
	for i := range data {
		if _, err := UnmarshalFederateRequest(data[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	if _, err := UnmarshalFederateRequest(append(bytes.Clone(data), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}

	srv, ts := newWireServer(t, Config{})
	c := NewClient(ts.URL)
	reply, err := c.Federate(req) // auto-selects the binary envelope
	if err != nil {
		t.Fatal(err)
	}
	if reply.Accepted != 2 || reply.Rejected != 0 || reply.Registered != 2 {
		t.Fatalf("federate reply = %+v", reply)
	}
	if _, err := c.Merge("game", "note9"); err != nil {
		t.Fatal(err)
	}
	fed, _, ok := srv.Store().PolicySetRef(Key{App: "game", Platform: "note9"})
	if !ok {
		t.Fatal("no federated policy")
	}

	ref, tsRef := newWireServer(t, Config{})
	cr := NewClient(tsRef.URL)
	if _, err := cr.UploadTableSet("dev-a", "note9", "game", learner.SingleTableSet(devTable(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := cr.UploadTableSet("dev-b", "note9", "game", learner.SingleTableSet(devTable(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Merge("game", "note9"); err != nil {
		t.Fatal(err)
	}
	want, _, ok := ref.Store().PolicySetRef(Key{App: "game", Platform: "note9"})
	if !ok || setHash(t, fed) != setHash(t, want) {
		t.Fatal("federated mixed-encoding policy diverges from direct uploads")
	}
}
