package fleetsim

// EstimateCheckinsPerSec is the deterministic serving-capacity model of
// the fleetd check-in cycle: how many full device cycles per second
// (check-in → upload → merge trigger → policy pull) one root server
// sustains for a fleet of `devices` when every `mergeEvery`-th upload
// triggers a federated merge round.
//
// Capacity planning needs a fleet dimension that is byte-reproducible —
// the nextplan determinism contract forbids wall-clock measurements in
// result rows — so the plan sweep evaluates this closed-form cost model
// instead of timing live HTTP traffic. The model is calibrated against
// the measured BenchmarkFleetCheckinScale curve on the 1-core CI host
// (BENCH_fleet.json provenance: 64 devices → 1265 checkins/s, 1000 →
// 222, 10000 → 13.6, all at mergeEvery=1):
//
//	cycle(d, m) = base + (linear·d + quad·d²) / m   [µs]
//	rate(d, m)  = 1e6 / cycle(d, m)                 [checkins/s]
//
// base is the merge-free per-cycle HTTP+store cost; the linear term is
// the per-device share of a merge round (the store re-merges every
// device's latest table); the quadratic term absorbs the superlinear
// store overhead the 10k-device point exposes. Spreading merges over m
// uploads divides only the merge work — the base cost is per cycle.
// The three calibration points are reproduced to within 1%.
//
// Deterministic by construction: same inputs → same float64 out, on
// every host and GOARCH.
func EstimateCheckinsPerSec(devices, mergeEvery int) float64 {
	if devices < 1 {
		devices = 1
	}
	if mergeEvery < 1 {
		mergeEvery = 1
	}
	const (
		// Exact quadratic through the three measured cycle times
		// (1e6/1265, 1e6/222, 1e6/13.6 µs at 64/1000/10000 devices).
		baseUS   = 560.39    // merge-free cycle cost: 4 HTTP round trips + store bookkeeping
		linearUS = 3.5716    // per-device merge share of one round
		quadUS   = 3.7253e-4 // superlinear store overhead the 10k point exposes
	)
	d := float64(devices)
	cycleUS := baseUS + (linearUS*d+quadUS*d*d)/float64(mergeEvery)
	return 1e6 / cycleUS
}
