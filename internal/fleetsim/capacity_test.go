package fleetsim

import (
	"math"
	"testing"
)

// The capacity model must reproduce the measured calibration points of
// BenchmarkFleetCheckinScale (recorded in BENCH_fleet.json) to within
// 1% — if the model and the measured curve drift apart, re-fit the
// constants rather than loosening this tolerance.
func TestEstimateCheckinsPerSecCalibration(t *testing.T) {
	cases := []struct {
		devices  int
		measured float64
	}{
		{64, 1265},
		{1000, 222},
		{10000, 13.6},
	}
	for _, c := range cases {
		got := EstimateCheckinsPerSec(c.devices, 1)
		if rel := math.Abs(got-c.measured) / c.measured; rel > 0.01 {
			t.Errorf("EstimateCheckinsPerSec(%d, 1) = %.1f, measured %.1f (%.2f%% off)",
				c.devices, got, c.measured, 100*rel)
		}
	}
}

func TestEstimateCheckinsPerSecMonotonicity(t *testing.T) {
	// More devices per merge round → slower cycles.
	prev := math.Inf(1)
	for _, d := range []int{1, 16, 64, 1000, 10000, 100000} {
		got := EstimateCheckinsPerSec(d, 1)
		if got <= 0 || got >= prev {
			t.Fatalf("rate(%d devices) = %g, want positive and below %g", d, got, prev)
		}
		prev = got
	}
	// Spreading merges over more uploads → faster cycles, bounded by the
	// merge-free base cost.
	base := 1e6 / 560.39
	prev = 0
	for _, m := range []int{1, 2, 8, 64} {
		got := EstimateCheckinsPerSec(1000, m)
		if got <= prev || got >= base {
			t.Fatalf("rate(1000, mergeEvery=%d) = %g, want above %g and below base %g", m, got, prev, base)
		}
		prev = got
	}
}

func TestEstimateCheckinsPerSecClampsDegenerateInputs(t *testing.T) {
	if got, want := EstimateCheckinsPerSec(0, 0), EstimateCheckinsPerSec(1, 1); got != want {
		t.Fatalf("degenerate inputs = %g, want clamped to (1,1) = %g", got, want)
	}
	if got := EstimateCheckinsPerSec(-5, -5); got != EstimateCheckinsPerSec(1, 1) {
		t.Fatalf("negative inputs = %g, want clamped", got)
	}
}
