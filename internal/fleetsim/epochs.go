package fleetsim

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/core"
	"nextdvfs/internal/exp"
	"nextdvfs/internal/fleetd"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/session"
	"nextdvfs/internal/workload"
)

// runPhased is the Epochs > 1 traffic shape: the repeated federated
// check-in cycle of Section IV-C run as deterministic phases. Per
// epoch the whole fleet uploads in parallel, exactly one merge round
// runs, and every device pulls and installs that round's policy —
// barriers between phases, so every device observes the same round
// and the run's output is a function of the options alone, regardless
// of upload arrival order. Between epochs each device trains one more
// session (continuing its session-seed sequence) on top of the
// installed policy, which is what makes re-uploads incremental and
// gives DeltaUploads real deltas to ship.
func runPhased(client *fleetd.Client, plat platform.Platform, opts Options) (Report, error) {
	report := Report{Options: opts, Devices: make([]DeviceResult, opts.Devices)}
	agents := make([]*core.Agent, opts.Devices)
	trainStart := time.Now()
	batch.Map(opts.Devices, opts.Parallel, func(i int) {
		report.Devices[i] = DeviceResult{Device: deviceName(i)}
		agents[i] = trainDevice(&report.Devices[i], plat, opts, i)
	})
	trainWall := time.Since(trainStart)

	var uploaders []*fleetd.DeltaUploader
	if opts.DeltaUploads {
		uploaders = make([]*fleetd.DeltaUploader, opts.Devices)
		for i := range uploaders {
			uploaders[i] = client.NewDeltaUploader(deviceName(i), opts.Platform, opts.App)
		}
	}

	var requests atomic.Int64
	var trafficWall time.Duration
	for e := 1; e <= opts.Epochs; e++ {
		if e > 1 {
			ts := time.Now()
			batch.Map(opts.Devices, opts.Parallel, func(i int) {
				trainOneSession(&report.Devices[i], agents[i], opts, i, opts.Sessions+e-1)
			})
			trainWall += time.Since(ts)
		}

		ts := time.Now()
		// Upload phase (first epoch also checks in).
		batch.Map(opts.Devices, opts.Parallel, func(i int) {
			d := &report.Devices[i]
			if d.Err != "" || agents[i] == nil {
				return
			}
			if e == 1 {
				if _, err := client.Checkin(d.Device, opts.Platform); err != nil {
					d.Err = err.Error()
					return
				}
				requests.Add(1)
			}
			set := agents[i].SnapshotFor(opts.App)
			var err error
			if uploaders != nil {
				_, err = uploaders[i].Upload(set)
			} else {
				_, err = client.UploadTableSet(d.Device, opts.Platform, opts.App, set)
			}
			if err != nil {
				d.Err = err.Error()
				return
			}
			requests.Add(1)
			d.States = set.Primary().States()
			d.Steps = set.Primary().Steps
			d.Uploaded = set.Primary().Clone()
		})

		// One merge round per epoch — the server-side work the
		// incremental merge path keeps O(changed state).
		info, err := client.Merge(opts.App, opts.Platform)
		if err != nil {
			return report, fmt.Errorf("fleetsim: epoch %d merge: %w", e, err)
		}
		requests.Add(1)
		report.Merge = info

		// Pull phase: every device installs this round's policy.
		batch.Map(opts.Devices, opts.Parallel, func(i int) {
			d := &report.Devices[i]
			if d.Err != "" || agents[i] == nil {
				return
			}
			policy, round, err := client.PolicySet(opts.App, opts.Platform)
			if err != nil {
				d.Err = err.Error()
				return
			}
			requests.Add(1)
			agents[i].InstallTableSet(opts.App, policy, true)
			d.PolicyRound = round
			d.PolicyStates = policy.Primary().States()
		})
		trafficWall += time.Since(ts)
	}

	merged, _, err := client.Policy(opts.App, opts.Platform)
	if err != nil {
		return report, fmt.Errorf("fleetsim: final policy pull: %w", err)
	}
	requests.Add(1)
	report.Merged = merged

	report.TrainWallS = trainWall.Seconds()
	report.TrafficWallS = trafficWall.Seconds()
	report.Requests = requests.Load()
	for _, d := range report.Devices {
		if d.Err != "" {
			report.Errors++
		}
	}
	if report.TrafficWallS > 0 {
		// One check-in cycle = one upload→merge→pull pass per device.
		report.CheckinsPerSec = float64((opts.Devices-report.Errors)*opts.Epochs) / report.TrafficWallS
		report.RequestsPerSec = float64(report.Requests) / report.TrafficWallS
	}
	return report, nil
}

// trainOneSession continues a device's session-seed sequence by one
// more session — the same derivation trainDevice uses, so epoch e
// trains session Sessions+e-1 exactly as a longer -sessions run would.
func trainOneSession(res *DeviceResult, agent *core.Agent, opts Options, i, s int) {
	if res.Err != "" || agent == nil {
		return
	}
	devSeed := opts.Seed + int64(i+1)*7919
	seed := devSeed + int64(s)
	rng := rand.New(rand.NewSource(seed))
	tl := &session.Timeline{Scripts: []session.Script{
		session.ForApp(workload.ByName(opts.App), session.Seconds(opts.SessionSecs), rng),
	}}
	if _, err := exp.RunTimelineOn(opts.Platform, tl, seed, agent); err != nil {
		res.Err = err.Error()
	}
}
