package fleetsim

import (
	"bytes"
	"testing"

	"nextdvfs/internal/core"
)

// runEpochs runs a phased fleet against a fresh server and returns the
// report plus the canonical bytes of its merged table.
func runEpochs(t *testing.T, opts Options) (Report, []byte) {
	t.Helper()
	_, url, done := startServer(t)
	defer done()
	report, err := Run(url, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		for _, d := range report.Devices {
			if d.Err != "" {
				t.Errorf("%s: %s", d.Device, d.Err)
			}
		}
		t.Fatalf("%d devices failed", report.Errors)
	}
	data, err := core.MarshalTable(report.Options.App, report.Merged, true)
	if err != nil {
		t.Fatal(err)
	}
	return report, data
}

// The transport pin for the whole tentpole: delta uploads and the
// binary wire codec are transport optimizations only. The same seeds
// through full-JSON, full-binary, and delta check-in cycles must leave
// the server with byte-identical merged policies.
func TestFleetEpochsTransportInvariant(t *testing.T) {
	base := Options{Devices: 5, Sessions: 1, SessionSecs: 5, Seed: 11, Parallel: 4, Epochs: 3}

	full := base
	_, fullBytes := runEpochs(t, full)

	delta := base
	delta.DeltaUploads = true
	deltaRep, deltaBytes := runEpochs(t, delta)

	bin := base
	bin.Binary = true
	bin.DeltaUploads = true
	_, binBytes := runEpochs(t, bin)

	if !bytes.Equal(fullBytes, deltaBytes) {
		t.Fatal("delta check-in cycle produced a different merged policy than full uploads")
	}
	if !bytes.Equal(fullBytes, binBytes) {
		t.Fatal("binary+delta check-in cycle produced a different merged policy than JSON full uploads")
	}
	// Every epoch re-merged: the final round advances with the epochs.
	if deltaRep.Merge.Round < 3 {
		t.Fatalf("final merge round %d, want >= 3 after 3 epochs", deltaRep.Merge.Round)
	}
}

// Phased runs are deterministic: identical options, fresh servers,
// byte-identical merged tables — the property every other fleetsim
// mode pins, extended to the epoch loop.
func TestFleetEpochsDeterministic(t *testing.T) {
	opts := Options{Devices: 4, Sessions: 1, SessionSecs: 5, Seed: 19, Parallel: 3,
		Epochs: 2, DeltaUploads: true, Binary: true}
	_, a := runEpochs(t, opts)
	_, b := runEpochs(t, opts)
	if !bytes.Equal(a, b) {
		t.Fatal("same seeds, different merged tables in phased mode")
	}
}

// Epochs <= 1 must not change the legacy traffic shape, and the phased
// loop refuses option combinations it does not model.
func TestFleetEpochsValidation(t *testing.T) {
	_, url, done := startServer(t)
	defer done()
	if _, err := Run(url, Options{Devices: 2, Sessions: 1, SessionSecs: 5, Epochs: 2, Lockstep: true}); err == nil {
		t.Fatal("epochs+lockstep accepted")
	}
	if _, err := Run(url, Options{Devices: 2, Sessions: 1, SessionSecs: 5, Epochs: 2, Aggregators: 2}); err == nil {
		t.Fatal("epochs+aggregators accepted")
	}
	if _, err := Run(url, Options{Devices: 2, Sessions: 1, SessionSecs: 5, Epochs: 2,
		Scenarios: []string{"doomscroll"}}); err == nil {
		t.Fatal("epochs+scenarios accepted")
	}
}
