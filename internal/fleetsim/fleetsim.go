// Package fleetsim drives a fleetd policy server the way a device fleet
// would: N simulated handsets (one goroutine per device, fanned out over
// the internal/batch pool) each train a Next agent through the sim
// engine, check in, upload their visit-weighted Q-table, trigger a
// federated merge round and pull the merged policy back — the full
// Section IV-C loop, closed over a real HTTP API.
//
// Determinism carries through the network: device i trains from seed
// base+(i+1)*7919 (the same derivation nextdvfs.NewFleet uses), the
// server merges uploads in sorted-device order, and a final merge after
// all traffic lands on a table byte-identical to a serial
// cloud.Fleet.MergeApp of the same per-device tables — the end-to-end
// test pins this at 64 devices.
package fleetsim

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/core"
	"nextdvfs/internal/exp"
	"nextdvfs/internal/fleetd"
	"nextdvfs/internal/learner"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/scenario"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

// Options sizes and seeds a fleet run.
type Options struct {
	// Devices is the fleet size (0 → 8).
	Devices int
	// App is the preset application every device trains (0 → spotify).
	App string
	// Platform is the registry device the fleet simulates ("" → note9).
	Platform string
	// Sessions is how many training sessions each device runs (0 → 1).
	Sessions int
	// SessionSecs is each training session's simulated length (0 → 8).
	SessionSecs float64
	// Seed derives per-device seeds (0 → 1).
	Seed int64
	// Parallel sizes the device worker pool (0 → GOMAXPROCS).
	Parallel int
	// Scenarios, when non-empty, assigns heterogeneous usage across the
	// fleet: device i trains on preset Scenarios[i%len] (each session a
	// fresh seed-compiled scenario scaled to SessionSecs) instead of
	// repeated single-app sessions. Every app a device's scenario visits
	// is trained, uploaded and federated per app — merges blend policies
	// learned under different usage, the Section IV-C premise the
	// homogeneous fleet never exercised.
	Scenarios []string
	// Learner names the TD update rule every device trains with
	// ("" = watkins, the paper's rule). Multi-table learners (doubleq)
	// upload and merge every estimator role-by-role.
	Learner string
	// Explorer names the exploration strategy ("" = egreedy).
	Explorer string
	// Lockstep trains each same-scenario device cohort (the whole fleet
	// for homogeneous runs) through one sim.BatchEngine per session
	// round: every device is a lane with its own agent, engine seed and
	// rng streams, while the cohort shares one tick loop and compiled
	// session structure. This is a distinct training mode, not a
	// transparent optimization — lockstep lanes must share session
	// structure, so a cohort's session-s timelines compile from one
	// shared structural seed derived from Options.Seed instead of each
	// device's private seed. Outputs are deterministic but differ from
	// a non-lockstep run of the same options.
	Lockstep bool
	// Rollout, when set, switches the run into the A/B policy-lifecycle
	// mode against a rollout-enabled server: two training generations
	// mint a stable and a candidate artifact, then deterministic
	// evaluation rounds feed cohort energy/QoS back until the server
	// promotes or rolls back. Excludes Scenarios and Lockstep.
	Rollout *RolloutOptions
	// Aggregators, when > 0, simulates the two-tier topology: that many
	// in-process edge aggregators are stood up over the root server at
	// baseURL, device i drives aggregator i%N (honoring Retry-After
	// backpressure), and the final round becomes a federation epoch —
	// aggregator-local merges, a flush of the raw device tables upward,
	// then the root's federated join. The root's final table is
	// byte-identical to the flat run's. Excludes Rollout.
	Aggregators int
	// Binary moves the fleet's table traffic to the binary wire codec
	// (application/x-nextdvfs-table uploads, Accept-negotiated policy
	// downloads, NXTF federation envelopes in two-tier runs). Purely a
	// transport choice: the merged tables and the report are identical
	// to a JSON-wire run.
	Binary bool
	// DeltaUploads re-uploads each device's table as a state delta
	// against its previous accepted upload (X-Fleet-Base-Gen protocol),
	// falling back to full uploads automatically on a base mismatch.
	// Only re-uploads shrink — the first upload of any device is always
	// full — so this pays off with Epochs > 1. The merged output is
	// byte-identical to full uploads of the same tables.
	DeltaUploads bool
	// Epochs repeats the check-in cycle: each epoch the whole fleet
	// uploads (in parallel), ONE merge round runs per app, and every
	// device pulls and installs the round's policy before training one
	// more session for the next epoch. 0/1 keeps the legacy single-pass
	// traffic unchanged; > 1 requires the phased deterministic loop and
	// excludes Scenarios, Lockstep, Rollout and Aggregators.
	Epochs int
}

func (o *Options) defaults() {
	if o.Devices <= 0 {
		o.Devices = 8
	}
	if o.App == "" {
		o.App = workload.NameSpotify
	}
	if o.Platform == "" {
		o.Platform = platform.DefaultName
	}
	if o.Sessions <= 0 {
		o.Sessions = 1
	}
	if o.SessionSecs <= 0 {
		o.SessionSecs = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// DeviceResult reports one simulated device's run.
type DeviceResult struct {
	Device string
	Err    string
	// Scenario is the preset the device trained on (scenario fleets).
	Scenario string
	// States/Steps describe the locally trained table(s); for scenario
	// fleets they total across every app the device trained.
	States int
	Steps  int64
	// Uploaded is a deep copy of the table exactly as uploaded, so
	// callers can serially re-merge the fleet for comparison.
	Uploaded *core.QTable
	// Tables are the per-app deep copies a scenario device uploaded.
	Tables map[string]*core.QTable
	// PolicyRound/PolicyStates describe the merged policy the device
	// pulled and installed (the round it happened to observe mid-traffic).
	PolicyRound  int64
	PolicyStates int
}

// AppMerge is the final federated round for one app of a scenario
// fleet, and the policy it produced.
type AppMerge struct {
	App    string
	Merge  fleetd.MergeInfo
	Merged *core.QTable
}

// Report summarizes a fleet run.
type Report struct {
	Options Options
	Devices []DeviceResult
	Errors  int
	// Merge is the final federated round over every device's table, and
	// Merged the policy it produced. For scenario fleets these describe
	// the options' App when any device trained it, else the first app of
	// PerApp.
	Merge  fleetd.MergeInfo
	Merged *core.QTable
	// PerApp lists the final rounds of every app a scenario fleet
	// trained, in sorted app order (empty for single-app fleets).
	PerApp []AppMerge
	// TrainWallS is the wall time of the simulation phase; TrafficWallS
	// covers only the HTTP phase (check-in, upload, merge, policy pull
	// per device), which is what the throughput numbers divide by.
	TrainWallS     float64
	TrafficWallS   float64
	Requests       int64
	CheckinsPerSec float64
	RequestsPerSec float64
	// Rollout carries the A/B lifecycle outcome (nil for plain runs).
	Rollout *RolloutReport
	// Federation carries the two-tier epoch outcome (nil for flat runs).
	Federation *FederationReport
}

// WriteSummary prints the human-readable run report — the one printer
// both nextfleetd -bench and nextbench -fleet share, so the two CLIs
// can never drift apart on which fields they show.
func (r Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "devices: %d ok, %d failed\n", len(r.Devices)-r.Errors, r.Errors)
	fmt.Fprintf(w, "training: %.2f s wall (simulated sessions, worker pool)\n", r.TrainWallS)
	fmt.Fprintf(w, "traffic:  %.3f s wall, %d requests\n", r.TrafficWallS, r.Requests)
	fmt.Fprintf(w, "  check-in cycles/sec: %.0f\n", r.CheckinsPerSec)
	fmt.Fprintf(w, "  requests/sec:        %.0f\n", r.RequestsPerSec)
	if f := r.Federation; f != nil {
		fmt.Fprintf(w, "federation: %d aggregators, %d tables joined at root, %d local merges\n",
			f.Aggregators, f.Flushed, f.LocalMerges)
		if f.Retries429 > 0 {
			fmt.Fprintf(w, "  backpressure retries: %d\n", f.Retries429)
		}
		if len(f.Late) > 0 {
			fmt.Fprintf(w, "  late aggregators: %s\n", strings.Join(f.Late, ", "))
		}
	}
	fmt.Fprintf(w, "final merge: round %d, %d devices, %d states, %d µs\n",
		r.Merge.Round, r.Merge.Devices, r.Merge.States, r.Merge.LatencyUS)
	for _, am := range r.PerApp {
		fmt.Fprintf(w, "  app %-20s round %d, %d devices, %d states\n",
			am.App, am.Merge.Round, am.Merge.Devices, am.Merge.States)
	}
	for _, d := range r.Devices {
		if d.Err != "" {
			fmt.Fprintf(w, "  %s FAILED: %s\n", d.Device, d.Err)
		}
	}
	if ro := r.Rollout; ro != nil {
		fmt.Fprintf(w, "rollout: stable v%d, candidate v%d → %s (final v%d, rollbacks %d, %d downloads skipped via ETag)\n",
			ro.StableVersion, ro.CandidateVersion, ro.Outcome, ro.FinalVersion, ro.Rollbacks, ro.Skipped304)
		fmt.Fprintf(w, "  %-5s %-9s %12s %12s %12s %12s\n",
			"round", "action", "canary J", "control J", "canary fps", "control fps")
		for _, rd := range ro.Rounds {
			fmt.Fprintf(w, "  %-5d %-9s %12.2f %12.2f %12.2f %12.2f\n",
				rd.Round, rd.Action, rd.Canary.AvgEnergyJ, rd.Control.AvgEnergyJ,
				rd.Canary.AvgQoSFPS, rd.Control.AvgQoSFPS)
			if rd.Action == "rollback" {
				fmt.Fprintf(w, "        %s\n", rd.Reason)
			}
		}
	}
}

// Run trains opts.Devices simulated devices and drives the fleetd
// server at baseURL with the resulting traffic.
func Run(baseURL string, opts Options) (Report, error) {
	opts.defaults()
	if workload.ByName(opts.App) == nil {
		return Report{}, fmt.Errorf("fleetsim: unknown app %q", opts.App)
	}
	for _, sn := range opts.Scenarios {
		if _, err := scenario.Get(sn); err != nil {
			return Report{}, fmt.Errorf("fleetsim: %w", err)
		}
	}
	if !learner.Known(opts.Learner) {
		return Report{}, fmt.Errorf("fleetsim: unknown learner %q (have: %s)", opts.Learner, strings.Join(learner.Names(), ", "))
	}
	if !learner.KnownExplorer(opts.Explorer) {
		return Report{}, fmt.Errorf("fleetsim: unknown explorer %q (have: %s)", opts.Explorer, strings.Join(learner.ExplorerNames(), ", "))
	}
	plat, err := platform.Get(opts.Platform)
	if err != nil {
		return Report{}, fmt.Errorf("fleetsim: %w", err)
	}
	if opts.Rollout != nil {
		if opts.Aggregators > 0 {
			return Report{}, fmt.Errorf("fleetsim: aggregator tier excludes rollout mode")
		}
		return runRollout(baseURL, opts)
	}
	client := fleetd.NewClient(baseURL)
	client.UseBinary = opts.Binary
	if _, err := client.Healthz(); err != nil {
		return Report{}, fmt.Errorf("fleetsim: server not reachable: %w", err)
	}
	if opts.Epochs > 1 {
		if len(opts.Scenarios) > 0 || opts.Lockstep || opts.Aggregators > 0 {
			return Report{}, fmt.Errorf("fleetsim: epochs > 1 excludes scenarios, lockstep and aggregator tiers")
		}
		return runPhased(client, plat, opts)
	}

	report := Report{Options: opts, Devices: make([]DeviceResult, opts.Devices)}

	// Phase 1 — simulate: every device trains its own agent on its own
	// sessions (independent jobs, so the pool scales them). Lockstep
	// mode regroups the same work into same-scenario cohorts that step
	// one shared tick loop per session round.
	agents := make([]*core.Agent, opts.Devices)
	trainStart := time.Now()
	if opts.Lockstep {
		cohorts := lockstepCohorts(opts)
		batch.Map(len(cohorts), opts.Parallel, func(ci int) {
			trainCohort(report.Devices, agents, plat, opts, cohorts[ci])
		})
	} else {
		batch.Map(opts.Devices, opts.Parallel, func(i int) {
			report.Devices[i] = DeviceResult{Device: deviceName(i)}
			agents[i] = trainDevice(&report.Devices[i], plat, opts, i)
		})
	}
	report.TrainWallS = time.Since(trainStart).Seconds()

	// Phase 2 — traffic: each device checks in, uploads, requests a
	// merge round and pulls whatever policy that round (or a concurrent
	// one) produced. Merges interleave freely with uploads; the store
	// recomputes every round from the full upload set, so interleaving
	// affects only which intermediate round a device observes. In
	// two-tier mode each device talks to its regional aggregator instead
	// of the root.
	var tier *aggTier
	if opts.Aggregators > 0 {
		tier, err = startAggTier(baseURL, opts)
		if err != nil {
			return report, err
		}
		defer tier.close()
	}
	var requests, retries atomic.Int64
	trafficStart := time.Now()
	batch.Map(opts.Devices, opts.Parallel, func(i int) {
		devClient := client
		if tier != nil {
			devClient = tier.clients[i%len(tier.clients)]
		}
		driveDevice(&report.Devices[i], devClient, agents[i], opts, &requests, &retries)
	})
	report.TrafficWallS = time.Since(trafficStart).Seconds()

	// Phase 3 — the final round: with every upload in, one more merge per
	// app is the deterministic fleet table; every device would pull it on
	// its next check-in. A two-tier run reaches the same table through a
	// federation epoch instead of a direct merge.
	if tier != nil {
		if err := runEpochPhase(client, tier, &report, opts, &requests, &retries); err != nil {
			return report, err
		}
	} else {
		for _, app := range finalApps(&report, opts) {
			info, err := client.Merge(app, opts.Platform)
			if err != nil {
				return report, fmt.Errorf("fleetsim: final merge of %s: %w", app, err)
			}
			requests.Add(1)
			merged, _, err := client.Policy(app, opts.Platform)
			if err != nil {
				return report, fmt.Errorf("fleetsim: final policy pull of %s: %w", app, err)
			}
			requests.Add(1)
			if len(opts.Scenarios) > 0 {
				report.PerApp = append(report.PerApp, AppMerge{App: app, Merge: info, Merged: merged})
			}
			if report.Merged == nil || app == opts.App {
				report.Merge = info
				report.Merged = merged
			}
		}
	}
	report.Requests = requests.Load()
	for _, d := range report.Devices {
		if d.Err != "" {
			report.Errors++
		}
	}
	if report.TrafficWallS > 0 {
		report.CheckinsPerSec = float64(opts.Devices-report.Errors) / report.TrafficWallS
		report.RequestsPerSec = float64(report.Requests) / report.TrafficWallS
	}
	return report, nil
}

// finalApps lists the apps phase 3 merges: the single options app for a
// homogeneous fleet, or the sorted union of every app any scenario
// device uploaded.
func finalApps(report *Report, opts Options) []string {
	if len(opts.Scenarios) == 0 {
		return []string{opts.App}
	}
	set := make(map[string]bool)
	for _, d := range report.Devices {
		if d.Err != "" {
			// A failed device may hold tables the server never received
			// (check-in or upload died); merging an app only it trained
			// would abort the run the per-device error already accounts
			// for.
			continue
		}
		for app := range d.Tables {
			set[app] = true
		}
	}
	apps := make([]string, 0, len(set))
	for app := range set {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	return apps
}

// deviceName pads wide enough that lexicographic order (what the
// server merges in) matches index order (what the serial reference
// merges in) for any realistic fleet — float accumulation order is part
// of the byte-identical invariant.
func deviceName(i int) string { return fmt.Sprintf("dev-%08d", i) }

// trainDevice runs the device's training sessions through the sim
// engine and returns its agent (nil on error, recorded in res).
func trainDevice(res *DeviceResult, plat platform.Platform, opts Options, i int) *core.Agent {
	if len(opts.Scenarios) > 0 {
		return trainScenarioDevice(res, plat, opts, i)
	}
	devSeed := opts.Seed + int64(i+1)*7919
	cfg := exp.DefaultAgentConfigFor(plat)
	cfg.Seed = devSeed
	cfg.Learner = opts.Learner
	cfg.Explorer = opts.Explorer
	agent := core.NewAgent(cfg)
	for s := 1; s <= opts.Sessions; s++ {
		seed := devSeed + int64(s)
		rng := rand.New(rand.NewSource(seed))
		tl := &session.Timeline{Scripts: []session.Script{
			session.ForApp(workload.ByName(opts.App), session.Seconds(opts.SessionSecs), rng),
		}}
		if _, err := exp.RunTimelineOn(opts.Platform, tl, seed, agent); err != nil {
			res.Err = err.Error()
			return nil
		}
	}
	tab := agent.TableFor(opts.App)
	if tab == nil || tab.Table == nil {
		res.Err = "training produced no table"
		return nil
	}
	res.States = tab.Table.States()
	res.Steps = tab.Table.Steps
	res.Uploaded = tab.Table.Clone()
	return agent
}

// trainScenarioDevice trains device i on its assigned scenario preset,
// scaled to SessionSecs per session, and snapshots every per-app table
// it produced.
func trainScenarioDevice(res *DeviceResult, plat platform.Platform, opts Options, i int) *core.Agent {
	devSeed := opts.Seed + int64(i+1)*7919
	scn := scenario.MustGet(opts.Scenarios[i%len(opts.Scenarios)]) // validated in Run
	res.Scenario = scn.Name
	if d := scn.DurS(); opts.SessionSecs > 0 && d > 0 {
		scn = scenario.Scaled(scn, opts.SessionSecs/d)
	}
	cfg := exp.DefaultAgentConfigFor(plat)
	cfg.Seed = devSeed
	cfg.Learner = opts.Learner
	cfg.Explorer = opts.Explorer
	agent := core.NewAgent(cfg)
	for s := 1; s <= opts.Sessions; s++ {
		seed := devSeed + int64(s)
		if _, err := exp.RunScenarioOn(opts.Platform, scn, seed, agent); err != nil {
			res.Err = err.Error()
			return nil
		}
	}
	res.Tables = make(map[string]*core.QTable)
	for _, app := range agent.Apps() { // sorted
		tab := agent.TableFor(app)
		if tab == nil || tab.Table == nil || tab.Table.States() == 0 {
			continue
		}
		res.Tables[app] = tab.Table.Clone()
		res.States += tab.Table.States()
		res.Steps += tab.Table.Steps
	}
	if len(res.Tables) == 0 {
		res.Err = "scenario training produced no tables"
		return nil
	}
	return agent
}

// lockstepCohorts partitions device indices into same-structure groups:
// one cohort per scenario preset (the devices i sharing i mod
// len(Scenarios)), or the whole fleet for homogeneous runs.
func lockstepCohorts(opts Options) [][]int {
	if len(opts.Scenarios) == 0 {
		all := make([]int, opts.Devices)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}
	}
	n := len(opts.Scenarios)
	cohorts := make([][]int, 0, n)
	for c := 0; c < n && c < opts.Devices; c++ {
		var devs []int
		for i := c; i < opts.Devices; i += n {
			devs = append(devs, i)
		}
		cohorts = append(cohorts, devs)
	}
	return cohorts
}

// trainCohort runs one lockstep cohort's training: per session round,
// every device is a lane of one BatchEngine — own agent (as the lane's
// controller), own engine seed, shared compiled session structure from
// the round's structural seed.
func trainCohort(devices []DeviceResult, agents []*core.Agent, plat platform.Platform, opts Options, devs []int) {
	var scn scenario.Scenario
	scenarioCohort := len(opts.Scenarios) > 0
	if scenarioCohort {
		scn = scenario.MustGet(opts.Scenarios[devs[0]%len(opts.Scenarios)]) // validated in Run
		if d := scn.DurS(); opts.SessionSecs > 0 && d > 0 {
			scn = scenario.Scaled(scn, opts.SessionSecs/d)
		}
	}
	laneAgents := make([]*core.Agent, len(devs))
	for r, i := range devs {
		devices[i] = DeviceResult{Device: deviceName(i)}
		if scenarioCohort {
			devices[i].Scenario = scn.Name
		}
		cfg := exp.DefaultAgentConfigFor(plat)
		cfg.Seed = opts.Seed + int64(i+1)*7919
		cfg.Learner = opts.Learner
		cfg.Explorer = opts.Explorer
		laneAgents[r] = core.NewAgent(cfg)
	}

	for s := 1; s <= opts.Sessions; s++ {
		structSeed := opts.Seed + int64(s)*9973
		cfgs := make([]sim.Config, len(devs))
		for r, i := range devs {
			devSeed := opts.Seed + int64(i+1)*7919
			var cfg sim.Config
			if scenarioCohort {
				compiled, err := scenario.Compile(scn, structSeed, plat.AmbientC)
				if err != nil {
					failCohort(devices, devs, err)
					return
				}
				cfg = plat.Config(compiled.Timeline, devSeed+int64(s))
				cfg.Ambient = compiled.Ambient
				cfg.Refresh = compiled.Refresh
			} else {
				rng := rand.New(rand.NewSource(structSeed))
				tl := &session.Timeline{Scripts: []session.Script{
					session.ForApp(workload.ByName(opts.App), session.Seconds(opts.SessionSecs), rng),
				}}
				cfg = plat.Config(tl, devSeed+int64(s))
			}
			cfg.Controller = laneAgents[r]
			cfgs[r] = cfg
		}
		be, err := sim.NewBatch(cfgs)
		if err != nil {
			// Structural incompatibility is impossible by construction;
			// defensively finish the round on scalar engines so training
			// still completes.
			for r := range cfgs {
				eng, err := sim.New(cfgs[r])
				if err != nil {
					failCohort(devices, devs, err)
					return
				}
				eng.Run()
			}
			continue
		}
		be.Run()
	}

	for r, i := range devs {
		agent := laneAgents[r]
		if scenarioCohort {
			res := &devices[i]
			res.Tables = make(map[string]*core.QTable)
			for _, app := range agent.Apps() { // sorted
				tab := agent.TableFor(app)
				if tab == nil || tab.Table == nil || tab.Table.States() == 0 {
					continue
				}
				res.Tables[app] = tab.Table.Clone()
				res.States += tab.Table.States()
				res.Steps += tab.Table.Steps
			}
			if len(res.Tables) == 0 {
				res.Err = "scenario training produced no tables"
				continue
			}
		} else {
			tab := agent.TableFor(opts.App)
			if tab == nil || tab.Table == nil {
				devices[i].Err = "training produced no table"
				continue
			}
			devices[i].States = tab.Table.States()
			devices[i].Steps = tab.Table.Steps
			devices[i].Uploaded = tab.Table.Clone()
		}
		agents[i] = agent
	}
}

func failCohort(devices []DeviceResult, devs []int, err error) {
	for _, i := range devs {
		devices[i].Err = err.Error()
	}
}

// driveDevice plays one device's HTTP session against the server: check
// in, then upload → merge → policy-pull for each app it trained (one
// app for homogeneous fleets, every scenario app otherwise).
func driveDevice(res *DeviceResult, client *fleetd.Client, agent *core.Agent, opts Options, requests, retries *atomic.Int64) {
	if res.Err != "" || agent == nil {
		return
	}
	if _, err := client.Checkin(res.Device, opts.Platform); err != nil {
		res.Err = err.Error()
		return
	}
	requests.Add(1)

	apps := []string{opts.App}
	if len(res.Tables) > 0 {
		apps = apps[:0]
		for app := range res.Tables {
			apps = append(apps, app)
		}
		sort.Strings(apps)
	}
	for _, app := range apps {
		// The upload carries the agent's complete learner state (both
		// Double-Q estimators for a doubleq fleet; the plain single-table
		// wire format otherwise).
		if _, err := uploadWithBackpressure(client, res.Device, opts.Platform, app, agent.SnapshotFor(app), retries); err != nil {
			res.Err = err.Error()
			return
		}
		requests.Add(1)
		if _, err := client.Merge(app, opts.Platform); err != nil {
			res.Err = err.Error()
			return
		}
		requests.Add(1)
		policy, round, err := client.PolicySet(app, opts.Platform)
		if err != nil {
			res.Err = err.Error()
			return
		}
		requests.Add(1)
		agent.InstallTableSet(app, policy, true)
		res.PolicyRound = round
		res.PolicyStates = policy.Primary().States()
	}
}
