// Package fleetsim drives a fleetd policy server the way a device fleet
// would: N simulated handsets (one goroutine per device, fanned out over
// the internal/batch pool) each train a Next agent through the sim
// engine, check in, upload their visit-weighted Q-table, trigger a
// federated merge round and pull the merged policy back — the full
// Section IV-C loop, closed over a real HTTP API.
//
// Determinism carries through the network: device i trains from seed
// base+(i+1)*7919 (the same derivation nextdvfs.NewFleet uses), the
// server merges uploads in sorted-device order, and a final merge after
// all traffic lands on a table byte-identical to a serial
// cloud.Fleet.MergeApp of the same per-device tables — the end-to-end
// test pins this at 64 devices.
package fleetsim

import (
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/core"
	"nextdvfs/internal/exp"
	"nextdvfs/internal/fleetd"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/session"
	"nextdvfs/internal/workload"
)

// Options sizes and seeds a fleet run.
type Options struct {
	// Devices is the fleet size (0 → 8).
	Devices int
	// App is the preset application every device trains (0 → spotify).
	App string
	// Platform is the registry device the fleet simulates ("" → note9).
	Platform string
	// Sessions is how many training sessions each device runs (0 → 1).
	Sessions int
	// SessionSecs is each training session's simulated length (0 → 8).
	SessionSecs float64
	// Seed derives per-device seeds (0 → 1).
	Seed int64
	// Parallel sizes the device worker pool (0 → GOMAXPROCS).
	Parallel int
}

func (o *Options) defaults() {
	if o.Devices <= 0 {
		o.Devices = 8
	}
	if o.App == "" {
		o.App = workload.NameSpotify
	}
	if o.Platform == "" {
		o.Platform = platform.DefaultName
	}
	if o.Sessions <= 0 {
		o.Sessions = 1
	}
	if o.SessionSecs <= 0 {
		o.SessionSecs = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// DeviceResult reports one simulated device's run.
type DeviceResult struct {
	Device string
	Err    string
	// States/Steps describe the locally trained table.
	States int
	Steps  int64
	// Uploaded is a deep copy of the table exactly as uploaded, so
	// callers can serially re-merge the fleet for comparison.
	Uploaded *core.QTable
	// PolicyRound/PolicyStates describe the merged policy the device
	// pulled and installed (the round it happened to observe mid-traffic).
	PolicyRound  int64
	PolicyStates int
}

// Report summarizes a fleet run.
type Report struct {
	Options Options
	Devices []DeviceResult
	Errors  int
	// Merge is the final federated round over every device's table, and
	// Merged the policy it produced.
	Merge  fleetd.MergeInfo
	Merged *core.QTable
	// TrainWallS is the wall time of the simulation phase; TrafficWallS
	// covers only the HTTP phase (check-in, upload, merge, policy pull
	// per device), which is what the throughput numbers divide by.
	TrainWallS     float64
	TrafficWallS   float64
	Requests       int64
	CheckinsPerSec float64
	RequestsPerSec float64
}

// WriteSummary prints the human-readable run report — the one printer
// both nextfleetd -bench and nextbench -fleet share, so the two CLIs
// can never drift apart on which fields they show.
func (r Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "devices: %d ok, %d failed\n", len(r.Devices)-r.Errors, r.Errors)
	fmt.Fprintf(w, "training: %.2f s wall (simulated sessions, worker pool)\n", r.TrainWallS)
	fmt.Fprintf(w, "traffic:  %.3f s wall, %d requests\n", r.TrafficWallS, r.Requests)
	fmt.Fprintf(w, "  check-in cycles/sec: %.0f\n", r.CheckinsPerSec)
	fmt.Fprintf(w, "  requests/sec:        %.0f\n", r.RequestsPerSec)
	fmt.Fprintf(w, "final merge: round %d, %d devices, %d states, %d µs\n",
		r.Merge.Round, r.Merge.Devices, r.Merge.States, r.Merge.LatencyUS)
	for _, d := range r.Devices {
		if d.Err != "" {
			fmt.Fprintf(w, "  %s FAILED: %s\n", d.Device, d.Err)
		}
	}
}

// Run trains opts.Devices simulated devices and drives the fleetd
// server at baseURL with the resulting traffic.
func Run(baseURL string, opts Options) (Report, error) {
	opts.defaults()
	if workload.ByName(opts.App) == nil {
		return Report{}, fmt.Errorf("fleetsim: unknown app %q", opts.App)
	}
	plat, err := platform.Get(opts.Platform)
	if err != nil {
		return Report{}, fmt.Errorf("fleetsim: %w", err)
	}
	client := fleetd.NewClient(baseURL)
	if _, err := client.Healthz(); err != nil {
		return Report{}, fmt.Errorf("fleetsim: server not reachable: %w", err)
	}

	report := Report{Options: opts, Devices: make([]DeviceResult, opts.Devices)}

	// Phase 1 — simulate: every device trains its own agent on its own
	// sessions (independent jobs, so the pool scales them).
	agents := make([]*core.Agent, opts.Devices)
	trainStart := time.Now()
	batch.Map(opts.Devices, opts.Parallel, func(i int) {
		report.Devices[i] = DeviceResult{Device: deviceName(i)}
		agents[i] = trainDevice(&report.Devices[i], plat, opts, i)
	})
	report.TrainWallS = time.Since(trainStart).Seconds()

	// Phase 2 — traffic: each device checks in, uploads, requests a
	// merge round and pulls whatever policy that round (or a concurrent
	// one) produced. Merges interleave freely with uploads; the store
	// recomputes every round from the full upload set, so interleaving
	// affects only which intermediate round a device observes.
	var requests atomic.Int64
	trafficStart := time.Now()
	batch.Map(opts.Devices, opts.Parallel, func(i int) {
		driveDevice(&report.Devices[i], client, agents[i], opts, &requests)
	})
	report.TrafficWallS = time.Since(trafficStart).Seconds()

	// Phase 3 — the final round: with every upload in, one more merge is
	// the deterministic fleet table; every device would pull it on its
	// next check-in.
	info, err := client.Merge(opts.App, opts.Platform)
	if err != nil {
		return report, fmt.Errorf("fleetsim: final merge: %w", err)
	}
	requests.Add(1)
	merged, _, err := client.Policy(opts.App, opts.Platform)
	if err != nil {
		return report, fmt.Errorf("fleetsim: final policy pull: %w", err)
	}
	requests.Add(1)
	report.Merge = info
	report.Merged = merged
	report.Requests = requests.Load()
	for _, d := range report.Devices {
		if d.Err != "" {
			report.Errors++
		}
	}
	if report.TrafficWallS > 0 {
		report.CheckinsPerSec = float64(opts.Devices-report.Errors) / report.TrafficWallS
		report.RequestsPerSec = float64(report.Requests) / report.TrafficWallS
	}
	return report, nil
}

// deviceName pads wide enough that lexicographic order (what the
// server merges in) matches index order (what the serial reference
// merges in) for any realistic fleet — float accumulation order is part
// of the byte-identical invariant.
func deviceName(i int) string { return fmt.Sprintf("dev-%08d", i) }

// trainDevice runs the device's training sessions through the sim
// engine and returns its agent (nil on error, recorded in res).
func trainDevice(res *DeviceResult, plat platform.Platform, opts Options, i int) *core.Agent {
	devSeed := opts.Seed + int64(i+1)*7919
	cfg := exp.DefaultAgentConfigFor(plat)
	cfg.Seed = devSeed
	agent := core.NewAgent(cfg)
	for s := 1; s <= opts.Sessions; s++ {
		seed := devSeed + int64(s)
		rng := rand.New(rand.NewSource(seed))
		tl := &session.Timeline{Scripts: []session.Script{
			session.ForApp(workload.ByName(opts.App), session.Seconds(opts.SessionSecs), rng),
		}}
		if _, err := exp.RunTimelineOn(opts.Platform, tl, seed, agent); err != nil {
			res.Err = err.Error()
			return nil
		}
	}
	tab := agent.TableFor(opts.App)
	if tab == nil || tab.Table == nil {
		res.Err = "training produced no table"
		return nil
	}
	res.States = tab.Table.States()
	res.Steps = tab.Table.Steps
	res.Uploaded = tab.Table.Clone()
	return agent
}

// driveDevice plays one device's HTTP session against the server.
func driveDevice(res *DeviceResult, client *fleetd.Client, agent *core.Agent, opts Options, requests *atomic.Int64) {
	if res.Err != "" || agent == nil {
		return
	}
	if _, err := client.Checkin(res.Device, opts.Platform); err != nil {
		res.Err = err.Error()
		return
	}
	requests.Add(1)
	if _, err := client.UploadTable(res.Device, opts.Platform, opts.App, res.Uploaded); err != nil {
		res.Err = err.Error()
		return
	}
	requests.Add(1)
	if _, err := client.Merge(opts.App, opts.Platform); err != nil {
		res.Err = err.Error()
		return
	}
	requests.Add(1)
	policy, round, err := client.Policy(opts.App, opts.Platform)
	if err != nil {
		res.Err = err.Error()
		return
	}
	requests.Add(1)
	agent.InstallTable(opts.App, policy, true)
	res.PolicyRound = round
	res.PolicyStates = policy.States()
}
