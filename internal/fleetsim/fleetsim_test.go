package fleetsim

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"nextdvfs/internal/cloud"
	"nextdvfs/internal/core"
	"nextdvfs/internal/fleetd"
)

func startServer(t *testing.T) (*fleetd.Server, string, func()) {
	t.Helper()
	srv, err := fleetd.NewServer(fleetd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return srv, ts.URL, ts.Close
}

// The acceptance test of the fleet subsystem: 64 simulated devices
// trained from deterministic seeds drive an in-process fleetd
// concurrently, and the federated table the server converges to is
// byte-identical to a serial cloud.Fleet.MergeApp of the same
// per-device tables.
func TestFleet64DevicesConvergeToSerialMerge(t *testing.T) {
	_, url, done := startServer(t)
	defer done()

	opts := Options{
		Devices:     64,
		App:         "spotify",
		Platform:    "note9",
		Sessions:    1,
		SessionSecs: 6,
		Seed:        42,
		Parallel:    8,
	}
	report, err := Run(url, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		for _, d := range report.Devices {
			if d.Err != "" {
				t.Errorf("%s: %s", d.Device, d.Err)
			}
		}
		t.Fatalf("%d devices failed", report.Errors)
	}
	if report.Merge.Devices != 64 {
		t.Fatalf("final merge saw %d devices, want 64", report.Merge.Devices)
	}
	// Every device pulled some merged policy mid-traffic.
	for _, d := range report.Devices {
		if d.PolicyRound == 0 || d.PolicyStates == 0 {
			t.Fatalf("%s never received a policy (round=%d states=%d)", d.Device, d.PolicyRound, d.PolicyStates)
		}
		if d.Uploaded == nil || d.States == 0 {
			t.Fatalf("%s uploaded nothing", d.Device)
		}
	}

	// Serial reference: install the same uploaded tables on a fresh
	// fleet, in device order, and merge the paper's way.
	fleet := &cloud.Fleet{Trainer: cloud.DefaultTrainerConfig()}
	for _, d := range report.Devices {
		a := core.NewAgent(core.DefaultAgentConfig())
		a.InstallTable(opts.App, d.Uploaded.Clone(), false)
		fleet.Devices = append(fleet.Devices, a)
	}
	serial, _, err := fleet.MergeApp(opts.App)
	if err != nil {
		t.Fatal(err)
	}

	gotJSON, err := core.MarshalTable(opts.App, report.Merged, true)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := core.MarshalTable(opts.App, serial, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("concurrent fleet merge differs from serial cloud.Fleet.MergeApp")
	}
	if serial.States() == 0 {
		t.Fatal("degenerate merge: no states")
	}

	// Distinct seeds must produce genuinely different device tables —
	// otherwise the merge proves nothing.
	a, _ := core.MarshalTable(opts.App, report.Devices[0].Uploaded, false)
	b, _ := core.MarshalTable(opts.App, report.Devices[1].Uploaded, false)
	if bytes.Equal(a, b) {
		t.Fatal("devices 0 and 1 trained identical tables; seeds not independent")
	}
}

// Two identically-seeded fleet runs against fresh servers must produce
// byte-identical merged tables regardless of traffic interleaving.
func TestFleetRunDeterministic(t *testing.T) {
	opts := Options{Devices: 6, Sessions: 1, SessionSecs: 5, Seed: 7, Parallel: 4}
	var tables [][]byte
	for i := 0; i < 2; i++ {
		_, url, done := startServer(t)
		report, err := Run(url, opts)
		done()
		if err != nil {
			t.Fatal(err)
		}
		if report.Errors != 0 {
			t.Fatalf("run %d: %d device errors", i, report.Errors)
		}
		data, err := core.MarshalTable(report.Options.App, report.Merged, true)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, data)
	}
	if !bytes.Equal(tables[0], tables[1]) {
		t.Fatal("same seeds, different merged tables")
	}
}

// Lockstep is a distinct, deterministic training mode: two
// identically-seeded lockstep fleets merge to byte-identical tables,
// every device succeeds, and per-device tables still differ (each lane
// keeps its own engine seed and rng streams inside the shared loop).
func TestFleetLockstepDeterministic(t *testing.T) {
	opts := Options{Devices: 5, Sessions: 2, SessionSecs: 5, Seed: 7, Parallel: 4, Lockstep: true}
	var tables [][]byte
	var first Report
	for i := 0; i < 2; i++ {
		_, url, done := startServer(t)
		report, err := Run(url, opts)
		done()
		if err != nil {
			t.Fatal(err)
		}
		if report.Errors != 0 {
			for _, d := range report.Devices {
				if d.Err != "" {
					t.Errorf("%s: %s", d.Device, d.Err)
				}
			}
			t.Fatalf("run %d: %d device errors", i, report.Errors)
		}
		data, err := core.MarshalTable(report.Options.App, report.Merged, true)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, data)
		if i == 0 {
			first = report
		}
	}
	if !bytes.Equal(tables[0], tables[1]) {
		t.Fatal("same seeds, different lockstep merged tables")
	}
	a, _ := core.MarshalTable(first.Options.App, first.Devices[0].Uploaded, false)
	b, _ := core.MarshalTable(first.Options.App, first.Devices[1].Uploaded, false)
	if bytes.Equal(a, b) {
		t.Fatal("lockstep lanes 0 and 1 trained identical tables; engine seeds not independent")
	}
}

// A scenario fleet in lockstep mode groups devices into per-preset
// cohorts; every cohort trains and federates successfully.
func TestFleetLockstepScenarioCohorts(t *testing.T) {
	_, url, done := startServer(t)
	defer done()
	opts := Options{
		Devices: 6, Sessions: 1, SessionSecs: 6, Seed: 11, Parallel: 4,
		Lockstep:  true,
		Scenarios: []string{"doomscroll", "bursty-messaging"},
	}
	report, err := Run(url, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		for _, d := range report.Devices {
			if d.Err != "" {
				t.Errorf("%s: %s", d.Device, d.Err)
			}
		}
		t.Fatalf("%d device errors", report.Errors)
	}
	if len(report.PerApp) == 0 {
		t.Fatal("scenario fleet produced no per-app merges")
	}
	for i, d := range report.Devices {
		want := opts.Scenarios[i%len(opts.Scenarios)]
		if d.Scenario != want {
			t.Fatalf("device %d trained %q, want %q", i, d.Scenario, want)
		}
		if len(d.Tables) == 0 {
			t.Fatalf("device %d uploaded no tables", i)
		}
	}
}

func TestFleetRunServerMetricsSeeTraffic(t *testing.T) {
	srv, url, done := startServer(t)
	defer done()
	report, err := Run(url, Options{Devices: 4, Sessions: 1, SessionSecs: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests < int64(4*4+2) {
		t.Fatalf("requests = %d, want at least %d", report.Requests, 4*4+2)
	}
	if got := srv.Metrics().Requests(); got < report.Requests {
		t.Fatalf("server counted %d requests, client sent %d", got, report.Requests)
	}
	count, _, maxUS := srv.Metrics().MergeLatency()
	if count < 5 || maxUS <= 0 {
		t.Fatalf("merge latency summary empty: count=%d max=%d", count, maxUS)
	}
}

func TestFleetRunValidation(t *testing.T) {
	_, url, done := startServer(t)
	defer done()
	if _, err := Run(url, Options{App: "nosuchapp"}); err == nil {
		t.Fatal("unknown app should fail")
	}
	if _, err := Run(url, Options{Platform: "nosuchplat"}); err == nil {
		t.Fatal("unknown platform should fail")
	}
	if _, err := Run("http://127.0.0.1:1", Options{}); err == nil || !strings.Contains(err.Error(), "not reachable") {
		t.Fatal("dead server should fail fast")
	}
}

// A heterogeneous scenario fleet: devices rotate through three usage
// presets, every app any scenario visits is uploaded and federated, and
// each per-app merge is byte-identical to a serial cloud.MergeTables of
// the same device tables in device order — policies trained on
// different usage genuinely blend.
func TestFleetScenarioHeterogeneousMerge(t *testing.T) {
	_, url, done := startServer(t)
	defer done()

	opts := Options{
		Devices:     6,
		Platform:    "note9",
		Sessions:    1,
		SessionSecs: 30,
		Seed:        42,
		Parallel:    4,
		Scenarios:   []string{"commute", "doomscroll", "video-binge"},
	}
	report, err := Run(url, opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		for _, d := range report.Devices {
			if d.Err != "" {
				t.Errorf("%s: %s", d.Device, d.Err)
			}
		}
		t.Fatalf("%d devices failed", report.Errors)
	}
	for i, d := range report.Devices {
		want := opts.Scenarios[i%len(opts.Scenarios)]
		if d.Scenario != want {
			t.Fatalf("%s trained %q, want %q", d.Device, d.Scenario, want)
		}
		if len(d.Tables) == 0 || d.States == 0 {
			t.Fatalf("%s uploaded nothing", d.Device)
		}
	}
	if len(report.PerApp) == 0 {
		t.Fatal("scenario fleet reported no per-app merges")
	}

	// The union must span more than one app — heterogeneity is the point.
	if len(report.PerApp) < 3 {
		t.Fatalf("only %d apps federated: %+v", len(report.PerApp), report.PerApp)
	}

	for _, am := range report.PerApp {
		var tables []*core.QTable
		devs := 0
		for _, d := range report.Devices { // device order == sorted name order
			if tab, ok := d.Tables[am.App]; ok {
				tables = append(tables, tab.Clone())
				devs++
			}
		}
		if devs != am.Merge.Devices {
			t.Fatalf("%s: server merged %d devices, fleet holds %d", am.App, am.Merge.Devices, devs)
		}
		serial, err := cloud.MergeTables(tables)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := core.MarshalTable(am.App, am.Merged, true)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := core.MarshalTable(am.App, serial, true)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("%s: concurrent scenario-fleet merge differs from serial cloud.MergeTables", am.App)
		}
	}

	// Devices on different scenarios trained different app sets or
	// different tables — the blend is real.
	if len(report.Devices[0].Tables) == len(report.Devices[1].Tables) {
		same := true
		for app := range report.Devices[0].Tables {
			if _, ok := report.Devices[1].Tables[app]; !ok {
				same = false
				break
			}
		}
		if same {
			a, _ := json.Marshal(report.Devices[0].Tables)
			b, _ := json.Marshal(report.Devices[1].Tables)
			if bytes.Equal(a, b) {
				t.Fatal("commute and doomscroll devices trained identical tables")
			}
		}
	}
}

// Scenario fleets keep the determinism contract: identical options
// against fresh servers produce byte-identical per-app merged tables.
func TestFleetScenarioRunDeterministic(t *testing.T) {
	opts := Options{
		Devices: 4, Sessions: 1, SessionSecs: 20, Seed: 9, Parallel: 4,
		Scenarios: []string{"bursty-messaging", "thermal-soak"},
	}
	var runs [][]byte
	for i := 0; i < 2; i++ {
		_, url, done := startServer(t)
		report, err := Run(url, opts)
		done()
		if err != nil {
			t.Fatal(err)
		}
		if report.Errors != 0 {
			t.Fatalf("run %d: %d device errors", i, report.Errors)
		}
		var blob bytes.Buffer
		for _, am := range report.PerApp {
			data, err := core.MarshalTable(am.App, am.Merged, true)
			if err != nil {
				t.Fatal(err)
			}
			blob.Write(data)
		}
		runs = append(runs, blob.Bytes())
	}
	if !bytes.Equal(runs[0], runs[1]) {
		t.Fatal("same scenario fleet options, different merged tables")
	}
}
