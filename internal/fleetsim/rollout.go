package fleetsim

import (
	"fmt"
	"math/rand"
	"time"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/core"
	"nextdvfs/internal/exp"
	"nextdvfs/internal/fleetd"
	"nextdvfs/internal/learner"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/rollout"
	"nextdvfs/internal/session"
	"nextdvfs/internal/workload"
)

// RolloutOptions switches a fleet run into the A/B policy-lifecycle
// mode: two training generations produce a stable artifact and a
// candidate, then the fleet replays deterministic evaluation sessions —
// canary devices on the candidate, control devices on stable — and
// feeds the measured energy/QoS back until the server promotes or rolls
// back.
type RolloutOptions struct {
	// Sabotage degrades the second generation's uploads (every state's
	// greedy action becomes "GPU frequency down", walking the render
	// clock to its floor so race-to-idle is lost) so the canary cohort
	// measurably regresses and the server's evaluator rolls the
	// candidate back. Default off: the candidate is the honestly
	// continued training and promotes.
	Sabotage bool
	// MaxRounds bounds evaluation rounds before giving up undecided
	// (0 → 8).
	MaxRounds int
	// EvalSecs is each evaluation replay's simulated length
	// (0 → SessionSecs).
	EvalSecs float64
}

func (o *RolloutOptions) defaults(opts *Options) {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 8
	}
	if o.EvalSecs <= 0 {
		o.EvalSecs = opts.SessionSecs
	}
}

// RolloutRound is one judged evaluation round of an A/B run.
type RolloutRound struct {
	Round int
	// StageBps is the canary stage that was active while this round's
	// evidence was gathered.
	StageBps uint32
	// Action/Reason echo the server's Decision for the round.
	Action  string
	Reason  string
	Canary  rollout.CohortStats
	Control rollout.CohortStats
}

// RolloutReport summarizes an A/B lifecycle run.
type RolloutReport struct {
	// StableVersion/CandidateVersion are the two artifacts the run
	// minted (generation 1 and 2).
	StableVersion    int64
	CandidateVersion int64
	Rounds           []RolloutRound
	// Outcome is "promote", "rollback", or "undecided" when MaxRounds
	// ran out.
	Outcome string
	// FinalVersion is the stable artifact the whole fleet runs at the
	// end; Rollbacks the server's rollback count.
	FinalVersion int64
	Rollbacks    int64
	// Skipped304 counts policy downloads the ETag/If-None-Match
	// negotiation elided across the evaluation rounds.
	Skipped304 int
}

// runRollout drives the A/B lifecycle against a rollout-enabled fleetd
// server. Determinism: device seeds derive exactly as in plain runs,
// evaluation rounds replay one shared per-round seed across the whole
// fleet (so canary and control trajectories differ only by the policy
// they run), and all traffic is sequential in device order.
func runRollout(baseURL string, opts Options) (Report, error) {
	ro := *opts.Rollout
	ro.defaults(&opts)
	if len(opts.Scenarios) > 0 || opts.Lockstep {
		return Report{}, fmt.Errorf("fleetsim: rollout mode is single-app and scalar (no -scenarios / -lockstep)")
	}
	plat, err := platform.Get(opts.Platform)
	if err != nil {
		return Report{}, fmt.Errorf("fleetsim: %w", err)
	}
	client := fleetd.NewClient(baseURL)
	if _, err := client.Healthz(); err != nil {
		return Report{}, fmt.Errorf("fleetsim: server not reachable: %w", err)
	}

	report := Report{Options: opts, Devices: make([]DeviceResult, opts.Devices)}
	rr := &RolloutReport{}
	report.Rollout = rr
	var requests int64

	// Generation 1 — every device trains and uploads; one merge mints
	// the bootstrap artifact, which promotes straight to stable.
	agents := make([]*core.Agent, opts.Devices)
	trainStart := time.Now()
	batch.Map(opts.Devices, opts.Parallel, func(i int) {
		report.Devices[i] = DeviceResult{Device: deviceName(i)}
		agents[i] = trainDevice(&report.Devices[i], plat, opts, i)
	})
	report.TrainWallS = time.Since(trainStart).Seconds()
	trafficStart := time.Now()
	for i := range agents {
		if agents[i] == nil {
			return report, fmt.Errorf("fleetsim: device %s failed training: %s", deviceName(i), report.Devices[i].Err)
		}
		if _, err := client.Checkin(deviceName(i), opts.Platform); err != nil {
			return report, fmt.Errorf("fleetsim: %w", err)
		}
		if _, err := client.UploadTableSet(deviceName(i), opts.Platform, opts.App, agents[i].SnapshotFor(opts.App)); err != nil {
			return report, fmt.Errorf("fleetsim: %w", err)
		}
		requests += 2
	}
	info, err := client.Merge(opts.App, opts.Platform)
	if err != nil {
		return report, fmt.Errorf("fleetsim: bootstrap merge: %w", err)
	}
	requests++
	if info.Version == 0 {
		return report, fmt.Errorf("fleetsim: server did not mint an artifact version — rollout lifecycle not enabled?")
	}
	rr.StableVersion = info.Version

	// Generation 2 — training continues (sessions S+1..2S), so the
	// re-merged fleet table differs and the server mints a candidate.
	// Sabotage corrupts the uploads into a GPU-floor-clock policy.
	trainStart = time.Now()
	batch.Map(opts.Devices, opts.Parallel, func(i int) {
		continueTraining(&report.Devices[i], agents[i], opts, i)
	})
	report.TrainWallS += time.Since(trainStart).Seconds()
	for i := range agents {
		if report.Devices[i].Err != "" {
			return report, fmt.Errorf("fleetsim: device %s failed training: %s", deviceName(i), report.Devices[i].Err)
		}
		up := agents[i].SnapshotFor(opts.App)
		if ro.Sabotage {
			up = sabotageSet(up)
		}
		if _, err := client.UploadTableSet(deviceName(i), opts.Platform, opts.App, up); err != nil {
			return report, fmt.Errorf("fleetsim: %w", err)
		}
		requests++
	}
	info, err = client.Merge(opts.App, opts.Platform)
	if err != nil {
		return report, fmt.Errorf("fleetsim: candidate merge: %w", err)
	}
	requests++
	report.Merge = info
	rr.CandidateVersion = info.Version
	if rr.CandidateVersion == rr.StableVersion {
		return report, fmt.Errorf("fleetsim: generation 2 merged to the same artifact v%d — no candidate to stage", info.Version)
	}

	// Evaluation rounds: every device pulls its cohort's policy (ETag
	// cache in hand), replays the round's shared session on it, and
	// reports the measured energy/QoS; one Advance judges the stage.
	cached := make([]*learner.TableSet, opts.Devices)
	etags := make([]string, opts.Devices)
	for r := 1; r <= ro.MaxRounds; r++ {
		roundSeed := opts.Seed + int64(r)*1_000_003
		for i := range agents {
			set, meta, modified, err := client.PolicyForDevice(deviceName(i), opts.App, opts.Platform, etags[i])
			if err != nil {
				return report, fmt.Errorf("fleetsim: round %d policy pull: %w", r, err)
			}
			requests++
			if modified {
				cached[i], etags[i] = set, meta.ETag
			} else {
				rr.Skipped304++
			}
			res, err := evalPolicy(plat, opts, cached[i], roundSeed, ro.EvalSecs)
			if err != nil {
				return report, fmt.Errorf("fleetsim: round %d eval on %s: %w", r, deviceName(i), err)
			}
			if _, err := client.ReportEval(opts.App, opts.Platform, rollout.EvalReport{
				Device: deviceName(i), Version: meta.Version,
				EnergyJ: res.EnergyJ, QoSFPS: res.ActiveAvgFPS, DurS: ro.EvalSecs,
			}); err != nil {
				return report, fmt.Errorf("fleetsim: round %d report from %s: %w", r, deviceName(i), err)
			}
			requests++
		}
		d, err := client.RolloutAdvance(opts.App, opts.Platform)
		if err != nil {
			return report, fmt.Errorf("fleetsim: round %d advance: %w", r, err)
		}
		requests++
		rr.Rounds = append(rr.Rounds, RolloutRound{
			Round: r, StageBps: stageBefore(d), Action: d.Action, Reason: d.Reason,
			Canary: d.Canary, Control: d.Control,
		})
		if d.Action == "promote" || d.Action == "rollback" {
			rr.Outcome = d.Action
			break
		}
	}
	if rr.Outcome == "" {
		rr.Outcome = "undecided"
	}
	st, err := client.RolloutStatus(opts.App, opts.Platform)
	if err != nil {
		return report, fmt.Errorf("fleetsim: final status: %w", err)
	}
	requests++
	if st.Stable != nil {
		rr.FinalVersion = st.Stable.Version
	}
	rr.Rollbacks = st.Rollbacks
	report.TrafficWallS = time.Since(trafficStart).Seconds()
	report.Requests = requests
	if report.TrafficWallS > 0 {
		report.CheckinsPerSec = float64(opts.Devices) / report.TrafficWallS
		report.RequestsPerSec = float64(report.Requests) / report.TrafficWallS
	}
	merged, _, err := client.Policy(opts.App, opts.Platform)
	if err != nil {
		return report, fmt.Errorf("fleetsim: final policy pull: %w", err)
	}
	report.Merged = merged
	return report, nil
}

// stageBefore recovers the stage a Decision judged: after an advance
// the status already shows the NEXT stage, so the judged one is in the
// reason; simplest is to report the post-decision stage for advances
// and 0 for terminal actions (the status no longer has a stage).
func stageBefore(d rollout.Decision) uint32 { return d.Status.StageBps }

// continueTraining runs a device's second training generation, sessions
// S+1..2S, on the same agent — the natural "fleet kept learning" path
// that produces a candidate artifact.
func continueTraining(res *DeviceResult, agent *core.Agent, opts Options, i int) {
	devSeed := opts.Seed + int64(i+1)*7919
	for s := opts.Sessions + 1; s <= 2*opts.Sessions; s++ {
		seed := devSeed + int64(s)
		rng := rand.New(rand.NewSource(seed))
		tl := &session.Timeline{Scripts: []session.Script{
			session.ForApp(workload.ByName(opts.App), session.Seconds(opts.SessionSecs), rng),
		}}
		if _, err := exp.RunTimelineOn(opts.Platform, tl, seed, agent); err != nil {
			res.Err = err.Error()
			return
		}
	}
	if tab := agent.TableFor(opts.App); tab != nil && tab.Table != nil {
		res.States = tab.Table.States()
		res.Steps = tab.Table.Steps
		res.Uploaded = tab.Table.Clone()
	}
}

// sabotageSet returns a degraded deep copy of an upload: every state's
// greedy action becomes "frequency down" on the last cluster (the GPU
// on every registered SoC) — the policy walks the GPU cap to its floor
// clock, frames take longer to render, race-to-idle is lost and the
// rest of the chip stays awake longer, so a fleet running the policy
// burns measurably more energy. The candidate the sabotaged uploads
// merge into is what the rollback evaluator must catch.
func sabotageSet(set *learner.TableSet) *learner.TableSet {
	bad := set.Clone()
	for _, role := range bad.Roles {
		for _, row := range role.Table.Q {
			if len(row) < 3 {
				continue
			}
			max := row[0]
			for _, v := range row[1:] {
				if v > max {
					max = v
				}
			}
			// Per-cluster verbs are (up, down, nothing); the last
			// cluster's "down" is the second-to-last action.
			row[len(row)-2] = max + 1
		}
	}
	return bad
}

// evalPolicy replays one deterministic evaluation session on a frozen
// policy: a fresh agent (seeded by the shared round seed, so every
// device's trajectory differs only by the policy it runs) exploits the
// installed table set greedily for EvalSecs simulated seconds.
func evalPolicy(plat platform.Platform, opts Options, set *learner.TableSet, roundSeed int64, evalSecs float64) (res evalResult, err error) {
	cfg := exp.DefaultAgentConfigFor(plat)
	cfg.Seed = roundSeed
	cfg.Learner = opts.Learner
	cfg.Explorer = opts.Explorer
	agent := core.NewAgent(cfg)
	// Clone: the agent's online update keeps learning during the replay
	// and must never write through to the shared cached download.
	agent.InstallTableSet(opts.App, set.Clone(), true)
	rng := rand.New(rand.NewSource(roundSeed))
	tl := &session.Timeline{Scripts: []session.Script{
		session.ForApp(workload.ByName(opts.App), session.Seconds(evalSecs), rng),
	}}
	r, err := exp.RunTimelineOn(opts.Platform, tl, roundSeed, agent)
	if err != nil {
		return evalResult{}, err
	}
	return evalResult{EnergyJ: r.EnergyJ, ActiveAvgFPS: r.ActiveAvgFPS}, nil
}

// evalResult is the slice of sim.Result the lifecycle consumes.
type evalResult struct {
	EnergyJ      float64
	ActiveAvgFPS float64
}
