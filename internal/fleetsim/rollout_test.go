package fleetsim

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"nextdvfs/internal/fleetd"
	"nextdvfs/internal/rollout"
)

func newRolloutServer(t *testing.T) (string, func()) {
	t.Helper()
	srv, err := fleetd.NewServer(fleetd.Config{Rollout: &rollout.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return ts.URL, ts.Close
}

// abOptions is the pinned A/B configuration both lifecycle tests run:
// chrome is clock-sensitive enough that a degraded policy measurably
// regresses, and 16 devices pin the cohort split (dev-00000011 is the
// sole canary, per the bucket golden tests).
func abOptions(sabotage bool) Options {
	return Options{
		Devices: 16, Sessions: 1, SessionSecs: 6, Seed: 1, App: "chrome",
		Rollout: &RolloutOptions{Sabotage: sabotage},
	}
}

// TestRolloutPromoteE2E pins the healthy path end to end: a candidate
// trained one generation further promotes 1% → 10% → 100% in exactly
// two judged rounds, and ETag revalidation elides every redundant
// download after round 1.
func TestRolloutPromoteE2E(t *testing.T) {
	url, done := newRolloutServer(t)
	defer done()
	rep, err := Run(url, abOptions(false))
	if err != nil {
		t.Fatal(err)
	}
	ro := rep.Rollout
	if ro == nil {
		t.Fatal("A/B run produced no rollout report")
	}
	if ro.StableVersion != 1 || ro.CandidateVersion != 2 {
		t.Fatalf("artifact versions = v%d stable, v%d candidate; want v1/v2", ro.StableVersion, ro.CandidateVersion)
	}
	if ro.Outcome != "promote" || ro.FinalVersion != 2 || ro.Rollbacks != 0 {
		t.Fatalf("outcome = %q final v%d rollbacks %d; want promote to v2", ro.Outcome, ro.FinalVersion, ro.Rollbacks)
	}
	if len(ro.Rounds) != 2 || ro.Rounds[0].Action != "advance" || ro.Rounds[1].Action != "promote" {
		t.Fatalf("rounds = %+v, want advance then promote", ro.Rounds)
	}
	// Neither artifact changes between rounds 1 and 2, so every round-2
	// download (all 16 devices) revalidates via If-None-Match.
	if ro.Skipped304 != 16 {
		t.Fatalf("skipped downloads = %d, want 16 (one 304 per device in round 2)", ro.Skipped304)
	}
	// Both cohorts measured: the deterministic shared-seed replay puts
	// canary and control on the same session, so their QoS agrees to
	// within the promote guard while the policies are healthy.
	r1 := ro.Rounds[0]
	if r1.Canary.Devices != 1 || r1.Control.Devices != 15 {
		t.Fatalf("round 1 cohorts = %d canary / %d control, want 1/15", r1.Canary.Devices, r1.Control.Devices)
	}
	if r1.Canary.AvgEnergyJ <= 0 || r1.Control.AvgEnergyJ <= 0 || r1.Canary.AvgQoSFPS <= 0 {
		t.Fatalf("round 1 stats not measured: %+v", r1)
	}

	// The cohort columns appear in the summary for A/B runs.
	var buf bytes.Buffer
	rep.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"rollout: stable v1, candidate v2 → promote", "canary J", "control fps", "promote"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestRolloutAutoRollbackE2E pins the degraded path: sabotaged uploads
// produce a candidate whose canary cohort burns measurably more energy,
// and the server rolls the fleet back to the last-good artifact in the
// first judged round.
func TestRolloutAutoRollbackE2E(t *testing.T) {
	url, done := newRolloutServer(t)
	defer done()
	rep, err := Run(url, abOptions(true))
	if err != nil {
		t.Fatal(err)
	}
	ro := rep.Rollout
	if ro.Outcome != "rollback" || ro.FinalVersion != 1 || ro.Rollbacks != 1 {
		t.Fatalf("outcome = %q final v%d rollbacks %d; want rollback to v1", ro.Outcome, ro.FinalVersion, ro.Rollbacks)
	}
	if len(ro.Rounds) != 1 || ro.Rounds[0].Action != "rollback" {
		t.Fatalf("rounds = %+v, want a single rollback round", ro.Rounds)
	}
	r1 := ro.Rounds[0]
	if !strings.Contains(r1.Reason, "energy") {
		t.Fatalf("rollback reason = %q, want the energy guard", r1.Reason)
	}
	// The regression is physical, not marginal: the GPU-floor policy
	// costs well past the 5% guard on the shared replay.
	if r1.Canary.AvgEnergyJ < r1.Control.AvgEnergyJ*1.10 {
		t.Fatalf("canary %.2f J vs control %.2f J — sabotage no longer regresses measurably",
			r1.Canary.AvgEnergyJ, r1.Control.AvgEnergyJ)
	}

	var buf bytes.Buffer
	rep.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "rollback") || !strings.Contains(buf.String(), "energy") {
		t.Fatalf("summary missing rollback reason:\n%s", buf.String())
	}
}

// TestRolloutModeRejectsCombos pins the mode's surface: scenario and
// lockstep fleets cannot run A/B, and a plain server (no lifecycle)
// fails fast instead of silently degrading.
func TestRolloutModeRejectsCombos(t *testing.T) {
	url, done := newRolloutServer(t)
	defer done()
	opts := abOptions(false)
	opts.Scenarios = []string{"commute"}
	if _, err := Run(url, opts); err == nil || !strings.Contains(err.Error(), "scenarios") {
		t.Fatalf("scenario A/B run = %v, want rejection", err)
	}
	opts = abOptions(false)
	opts.Lockstep = true
	if _, err := Run(url, opts); err == nil {
		t.Fatal("lockstep A/B run accepted")
	}

	srv, err := fleetd.NewServer(fleetd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	small := abOptions(false)
	small.Devices = 2
	if _, err := Run(ts.URL, small); err == nil || !strings.Contains(err.Error(), "lifecycle") {
		t.Fatalf("A/B against plain server = %v, want lifecycle error", err)
	}
}

// TestSummaryDefaultUnchanged pins that plain (non-A/B) runs print a
// summary with no rollout section — the default output is
// byte-identical to pre-lifecycle builds.
func TestSummaryDefaultUnchanged(t *testing.T) {
	var buf bytes.Buffer
	Report{Options: Options{Devices: 2}, Devices: make([]DeviceResult, 2)}.WriteSummary(&buf)
	if strings.Contains(buf.String(), "rollout") {
		t.Fatalf("plain summary mentions rollout:\n%s", buf.String())
	}
}
