package fleetsim

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"nextdvfs/internal/aggregator"
	"nextdvfs/internal/core"
	"nextdvfs/internal/fleetd"
)

// FederationReport describes the two-tier topology of an aggregator
// run: what the final federation epoch moved and merged.
type FederationReport struct {
	// Aggregators is the edge-tier width.
	Aggregators int
	// Flushed counts device tables the root accepted during the final
	// epoch; LocalMerges the aggregator-local rounds its split phase
	// ran.
	Flushed     int
	LocalMerges int
	// Late names aggregators that failed to flush in the final epoch
	// (empty for in-process tiers unless the root died mid-run).
	Late []string
	// Retries429 counts uploads that were rejected with Retry-After
	// backpressure and retried by the simulated devices.
	Retries429 int64
}

// aggTier is the in-process edge tier a two-tier run spins up over the
// root server: one aggregator.Server per region, each listening on its
// own loopback port so devices reach their region over real HTTP.
type aggTier struct {
	aggs    []*aggregator.Server
	clients []*fleetd.Client
	srvs    []*http.Server
}

// startAggTier builds opts.Aggregators edge aggregators over the root.
// Background flushing stays off — the federation epoch after traffic
// drains the queues, which keeps the run's output a deterministic
// function of the uploads rather than of flush timing.
func startAggTier(rootURL string, opts Options) (*aggTier, error) {
	t := &aggTier{}
	for a := 0; a < opts.Aggregators; a++ {
		agg, err := aggregator.New(aggregator.Config{
			ID:         fmt.Sprintf("agg-%03d", a),
			Root:       rootURL,
			FlushEvery: -1,
			// Sized so a well-behaved run never trips backpressure: the
			// queue bounds distinct (policy, device) pairs and a scenario
			// device uploads one table per visited app.
			QueueLimit:       opts.Devices*16 + 64,
			MaxDevicesPerKey: opts.Devices + 1,
		})
		if err != nil {
			t.close()
			return nil, fmt.Errorf("fleetsim: building aggregator tier: %w", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.close()
			return nil, fmt.Errorf("fleetsim: aggregator listener: %w", err)
		}
		srv := &http.Server{Handler: agg.Handler()}
		go srv.Serve(ln)
		t.aggs = append(t.aggs, agg)
		t.srvs = append(t.srvs, srv)
		c := fleetd.NewClient("http://" + ln.Addr().String())
		c.UseBinary = opts.Binary
		t.clients = append(t.clients, c)
	}
	return t, nil
}

func (t *aggTier) close() {
	for _, s := range t.srvs {
		s.Close()
	}
}

// Device-side backpressure handling: a 429 with Retry-After is a
// delay-and-retry signal, not a failure. The sim honors the server's
// delay but clamps it so a test-sized queue can't stall the run.
const (
	maxUploadRetries = 8
	maxRetryDelay    = 200 * time.Millisecond
)

func uploadWithBackpressure(client *fleetd.Client, device, platform, app string,
	set *core.TableSet, retries *atomic.Int64) (fleetd.UploadReply, error) {
	for attempt := 0; ; attempt++ {
		reply, err := client.UploadTableSet(device, platform, app, set)
		var ra *fleetd.RetryAfterError
		if err == nil || !errors.As(err, &ra) || attempt >= maxUploadRetries {
			return reply, err
		}
		retries.Add(1)
		delay := time.Duration(ra.Seconds * float64(time.Second))
		if delay <= 0 || delay > maxRetryDelay {
			delay = maxRetryDelay
		}
		time.Sleep(delay)
	}
}

// runEpochPhase is phase 3 of a two-tier run: one federation epoch
// (aggregator-local merges → flush upward → root joins), then the
// final policies pulled from the root — the table every device would
// get on its next check-in, pinned byte-identical to a flat merge.
func runEpochPhase(rootClient *fleetd.Client, tier *aggTier, report *Report,
	opts Options, requests, retries *atomic.Int64) error {
	coord := &aggregator.Coordinator{Root: rootClient, Aggs: tier.aggs}
	apps := finalApps(report, opts)
	keys := make([]fleetd.Key, len(apps))
	for i, app := range apps {
		keys[i] = fleetd.Key{App: app, Platform: opts.Platform}
	}
	rep, err := coord.RunEpoch(keys)
	if err != nil {
		return fmt.Errorf("fleetsim: federation epoch: %w", err)
	}
	requests.Add(int64(len(rep.Merges)))
	report.Federation = &FederationReport{
		Aggregators: opts.Aggregators,
		Flushed:     rep.Flushed,
		LocalMerges: rep.LocalMerges,
		Late:        rep.Late,
		Retries429:  retries.Load(),
	}
	byApp := make(map[string]fleetd.MergeInfo, len(rep.Merges))
	for _, info := range rep.Merges {
		byApp[info.App] = info
	}
	for _, app := range apps {
		info, ok := byApp[app]
		if !ok {
			return fmt.Errorf("fleetsim: federation epoch produced no root merge for %s", app)
		}
		merged, _, err := rootClient.Policy(app, opts.Platform)
		if err != nil {
			return fmt.Errorf("fleetsim: final policy pull of %s: %w", app, err)
		}
		requests.Add(1)
		if len(opts.Scenarios) > 0 {
			report.PerApp = append(report.PerApp, AppMerge{App: app, Merge: info, Merged: merged})
		}
		if report.Merged == nil || app == opts.App {
			report.Merge = info
			report.Merged = merged
		}
	}
	return nil
}
