package fleetsim

import (
	"bytes"
	"strings"
	"testing"

	"nextdvfs/internal/core"
)

// The two-tier acceptance pin: a fleet routed through an edge
// aggregator tier must converge to the same root table, byte for byte,
// as the identical flat run — the aggregators forward raw device
// tables, so the root's federated join sees exactly the flat upload
// set.
func TestTwoTierFleetMatchesFlatRun(t *testing.T) {
	opts := Options{Devices: 24, App: "spotify", Sessions: 2, SessionSecs: 6, Seed: 99, Parallel: 8}

	_, flatURL, flatDone := startServer(t)
	defer flatDone()
	flat, err := Run(flatURL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Errors != 0 {
		t.Fatalf("flat run: %d device errors", flat.Errors)
	}

	tiered := opts
	tiered.Aggregators = 3
	_, rootURL, rootDone := startServer(t)
	defer rootDone()
	report, err := Run(rootURL, tiered)
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		for _, d := range report.Devices {
			if d.Err != "" {
				t.Errorf("%s: %s", d.Device, d.Err)
			}
		}
		t.Fatalf("tiered run: %d device errors", report.Errors)
	}

	f := report.Federation
	if f == nil {
		t.Fatal("two-tier run reported no FederationReport")
	}
	if f.Aggregators != 3 {
		t.Fatalf("FederationReport.Aggregators = %d, want 3", f.Aggregators)
	}
	if f.Flushed != opts.Devices {
		t.Fatalf("epoch flushed %d tables, want %d", f.Flushed, opts.Devices)
	}
	if len(f.Late) != 0 {
		t.Fatalf("in-process epoch had late aggregators: %v", f.Late)
	}
	if report.Merge.Devices != opts.Devices {
		t.Fatalf("root joined %d devices, want %d", report.Merge.Devices, opts.Devices)
	}

	got, err := core.MarshalTable(opts.App, report.Merged, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MarshalTable(opts.App, flat.Merged, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("two-tier federated table differs from the flat run's merge")
	}
	if flat.Merged.States() == 0 {
		t.Fatal("degenerate comparison: flat merge has no states")
	}
}

// Scenario fleets keep the byte-identity pin per app: every app's root
// table after a two-tier run equals the flat run's.
func TestTwoTierScenarioFleetMatchesFlatPerApp(t *testing.T) {
	opts := Options{
		Devices:   12,
		Scenarios: []string{"commute", "doomscroll"},
		Sessions:  1, SessionSecs: 6, Seed: 7, Parallel: 8,
	}

	_, flatURL, flatDone := startServer(t)
	defer flatDone()
	flat, err := Run(flatURL, opts)
	if err != nil {
		t.Fatal(err)
	}

	tiered := opts
	tiered.Aggregators = 2
	_, rootURL, rootDone := startServer(t)
	defer rootDone()
	report, err := Run(rootURL, tiered)
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 || flat.Errors != 0 {
		t.Fatalf("device errors: tiered %d, flat %d", report.Errors, flat.Errors)
	}
	if len(report.PerApp) != len(flat.PerApp) {
		t.Fatalf("tiered run merged %d apps, flat %d", len(report.PerApp), len(flat.PerApp))
	}
	for i, am := range report.PerApp {
		want := flat.PerApp[i]
		if am.App != want.App {
			t.Fatalf("app order diverged: tiered %s, flat %s", am.App, want.App)
		}
		gotJSON, err := core.MarshalTable(am.App, am.Merged, true)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := core.MarshalTable(want.App, want.Merged, true)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("%s: two-tier table differs from flat run", am.App)
		}
	}
}

// The tier summary lines appear only for two-tier runs, so the default
// WriteSummary output stays byte-identical for flat fleets.
func TestWriteSummaryFederationLines(t *testing.T) {
	var flatBuf bytes.Buffer
	Report{}.WriteSummary(&flatBuf)
	if strings.Contains(flatBuf.String(), "federation:") {
		t.Fatal("flat summary mentions federation")
	}

	var buf bytes.Buffer
	r := Report{Federation: &FederationReport{Aggregators: 4, Flushed: 64, LocalMerges: 4, Retries429: 2, Late: []string{"agg-003"}}}
	r.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{
		"federation: 4 aggregators, 64 tables joined at root, 4 local merges",
		"backpressure retries: 2",
		"late aggregators: agg-003",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q in:\n%s", want, out)
		}
	}
}

func TestAggregatorsExcludesRollout(t *testing.T) {
	_, err := Run("http://127.0.0.1:0", Options{Aggregators: 2, Rollout: &RolloutOptions{}})
	if err == nil || !strings.Contains(err.Error(), "excludes rollout") {
		t.Fatalf("want rollout-exclusion error, got %v", err)
	}
}
