// Package frand is a devirtualized replay of math/rand's default
// source: a Rand seeded with the same seed produces bit-for-bit the
// Int63/Float64 stream of rand.New(rand.NewSource(seed)), but through
// concrete inlinable methods instead of the Source interface dispatch
// the standard Rand pays on every draw. The batched simulation engine
// draws three jitter values per lane per tick, so that dispatch is a
// measurable slice of the tick budget; the scalar engine keeps the
// standard Rand and the two streams are pinned equal by TestMatchesStdlib.
//
// The trick is that the generator's future is fully determined by its
// last 607 outputs. math/rand's source is the additive lagged Fibonacci
// generator X(n) = X(n-607) + X(n-273) over int64, with outputs masked
// to 63 bits. Addition carries only propagate upward, so the masked
// stream is self-consistent: masked X(n) = (masked X(n-607) + masked
// X(n-273)) mod 2^63. New draws 607 probe outputs from a throwaway
// standard source and inverts the recurrence to recover the seeded
// state — no copy of the stdlib's seeding tables, and immune to their
// values by construction.
package frand

import "math/rand"

const (
	rngLen  = 607
	rngTap  = 273
	rngMask = 1<<63 - 1
)

// Rand replays the math/rand default-source stream for one seed. Not
// safe for concurrent use, like rand.Rand with a private source.
type Rand struct {
	vec       [rngLen]int64 // 63-bit masked feedback register
	tap, feed int
}

// New returns a generator whose Int63/Float64 stream is identical to
// rand.New(rand.NewSource(seed)) from the first draw.
func New(seed int64) *Rand {
	probe := rand.New(rand.NewSource(seed))
	var out [rngLen]int64
	for i := range out {
		out[i] = probe.Int63() // X(1) .. X(607)
	}
	// Invert X(n) = X(n-607) + X(n-273) (mod 2^63) to recover the
	// pre-draw state X(-606) .. X(0). Draws 274..607 reach back into the
	// observed outputs; draws 1..273 reach into the slice of the state
	// recovered by the first pass.
	pre := make([]int64, rngLen) // pre[i] holds X(i-606)
	for m := rngTap + 1; m <= rngLen; m++ {
		// X(m-607) = X(m) - X(m-273)
		pre[m-1] = (out[m-1] - out[m-rngTap-1]) & rngMask
	}
	for m := 1; m <= rngTap; m++ {
		// X(m-273) = pre state index (m-273)+606 = m+333
		pre[m-1] = (out[m-1] - pre[m+333]) & rngMask
	}
	r := &Rand{}
	// Lay the recovered state out in the stdlib source's post-seed slot
	// order: its cursors start at tap=0, feed=334 and draw m consumes
	// slot (334-m) mod 607 as the X(m-607) operand.
	for m := 1; m <= rngLen; m++ {
		slot := 334 - m
		if slot < 0 {
			slot += rngLen
		}
		r.vec[slot] = pre[m-1]
	}
	r.tap, r.feed = 0, rngLen-rngTap
	return r
}

// Int63 returns the next value of the replayed stream: a non-negative
// 63-bit integer, equal to the standard Rand's Int63.
func (r *Rand) Int63() int64 {
	t, f := r.tap-1, r.feed-1
	if t < 0 {
		t += rngLen
	}
	if f < 0 {
		f += rngLen
	}
	x := (r.vec[f] + r.vec[t]) & rngMask
	r.vec[f] = x
	r.tap, r.feed = t, f
	return x
}

// Float64 returns the next value in [0,1), equal to the standard
// Rand's Float64 (including its resample-on-1.0 quirk). The standard
// library divides by 2^63; multiplying by 2^-63 instead is the same
// exact exponent shift (power-of-two scaling never rounds — the only
// rounding is the shared int64→float64 conversion), so the streams stay
// bit-identical while skipping the FP divide.
func (r *Rand) Float64() float64 {
	for {
		f := float64(r.Int63()) * 0x1p-63
		if f != 1 {
			return f
		}
	}
}
