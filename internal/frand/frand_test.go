package frand

import (
	"math/rand"
	"testing"
)

// The package contract: the replayed stream is bit-identical to the
// standard library's, from the first draw, for any seed — including
// interleaved Int63/Float64 consumption like the workload model's.
func TestMatchesStdlib(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 99, 1 << 40, -1 << 52} {
		std := rand.New(rand.NewSource(seed))
		fast := New(seed)
		for i := 0; i < 20_000; i++ {
			switch i % 3 {
			case 0:
				if a, b := std.Int63(), fast.Int63(); a != b {
					t.Fatalf("seed %d draw %d: Int63 %d != stdlib %d", seed, i, b, a)
				}
			default:
				if a, b := std.Float64(), fast.Float64(); a != b {
					t.Fatalf("seed %d draw %d: Float64 %v != stdlib %v", seed, i, b, a)
				}
			}
		}
	}
}

// The recurrence must hold across the ring wrap (draw 607 -> 608) for
// long streams, not just the recovered prefix.
func TestLongStream(t *testing.T) {
	std := rand.New(rand.NewSource(12345))
	fast := New(12345)
	for i := 0; i < 5*rngLen; i++ {
		if a, b := std.Int63(), fast.Int63(); a != b {
			t.Fatalf("draw %d: %d != stdlib %d", i, b, a)
		}
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

func BenchmarkStdlibFloat64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
