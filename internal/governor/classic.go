package governor

// Performance always runs every cluster at its cap — the kernel
// "performance" governor.
type Performance struct{ Interval int64 }

// Name implements Governor.
func (Performance) Name() string { return "performance" }

// IntervalUS implements Governor.
func (g Performance) IntervalUS() int64 { return nonzero(g.Interval) }

// Decide implements Governor.
func (Performance) Decide(_ int64, obs []Observation) {
	for _, o := range obs {
		o.Cluster.SetCur(o.Cluster.Cap())
	}
}

// Reset implements Governor.
func (Performance) Reset() {}

// Powersave always runs every cluster at its floor.
type Powersave struct{ Interval int64 }

// Name implements Governor.
func (Powersave) Name() string { return "powersave" }

// IntervalUS implements Governor.
func (g Powersave) IntervalUS() int64 { return nonzero(g.Interval) }

// Decide implements Governor.
func (Powersave) Decide(_ int64, obs []Observation) {
	for _, o := range obs {
		o.Cluster.SetCur(o.Cluster.Floor())
	}
}

// Reset implements Governor.
func (Powersave) Reset() {}

// Ondemand is the classic threshold governor: jump to max above the up
// threshold, otherwise scale proportionally to utilization.
type Ondemand struct {
	Interval    int64
	UpThreshold float64 // default 0.80
}

// Name implements Governor.
func (Ondemand) Name() string { return "ondemand" }

// IntervalUS implements Governor.
func (g Ondemand) IntervalUS() int64 { return nonzero(g.Interval) }

// Decide implements Governor.
func (g Ondemand) Decide(_ int64, obs []Observation) {
	up := g.UpThreshold
	if up <= 0 {
		up = 0.80
	}
	for _, o := range obs {
		c := o.Cluster
		if o.Util >= up {
			c.SetCur(c.Cap())
			continue
		}
		// Proportional: enough capacity that util lands near the
		// threshold at the new frequency.
		targetKHz := int(float64(c.CurOPP().FreqKHz) * o.Util / up)
		c.SetCur(c.IndexForFreqKHz(targetKHz))
	}
}

// Reset implements Governor.
func (Ondemand) Reset() {}

// Conservative steps one OPP at a time toward the demand, like the
// kernel governor of the same name.
type Conservative struct {
	Interval      int64
	UpThreshold   float64 // default 0.75
	DownThreshold float64 // default 0.35
}

// Name implements Governor.
func (Conservative) Name() string { return "conservative" }

// IntervalUS implements Governor.
func (g Conservative) IntervalUS() int64 { return nonzero(g.Interval) }

// Decide implements Governor.
func (g Conservative) Decide(_ int64, obs []Observation) {
	up, down := g.UpThreshold, g.DownThreshold
	if up <= 0 {
		up = 0.75
	}
	if down <= 0 {
		down = 0.35
	}
	for _, o := range obs {
		c := o.Cluster
		switch {
		case o.Util >= up:
			c.SetCur(c.Cur() + 1)
		case o.Util <= down:
			c.SetCur(c.Cur() - 1)
		}
	}
}

// Reset implements Governor.
func (Conservative) Reset() {}

// Userspace pins every cluster at a fixed OPP index (like echoing a
// frequency into scaling_setspeed). Useful for sweeps such as the
// Fig. 4 PPDW trend.
type Userspace struct {
	Interval int64
	// Indices maps cluster name → OPP index; missing clusters hold cap.
	Indices map[string]int
}

// Name implements Governor.
func (Userspace) Name() string { return "userspace" }

// IntervalUS implements Governor.
func (g Userspace) IntervalUS() int64 { return nonzero(g.Interval) }

// Decide implements Governor.
func (g Userspace) Decide(_ int64, obs []Observation) {
	for _, o := range obs {
		if idx, ok := g.Indices[o.Cluster.Name]; ok {
			o.Cluster.SetCur(idx)
		} else {
			o.Cluster.SetCur(o.Cluster.Cap())
		}
	}
}

// Reset implements Governor.
func (Userspace) Reset() {}

func nonzero(v int64) int64 {
	if v <= 0 {
		return 10_000
	}
	return v
}
