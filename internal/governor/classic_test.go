package governor

import (
	"testing"

	"nextdvfs/internal/soc"
)

func TestPerformanceGovernor(t *testing.T) {
	chip := soc.GenericPhone()
	g := Performance{}
	for _, c := range chip.Clusters {
		c.SetCur(0)
	}
	g.Decide(0, obsFor(chip, nil))
	for _, c := range chip.Clusters {
		if c.Cur() != c.Cap() {
			t.Errorf("%s not at cap", c.Name)
		}
	}
	// Honors a lowered cap.
	big := chip.MustCluster(soc.ClusterBig)
	big.SetCap(1)
	g.Decide(0, obsFor(chip, nil))
	if big.Cur() != 1 {
		t.Error("performance should sit at the cap, not the table top")
	}
}

func TestPowersaveGovernor(t *testing.T) {
	chip := soc.GenericPhone()
	g := Powersave{}
	g.Decide(0, obsFor(chip, nil))
	for _, c := range chip.Clusters {
		if c.Cur() != c.Floor() {
			t.Errorf("%s not at floor", c.Name)
		}
	}
}

func TestOndemandJumpsToMaxAboveThreshold(t *testing.T) {
	chip := soc.GenericPhone()
	g := Ondemand{}
	big := chip.MustCluster(soc.ClusterBig)
	big.SetCur(1)
	obs := []Observation{{Cluster: big, Util: 0.9, NormUtil: 0.4}}
	g.Decide(0, obs)
	if big.Cur() != big.Cap() {
		t.Fatal("ondemand should jump to max above up threshold")
	}
}

func TestOndemandScalesDownProportionally(t *testing.T) {
	chip := soc.GenericPhone()
	g := Ondemand{}
	big := chip.MustCluster(soc.ClusterBig)
	big.SetCur(big.NumOPPs() - 1) // 2200 MHz
	obs := []Observation{{Cluster: big, Util: 0.2, NormUtil: 0.2}}
	g.Decide(0, obs)
	// target = 2200 * 0.2/0.8 = 550 MHz → first OPP >= 550 is 600.
	if got := big.CurOPP().FreqMHz(); got != 600 {
		t.Fatalf("ondemand scaled to %g MHz, want 600", got)
	}
}

func TestConservativeStepsOneAtATime(t *testing.T) {
	chip := soc.GenericPhone()
	g := Conservative{}
	big := chip.MustCluster(soc.ClusterBig)
	big.SetCur(2)
	g.Decide(0, []Observation{{Cluster: big, Util: 0.9}})
	if big.Cur() != 3 {
		t.Fatalf("conservative up-step to %d, want 3", big.Cur())
	}
	g.Decide(0, []Observation{{Cluster: big, Util: 0.1}})
	g.Decide(0, []Observation{{Cluster: big, Util: 0.1}})
	if big.Cur() != 1 {
		t.Fatalf("conservative down-steps to %d, want 1", big.Cur())
	}
	// Mid-band: hold.
	g.Decide(0, []Observation{{Cluster: big, Util: 0.5}})
	if big.Cur() != 1 {
		t.Fatal("conservative should hold in the middle band")
	}
}

func TestUserspacePinsIndices(t *testing.T) {
	chip := soc.GenericPhone()
	g := Userspace{Indices: map[string]int{soc.ClusterBig: 2, soc.ClusterGPU: 0}}
	g.Decide(0, obsFor(chip, nil))
	if chip.MustCluster(soc.ClusterBig).Cur() != 2 {
		t.Error("big not pinned")
	}
	if chip.MustCluster(soc.ClusterGPU).Cur() != 0 {
		t.Error("gpu not pinned")
	}
	// Unlisted cluster runs at cap.
	if lit := chip.MustCluster(soc.ClusterLITTLE); lit.Cur() != lit.Cap() {
		t.Error("unlisted cluster should sit at cap")
	}
}

func TestGovernorNamesAndIntervals(t *testing.T) {
	for _, g := range []Governor{
		NewSchedutil(DefaultSchedutilConfig()),
		Performance{}, Powersave{}, Ondemand{}, Conservative{}, Userspace{},
	} {
		if g.Name() == "" {
			t.Error("governor missing name")
		}
		if g.IntervalUS() <= 0 {
			t.Errorf("%s: non-positive interval", g.Name())
		}
		g.Reset() // must not panic
	}
}
