// Package governor implements the frequency governors that pick each
// cluster's OPP from observed utilization, plus the Int. QoS PM
// baseline controller the paper compares against.
//
// The reference baseline is schedutil — the only governor on the Note 9
// kernel the paper uses (Android 9, Linux 4.9, Energy Aware Scheduling).
// The model follows the kernel's policy: next_freq = 1.25 · f_max ·
// util_norm, mapped up onto the OPP table, with a down-rate limit and
// an Android-style touch input boost that raises the CPU floors on user
// input. The boost plus utilization-chasing is exactly the behaviour
// the paper's Fig. 1 shows wasting power at near-zero FPS.
//
// The classic cpufreq governors (performance, powersave, ondemand,
// conservative, userspace) are included both as additional baselines
// and to validate the engine against known-simple policies.
package governor
