package governor

import "nextdvfs/internal/soc"

// Observation is the per-cluster input to a governor decision.
type Observation struct {
	Cluster *soc.Cluster
	// Util is busy/capacity at the current frequency (0..1).
	Util float64
	// NormUtil is busy/capacity at maximum frequency (0..1).
	NormUtil float64
}

// Governor selects cluster OPPs from utilization. Decide is called on
// the governor's interval with one observation per cluster and applies
// its choices through Cluster.SetCur (which clamps into [floor, cap] —
// a controller's caps always win).
type Governor interface {
	Name() string
	IntervalUS() int64
	Decide(nowUS int64, obs []Observation)
	Reset()
}

// InputBooster is implemented by governors that react to user input
// events (Android's touch boost). The engine calls OnInput at the start
// of every touch/scroll interaction.
type InputBooster interface {
	OnInput(nowUS int64)
}
