package governor

import (
	"nextdvfs/internal/ctrl"
)

// PowerEstimator predicts the power (watts) a cluster would draw at OPP
// index idx with the given utilization. Int. QoS PM's published design
// evaluates candidate frequency pairs against a power cost model; the
// engine wires this to the same analytic model the simulator burns, so
// the baseline is as well-informed as it was on the authors' testbed.
type PowerEstimator func(cluster string, idx int, util float64) float64

// IntQoSPMConfig tunes the baseline.
type IntQoSPMConfig struct {
	// EpochUS is the averaging window (the paper critiques exactly this
	// averaging: "the FPS range ... is averaged over a time period").
	EpochUS int64
	// SampleUS is the FPS/util sampling period inside an epoch.
	SampleUS int64
	// TargetCapFPS caps the inferred target (display refresh rate).
	TargetCapFPS float64
	// QoSPenaltyWPerFPS converts predicted FPS shortfall into cost-model
	// watts so the pair search trades power against QoS.
	QoSPenaltyWPerFPS float64
	// Headroom keeps utilization off the ceiling (0.9 → plan for 90 %).
	Headroom float64
}

// DefaultIntQoSPMConfig returns the configuration used for the paper's
// comparison.
func DefaultIntQoSPMConfig() IntQoSPMConfig {
	return IntQoSPMConfig{
		EpochUS:           500_000,
		SampleUS:          50_000,
		TargetCapFPS:      60,
		QoSPenaltyWPerFPS: 0.5,
		Headroom:          0.9,
	}
}

// IntQoSPM reimplements the integrated CPU-GPU power manager for 3D
// mobile games of Pathania et al. (DAC'14) from its published
// description: measure the average frame rate over an epoch, take it as
// the required performance, and pick the CPU/GPU frequency pair that
// minimizes modelled power while predicted FPS meets the target. The
// scheme only manages games; for any other app class it releases
// control to the stock governor (the paper could evaluate it only on
// Lineage and PubG for the same reason).
type IntQoSPM struct {
	cfg      IntQoSPMConfig
	estimate PowerEstimator

	isGame bool

	// Epoch accumulators (means over Observe samples).
	n                                  int
	fpsSum                             float64
	bigNormSum, gpuNormSum, litNormSum float64

	// stickyTarget remembers the game's demand across epochs with a
	// slow decay, so a transiently throttled epoch cannot drag the
	// target — and then the pins — into a downward spiral. The decay
	// still lets the target follow a genuine demand change (menu vs
	// match) over tens of seconds.
	stickyTarget float64

	released bool
}

// NewIntQoSPM builds the baseline with a power estimator.
func NewIntQoSPM(cfg IntQoSPMConfig, est PowerEstimator) *IntQoSPM {
	if cfg.EpochUS <= 0 {
		cfg.EpochUS = 500_000
	}
	if cfg.SampleUS <= 0 {
		cfg.SampleUS = 50_000
	}
	if cfg.TargetCapFPS <= 0 {
		cfg.TargetCapFPS = 60
	}
	if cfg.Headroom <= 0 || cfg.Headroom > 1 {
		cfg.Headroom = 0.9
	}
	if est == nil {
		panic("governor: IntQoSPM needs a power estimator")
	}
	return &IntQoSPM{cfg: cfg, estimate: est}
}

// Name implements ctrl.Controller.
func (g *IntQoSPM) Name() string { return "intqospm" }

// ObserveIntervalUS implements ctrl.Controller.
func (g *IntQoSPM) ObserveIntervalUS() int64 { return g.cfg.SampleUS }

// ControlIntervalUS implements ctrl.Controller.
func (g *IntQoSPM) ControlIntervalUS() int64 { return g.cfg.EpochUS }

// AppChanged implements ctrl.Controller.
func (g *IntQoSPM) AppChanged(_ string, isGame bool) {
	g.isGame = isGame
	g.resetEpoch()
	g.stickyTarget = 0
	g.released = false
}

// Observe implements ctrl.Controller. Samples with FPS below the
// demand floor (menus fading, splash screens) are excluded from the
// average: the published scheme targets the game's rendering demand,
// and folding idle zeros in would spiral the target — and the pinned
// frequencies — downward. The flip side, faithful to the paper's
// critique, is that Int. QoS PM never exploits idle/loading phases the
// way a user-interaction-aware agent does.
func (g *IntQoSPM) Observe(snap ctrl.Snapshot) {
	if !g.isGame {
		return
	}
	if snap.FPS < 5 {
		return
	}
	g.n++
	g.fpsSum += snap.FPS
	for _, c := range snap.Clusters {
		switch {
		case c.IsGPU:
			g.gpuNormSum += c.NormUtil
		case c.Name == "big":
			g.bigNormSum += c.NormUtil
		default:
			g.litNormSum += c.NormUtil
		}
	}
}

// Control implements ctrl.Controller.
func (g *IntQoSPM) Control(snap ctrl.Snapshot, act ctrl.Actuator) {
	if !g.isGame {
		// Not a game: release every cluster to stock management.
		if !g.released {
			for _, c := range snap.Clusters {
				act.SetFloor(c.Name, 0)
				act.SetCap(c.Name, c.NumOPPs-1)
			}
			g.released = true
		}
		return
	}
	if g.n == 0 {
		return
	}
	fps := g.fpsSum / float64(g.n)
	bigNorm := g.bigNormSum / float64(g.n)
	gpuNorm := g.gpuNormSum / float64(g.n)
	litNorm := g.litNormSum / float64(g.n)
	g.resetEpoch()

	const stickyDecay = 0.995
	g.stickyTarget *= stickyDecay
	if fps > g.stickyTarget {
		g.stickyTarget = fps
	}
	target := g.stickyTarget
	if target > g.cfg.TargetCapFPS {
		target = g.cfg.TargetCapFPS
	}

	var bigView, gpuView, litView *ctrl.ClusterView
	for i := range snap.Clusters {
		c := &snap.Clusters[i]
		switch {
		case c.IsGPU:
			gpuView = c
		case c.Name == "big":
			bigView = c
		default:
			litView = c
		}
	}
	if bigView == nil || gpuView == nil {
		return
	}

	// Capacity fraction (of max) each subsystem needs to sustain target.
	effFPS := fps
	if effFPS < 1 {
		effFPS = 1
	}
	needBig := bigNorm * target / effFPS / g.cfg.Headroom
	needGPU := gpuNorm * target / effFPS / g.cfg.Headroom

	bestBig, bestGPU := g.searchPair(bigView, gpuView, needBig, needGPU, target)
	act.Pin(bigView.Name, bestBig)
	act.Pin(gpuView.Name, bestGPU)

	// LITTLE is not part of the published CPU-GPU pair search; pin it
	// proportionally to its own load with the same headroom.
	if litView != nil {
		idx := minIndexForCapacity(litView, litNorm/g.cfg.Headroom)
		act.Pin(litView.Name, idx)
	}
}

// searchPair enumerates all (CPU, GPU) OPP pairs and returns the pair
// minimizing modelled power plus the QoS shortfall penalty.
func (g *IntQoSPM) searchPair(big, gpu *ctrl.ClusterView, needBig, needGPU, target float64) (int, int) {
	bestCost := -1.0
	bestB, bestG := big.NumOPPs-1, gpu.NumOPPs-1
	for ib := 0; ib < big.NumOPPs; ib++ {
		capB := capacityFrac(big, ib)
		utilB := clamp01(safeDiv(needBig*g.cfg.Headroom, capB))
		pb := g.estimate(big.Name, ib, utilB)
		for ig := 0; ig < gpu.NumOPPs; ig++ {
			capG := capacityFrac(gpu, ig)
			utilG := clamp01(safeDiv(needGPU*g.cfg.Headroom, capG))
			pg := g.estimate(gpu.Name, ig, utilG)

			pred := target
			if needBig > 0 {
				if r := capB / needBig * target; r < pred {
					pred = r
				}
			}
			if needGPU > 0 {
				if r := capG / needGPU * target; r < pred {
					pred = r
				}
			}
			shortfall := target - pred
			if shortfall < 0 {
				shortfall = 0
			}
			cost := pb + pg + g.cfg.QoSPenaltyWPerFPS*shortfall
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				bestB, bestG = ib, ig
			}
		}
	}
	return bestB, bestG
}

func (g *IntQoSPM) resetEpoch() {
	g.n = 0
	g.fpsSum = 0
	g.bigNormSum, g.gpuNormSum, g.litNormSum = 0, 0, 0
}

// Reset implements ctrl.Controller.
func (g *IntQoSPM) Reset() {
	g.resetEpoch()
	g.isGame = false
	g.released = false
}

// capacityFrac is OPP idx's capacity as a fraction of the top OPP,
// using the linear-in-frequency performance model the published cost
// model uses.
func capacityFrac(c *ctrl.ClusterView, idx int) float64 {
	if len(c.OPPKHz) == 0 {
		return 1
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.OPPKHz) {
		idx = len(c.OPPKHz) - 1
	}
	top := c.OPPKHz[len(c.OPPKHz)-1]
	if top == 0 {
		return 1
	}
	return float64(c.OPPKHz[idx]) / float64(top)
}

// minIndexForCapacity returns the lowest OPP index whose estimated
// capacity fraction covers need.
func minIndexForCapacity(c *ctrl.ClusterView, need float64) int {
	for i := 0; i < c.NumOPPs; i++ {
		if capacityFrac(c, i) >= need {
			return i
		}
	}
	return c.NumOPPs - 1
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
