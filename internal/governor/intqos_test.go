package governor

import (
	"testing"

	"nextdvfs/internal/ctrl"
)

// fakeActuator records controller actuations.
type fakeActuator struct {
	caps, floors, pins map[string]int
}

func newFakeActuator() *fakeActuator {
	return &fakeActuator{caps: map[string]int{}, floors: map[string]int{}, pins: map[string]int{}}
}

func (f *fakeActuator) SetCap(c string, i int)   { f.caps[c] = i }
func (f *fakeActuator) SetFloor(c string, i int) { f.floors[c] = i }
func (f *fakeActuator) Pin(c string, i int)      { f.pins[c] = i }

// linearPower is a simple monotone power estimator for tests.
func linearPower(cluster string, idx int, util float64) float64 {
	base := map[string]float64{"big": 1.0, "LITTLE": 0.2, "GPU": 0.8}[cluster]
	return base * float64(idx+1) * (0.3 + 0.7*util)
}

func gameSnapshot(fps float64, bigNorm, gpuNorm float64) ctrl.Snapshot {
	return ctrl.Snapshot{
		NowUS: 0, FPS: fps, AppName: "lineage2revolution", AppClassGame: true,
		Clusters: []ctrl.ClusterView{
			{Name: "big", NumOPPs: 6, OPPKHz: []int{650_000, 1_000_000, 1_400_000, 1_800_000, 2_200_000, 2_704_000}, NormUtil: bigNorm},
			{Name: "LITTLE", NumOPPs: 4, OPPKHz: []int{455_000, 800_000, 1_200_000, 1_794_000}, NormUtil: 0.2},
			{Name: "GPU", IsGPU: true, NumOPPs: 6, OPPKHz: []int{260_000, 299_000, 338_000, 455_000, 546_000, 572_000}, NormUtil: gpuNorm},
		},
	}
}

func feedEpoch(g *IntQoSPM, snap ctrl.Snapshot, samples int) {
	for i := 0; i < samples; i++ {
		g.Observe(snap)
	}
}

func TestIntQoSPinsSufficientPairForGame(t *testing.T) {
	g := NewIntQoSPM(DefaultIntQoSPMConfig(), linearPower)
	g.AppChanged("lineage2revolution", true)

	// Game at 60 FPS using 60 % of big capacity and 80 % of GPU.
	snap := gameSnapshot(60, 0.6, 0.8)
	feedEpoch(g, snap, 10)
	act := newFakeActuator()
	g.Control(snap, act)

	bigPin, ok := act.pins["big"]
	if !ok {
		t.Fatal("big not pinned")
	}
	gpuPin, ok := act.pins["GPU"]
	if !ok {
		t.Fatal("GPU not pinned")
	}
	// Required big capacity ≈ 0.6/0.9 = 0.67 → ≥1800 MHz (idx 3).
	if bigPin < 3 {
		t.Fatalf("big pinned at idx %d, too low to sustain load", bigPin)
	}
	// Required GPU capacity ≈ 0.89 → ≥546 MHz (idx 4).
	if gpuPin < 4 {
		t.Fatalf("GPU pinned at idx %d, too low to sustain load", gpuPin)
	}
	if _, ok := act.pins["LITTLE"]; !ok {
		t.Fatal("LITTLE should be pinned proportionally")
	}
}

func TestIntQoSSavesPowerAtLowDemand(t *testing.T) {
	g := NewIntQoSPM(DefaultIntQoSPMConfig(), linearPower)
	g.AppChanged("pubgmobile", true)

	// Menu screen: 30 FPS at modest load.
	snap := gameSnapshot(30, 0.15, 0.2)
	feedEpoch(g, snap, 10)
	act := newFakeActuator()
	g.Control(snap, act)

	if act.pins["big"] > 2 {
		t.Fatalf("big pinned at %d for light load; averaging should pick a low pair", act.pins["big"])
	}
	if act.pins["GPU"] > 2 {
		t.Fatalf("GPU pinned at %d for light load", act.pins["GPU"])
	}
}

func TestIntQoSReleasesNonGames(t *testing.T) {
	g := NewIntQoSPM(DefaultIntQoSPMConfig(), linearPower)
	g.AppChanged("facebook", false)
	snap := gameSnapshot(30, 0.5, 0.5)
	snap.AppClassGame = false
	act := newFakeActuator()
	g.Control(snap, act)
	if len(act.pins) != 0 {
		t.Fatal("non-game must not be pinned")
	}
	for _, c := range []string{"big", "LITTLE", "GPU"} {
		if got, ok := act.caps[c]; !ok || got != snapNumOPPs(snap, c)-1 {
			t.Fatalf("%s cap not released: %v", c, act.caps)
		}
		if got := act.floors[c]; got != 0 {
			t.Fatalf("%s floor not released", c)
		}
	}
	// Release happens once, not every epoch.
	act2 := newFakeActuator()
	g.Control(snap, act2)
	if len(act2.caps) != 0 {
		t.Fatal("release should be one-shot")
	}
}

func snapNumOPPs(s ctrl.Snapshot, name string) int {
	for _, c := range s.Clusters {
		if c.Name == name {
			return c.NumOPPs
		}
	}
	return 0
}

func TestIntQoSDoesNotExploitIdlePhases(t *testing.T) {
	// The paper's critique of Int. QoS PM: it has no notion of user
	// interaction, so once it has sized the pins for the game's demand
	// it keeps them through idle/loading phases. After a 60 FPS epoch,
	// feed an all-idle epoch (FPS ≈ 0, filtered as non-demand): the
	// sticky target must hold the pins near the demand level instead of
	// collapsing to minimum the way Next's target-FPS mode does.
	g := NewIntQoSPM(DefaultIntQoSPMConfig(), linearPower)
	g.AppChanged("lineage2revolution", true)
	feedEpoch(g, gameSnapshot(60, 0.6, 0.8), 10)
	actHi := newFakeActuator()
	g.Control(gameSnapshot(60, 0.6, 0.8), actHi)

	// All-idle epoch: every sample filtered → no action at all.
	feedEpoch(g, gameSnapshot(0, 0.02, 0.02), 10)
	actIdle := newFakeActuator()
	g.Control(gameSnapshot(0, 0.02, 0.02), actIdle)
	if len(actIdle.pins) != 0 {
		t.Fatalf("idle epoch should hold previous pins, got %v", actIdle.pins)
	}

	// A throttled epoch (FPS 40 because someone capped it) must not
	// drag the target down: the sticky demand keeps the big pin at or
	// above the demand-sized level.
	feedEpoch(g, gameSnapshot(40, 0.4, 0.55), 10)
	actThrottled := newFakeActuator()
	g.Control(gameSnapshot(40, 0.4, 0.55), actThrottled)
	if p, ok := actThrottled.pins["GPU"]; ok && p < actHi.pins["GPU"]-1 {
		t.Fatalf("throttled epoch collapsed GPU pin: %d vs demand-sized %d", p, actHi.pins["GPU"])
	}
}

func TestIntQoSNoSamplesNoAction(t *testing.T) {
	g := NewIntQoSPM(DefaultIntQoSPMConfig(), linearPower)
	g.AppChanged("pubgmobile", true)
	act := newFakeActuator()
	g.Control(gameSnapshot(60, 0.5, 0.5), act)
	if len(act.pins) != 0 {
		t.Fatal("no observations yet — must not act")
	}
}

func TestIntQoSInterfaceContract(t *testing.T) {
	var c ctrl.Controller = NewIntQoSPM(DefaultIntQoSPMConfig(), linearPower)
	if c.Name() != "intqospm" {
		t.Fatal("name wrong")
	}
	if c.ObserveIntervalUS() <= 0 || c.ControlIntervalUS() <= 0 {
		t.Fatal("intervals must be positive")
	}
	c.Reset()
}

func TestNewIntQoSPMRequiresEstimator(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without estimator")
		}
	}()
	NewIntQoSPM(DefaultIntQoSPMConfig(), nil)
}
