package governor

import "nextdvfs/internal/soc"

// SchedutilConfig tunes the schedutil model.
type SchedutilConfig struct {
	// Headroom is the util multiplier (kernel uses 1.25: "go 25 % above
	// the measured utilization so there is room to grow").
	Headroom float64
	// IntervalUS is the decision period (10 ms models the kernel's
	// rate-limited update path).
	IntervalUS int64
	// DownRateLimitUS delays frequency drops: a cluster only scales
	// down after this long below the current choice, mimicking the
	// kernel's down_rate_limit and contributing to post-burst waste.
	DownRateLimitUS int64
	// BoostDurationUS is how long a touch boost holds the floors up.
	// Zero disables input boost.
	BoostDurationUS int64
	// BoostFloorFrac is the fraction of the OPP table (0..1) the CPU
	// floors jump to during a boost (Android vendors commonly floor the
	// big cluster around 60-70 % of the table on touch).
	BoostFloorFrac float64
}

// DefaultSchedutilConfig returns the stock-Android-like configuration
// used for the paper's schedutil baseline.
func DefaultSchedutilConfig() SchedutilConfig {
	return SchedutilConfig{
		Headroom:        1.25,
		IntervalUS:      10_000,
		DownRateLimitUS: 120_000,
		BoostDurationUS: 250_000,
		BoostFloorFrac:  0.70,
	}
}

// Schedutil is the utilization-driven default governor.
type Schedutil struct {
	cfg SchedutilConfig

	boostUntilUS int64
	// Per-cluster state lives in tiny linear-scanned slices rather than
	// maps: a chip has a handful of clusters, so the scan beats hashing
	// in the decision path and the backing arrays are reused across
	// decisions (no per-boost allocation).
	lastDownOK  []downEntry  // per cluster: time since when a down-switch is allowed
	savedFloors []floorEntry // floors to restore when the boost window closes
}

type downEntry struct {
	name    string
	sinceUS int64
}

type floorEntry struct {
	name  string
	floor int
}

// NewSchedutil returns a schedutil governor with the given config.
func NewSchedutil(cfg SchedutilConfig) *Schedutil {
	if cfg.Headroom <= 0 {
		cfg.Headroom = 1.25
	}
	if cfg.IntervalUS <= 0 {
		cfg.IntervalUS = 10_000
	}
	return &Schedutil{cfg: cfg}
}

func (s *Schedutil) downIdx(name string) int {
	for i := range s.lastDownOK {
		if s.lastDownOK[i].name == name {
			return i
		}
	}
	return -1
}

func (s *Schedutil) floorIdx(name string) int {
	for i := range s.savedFloors {
		if s.savedFloors[i].name == name {
			return i
		}
	}
	return -1
}

// Name implements Governor.
func (s *Schedutil) Name() string { return "schedutil" }

// IntervalUS implements Governor.
func (s *Schedutil) IntervalUS() int64 { return s.cfg.IntervalUS }

// OnInput implements InputBooster: raise CPU floors for the boost
// window. GPU is not boosted (Android input boost is a CPU mechanism).
func (s *Schedutil) OnInput(nowUS int64) {
	if s.cfg.BoostDurationUS <= 0 {
		return
	}
	s.boostUntilUS = nowUS + s.cfg.BoostDurationUS
}

// Decide implements Governor.
func (s *Schedutil) Decide(nowUS int64, obs []Observation) {
	boosting := s.cfg.BoostDurationUS > 0 && nowUS < s.boostUntilUS
	for _, o := range obs {
		c := o.Cluster

		// Input boost: floor CPU clusters while the boost window is
		// open; restore when it closes.
		if c.Kind == soc.KindCPU {
			if boosting {
				if s.floorIdx(c.Name) < 0 {
					s.savedFloors = append(s.savedFloors, floorEntry{c.Name, c.Floor()})
				}
				boostIdx := int(float64(c.NumOPPs()-1) * s.cfg.BoostFloorFrac)
				c.SetFloor(boostIdx)
			} else if fi := s.floorIdx(c.Name); fi >= 0 {
				c.SetFloor(s.savedFloors[fi].floor)
				last := len(s.savedFloors) - 1
				s.savedFloors[fi] = s.savedFloors[last]
				s.savedFloors = s.savedFloors[:last]
			}
		}

		// Kernel formula: next_freq = headroom * f_max * util_norm.
		targetKHz := int(s.cfg.Headroom * float64(c.MaxOPP().FreqKHz) * o.NormUtil)
		idx := c.IndexForFreqKHz(targetKHz)

		if idx < c.Cur() {
			// Down-switches are rate limited.
			if s.cfg.DownRateLimitUS > 0 {
				di := s.downIdx(c.Name)
				if di < 0 {
					s.lastDownOK = append(s.lastDownOK, downEntry{c.Name, nowUS})
					continue
				} else if nowUS-s.lastDownOK[di].sinceUS < s.cfg.DownRateLimitUS {
					continue
				}
				c.SetCur(idx)
				s.lastDownOK[di].sinceUS = nowUS
				continue
			}
			c.SetCur(idx)
			s.setDown(c.Name, nowUS)
		} else if idx > c.Cur() {
			c.SetCur(idx)
			s.dropDown(c.Name)
		} else {
			s.dropDown(c.Name)
		}
	}
}

func (s *Schedutil) setDown(name string, nowUS int64) {
	if di := s.downIdx(name); di >= 0 {
		s.lastDownOK[di].sinceUS = nowUS
		return
	}
	s.lastDownOK = append(s.lastDownOK, downEntry{name, nowUS})
}

func (s *Schedutil) dropDown(name string) {
	if di := s.downIdx(name); di >= 0 {
		last := len(s.lastDownOK) - 1
		s.lastDownOK[di] = s.lastDownOK[last]
		s.lastDownOK = s.lastDownOK[:last]
	}
}

// Reset clears governor state for a fresh run. The caller is expected
// to reset the chip's DVFS state too (the engine does): a mid-boost
// Reset cannot restore floors it no longer remembers.
func (s *Schedutil) Reset() {
	s.boostUntilUS = 0
	s.savedFloors = s.savedFloors[:0]
	s.lastDownOK = s.lastDownOK[:0]
}
