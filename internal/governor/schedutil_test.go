package governor

import (
	"testing"

	"nextdvfs/internal/soc"
)

func obsFor(chip *soc.Chip, norm map[string]float64) []Observation {
	var obs []Observation
	for _, c := range chip.Clusters {
		n := norm[c.Name]
		u := 0.0
		if c.MaxOPP().FreqKHz > 0 {
			u = n * float64(c.MaxOPP().FreqKHz) / float64(c.CurOPP().FreqKHz)
			if u > 1 {
				u = 1
			}
		}
		obs = append(obs, Observation{Cluster: c, Util: u, NormUtil: n})
	}
	return obs
}

func TestSchedutilFormulaPicksHeadroomFrequency(t *testing.T) {
	chip := soc.Exynos9810()
	cfg := DefaultSchedutilConfig()
	cfg.BoostDurationUS = 0
	cfg.DownRateLimitUS = 0
	g := NewSchedutil(cfg)
	big := chip.MustCluster(soc.ClusterBig)

	// normUtil 0.5 → target = 1.25*0.5*2704 = 1690 MHz exactly on an OPP.
	g.Decide(0, obsFor(chip, map[string]float64{soc.ClusterBig: 0.5}))
	if got := big.CurOPP().FreqMHz(); got != 1690 {
		t.Fatalf("big freq = %g MHz, want 1690", got)
	}
}

func TestSchedutilZeroUtilGoesToFloorEventually(t *testing.T) {
	chip := soc.Exynos9810()
	cfg := DefaultSchedutilConfig()
	cfg.BoostDurationUS = 0
	g := NewSchedutil(cfg)
	big := chip.MustCluster(soc.ClusterBig)
	// Start hot.
	g.Decide(0, obsFor(chip, map[string]float64{soc.ClusterBig: 1.0}))
	if big.Cur() != big.NumOPPs()-1 {
		t.Fatal("full util should pick top OPP")
	}
	// Zero util: the first decisions are held back by the down-rate
	// limit, then the governor falls to the floor.
	for now := int64(10_000); now <= 500_000; now += 10_000 {
		g.Decide(now, obsFor(chip, map[string]float64{soc.ClusterBig: 0.0}))
	}
	if big.Cur() != 0 {
		t.Fatalf("idle big OPP = %d, want 0", big.Cur())
	}
}

func TestSchedutilDownRateLimitDelaysDrop(t *testing.T) {
	chip := soc.Exynos9810()
	cfg := DefaultSchedutilConfig()
	cfg.BoostDurationUS = 0
	cfg.DownRateLimitUS = 40_000
	g := NewSchedutil(cfg)
	big := chip.MustCluster(soc.ClusterBig)

	g.Decide(0, obsFor(chip, map[string]float64{soc.ClusterBig: 1.0}))
	top := big.Cur()
	// 10 ms later the load vanishes: must still hold (rate limit).
	g.Decide(10_000, obsFor(chip, map[string]float64{soc.ClusterBig: 0.0}))
	if big.Cur() != top {
		t.Fatal("down-switch should be rate limited")
	}
	// After the limit expires it may drop.
	g.Decide(60_000, obsFor(chip, map[string]float64{soc.ClusterBig: 0.0}))
	if big.Cur() == top {
		t.Fatal("down-switch should have happened after the rate limit")
	}
}

func TestSchedutilRespectsCap(t *testing.T) {
	chip := soc.Exynos9810()
	cfg := DefaultSchedutilConfig()
	cfg.BoostDurationUS = 0
	g := NewSchedutil(cfg)
	big := chip.MustCluster(soc.ClusterBig)
	big.SetCap(5) // the Next agent capped the cluster
	g.Decide(0, obsFor(chip, map[string]float64{soc.ClusterBig: 1.0}))
	if big.Cur() > 5 {
		t.Fatalf("schedutil exceeded cap: %d", big.Cur())
	}
}

func TestInputBoostRaisesCPUFloorsOnly(t *testing.T) {
	chip := soc.Exynos9810()
	g := NewSchedutil(DefaultSchedutilConfig())
	g.OnInput(0)
	g.Decide(1000, obsFor(chip, nil))
	big := chip.MustCluster(soc.ClusterBig)
	little := chip.MustCluster(soc.ClusterLITTLE)
	gpu := chip.MustCluster(soc.ClusterGPU)
	if big.Floor() == 0 || little.Floor() == 0 {
		t.Fatal("boost should raise CPU floors")
	}
	if gpu.Floor() != 0 {
		t.Fatal("boost must not touch the GPU floor")
	}
	// Boost expiry restores floors.
	g.Decide(1_000_000, obsFor(chip, nil))
	if big.Floor() != 0 || little.Floor() != 0 {
		t.Fatalf("floors not restored after boost: big=%d little=%d", big.Floor(), little.Floor())
	}
}

func TestInputBoostKeepsFrequencyHighAtZeroLoad(t *testing.T) {
	// The waste the paper measures: touches keep frequency up while FPS
	// may be near zero.
	chip := soc.Exynos9810()
	g := NewSchedutil(DefaultSchedutilConfig())
	big := chip.MustCluster(soc.ClusterBig)
	g.OnInput(0)
	for now := int64(1000); now <= 150_000; now += 10_000 {
		g.Decide(now, obsFor(chip, map[string]float64{soc.ClusterBig: 0.05}))
	}
	if big.CurOPP().FreqMHz() < 1000 {
		t.Fatalf("boosted big freq = %g MHz, expected >= boost floor", big.CurOPP().FreqMHz())
	}
}

func TestSchedutilReset(t *testing.T) {
	chip := soc.Exynos9810()
	g := NewSchedutil(DefaultSchedutilConfig())
	g.OnInput(0)
	g.Decide(1000, obsFor(chip, nil))
	// Reset pairs with a chip DVFS reset (as the engine does).
	g.Reset()
	chip.ResetDVFS()
	// No boost state may survive: a decide long after must not raise
	// floors again.
	g.Decide(10_000_000, obsFor(chip, map[string]float64{}))
	if chip.MustCluster(soc.ClusterBig).Floor() != 0 {
		t.Fatal("reset should clear boost state")
	}
}
