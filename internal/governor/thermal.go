package governor

import (
	"nextdvfs/internal/ctrl"
)

// ThermalCapConfig tunes the thermal-zone controller.
type ThermalCapConfig struct {
	// TripC is the big-sensor temperature above which capping begins.
	TripC float64
	// ReleaseC is the hysteresis release temperature (caps lift one
	// step at a time below it).
	ReleaseC float64
	// IntervalUS is the control period.
	IntervalUS int64
}

// DefaultThermalCapConfig mirrors a typical handset thermal zone:
// trip at 75 °C on the big sensor, release below 65 °C.
func DefaultThermalCapConfig() ThermalCapConfig {
	return ThermalCapConfig{TripC: 75, ReleaseC: 65, IntervalUS: 500_000}
}

// ThermalCap is a kernel-thermal-zone-style controller (an
// IPA-simplified baseline): it runs on top of any frequency governor
// and steps the big/GPU maxfreq caps down while the big sensor exceeds
// the trip point, releasing them with hysteresis. It knows nothing
// about the user, frames or QoS — it exists as the "thermal-only"
// reference against which user-aware management is worth comparing.
type ThermalCap struct {
	cfg ThermalCapConfig
	// capped tracks how many steps each cluster has been pulled down.
	capped map[string]int
}

// NewThermalCap builds the controller.
func NewThermalCap(cfg ThermalCapConfig) *ThermalCap {
	if cfg.TripC <= 0 {
		cfg.TripC = 75
	}
	if cfg.ReleaseC <= 0 || cfg.ReleaseC >= cfg.TripC {
		cfg.ReleaseC = cfg.TripC - 10
	}
	if cfg.IntervalUS <= 0 {
		cfg.IntervalUS = 500_000
	}
	return &ThermalCap{cfg: cfg, capped: make(map[string]int)}
}

// Name implements ctrl.Controller.
func (g *ThermalCap) Name() string { return "thermalcap" }

// ObserveIntervalUS implements ctrl.Controller (no fine sampling).
func (g *ThermalCap) ObserveIntervalUS() int64 { return 0 }

// ControlIntervalUS implements ctrl.Controller.
func (g *ThermalCap) ControlIntervalUS() int64 { return g.cfg.IntervalUS }

// Observe implements ctrl.Controller.
func (g *ThermalCap) Observe(ctrl.Snapshot) {}

// AppChanged implements ctrl.Controller.
func (g *ThermalCap) AppChanged(string, bool) {}

// Control implements ctrl.Controller.
func (g *ThermalCap) Control(snap ctrl.Snapshot, act ctrl.Actuator) {
	switch {
	case snap.TempBigC >= g.cfg.TripC:
		// Step the hot clusters down one OPP per period.
		for _, c := range snap.Clusters {
			if c.Name != "big" && !c.IsGPU {
				continue
			}
			if c.CurIdx > 0 {
				act.SetCap(c.Name, c.CurIdx-1)
				g.capped[c.Name]++
			}
		}
	case snap.TempBigC <= g.cfg.ReleaseC:
		// Release one step of capping per period.
		for _, c := range snap.Clusters {
			if g.capped[c.Name] > 0 {
				act.SetCap(c.Name, c.CapIdx+1)
				g.capped[c.Name]--
				if g.capped[c.Name] == 0 {
					act.SetCap(c.Name, c.NumOPPs-1)
				}
			}
		}
	}
}

// Reset implements ctrl.Controller.
func (g *ThermalCap) Reset() { g.capped = make(map[string]int) }
