package governor

import (
	"testing"

	"nextdvfs/internal/ctrl"
)

func thermalSnap(tempBig float64, bigCur, gpuCur int) ctrl.Snapshot {
	return ctrl.Snapshot{
		TempBigC: tempBig,
		Clusters: []ctrl.ClusterView{
			{Name: "big", NumOPPs: 18, CurIdx: bigCur, CapIdx: 17},
			{Name: "LITTLE", NumOPPs: 10, CurIdx: 5, CapIdx: 9},
			{Name: "GPU", IsGPU: true, NumOPPs: 6, CurIdx: gpuCur, CapIdx: 5},
		},
	}
}

func TestThermalCapTripsAboveThreshold(t *testing.T) {
	g := NewThermalCap(DefaultThermalCapConfig())
	act := newFakeActuator()
	g.Control(thermalSnap(80, 12, 4), act)
	if act.caps["big"] != 11 {
		t.Fatalf("big cap = %v, want one step down (11)", act.caps)
	}
	if act.caps["GPU"] != 3 {
		t.Fatalf("GPU cap = %v, want 3", act.caps)
	}
	if _, touched := act.caps["LITTLE"]; touched {
		t.Fatal("LITTLE must not be thermally capped (cool cluster)")
	}
}

func TestThermalCapHysteresis(t *testing.T) {
	g := NewThermalCap(DefaultThermalCapConfig())
	act := newFakeActuator()
	// Between release and trip: hold (no actuation at all).
	g.Control(thermalSnap(70, 12, 4), act)
	if len(act.caps) != 0 {
		t.Fatalf("mid-band actuation: %v", act.caps)
	}
}

func TestThermalCapReleasesBelowRelease(t *testing.T) {
	g := NewThermalCap(DefaultThermalCapConfig())
	hot := newFakeActuator()
	g.Control(thermalSnap(80, 12, 4), hot) // capped once
	cool := newFakeActuator()
	g.Control(thermalSnap(60, 11, 3), cool)
	// One step of release; the final release fully uncaps.
	if got := cool.caps["big"]; got != 17 {
		// Single capped step → release path sets cur+1 then full uncap.
		t.Fatalf("big release cap = %d, want full uncap 17", got)
	}
}

func TestThermalCapNeverBelowBottom(t *testing.T) {
	g := NewThermalCap(DefaultThermalCapConfig())
	act := newFakeActuator()
	g.Control(thermalSnap(90, 0, 0), act)
	if len(act.caps) != 0 {
		t.Fatalf("capping below OPP 0 attempted: %v", act.caps)
	}
}

func TestThermalCapDefaultsAndReset(t *testing.T) {
	g := NewThermalCap(ThermalCapConfig{})
	if g.Name() != "thermalcap" || g.ControlIntervalUS() <= 0 {
		t.Fatal("bad defaults")
	}
	act := newFakeActuator()
	g.Control(thermalSnap(80, 12, 4), act)
	g.Reset()
	cool := newFakeActuator()
	g.Control(thermalSnap(60, 11, 3), cool)
	if len(cool.caps) != 0 {
		t.Fatal("reset should forget capping debt")
	}
}
