package learner

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Explorer is an exploration strategy: given the learner's selection
// view of a state, pick the behaviour action. Implementations may keep
// per-state statistics (UCB1's pull counts) or a decaying schedule
// (ε-greedy, softmax temperature); one Explorer instance serves one
// app's table, mirroring the per-app exploration schedule the paper's
// agent keeps.
type Explorer interface {
	// Name is the registry name.
	Name() string
	// Select picks an action for s over the selection table.
	Select(t *QTable, s StateKey, rng *rand.Rand) int
	// Rate reports the current exploration intensity in [0, 1] (ε for
	// ε-greedy). The agent gates its exploring-starts heuristic on it:
	// random episode starts fire only while Rate is high.
	Rate() float64
}

// EpsilonGreedy is the paper's ε-greedy action selector with
// multiplicative decay (previously core.Policy — the selection stream
// is bit-identical).
type EpsilonGreedy struct {
	Epsilon    float64
	EpsilonMin float64
	Decay      float64
}

// Name implements Explorer.
func (p *EpsilonGreedy) Name() string { return "egreedy" }

// Rate implements Explorer: the effective ε the next Select will use.
func (p *EpsilonGreedy) Rate() float64 {
	if p.Epsilon < p.EpsilonMin {
		return p.EpsilonMin
	}
	return p.Epsilon
}

// Select picks an action for s from the table: random with probability
// Epsilon, greedy otherwise. Greedy ties break uniformly at random —
// with zero-initialized rows a deterministic tie-break would
// systematically favor one action ("big frequency up" under the paper's
// enumeration) and bias early training. Each call decays Epsilon toward
// EpsilonMin.
func (p *EpsilonGreedy) Select(t *QTable, s StateKey, rng *rand.Rand) int {
	eps := p.Epsilon
	if eps < p.EpsilonMin {
		eps = p.EpsilonMin
	}
	var a int
	if rng.Float64() < eps {
		a = rng.Intn(t.Actions)
	} else {
		a = greedyRandTie(t, s, rng)
	}
	if p.Decay > 0 && p.Epsilon > p.EpsilonMin {
		p.Epsilon *= p.Decay
		if p.Epsilon < p.EpsilonMin {
			p.Epsilon = p.EpsilonMin
		}
	}
	return a
}

// UCB1 is upper-confidence-bound exploration: it picks
// argmax_a Q(s,a) + C·sqrt(ln N(s) / n(s,a)), trying every action of a
// state once before trusting any estimate. Unlike ε-greedy it explores
// where uncertainty is, not uniformly, so rarely visited operating
// points keep getting probed while well-understood ones do not. The
// explorer keeps its own per-state action counts (the Q-table only
// tracks per-state visit totals for federated merging).
type UCB1 struct {
	// C scales the confidence bonus (classic UCB1 uses sqrt(2)).
	C float64

	counts map[StateKey][]int
}

// Name implements Explorer.
func (u *UCB1) Name() string { return "ucb" }

// Rate implements Explorer: UCB1 has no global exploration schedule —
// its bonus vanishes per state-action as counts grow — so the
// exploring-starts gate treats it as always exploring.
func (u *UCB1) Rate() float64 { return 1 }

// Select implements Explorer.
func (u *UCB1) Select(t *QTable, s StateKey, rng *rand.Rand) int {
	if u.counts == nil {
		u.counts = make(map[StateKey][]int)
	}
	cnt, ok := u.counts[s]
	if !ok {
		cnt = make([]int, t.Actions)
		u.counts[s] = cnt
	}
	total := 0
	for _, n := range cnt {
		total += n
	}
	row := t.Q[s] // nil for unvisited states: values read as 0
	best, bestV := -1, math.Inf(-1)
	for a := 0; a < t.Actions; a++ {
		if cnt[a] == 0 {
			// Untried action: try it first (infinite bonus). Tie-break
			// among untried actions by lowest index — deterministic, and
			// the order is immaterial because all get tried.
			best = a
			break
		}
		var q float64
		if row != nil {
			q = row[a]
		}
		v := q + u.C*math.Sqrt(math.Log(float64(total))/float64(cnt[a]))
		if v > bestV {
			best, bestV = a, v
		}
	}
	cnt[best]++
	return best
}

// Softmax is Boltzmann exploration: actions are sampled with
// probability ∝ exp(Q(s,a)/τ). High temperature ≈ uniform, low
// temperature ≈ greedy; each call cools τ toward TauMin, the softmax
// analogue of ε decay.
type Softmax struct {
	Tau    float64
	TauMin float64
	Decay  float64

	probs []float64 // scratch, reused across calls
}

// Name implements Explorer.
func (b *Softmax) Name() string { return "softmax" }

// Rate implements Explorer: the cooling progress mapped to [0, 1] — at
// τ = Tau0 the policy is maximally exploratory, at τ = TauMin it is as
// greedy as it will get. Rate is τ clamped to [0,1]: τ ≥ 1 is
// near-uniform sampling.
func (b *Softmax) Rate() float64 {
	tau := b.Tau
	if tau < b.TauMin {
		tau = b.TauMin
	}
	if tau > 1 {
		return 1
	}
	return tau
}

// Select implements Explorer.
func (b *Softmax) Select(t *QTable, s StateKey, rng *rand.Rand) int {
	tau := b.Tau
	if tau < b.TauMin {
		tau = b.TauMin
	}
	if tau <= 0 {
		tau = 1e-3
	}
	if cap(b.probs) < t.Actions {
		b.probs = make([]float64, t.Actions)
	}
	probs := b.probs[:t.Actions]

	row := t.Q[s]
	// Subtract the max before exponentiating (standard overflow guard);
	// an unvisited state degenerates to the uniform distribution.
	maxQ := 0.0
	if row != nil {
		maxQ = row[0]
		for _, v := range row[1:] {
			if v > maxQ {
				maxQ = v
			}
		}
	}
	sum := 0.0
	for a := 0; a < t.Actions; a++ {
		var q float64
		if row != nil {
			q = row[a]
		}
		p := math.Exp((q - maxQ) / tau)
		probs[a] = p
		sum += p
	}
	u := rng.Float64() * sum
	pick := t.Actions - 1 // guards against float round-off
	acc := 0.0
	for a := 0; a < t.Actions; a++ {
		acc += probs[a]
		if u < acc {
			pick = a
			break
		}
	}
	if b.Decay > 0 && b.Tau > b.TauMin {
		b.Tau *= b.Decay
		if b.Tau < b.TauMin {
			b.Tau = b.TauMin
		}
	}
	return pick
}

// ExplorerConfig parameterizes explorer construction. The ε fields
// come straight from the agent configuration; the UCB and softmax
// fields have sensible zero-value defaults applied by the factories.
type ExplorerConfig struct {
	// EpsilonStart/Min/Decay drive ε-greedy (the paper's schedule).
	EpsilonStart float64
	EpsilonMin   float64
	EpsilonDecay float64
	// UCBC scales UCB1's confidence bonus (0 → sqrt(2)).
	UCBC float64
	// Tau/TauMin/TauDecay drive softmax cooling (0 → 1.0 / 0.05 / the
	// ε decay rate).
	Tau      float64
	TauMin   float64
	TauDecay float64
}

// ExplorerInfo describes one registered explorer.
type ExplorerInfo struct {
	Name        string
	Description string
}

// explorerFactory builds a fresh explorer instance from a config.
type explorerFactory func(cfg ExplorerConfig) Explorer

var explorers = map[string]struct {
	info    ExplorerInfo
	factory explorerFactory
}{}

// DefaultExplorer is the paper's exploration strategy.
const DefaultExplorer = "egreedy"

func registerExplorer(info ExplorerInfo, f explorerFactory) {
	if _, dup := explorers[info.Name]; dup {
		panic("learner: duplicate explorer " + info.Name)
	}
	explorers[info.Name] = struct {
		info    ExplorerInfo
		factory explorerFactory
	}{info, f}
}

func init() {
	registerExplorer(ExplorerInfo{
		Name:        "egreedy",
		Description: "ε-greedy with multiplicative decay (the paper's schedule)",
	}, func(cfg ExplorerConfig) Explorer {
		return &EpsilonGreedy{
			Epsilon:    cfg.EpsilonStart,
			EpsilonMin: cfg.EpsilonMin,
			Decay:      cfg.EpsilonDecay,
		}
	})
	registerExplorer(ExplorerInfo{
		Name:        "ucb",
		Description: "UCB1 upper-confidence-bound exploration (uncertainty-directed)",
	}, func(cfg ExplorerConfig) Explorer {
		c := cfg.UCBC
		if c <= 0 {
			c = math.Sqrt2
		}
		return &UCB1{C: c}
	})
	registerExplorer(ExplorerInfo{
		Name:        "softmax",
		Description: "Boltzmann softmax with temperature cooling",
	}, func(cfg ExplorerConfig) Explorer {
		tau := cfg.Tau
		if tau <= 0 {
			tau = 1.0
		}
		tauMin := cfg.TauMin
		if tauMin <= 0 {
			tauMin = 0.05
		}
		decay := cfg.TauDecay
		if decay <= 0 {
			decay = cfg.EpsilonDecay
		}
		return &Softmax{Tau: tau, TauMin: tauMin, Decay: decay}
	})
}

// ExplorerNames lists the registered explorers, sorted.
func ExplorerNames() []string {
	names := make([]string, 0, len(explorers))
	for n := range explorers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ExplorerInfos lists name/description for every registered explorer,
// sorted by name.
func ExplorerInfos() []ExplorerInfo {
	names := ExplorerNames()
	infos := make([]ExplorerInfo, 0, len(names))
	for _, n := range names {
		infos = append(infos, explorers[n].info)
	}
	return infos
}

// KnownExplorer reports whether name is registered ("" counts: it
// resolves to the default).
func KnownExplorer(name string) bool {
	if name == "" {
		return true
	}
	_, ok := explorers[name]
	return ok
}

// NewExplorer builds a fresh explorer by registry name ("" = the
// default ε-greedy).
func NewExplorer(name string, cfg ExplorerConfig) (Explorer, error) {
	if name == "" {
		name = DefaultExplorer
	}
	e, ok := explorers[name]
	if !ok {
		return nil, fmt.Errorf("learner: unknown explorer %q (have: %s)", name, joinNames(ExplorerNames()))
	}
	return e.factory(cfg), nil
}

// MustExplorer is NewExplorer for wiring that is code, not input.
func MustExplorer(name string, cfg ExplorerConfig) Explorer {
	e, err := NewExplorer(name, cfg)
	if err != nil {
		panic(err)
	}
	return e
}
