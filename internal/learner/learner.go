package learner

import (
	"fmt"
	"math/rand"
)

// RoleTable is one of a learner's Q-tables, tagged with its role name.
// Roles are the persistence/federation contract: a snapshot stores each
// role under its name, and a fleet merge averages tables role-by-role,
// so a two-estimator learner (Double Q) survives save/load and
// federated merging without collapsing into one table.
type RoleTable struct {
	Role  string
	Table *QTable
}

// TableSet is a learner's complete table state: the registry name of
// the rule that produced it plus its role-tagged tables. Roles[0] is
// the primary table — the view persistence metadata (Steps, TrainedUS,
// ConvergedAtUS), policy serving and single-table consumers use.
type TableSet struct {
	Learner string
	Roles   []RoleTable
}

// Primary returns the set's primary table (nil for an empty set).
func (ts *TableSet) Primary() *QTable {
	if ts == nil || len(ts.Roles) == 0 {
		return nil
	}
	return ts.Roles[0].Table
}

// Clone deep-copies the set.
func (ts *TableSet) Clone() *TableSet {
	c := &TableSet{Learner: ts.Learner, Roles: make([]RoleTable, len(ts.Roles))}
	for i, r := range ts.Roles {
		c.Roles[i] = RoleTable{Role: r.Role, Table: r.Table.Clone()}
	}
	return c
}

// SingleTableSet wraps one table as a watkins-compatible set — the
// adapter every legacy single-table path (old snapshot files, plain
// uploads) goes through.
func SingleTableSet(t *QTable) *TableSet {
	return &TableSet{Learner: DefaultLearner, Roles: []RoleTable{{Role: "q", Table: t}}}
}

// ValidateSet checks a table set against the registry: the learner
// name must be registered and the role layout must be exactly that
// learner's (order included), with every table sharing the primary's
// action count. Both untrusted ingress paths — snapshot files and
// fleet uploads — run it, so a hostile or corrupt set fails loudly at
// the boundary instead of pinning a bogus layout into a store or
// silently dropping estimators.
func ValidateSet(ts *TableSet) error {
	if ts == nil || ts.Primary() == nil {
		return fmt.Errorf("learner: empty table set")
	}
	name := Normalize(ts.Learner)
	l, ok := learners[name]
	if !ok {
		return fmt.Errorf("learner: unknown learner %q (have: %s)", ts.Learner, joinNames(Names()))
	}
	want := l.info.Roles
	if len(ts.Roles) != len(want) {
		return fmt.Errorf("learner: %s set has %d table roles, want %d (%v)", name, len(ts.Roles), len(want), want)
	}
	actions := ts.Primary().Actions
	for i, r := range ts.Roles {
		if r.Role != want[i] {
			return fmt.Errorf("learner: %s set role %d is %q, want %q", name, i, r.Role, want[i])
		}
		if r.Table == nil || r.Table.Actions != actions {
			return fmt.Errorf("learner: %s set role %q has mismatched action space", name, r.Role)
		}
	}
	return nil
}

// Learner is a temporal-difference update rule over one or more
// Q-tables. One Learner instance serves one application's policy; the
// agent delegates both action selection and learning to it.
//
// The TD step signature carries everything any registered rule needs:
// nextAction is the behaviour action executed in the successor state
// (SARSA bootstraps from it; off-policy rules ignore it) and rng drives
// stochastic rules (Double Q's estimator coin flip).
type Learner interface {
	// Name is the registry name.
	Name() string
	// Actions is the action-space size.
	Actions() int
	// SelectAction picks the behaviour action for s by running the
	// explorer over the learner's selection view.
	SelectAction(ex Explorer, s StateKey, rng *rand.Rand) int
	// Greedy returns the greedy action and value under the learner's
	// selection view (convergence tracking, emergency fallbacks).
	Greedy(s StateKey) (action int, value float64)
	// Update applies one TD step for the transition (s, a, reward, next)
	// and returns the TD error before the step.
	Update(s StateKey, a int, reward float64, next StateKey, nextAction int, alpha, gamma float64, rng *rand.Rand) float64
	// Tables exposes the learner's live tables by role; Tables()[0] is
	// the primary. The slice and tables are the learner's own state —
	// callers must not grow or reorder them.
	Tables() []RoleTable
	// Snapshot captures the table state for persistence. The returned
	// set aliases the live tables; clone before mutating.
	Snapshot() *TableSet
	// Restore adopts a snapshot's tables (no copy). A single-role set
	// restores into any learner: multi-table rules bootstrap their extra
	// estimators from the primary.
	Restore(ts *TableSet) error
	// Reset clears transient episode state (n-step buffers) while
	// keeping every table — called at session boundaries and app
	// switches.
	Reset()
}

// UpdateTargeter is an optional Learner refinement for rules whose TD
// step lands on an older transition than the one being fed in (n-step
// returns). NextUpdateTarget reports which state the NEXT Update call
// will modify — or ok=false when it will only buffer. The agent's
// convergence tracker uses it to measure greedy-action flips at the
// state that actually changes; without it, an n-step learner's flips
// would be measured at the newest state, the flip rate would decay to
// zero regardless of real policy churn, and training would latch
// "converged" prematurely.
type UpdateTargeter interface {
	NextUpdateTarget() (StateKey, bool)
}

// adoptPrimary validates a snapshot and returns its primary table —
// the shared Restore path of the single-table rules.
func adoptPrimary(name string, actions int, ts *TableSet) (*QTable, error) {
	p := ts.Primary()
	if p == nil {
		return nil, fmt.Errorf("learner: %s: empty snapshot", name)
	}
	if p.Actions != actions {
		return nil, fmt.Errorf("learner: %s: snapshot has %d actions, learner has %d", name, p.Actions, actions)
	}
	return p, nil
}

// --- watkins: the paper's Eq. 3 -----------------------------------------

// watkins is Watkins Q-learning — the paper's rule, extracted verbatim:
// the default agent's decision and update stream is bit-identical to
// the pre-registry implementation.
type watkins struct {
	T *QTable
}

func (w *watkins) Name() string { return "watkins" }
func (w *watkins) Actions() int { return w.T.Actions }

func (w *watkins) SelectAction(ex Explorer, s StateKey, rng *rand.Rand) int {
	return ex.Select(w.T, s, rng)
}

func (w *watkins) Greedy(s StateKey) (int, float64) { return w.T.Best(s) }

func (w *watkins) Update(s StateKey, a int, reward float64, next StateKey, _ int, alpha, gamma float64, _ *rand.Rand) float64 {
	return w.T.Update(s, a, reward, next, alpha, gamma)
}

func (w *watkins) Tables() []RoleTable { return []RoleTable{{Role: "q", Table: w.T}} }
func (w *watkins) Snapshot() *TableSet {
	return &TableSet{Learner: w.Name(), Roles: w.Tables()}
}
func (w *watkins) Restore(ts *TableSet) error {
	p, err := adoptPrimary(w.Name(), w.T.Actions, ts)
	if err != nil {
		return err
	}
	w.T = p
	return nil
}
func (w *watkins) Reset() {}

// --- sarsa ---------------------------------------------------------------

// sarsa is the on-policy rule: it bootstraps from the action the
// behaviour policy actually executed in s', which makes a deployed
// agent more conservative around exploratory dips.
type sarsa struct {
	T *QTable
}

func (l *sarsa) Name() string { return "sarsa" }
func (l *sarsa) Actions() int { return l.T.Actions }

func (l *sarsa) SelectAction(ex Explorer, s StateKey, rng *rand.Rand) int {
	return ex.Select(l.T, s, rng)
}

func (l *sarsa) Greedy(s StateKey) (int, float64) { return l.T.Best(s) }

func (l *sarsa) Update(s StateKey, a int, reward float64, next StateKey, nextAction int, alpha, gamma float64, _ *rand.Rand) float64 {
	row := l.T.row(s)
	var nextV float64
	if nextRow, ok := l.T.Q[next]; ok && nextAction >= 0 && nextAction < len(nextRow) {
		nextV = nextRow[nextAction]
	}
	td := reward + gamma*nextV - row[a]
	row[a] += alpha * td
	l.T.Visits[s]++
	l.T.Steps++
	return td
}

func (l *sarsa) Tables() []RoleTable { return []RoleTable{{Role: "q", Table: l.T}} }
func (l *sarsa) Snapshot() *TableSet {
	return &TableSet{Learner: l.Name(), Roles: l.Tables()}
}
func (l *sarsa) Restore(ts *TableSet) error {
	p, err := adoptPrimary(l.Name(), l.T.Actions, ts)
	if err != nil {
		return err
	}
	l.T = p
	return nil
}
func (l *sarsa) Reset() {}

// --- expected-sarsa ------------------------------------------------------

// expectedSARSA bootstraps from the expected next value under the
// current behaviour policy — ε/|A|·ΣQ(s',·) + (1−ε)·max Q(s',·) — which
// removes SARSA's sampling variance while staying on-policy. The ε it
// uses is the explorer's rate at the last selection, captured in
// SelectAction.
type expectedSARSA struct {
	T   *QTable
	eps float64
}

func (l *expectedSARSA) Name() string { return "expected-sarsa" }
func (l *expectedSARSA) Actions() int { return l.T.Actions }

func (l *expectedSARSA) SelectAction(ex Explorer, s StateKey, rng *rand.Rand) int {
	l.eps = ex.Rate()
	return ex.Select(l.T, s, rng)
}

func (l *expectedSARSA) Greedy(s StateKey) (int, float64) { return l.T.Best(s) }

func (l *expectedSARSA) Update(s StateKey, a int, reward float64, next StateKey, _ int, alpha, gamma float64, _ *rand.Rand) float64 {
	row := l.T.row(s)
	var expV float64
	if nextRow, ok := l.T.Q[next]; ok {
		maxV, sum := nextRow[0], 0.0
		for _, v := range nextRow {
			if v > maxV {
				maxV = v
			}
			sum += v
		}
		n := float64(len(nextRow))
		expV = l.eps*sum/n + (1-l.eps)*maxV
	}
	td := reward + gamma*expV - row[a]
	row[a] += alpha * td
	l.T.Visits[s]++
	l.T.Steps++
	return td
}

func (l *expectedSARSA) Tables() []RoleTable { return []RoleTable{{Role: "q", Table: l.T}} }
func (l *expectedSARSA) Snapshot() *TableSet {
	return &TableSet{Learner: l.Name(), Roles: l.Tables()}
}
func (l *expectedSARSA) Restore(ts *TableSet) error {
	p, err := adoptPrimary(l.Name(), l.T.Actions, ts)
	if err != nil {
		return err
	}
	l.T = p
	return nil
}
func (l *expectedSARSA) Reset() {}

// --- doubleq -------------------------------------------------------------

// doubleQ is van Hasselt double Q-learning: two estimators, a coin flip
// per update choosing which one learns, selection with one and
// evaluation with the other. It removes the max-operator's
// overestimation bias — relevant here because the PPDW reward is noisy
// (power jitter, FPS quantization edges) and noise is what max()
// overestimates. Selection and convergence tracking use estimator A,
// the set's primary; per-role visit counts make the federated merge
// weight each estimator by its own experience.
type doubleQ struct {
	A *QTable
	B *QTable
}

func (l *doubleQ) Name() string { return "doubleq" }
func (l *doubleQ) Actions() int { return l.A.Actions }

func (l *doubleQ) SelectAction(ex Explorer, s StateKey, rng *rand.Rand) int {
	return ex.Select(l.A, s, rng)
}

func (l *doubleQ) Greedy(s StateKey) (int, float64) { return l.A.Best(s) }

func (l *doubleQ) Update(s StateKey, a int, reward float64, next StateKey, _ int, alpha, gamma float64, rng *rand.Rand) float64 {
	// Flip which estimator updates; select with one, evaluate with the
	// other (van Hasselt 2010).
	upd, eval := l.A, l.B
	if rng.Intn(2) == 1 {
		upd, eval = l.B, l.A
	}
	row := upd.row(s)
	selAction, _ := upd.Best(next)
	var nextV float64
	if evalRow, ok := eval.Q[next]; ok {
		nextV = evalRow[selAction]
	}
	td := reward + gamma*nextV - row[a]
	row[a] += alpha * td
	// Per-role visit counts weight each estimator's own experience in a
	// federated merge; step bookkeeping lives on the primary so
	// convergence accounting sees every update.
	upd.Visits[s]++
	l.A.Steps++
	return td
}

// CombinedBest returns the greedy action under the averaged estimate
// (A+B)/2 — the lower-bias value view, exposed for analysis.
func (l *doubleQ) CombinedBest(s StateKey) (int, float64) {
	ra, okA := l.A.Q[s]
	rb, okB := l.B.Q[s]
	if !okA && !okB {
		return 0, 0
	}
	combined := func(a int) float64 {
		var v float64
		if ra != nil {
			v += ra[a] / 2
		}
		if rb != nil {
			v += rb[a] / 2
		}
		return v
	}
	best, bestV := 0, combined(0)
	for a := 1; a < l.A.Actions; a++ {
		if v := combined(a); v > bestV {
			best, bestV = a, v
		}
	}
	return best, bestV
}

func (l *doubleQ) Tables() []RoleTable {
	return []RoleTable{{Role: "a", Table: l.A}, {Role: "b", Table: l.B}}
}
func (l *doubleQ) Snapshot() *TableSet {
	return &TableSet{Learner: l.Name(), Roles: l.Tables()}
}

// Restore adopts a snapshot. A full two-role set restores both
// estimators; a single-table set (legacy file, plain federated policy)
// seeds both estimators from the primary — B as a copy, so the
// estimators diverge again only through fresh experience.
func (l *doubleQ) Restore(ts *TableSet) error {
	p, err := adoptPrimary(l.Name(), l.A.Actions, ts)
	if err != nil {
		return err
	}
	l.A, l.B = p, nil
	for _, r := range ts.Roles[1:] {
		if r.Role != "b" {
			continue
		}
		if r.Table.Actions != l.A.Actions {
			return fmt.Errorf("learner: doubleq: role %q has %d actions, want %d", r.Role, r.Table.Actions, l.A.Actions)
		}
		l.B = r.Table
	}
	if l.B == nil {
		l.B = p.Clone()
	}
	return nil
}
func (l *doubleQ) Reset() {}

// --- nstep ---------------------------------------------------------------

// nstepDefaultN is the horizon of the registry's "nstep" learner: long
// enough that a frequency change's thermal consequence (which lags the
// action by several control periods) reaches the action that caused it,
// short enough that the PPDW reward's phase-boundary spikes do not
// smear across unrelated decisions.
const nstepDefaultN = 4

// nstepQ is n-step Q-learning: transitions buffer until n rewards have
// accumulated, then the oldest (s,a) is updated with the n-step return
// G = Σ γ^i r_i + γ^n max_a Q(s_n, a). Longer credit assignment per
// update at the cost of a small learning lag; the behaviour policy's
// off-policy drift over the horizon is the standard uncorrected
// approximation. The buffer is episode state: Reset discards it, so
// returns never straddle a session or app switch.
type nstepQ struct {
	T *QTable
	N int

	bufS []StateKey
	bufA []int
	bufR []float64
}

func (l *nstepQ) Name() string { return "nstep" }
func (l *nstepQ) Actions() int { return l.T.Actions }

func (l *nstepQ) SelectAction(ex Explorer, s StateKey, rng *rand.Rand) int {
	return ex.Select(l.T, s, rng)
}

func (l *nstepQ) Greedy(s StateKey) (int, float64) { return l.T.Best(s) }

// NextUpdateTarget implements UpdateTargeter: the next Update applies
// to the oldest buffered transition once the window is about to fill;
// until then it only buffers.
func (l *nstepQ) NextUpdateTarget() (StateKey, bool) {
	if len(l.bufS)+1 < l.N {
		return 0, false // still accumulating
	}
	if len(l.bufS) == 0 {
		return 0, false // N == 1 degenerate case: defensive
	}
	return l.bufS[0], true
}

func (l *nstepQ) Update(s StateKey, a int, reward float64, next StateKey, _ int, alpha, gamma float64, _ *rand.Rand) float64 {
	l.bufS = append(l.bufS, s)
	l.bufA = append(l.bufA, a)
	l.bufR = append(l.bufR, reward)
	if len(l.bufR) < l.N {
		return 0 // still accumulating the return
	}
	g := 1.0
	G := 0.0
	for _, r := range l.bufR {
		G += g * r
		g *= gamma
	}
	_, nextBest := l.T.Best(next)
	G += g * nextBest
	row := l.T.row(l.bufS[0])
	td := G - row[l.bufA[0]]
	row[l.bufA[0]] += alpha * td
	l.T.Visits[l.bufS[0]]++
	l.T.Steps++
	// Shift the window (copy within the backing arrays — no per-update
	// allocation once the buffers reach capacity N).
	copy(l.bufS, l.bufS[1:])
	copy(l.bufA, l.bufA[1:])
	copy(l.bufR, l.bufR[1:])
	l.bufS = l.bufS[:len(l.bufS)-1]
	l.bufA = l.bufA[:len(l.bufA)-1]
	l.bufR = l.bufR[:len(l.bufR)-1]
	return td
}

func (l *nstepQ) Tables() []RoleTable { return []RoleTable{{Role: "q", Table: l.T}} }
func (l *nstepQ) Snapshot() *TableSet {
	return &TableSet{Learner: l.Name(), Roles: l.Tables()}
}
func (l *nstepQ) Restore(ts *TableSet) error {
	p, err := adoptPrimary(l.Name(), l.T.Actions, ts)
	if err != nil {
		return err
	}
	l.T = p
	l.Reset()
	return nil
}

func (l *nstepQ) Reset() {
	l.bufS = l.bufS[:0]
	l.bufA = l.bufA[:0]
	l.bufR = l.bufR[:0]
}
