package learner

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegistryHasAtLeastFourLearnersAndThreeExplorers(t *testing.T) {
	if n := len(Names()); n < 4 {
		t.Fatalf("learners registered = %d, want >= 4 (%v)", n, Names())
	}
	if n := len(ExplorerNames()); n < 3 {
		t.Fatalf("explorers registered = %d, want >= 3 (%v)", n, ExplorerNames())
	}
	for _, name := range Names() {
		l := Must(name, 9)
		if l.Name() != name {
			t.Fatalf("%s: Name() = %q", name, l.Name())
		}
		if l.Actions() != 9 {
			t.Fatalf("%s: Actions() = %d", name, l.Actions())
		}
		if got := l.Tables()[0].Role; got != PrimaryRole(name) {
			t.Fatalf("%s: primary role %q, PrimaryRole says %q", name, got, PrimaryRole(name))
		}
	}
}

func TestRegistryRejectsUnknownNames(t *testing.T) {
	if _, err := New("nope", 4); err == nil {
		t.Fatal("unknown learner accepted")
	}
	if _, err := NewExplorer("nope", ExplorerConfig{}); err == nil {
		t.Fatal("unknown explorer accepted")
	}
	if Known("nope") || KnownExplorer("nope") {
		t.Fatal("Known must reject unknown names")
	}
	if !Known("") || !KnownExplorer("") {
		t.Fatal("empty name must resolve to the default")
	}
}

func TestWatkinsDegeneratesToPaperRule(t *testing.T) {
	// The default learner must produce byte-identical updates to the
	// raw Eq. 3 implementation.
	rng := rand.New(rand.NewSource(1))
	l := Must("watkins", 4)
	q := NewQTable(4)
	for i := 0; i < 500; i++ {
		s := StateKey(rng.Intn(6))
		a := rng.Intn(4)
		r := rng.Float64() - 0.5
		next := StateKey(rng.Intn(6))
		tdL := l.Update(s, a, r, next, rng.Intn(4), 0.2, 0.9, rng)
		tdQ := q.Update(s, a, r, next, 0.2, 0.9)
		if tdL != tdQ {
			t.Fatalf("step %d: td %g vs %g", i, tdL, tdQ)
		}
	}
	got := l.Tables()[0].Table
	for s, row := range q.Q {
		for i := range row {
			if got.Q[s][i] != row[i] {
				t.Fatal("learner diverged from raw Q-learning")
			}
		}
	}
}

func TestWatkinsSelectionMatchesEpsilonGreedyStream(t *testing.T) {
	// SelectAction through the interface must consume the rng exactly
	// like a direct EpsilonGreedy.Select — the bit-identity contract the
	// agent's default path relies on.
	mk := func() (*QTable, *rand.Rand) {
		q := NewQTable(5)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 40; i++ {
			q.Update(StateKey(i%7), i%5, rng.Float64()-0.5, StateKey((i+1)%7), 0.3, 0.9)
		}
		return q, rand.New(rand.NewSource(33))
	}
	qA, rngA := mk()
	l := &watkins{T: qA}
	exA := &EpsilonGreedy{Epsilon: 0.8, EpsilonMin: 0.08, Decay: 0.99}
	qB, rngB := mk()
	exB := &EpsilonGreedy{Epsilon: 0.8, EpsilonMin: 0.08, Decay: 0.99}
	for i := 0; i < 300; i++ {
		s := StateKey(i % 7)
		if got, want := l.SelectAction(exA, s, rngA), exB.Select(qB, s, rngB); got != want {
			t.Fatalf("step %d: action %d vs %d", i, got, want)
		}
	}
}

func TestSARSAUsesExecutedAction(t *testing.T) {
	l := Must("sarsa", 3)
	rng := rand.New(rand.NewSource(2))
	s, next := StateKey(1), StateKey(2)
	tab := l.Tables()[0].Table
	tab.row(next)[0] = 10 // greedy value
	tab.row(next)[2] = 1  // executed action's value
	// SARSA must bootstrap from the executed action (2), not the max (0).
	td := l.Update(s, 0, 0, next, 2, 1.0, 0.5, rng)
	if math.Abs(td-0.5) > 1e-12 { // 0 + 0.5*1 − 0
		t.Fatalf("td = %g, want 0.5 (bootstrapped from executed action)", td)
	}
}

func TestExpectedSARSABlendsByExplorationRate(t *testing.T) {
	l := Must("expected-sarsa", 2).(*expectedSARSA)
	rng := rand.New(rand.NewSource(3))
	next := StateKey(2)
	l.T.row(next)[0] = 4
	l.T.row(next)[1] = 0
	l.eps = 0.5
	// E = 0.5/2·(4+0) + 0.5·4 = 1 + 2 = 3 → td = 0 + 0.5·3 − 0 = 1.5
	td := l.Update(StateKey(1), 0, 0, next, 1, 1.0, 0.5, rng)
	if math.Abs(td-1.5) > 1e-12 {
		t.Fatalf("td = %g, want 1.5", td)
	}
	// SelectAction must capture the explorer's rate for the next update.
	ex := &EpsilonGreedy{Epsilon: 0.25, EpsilonMin: 0.25}
	l.SelectAction(ex, StateKey(1), rng)
	if l.eps != 0.25 {
		t.Fatalf("captured eps = %g, want 0.25", l.eps)
	}
}

func TestDoubleQMaintainsTwoEstimators(t *testing.T) {
	l := Must("doubleq", 3).(*doubleQ)
	if l.B == nil {
		t.Fatal("double Q needs a second table")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		l.Update(StateKey(i%4), i%3, 1, StateKey((i+1)%4), 0, 0.1, 0.9, rng)
	}
	if len(l.A.Q) == 0 || len(l.B.Q) == 0 {
		t.Fatal("both estimators should receive updates")
	}
	if a, _ := l.CombinedBest(StateKey(0)); a < 0 || a > 2 {
		t.Fatalf("combined best out of range: %d", a)
	}
	if l.A.Steps != 2000 {
		t.Fatalf("primary must carry the step bookkeeping: %d", l.A.Steps)
	}
	// Per-role visit counts: each estimator counts its own updates.
	visits := 0
	for _, v := range l.A.Visits {
		visits += v
	}
	for _, v := range l.B.Visits {
		visits += v
	}
	if visits != 2000 {
		t.Fatalf("role visit counts total %d, want 2000", visits)
	}
}

func TestDoubleQReducesOverestimationUnderNoise(t *testing.T) {
	// Classic construction: all actions have true value 0 but rewards
	// are ±1 noise. Q-learning's max() drags values upward; Double Q
	// should sit closer to the truth.
	biasOf := func(name string, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		l := Must(name, 8)
		s := StateKey(0)
		for i := 0; i < 30_000; i++ {
			a := rng.Intn(8)
			r := 1.0
			if rng.Intn(2) == 0 {
				r = -1.0
			}
			l.Update(s, a, r, s, rng.Intn(8), 0.1, 0.9, rng)
		}
		if dq, ok := l.(*doubleQ); ok {
			_, v := dq.CombinedBest(s)
			return v
		}
		_, v := l.Greedy(s)
		return v
	}
	q := biasOf("watkins", 4)
	dq := biasOf("doubleq", 4)
	if dq >= q {
		t.Fatalf("double Q value (%g) should be below Q-learning's optimistic estimate (%g)", dq, q)
	}
}

func TestNStepAppliesDelayedReturns(t *testing.T) {
	l := Must("nstep", 2).(*nstepQ)
	rng := rand.New(rand.NewSource(5))
	// The first N-1 updates buffer without touching the table.
	for i := 0; i < l.N-1; i++ {
		if td := l.Update(StateKey(i), 0, 1, StateKey(i+1), 0, 0.5, 0.5, rng); td != 0 {
			t.Fatalf("update %d applied early (td=%g)", i, td)
		}
	}
	if l.T.Steps != 0 {
		t.Fatal("table updated before the return window filled")
	}
	// The N-th transition completes the window: the oldest (s,a) gets
	// G = r0 + γ·r1 + … + γ^N·max Q(s_N).
	td := l.Update(StateKey(l.N-1), 0, 1, StateKey(l.N), 0, 0.5, 0.5, rng)
	wantG := 0.0
	g := 1.0
	for i := 0; i < l.N; i++ {
		wantG += g * 1
		g *= 0.5
	}
	if math.Abs(td-wantG) > 1e-12 {
		t.Fatalf("td = %g, want n-step return %g", td, wantG)
	}
	if l.T.Steps != 1 || l.T.Visits[StateKey(0)] != 1 {
		t.Fatal("oldest transition not the one updated")
	}
	// Reset discards the pending window: the next update buffers again.
	l.Reset()
	if td := l.Update(StateKey(9), 0, 1, StateKey(10), 0, 0.5, 0.5, rng); td != 0 {
		t.Fatal("reset did not clear the n-step buffer")
	}
}

func TestEveryLearnerIsDeterministic(t *testing.T) {
	// Same seed → identical tables, for every registered rule.
	for _, name := range Names() {
		runOnce := func() []RoleTable {
			rng := rand.New(rand.NewSource(77))
			l := Must(name, 6)
			ex := MustExplorer("egreedy", ExplorerConfig{EpsilonStart: 0.8, EpsilonMin: 0.08, EpsilonDecay: 0.999})
			s := StateKey(0)
			for i := 0; i < 3000; i++ {
				a := l.SelectAction(ex, s, rng)
				next := StateKey((int(s) + a + 1) % 11)
				l.Update(s, a, rng.Float64()-0.4, next, a, 0.3, 0.9, rng)
				s = next
			}
			return l.Tables()
		}
		t1, t2 := runOnce(), runOnce()
		if len(t1) != len(t2) {
			t.Fatalf("%s: role counts differ", name)
		}
		for i := range t1 {
			a, b := t1[i].Table, t2[i].Table
			if len(a.Q) != len(b.Q) || a.Steps != b.Steps {
				t.Fatalf("%s role %s: shape differs", name, t1[i].Role)
			}
			for s, row := range a.Q {
				for j := range row {
					if row[j] != b.Q[s][j] {
						t.Fatalf("%s role %s: Q[%d][%d] differs", name, t1[i].Role, s, j)
					}
				}
			}
		}
	}
}

func TestSnapshotRestoreRoundTripsEveryLearner(t *testing.T) {
	for _, name := range Names() {
		rng := rand.New(rand.NewSource(13))
		l := Must(name, 4)
		for i := 0; i < 500; i++ {
			l.Update(StateKey(i%9), i%4, rng.Float64()-0.5, StateKey((i+3)%9), i%4, 0.3, 0.9, rng)
		}
		snap := l.Snapshot().Clone()
		fresh := Must(name, 4)
		if err := fresh.Restore(snap); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		want, got := l.Tables(), fresh.Tables()
		if len(want) != len(got) {
			t.Fatalf("%s: role counts differ after restore", name)
		}
		for i := range want {
			for s, row := range want[i].Table.Q {
				for j := range row {
					if got[i].Table.Q[s][j] != row[j] {
						t.Fatalf("%s role %s: value lost in round trip", name, want[i].Role)
					}
				}
			}
		}
	}
}

func TestDoubleQRestoreFromSingleTableSeedsBothEstimators(t *testing.T) {
	q := NewQTable(3)
	q.Update(StateKey(1), 2, 1, StateKey(2), 0.5, 0.9)
	l := Must("doubleq", 3).(*doubleQ)
	if err := l.Restore(SingleTableSet(q)); err != nil {
		t.Fatal(err)
	}
	if l.A != q {
		t.Fatal("primary must adopt the installed table (no copy)")
	}
	if l.B == q || l.B.Q[StateKey(1)][2] != q.Q[StateKey(1)][2] {
		t.Fatal("B must be a distinct copy of the primary")
	}
}

func TestRestoreRejectsActionMismatch(t *testing.T) {
	for _, name := range Names() {
		l := Must(name, 4)
		if err := l.Restore(SingleTableSet(NewQTable(5))); err == nil {
			t.Fatalf("%s: restore accepted mismatched action space", name)
		}
	}
}

func TestUCBTriesEveryActionFirst(t *testing.T) {
	ex := MustExplorer("ucb", ExplorerConfig{})
	q := NewQTable(4)
	rng := rand.New(rand.NewSource(6))
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[ex.Select(q, StateKey(0), rng)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("UCB tried %d/4 actions in the first 4 pulls", len(seen))
	}
	// With one clearly best action and many pulls, UCB must favor it.
	q.row(StateKey(0))[1] = 10
	picks := 0
	for i := 0; i < 200; i++ {
		if ex.Select(q, StateKey(0), rng) == 1 {
			picks++
		}
	}
	if picks < 100 {
		t.Fatalf("UCB picked the best action only %d/200 times", picks)
	}
}

func TestSoftmaxFollowsTemperature(t *testing.T) {
	q := NewQTable(3)
	q.row(StateKey(0))[2] = 5
	rng := rand.New(rand.NewSource(7))
	// Cold: nearly greedy.
	cold := &Softmax{Tau: 0.05, TauMin: 0.05}
	greedy := 0
	for i := 0; i < 300; i++ {
		if cold.Select(q, StateKey(0), rng) == 2 {
			greedy++
		}
	}
	if greedy < 290 {
		t.Fatalf("cold softmax greedy picks = %d/300", greedy)
	}
	// Hot: close to uniform — every action sampled.
	hot := &Softmax{Tau: 100, TauMin: 100}
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		seen[hot.Select(q, StateKey(0), rng)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("hot softmax covered %d/3 actions", len(seen))
	}
	// Cooling: Tau decays toward TauMin.
	cooling := &Softmax{Tau: 1, TauMin: 0.1, Decay: 0.5}
	for i := 0; i < 20; i++ {
		cooling.Select(q, StateKey(0), rng)
	}
	if cooling.Tau != 0.1 {
		t.Fatalf("tau = %g, want cooled to 0.1", cooling.Tau)
	}
}

func TestExplorerRates(t *testing.T) {
	eg := &EpsilonGreedy{Epsilon: 0.5, EpsilonMin: 0.1}
	if eg.Rate() != 0.5 {
		t.Fatalf("egreedy rate = %g", eg.Rate())
	}
	eg.Epsilon = 0.01
	if eg.Rate() != 0.1 {
		t.Fatal("egreedy rate must clamp to the minimum")
	}
	if (&UCB1{}).Rate() != 1 {
		t.Fatal("UCB rate must report always-exploring")
	}
	if r := (&Softmax{Tau: 0.3, TauMin: 0.05}).Rate(); r != 0.3 {
		t.Fatalf("softmax rate = %g", r)
	}
}

func TestTableSetPrimaryAndClone(t *testing.T) {
	var nilSet *TableSet
	if nilSet.Primary() != nil {
		t.Fatal("nil set must have nil primary")
	}
	q := NewQTable(2)
	q.Update(StateKey(3), 1, 1, StateKey(4), 0.5, 0.9)
	set := SingleTableSet(q)
	c := set.Clone()
	if c.Primary() == q {
		t.Fatal("clone must not alias")
	}
	c.Primary().Q[StateKey(3)][1] = 99
	if q.Q[StateKey(3)][1] == 99 {
		t.Fatal("clone leaked into the original")
	}
}
