// Package learner is the pluggable policy layer of the Next agent: the
// sparse tabular value store (QTable), the temporal-difference update
// rules (Learner: Watkins Q-learning, Double Q, SARSA, Expected SARSA,
// n-step Q) and the exploration strategies (Explorer: ε-greedy, UCB1,
// Boltzmann softmax), each behind a name registry so every driver —
// scenario grids, fleet runs, CI benches — can sweep the learning rule
// the same way it already sweeps platforms and scenarios.
//
// The paper's contribution is Eq. 3 Watkins Q-learning with ε-greedy
// exploration over the user-interaction-aware state; that pair is the
// registry default ("watkins" + "egreedy") and is bit-identical to the
// rule previously hard-coded in core: the agent's default decision
// stream consumes the same random numbers in the same order and applies
// the same floating-point operations.
package learner

import "math/rand"

// StateKey is a packed mixed-radix encoding of the quantized state
// tuple. Sparse Q-tables are keyed by it.
type StateKey uint64

// QTable is a sparse tabular action-value function: only visited states
// occupy memory (the full product space of the paper's state tuple is
// far larger than what a session visits).
type QTable struct {
	// Actions is the fixed action-space size (3 per cluster; 9 on the
	// Exynos 9810).
	Actions int
	// Q maps state → action values.
	Q map[StateKey][]float64
	// Visits counts updates per state, used as federated-merge weights.
	Visits map[StateKey]int
	// Steps counts Q-updates applied over the table's lifetime.
	Steps int64
	// TrainedUS accumulates simulated training time (for Fig. 6).
	TrainedUS int64
	// ConvergedAtUS is the training time at which the policy first
	// stabilized (0 = not yet).
	ConvergedAtUS int64
}

// NewQTable returns an empty table over the given action count.
func NewQTable(actions int) *QTable {
	if actions <= 0 {
		panic("learner: QTable needs a positive action count")
	}
	return &QTable{
		Actions: actions,
		Q:       make(map[StateKey][]float64),
		Visits:  make(map[StateKey]int),
	}
}

// row returns the action-value row for s, allocating lazily.
func (t *QTable) row(s StateKey) []float64 {
	if r, ok := t.Q[s]; ok {
		return r
	}
	r := make([]float64, t.Actions)
	t.Q[s] = r
	return r
}

// Best returns the greedy action and its value for s (ties toward the
// lowest action index, which is stable and deterministic).
func (t *QTable) Best(s StateKey) (action int, value float64) {
	r, ok := t.Q[s]
	if !ok {
		return 0, 0
	}
	action, value = 0, r[0]
	for a := 1; a < len(r); a++ {
		if r[a] > value {
			action, value = a, r[a]
		}
	}
	return action, value
}

// Update applies the Watkins Q-learning rule (the paper's Eq. 3):
//
//	Q(s,a) ← Q(s,a) + α·(r + γ·max_a' Q(s',a') − Q(s,a))
//
// and returns the TD error before the step (for convergence tracking).
func (t *QTable) Update(s StateKey, a int, reward float64, next StateKey, alpha, gamma float64) float64 {
	_, nextBest := t.Best(next)
	row := t.row(s)
	td := reward + gamma*nextBest - row[a]
	row[a] += alpha * td
	t.Visits[s]++
	t.Steps++
	return td
}

// States returns the number of distinct states visited.
func (t *QTable) States() int { return len(t.Q) }

// Clone deep-copies the table (rows are not shared).
func (t *QTable) Clone() *QTable {
	c := NewQTable(t.Actions)
	c.Steps = t.Steps
	c.TrainedUS = t.TrainedUS
	c.ConvergedAtUS = t.ConvergedAtUS
	for s, row := range t.Q {
		r := make([]float64, len(row))
		copy(r, row)
		c.Q[s] = r
	}
	for s, v := range t.Visits {
		c.Visits[s] = v
	}
	return c
}

// greedyRandTie returns an argmax action, sampling uniformly among ties.
func greedyRandTie(t *QTable, s StateKey, rng *rand.Rand) int {
	r, ok := t.Q[s]
	if !ok {
		return rng.Intn(t.Actions)
	}
	best := r[0]
	n := 1
	pick := 0
	for a := 1; a < len(r); a++ {
		switch {
		case r[a] > best:
			best, n, pick = r[a], 1, a
		case r[a] == best:
			// Reservoir sampling over the tie set.
			n++
			if rng.Intn(n) == 0 {
				pick = a
			}
		}
	}
	return pick
}
