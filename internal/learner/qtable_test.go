package learner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQTableUpdateMatchesEquationThree(t *testing.T) {
	q := NewQTable(9)
	s, s2 := StateKey(1), StateKey(2)
	// Seed next-state values.
	q.row(s2)[3] = 2.0
	td := q.Update(s, 0, 1.0, s2, 0.5, 0.9)
	// td = r + γ·max Q(s') − Q(s,a) = 1 + 0.9*2 − 0 = 2.8
	if math.Abs(td-2.8) > 1e-12 {
		t.Fatalf("td = %g, want 2.8", td)
	}
	// Q(s,a) = 0 + 0.5*2.8 = 1.4
	if got := q.Q[s][0]; math.Abs(got-1.4) > 1e-12 {
		t.Fatalf("Q = %g, want 1.4", got)
	}
	if q.Visits[s] != 1 || q.Steps != 1 {
		t.Fatal("bookkeeping wrong")
	}
}

func TestQTableBestTieBreaksLowIndex(t *testing.T) {
	q := NewQTable(3)
	s := StateKey(7)
	q.row(s)[0] = 1.0
	q.row(s)[2] = 1.0
	a, v := q.Best(s)
	if a != 0 || v != 1.0 {
		t.Fatalf("best = (%d, %g), want (0, 1)", a, v)
	}
}

func TestQTableUnvisitedStateIsZero(t *testing.T) {
	q := NewQTable(9)
	a, v := q.Best(StateKey(99))
	if a != 0 || v != 0 {
		t.Fatalf("unvisited best = (%d,%g)", a, v)
	}
	if q.States() != 0 {
		t.Fatal("Best must not allocate rows")
	}
}

func TestQLearningConvergesOnTwoStateChain(t *testing.T) {
	// Classic sanity: two states, action 1 in s0 moves to s1 with
	// reward 1; everything else rewards 0 and stays. The learned Q must
	// rank action 1 highest in s0.
	q := NewQTable(2)
	rng := rand.New(rand.NewSource(10))
	s0, s1 := StateKey(0), StateKey(1)
	for i := 0; i < 5000; i++ {
		var a int
		if rng.Float64() < 0.3 {
			a = rng.Intn(2)
		} else {
			a, _ = q.Best(s0)
		}
		if a == 1 {
			q.Update(s0, 1, 1.0, s1, 0.1, 0.5)
			q.Update(s1, 0, 0, s0, 0.1, 0.5) // return transition
		} else {
			q.Update(s0, 0, 0, s0, 0.1, 0.5)
		}
	}
	if a, _ := q.Best(s0); a != 1 {
		t.Fatalf("policy did not learn the rewarding action: best=%d", a)
	}
}

func TestQValuesBoundedByRewardOverOneMinusGamma(t *testing.T) {
	// Property: with rewards in [-1, 1] and γ=0.9, |Q| ≤ 1/(1-γ) = 10.
	rng := rand.New(rand.NewSource(11))
	f := func(ops []uint8) bool {
		q := NewQTable(4)
		for _, op := range ops {
			s := StateKey(op % 8)
			a := int(op>>3) % 4
			r := float64(int(op%3) - 1) // -1, 0, 1
			next := StateKey((op * 7) % 8)
			q.Update(s, a, r, next, 0.3, 0.9)
		}
		for _, row := range q.Q {
			for _, v := range row {
				if v > 10.0001 || v < -10.0001 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyEpsilonDecay(t *testing.T) {
	p := EpsilonGreedy{Epsilon: 1.0, EpsilonMin: 0.1, Decay: 0.5}
	q := NewQTable(4)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 20; i++ {
		p.Select(q, StateKey(0), rng)
	}
	if p.Epsilon != 0.1 {
		t.Fatalf("epsilon = %g, want decayed to min 0.1", p.Epsilon)
	}
}

func TestPolicyGreedyWhenEpsilonZero(t *testing.T) {
	p := EpsilonGreedy{Epsilon: 0, EpsilonMin: 0}
	q := NewQTable(3)
	s := StateKey(5)
	q.row(s)[2] = 9
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		if a := p.Select(q, s, rng); a != 2 {
			t.Fatalf("greedy policy picked %d", a)
		}
	}
}

func TestPolicyExploresAtHighEpsilon(t *testing.T) {
	p := EpsilonGreedy{Epsilon: 1.0, EpsilonMin: 1.0}
	q := NewQTable(9)
	rng := rand.New(rand.NewSource(14))
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		seen[p.Select(q, StateKey(0), rng)] = true
	}
	if len(seen) != 9 {
		t.Fatalf("exploration covered %d/9 actions", len(seen))
	}
}

func TestNewQTablePanicsOnBadActions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQTable(0)
}
