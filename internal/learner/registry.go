package learner

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultLearner is the paper's update rule.
const DefaultLearner = "watkins"

// Info describes one registered learner for listings.
type Info struct {
	Name        string
	Description string
	// Roles are the table roles the learner persists/merges, primary
	// first.
	Roles []string
}

// factory builds a fresh learner over the given action count.
type factory func(actions int) Learner

var learners = map[string]struct {
	info    Info
	factory factory
}{}

func register(info Info, f factory) {
	if _, dup := learners[info.Name]; dup {
		panic("learner: duplicate learner " + info.Name)
	}
	learners[info.Name] = struct {
		info    Info
		factory factory
	}{info, f}
}

func init() {
	register(Info{
		Name:        "watkins",
		Description: "Watkins Q-learning (the paper's Eq. 3; the default)",
		Roles:       []string{"q"},
	}, func(actions int) Learner { return &watkins{T: NewQTable(actions)} })
	register(Info{
		Name:        "doubleq",
		Description: "van Hasselt double Q-learning (two estimators, reduces maximization bias)",
		Roles:       []string{"a", "b"},
	}, func(actions int) Learner { return &doubleQ{A: NewQTable(actions), B: NewQTable(actions)} })
	register(Info{
		Name:        "sarsa",
		Description: "on-policy SARSA (bootstraps from the executed action)",
		Roles:       []string{"q"},
	}, func(actions int) Learner { return &sarsa{T: NewQTable(actions)} })
	register(Info{
		Name:        "expected-sarsa",
		Description: "Expected SARSA (on-policy expectation, lower variance than SARSA)",
		Roles:       []string{"q"},
	}, func(actions int) Learner { return &expectedSARSA{T: NewQTable(actions)} })
	register(Info{
		Name:        "nstep",
		Description: fmt.Sprintf("%d-step Q-learning (n-step return buffer, longer credit assignment)", nstepDefaultN),
		Roles:       []string{"q"},
	}, func(actions int) Learner { return &nstepQ{T: NewQTable(actions), N: nstepDefaultN} })
}

// Names lists the registered learners, sorted.
func Names() []string {
	names := make([]string, 0, len(learners))
	for n := range learners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Infos lists name/description/roles for every registered learner,
// sorted by name.
func Infos() []Info {
	names := Names()
	infos := make([]Info, 0, len(names))
	for _, n := range names {
		infos = append(infos, learners[n].info)
	}
	return infos
}

// Known reports whether name is registered ("" counts: it resolves to
// the default).
func Known(name string) bool {
	if name == "" {
		return true
	}
	_, ok := learners[name]
	return ok
}

// Normalize maps the empty name to the default learner.
func Normalize(name string) string {
	if name == "" {
		return DefaultLearner
	}
	return name
}

// PrimaryRole returns the role name of a learner's primary table ("q"
// for unknown names — the legacy single-table role).
func PrimaryRole(name string) string {
	if l, ok := learners[Normalize(name)]; ok {
		return l.info.Roles[0]
	}
	return "q"
}

// New builds a fresh learner by registry name ("" = watkins) over the
// given action count.
func New(name string, actions int) (Learner, error) {
	l, ok := learners[Normalize(name)]
	if !ok {
		return nil, fmt.Errorf("learner: unknown learner %q (have: %s)", name, joinNames(Names()))
	}
	return l.factory(actions), nil
}

// Must is New for wiring that is code, not input.
func Must(name string, actions int) Learner {
	l, err := New(name, actions)
	if err != nil {
		panic(err)
	}
	return l
}

// joinNames renders a registry's names for error messages — derived
// from the live registry, so the message can never drift from the
// actual set.
func joinNames(names []string) string { return strings.Join(names, ", ") }
