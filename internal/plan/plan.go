// Package plan is the SLO-driven capacity-planning workbench: a
// declarative experiment config (an SLO plus a config grid), a run
// stage that sweeps the grid through the batch orchestrator and
// appends one JSONL result row per cell with full provenance, and an
// analyze stage that re-reads the rows, evaluates every cell against
// the SLO and names the cheapest passing configuration. The sim is
// deterministic (same seed → byte-identical output), so the workbench
// inherits a hard contract: the same plan file and seed produce
// byte-identical result rows and analysis on every run, and a resumed
// sweep (rows already on disk are skipped by config hash) converges to
// the identical final report. cmd/nextplan is the CLI.
package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"nextdvfs/internal/exp"
	"nextdvfs/internal/learner"
	"nextdvfs/internal/platform"
	"nextdvfs/internal/scenario"
)

// SLO declares the service-level objective every grid cell is judged
// against. A zero field disables that dimension — an empty SLO passes
// everything.
type SLO struct {
	// MinActiveFPS is the QoS floor: the session's active-average FPS
	// (frames users actually saw while the workload wanted them) must
	// reach it.
	MinActiveFPS float64 `json:"min_active_fps,omitempty"`
	// MaxDropRatePct is the frame-drop ceiling, in percent of all frames
	// the session dropped.
	MaxDropRatePct float64 `json:"max_drop_rate_pct,omitempty"`
	// MaxBigTempC / MaxDevTempC cap the session's peak big-cluster and
	// device-skin temperatures.
	MaxBigTempC float64 `json:"max_big_temp_c,omitempty"`
	MaxDevTempC float64 `json:"max_dev_temp_c,omitempty"`
	// MaxEnergyJ is the energy budget per session (at the plan's
	// duration scale).
	MaxEnergyJ float64 `json:"max_energy_j,omitempty"`
	// MinCheckinsPerSec is the fleet dimension: the modeled fleetd
	// serving capacity (fleetsim.EstimateCheckinsPerSec for the cell's
	// fleet size and merge cadence) must reach it.
	MinCheckinsPerSec float64 `json:"min_checkins_per_sec,omitempty"`
}

// Enforced reports whether any dimension is armed.
func (s SLO) Enforced() bool { return s != SLO{} }

// Grid declares the configuration axes. Every empty axis defaults to
// the live registry (platforms, scenarios, schemes, learners) or the
// canonical fleet shape (64 devices, merge every upload), so an empty
// grid sweeps the whole system.
type Grid struct {
	Platforms  []string `json:"platforms,omitempty"`
	Scenarios  []string `json:"scenarios,omitempty"`
	Schemes    []string `json:"schemes,omitempty"`
	Learners   []string `json:"learners,omitempty"`
	Fleets     []int    `json:"fleets,omitempty"`
	MergeEvery []int    `json:"merge_every,omitempty"`
}

// Plan is one declarative experiment: what to sweep (Grid), what to
// demand (SLO), and the knobs that size each cell's simulation.
type Plan struct {
	// Name labels result rows and reports.
	Name string `json:"name"`
	// Seed is the base seed all cell seeds derive from (0 → 1).
	Seed int64 `json:"seed,omitempty"`
	SLO  SLO   `json:"slo"`
	Grid Grid  `json:"grid"`
	// DurationScale shrinks every scenario (0 or 1 = full length);
	// smoke plans use small factors to keep wall time bounded.
	DurationScale float64 `json:"duration_scale,omitempty"`
	// TrainSessions sizes agent-scheme training (0 → 6).
	TrainSessions int `json:"train_sessions,omitempty"`
	// Explorer names the exploration strategy agent cells train with
	// ("" = egreedy).
	Explorer string `json:"explorer,omitempty"`
}

// Parse decodes and validates a plan. Unknown fields are rejected — a
// typoed axis name must fail loudly, not silently sweep the default.
func Parse(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("plan: trailing data after the plan object")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and parses a plan file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return p, nil
}

// Validate checks every axis value against its registry, rejects
// duplicate axis values (they would expand into hash-colliding cells
// and corrupt resume accounting) and sanity-checks the numeric knobs.
func (p *Plan) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("plan: missing \"name\"")
	}
	dupe := func(axis string, names []string) error {
		seen := make(map[string]bool, len(names))
		for _, n := range names {
			if seen[n] {
				return fmt.Errorf("plan: grid %s axis repeats %q", axis, n)
			}
			seen[n] = true
		}
		return nil
	}
	for _, n := range p.Grid.Platforms {
		if _, err := platform.Get(n); err != nil {
			return fmt.Errorf("plan: grid platform: %w", err)
		}
	}
	for _, n := range p.Grid.Scenarios {
		if _, err := scenario.Get(n); err != nil {
			return fmt.Errorf("plan: grid scenario: %w", err)
		}
	}
	schemes := make([]string, 0, len(p.Grid.Schemes))
	for _, n := range p.Grid.Schemes {
		spec, err := exp.GetScheme(n)
		if err != nil {
			return fmt.Errorf("plan: grid scheme: %w", err)
		}
		schemes = append(schemes, spec.Name)
	}
	learners := make([]string, 0, len(p.Grid.Learners))
	for _, n := range p.Grid.Learners {
		if !learner.Known(n) {
			return fmt.Errorf("plan: grid learner: unknown learner %q (have: %s)", n, strings.Join(learner.Names(), ", "))
		}
		learners = append(learners, learner.Normalize(n))
	}
	if err := dupe("platform", p.Grid.Platforms); err != nil {
		return err
	}
	if err := dupe("scenario", p.Grid.Scenarios); err != nil {
		return err
	}
	if err := dupe("scheme", schemes); err != nil {
		return err
	}
	if err := dupe("learner", learners); err != nil {
		return err
	}
	if !learner.KnownExplorer(p.Explorer) {
		return fmt.Errorf("plan: unknown explorer %q (have: %s)", p.Explorer, strings.Join(learner.ExplorerNames(), ", "))
	}
	fleetSeen := make(map[int]bool)
	for _, f := range p.Grid.Fleets {
		if f < 1 {
			return fmt.Errorf("plan: grid fleet size %d < 1", f)
		}
		if fleetSeen[f] {
			return fmt.Errorf("plan: grid fleet axis repeats %d", f)
		}
		fleetSeen[f] = true
	}
	mergeSeen := make(map[int]bool)
	for _, m := range p.Grid.MergeEvery {
		if m < 1 {
			return fmt.Errorf("plan: grid merge cadence %d < 1", m)
		}
		if mergeSeen[m] {
			return fmt.Errorf("plan: grid merge_every axis repeats %d", m)
		}
		mergeSeen[m] = true
	}
	if p.DurationScale < 0 {
		return fmt.Errorf("plan: negative duration_scale")
	}
	if p.TrainSessions < 0 {
		return fmt.Errorf("plan: negative train_sessions")
	}
	if p.Seed < 0 {
		return fmt.Errorf("plan: negative seed")
	}
	return nil
}

// CellConfig is one fully resolved grid cell — the unit the run stage
// executes and the config hash covers. Learner is "" for schemes that
// do not train an agent (the learner axis collapses for them: one cell
// regardless of how many learners the grid sweeps).
type CellConfig struct {
	Scenario   string  `json:"scenario"`
	Platform   string  `json:"platform"`
	Scheme     string  `json:"scheme"`
	Learner    string  `json:"learner,omitempty"`
	Explorer   string  `json:"explorer,omitempty"`
	Fleet      int     `json:"fleet"`
	MergeEvery int     `json:"merge_every"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"duration_scale,omitempty"`
	Train      int     `json:"train_sessions,omitempty"`
}

// Key is the cell's human-readable identity:
// scenario/platform/scheme/learner/f<fleet>/m<mergeEvery>.
func (c CellConfig) Key() string {
	lrn := c.Learner
	if lrn == "" {
		lrn = "-"
	}
	return fmt.Sprintf("%s/%s/%s/%s/f%d/m%d", c.Scenario, c.Platform, c.Scheme, lrn, c.Fleet, c.MergeEvery)
}

// Hash is the cell's config hash: sha256 over the canonical JSON of
// everything that determines its measurements. Two runs of the same
// plan derive identical hashes, which is what lets a resumed sweep
// skip rows already on disk.
func (c CellConfig) Hash() string {
	data, err := json.Marshal(c)
	if err != nil { // CellConfig is plain data; Marshal cannot fail
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// SimKey identifies the cell's simulation inputs — fleet size and
// merge cadence shape only the serving-capacity model, so cells
// differing only there share one simulation run.
func (c CellConfig) SimKey() string {
	return fmt.Sprintf("%s|%s|%s|%s|%d", c.Scenario, c.Platform, c.Scheme, c.Learner, c.Seed)
}

// cellSeed derives the cell's base seed the way ScenarioGrid does:
// from the (scenario, platform) pair only, so every scheme and learner
// of a pair replays the identical evaluation timeline (and their jobs
// can share one lockstep span).
func cellSeed(base int64, si, pi int) int64 {
	return base + int64(si)*100_003 + int64(pi)*1_009
}

// Cells expands the grid into resolved cell configs in canonical sweep
// order: scenario-major, then platform, scheme, learner, fleet, merge
// cadence minor. The order is part of the determinism contract — the
// run stage appends rows in this order.
func (p *Plan) Cells() []CellConfig {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	scenarios := p.Grid.Scenarios
	if len(scenarios) == 0 {
		scenarios = scenario.Names()
	}
	platforms := p.Grid.Platforms
	if len(platforms) == 0 {
		platforms = platform.Names()
	}
	schemes := p.Grid.Schemes
	if len(schemes) == 0 {
		schemes = exp.Schemes()
	}
	learners := p.Grid.Learners
	if len(learners) == 0 {
		learners = learner.Names()
	}
	fleets := p.Grid.Fleets
	if len(fleets) == 0 {
		fleets = []int{64}
	}
	merges := p.Grid.MergeEvery
	if len(merges) == 0 {
		merges = []int{1}
	}

	var cells []CellConfig
	for si, sn := range scenarios {
		for pi, pn := range platforms {
			for _, sch := range schemes {
				spec, _ := exp.GetScheme(sch) // validated
				cellLearners := []string{""}
				explorer := ""
				if spec.TrainsAgent {
					cellLearners = cellLearners[:0]
					for _, l := range learners {
						cellLearners = append(cellLearners, learner.Normalize(l))
					}
					explorer = p.Explorer
				}
				for _, lrn := range cellLearners {
					for _, fl := range fleets {
						for _, me := range merges {
							cells = append(cells, CellConfig{
								Scenario:   sn,
								Platform:   pn,
								Scheme:     spec.Name,
								Learner:    lrn,
								Explorer:   explorer,
								Fleet:      fl,
								MergeEvery: me,
								Seed:       cellSeed(seed, si, pi),
								Scale:      p.DurationScale,
								Train:      p.TrainSessions,
							})
						}
					}
				}
			}
		}
	}
	return cells
}
