package plan

import (
	"strings"
	"testing"
)

func TestParseRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"unknown field", `{"name":"x","slo":{},"grid":{},"typo":1}`, "unknown field"},
		{"trailing data", `{"name":"x"} {"again":true}`, "trailing data"},
		{"missing name", `{"grid":{}}`, `missing "name"`},
		{"unknown scheme", `{"name":"x","grid":{"schemes":["turbo"]}}`, "unknown scheme"},
		{"unknown platform", `{"name":"x","grid":{"platforms":["pixel"]}}`, "platform"},
		{"unknown scenario", `{"name":"x","grid":{"scenarios":["idle"]}}`, "scenario"},
		{"unknown learner", `{"name":"x","grid":{"learners":["dqn"]}}`, "unknown learner"},
		{"unknown explorer", `{"name":"x","explorer":"greedy"}`, "unknown explorer"},
		{"dup scheme", `{"name":"x","grid":{"schemes":["next","next"]}}`, "repeats"},
		{"dup fleet", `{"name":"x","grid":{"fleets":[64,64]}}`, "repeats"},
		{"zero fleet", `{"name":"x","grid":{"fleets":[0]}}`, "fleet size 0"},
		{"zero merge", `{"name":"x","grid":{"merge_every":[0]}}`, "merge cadence 0"},
		{"negative scale", `{"name":"x","duration_scale":-1}`, "duration_scale"},
		{"negative seed", `{"name":"x","seed":-3}`, "negative seed"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.json))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Parse err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// "" normalizes to the default learner — the duplicate check must
// catch normalized collisions, or resume accounting would see
// hash-colliding cells.
func TestParseRejectsNormalizedDuplicateLearners(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","grid":{"learners":["watkins",""]}}`))
	if err == nil || !strings.Contains(err.Error(), "repeats") {
		t.Fatalf("normalized duplicate learner err = %v, want repeats", err)
	}
}

func TestCellsCanonicalOrderAndLearnerCollapse(t *testing.T) {
	p := &Plan{
		Name: "order",
		Grid: Grid{
			Scenarios: []string{"doomscroll", "commute"},
			Platforms: []string{"note9"},
			Schemes:   []string{"schedutil", "next"},
			Learners:  []string{"watkins", "sarsa"},
			Fleets:    []int{64, 1000},
		},
		TrainSessions: 1,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := p.Cells()
	// Per scenario: schedutil collapses the learner axis (1) + next keeps
	// it (2) = 3 sim configs × 2 fleets = 6 cells; × 2 scenarios = 12.
	if len(cells) != 12 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	if cells[0].Key() != "doomscroll/note9/schedutil/-/f64/m1" {
		t.Fatalf("first cell %q, want doomscroll/note9/schedutil/-/f64/m1", cells[0].Key())
	}
	if cells[6].Scenario != "commute" {
		t.Fatalf("cell 6 scenario %q, want commute (scenario-major order)", cells[6].Scenario)
	}
	for _, c := range cells {
		if c.Scheme == "schedutil" && c.Learner != "" {
			t.Fatalf("governor cell kept learner %q", c.Learner)
		}
		if c.Scheme == "next" && c.Learner == "" {
			t.Fatal("agent cell lost its learner")
		}
	}
	// Fleet axis must not perturb the sim identity or the seed.
	if cells[0].SimKey() != cells[1].SimKey() {
		t.Fatalf("fleet changed SimKey: %q vs %q", cells[0].SimKey(), cells[1].SimKey())
	}
	if cells[0].Hash() == cells[1].Hash() {
		t.Fatal("fleet did not change config hash")
	}
	// Scenario index moves the seed the way ScenarioGrid derives it.
	if want := cells[0].Seed + 100_003; cells[6].Seed != want {
		t.Fatalf("commute seed %d, want %d", cells[6].Seed, want)
	}
}

func testRow(key string, energy, fps float64) Row {
	return Row{Key: key, Hash: key, EnergyJ: energy, ActiveFPS: fps}
}

func TestSLOViolationsFixedOrder(t *testing.T) {
	s := SLO{MinActiveFPS: 30, MaxDropRatePct: 1, MaxBigTempC: 70, MaxEnergyJ: 40, MinCheckinsPerSec: 500}
	r := Row{ActiveFPS: 28.42, DropRatePct: 2.5, PeakTempBigC: 75.1, EnergyJ: 52.06, CheckinsPerSec: 222}
	got := s.Violations(r)
	want := []string{
		"active_fps 28.4 < floor 30",
		"drop_rate_pct 2.5 > ceiling 1",
		"big_temp_c 75.1 > ceiling 70",
		"energy_j 52.1 > budget 40",
		"checkins_per_sec 222.0 < floor 500",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d violations %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("violation[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if v := (SLO{}).Violations(r); v != nil {
		t.Fatalf("empty SLO produced violations %v", v)
	}
}

// Analyze must behave sensibly at the edges the CLI can hit: no rows
// at all, an SLO nothing passes, and exact energy ties.
func TestAnalyzeEdges(t *testing.T) {
	p := &Plan{
		Name: "edge",
		Grid: Grid{
			Scenarios: []string{"doomscroll"},
			Platforms: []string{"note9"},
			Schemes:   []string{"schedutil", "powersave"},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := p.Cells()

	t.Run("no rows", func(t *testing.T) {
		a := Analyze(p, nil)
		if a.Rows != 0 || a.Pass != 0 || a.Fail != 0 || a.Cheapest != nil {
			t.Fatalf("empty analysis off: %+v", a)
		}
		if len(a.Missing) != len(cells) || a.Missing[0] != cells[0].Key() {
			t.Fatalf("missing = %v, want every cell key", a.Missing)
		}
	})

	rows := []Row{
		{Key: cells[0].Key(), Hash: cells[0].Hash(), EnergyJ: 50, ActiveFPS: 55},
		{Key: cells[1].Key(), Hash: cells[1].Hash(), EnergyJ: 20, ActiveFPS: 12},
	}

	t.Run("no passing cell", func(t *testing.T) {
		p.SLO = SLO{MinActiveFPS: 60}
		a := Analyze(p, rows)
		if a.Pass != 0 || a.Fail != 2 || a.Cheapest != nil {
			t.Fatalf("want 0 pass / 2 fail / nil cheapest, got %d/%d/%v", a.Pass, a.Fail, a.Cheapest)
		}
		var b strings.Builder
		a.WriteText(&b)
		if !strings.Contains(b.String(), "cheapest passing: none") {
			t.Fatalf("report missing the none line:\n%s", b.String())
		}
	})

	t.Run("energy tie deterministic", func(t *testing.T) {
		p.SLO = SLO{}
		tied := []Row{
			{Key: cells[0].Key(), Hash: cells[0].Hash(), EnergyJ: 30, ActiveFPS: 40},
			{Key: cells[1].Key(), Hash: cells[1].Hash(), EnergyJ: 30, ActiveFPS: 40},
		}
		// Same energy, same QoS: the lexicographically smaller key wins,
		// regardless of row order.
		wantKey := cells[1].Key() // powersave sorts before schedutil
		if cells[0].Key() < cells[1].Key() {
			wantKey = cells[0].Key()
		}
		for _, order := range [][]Row{tied, {tied[1], tied[0]}} {
			a := Analyze(p, order)
			if a.Cheapest == nil || a.Cheapest.Row.Key != wantKey {
				t.Fatalf("tie broke to %+v, want key %q", a.Cheapest, wantKey)
			}
		}
		// A QoS edge breaks the tie before the key does.
		tied[0].ActiveFPS = 41
		a := Analyze(p, tied)
		if a.Cheapest.Row.Key != tied[0].Key {
			t.Fatalf("QoS tiebreak picked %q, want %q", a.Cheapest.Row.Key, tied[0].Key)
		}
	})

	t.Run("stale and duplicate rows", func(t *testing.T) {
		p.SLO = SLO{}
		withJunk := append([]Row{
			{Key: "foreign", Hash: "deadbeef", EnergyJ: 1},
			rows[0], // duplicate of the row below
		}, rows...)
		a := Analyze(p, withJunk)
		if a.Stale != 2 || a.Rows != 2 {
			t.Fatalf("stale=%d rows=%d, want 2 and 2", a.Stale, a.Rows)
		}
	})
}

func TestSensitivityCountsFlips(t *testing.T) {
	p := &Plan{
		Name: "sens",
		Grid: Grid{
			Scenarios: []string{"doomscroll"},
			Platforms: []string{"note9"},
			Schemes:   []string{"schedutil", "powersave"},
			Fleets:    []int{64, 1000},
		},
		SLO: SLO{MinActiveFPS: 30, MinCheckinsPerSec: 500},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cells := p.Cells()
	rows := make([]Row, len(cells))
	for i, c := range cells {
		fps := 55.0
		if c.Scheme == "powersave" {
			fps = 12 // powersave always fails QoS
		}
		chk := 1265.0
		if c.Fleet == 1000 {
			chk = 222 // f1000 always fails the checkins floor
		}
		rows[i] = Row{Key: c.Key(), Hash: c.Hash(), ActiveFPS: fps, CheckinsPerSec: chk, EnergyJ: 10}
	}
	a := Analyze(p, rows)
	if a.Pass != 1 {
		t.Fatalf("pass = %d, want exactly schedutil/f64", a.Pass)
	}
	bySens := make(map[string]AxisSensitivity)
	for _, s := range a.Sensitivity {
		bySens[s.Axis] = s
	}
	// Single-valued axes must be absent.
	if _, ok := bySens["scenario"]; ok {
		t.Fatal("single-valued scenario axis reported")
	}
	// Scheme pairs: (schedutil,powersave) at each fleet. At f64 the pair
	// flips (pass vs fail); at f1000 both fail.
	if s := bySens["scheme"]; s.Pairs != 2 || s.Flips != 1 {
		t.Fatalf("scheme sensitivity %+v, want 1/2", s)
	}
	if s := bySens["fleet"]; s.Pairs != 2 || s.Flips != 1 {
		t.Fatalf("fleet sensitivity %+v, want 1/2", s)
	}
}
