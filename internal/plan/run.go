package plan

import (
	"fmt"
	"os"

	"nextdvfs/internal/batch"
	"nextdvfs/internal/exp"
	"nextdvfs/internal/fleetsim"
	"nextdvfs/internal/sim"
)

// RunOptions tunes the sweep; the zero value resumes into resultsPath
// at GOMAXPROCS parallelism with scalar engines.
type RunOptions struct {
	// Parallel sizes the batch worker pool (0 = GOMAXPROCS, 1 =
	// sequential). Results are byte-identical at any worker count.
	Parallel int
	// Lockstep routes the cells of each (scenario, platform) pair
	// through one sim.BatchEngine. Purely a throughput knob — lanes are
	// pinned bit-identical to scalar engines.
	Lockstep bool
	// Fresh truncates an existing result file instead of resuming into
	// it.
	Fresh bool
	// Provenance overrides the detected git/host stamp (tests pin it).
	Provenance *Provenance
}

// RunReport summarizes one sweep invocation.
type RunReport struct {
	// Cells is the grid size; Ran were executed this invocation,
	// Skipped were already on disk (matched by config hash), Stale rows
	// in the file match no grid cell (a stale or foreign result file).
	Cells   int
	Ran     int
	Skipped int
	Stale   int
}

// Run sweeps the plan's grid, appending one result row per cell to
// resultsPath in canonical cell order. Rows already in the file are
// skipped by config hash, so re-running a finished sweep is a no-op
// and re-running an interrupted one converges on the same bytes an
// uninterrupted sweep produces. Cells differing only in fleet size or
// merge cadence share one simulation — those axes shape only the
// deterministic serving-capacity model.
func Run(p *Plan, resultsPath string, opts RunOptions) (RunReport, error) {
	if err := p.Validate(); err != nil {
		return RunReport{}, err
	}
	if opts.Fresh {
		if err := os.Remove(resultsPath); err != nil && !os.IsNotExist(err) {
			return RunReport{}, fmt.Errorf("plan: %w", err)
		}
	}
	cells := p.Cells()
	report := RunReport{Cells: len(cells)}

	existing, err := ReadRows(resultsPath)
	if err != nil {
		return report, err
	}
	inGrid := make(map[string]bool, len(cells))
	for _, c := range cells {
		inGrid[c.Hash()] = true
	}
	done := make(map[string]bool, len(existing))
	for _, r := range existing {
		if !inGrid[r.Hash] {
			report.Stale++
			continue
		}
		done[r.Hash] = true
	}

	// The pending cells' unique simulations, in first-appearance order
	// (canonical cell order keeps each (scenario, platform) pair's jobs
	// consecutive, so lockstep spans form naturally).
	var pending []CellConfig
	simIndex := make(map[string]int)
	var jobs []batch.Job
	for _, c := range cells {
		if done[c.Hash()] {
			report.Skipped++
			continue
		}
		pending = append(pending, c)
		key := c.SimKey()
		if _, ok := simIndex[key]; ok {
			continue
		}
		ec := exp.Cell{
			Scenario:      c.Scenario,
			Platform:      c.Platform,
			Scheme:        c.Scheme,
			Learner:       c.Learner,
			Explorer:      c.Explorer,
			Seed:          c.Seed,
			TrainSessions: c.Train,
			DurationScale: c.Scale,
		}
		lockstepKey := ""
		if opts.Lockstep {
			lockstepKey = fmt.Sprintf("plan|%s|%s|%d", c.Scenario, c.Platform, c.Seed)
		}
		job, err := ec.Job(lockstepKey)
		if err != nil {
			return report, fmt.Errorf("plan: cell %s: %w", c.Key(), err)
		}
		simIndex[key] = len(jobs)
		jobs = append(jobs, job)
	}
	if len(pending) == 0 {
		return report, nil
	}

	results := batch.Run(jobs, batch.Options{Parallel: opts.Parallel})
	for _, r := range results {
		if r.Err != "" {
			return report, fmt.Errorf("plan: cell %s/%s/%s: %s", r.App, r.Platform, r.Scheme, r.Err)
		}
	}

	prov := DetectProvenance()
	if opts.Provenance != nil {
		prov = *opts.Provenance
	}
	rows := make([]Row, 0, len(pending))
	for _, c := range pending {
		res := results[simIndex[c.SimKey()]].Result
		rows = append(rows, makeRow(p.Name, c, res, prov))
	}
	if err := AppendRows(resultsPath, rows); err != nil {
		return report, err
	}
	report.Ran = len(rows)
	return report, nil
}

// makeRow folds one cell's simulation result and modeled fleet
// capacity into its result row.
func makeRow(planName string, c CellConfig, res sim.Result, prov Provenance) Row {
	return Row{
		Plan:           planName,
		Key:            c.Key(),
		Hash:           c.Hash(),
		Scenario:       c.Scenario,
		Platform:       c.Platform,
		Scheme:         c.Scheme,
		Learner:        c.Learner,
		Fleet:          c.Fleet,
		MergeEvery:     c.MergeEvery,
		Seed:           c.Seed,
		SimS:           res.DurationS,
		EnergyJ:        res.EnergyJ,
		AvgPowerW:      res.AvgPowerW,
		PeakPowerW:     res.PeakPowerW,
		PeakTempBigC:   res.PeakTempBigC,
		PeakTempDevC:   res.PeakTempDevC,
		ActiveFPS:      res.ActiveAvgFPS,
		DropRatePct:    res.DropRate() * 100,
		CheckinsPerSec: fleetsim.EstimateCheckinsPerSec(c.Fleet, c.MergeEvery),
		Git:            prov.Git,
		Host:           prov.Host,
	}
}
