package plan

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

var testProv = &Provenance{Git: "test", Host: "test"}

func testPlan() *Plan {
	return &Plan{
		Name: "unit",
		Seed: 7,
		Grid: Grid{
			Scenarios: []string{"doomscroll"},
			Platforms: []string{"note9"},
			Schemes:   []string{"schedutil", "powersave"},
			Fleets:    []int{64, 1000},
		},
		SLO:           SLO{MinActiveFPS: 20, MaxDropRatePct: 5, MinCheckinsPerSec: 500},
		DurationScale: 0.01,
	}
}

func runInto(t *testing.T, path string, opts RunOptions) RunReport {
	t.Helper()
	opts.Provenance = testProv
	rep, err := Run(testPlan(), path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The core contract: the same plan and seed produce byte-identical
// result files on every run, at any parallelism, with or without
// lockstep batching.
func TestRunByteDeterminism(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "a.jsonl")
	rep := runInto(t, base, RunOptions{Parallel: 1})
	if rep.Cells != 4 || rep.Ran != 4 || rep.Skipped != 0 {
		t.Fatalf("first run report %+v, want 4 cells all ran", rep)
	}
	want := readFile(t, base)

	variants := map[string]RunOptions{
		"serial again": {Parallel: 1},
		"parallel":     {Parallel: 4},
		"lockstep":     {Parallel: 2, Lockstep: true},
	}
	for name, opts := range variants {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "_")+".jsonl")
		runInto(t, path, opts)
		if got := readFile(t, path); !bytes.Equal(got, want) {
			t.Errorf("%s: result file differs from the serial baseline", name)
		}
	}
}

// Re-running a finished sweep is a no-op, and resuming a truncated one
// appends exactly the missing rows: truncating the tail converges back
// to the identical bytes, and removing a middle row converges to the
// identical analysis.
func TestRunResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.jsonl")
	runInto(t, path, RunOptions{})
	want := readFile(t, path)

	rep := runInto(t, path, RunOptions{})
	if rep.Ran != 0 || rep.Skipped != 4 {
		t.Fatalf("re-run report %+v, want everything skipped", rep)
	}
	if got := readFile(t, path); !bytes.Equal(got, want) {
		t.Fatal("no-op re-run changed the file")
	}

	lines := bytes.Split(bytes.TrimSuffix(want, []byte("\n")), []byte("\n"))

	// Drop the last row: resume must append it back, byte-identical.
	truncated := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}
	rep = runInto(t, path, RunOptions{})
	if rep.Ran != 1 || rep.Skipped != 3 {
		t.Fatalf("resume report %+v, want 1 ran / 3 skipped", rep)
	}
	if got := readFile(t, path); !bytes.Equal(got, want) {
		t.Fatal("tail-truncated resume did not converge to the original bytes")
	}

	// Drop a middle row: the file order differs after resume, but the
	// analysis must be identical (analyze orders by canonical cell).
	middle := append(bytes.Join(append(append([][]byte{}, lines[0]), lines[2:]...), []byte("\n")), '\n')
	if err := os.WriteFile(path, middle, 0o644); err != nil {
		t.Fatal(err)
	}
	runInto(t, path, RunOptions{})
	rows, err := ReadRows(path)
	if err != nil {
		t.Fatal(err)
	}
	full := filepath.Join(dir, "full.jsonl")
	if err := os.WriteFile(full, want, 0o644); err != nil {
		t.Fatal(err)
	}
	fullRows, err := ReadRows(full)
	if err != nil {
		t.Fatal(err)
	}
	p := testPlan()
	got, _ := json.MarshalIndent(Analyze(p, rows), "", "  ")
	ref, _ := json.MarshalIndent(Analyze(p, fullRows), "", "  ")
	if !bytes.Equal(got, ref) {
		t.Fatalf("analysis after middle-row resume differs:\n%s\n--- want ---\n%s", got, ref)
	}

	// Fresh discards the file and re-runs everything.
	rep = runInto(t, path, RunOptions{Fresh: true})
	if rep.Ran != 4 || rep.Skipped != 0 {
		t.Fatalf("fresh report %+v, want everything ran", rep)
	}
	if gotB := readFile(t, path); !bytes.Equal(gotB, want) {
		t.Fatal("fresh re-run diverged")
	}
}

// Rows from a different plan (stale hashes) are left alone and
// reported, never silently mixed into the sweep.
func TestRunCountsStaleRows(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.jsonl")
	if err := AppendRows(path, []Row{{Plan: "other", Key: "x", Hash: "feedface"}}); err != nil {
		t.Fatal(err)
	}
	rep := runInto(t, path, RunOptions{})
	if rep.Stale != 1 || rep.Ran != 4 {
		t.Fatalf("report %+v, want 1 stale / 4 ran", rep)
	}
}

func TestReadRowsRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"hash\":\"ok\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRows(bad); err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("corrupt line error = %v, want line 2 flagged", err)
	}
	nohash := filepath.Join(dir, "nohash.jsonl")
	if err := os.WriteFile(nohash, []byte("{\"plan\":\"x\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRows(nohash); err == nil || !strings.Contains(err.Error(), "config hash") {
		t.Fatalf("missing-hash error = %v", err)
	}
	if rows, err := ReadRows(filepath.Join(dir, "absent.jsonl")); err != nil || rows != nil {
		t.Fatalf("missing file = (%v, %v), want (nil, nil)", rows, err)
	}
}

// The full-pipeline golden: sweep the unit plan, analyze, and pin the
// text report byte-for-byte. Regenerate with -update when the format
// changes deliberately.
func TestAnalyzeGolden(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.jsonl")
	runInto(t, path, RunOptions{})
	rows, err := ReadRows(path)
	if err != nil {
		t.Fatal(err)
	}
	p := testPlan()
	a := Analyze(p, rows)

	var b bytes.Buffer
	a.WriteText(&b)
	golden := filepath.Join("testdata", "analysis.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("analysis text drifted from golden:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}

	// The machine form must single out a cheapest cell and at least one
	// failing cell with a named dimension — the acceptance criteria for
	// the workbench.
	if a.Cheapest == nil {
		t.Fatal("no cheapest passing cell in the unit plan")
	}
	if a.Fail == 0 {
		t.Fatal("unit plan has no failing cell to demonstrate")
	}
	var sawViolation bool
	for _, o := range a.Outcomes {
		if !o.Pass && len(o.Violations) > 0 {
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Fatal("failing cells carry no violation strings")
	}
}
