package plan

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Violations evaluates one row against the SLO and returns the broken
// dimensions in fixed declaration order (QoS, drops, temperatures,
// energy, fleet capacity) — empty means the cell passes. The strings
// are part of the pinned report format.
func (s SLO) Violations(r Row) []string {
	var v []string
	if s.MinActiveFPS > 0 && r.ActiveFPS < s.MinActiveFPS {
		v = append(v, fmt.Sprintf("active_fps %.1f < floor %g", r.ActiveFPS, s.MinActiveFPS))
	}
	if s.MaxDropRatePct > 0 && r.DropRatePct > s.MaxDropRatePct {
		v = append(v, fmt.Sprintf("drop_rate_pct %.1f > ceiling %g", r.DropRatePct, s.MaxDropRatePct))
	}
	if s.MaxBigTempC > 0 && r.PeakTempBigC > s.MaxBigTempC {
		v = append(v, fmt.Sprintf("big_temp_c %.1f > ceiling %g", r.PeakTempBigC, s.MaxBigTempC))
	}
	if s.MaxDevTempC > 0 && r.PeakTempDevC > s.MaxDevTempC {
		v = append(v, fmt.Sprintf("dev_temp_c %.1f > ceiling %g", r.PeakTempDevC, s.MaxDevTempC))
	}
	if s.MaxEnergyJ > 0 && r.EnergyJ > s.MaxEnergyJ {
		v = append(v, fmt.Sprintf("energy_j %.1f > budget %g", r.EnergyJ, s.MaxEnergyJ))
	}
	if s.MinCheckinsPerSec > 0 && r.CheckinsPerSec < s.MinCheckinsPerSec {
		v = append(v, fmt.Sprintf("checkins_per_sec %.1f < floor %g", r.CheckinsPerSec, s.MinCheckinsPerSec))
	}
	return v
}

// CellOutcome is one analyzed cell: its row plus the SLO verdict.
type CellOutcome struct {
	Row        Row      `json:"row"`
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

// AxisValue is one axis value's pass count across the analyzed cells.
type AxisValue struct {
	Value string `json:"value"`
	Pass  int    `json:"pass"`
	Cells int    `json:"cells"`
}

// AxisSensitivity reports how much one grid axis matters: of the
// neighbor pairs (cells identical on every other axis), how many flip
// between pass and fail when only this axis changes.
type AxisSensitivity struct {
	Axis string `json:"axis"`
	// Flips / Pairs count neighbor pairs with opposite verdicts.
	Flips int `json:"flips"`
	Pairs int `json:"pairs"`
	// Values lists per-value pass counts in grid order.
	Values []AxisValue `json:"values"`
}

// Analysis is the analyze stage's output: every cell judged against
// the SLO, the cheapest passing configuration, and per-axis
// sensitivity. Deterministic field order and sorting make the
// marshaled form byte-reproducible.
type Analysis struct {
	Plan string `json:"plan"`
	// Cells is the grid size; Rows how many grid cells had a result row.
	Cells int `json:"cells"`
	Rows  int `json:"rows"`
	// Stale counts file rows matching no grid cell (ignored).
	Stale int `json:"stale_rows,omitempty"`
	// Missing lists grid cells with no row, in canonical order — a
	// half-finished sweep announces itself here.
	Missing []string `json:"missing,omitempty"`
	Pass    int      `json:"pass"`
	Fail    int      `json:"fail"`
	// Cheapest is the passing cell with the lowest energy (ties broken
	// by higher QoS, then lexicographic key — fully deterministic); nil
	// when nothing passes.
	Cheapest    *CellOutcome      `json:"cheapest,omitempty"`
	Outcomes    []CellOutcome     `json:"outcomes"`
	Sensitivity []AxisSensitivity `json:"sensitivity,omitempty"`
}

// Analyze judges every result row against the plan's SLO. Rows are
// matched to grid cells by config hash, outcomes land in canonical
// cell order regardless of row order in the file (a resumed sweep may
// interleave), and duplicate rows for one cell keep the first.
func Analyze(p *Plan, rows []Row) *Analysis {
	cells := p.Cells()
	a := &Analysis{Plan: p.Name, Cells: len(cells)}

	byHash := make(map[string]Row, len(rows))
	inGrid := make(map[string]bool, len(cells))
	for _, c := range cells {
		inGrid[c.Hash()] = true
	}
	for _, r := range rows {
		if !inGrid[r.Hash] {
			a.Stale++
			continue
		}
		if _, dup := byHash[r.Hash]; dup {
			a.Stale++
			continue
		}
		byHash[r.Hash] = r
	}

	var analyzed []CellConfig
	for _, c := range cells {
		r, ok := byHash[c.Hash()]
		if !ok {
			a.Missing = append(a.Missing, c.Key())
			continue
		}
		v := p.SLO.Violations(r)
		out := CellOutcome{Row: r, Pass: len(v) == 0, Violations: v}
		a.Outcomes = append(a.Outcomes, out)
		analyzed = append(analyzed, c)
		a.Rows++
		if out.Pass {
			a.Pass++
		} else {
			a.Fail++
		}
	}

	for i := range a.Outcomes {
		o := &a.Outcomes[i]
		if !o.Pass {
			continue
		}
		if a.Cheapest == nil || cheaper(o, a.Cheapest) {
			a.Cheapest = o
		}
	}
	a.Sensitivity = sensitivity(analyzed, a.Outcomes)
	return a
}

// cheaper orders passing cells energy-first, QoS (active FPS) second,
// lexicographic key last, so the cheapest cell is unique even among
// exact measurement ties.
func cheaper(x, y *CellOutcome) bool {
	if x.Row.EnergyJ != y.Row.EnergyJ {
		return x.Row.EnergyJ < y.Row.EnergyJ
	}
	if x.Row.ActiveFPS != y.Row.ActiveFPS {
		return x.Row.ActiveFPS > y.Row.ActiveFPS
	}
	return x.Row.Key < y.Row.Key
}

// axes enumerate the sensitivity dimensions in report order, with a
// string projection of each cell's value.
var axes = []struct {
	name string
	of   func(CellConfig) string
}{
	{"scenario", func(c CellConfig) string { return c.Scenario }},
	{"platform", func(c CellConfig) string { return c.Platform }},
	{"scheme", func(c CellConfig) string { return c.Scheme }},
	{"learner", func(c CellConfig) string {
		if c.Learner == "" {
			return "-"
		}
		return c.Learner
	}},
	{"fleet", func(c CellConfig) string { return strconv.Itoa(c.Fleet) }},
	{"merge_every", func(c CellConfig) string { return strconv.Itoa(c.MergeEvery) }},
}

// sensitivity computes per-axis flip counts over the analyzed cells.
// Axes with fewer than two distinct values are omitted — a knob that
// never moves cannot flip anything.
func sensitivity(cells []CellConfig, outcomes []CellOutcome) []AxisSensitivity {
	var out []AxisSensitivity
	for _, ax := range axes {
		// Per-value pass counts, values in first-appearance (grid) order.
		var order []string
		stats := make(map[string]*AxisValue)
		for i, c := range cells {
			v := ax.of(c)
			s, ok := stats[v]
			if !ok {
				s = &AxisValue{Value: v}
				stats[v] = s
				order = append(order, v)
			}
			s.Cells++
			if outcomes[i].Pass {
				s.Pass++
			}
		}
		if len(order) < 2 {
			continue
		}
		s := AxisSensitivity{Axis: ax.name}
		for _, v := range order {
			s.Values = append(s.Values, *stats[v])
		}
		// Neighbor pairs: identical on every other axis.
		for i := 0; i < len(cells); i++ {
			for j := i + 1; j < len(cells); j++ {
				if !neighbors(cells[i], cells[j], ax.name) {
					continue
				}
				s.Pairs++
				if outcomes[i].Pass != outcomes[j].Pass {
					s.Flips++
				}
			}
		}
		if s.Pairs == 0 {
			// No two analyzed cells differ only here (e.g. the learner
			// axis when governor cells project "-"): nothing to report.
			continue
		}
		out = append(out, s)
	}
	return out
}

// neighbors reports whether two cells differ only on the named axis.
func neighbors(a, b CellConfig, axis string) bool {
	for _, ax := range axes {
		va, vb := ax.of(a), ax.of(b)
		if ax.name == axis {
			if va == vb {
				return false
			}
			continue
		}
		if va != vb {
			return false
		}
	}
	return true
}

// WriteText renders the analysis as the human-readable report
// cmd/nextplan analyze prints — the golden test pins this format, so
// change it deliberately.
func (a *Analysis) WriteText(w io.Writer) {
	fmt.Fprintf(w, "plan %s: %d cells, %d rows, %d pass / %d fail\n", a.Plan, a.Cells, a.Rows, a.Pass, a.Fail)
	if a.Stale > 0 {
		fmt.Fprintf(w, "ignored %d stale row(s) matching no grid cell\n", a.Stale)
	}
	if len(a.Missing) > 0 {
		fmt.Fprintf(w, "incomplete sweep: %d cell(s) have no result row: %s\n", len(a.Missing), strings.Join(a.Missing, ", "))
	}
	if len(a.Outcomes) > 0 {
		fmt.Fprintf(w, "\n%-44s %10s %7s %6s %8s %8s %9s  %s\n",
			"cell", "energy(J)", "actFPS", "drop%", "bigPk°C", "devPk°C", "chk/s", "SLO")
		for _, o := range a.Outcomes {
			verdict := "pass"
			if !o.Pass {
				verdict = "FAIL " + strings.Join(o.Violations, "; ")
			}
			fmt.Fprintf(w, "%-44s %10.2f %7.1f %6.2f %8.1f %8.1f %9.1f  %s\n",
				o.Row.Key, o.Row.EnergyJ, o.Row.ActiveFPS, o.Row.DropRatePct,
				o.Row.PeakTempBigC, o.Row.PeakTempDevC, o.Row.CheckinsPerSec, verdict)
		}
	}
	fmt.Fprintln(w)
	if a.Cheapest != nil {
		fmt.Fprintf(w, "cheapest passing: %s (energy %.2f J, active FPS %.1f, %.1f checkins/s)\n",
			a.Cheapest.Row.Key, a.Cheapest.Row.EnergyJ, a.Cheapest.Row.ActiveFPS, a.Cheapest.Row.CheckinsPerSec)
	} else {
		fmt.Fprintf(w, "cheapest passing: none — no configuration meets the SLO\n")
	}
	if len(a.Sensitivity) > 0 {
		fmt.Fprintf(w, "\nsensitivity (pass↔fail flips when only that axis changes):\n")
		for _, s := range a.Sensitivity {
			var vals []string
			for _, v := range s.Values {
				vals = append(vals, fmt.Sprintf("%s %d/%d", v.Value, v.Pass, v.Cells))
			}
			fmt.Fprintf(w, "  %-12s %d/%d pairs flip   %s\n", s.Axis, s.Flips, s.Pairs, strings.Join(vals, ", "))
		}
	}
}
