package plan

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
)

// Row is one cell's measurements plus full provenance — one JSON line
// of the append-only result file. Every field is deterministic for a
// given plan file, seed, host and commit: wall-clock timings are
// deliberately absent (the fleet dimension is the modeled
// fleetsim.EstimateCheckinsPerSec capacity, not a timed run), which is
// what lets CI cmp two sweeps byte-for-byte.
type Row struct {
	Plan string `json:"plan"`
	Key  string `json:"key"`
	Hash string `json:"hash"`

	Scenario   string `json:"scenario"`
	Platform   string `json:"platform"`
	Scheme     string `json:"scheme"`
	Learner    string `json:"learner,omitempty"`
	Fleet      int    `json:"fleet"`
	MergeEvery int    `json:"merge_every"`
	Seed       int64  `json:"seed"`

	SimS           float64 `json:"sim_s"`
	EnergyJ        float64 `json:"energy_j"`
	AvgPowerW      float64 `json:"avg_power_w"`
	PeakPowerW     float64 `json:"peak_power_w"`
	PeakTempBigC   float64 `json:"peak_temp_big_c"`
	PeakTempDevC   float64 `json:"peak_temp_dev_c"`
	ActiveFPS      float64 `json:"active_fps"`
	DropRatePct    float64 `json:"drop_rate_pct"`
	CheckinsPerSec float64 `json:"checkins_per_sec"`

	// Git and Host document where the row was produced; they are stable
	// within one host+commit, so determinism cmp's still hold.
	Git  string `json:"git"`
	Host string `json:"host"`
}

// ReadRows parses a result file (every line one Row). A missing file
// is zero rows — the resume path starts from nothing. A malformed line
// is an error: a corrupted result store must fail the sweep loudly,
// not silently re-run cells.
func ReadRows(path string) ([]Row, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	defer f.Close()
	var rows []Row
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var r Row
		if err := json.Unmarshal([]byte(text), &r); err != nil {
			return nil, fmt.Errorf("plan: %s:%d: %w", path, line, err)
		}
		if r.Hash == "" {
			return nil, fmt.Errorf("plan: %s:%d: row missing config hash", path, line)
		}
		rows = append(rows, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("plan: %s: %w", path, err)
	}
	return rows, nil
}

// AppendRows appends rows to the result file as JSONL, creating it if
// needed. Rows are flushed in order; the file is append-only by
// contract (resume reads it back and skips completed hashes).
func AppendRows(path string, rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("plan: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, r := range rows {
		data, err := json.Marshal(r)
		if err != nil {
			f.Close()
			return fmt.Errorf("plan: %w", err)
		}
		w.Write(data)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("plan: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("plan: %w", err)
	}
	return nil
}

// Provenance describes where rows are produced: the git commit (via
// `git describe --always --dirty`, "unknown" when git or the repo is
// unavailable) and the hostname. Both are stable across consecutive
// runs on one checkout, so they never break the determinism cmp.
type Provenance struct {
	Git  string
	Host string
}

// DetectProvenance shells out once per sweep; failures degrade to
// "unknown" rather than failing the run.
func DetectProvenance() Provenance {
	p := Provenance{Git: "unknown", Host: "unknown"}
	if host, err := os.Hostname(); err == nil && host != "" {
		p.Host = host
	}
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err == nil {
		if desc := strings.TrimSpace(string(out)); desc != "" {
			p.Git = desc
		}
	}
	return p
}
