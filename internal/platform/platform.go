// Package platform extracts the hardware description out of the
// simulator: a Platform bundles the factories for everything that makes
// one handset (chip, power model, thermal network, device sensor, panel
// refresh) behind a name-indexed registry. The simulator stays a pure
// integrator; experiments and CLIs pick hardware by name and can sweep
// the same workload across heterogeneous devices — the direction the
// energy-aware online-learning literature (Mandal et al.) evaluates and
// the paper's single Note 9 setup leaves open.
package platform

import (
	"fmt"

	"nextdvfs/internal/display"
	"nextdvfs/internal/governor"
	"nextdvfs/internal/power"
	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/soc"
	"nextdvfs/internal/thermal"
)

// Platform describes one simulated handset. Every field that builds
// mutable simulation state is a factory: two engines running the same
// Platform concurrently must never share a chip, model or pipeline, so
// Config calls each factory fresh per run.
type Platform struct {
	// Name is the registry key (e.g. "note9", "sd855-120hz").
	Name string
	// Description is a one-line human summary for CLI listings.
	Description string
	// RefreshHz is the panel refresh rate (60 on the paper's Note 9).
	RefreshHz int
	// AmbientC is the evaluation ambient (the paper controls 21 °C).
	AmbientC float64

	// NewChip builds the DVFS cluster set.
	NewChip func() *soc.Chip
	// NewPower builds the cluster power model.
	NewPower func() *power.Model
	// NewThermal builds the thermal RC network at the given ambient.
	NewThermal func(ambientC float64) *thermal.Model
	// NewDevSensor builds the virtual device-temperature sensor over the
	// thermal network.
	NewDevSensor func(*thermal.Model) *thermal.VirtualSensor
	// NewGovernor builds the stock DVFS governor (schedutil everywhere
	// Android ships).
	NewGovernor func() governor.Governor
}

// Validate reports missing factories — a registered platform must be
// able to build a complete sim.Config.
func (p Platform) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("platform: missing name")
	case p.RefreshHz <= 0:
		return fmt.Errorf("platform %q: refresh rate must be positive", p.Name)
	case p.NewChip == nil:
		return fmt.Errorf("platform %q: missing chip factory", p.Name)
	case p.NewPower == nil:
		return fmt.Errorf("platform %q: missing power-model factory", p.Name)
	case p.NewThermal == nil:
		return fmt.Errorf("platform %q: missing thermal-model factory", p.Name)
	case p.NewDevSensor == nil:
		return fmt.Errorf("platform %q: missing device-sensor factory", p.Name)
	case p.NewGovernor == nil:
		return fmt.Errorf("platform %q: missing governor factory", p.Name)
	}
	return nil
}

// Config assembles a ready-to-run simulation of this platform: fresh
// chip, models and pipeline (safe to call from concurrent workers), the
// caller's timeline and seed, stock governor. Callers then swap the
// governor or attach a controller exactly as with sim.Note9Config.
func (p Platform) Config(tl *session.Timeline, seed int64) sim.Config {
	th := p.NewThermal(p.AmbientC)
	return sim.Config{
		Chip:     p.NewChip(),
		Power:    p.NewPower(),
		Thermal:  th,
		DevSense: p.NewDevSensor(th),
		Display:  display.NewPipeline(p.RefreshHz),
		Timeline: tl,
		Governor: p.NewGovernor(),
		Seed:     seed,
	}
}

// WithRefresh returns a copy of the platform with a different panel,
// named "<base>-<hz>hz". The chip, power and thermal factories are
// shared (factories are pure), so the variant costs nothing to derive —
// how the 90/120 Hz registry entries are built, and how experiments
// sweep panels on any base platform.
func (p Platform) WithRefresh(hz int) Platform {
	v := p
	v.RefreshHz = hz
	v.Name = fmt.Sprintf("%s-%dhz", p.Name, hz)
	v.Description = fmt.Sprintf("%s (%d Hz panel variant)", p.Description, hz)
	return v
}
