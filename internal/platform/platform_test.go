package platform

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"nextdvfs/internal/session"
	"nextdvfs/internal/sim"
	"nextdvfs/internal/workload"
)

func evalTimeline(seed int64) *session.Timeline {
	return session.EvalTimeline(workload.Spotify(), rand.New(rand.NewSource(seed)))
}

func runConfig(t *testing.T, cfg sim.Config) sim.Result {
	t.Helper()
	eng, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng.Run()
}

// The note9 registry entry must reproduce sim.Note9Config exactly — the
// refactor moved the hardware description without changing it.
func TestNote9MatchesSimNote9Config(t *testing.T) {
	const seed = 42
	old := runConfig(t, sim.Note9Config(evalTimeline(seed), seed))
	via := runConfig(t, MustGet("note9").Config(evalTimeline(seed), seed))
	if !reflect.DeepEqual(old, via) {
		t.Fatalf("platform note9 diverged from sim.Note9Config:\nold: %+v\nnew: %+v", old, via)
	}
}

func TestRegistryNamesAndGet(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, want := range []string{"note9", "note9-90hz", "note9-120hz", "sd855", "mid6"} {
		if _, err := Get(want); err != nil {
			t.Errorf("Get(%q): %v", want, err)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	if _, err := Get("nokia3310"); err == nil || !strings.Contains(err.Error(), "nokia3310") {
		t.Fatalf("unknown platform must error with the name, got %v", err)
	}
	if p, err := Get(""); err != nil || p.Name != DefaultName {
		t.Fatalf("empty name must resolve to the default platform, got %v/%v", p.Name, err)
	}
}

func TestEveryPlatformBuildsAndRuns(t *testing.T) {
	for _, name := range Names() {
		p := MustGet(name)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg := p.Config(evalTimeline(7), 7)
		if cfg.Display.RefreshHz != p.RefreshHz {
			t.Fatalf("%s: display %d Hz, want %d", name, cfg.Display.RefreshHz, p.RefreshHz)
		}
		res := runConfig(t, cfg)
		if res.AvgPowerW <= 0 || res.DurationS <= 0 {
			t.Fatalf("%s: degenerate run %+v", name, res)
		}
	}
}

// Fresh factories per Config: two concurrent engines must never share
// chips or models.
func TestConfigReturnsFreshState(t *testing.T) {
	p := MustGet("sd855")
	a := p.Config(evalTimeline(1), 1)
	b := p.Config(evalTimeline(1), 1)
	if a.Chip == b.Chip || a.Power == b.Power || a.Thermal == b.Thermal || a.Display == b.Display {
		t.Fatal("Config shared mutable state between calls")
	}
}

func TestPlatformsAreDistinctHardware(t *testing.T) {
	note9 := runConfig(t, MustGet("note9").Config(evalTimeline(3), 3))
	sd855 := runConfig(t, MustGet("sd855").Config(evalTimeline(3), 3))
	mid6 := runConfig(t, MustGet("mid6").Config(evalTimeline(3), 3))
	if note9.AvgPowerW == sd855.AvgPowerW || note9.AvgPowerW == mid6.AvgPowerW {
		t.Fatalf("distinct platforms produced identical power: note9=%g sd855=%g mid6=%g",
			note9.AvgPowerW, sd855.AvgPowerW, mid6.AvgPowerW)
	}
}

func TestWithRefreshDerivesVariant(t *testing.T) {
	v := MustGet("note9").WithRefresh(144)
	if v.Name != "note9-144hz" || v.RefreshHz != 144 {
		t.Fatalf("variant = %q @ %d Hz", v.Name, v.RefreshHz)
	}
	if MustGet("note9").RefreshHz != 60 {
		t.Fatal("WithRefresh mutated the base platform")
	}
}
