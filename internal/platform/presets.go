package platform

import (
	"nextdvfs/internal/governor"
	"nextdvfs/internal/power"
	"nextdvfs/internal/soc"
	"nextdvfs/internal/thermal"
)

func stockGovernor() governor.Governor {
	return governor.NewSchedutil(governor.DefaultSchedutilConfig())
}

func init() {
	// note9 is the paper's device, bit-for-bit the old sim.Note9Config:
	// Exynos 9810, calibrated power/thermal models, 60 Hz panel, 21 °C
	// ambient, stock schedutil. A registry test pins that equivalence.
	note9 := Platform{
		Name:         "note9",
		Description:  "Samsung Galaxy Note 9 — Exynos 9810, 60 Hz AMOLED (the paper's device)",
		RefreshHz:    60,
		AmbientC:     21,
		NewChip:      soc.Exynos9810,
		NewPower:     power.Exynos9810Model,
		NewThermal:   thermal.Note9,
		NewDevSensor: thermal.Note9DeviceSensor,
		NewGovernor:  stockGovernor,
	}
	Register(note9)
	Register(note9.WithRefresh(90))
	Register(note9.WithRefresh(120))

	// sd855 is a Snapdragon-class flagship: different OPP tables, 7 nm
	// power coefficients and a vapor-chamber chassis.
	sd855 := Platform{
		Name:         "sd855",
		Description:  "Snapdragon-855-class flagship — Kryo 485 + Adreno 640, vapor chamber",
		RefreshHz:    60,
		AmbientC:     21,
		NewChip:      soc.Snapdragon855,
		NewPower:     power.Snapdragon855Model,
		NewThermal:   thermal.Flagship,
		NewDevSensor: thermal.HandsetDeviceSensor,
		NewGovernor:  stockGovernor,
	}
	Register(sd855)
	Register(sd855.WithRefresh(90))
	Register(sd855.WithRefresh(120))

	// mid6 is the mid-range two-CPU-cluster SoC in a plastic body.
	mid6 := Platform{
		Name:         "mid6",
		Description:  "mid-range 2+6-core SoC — small GPU, graphite-sheet plastic body",
		RefreshHz:    60,
		AmbientC:     21,
		NewChip:      soc.Mid6,
		NewPower:     power.Mid6Model,
		NewThermal:   thermal.Midrange,
		NewDevSensor: thermal.HandsetDeviceSensor,
		NewGovernor:  stockGovernor,
	}
	Register(mid6)
	Register(mid6.WithRefresh(90))
}
