package platform

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultName is the platform experiments use when none is named: the
// paper's Galaxy Note 9.
const DefaultName = "note9"

var (
	regMu    sync.RWMutex
	registry = map[string]Platform{}
)

// Register adds a platform to the registry. It panics on a duplicate
// name or an incomplete platform: registration happens at init time
// from code, so a bad entry is a programming error.
func Register(p Platform) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("platform: duplicate registration of %q", p.Name))
	}
	registry[p.Name] = p
}

// Get returns the named platform. The error lists the registry so CLI
// users see their options.
func Get(name string) (Platform, error) {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	p, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Platform{}, fmt.Errorf("platform: unknown platform %q (have: %v)", name, Names())
	}
	return p, nil
}

// MustGet is Get for wiring code where the name is a compile-time
// constant; it panics on unknown names.
func MustGet(name string) Platform {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns the registered platform names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
