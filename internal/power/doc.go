// Package power models the electrical behaviour of the MPSoC: per-cluster
// dynamic switching power (C·V²·f scaled by utilization), temperature-
// dependent static leakage, a constant rest-of-device floor (display,
// memory, radios) and an energy integrator.
//
// The paper measures whole-device power on a Galaxy Note 9 (session
// averages 2–3.5 W, transient peaks above 10 W during gaming). The
// coefficients in Exynos9810Model are calibrated so that the simulator's
// sessions land in the same envelope; see DESIGN.md §2 for the
// substitution argument. Absolute watts are not the reproduction target —
// the relative savings between governors are.
package power
