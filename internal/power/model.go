package power

import (
	"fmt"

	"nextdvfs/internal/soc"
)

// Coeff holds the electrical coefficients of one cluster.
type Coeff struct {
	// CdynWPerGHzV2 is the effective switched capacitance: dynamic power
	// at 100 % utilization is Cdyn × f[GHz] × V² watts (whole cluster).
	CdynWPerGHzV2 float64
	// LeakWAtRef is static leakage at VRef and 25 °C for the whole
	// cluster (always burned while the rail is up).
	LeakWAtRef float64
	// VRef is the reference voltage for LeakWAtRef.
	VRef float64
	// LeakTempCo is the fractional leakage increase per °C above 25 °C
	// (exponential leakage linearized over the mobile range).
	LeakTempCo float64
	// IdleW is the floor burned by the cluster's uncore (caches,
	// interconnect port) even at zero utilization, on top of leakage.
	IdleW float64
}

// Model computes cluster and device power for a chip. Construct with
// NewModel or the Exynos9810Model preset.
type Model struct {
	coeffs map[string]Coeff
	// BaseW is the rest-of-device floor: display panel and backlight,
	// DRAM refresh, radios, PMIC losses. It dominates idle power on a
	// real phone and stops relative-savings figures from being absurd.
	BaseW float64
}

// NewModel builds a power model from per-cluster coefficients.
func NewModel(baseW float64, coeffs map[string]Coeff) *Model {
	m := &Model{coeffs: make(map[string]Coeff, len(coeffs)), BaseW: baseW}
	for k, v := range coeffs {
		m.coeffs[k] = v
	}
	return m
}

// Coeff returns the coefficients for cluster name.
func (m *Model) Coeff(name string) (Coeff, bool) {
	c, ok := m.coeffs[name]
	return c, ok
}

// ClusterPower returns the cluster's electrical power in watts at its
// current OPP, the given utilization (0..1) and temperature (°C).
func (m *Model) ClusterPower(c *soc.Cluster, util, tempC float64) float64 {
	co, ok := m.coeffs[c.Name]
	if !ok {
		panic(fmt.Sprintf("power: no coefficients for cluster %q", c.Name))
	}
	if util < 0 {
		util = 0
	} else if util > 1 {
		util = 1
	}
	opp := c.CurOPP()
	v := opp.Volts()
	dyn := co.CdynWPerGHzV2 * opp.FreqGHz() * v * v * util
	leak := co.LeakWAtRef * (v / co.VRef) * (1 + co.LeakTempCo*(tempC-25))
	if leak < 0 {
		leak = 0
	}
	return dyn + leak + co.IdleW
}

// PowerAt predicts the cluster's power at an arbitrary OPP index
// without disturbing its DVFS state — the estimator surface used by
// model-based controllers (Int. QoS PM's cost model).
func (m *Model) PowerAt(c *soc.Cluster, idx int, util, tempC float64) float64 {
	co, ok := m.coeffs[c.Name]
	if !ok {
		panic(fmt.Sprintf("power: no coefficients for cluster %q", c.Name))
	}
	if util < 0 {
		util = 0
	} else if util > 1 {
		util = 1
	}
	opp := c.OPPAt(idx)
	v := opp.Volts()
	dyn := co.CdynWPerGHzV2 * opp.FreqGHz() * v * v * util
	leak := co.LeakWAtRef * (v / co.VRef) * (1 + co.LeakTempCo*(tempC-25))
	if leak < 0 {
		leak = 0
	}
	return dyn + leak + co.IdleW
}

// MaxClusterPower returns the worst-case power of the cluster: top OPP,
// full utilization, at the given temperature. Used for PPDW_worst.
func (m *Model) MaxClusterPower(c *soc.Cluster, tempC float64) float64 {
	co, ok := m.coeffs[c.Name]
	if !ok {
		panic(fmt.Sprintf("power: no coefficients for cluster %q", c.Name))
	}
	opp := c.MaxOPP()
	v := opp.Volts()
	dyn := co.CdynWPerGHzV2 * opp.FreqGHz() * v * v
	leak := co.LeakWAtRef * (v / co.VRef) * (1 + co.LeakTempCo*(tempC-25))
	if leak < 0 {
		leak = 0
	}
	return dyn + leak + co.IdleW
}

// Exynos9810Model returns coefficients calibrated for the Exynos 9810
// preset: big cluster peaks near 8 W, GPU near 3.5 W, LITTLE near 1.2 W,
// with a ~0.9 W device floor — matching the Note 9 envelope the paper's
// traces show (averages ≈2–3.5 W, gaming transients >10 W).
func Exynos9810Model() *Model {
	return NewModel(0.9, map[string]Coeff{
		soc.ClusterBig: {
			CdynWPerGHzV2: 2.45,
			LeakWAtRef:    0.50,
			VRef:          1.15,
			LeakTempCo:    0.011,
			IdleW:         0.12,
		},
		soc.ClusterLITTLE: {
			CdynWPerGHzV2: 0.72,
			LeakWAtRef:    0.08,
			VRef:          0.95,
			LeakTempCo:    0.009,
			IdleW:         0.05,
		},
		soc.ClusterGPU: {
			CdynWPerGHzV2: 7.40,
			LeakWAtRef:    0.30,
			VRef:          0.90,
			LeakTempCo:    0.010,
			IdleW:         0.08,
		},
	})
}

// Snapdragon855Model returns coefficients for the soc.Snapdragon855
// flagship: the 7 nm process buys lower switched capacitance and
// leakage than the Exynos preset at comparable peak performance — big
// peaks near 6.5 W, the Adreno-class GPU near 3 W.
func Snapdragon855Model() *Model {
	return NewModel(0.85, map[string]Coeff{
		soc.ClusterBig: {
			CdynWPerGHzV2: 1.95,
			LeakWAtRef:    0.38,
			VRef:          1.05,
			LeakTempCo:    0.010,
			IdleW:         0.10,
		},
		soc.ClusterLITTLE: {
			CdynWPerGHzV2: 0.58,
			LeakWAtRef:    0.06,
			VRef:          0.88,
			LeakTempCo:    0.009,
			IdleW:         0.04,
		},
		soc.ClusterGPU: {
			CdynWPerGHzV2: 6.10,
			LeakWAtRef:    0.24,
			VRef:          0.86,
			LeakTempCo:    0.010,
			IdleW:         0.07,
		},
	})
}

// Mid6Model returns coefficients for the soc.Mid6 mid-range SoC: a
// narrower big cluster and a small GPU cap the whole-device envelope
// well under the flagships' — there is less power to save, which
// stresses the agent's ability to still find PPDW headroom.
func Mid6Model() *Model {
	return NewModel(0.75, map[string]Coeff{
		soc.ClusterBig: {
			CdynWPerGHzV2: 1.10,
			LeakWAtRef:    0.20,
			VRef:          1.00,
			LeakTempCo:    0.010,
			IdleW:         0.08,
		},
		soc.ClusterLITTLE: {
			CdynWPerGHzV2: 0.80,
			LeakWAtRef:    0.09,
			VRef:          0.90,
			LeakTempCo:    0.009,
			IdleW:         0.05,
		},
		soc.ClusterGPU: {
			CdynWPerGHzV2: 3.90,
			LeakWAtRef:    0.16,
			VRef:          0.84,
			LeakTempCo:    0.010,
			IdleW:         0.05,
		},
	})
}

// GenericPhoneModel returns coefficients for the soc.GenericPhone test
// platform.
func GenericPhoneModel() *Model {
	return NewModel(0.7, map[string]Coeff{
		soc.ClusterBig:    {CdynWPerGHzV2: 1.8, LeakWAtRef: 0.35, VRef: 1.10, LeakTempCo: 0.011, IdleW: 0.10},
		soc.ClusterLITTLE: {CdynWPerGHzV2: 0.7, LeakWAtRef: 0.07, VRef: 0.90, LeakTempCo: 0.009, IdleW: 0.05},
		soc.ClusterGPU:    {CdynWPerGHzV2: 5.0, LeakWAtRef: 0.25, VRef: 0.85, LeakTempCo: 0.010, IdleW: 0.07},
	})
}

// Meter integrates power over time into energy and tracks the running
// average. The zero value is ready to use.
type Meter struct {
	EnergyJ float64
	timeS   float64
}

// Accumulate adds a dt-second interval at w watts.
func (e *Meter) Accumulate(w, dtSec float64) {
	e.EnergyJ += w * dtSec
	e.timeS += dtSec
}

// AvgW returns average power over the integrated interval (0 if empty).
func (e *Meter) AvgW() float64 {
	if e.timeS == 0 {
		return 0
	}
	return e.EnergyJ / e.timeS
}

// Seconds returns the total integrated time.
func (e *Meter) Seconds() float64 { return e.timeS }

// Reset clears the meter.
func (e *Meter) Reset() { e.EnergyJ, e.timeS = 0, 0 }
