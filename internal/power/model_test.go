package power

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nextdvfs/internal/soc"
)

func TestClusterPowerMonotoneInFrequency(t *testing.T) {
	chip := soc.Exynos9810()
	m := Exynos9810Model()
	for _, c := range chip.Clusters {
		prev := -1.0
		for i := 0; i < c.NumOPPs(); i++ {
			c.SetCap(c.NumOPPs() - 1)
			c.SetCur(i)
			p := m.ClusterPower(c, 1.0, 40)
			if p <= prev {
				t.Errorf("%s: power not increasing at OPP %d (%.3f <= %.3f)", c.Name, i, p, prev)
			}
			prev = p
		}
	}
}

func TestClusterPowerMonotoneInUtil(t *testing.T) {
	chip := soc.Exynos9810()
	m := Exynos9810Model()
	big := chip.MustCluster(soc.ClusterBig)
	big.SetCur(10)
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.1 {
		p := m.ClusterPower(big, u, 40)
		if p < prev {
			t.Errorf("power decreased with util at u=%.1f", u)
		}
		prev = p
	}
}

func TestLeakageGrowsWithTemperature(t *testing.T) {
	chip := soc.Exynos9810()
	m := Exynos9810Model()
	big := chip.MustCluster(soc.ClusterBig)
	big.SetCur(0)
	cold := m.ClusterPower(big, 0, 25)
	hot := m.ClusterPower(big, 0, 85)
	if hot <= cold {
		t.Fatalf("leakage should grow with temperature: %.3f W at 25°C vs %.3f W at 85°C", cold, hot)
	}
	// Linearized exponential: 60 °C above ref at ~1.1 %/°C ≈ +66 %.
	if hot > cold*2.2 {
		t.Fatalf("leakage growth implausible: %.3f -> %.3f", cold, hot)
	}
}

func TestUtilizationClamped(t *testing.T) {
	chip := soc.Exynos9810()
	m := Exynos9810Model()
	big := chip.MustCluster(soc.ClusterBig)
	if m.ClusterPower(big, -0.5, 40) != m.ClusterPower(big, 0, 40) {
		t.Error("negative util should clamp to 0")
	}
	if m.ClusterPower(big, 1.5, 40) != m.ClusterPower(big, 1, 40) {
		t.Error("util > 1 should clamp to 1")
	}
}

func TestExynosEnvelopeMatchesPaper(t *testing.T) {
	// The Note 9 traces in the paper show device power peaking above
	// 10 W and averaging 2-3.5 W. Check the model's static envelope:
	// all-max power should be roughly 10-16 W including the base.
	chip := soc.Exynos9810()
	m := Exynos9810Model()
	total := m.BaseW
	for _, c := range chip.Clusters {
		c.SetCur(c.NumOPPs() - 1)
		total += m.ClusterPower(c, 1.0, 70)
	}
	if total < 9 || total > 18 {
		t.Fatalf("all-max device power = %.2f W, want 9-18 W (paper peaks >10 W)", total)
	}

	// Idle floor: everything at min OPP, zero util, should be ~1-2 W.
	idle := m.BaseW
	for _, c := range chip.Clusters {
		c.SetCur(0)
		idle += m.ClusterPower(c, 0, 30)
	}
	if idle < 0.9 || idle > 3 {
		t.Fatalf("idle device power = %.2f W, want ~1-3 W", idle)
	}
}

func TestBigClusterDominates(t *testing.T) {
	// Paper: "the big CPU cores consume the most energy" among CPUs.
	chip := soc.Exynos9810()
	m := Exynos9810Model()
	big := chip.MustCluster(soc.ClusterBig)
	little := chip.MustCluster(soc.ClusterLITTLE)
	big.SetCur(big.NumOPPs() - 1)
	little.SetCur(little.NumOPPs() - 1)
	if m.ClusterPower(big, 1, 50) <= m.ClusterPower(little, 1, 50)*2 {
		t.Fatal("big cluster should consume far more than LITTLE at max")
	}
}

func TestMaxClusterPowerIsUpperBound(t *testing.T) {
	chip := soc.Exynos9810()
	m := Exynos9810Model()
	rng := rand.New(rand.NewSource(4))
	f := func(oppSeed, utilSeed uint8) bool {
		for _, c := range chip.Clusters {
			c.SetCur(int(oppSeed) % c.NumOPPs())
			util := float64(utilSeed) / 255
			if m.ClusterPower(c, util, 50) > m.MaxClusterPower(c, 50)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownClusterPanics(t *testing.T) {
	m := NewModel(0, map[string]Coeff{})
	c := soc.NewCluster("mystery", soc.KindCPU, 1, 1, []soc.OPP{{FreqKHz: 1000, VoltMicro: 1000}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown cluster")
		}
	}()
	m.ClusterPower(c, 1, 25)
}

func TestMeter(t *testing.T) {
	var e Meter
	if e.AvgW() != 0 {
		t.Fatal("empty meter avg should be 0")
	}
	e.Accumulate(2.0, 1.0) // 2 J
	e.Accumulate(4.0, 1.0) // 4 J
	if e.EnergyJ != 6.0 {
		t.Fatalf("energy = %g J, want 6", e.EnergyJ)
	}
	if e.AvgW() != 3.0 {
		t.Fatalf("avg = %g W, want 3", e.AvgW())
	}
	if e.Seconds() != 2.0 {
		t.Fatalf("seconds = %g", e.Seconds())
	}
	e.Reset()
	if e.EnergyJ != 0 || e.AvgW() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCoeffLookup(t *testing.T) {
	m := Exynos9810Model()
	if _, ok := m.Coeff(soc.ClusterBig); !ok {
		t.Fatal("big coeffs missing")
	}
	if _, ok := m.Coeff("nope"); ok {
		t.Fatal("unexpected coeffs for unknown cluster")
	}
}
