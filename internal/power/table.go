package power

import (
	"fmt"

	"nextdvfs/internal/soc"
)

// Table is the per-OPP precomputed power lookup for one cluster: the
// voltage/frequency portions of the model are folded into per-index
// constants at construction so the simulation tick loop does two
// indexed loads and three multiplies instead of a map lookup and the
// full analytic evaluation.
//
// The folding is exact, not approximate: every precomputed product
// keeps the evaluation order of Model.ClusterPower (Go does not
// reorder floating-point expressions), so Table.Power is bit-for-bit
// identical to the analytic path — byte-identical simulation output is
// part of the contract and pinned by TestTableMatchesClusterPower.
type Table struct {
	// dynFullW[i] is the dynamic power at OPP i and 100 % utilization:
	// Cdyn × f[GHz] × V². Multiply by util for the tick's dynamic term.
	dynFullW []float64
	// leakVW[i] is the voltage-dependent leakage factor at OPP i:
	// LeakWAtRef × (V / VRef). Multiply by the temperature term.
	leakVW []float64
	// leakTempCo and idleW mirror the Coeff fields.
	leakTempCo float64
	idleW      float64
}

// Table builds the per-OPP lookup for cluster c. It panics when the
// model has no coefficients for the cluster, exactly like ClusterPower
// would on first use.
func (m *Model) Table(c *soc.Cluster) *Table {
	co, ok := m.coeffs[c.Name]
	if !ok {
		panic(fmt.Sprintf("power: no coefficients for cluster %q", c.Name))
	}
	n := c.NumOPPs()
	t := &Table{
		dynFullW:   make([]float64, n),
		leakVW:     make([]float64, n),
		leakTempCo: co.LeakTempCo,
		idleW:      co.IdleW,
	}
	for i := 0; i < n; i++ {
		opp := c.OPPAt(i)
		v := opp.Volts()
		// Same association order as ClusterPower: ((Cdyn*f)*v)*v and
		// Leak*(v/VRef); the remaining factors are applied in Power.
		t.dynFullW[i] = co.CdynWPerGHzV2 * opp.FreqGHz() * v * v
		t.leakVW[i] = co.LeakWAtRef * (v / co.VRef)
	}
	return t
}

// NumOPPs returns the number of operating points in the table.
func (t *Table) NumOPPs() int { return len(t.dynFullW) }

// Equal reports whether two tables hold exactly the same precomputed
// constants — the per-cluster compatibility check sim.NewBatch runs
// before sharing one table across lockstep lanes.
func (t *Table) Equal(o *Table) bool {
	if t == o {
		return true
	}
	if len(t.dynFullW) != len(o.dynFullW) || t.leakTempCo != o.leakTempCo || t.idleW != o.idleW {
		return false
	}
	for i := range t.dynFullW {
		if t.dynFullW[i] != o.dynFullW[i] || t.leakVW[i] != o.leakVW[i] {
			return false
		}
	}
	return true
}

// Row returns the precomputed constants at OPP index idx (clamped like
// Power): the 100 %-utilization dynamic power and the voltage leakage
// factor. The batched engine mirrors the current OPP's row into its
// per-lane state so the power integration loop indexes no tables; the
// remaining Power terms come from TempCo and IdleW.
func (t *Table) Row(idx int) (dynFullW, leakVW float64) {
	if idx < 0 {
		idx = 0
	} else if idx >= len(t.dynFullW) {
		idx = len(t.dynFullW) - 1
	}
	return t.dynFullW[idx], t.leakVW[idx]
}

// TempCo returns the leakage temperature coefficient applied per degree
// away from the 25 °C reference.
func (t *Table) TempCo() float64 { return t.leakTempCo }

// IdleW returns the constant idle power term.
func (t *Table) IdleW() float64 { return t.idleW }

// Power returns the cluster's power at OPP index idx, utilization util
// (clamped to [0,1]) and temperature tempC — bit-identical to
// Model.PowerAt for in-range indices. Out-of-range indices are clamped
// like soc.Cluster.OPPAt does.
func (t *Table) Power(idx int, util, tempC float64) float64 {
	if idx < 0 {
		idx = 0
	} else if idx >= len(t.dynFullW) {
		idx = len(t.dynFullW) - 1
	}
	if util < 0 {
		util = 0
	} else if util > 1 {
		util = 1
	}
	dyn := t.dynFullW[idx] * util
	leak := t.leakVW[idx] * (1 + t.leakTempCo*(tempC-25))
	if leak < 0 {
		leak = 0
	}
	return dyn + leak + t.idleW
}
