package power

import (
	"testing"

	"nextdvfs/internal/soc"
)

// TestTableMatchesClusterPower pins the bit-identity contract: the
// precomputed table must reproduce the analytic model exactly — not
// within an epsilon — across every OPP, a sweep of utilizations
// (including the clamped extremes) and temperatures. The sim engine's
// byte-identical-output guarantee rests on this.
func TestTableMatchesClusterPower(t *testing.T) {
	models := map[string]*Model{
		"note9": Exynos9810Model(),
		"sd855": Snapdragon855Model(),
		"mid6":  Mid6Model(),
	}
	chips := map[string]*soc.Chip{
		"note9": soc.Exynos9810(),
		"sd855": soc.Snapdragon855(),
		"mid6":  soc.Mid6(),
	}
	utils := []float64{-0.5, 0, 0.01, 0.25, 0.5, 0.999, 1, 1.7}
	temps := []float64{-10, 0, 21, 25, 40.5, 55, 85, 120}
	for name, m := range models {
		for _, c := range chips[name].Clusters {
			tbl := m.Table(c)
			if tbl.NumOPPs() != c.NumOPPs() {
				t.Fatalf("%s/%s: table has %d OPPs, cluster %d", name, c.Name, tbl.NumOPPs(), c.NumOPPs())
			}
			for idx := 0; idx < c.NumOPPs(); idx++ {
				for _, u := range utils {
					for _, tc := range temps {
						want := m.PowerAt(c, idx, u, tc)
						got := tbl.Power(idx, u, tc)
						if got != want {
							t.Fatalf("%s/%s opp %d util %g temp %g: table %v != model %v",
								name, c.Name, idx, u, tc, got, want)
						}
					}
				}
			}
			// The current-OPP path must agree too.
			c.SetCur(c.NumOPPs() / 2)
			if got, want := tbl.Power(c.Cur(), 0.5, 40), m.ClusterPower(c, 0.5, 40); got != want {
				t.Fatalf("%s/%s cur path: table %v != model %v", name, c.Name, got, want)
			}
			c.ResetDVFS()
		}
	}
}

func TestTableClampsIndex(t *testing.T) {
	m := Exynos9810Model()
	c := soc.Exynos9810().Clusters[0]
	tbl := m.Table(c)
	if got, want := tbl.Power(-3, 1, 40), tbl.Power(0, 1, 40); got != want {
		t.Fatalf("low clamp: %v != %v", got, want)
	}
	top := tbl.NumOPPs() - 1
	if got, want := tbl.Power(top+5, 1, 40), tbl.Power(top, 1, 40); got != want {
		t.Fatalf("high clamp: %v != %v", got, want)
	}
}

func TestTableUnknownClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Table on a cluster without coefficients must panic")
		}
	}()
	m := NewModel(1, map[string]Coeff{})
	c := soc.NewCluster("mystery", soc.KindCPU, 1, 1, []soc.OPP{{FreqKHz: 1_000_000, VoltMicro: 900_000}})
	m.Table(c)
}

func TestTableZeroAllocPower(t *testing.T) {
	m := Exynos9810Model()
	c := soc.Exynos9810().Clusters[0]
	tbl := m.Table(c)
	allocs := testing.AllocsPerRun(1000, func() {
		tbl.Power(3, 0.5, 47)
	})
	if allocs != 0 {
		t.Fatalf("Table.Power allocates %v per call, want 0", allocs)
	}
}
