// Package prof parses pprof profiles (the gzipped protobuf files
// runtime/pprof writes) and aggregates them into flat/cumulative
// hotspot tables — a dependency-free subset of `go tool pprof -top`.
// cmd/nextprof uses it to print the next optimization target straight
// from a workload run, without shelling out to the Go toolchain.
//
// Only the message fields the table needs are decoded (sample types,
// samples, locations, lines, functions, the string table); everything
// else in the profile is skipped field-by-field per the protobuf wire
// format.
package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// ValueType names one sample dimension, e.g. {"cpu", "nanoseconds"} or
// {"alloc_space", "bytes"}.
type ValueType struct {
	Type string
	Unit string
}

type sample struct {
	locs []uint64
	vals []int64
}

type location struct {
	address uint64
	// funcs holds the location's function names, innermost (deepest
	// inline callee) first, matching pprof's Line ordering.
	funcs []string
}

// Profile is one parsed pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	DurationNanos int64

	samples   []sample
	locations map[uint64]*location
}

// Parse reads a pprof profile, transparently gunzipping (runtime/pprof
// always gzips; raw protobuf is accepted too).
func Parse(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
	}
	return parseProto(data)
}

// SampleIndex returns the index of the sample type with the given type
// name ("cpu", "alloc_space", ...), or -1.
func (p *Profile) SampleIndex(name string) int {
	for i, st := range p.SampleTypes {
		if st.Type == name {
			return i
		}
	}
	return -1
}

// Total returns the sum of all sample values at index si.
func (p *Profile) Total(si int) int64 {
	var t int64
	for _, s := range p.samples {
		if si < len(s.vals) {
			t += s.vals[si]
		}
	}
	return t
}

// Entry is one row of a hotspot table.
type Entry struct {
	Name string
	// Flat is the value attributed to the function itself (it was the
	// innermost frame of the sample).
	Flat int64
	// Cum additionally counts samples where the function was anywhere
	// on the stack.
	Cum int64
}

// Top aggregates sample index si per function and returns the n
// heaviest entries by flat value (ties broken by cum, then name, so the
// table is deterministic).
func (p *Profile) Top(si, n int) []Entry {
	if si < 0 || n <= 0 {
		return nil
	}
	agg := make(map[string]*Entry)
	get := func(name string) *Entry {
		e := agg[name]
		if e == nil {
			e = &Entry{Name: name}
			agg[name] = e
		}
		return e
	}
	var onStack []string // scratch: distinct function names of one sample
	for _, s := range p.samples {
		if si >= len(s.vals) || s.vals[si] == 0 || len(s.locs) == 0 {
			continue
		}
		v := s.vals[si]
		onStack = onStack[:0]
		for li, id := range s.locs {
			loc := p.locations[id]
			var names []string
			switch {
			case loc != nil && len(loc.funcs) > 0:
				names = loc.funcs
			case loc != nil:
				names = []string{fmt.Sprintf("0x%x", loc.address)}
			default:
				names = []string{fmt.Sprintf("0x%x", id)}
			}
			if li == 0 {
				// Flat goes to the innermost function of the leaf
				// location — names[0] is the deepest inline callee.
				get(names[0]).Flat += v
			}
			for _, name := range names {
				seen := false
				for _, prev := range onStack {
					if prev == name {
						seen = true
						break
					}
				}
				if !seen {
					onStack = append(onStack, name)
					get(name).Cum += v
				}
			}
		}
	}
	out := make([]Entry, 0, len(agg))
	for _, e := range agg {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		if out[i].Cum != out[j].Cum {
			return out[i].Cum > out[j].Cum
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// --- wire-format decoding ------------------------------------------------

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) done() bool { return d.pos >= len(d.buf) }

func (d *decoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.buf) {
			return 0, fmt.Errorf("prof: truncated varint")
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("prof: varint overflow")
}

// field reads the next field header: number and wire type.
func (d *decoder) field() (num int, wire int, err error) {
	key, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(key >> 3), int(key & 7), nil
}

// bytes reads a length-delimited payload.
func (d *decoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, fmt.Errorf("prof: truncated field (%d bytes claimed, %d left)", n, len(d.buf)-d.pos)
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// skip discards one field of the given wire type.
func (d *decoder) skip(wire int) error {
	switch wire {
	case 0:
		_, err := d.varint()
		return err
	case 1:
		if len(d.buf)-d.pos < 8 {
			return fmt.Errorf("prof: truncated fixed64")
		}
		d.pos += 8
		return nil
	case 2:
		_, err := d.bytes()
		return err
	case 5:
		if len(d.buf)-d.pos < 4 {
			return fmt.Errorf("prof: truncated fixed32")
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", wire)
	}
}

// uints reads a repeated uint64 field occurrence: packed when wire type
// 2, a single value when wire type 0.
func (d *decoder) uints(wire int, into []uint64) ([]uint64, error) {
	if wire == 0 {
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return append(into, v), nil
	}
	if wire != 2 {
		return nil, fmt.Errorf("prof: repeated scalar with wire type %d", wire)
	}
	payload, err := d.bytes()
	if err != nil {
		return nil, err
	}
	sub := decoder{buf: payload}
	for !sub.done() {
		v, err := sub.varint()
		if err != nil {
			return nil, err
		}
		into = append(into, v)
	}
	return into, nil
}

func parseProto(data []byte) (*Profile, error) {
	p := &Profile{locations: make(map[uint64]*location)}
	var strtab []string
	// Indices into strtab, resolved once the whole message is read (the
	// string table may follow the messages that reference it).
	type vtIdx struct{ typ, unit uint64 }
	var sampleTypeIdx []vtIdx
	funcNameIdx := make(map[uint64]uint64) // function id -> name index
	type rawLoc struct {
		address uint64
		funcIDs []uint64
	}
	rawLocs := make(map[uint64]*rawLoc)

	d := decoder{buf: data}
	for !d.done() {
		num, wire, err := d.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			msg, err := d.bytes()
			if err != nil {
				return nil, err
			}
			var vt vtIdx
			sd := decoder{buf: msg}
			for !sd.done() {
				fn, fw, err := sd.field()
				if err != nil {
					return nil, err
				}
				switch fn {
				case 1:
					if vt.typ, err = sd.varint(); err != nil {
						return nil, err
					}
				case 2:
					if vt.unit, err = sd.varint(); err != nil {
						return nil, err
					}
				default:
					if err := sd.skip(fw); err != nil {
						return nil, err
					}
				}
			}
			sampleTypeIdx = append(sampleTypeIdx, vt)
		case 2: // sample
			msg, err := d.bytes()
			if err != nil {
				return nil, err
			}
			var s sample
			sd := decoder{buf: msg}
			for !sd.done() {
				fn, fw, err := sd.field()
				if err != nil {
					return nil, err
				}
				switch fn {
				case 1:
					if s.locs, err = sd.uints(fw, s.locs); err != nil {
						return nil, err
					}
				case 2:
					var vals []uint64
					if vals, err = sd.uints(fw, nil); err != nil {
						return nil, err
					}
					for _, v := range vals {
						s.vals = append(s.vals, int64(v))
					}
				default:
					if err := sd.skip(fw); err != nil {
						return nil, err
					}
				}
			}
			p.samples = append(p.samples, s)
		case 4: // location
			msg, err := d.bytes()
			if err != nil {
				return nil, err
			}
			loc := &rawLoc{}
			var id uint64
			sd := decoder{buf: msg}
			for !sd.done() {
				fn, fw, err := sd.field()
				if err != nil {
					return nil, err
				}
				switch fn {
				case 1:
					if id, err = sd.varint(); err != nil {
						return nil, err
					}
				case 3:
					if loc.address, err = sd.varint(); err != nil {
						return nil, err
					}
				case 4: // line
					lmsg, err := sd.bytes()
					if err != nil {
						return nil, err
					}
					ld := decoder{buf: lmsg}
					for !ld.done() {
						lf, lw, err := ld.field()
						if err != nil {
							return nil, err
						}
						if lf == 1 {
							fid, err := ld.varint()
							if err != nil {
								return nil, err
							}
							loc.funcIDs = append(loc.funcIDs, fid)
						} else if err := ld.skip(lw); err != nil {
							return nil, err
						}
					}
				default:
					if err := sd.skip(fw); err != nil {
						return nil, err
					}
				}
			}
			rawLocs[id] = loc
		case 5: // function
			msg, err := d.bytes()
			if err != nil {
				return nil, err
			}
			var id, nameIdx uint64
			sd := decoder{buf: msg}
			for !sd.done() {
				fn, fw, err := sd.field()
				if err != nil {
					return nil, err
				}
				switch fn {
				case 1:
					if id, err = sd.varint(); err != nil {
						return nil, err
					}
				case 2:
					if nameIdx, err = sd.varint(); err != nil {
						return nil, err
					}
				default:
					if err := sd.skip(fw); err != nil {
						return nil, err
					}
				}
			}
			funcNameIdx[id] = nameIdx
		case 6: // string_table
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(b))
		case 10: // duration_nanos
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}
	for _, vt := range sampleTypeIdx {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}
	for id, rl := range rawLocs {
		loc := &location{address: rl.address}
		for _, fid := range rl.funcIDs {
			loc.funcs = append(loc.funcs, str(funcNameIdx[fid]))
		}
		p.locations[id] = loc
	}
	if len(p.SampleTypes) == 0 {
		return nil, fmt.Errorf("prof: no sample types (not a pprof profile?)")
	}
	return p, nil
}
