package prof

import (
	"bytes"
	"compress/gzip"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
)

// --- minimal protobuf writer for building test fixtures ------------------

type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) tag(field, wire int) { p.varint(uint64(field<<3 | wire)) }

func (p *pbuf) msg(field int, body *pbuf) {
	p.tag(field, 2)
	p.varint(uint64(len(body.b)))
	p.b = append(p.b, body.b...)
}

func (p *pbuf) str(field int, s string) {
	p.tag(field, 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

func (p *pbuf) packed(field int, vals ...uint64) {
	var body pbuf
	for _, v := range vals {
		body.varint(v)
	}
	p.msg(field, &body)
}

func (p *pbuf) uint(field int, v uint64) {
	p.tag(field, 0)
	p.varint(v)
}

// buildFixture assembles a tiny but structurally complete CPU profile:
//
//	strings: "", "samples", "count", "cpu", "nanoseconds", "main", "leaf", "inlined"
//	functions: 1=main 2=leaf 3=inlined
//	locations: 1={main} 2={inlined,leaf} (location 2 carries an inline pair:
//	           line[0] is the innermost callee)
//	samples: [loc2, loc1] x {10, 1000} and [loc1] x {5, 500}
func buildFixture(t *testing.T) []byte {
	t.Helper()
	var root pbuf
	// sample_type: samples/count, cpu/nanoseconds
	var st1, st2 pbuf
	st1.uint(1, 1)
	st1.uint(2, 2)
	st2.uint(1, 3)
	st2.uint(2, 4)
	root.msg(1, &st1)
	root.msg(1, &st2)
	// samples
	var s1, s2 pbuf
	s1.packed(1, 2, 1)
	s1.packed(2, 10, 1000)
	root.msg(2, &s1)
	s2.packed(1, 1)
	s2.packed(2, 5, 500)
	root.msg(2, &s2)
	// locations
	var l1, l1line pbuf
	l1.uint(1, 1)
	l1line.uint(1, 1)
	l1.msg(4, &l1line)
	root.msg(4, &l1)
	var l2, l2lineA, l2lineB pbuf
	l2.uint(1, 2)
	l2lineA.uint(1, 3) // innermost: inlined
	l2.msg(4, &l2lineA)
	l2lineB.uint(1, 2) // caller at same location: leaf
	l2.msg(4, &l2lineB)
	root.msg(4, &l2)
	// functions
	for id, name := range map[uint64]uint64{1: 5, 2: 6, 3: 7} {
		var f pbuf
		f.uint(1, id)
		f.uint(2, name)
		root.msg(5, &f)
	}
	// string table
	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds", "main", "leaf", "inlined"} {
		root.str(6, s)
	}
	root.uint(10, 2_000_000_000) // duration_nanos
	return root.b
}

func TestParseFixture(t *testing.T) {
	p, err := Parse(bytes.NewReader(buildFixture(t)))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SampleTypes) != 2 || p.SampleTypes[1].Type != "cpu" || p.SampleTypes[1].Unit != "nanoseconds" {
		t.Fatalf("sample types = %+v", p.SampleTypes)
	}
	if p.DurationNanos != 2_000_000_000 {
		t.Fatalf("duration = %d", p.DurationNanos)
	}
	if got := p.SampleIndex("cpu"); got != 1 {
		t.Fatalf("SampleIndex(cpu) = %d", got)
	}
	if got := p.SampleIndex("nope"); got != -1 {
		t.Fatalf("SampleIndex(nope) = %d", got)
	}
	if got := p.Total(1); got != 1500 {
		t.Fatalf("Total = %d", got)
	}

	top := p.Top(1, 10)
	want := map[string]Entry{
		// Sample 1 leaf is location 2 whose innermost line is "inlined":
		// flat 1000 there; "leaf" is the inline caller, cum only.
		"inlined": {Name: "inlined", Flat: 1000, Cum: 1000},
		"leaf":    {Name: "leaf", Flat: 0, Cum: 1000},
		// "main" is on both stacks (cum 1500) and the leaf of sample 2.
		"main": {Name: "main", Flat: 500, Cum: 1500},
	}
	if len(top) != len(want) {
		t.Fatalf("top has %d entries: %+v", len(top), top)
	}
	for _, e := range top {
		if w, ok := want[e.Name]; !ok || e != w {
			t.Errorf("entry %+v, want %+v", e, w)
		}
	}
	// Deterministic flat-descending order.
	if top[0].Name != "inlined" || top[1].Name != "main" || top[2].Name != "leaf" {
		t.Fatalf("order = %s, %s, %s", top[0].Name, top[1].Name, top[2].Name)
	}
}

func TestParseGzippedFixture(t *testing.T) {
	var gz bytes.Buffer
	w := gzip.NewWriter(&gz)
	if _, err := w.Write(buildFixture(t)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(&gz)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Total(1); got != 1500 {
		t.Fatalf("Total after gunzip = %d", got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for name, data := range map[string][]byte{
		"truncated-varint":  {0x82}, // continuation bit set, nothing follows
		"truncated-payload": {0x12, 0x7f, 0x01},
		"empty":             {},
		"not-a-profile":     []byte("BenchmarkFoo 100 123 ns/op"),
	} {
		if _, err := Parse(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Parse accepted malformed input", name)
		}
	}
}

func TestWriteTop(t *testing.T) {
	p, err := Parse(bytes.NewReader(buildFixture(t)))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := WriteTop(&out, p, 1, 2); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"inlined", "main", "cpu", "66.67%", "100.00%"} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "leaf") {
		t.Errorf("top-2 table should have cut the third entry:\n%s", got)
	}
	if err := WriteTop(&out, p, 9, 2); err == nil {
		t.Error("out-of-range sample index must error")
	}
}

// TestParseLiveHeapProfile feeds a real runtime/pprof heap profile
// through the parser: the wire format the package exists for.
func TestParseLiveHeapProfile(t *testing.T) {
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.WriteHeapProfile(&buf); err != nil {
		t.Fatal(err)
	}
	_ = sink
	p, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	si := p.SampleIndex("alloc_space")
	if si < 0 {
		t.Fatalf("heap profile without alloc_space: %+v", p.SampleTypes)
	}
	if p.Total(si) <= 0 {
		t.Fatal("alloc_space total is zero")
	}
	if len(p.Top(si, 5)) == 0 {
		t.Fatal("no entries in live heap profile")
	}
}
