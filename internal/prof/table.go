package prof

import (
	"fmt"
	"io"
)

// FormatValue renders a sample value in a human unit: nanoseconds as
// seconds, bytes as mega/kilobytes, anything else (counts) raw.
func FormatValue(v int64, unit string) string {
	switch unit {
	case "nanoseconds":
		return fmt.Sprintf("%.2fs", float64(v)/1e9)
	case "bytes":
		switch {
		case v >= 1<<20:
			return fmt.Sprintf("%.2fMB", float64(v)/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.2fkB", float64(v)/(1<<10))
		default:
			return fmt.Sprintf("%dB", v)
		}
	default:
		return fmt.Sprintf("%d", v)
	}
}

// WriteTop prints the n heaviest functions of sample index si as a
// `go tool pprof -top`-style table.
func WriteTop(w io.Writer, p *Profile, si, n int) error {
	if si < 0 || si >= len(p.SampleTypes) {
		return fmt.Errorf("prof: sample index %d out of range (have %d types)", si, len(p.SampleTypes))
	}
	st := p.SampleTypes[si]
	total := p.Total(si)
	fmt.Fprintf(w, "Showing top %d of %s (total %s)\n", n, st.Type, FormatValue(total, st.Unit))
	fmt.Fprintf(w, "%12s %7s %12s %7s  %s\n", "flat", "flat%", "cum", "cum%", "function")
	pct := func(v int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(v) / float64(total)
	}
	for _, e := range p.Top(si, n) {
		fmt.Fprintf(w, "%12s %6.2f%% %12s %6.2f%%  %s\n",
			FormatValue(e.Flat, st.Unit), pct(e.Flat),
			FormatValue(e.Cum, st.Unit), pct(e.Cum), e.Name)
	}
	return nil
}
