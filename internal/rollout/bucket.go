package rollout

// CohortBasis is the resolution of cohort assignment: every device
// hashes to a bucket in [0, CohortBasis), and a rollout stage of N
// basis points covers exactly the buckets below N.
const CohortBasis = 10000

// Bucket maps a device ID to its rollout bucket. The hash is FNV-64a
// written out in explicit uint64 arithmetic: no map iteration, no
// floating point, no `int`-width dependence — so a device lands in the
// same cohort on 386, amd64 and arm64, across process restarts, and
// across server replacements. That stability is what makes a canary
// cohort a consistent population rather than a fresh random sample per
// process; the golden-assignment test pins the exact values.
func Bucket(device string) uint32 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for i := 0; i < len(device); i++ {
		h ^= uint64(device[i])
		h *= prime64
	}
	return uint32(h % CohortBasis)
}
