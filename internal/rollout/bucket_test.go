package rollout

import (
	"fmt"
	"testing"
)

// TestBucketGoldenAssignment pins the exact cohort assignment of the
// fleetsim device-name space plus assorted edge IDs. The values were
// computed once from the FNV-64a definition; any change here means
// every deployed device would silently migrate cohorts, so this table
// must never be "updated to match" a code change. The pure-uint64
// implementation has no map iteration, floats or int-width dependence,
// so the same values hold on 386, amd64 and arm64 — the crossbuild CI
// jobs compile this test for 32-bit to keep that honest.
func TestBucketGoldenAssignment(t *testing.T) {
	golden := []struct {
		device string
		bucket uint32
	}{
		{"dev-00000000", 6483},
		{"dev-00000001", 8272},
		{"dev-00000002", 2905},
		{"dev-00000003", 4694},
		{"dev-00000004", 9327},
		{"dev-00000005", 1116},
		{"dev-00000006", 5749},
		{"dev-00000007", 7538},
		{"dev-00000008", 2171},
		{"dev-00000009", 3960},
		{"dev-00000010", 2138},
		{"dev-00000011", 349},
		{"dev-00000012", 5716},
		{"dev-00000013", 3927},
		{"dev-00000014", 9294},
		{"dev-00000015", 7505},
		{"", 6037},
		{"a", 1996},
		{"pixel-7a", 5118},
		{"note9-lab-042", 2993},
		{"dev-00000000x", 9649},
	}
	for _, g := range golden {
		if got := Bucket(g.device); got != g.bucket {
			t.Errorf("Bucket(%q) = %d, want %d (cohort membership drifted!)", g.device, got, g.bucket)
		}
	}
}

// TestBucketCohortMembershipStable pins which of the first 64 fleetsim
// devices fall inside the default 10% stage — the membership the E2E
// rollout tests rely on.
func TestBucketCohortMembershipStable(t *testing.T) {
	var canary []string
	for i := 0; i < 64; i++ {
		d := fmt.Sprintf("dev-%08d", i)
		if Bucket(d) < 1000 {
			canary = append(canary, d)
		}
	}
	want := []string{
		"dev-00000011", "dev-00000023", "dev-00000034",
		"dev-00000039", "dev-00000042", "dev-00000052",
	}
	if len(canary) != len(want) {
		t.Fatalf("10%% cohort of 64 devices = %v, want %v", canary, want)
	}
	for i := range want {
		if canary[i] != want[i] {
			t.Fatalf("10%% cohort of 64 devices = %v, want %v", canary, want)
		}
	}
}

func TestBucketRange(t *testing.T) {
	for i := 0; i < 10000; i++ {
		d := fmt.Sprintf("device-%d", i)
		if b := Bucket(d); b >= CohortBasis {
			t.Fatalf("Bucket(%q) = %d, outside [0, %d)", d, b, CohortBasis)
		}
	}
}
