// Package rollout is fleetd's policy-lifecycle subsystem. Every merge
// round becomes a versioned, immutable policy artifact (monotonic
// per-key version, canonical content hash, learner identity, parent
// version) in a bounded version store; a staged rollout controller
// advances each candidate artifact through deterministic device
// cohorts (canary 1% → 10% → 100%, assignment by an arch-independent
// hash of the device ID); and an automatic rollback evaluator compares
// the canary cohort's measured QoS/energy against the control cohort
// and either promotes the candidate to stable or rolls its cohort back
// to the last-good artifact.
package rollout

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"nextdvfs/internal/core"
	"nextdvfs/internal/learner"
)

// Cohort names used across status, reports and metrics.
const (
	CohortCanary  = "canary"
	CohortControl = "control"
	CohortStable  = "stable"
)

// Rollout state is driven by unauthenticated device traffic, so every
// axis a hostile client could grow is bounded, mirroring the fleetd
// store's posture: distinct policy keys, registered devices feeding
// the cohort floor, and per-key evaluation reports.
const (
	maxKeys              = 16384
	maxRegisteredDevices = 1 << 16
	maxReportsPerKey     = 1 << 16
)

// Config tunes a Manager. The zero value means defaults throughout.
type Config struct {
	// Stages are the canary cohort sizes in basis points, strictly
	// ascending and ending at CohortBasis (nil → 1%, 10%, 100%).
	// Advancing into the final stage promotes the candidate to stable.
	Stages []uint32
	// MaxVersions bounds the per-key artifact history (0 → 8). The
	// stable and candidate artifacts are never evicted.
	MaxVersions int
	// MinCanary is the minimum number of registered devices the canary
	// cohort must cover (0 → 1): for fleets too small for 1% to reach
	// any device, the effective threshold widens to the MinCanary
	// registered devices with the lowest buckets.
	MinCanary int
	// MinReports is how many evaluation reports each cohort needs
	// before Advance will judge the stage (0 → 1).
	MinReports int
	// MaxEnergyRegressPct rolls the candidate back when the canary
	// cohort's mean energy exceeds control's by more than this many
	// percent (0 → 5).
	MaxEnergyRegressPct float64
	// MaxQoSDropPct rolls the candidate back when the canary cohort's
	// mean QoS (active-session FPS) falls short of control's by more
	// than this many percent (0 → 5).
	MaxQoSDropPct float64
	// NowUS supplies artifact creation timestamps (nil → wall clock);
	// tests pin it for deterministic metadata.
	NowUS func() int64
}

func (c *Config) defaults() error {
	if len(c.Stages) == 0 {
		c.Stages = []uint32{100, 1000, CohortBasis}
	}
	for i, s := range c.Stages {
		if s == 0 || s > CohortBasis || (i > 0 && s <= c.Stages[i-1]) {
			return fmt.Errorf("rollout: stages must be ascending basis points in (0, %d], got %v", CohortBasis, c.Stages)
		}
	}
	if c.Stages[len(c.Stages)-1] != CohortBasis {
		return fmt.Errorf("rollout: final stage must be %d bps (full fleet), got %v", CohortBasis, c.Stages)
	}
	if len(c.Stages) < 2 {
		// A single full-fleet stage leaves no control cohort to judge
		// the candidate against — that's "no rollout", not a rollout.
		return fmt.Errorf("rollout: need at least one canary stage before the full-fleet stage, got %v", c.Stages)
	}
	if c.MaxVersions <= 0 {
		c.MaxVersions = 8
	}
	if c.MinCanary <= 0 {
		c.MinCanary = 1
	}
	if c.MinReports <= 0 {
		c.MinReports = 1
	}
	if c.MaxEnergyRegressPct <= 0 {
		c.MaxEnergyRegressPct = 5
	}
	if c.MaxQoSDropPct <= 0 {
		c.MaxQoSDropPct = 5
	}
	if c.NowUS == nil {
		c.NowUS = func() int64 { return time.Now().UnixMicro() }
	}
	return nil
}

// Artifact is one versioned, immutable policy: its metadata plus the
// table payload. Published artifacts are never mutated — consumers may
// share the reference (the same contract as the fleetd store's
// PolicySetRef).
type Artifact struct {
	core.ArtifactMeta
	Set *learner.TableSet
}

// EvalReport is one device's measured evaluation of the policy version
// it ran: the energy and QoS of a deterministic scenario replay.
type EvalReport struct {
	Device string `json:"device"`
	// Version is the policy version the device ran (which cohort the
	// report counts toward is derived from it server-side).
	Version int64   `json:"version"`
	EnergyJ float64 `json:"energy_j"`
	// QoSFPS is the active-session mean FPS — the QoS users perceive.
	QoSFPS float64 `json:"qos_fps"`
	DurS   float64 `json:"dur_s"`
}

// CohortStats aggregates one cohort's evaluation reports.
type CohortStats struct {
	Cohort     string  `json:"cohort"`
	Devices    int     `json:"devices"`
	AvgEnergyJ float64 `json:"avg_energy_j"`
	AvgQoSFPS  float64 `json:"avg_qos_fps"`
}

// Status is one policy key's rollout state.
type Status struct {
	Key       string             `json:"key"`
	Stable    *core.ArtifactMeta `json:"stable,omitempty"`
	Candidate *core.ArtifactMeta `json:"candidate,omitempty"`
	// StageBps is the active stage's canary size; EffectiveBps widens
	// it to cover the MinCanary cohort floor (both 0 when no rollout is
	// active).
	StageBps     uint32 `json:"stage_bps"`
	EffectiveBps uint32 `json:"effective_bps"`
	// CanaryReports / ControlReports count this stage's evaluation
	// reports by cohort.
	CanaryReports  int    `json:"canary_reports"`
	ControlReports int    `json:"control_reports"`
	Rollbacks      int64  `json:"rollbacks"`
	LastAction     string `json:"last_action,omitempty"`
	// Versions lists the retained artifact versions, ascending.
	Versions []int64 `json:"versions"`
}

// Decision is the outcome of one Advance (or admin Rollback): what the
// evaluator did and the cohort evidence it judged.
type Decision struct {
	// Action is "advance" (next stage), "promote" (candidate became
	// stable) or "rollback" (candidate dropped, fleet back on stable).
	Action  string      `json:"action"`
	Reason  string      `json:"reason"`
	Canary  CohortStats `json:"canary"`
	Control CohortStats `json:"control"`
	Status  Status      `json:"status"`
}

// keyState is one policy key's lifecycle state.
type keyState struct {
	artifacts []*Artifact // ascending version order
	stable    *Artifact
	candidate *Artifact
	// stageIdx indexes Config.Stages while candidate != nil.
	stageIdx    int
	reports     map[string]EvalReport
	rollbacks   int64
	lastAction  string
	nextVersion int64
}

// Manager is the rollout controller: an artifact version store plus
// the staged-cohort state machine, one instance per fleetd server.
type Manager struct {
	cfg Config

	mu   sync.RWMutex
	keys map[string]*keyState
	// devices / bucketCount back the MinCanary cohort floor: every
	// checked-in device registers its bucket, and floorBps is the
	// smallest threshold covering the MinCanary lowest buckets.
	devices     map[string]struct{}
	bucketCount [CohortBasis]int32
	floorBps    uint32
}

// New builds a Manager; invalid stage configuration panics (rollout
// wiring is code, not input).
func New(cfg Config) *Manager {
	if err := cfg.defaults(); err != nil {
		panic(err)
	}
	return &Manager{
		cfg:     cfg,
		keys:    make(map[string]*keyState),
		devices: make(map[string]struct{}),
	}
}

// RegisterDevice records a device into the cohort floor accounting
// (idempotent; the set is bounded like fleetd's check-in tracking —
// past the cap the floor becomes a lower bound, which only widens the
// canary, never starves it).
func (m *Manager) RegisterDevice(device string) {
	if device == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, seen := m.devices[device]; seen || len(m.devices) >= maxRegisteredDevices {
		return
	}
	m.devices[device] = struct{}{}
	m.bucketCount[Bucket(device)]++
	m.floorBps = m.computeFloor()
}

// computeFloor returns the smallest threshold in basis points whose
// buckets cover at least MinCanary registered devices (0 when too few
// devices are registered to satisfy the floor at all). Callers hold
// the write lock.
func (m *Manager) computeFloor() uint32 {
	need := int32(m.cfg.MinCanary)
	var seen int32
	for b := 0; b < CohortBasis; b++ {
		seen += m.bucketCount[b]
		if seen >= need {
			return uint32(b + 1)
		}
	}
	return 0
}

// effectiveBps is the active stage's canary threshold widened to the
// MinCanary floor. Callers hold at least the read lock.
func (m *Manager) effectiveBps(e *keyState) uint32 {
	thr := m.cfg.Stages[e.stageIdx]
	if m.floorBps > thr {
		thr = m.floorBps
	}
	if thr > CohortBasis {
		thr = CohortBasis
	}
	return thr
}

// Submit turns a merge round's output into the key's next artifact.
// The version store dedups by content hash: re-merging identical
// uploads returns the existing artifact instead of minting an empty
// version bump. The first artifact of a key promotes straight to
// stable (there is no control cohort to compare against); later
// submissions become (or replace) the candidate and restart staging at
// the first stage. A submission whose content equals the current
// stable cancels any in-flight candidate — the fleet has converged
// back to what it already runs.
func (m *Manager) Submit(key string, a Artifact) (Artifact, error) {
	if a.Set == nil || a.Set.Primary() == nil {
		return Artifact{}, fmt.Errorf("rollout: %s: empty artifact payload", key)
	}
	if a.Hash == "" {
		return Artifact{}, fmt.Errorf("rollout: %s: artifact has no content hash", key)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.keys[key]
	if e == nil {
		if len(m.keys) >= maxKeys {
			return Artifact{}, fmt.Errorf("rollout: policy-key limit reached (%d)", maxKeys)
		}
		e = &keyState{reports: make(map[string]EvalReport)}
		m.keys[key] = e
	}
	if e.candidate != nil && a.Hash == e.candidate.Hash {
		return *e.candidate, nil
	}
	if e.stable != nil && a.Hash == e.stable.Hash {
		if e.candidate != nil {
			e.candidate = nil
			e.stageIdx = 0
			e.lastAction = "superseded"
			clear(e.reports)
		}
		return *e.stable, nil
	}
	e.nextVersion++
	a.Version = e.nextVersion
	a.CreatedUS = m.cfg.NowUS()
	a.Parent = 0
	if e.stable != nil {
		a.Parent = e.stable.Version
	}
	art := &a
	e.artifacts = append(e.artifacts, art)
	if e.stable == nil {
		e.stable = art
		e.lastAction = "bootstrap"
	} else {
		e.candidate = art
		e.stageIdx = 0
		e.lastAction = "submitted"
		clear(e.reports)
	}
	e.evict(m.cfg.MaxVersions)
	return *art, nil
}

// evict trims the artifact history to the version bound, oldest first,
// never dropping the stable or candidate artifact. Callers hold the
// write lock.
func (e *keyState) evict(max int) {
	for len(e.artifacts) > max {
		dropped := false
		for i, a := range e.artifacts {
			if a == e.stable || a == e.candidate {
				continue
			}
			e.artifacts = append(e.artifacts[:i], e.artifacts[i+1:]...)
			dropped = true
			break
		}
		if !dropped {
			return
		}
	}
}

// Resolve answers "which policy does this device run": the candidate
// for canary-cohort devices while a rollout is active, the stable
// artifact otherwise. The empty device ID is the legacy unversioned
// client — it always resolves to stable, so unvetted candidates never
// reach clients that cannot report evaluations. The returned cohort is
// CohortCanary/CohortControl during an active rollout (CohortStable
// otherwise), and the artifact is shared and immutable.
func (m *Manager) Resolve(key, device string) (*Artifact, string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e := m.keys[key]
	if e == nil || e.stable == nil {
		return nil, "", false
	}
	if e.candidate != nil && device != "" {
		if Bucket(device) < m.effectiveBps(e) {
			return e.candidate, CohortCanary, true
		}
		return e.stable, CohortControl, true
	}
	return e.stable, CohortStable, true
}

// Version returns the key's artifact by version number (admin
// inspection, warm-restart verification).
func (m *Manager) Version(key string, version int64) (*Artifact, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e := m.keys[key]
	if e == nil {
		return nil, false
	}
	for _, a := range e.artifacts {
		if a.Version == version {
			return a, true
		}
	}
	return nil, false
}

// Report records one device's evaluation of the version it ran. The
// report counts toward the canary cohort when the version is the
// active candidate's, control when it is the stable's; anything else
// is rejected — a stale report from two versions ago must not steer
// this rollout. Latest report per device wins.
func (m *Manager) Report(key string, rep EvalReport) (string, error) {
	if rep.Device == "" {
		return "", fmt.Errorf("rollout: %s: report without device ID", key)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.keys[key]
	if e == nil || e.candidate == nil {
		return "", fmt.Errorf("rollout: %s: no active rollout to report against", key)
	}
	switch rep.Version {
	case e.candidate.Version, e.stable.Version:
	default:
		return "", fmt.Errorf("rollout: %s: report for version %d (active: stable v%d, candidate v%d)",
			key, rep.Version, e.stable.Version, e.candidate.Version)
	}
	if _, seen := e.reports[rep.Device]; !seen && len(e.reports) >= maxReportsPerKey {
		return "", fmt.Errorf("rollout: %s: report limit reached (%d)", key, maxReportsPerKey)
	}
	e.reports[rep.Device] = rep
	if rep.Version == e.candidate.Version {
		return CohortCanary, nil
	}
	return CohortControl, nil
}

// cohortStats aggregates the stage's reports by cohort, iterating in
// sorted-device order so the floating-point sums are deterministic.
// Callers hold at least the read lock.
func (e *keyState) cohortStats() (canary, control CohortStats) {
	canary.Cohort, control.Cohort = CohortCanary, CohortControl
	if e.candidate == nil {
		return canary, control
	}
	devices := make([]string, 0, len(e.reports))
	for d := range e.reports {
		devices = append(devices, d)
	}
	sort.Strings(devices)
	for _, d := range devices {
		rep := e.reports[d]
		c := &control
		if rep.Version == e.candidate.Version {
			c = &canary
		}
		c.Devices++
		c.AvgEnergyJ += rep.EnergyJ
		c.AvgQoSFPS += rep.QoSFPS
	}
	for _, c := range []*CohortStats{&canary, &control} {
		if c.Devices > 0 {
			c.AvgEnergyJ /= float64(c.Devices)
			c.AvgQoSFPS /= float64(c.Devices)
		}
	}
	return canary, control
}

// Advance judges the active stage: with enough reports on both sides,
// a canary cohort whose energy or QoS regresses past the configured
// thresholds triggers an automatic rollback to the last-good artifact;
// otherwise the rollout advances to the next stage, and advancing into
// the final (full-fleet) stage promotes the candidate to stable. Each
// judged stage starts the next one with a clean report slate.
func (m *Manager) Advance(key string) (Decision, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.keys[key]
	if e == nil || e.candidate == nil {
		return Decision{}, fmt.Errorf("rollout: %s: no active rollout", key)
	}
	canary, control := e.cohortStats()
	if canary.Devices < m.cfg.MinReports || control.Devices < m.cfg.MinReports {
		return Decision{}, fmt.Errorf("rollout: %s: need %d reports per cohort, have canary %d / control %d",
			key, m.cfg.MinReports, canary.Devices, control.Devices)
	}
	d := Decision{Canary: canary, Control: control}
	switch {
	case control.AvgEnergyJ > 0 && canary.AvgEnergyJ > control.AvgEnergyJ*(1+m.cfg.MaxEnergyRegressPct/100):
		d.Action = "rollback"
		d.Reason = fmt.Sprintf("canary energy %.2f J exceeds control %.2f J by more than %.1f%%",
			canary.AvgEnergyJ, control.AvgEnergyJ, m.cfg.MaxEnergyRegressPct)
		m.rollbackLocked(e)
	case control.AvgQoSFPS > 0 && canary.AvgQoSFPS < control.AvgQoSFPS*(1-m.cfg.MaxQoSDropPct/100):
		d.Action = "rollback"
		d.Reason = fmt.Sprintf("canary QoS %.2f fps falls short of control %.2f fps by more than %.1f%%",
			canary.AvgQoSFPS, control.AvgQoSFPS, m.cfg.MaxQoSDropPct)
		m.rollbackLocked(e)
	case e.stageIdx+1 >= len(m.cfg.Stages)-1:
		// The next stage is the full fleet: promotion, not another canary.
		d.Action = "promote"
		d.Reason = fmt.Sprintf("candidate v%d healthy through %d bps; promoted to stable", e.candidate.Version, m.cfg.Stages[e.stageIdx])
		e.stable = e.candidate
		e.candidate = nil
		e.stageIdx = 0
		e.lastAction = "promote"
		clear(e.reports)
	default:
		e.stageIdx++
		d.Action = "advance"
		d.Reason = fmt.Sprintf("candidate v%d healthy at %d bps; advancing to %d bps",
			e.candidate.Version, m.cfg.Stages[e.stageIdx-1], m.cfg.Stages[e.stageIdx])
		e.lastAction = "advance"
		clear(e.reports)
	}
	d.Status = m.statusLocked(key, e)
	return d, nil
}

// Rollback is the admin override: drop the candidate immediately and
// return the fleet to the stable artifact, regardless of reports.
func (m *Manager) Rollback(key string) (Decision, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.keys[key]
	if e == nil || e.candidate == nil {
		return Decision{}, fmt.Errorf("rollout: %s: no active rollout", key)
	}
	canary, control := e.cohortStats()
	d := Decision{Action: "rollback", Reason: "operator rollback", Canary: canary, Control: control}
	m.rollbackLocked(e)
	d.Status = m.statusLocked(key, e)
	return d, nil
}

// rollbackLocked drops the candidate: canary devices resolve back to
// the stable (last-good) artifact on their next policy pull. The
// candidate's artifact stays in the version history for post-mortems
// until evicted. Callers hold the write lock.
func (m *Manager) rollbackLocked(e *keyState) {
	e.candidate = nil
	e.stageIdx = 0
	e.rollbacks++
	e.lastAction = "rollback"
	clear(e.reports)
}

// Status reports one key's rollout state.
func (m *Manager) Status(key string) (Status, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e := m.keys[key]
	if e == nil {
		return Status{}, false
	}
	return m.statusLocked(key, e), true
}

// Statuses lists every key's status in sorted key order.
func (m *Manager) Statuses() []Status {
	m.mu.RLock()
	defer m.mu.RUnlock()
	keys := make([]string, 0, len(m.keys))
	for k := range m.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Status, len(keys))
	for i, k := range keys {
		out[i] = m.statusLocked(k, m.keys[k])
	}
	return out
}

// statusLocked builds a Status. Callers hold at least the read lock.
func (m *Manager) statusLocked(key string, e *keyState) Status {
	st := Status{Key: key, Rollbacks: e.rollbacks, LastAction: e.lastAction}
	if e.stable != nil {
		meta := e.stable.ArtifactMeta
		st.Stable = &meta
	}
	if e.candidate != nil {
		meta := e.candidate.ArtifactMeta
		st.Candidate = &meta
		st.StageBps = m.cfg.Stages[e.stageIdx]
		st.EffectiveBps = m.effectiveBps(e)
		canary, control := e.cohortStats()
		st.CanaryReports = canary.Devices
		st.ControlReports = control.Devices
	}
	st.Versions = make([]int64, len(e.artifacts))
	for i, a := range e.artifacts {
		st.Versions[i] = a.Version
	}
	return st
}

// RollbacksTotal sums rollbacks across every key (the /metrics
// counter).
func (m *Manager) RollbacksTotal() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, e := range m.keys {
		n += e.rollbacks
	}
	return n
}
