package rollout

import (
	"fmt"
	"strings"
	"testing"

	"nextdvfs/internal/core"
	"nextdvfs/internal/learner"
)

// testSet builds a tiny distinct table set: q seeds the values, so two
// calls with different q produce different content hashes.
func testSet(q float64) *learner.TableSet {
	t := core.NewQTable(3)
	t.Q[core.StateKey(1)] = []float64{q, q + 1, q + 2}
	t.Q[core.StateKey(2)] = []float64{q, q - 1, q - 2}
	t.Visits[core.StateKey(1)] = 5
	t.Visits[core.StateKey(2)] = 3
	t.Steps = 10
	return learner.SingleTableSet(t)
}

// testArtifact wraps a test set as an unversioned artifact the way
// cloud.NewArtifact does (rollout cannot import cloud — cloud imports
// rollout).
func testArtifact(t *testing.T, q float64, round int64) Artifact {
	t.Helper()
	set := testSet(q)
	hash, err := core.HashTableSet(set)
	if err != nil {
		t.Fatalf("HashTableSet: %v", err)
	}
	return Artifact{
		ArtifactMeta: core.ArtifactMeta{
			Hash: hash, Learner: learner.DefaultLearner,
			Round: round, Devices: 2, States: set.Primary().States(),
		},
		Set: set,
	}
}

func testManager() *Manager {
	return New(Config{NowUS: func() int64 { return 42 }})
}

// registerFleet registers n fleetsim-named devices and returns the
// names.
func registerFleet(m *Manager, n int) []string {
	devs := make([]string, n)
	for i := range devs {
		devs[i] = fmt.Sprintf("dev-%08d", i)
		m.RegisterDevice(devs[i])
	}
	return devs
}

// report sends one evaluation for the version the device resolved to.
func report(t *testing.T, m *Manager, key, dev string, energy, qos float64) string {
	t.Helper()
	art, _, ok := m.Resolve(key, dev)
	if !ok {
		t.Fatalf("Resolve(%s, %s): no artifact", key, dev)
	}
	cohort, err := m.Report(key, EvalReport{Device: dev, Version: art.Version, EnergyJ: energy, QoSFPS: qos, DurS: 8})
	if err != nil {
		t.Fatalf("Report(%s): %v", dev, err)
	}
	return cohort
}

func TestLifecyclePromote(t *testing.T) {
	m := testManager()
	const key = "spotify@note9"

	// First artifact bootstraps straight to stable: there is no control
	// cohort to canary against.
	v1, err := m.Submit(key, testArtifact(t, 1.0, 1))
	if err != nil {
		t.Fatalf("Submit v1: %v", err)
	}
	if v1.Version != 1 || v1.Parent != 0 || v1.CreatedUS != 42 {
		t.Fatalf("bootstrap artifact = %+v, want version 1, parent 0, created 42", v1.ArtifactMeta)
	}
	if art, cohort, ok := m.Resolve(key, ""); !ok || art.Version != 1 || cohort != CohortStable {
		t.Fatalf("legacy resolve = v%d %q, want v1 %q", art.Version, cohort, CohortStable)
	}

	devs := registerFleet(m, 16)
	v2, err := m.Submit(key, testArtifact(t, 2.0, 2))
	if err != nil {
		t.Fatalf("Submit v2: %v", err)
	}
	if v2.Version != 2 || v2.Parent != 1 {
		t.Fatalf("candidate = %+v, want version 2, parent 1", v2.ArtifactMeta)
	}

	// Stage 1: 100 bps widened by the MinCanary floor to cover the
	// lowest-bucket registered device — dev-00000011 (bucket 349).
	st, ok := m.Status(key)
	if !ok || st.StageBps != 100 || st.EffectiveBps != 350 {
		t.Fatalf("status = %+v, want stage 100 bps, effective 350", st)
	}
	canaries := 0
	for _, d := range devs {
		art, cohort, ok := m.Resolve(key, d)
		if !ok {
			t.Fatalf("Resolve(%s): no artifact", d)
		}
		switch cohort {
		case CohortCanary:
			canaries++
			if d != "dev-00000011" || art.Version != 2 {
				t.Fatalf("canary = %s on v%d, want dev-00000011 on v2", d, art.Version)
			}
		case CohortControl:
			if art.Version != 1 {
				t.Fatalf("control %s resolved v%d, want v1", d, art.Version)
			}
		default:
			t.Fatalf("device %s in cohort %q during active rollout", d, cohort)
		}
	}
	if canaries != 1 {
		t.Fatalf("stage 1 canary cohort = %d devices, want 1", canaries)
	}

	// Healthy canary (same energy/QoS as control) → advance to 10%.
	for _, d := range devs {
		report(t, m, key, d, 100, 60)
	}
	dec, err := m.Advance(key)
	if err != nil {
		t.Fatalf("Advance 1: %v", err)
	}
	if dec.Action != "advance" || dec.Status.StageBps != 1000 {
		t.Fatalf("decision = %s → %d bps, want advance → 1000", dec.Action, dec.Status.StageBps)
	}
	if dec.Canary.Devices != 1 || dec.Control.Devices != 15 {
		t.Fatalf("cohorts = %d/%d, want 1/15", dec.Canary.Devices, dec.Control.Devices)
	}
	if dec.Status.CanaryReports != 0 {
		t.Fatalf("reports not cleared after advance: %d", dec.Status.CanaryReports)
	}

	// Stage 2: 1000 bps — dev-00000011 (349) stays canary, others per
	// the golden buckets (none of the other first 16 are under 1000).
	for _, d := range devs {
		report(t, m, key, d, 100, 60)
	}
	dec, err = m.Advance(key)
	if err != nil {
		t.Fatalf("Advance 2: %v", err)
	}
	if dec.Action != "promote" {
		t.Fatalf("decision = %s, want promote", dec.Action)
	}
	st, _ = m.Status(key)
	if st.Stable == nil || st.Stable.Version != 2 || st.Candidate != nil {
		t.Fatalf("after promote: %+v, want stable v2, no candidate", st)
	}
	for _, d := range devs {
		if art, cohort, _ := m.Resolve(key, d); art.Version != 2 || cohort != CohortStable {
			t.Fatalf("%s resolved v%d %q after promote, want v2 %q", d, art.Version, cohort, CohortStable)
		}
	}
}

func TestLifecycleRollback(t *testing.T) {
	for _, tc := range []struct {
		name               string
		canaryE, canaryQ   float64
		controlE, controlQ float64
		wantReasonContains string
	}{
		{"energy-regress", 110, 60, 100, 60, "energy"},
		{"qos-drop", 100, 50, 100, 60, "QoS"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := testManager()
			const key = "spotify@note9"
			if _, err := m.Submit(key, testArtifact(t, 1.0, 1)); err != nil {
				t.Fatal(err)
			}
			devs := registerFleet(m, 16)
			if _, err := m.Submit(key, testArtifact(t, 2.0, 2)); err != nil {
				t.Fatal(err)
			}
			for _, d := range devs {
				if _, cohort, _ := m.Resolve(key, d); cohort == CohortCanary {
					report(t, m, key, d, tc.canaryE, tc.canaryQ)
				} else {
					report(t, m, key, d, tc.controlE, tc.controlQ)
				}
			}
			dec, err := m.Advance(key)
			if err != nil {
				t.Fatalf("Advance: %v", err)
			}
			if dec.Action != "rollback" || !strings.Contains(dec.Reason, tc.wantReasonContains) {
				t.Fatalf("decision = %s (%s), want rollback mentioning %q", dec.Action, dec.Reason, tc.wantReasonContains)
			}
			st, _ := m.Status(key)
			if st.Stable.Version != 1 || st.Candidate != nil || st.Rollbacks != 1 {
				t.Fatalf("after rollback: %+v, want stable v1, no candidate, 1 rollback", st)
			}
			if m.RollbacksTotal() != 1 {
				t.Fatalf("RollbacksTotal = %d, want 1", m.RollbacksTotal())
			}
			// Canary devices are back on last-good.
			for _, d := range devs {
				if art, cohort, _ := m.Resolve(key, d); art.Version != 1 || cohort != CohortStable {
					t.Fatalf("%s resolved v%d %q after rollback, want v1 %q", d, art.Version, cohort, CohortStable)
				}
			}
			// The rolled-back artifact stays inspectable until evicted.
			if _, ok := m.Version(key, 2); !ok {
				t.Fatalf("rolled-back v2 missing from the version store")
			}
		})
	}
}

func TestSubmitDedupAndSupersede(t *testing.T) {
	m := testManager()
	const key = "spotify@note9"
	a1 := testArtifact(t, 1.0, 1)
	if _, err := m.Submit(key, a1); err != nil {
		t.Fatal(err)
	}
	// Identical content re-submitted: no version bump.
	again, err := m.Submit(key, testArtifact(t, 1.0, 7))
	if err != nil {
		t.Fatal(err)
	}
	if again.Version != 1 {
		t.Fatalf("identical re-submit minted v%d, want v1 (dedup by hash)", again.Version)
	}
	// A differing merge becomes the candidate.
	if v2, _ := m.Submit(key, testArtifact(t, 2.0, 3)); v2.Version != 2 {
		t.Fatalf("candidate version = %d, want 2", v2.Version)
	}
	// Uploads converge back to stable content: candidate cancelled.
	back, err := m.Submit(key, testArtifact(t, 1.0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != 1 {
		t.Fatalf("converged submit = v%d, want v1", back.Version)
	}
	st, _ := m.Status(key)
	if st.Candidate != nil || st.LastAction != "superseded" {
		t.Fatalf("status = %+v, want cancelled candidate (superseded)", st)
	}
	// A candidate resubmitted identically stays the same version.
	if v3, _ := m.Submit(key, testArtifact(t, 3.0, 5)); v3.Version != 3 {
		t.Fatalf("want v3")
	}
	if v3b, _ := m.Submit(key, testArtifact(t, 3.0, 6)); v3b.Version != 3 {
		t.Fatalf("candidate re-submit minted v%d, want v3", v3b.Version)
	}
}

func TestAdvanceNeedsReports(t *testing.T) {
	m := testManager()
	const key = "spotify@note9"
	if _, err := m.Advance(key); err == nil {
		t.Fatal("Advance with no rollout succeeded")
	}
	if _, err := m.Submit(key, testArtifact(t, 1.0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Advance(key); err == nil {
		t.Fatal("Advance with only a stable artifact succeeded")
	}
	registerFleet(m, 16)
	if _, err := m.Submit(key, testArtifact(t, 2.0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Advance(key); err == nil || !strings.Contains(err.Error(), "reports") {
		t.Fatalf("Advance without reports = %v, want insufficient-reports error", err)
	}
	// A report for a version that is neither stable nor candidate is
	// rejected — stale evidence must not steer the rollout.
	if _, err := m.Report(key, EvalReport{Device: "dev-00000000", Version: 9}); err == nil {
		t.Fatal("report for unknown version accepted")
	}
}

func TestVersionStoreBounded(t *testing.T) {
	m := New(Config{MaxVersions: 3, NowUS: func() int64 { return 1 }})
	const key = "spotify@note9"
	registerFleet(m, 16)
	for i := 0; i < 6; i++ {
		if _, err := m.Submit(key, testArtifact(t, float64(i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
		// Promote each candidate so history accumulates stables.
		if i > 0 {
			for _, d := range []string{"dev-00000011", "dev-00000000"} {
				report(t, m, key, d, 100, 60)
			}
			if _, err := m.Advance(key); err != nil {
				t.Fatal(err)
			}
			for _, d := range []string{"dev-00000011", "dev-00000000"} {
				report(t, m, key, d, 100, 60)
			}
			if _, err := m.Advance(key); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, _ := m.Status(key)
	if len(st.Versions) > 3 {
		t.Fatalf("version store holds %v, want at most 3", st.Versions)
	}
	if st.Stable.Version != 6 {
		t.Fatalf("stable = v%d, want v6", st.Stable.Version)
	}
}

func TestRegisterDeviceFloor(t *testing.T) {
	m := New(Config{MinCanary: 2, NowUS: func() int64 { return 1 }})
	const key = "spotify@note9"
	if _, err := m.Submit(key, testArtifact(t, 1.0, 1)); err != nil {
		t.Fatal(err)
	}
	registerFleet(m, 16)
	if _, err := m.Submit(key, testArtifact(t, 2.0, 2)); err != nil {
		t.Fatal(err)
	}
	// MinCanary 2 → floor covers the two lowest buckets among the first
	// 16 devices: dev-00000011 (349) and dev-00000005 (1116).
	st, _ := m.Status(key)
	if st.EffectiveBps != 1117 {
		t.Fatalf("effective = %d bps, want 1117 (two-device floor)", st.EffectiveBps)
	}
	canaries := 0
	for i := 0; i < 16; i++ {
		if _, cohort, _ := m.Resolve(key, fmt.Sprintf("dev-%08d", i)); cohort == CohortCanary {
			canaries++
		}
	}
	if canaries != 2 {
		t.Fatalf("canary cohort = %d devices, want 2", canaries)
	}
}
